// Benchmarks regenerating every table and figure of the paper's evaluation
// (the experiment index lives in DESIGN.md §3; measured-versus-published
// values are recorded in EXPERIMENTS.md). Each benchmark reports the
// paper's headline metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// reproduces the study end to end. The workloads here are shortened for
// benchmark turnaround; the cmd/ tools run the full-length versions.
package migratory

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"testing"
	"time"

	"migratory/internal/core"
	"migratory/internal/cost"
	"migratory/internal/directory"
	"migratory/internal/memory"
	"migratory/internal/placement"
	"migratory/internal/sim"
	"migratory/internal/snoop"
	"migratory/internal/stats"
	"migratory/internal/telemetry"
	"migratory/internal/timing"
	"migratory/internal/trace"
	"migratory/internal/workload"
)

const benchLength = 120_000

var benchGeom = memory.MustGeometry(16, 4096)

func benchOpts(apps ...string) sim.Options {
	return sim.Options{Nodes: 16, Seed: 1993, Length: benchLength, Apps: apps}
}

// benchTrace caches generated traces across benchmark iterations.
var benchTraces = map[string][]trace.Access{}

func benchTrace(b *testing.B, app string) []trace.Access {
	b.Helper()
	if t, ok := benchTraces[app]; ok {
		return t
	}
	prof, err := workload.ProfileByName(app)
	if err != nil {
		b.Fatal(err)
	}
	t, err := workload.Generate(prof, 16, 1993, benchLength)
	if err != nil {
		b.Fatal(err)
	}
	benchTraces[app] = t
	return t
}

// BenchmarkTable1CostModel exercises E1: the Table 1 message accounting.
func BenchmarkTable1CostModel(b *testing.B) {
	var sink cost.Msgs
	for i := 0; i < b.N; i++ {
		for op := cost.ReadMiss; op <= cost.WriteBack; op++ {
			for dc := 0; dc < 4; dc++ {
				sink = sink.Add(cost.Charge(op, i%2 == 0, i%3 == 0, dc))
			}
		}
	}
	_ = sink
}

// BenchmarkFigure3Classifier exercises E3: the directory classification
// engine on the canonical migratory event sequence.
func BenchmarkFigure3Classifier(b *testing.B) {
	for _, p := range core.Policies() {
		b.Run(p.Name, func(b *testing.B) {
			c := core.NewClassifier(p)
			for i := 0; i < b.N; i++ {
				c.ReadMiss(true)
				c.WriteHit(memory.NodeID(i%16), true)
			}
		})
	}
}

// BenchmarkFigure2Snoop exercises E2: the adaptive snooping FSM on a
// migratory access stream.
func BenchmarkFigure2Snoop(b *testing.B) {
	var accs []trace.Access
	for round := 0; round < 64; round++ {
		for n := memory.NodeID(0); n < 4; n++ {
			accs = append(accs,
				trace.Access{Node: n, Kind: trace.Read, Addr: memory.Addr(round % 8 * 16)},
				trace.Access{Node: n, Kind: trace.Write, Addr: memory.Addr(round % 8 * 16)},
			)
		}
	}
	for _, p := range []snoop.Protocol{snoop.MESI, snoop.Adaptive} {
		b.Run(p.String(), func(b *testing.B) {
			sys, err := snoop.New(snoop.Config{Nodes: 16, Geometry: benchGeom, Protocol: p})
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.Run(accs); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(sys.Counts().Total())/float64(b.N), "bus-txns/run")
		})
	}
}

// BenchmarkTable2 regenerates E4 (one sub-benchmark per application at the
// paper's 64 KB midpoint), reporting the percentage message reduction of
// each adaptive protocol over conventional.
func BenchmarkTable2(b *testing.B) {
	for _, prof := range workload.Profiles() {
		app := prof.Name
		b.Run(app, func(b *testing.B) {
			accs := benchTrace(b, app)
			pl := placement.UsageBased(accs, benchGeom, 16)
			var reductions [3]float64
			for i := 0; i < b.N; i++ {
				var base cost.Msgs
				for pi, pol := range core.Policies() {
					sys, err := directory.New(directory.Config{
						Nodes: 16, Geometry: benchGeom, CacheBytes: 64 << 10,
						Policy: pol, Placement: pl,
					})
					if err != nil {
						b.Fatal(err)
					}
					if err := sys.Run(accs); err != nil {
						b.Fatal(err)
					}
					if pi == 0 {
						base = sys.Messages()
					} else {
						reductions[pi-1] = cost.Reduction(base, sys.Messages())
					}
				}
			}
			b.ReportMetric(reductions[0], "conservative-%red")
			b.ReportMetric(reductions[1], "basic-%red")
			b.ReportMetric(reductions[2], "aggressive-%red")
		})
	}
}

// BenchmarkTable2CacheSweep reports the aggressive protocol's reduction at
// each of Table 2's cache sizes for one strongly cache-sensitive
// application, exhibiting the paper's cache-size trend.
func BenchmarkTable2CacheSweep(b *testing.B) {
	accs := benchTrace(b, "Water")
	pl := placement.UsageBased(accs, benchGeom, 16)
	for _, cacheBytes := range sim.Table2CacheSizes {
		b.Run(fmt.Sprintf("%dK", cacheBytes>>10), func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				var base cost.Msgs
				for pi, pol := range []core.Policy{core.Conventional, core.Aggressive} {
					sys, err := directory.New(directory.Config{
						Nodes: 16, Geometry: benchGeom, CacheBytes: cacheBytes,
						Policy: pol, Placement: pl,
					})
					if err != nil {
						b.Fatal(err)
					}
					if err := sys.Run(accs); err != nil {
						b.Fatal(err)
					}
					if pi == 0 {
						base = sys.Messages()
					} else {
						red = cost.Reduction(base, sys.Messages())
					}
				}
			}
			b.ReportMetric(red, "aggressive-%red")
		})
	}
}

// BenchmarkTable3 regenerates E5: block-size sweep with infinite caches,
// reporting the aggressive reduction per block size for each application.
func BenchmarkTable3(b *testing.B) {
	for _, prof := range workload.Profiles() {
		app := prof.Name
		b.Run(app, func(b *testing.B) {
			accs := benchTrace(b, app)
			pl := placement.UsageBased(accs, benchGeom, 16)
			metrics := map[int]float64{}
			for i := 0; i < b.N; i++ {
				for _, bs := range sim.Table3BlockSizes {
					geom := memory.MustGeometry(bs, 4096)
					var base cost.Msgs
					for pi, pol := range []core.Policy{core.Conventional, core.Aggressive} {
						sys, err := directory.New(directory.Config{
							Nodes: 16, Geometry: geom, Policy: pol, Placement: pl,
						})
						if err != nil {
							b.Fatal(err)
						}
						if err := sys.Run(accs); err != nil {
							b.Fatal(err)
						}
						if pi == 0 {
							base = sys.Messages()
						} else {
							metrics[bs] = cost.Reduction(base, sys.Messages())
						}
					}
				}
			}
			for _, bs := range sim.Table3BlockSizes {
				b.ReportMetric(metrics[bs], fmt.Sprintf("%dB-%%red", bs))
			}
		})
	}
}

// BenchmarkCostRatios regenerates E6: the §4.1 weighted cost analysis for
// MP3D and Locus Route at infinite cache and 16-byte blocks.
func BenchmarkCostRatios(b *testing.B) {
	for _, app := range []string{"MP3D", "Locus Route"} {
		b.Run(app, func(b *testing.B) {
			accs := benchTrace(b, app)
			pl := placement.UsageBased(accs, benchGeom, 16)
			var r1, r2, r4 float64
			for i := 0; i < b.N; i++ {
				var base, agg cost.Msgs
				for pi, pol := range []core.Policy{core.Conventional, core.Aggressive} {
					sys, err := directory.New(directory.Config{
						Nodes: 16, Geometry: benchGeom, Policy: pol, Placement: pl,
					})
					if err != nil {
						b.Fatal(err)
					}
					if err := sys.Run(accs); err != nil {
						b.Fatal(err)
					}
					if pi == 0 {
						base = sys.Messages()
					} else {
						agg = sys.Messages()
					}
				}
				r1 = cost.Reduction(base, agg)
				r2 = cost.WeightedReduction(base, agg, 2)
				r4 = cost.WeightedReduction(base, agg, 4)
			}
			b.ReportMetric(r1, "1to1-%red")
			b.ReportMetric(r2, "2to1-%red")
			b.ReportMetric(r4, "4to1-%red")
		})
	}
}

// BenchmarkExecutionTime regenerates E7: the §4.2 execution-time study.
func BenchmarkExecutionTime(b *testing.B) {
	for _, app := range sim.ExecApps {
		b.Run(app, func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				rows, err := sim.ExecutionTime(benchOpts(app), core.Basic, 0)
				if err != nil {
					b.Fatal(err)
				}
				red = rows[0].ReductionPct
			}
			b.ReportMetric(red, "time-%red")
		})
	}
}

// BenchmarkBusProtocol regenerates E8: §4.3's bus results under both cost
// models, at 64 KB caches.
func BenchmarkBusProtocol(b *testing.B) {
	for _, prof := range workload.Profiles() {
		app := prof.Name
		b.Run(app, func(b *testing.B) {
			accs := benchTrace(b, app)
			var m1, m2 float64
			for i := 0; i < b.N; i++ {
				var counts [2]snoop.Counts
				for pi, p := range []snoop.Protocol{snoop.MESI, snoop.Adaptive} {
					sys, err := snoop.New(snoop.Config{
						Nodes: 16, Geometry: benchGeom, CacheBytes: 64 << 10, Protocol: p,
					})
					if err != nil {
						b.Fatal(err)
					}
					if err := sys.Run(accs); err != nil {
						b.Fatal(err)
					}
					counts[pi] = sys.Counts()
				}
				m1 = 100 * (1 - float64(counts[1].Total())/float64(counts[0].Total()))
				m2 = 100 * (1 - float64(counts[1].Model2(true))/float64(counts[0].Model2(false)))
			}
			b.ReportMetric(m1, "model1-%save")
			b.ReportMetric(m2, "model2-%save")
		})
	}
}

// BenchmarkSymmetryBaseline regenerates E9: the §5 comparison against the
// Sequent Symmetry migrate-modified-blocks policy on read-shared data.
func BenchmarkSymmetryBaseline(b *testing.B) {
	var accs []trace.Access
	for round := 0; round < 200; round++ {
		accs = append(accs, trace.Access{Node: 0, Kind: trace.Write, Addr: 0})
		for sweep := 0; sweep < 2; sweep++ {
			for n := memory.NodeID(1); n < 8; n++ {
				accs = append(accs, trace.Access{Node: n, Kind: trace.Read, Addr: 0})
			}
		}
	}
	var symRM, adpRM float64
	for i := 0; i < b.N; i++ {
		for _, p := range []snoop.Protocol{snoop.Symmetry, snoop.Adaptive} {
			sys, err := snoop.New(snoop.Config{Nodes: 8, Geometry: benchGeom, Protocol: p})
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.Run(accs); err != nil {
				b.Fatal(err)
			}
			if p == snoop.Symmetry {
				symRM = float64(sys.Counts().ReadMiss)
			} else {
				adpRM = float64(sys.Counts().ReadMiss)
			}
		}
	}
	b.ReportMetric(symRM/adpRM, "symmetry-readmiss-ratio")
}

// BenchmarkMigrationHalving regenerates E10: the §2 claim that
// migrate-on-read-miss halves the inter-cache operations for a migratory
// block.
func BenchmarkMigrationHalving(b *testing.B) {
	var accs []trace.Access
	for round := 0; round < 250; round++ {
		for n := memory.NodeID(1); n <= 4; n++ {
			accs = append(accs,
				trace.Access{Node: n, Kind: trace.Read, Addr: 0},
				trace.Access{Node: n, Kind: trace.Write, Addr: 0},
			)
		}
	}
	var conv, agg float64
	for i := 0; i < b.N; i++ {
		for _, pol := range []core.Policy{core.Conventional, core.Aggressive} {
			sys, err := directory.New(directory.Config{
				Nodes: 16, Geometry: benchGeom, Policy: pol,
				Placement: placement.NewRoundRobin(16),
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.Run(accs); err != nil {
				b.Fatal(err)
			}
			if pol.Adaptive {
				agg = float64(sys.Messages().Total())
			} else {
				conv = float64(sys.Messages().Total())
			}
		}
	}
	b.ReportMetric(conv/agg, "msg-ratio") // the paper's factor of ~2
}

// BenchmarkUpdateOnceBaseline (E13) quantifies §5's Alpha-hybrid
// criticism: bus transactions per protocol on the most migratory workload.
func BenchmarkUpdateOnceBaseline(b *testing.B) {
	accs := benchTrace(b, "MP3D")
	for _, p := range []snoop.Protocol{snoop.MESI, snoop.Berkeley, snoop.UpdateOnce, snoop.Adaptive} {
		b.Run(p.String(), func(b *testing.B) {
			var total float64
			for i := 0; i < b.N; i++ {
				sys, err := snoop.New(snoop.Config{
					Nodes: 16, Geometry: benchGeom, CacheBytes: 64 << 10, Protocol: p,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := sys.Run(accs); err != nil {
					b.Fatal(err)
				}
				total = float64(sys.Counts().Total())
			}
			b.ReportMetric(total, "bus-txns")
		})
	}
}

// BenchmarkLimitedDirectory (E16) measures the interaction between
// migratory detection and limited directory pointers: migration keeps copy
// sets at one, so the adaptive protocol suffers far fewer overflow
// broadcasts.
func BenchmarkLimitedDirectory(b *testing.B) {
	accs := benchTrace(b, "MP3D")
	pl := placement.UsageBased(accs, benchGeom, 16)
	for _, pointers := range []int{0, 4, 1} {
		name := "full-map"
		if pointers > 0 {
			name = fmt.Sprintf("dir%d", pointers)
		}
		b.Run(name, func(b *testing.B) {
			var red, overflowsConv, overflowsAdp float64
			for i := 0; i < b.N; i++ {
				var base cost.Msgs
				for pi, pol := range []core.Policy{core.Conventional, core.Aggressive} {
					sys, err := directory.New(directory.Config{
						Nodes: 16, Geometry: benchGeom, Policy: pol,
						Placement: pl, DirPointers: pointers,
					})
					if err != nil {
						b.Fatal(err)
					}
					if err := sys.Run(accs); err != nil {
						b.Fatal(err)
					}
					if pi == 0 {
						base = sys.Messages()
						overflowsConv = float64(sys.Counters().Overflows)
					} else {
						red = cost.Reduction(base, sys.Messages())
						overflowsAdp = float64(sys.Counters().Overflows)
					}
				}
			}
			b.ReportMetric(red, "aggressive-%red")
			b.ReportMetric(overflowsConv, "conv-overflows")
			b.ReportMetric(overflowsAdp, "agg-overflows")
		})
	}
}

// BenchmarkNodeCountSensitivity reports the aggressive reduction across
// machine sizes (an extension sweep; the paper fixes 16 processors).
func BenchmarkNodeCountSensitivity(b *testing.B) {
	for _, n := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("nodes%d", n), func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				rows, err := sim.NodeCountSweep("MP3D", []int{n}, benchOpts("MP3D"))
				if err != nil {
					b.Fatal(err)
				}
				red = rows[0].Reductions[2]
			}
			b.ReportMetric(red, "aggressive-%red")
		})
	}
}

// BenchmarkClassifierAccuracy reports detection precision and recall.
func BenchmarkClassifierAccuracy(b *testing.B) {
	for _, app := range []string{"MP3D", "Pthor"} {
		b.Run(app, func(b *testing.B) {
			var prec, rec float64
			for i := 0; i < b.N; i++ {
				rows, err := sim.ClassifierAccuracy(app, benchOpts(app), 0)
				if err != nil {
					b.Fatal(err)
				}
				agg := rows[len(rows)-1]
				prec, rec = agg.Precision(), agg.Recall()
			}
			b.ReportMetric(100*prec, "aggressive-precision%")
			b.ReportMetric(100*rec, "aggressive-recall%")
		})
	}
}

// BenchmarkOracleBound (E12) measures how much headroom an off-line
// analysis with perfect foreknowledge (§5's load-with-intent-to-modify)
// has over the on-line adaptive protocols.
func BenchmarkOracleBound(b *testing.B) {
	for _, app := range []string{"MP3D", "Water"} {
		b.Run(app, func(b *testing.B) {
			accs := benchTrace(b, app)
			pl := placement.UsageBased(accs, benchGeom, 16)
			patterns := trace.ClassifyBlocks(accs, benchGeom)
			oracle := func(blk memory.BlockID) bool { return patterns[blk] == trace.PatternMigratory }
			var aggRed, oracleRed float64
			for i := 0; i < b.N; i++ {
				var base cost.Msgs
				runOne := func(pol core.Policy, orc func(memory.BlockID) bool) cost.Msgs {
					sys, err := directory.New(directory.Config{
						Nodes: 16, Geometry: benchGeom, Policy: pol,
						Placement: pl, MigratoryOracle: orc,
					})
					if err != nil {
						b.Fatal(err)
					}
					if err := sys.Run(accs); err != nil {
						b.Fatal(err)
					}
					return sys.Messages()
				}
				base = runOne(core.Conventional, nil)
				aggRed = cost.Reduction(base, runOne(core.Aggressive, nil))
				oracleRed = cost.Reduction(base, runOne(core.Conventional, oracle))
			}
			b.ReportMetric(aggRed, "aggressive-%red")
			b.ReportMetric(oracleRed, "oracle-%red")
		})
	}
}

// BenchmarkStenstromComparison (E11) runs the quantitative comparison with
// the Stenström, Brorsson & Sandberg protocol that §5 calls for.
func BenchmarkStenstromComparison(b *testing.B) {
	for _, app := range []string{"MP3D", "Pthor"} {
		b.Run(app, func(b *testing.B) {
			accs := benchTrace(b, app)
			pl := placement.UsageBased(accs, benchGeom, 16)
			var basicRed, stenRed float64
			for i := 0; i < b.N; i++ {
				var base cost.Msgs
				for pi, pol := range []core.Policy{core.Conventional, core.Basic, core.Stenstrom} {
					sys, err := directory.New(directory.Config{
						Nodes: 16, Geometry: benchGeom, CacheBytes: 16 << 10,
						Policy: pol, Placement: pl,
					})
					if err != nil {
						b.Fatal(err)
					}
					if err := sys.Run(accs); err != nil {
						b.Fatal(err)
					}
					switch pi {
					case 0:
						base = sys.Messages()
					case 1:
						basicRed = cost.Reduction(base, sys.Messages())
					case 2:
						stenRed = cost.Reduction(base, sys.Messages())
					}
				}
			}
			b.ReportMetric(basicRed, "basic-%red")
			b.ReportMetric(stenRed, "stenstrom-%red")
		})
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationRetention compares keeping versus forgetting the
// migratory classification across uncached intervals, on a small cache
// where blocks are evicted between visits.
func BenchmarkAblationRetention(b *testing.B) {
	accs := benchTrace(b, "MP3D")
	pl := placement.UsageBased(accs, benchGeom, 16)
	variants := []core.Policy{
		core.Basic,
		{Name: "basic-forgetful", Adaptive: true, Hysteresis: 1},
	}
	for _, pol := range variants {
		b.Run(pol.Name, func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				var base cost.Msgs
				for pi, p := range []core.Policy{core.Conventional, pol} {
					sys, err := directory.New(directory.Config{
						Nodes: 16, Geometry: benchGeom, CacheBytes: 4 << 10,
						Policy: p, Placement: pl,
					})
					if err != nil {
						b.Fatal(err)
					}
					if err := sys.Run(accs); err != nil {
						b.Fatal(err)
					}
					if pi == 0 {
						base = sys.Messages()
					} else {
						red = cost.Reduction(base, sys.Messages())
					}
				}
			}
			b.ReportMetric(red, "%red")
		})
	}
}

// BenchmarkAblationHysteresis sweeps the hysteresis depth.
func BenchmarkAblationHysteresis(b *testing.B) {
	accs := benchTrace(b, "Water")
	pl := placement.UsageBased(accs, benchGeom, 16)
	for _, h := range []int{1, 2, 3, 4} {
		b.Run(fmt.Sprintf("h%d", h), func(b *testing.B) {
			pol := core.Policy{Name: fmt.Sprintf("hyst-%d", h), Adaptive: true, Hysteresis: h, RetainWhenUncached: true}
			var red float64
			for i := 0; i < b.N; i++ {
				var base cost.Msgs
				for pi, p := range []core.Policy{core.Conventional, pol} {
					sys, err := directory.New(directory.Config{
						Nodes: 16, Geometry: benchGeom, Policy: p, Placement: pl,
					})
					if err != nil {
						b.Fatal(err)
					}
					if err := sys.Run(accs); err != nil {
						b.Fatal(err)
					}
					if pi == 0 {
						base = sys.Messages()
					} else {
						red = cost.Reduction(base, sys.Messages())
					}
				}
			}
			b.ReportMetric(red, "%red")
		})
	}
}

// BenchmarkAblationInitial compares the initial classification choice.
func BenchmarkAblationInitial(b *testing.B) {
	accs := benchTrace(b, "Cholesky")
	pl := placement.UsageBased(accs, benchGeom, 16)
	variants := []core.Policy{core.Basic, core.Aggressive}
	for _, pol := range variants {
		b.Run("initial-"+map[bool]string{false: "other", true: "migratory"}[pol.InitialMigratory], func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				var base cost.Msgs
				for pi, p := range []core.Policy{core.Conventional, pol} {
					sys, err := directory.New(directory.Config{
						Nodes: 16, Geometry: benchGeom, Policy: p, Placement: pl,
					})
					if err != nil {
						b.Fatal(err)
					}
					if err := sys.Run(accs); err != nil {
						b.Fatal(err)
					}
					if pi == 0 {
						base = sys.Messages()
					} else {
						red = cost.Reduction(base, sys.Messages())
					}
				}
			}
			b.ReportMetric(red, "%red")
		})
	}
}

// BenchmarkAblationPlacement quantifies §4.2's explanation for the gap
// between the trace-driven and execution-driven results: page placement.
func BenchmarkAblationPlacement(b *testing.B) {
	accs := benchTrace(b, "MP3D")
	policies := map[string]placement.Policy{
		"round-robin": placement.NewRoundRobin(16),
		"first-touch": placement.FirstTouch(accs, benchGeom, 16),
		"usage-based": placement.UsageBased(accs, benchGeom, 16),
	}
	for _, name := range []string{"round-robin", "first-touch", "usage-based"} {
		pl := policies[name]
		b.Run(name, func(b *testing.B) {
			var total, red float64
			for i := 0; i < b.N; i++ {
				var base cost.Msgs
				for pi, p := range []core.Policy{core.Conventional, core.Basic} {
					sys, err := directory.New(directory.Config{
						Nodes: 16, Geometry: benchGeom, Policy: p, Placement: pl,
					})
					if err != nil {
						b.Fatal(err)
					}
					if err := sys.Run(accs); err != nil {
						b.Fatal(err)
					}
					if pi == 0 {
						base = sys.Messages()
						total = float64(base.Total())
					} else {
						red = cost.Reduction(base, sys.Messages())
					}
				}
			}
			b.ReportMetric(total, "conv-msgs")
			b.ReportMetric(red, "basic-%red")
		})
	}
}

// BenchmarkAblationWriteBuffer measures how much of the §4.2 time benefit
// survives under a weakly ordered memory system where writes never stall.
func BenchmarkAblationWriteBuffer(b *testing.B) {
	accs := benchTrace(b, "MP3D")
	for _, buffered := range []bool{false, true} {
		name := "blocking-writes"
		if buffered {
			name = "write-buffered"
		}
		b.Run(name, func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				params := timing.DefaultParams()
				params.ThinkCycles = 22
				params.WriteBuffered = buffered
				mk := func(pol core.Policy) timing.Result {
					r, err := timing.Run(accs, timing.Config{
						Nodes: 16, Geometry: benchGeom, CacheBytes: 64 << 10,
						Policy: pol, Params: params,
					})
					if err != nil {
						b.Fatal(err)
					}
					return r
				}
				red = timing.Reduction(mk(core.Conventional), mk(core.Basic))
			}
			b.ReportMetric(red, "time-%red")
		})
	}
}

// BenchmarkAblationDropNotify measures the weight of the clean-replacement
// notification accounting the paper debates in §3.3.
func BenchmarkAblationDropNotify(b *testing.B) {
	accs := benchTrace(b, "Water")
	pl := placement.UsageBased(accs, benchGeom, 16)
	for _, free := range []bool{false, true} {
		name := "charged"
		if free {
			name = "free"
		}
		b.Run(name, func(b *testing.B) {
			var red float64
			for i := 0; i < b.N; i++ {
				var base cost.Msgs
				for pi, p := range []core.Policy{core.Conventional, core.Aggressive} {
					sys, err := directory.New(directory.Config{
						Nodes: 16, Geometry: benchGeom, CacheBytes: 16 << 10,
						Policy: p, Placement: pl, FreeDropNotifications: free,
					})
					if err != nil {
						b.Fatal(err)
					}
					if err := sys.Run(accs); err != nil {
						b.Fatal(err)
					}
					if pi == 0 {
						base = sys.Messages()
					} else {
						red = cost.Reduction(base, sys.Messages())
					}
				}
			}
			b.ReportMetric(red, "%red")
		})
	}
}

// benchParallelOpts shortens the sweep so the sequential baseline run inside
// the parallel benchmarks stays cheap.
func benchParallelOpts(parallelism int, apps ...string) sim.Options {
	o := benchOpts(apps...)
	o.Length = 40_000
	o.Parallelism = parallelism
	return o
}

// reportSpeedup records the parallel benchmark's wall-clock advantage over a
// one-worker run of the same sweep, both to the benchmark output and to the
// machine-readable baseline at results/bench_sweep.json. On a single-CPU
// machine the speedup hovers around 1; on >= 4 cores the embarrassingly
// parallel sweeps should exceed 2x.
func reportSpeedup(b *testing.B, name string, seq time.Duration) {
	b.Helper()
	par := b.Elapsed() / time.Duration(b.N)
	speedup := seq.Seconds() / par.Seconds()
	b.ReportMetric(speedup, "speedup-vs-seq")
	err := stats.UpdateBenchJSON("results/bench_sweep.json", name, map[string]float64{
		"sequential_ns": float64(seq.Nanoseconds()),
		"parallel_ns":   float64(par.Nanoseconds()),
		"speedup":       speedup,
		"gomaxprocs":    float64(runtime.GOMAXPROCS(0)),
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTable2Parallel measures the parallel sweep engine on the Table 2
// directory sweep: a full (app x cache x policy) fan-out with
// Parallelism=GOMAXPROCS, against a one-worker baseline of the identical
// configuration.
func BenchmarkTable2Parallel(b *testing.B) {
	seqStart := time.Now()
	if _, err := sim.Table2(benchParallelOpts(1, "Water", "MP3D", "Cholesky")); err != nil {
		b.Fatal(err)
	}
	seq := time.Since(seqStart)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Table2(benchParallelOpts(0, "Water", "MP3D", "Cholesky")); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportSpeedup(b, "BenchmarkTable2Parallel", seq)
}

// BenchmarkRunBusParallel measures the parallel engine on the bus-based
// comparison of §4.3 ((app x cache x protocol) cells).
func BenchmarkRunBusParallel(b *testing.B) {
	seqStart := time.Now()
	if _, err := sim.RunBus(benchParallelOpts(1, "Water", "MP3D", "Cholesky"), nil, nil); err != nil {
		b.Fatal(err)
	}
	seq := time.Since(seqStart)

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunBus(benchParallelOpts(0, "Water", "MP3D", "Cholesky"), nil, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportSpeedup(b, "BenchmarkRunBusParallel", seq)
}

// BenchmarkStreamedTable2 prices the streaming sweep path against the
// materialized one at two trace lengths. The interesting column is memory:
// the streamed run feeds each cell from a lazy generator source, so its
// allocated bytes stay flat as the trace grows, while the materialized run
// holds the whole access slice and scales linearly. Both variants land on
// bit-identical counters (TestStreamedTable2Equivalence).
func BenchmarkStreamedTable2(b *testing.B) {
	lengths := []int{40_000, 160_000}
	measured := map[string]float64{}
	for _, stream := range []bool{false, true} {
		mode := "materialized"
		if stream {
			mode = "streamed"
		}
		for _, length := range lengths {
			b.Run(fmt.Sprintf("%s/len=%d", mode, length), func(b *testing.B) {
				b.ReportAllocs()
				opts := benchOpts("MP3D")
				opts.Length = length
				opts.Parallelism = 1
				opts.Stream = stream
				var before, after runtime.MemStats
				runtime.GC()
				runtime.ReadMemStats(&before)
				for i := 0; i < b.N; i++ {
					if _, err := sim.Table2(opts); err != nil {
						b.Fatal(err)
					}
				}
				runtime.ReadMemStats(&after)
				measured[fmt.Sprintf("%s_%d_bytes_op", mode, length)] =
					float64(after.TotalAlloc-before.TotalAlloc) / float64(b.N)
			})
		}
	}
	// Sub-benchmarks have all run by now; derive the growth factors (how
	// much allocation scales with a 4x longer trace) and persist them.
	sGrow, mGrow := 0.0, 0.0
	if v := measured["streamed_40000_bytes_op"]; v > 0 {
		sGrow = measured["streamed_160000_bytes_op"] / v
	}
	if v := measured["materialized_40000_bytes_op"]; v > 0 {
		mGrow = measured["materialized_160000_bytes_op"] / v
	}
	if sGrow > 0 {
		measured["streamed_growth_4x_trace"] = sGrow
		measured["materialized_growth_4x_trace"] = mGrow
		if err := stats.UpdateBenchJSON("results/bench_sweep.json", "BenchmarkStreamedTable2", measured); err != nil {
			b.Fatal(err)
		}
	}
}

// benchMTRImage encodes an application's benchmark trace into an in-memory
// .mtr image, so the batched-decode benchmarks run against the real file
// format without disk noise.
func benchMTRImage(b *testing.B, app string) []byte {
	b.Helper()
	accs := benchTrace(b, app)
	var buf bytes.Buffer
	w := trace.NewWriter(&buf, trace.Header{BlockSize: 16, PageSize: 4096, Nodes: 16})
	for _, a := range accs {
		if err := w.Write(a); err != nil {
			b.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	return buf.Bytes()
}

// benchFileSource opens an in-memory .mtr image, optionally hiding its
// NextBatch method so the engines fall back to the per-access pull path.
func benchFileSource(b *testing.B, img []byte, batched bool) trace.Source {
	b.Helper()
	src, err := trace.NewFileSource(bytes.NewReader(img))
	if err != nil {
		b.Fatal(err)
	}
	if batched {
		return src
	}
	return noBatch{src}
}

// BenchmarkBatchedTable2 prices the PR's two hot-loop changes together on
// the Table 2 directory workload: all four policies at the 64 KB midpoint
// over an .mtr-backed MP3D trace. The three modes are
//
//   - baseline:  the PR-3 hot loop, replayed verbatim — a per-access
//     Next() pull through the Reader interface, an errors.Is EOF test on
//     every pull, a modulo cancellation check, the un-specialized Access
//     entry point, and the switch-based classifier transitions
//   - unbatched: table kernel + specialized batch loop, per-access delivery
//   - batched:   table kernel + NextBatch delivery in 4096-access chunks
//
// All modes are asserted to land on bit-identical counters; the ns/op of
// each and the end-to-end speedup go to results/bench_sweep.json.
func BenchmarkBatchedTable2(b *testing.B) {
	img := benchMTRImage(b, "MP3D")
	pl := placement.UsageBased(benchTrace(b, "MP3D"), benchGeom, 16)
	// pr3Loop is the inner loop of PR 3's RunSource, inlined here so the
	// baseline mode measures the pre-batching delivery path this PR removed.
	pr3Loop := func(b *testing.B, sys *directory.System, src trace.Source) {
		b.Helper()
		ctx := context.Background()
		for i := 0; ; i++ {
			if i&4095 == 0 {
				if err := ctx.Err(); err != nil {
					b.Fatal(err)
				}
			}
			a, err := src.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.Access(a); err != nil {
				b.Fatal(err)
			}
		}
	}
	run := func(b *testing.B, batched, pr3 bool) (cost.Msgs, directory.Counters) {
		b.Helper()
		var msgs cost.Msgs
		var n directory.Counters
		for _, pol := range core.Policies() {
			sys, err := directory.New(directory.Config{
				Nodes: 16, Geometry: benchGeom, CacheBytes: 64 << 10,
				Policy: pol, Placement: pl,
			})
			if err != nil {
				b.Fatal(err)
			}
			if pr3 {
				// The loop only pulls via Next(), so the raw source works;
				// its NextBatch method is simply never called.
				pr3Loop(b, sys, benchFileSource(b, img, true))
			} else if err := sys.RunSource(nil, benchFileSource(b, img, batched)); err != nil {
				b.Fatal(err)
			}
			msgs = msgs.Add(sys.Messages())
			n = sys.Counters()
		}
		return msgs, n
	}

	modes := []struct {
		name    string
		batched bool
		tables  bool
		pr3     bool
	}{
		{"baseline", false, false, true},
		{"unbatched", false, true, false},
		{"batched", true, true, false},
	}
	msgs := make([]cost.Msgs, len(modes))
	counters := make([]directory.Counters, len(modes))
	elapsed := make([]time.Duration, len(modes))
	mallocs := make([]uint64, len(modes))
	allocBytes := make([]uint64, len(modes))
	// The modes are measured interleaved within every iteration, so slow
	// drift of the machine's effective clock rate (shared CPUs, thermal
	// throttle) hits all of them equally and cancels out of the ratios.
	b.Run("paired", func(b *testing.B) {
		defer func() { core.DisableTables = false }()
		var before, after runtime.MemStats
		for i := 0; i < b.N; i++ {
			for mi, m := range modes {
				core.DisableTables = !m.tables
				runtime.ReadMemStats(&before)
				start := time.Now()
				msgs[mi], counters[mi] = run(b, m.batched, m.pr3)
				elapsed[mi] += time.Since(start)
				runtime.ReadMemStats(&after)
				mallocs[mi] += after.Mallocs - before.Mallocs
				allocBytes[mi] += after.TotalAlloc - before.TotalAlloc
			}
		}
		for mi := 1; mi < len(modes); mi++ {
			if msgs[mi] != msgs[0] || counters[mi] != counters[0] {
				b.Fatalf("%s diverged from %s: %+v/%+v vs %+v/%+v",
					modes[mi].name, modes[0].name, msgs[mi], counters[mi], msgs[0], counters[0])
			}
		}
		measured := map[string]float64{}
		for mi, m := range modes {
			measured[m.name+"_ns_per_op"] = float64(elapsed[mi].Nanoseconds()) / float64(b.N)
			measured[m.name+"_bytes_per_op"] = float64(allocBytes[mi]) / float64(b.N)
			measured[m.name+"_allocs_per_op"] = float64(mallocs[mi]) / float64(b.N)
		}
		speedup := measured["baseline_ns_per_op"] / measured["batched_ns_per_op"]
		measured["speedup"] = speedup
		b.ReportMetric(speedup, "speedup-vs-pr3-loop")
		b.ReportMetric(measured["unbatched_ns_per_op"]/measured["batched_ns_per_op"], "speedup-batching-only")
		if err := stats.UpdateBenchJSON("results/bench_sweep.json", "BenchmarkBatchedTable2", measured); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkBatchedBus is the bus-engine counterpart: MESI and the adaptive
// protocol over the same .mtr-backed trace, batched versus unbatched, with
// bit-identical transaction counts.
func BenchmarkBatchedBus(b *testing.B) {
	img := benchMTRImage(b, "MP3D")
	run := func(b *testing.B, batched bool) snoop.Counts {
		b.Helper()
		var counts snoop.Counts
		for _, p := range []snoop.Protocol{snoop.MESI, snoop.Adaptive} {
			sys, err := snoop.New(snoop.Config{
				Nodes: 16, Geometry: benchGeom, CacheBytes: 64 << 10, Protocol: p,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.RunSource(nil, benchFileSource(b, img, batched)); err != nil {
				b.Fatal(err)
			}
			counts = sys.Counts()
		}
		return counts
	}

	modes := []struct {
		name    string
		batched bool
	}{
		{"unbatched", false},
		{"batched", true},
	}
	var counts [2]snoop.Counts
	elapsed := make([]time.Duration, len(modes))
	mallocs := make([]uint64, len(modes))
	allocBytes := make([]uint64, len(modes))
	// Interleaved measurement, as in BenchmarkBatchedTable2.
	b.Run("paired", func(b *testing.B) {
		var before, after runtime.MemStats
		for i := 0; i < b.N; i++ {
			for mi, m := range modes {
				runtime.ReadMemStats(&before)
				start := time.Now()
				counts[mi] = run(b, m.batched)
				elapsed[mi] += time.Since(start)
				runtime.ReadMemStats(&after)
				mallocs[mi] += after.Mallocs - before.Mallocs
				allocBytes[mi] += after.TotalAlloc - before.TotalAlloc
			}
		}
		if counts[0] != counts[1] {
			b.Fatalf("batched and unbatched bus runs diverged: %+v vs %+v", counts[1], counts[0])
		}
		measured := map[string]float64{}
		for mi, m := range modes {
			measured[m.name+"_ns_per_op"] = float64(elapsed[mi].Nanoseconds()) / float64(b.N)
			measured[m.name+"_bytes_per_op"] = float64(allocBytes[mi]) / float64(b.N)
			measured[m.name+"_allocs_per_op"] = float64(mallocs[mi]) / float64(b.N)
		}
		speedup := measured["unbatched_ns_per_op"] / measured["batched_ns_per_op"]
		measured["speedup"] = speedup
		b.ReportMetric(speedup, "speedup-batching-only")
		if err := stats.UpdateBenchJSON("results/bench_sweep.json", "BenchmarkBatchedBus", measured); err != nil {
			b.Fatal(err)
		}
	})
}

// probeOverheadBaseline is the pre-observability BenchmarkTable2/MP3D-shaped
// measurement (all four policies, 64 KB caches, benchLength trace), captured
// before the probe layer landed. The nil-probe sub-benchmark below re-records
// the same workload into results/bench_sweep.json next to these figures, so
// a drift of the uninstrumented hot path shows up in the baseline diff.
const (
	probeOverheadBaselineNs     = 17644318
	probeOverheadBaselineAllocs = 241
)

// BenchmarkProbeOverhead prices the observability layer on the
// BenchmarkTable2/MP3D hot path. Every emission site in the directory engine
// hides behind a single probe-nil pointer test, so the nil-probe variant
// must stay within noise of the pre-observability baseline (ns/op and
// allocs/op); the metrics-probe variant measures a fully attached
// MetricsProbe for comparison.
func BenchmarkProbeOverhead(b *testing.B) {
	accs := benchTrace(b, "MP3D")
	pl := placement.UsageBased(accs, benchGeom, 16)
	iter := func(b *testing.B, probe func() Probe) {
		b.Helper()
		for _, pol := range core.Policies() {
			sys, err := directory.New(directory.Config{
				Nodes: 16, Geometry: benchGeom, CacheBytes: 64 << 10,
				Policy: pol, Placement: pl, Probe: probe(),
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.Run(accs); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("nil-probe", func(b *testing.B) {
		b.ReportAllocs()
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		start := time.Now()
		for i := 0; i < b.N; i++ {
			iter(b, func() Probe { return nil })
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		err := stats.UpdateBenchJSON("results/bench_sweep.json", "BenchmarkProbeOverhead/nil-probe", map[string]float64{
			"ns_per_op":              float64(elapsed.Nanoseconds()) / float64(b.N),
			"allocs_per_op":          float64(after.Mallocs-before.Mallocs) / float64(b.N),
			"baseline_ns_per_op":     probeOverheadBaselineNs,
			"baseline_allocs_per_op": probeOverheadBaselineAllocs,
		})
		if err != nil {
			b.Fatal(err)
		}
	})
	b.Run("metrics-probe", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			iter(b, func() Probe { return &MetricsProbe{} })
		}
	})
}

// BenchmarkShardedTable2 prices set-sharded intra-run parallelism on the
// Table 2 directory workload (all four policies, 64 KB caches, MP3D over an
// .mtr-backed source): a sequential run versus the same run split across 8
// per-set engine shards. The modes are asserted bit-identical; ns/op for
// each, the speedup, and the machine's GOMAXPROCS go to
// results/bench_sweep.json. The speedup scales with real cores — on a
// single-CPU machine the sharded run only pays the demux overhead.
func BenchmarkShardedTable2(b *testing.B) {
	img := benchMTRImage(b, "MP3D")
	pl := placement.UsageBased(benchTrace(b, "MP3D"), benchGeom, 16)
	run := func(b *testing.B, shards int) (cost.Msgs, directory.Counters) {
		b.Helper()
		var msgs cost.Msgs
		var n directory.Counters
		for _, pol := range core.Policies() {
			cfg := directory.Config{
				Nodes: 16, Geometry: benchGeom, CacheBytes: 64 << 10,
				Policy: pol, Placement: pl,
			}
			sys, err := directory.NewSharded(cfg, shards, nil)
			if err != nil {
				b.Fatal(err)
			}
			if err := sys.RunSource(nil, benchFileSource(b, img, true)); err != nil {
				b.Fatal(err)
			}
			msgs = msgs.Add(sys.Messages())
			n = sys.Counters()
		}
		return msgs, n
	}

	modes := []struct {
		name   string
		shards int
	}{
		{"sequential", 1},
		{"sharded8", 8},
	}
	msgs := make([]cost.Msgs, len(modes))
	counters := make([]directory.Counters, len(modes))
	elapsed := make([]time.Duration, len(modes))
	mallocs := make([]uint64, len(modes))
	allocBytes := make([]uint64, len(modes))
	// Interleaved measurement, as in BenchmarkBatchedTable2.
	b.Run("paired", func(b *testing.B) {
		var before, after runtime.MemStats
		for i := 0; i < b.N; i++ {
			for mi, m := range modes {
				runtime.ReadMemStats(&before)
				start := time.Now()
				msgs[mi], counters[mi] = run(b, m.shards)
				elapsed[mi] += time.Since(start)
				runtime.ReadMemStats(&after)
				mallocs[mi] += after.Mallocs - before.Mallocs
				allocBytes[mi] += after.TotalAlloc - before.TotalAlloc
			}
		}
		for mi := 1; mi < len(modes); mi++ {
			if msgs[mi] != msgs[0] || counters[mi] != counters[0] {
				b.Fatalf("%s diverged from %s: %+v/%+v vs %+v/%+v",
					modes[mi].name, modes[0].name, msgs[mi], counters[mi], msgs[0], counters[0])
			}
		}
		measured := map[string]float64{"gomaxprocs": float64(runtime.GOMAXPROCS(0))}
		for mi, m := range modes {
			measured[m.name+"_ns_per_op"] = float64(elapsed[mi].Nanoseconds()) / float64(b.N)
			measured[m.name+"_bytes_per_op"] = float64(allocBytes[mi]) / float64(b.N)
			measured[m.name+"_allocs_per_op"] = float64(mallocs[mi]) / float64(b.N)
		}
		speedup := measured["sequential_ns_per_op"] / measured["sharded8_ns_per_op"]
		measured["speedup"] = speedup
		b.ReportMetric(speedup, "speedup-8-shards")
		if err := stats.UpdateBenchJSON("results/bench_sweep.json", "BenchmarkShardedTable2", measured); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkPrefetchMTR prices the prefetching decode stage on .mtr replay:
// the basic policy at 64 KB over a file-backed trace, pulled directly
// versus through a PrefetchSource whose goroutine decodes one window
// ahead. Counters are asserted bit-identical; on a single-CPU machine the
// overlap cannot show, so the prefetch mode there measures pure handoff
// overhead.
func BenchmarkPrefetchMTR(b *testing.B) {
	img := benchMTRImage(b, "MP3D")
	run := func(b *testing.B, prefetch bool) (cost.Msgs, directory.Counters) {
		b.Helper()
		pl := placement.NewRoundRobin(16)
		sys, err := directory.New(directory.Config{
			Nodes: 16, Geometry: benchGeom, CacheBytes: 64 << 10,
			Policy: core.Basic, Placement: pl,
		})
		if err != nil {
			b.Fatal(err)
		}
		src := benchFileSource(b, img, true)
		if prefetch {
			src = trace.NewPrefetchSource(src)
		}
		defer src.Close()
		if err := sys.RunSource(nil, src); err != nil {
			b.Fatal(err)
		}
		return sys.Messages(), sys.Counters()
	}

	modes := []struct {
		name     string
		prefetch bool
	}{
		{"direct", false},
		{"prefetch", true},
	}
	msgs := make([]cost.Msgs, len(modes))
	counters := make([]directory.Counters, len(modes))
	elapsed := make([]time.Duration, len(modes))
	mallocs := make([]uint64, len(modes))
	allocBytes := make([]uint64, len(modes))
	b.Run("paired", func(b *testing.B) {
		var before, after runtime.MemStats
		for i := 0; i < b.N; i++ {
			for mi, m := range modes {
				runtime.ReadMemStats(&before)
				start := time.Now()
				msgs[mi], counters[mi] = run(b, m.prefetch)
				elapsed[mi] += time.Since(start)
				runtime.ReadMemStats(&after)
				mallocs[mi] += after.Mallocs - before.Mallocs
				allocBytes[mi] += after.TotalAlloc - before.TotalAlloc
			}
		}
		if msgs[0] != msgs[1] || counters[0] != counters[1] {
			b.Fatalf("prefetch run diverged: %+v/%+v vs %+v/%+v",
				msgs[1], counters[1], msgs[0], counters[0])
		}
		measured := map[string]float64{"gomaxprocs": float64(runtime.GOMAXPROCS(0))}
		for mi, m := range modes {
			measured[m.name+"_ns_per_op"] = float64(elapsed[mi].Nanoseconds()) / float64(b.N)
			measured[m.name+"_bytes_per_op"] = float64(allocBytes[mi]) / float64(b.N)
			measured[m.name+"_allocs_per_op"] = float64(mallocs[mi]) / float64(b.N)
		}
		speedup := measured["direct_ns_per_op"] / measured["prefetch_ns_per_op"]
		measured["speedup"] = speedup
		b.ReportMetric(speedup, "speedup-prefetch")
		if err := stats.UpdateBenchJSON("results/bench_sweep.json", "BenchmarkPrefetchMTR", measured); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkTelemetryOverhead prices the runtime telemetry layer: the basic
// policy over an in-memory MP3D trace with Config.Stats nil ("off" — must
// stay within noise of the uninstrumented hot path, since disabled
// telemetry is one pointer test per 4096-access batch) versus a shared
// RunStats block with a live 50ms Sampler attached ("on"). Counters are
// asserted bit-identical across modes, and the on/off ratio is the
// regression guard: telemetry is only near-zero-cost while that ratio
// stays near 1.
func BenchmarkTelemetryOverhead(b *testing.B) {
	accs := benchTrace(b, "MP3D")
	run := func(b *testing.B, rs *telemetry.RunStats) (cost.Msgs, directory.Counters) {
		b.Helper()
		sys, err := directory.New(directory.Config{
			Nodes: 16, Geometry: benchGeom, CacheBytes: 64 << 10,
			Policy: core.Basic, Placement: placement.NewRoundRobin(16),
			Stats: rs,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := sys.Run(accs); err != nil {
			b.Fatal(err)
		}
		return sys.Messages(), sys.Counters()
	}

	var rs telemetry.RunStats
	sampler := telemetry.NewSampler(&rs, 50*time.Millisecond)
	sampler.Start()
	defer sampler.Stop()

	modes := []struct {
		name  string
		stats *telemetry.RunStats
	}{
		{"off", nil},
		{"on", &rs},
	}
	msgs := make([]cost.Msgs, len(modes))
	counters := make([]directory.Counters, len(modes))
	elapsed := make([]time.Duration, len(modes))
	mallocs := make([]uint64, len(modes))
	allocBytes := make([]uint64, len(modes))
	b.Run("paired", func(b *testing.B) {
		// The framework may re-enter with a larger b.N; count only this pass.
		accBase := rs.Accesses.Load()
		var before, after runtime.MemStats
		for i := 0; i < b.N; i++ {
			for mi, m := range modes {
				runtime.ReadMemStats(&before)
				start := time.Now()
				msgs[mi], counters[mi] = run(b, m.stats)
				elapsed[mi] += time.Since(start)
				runtime.ReadMemStats(&after)
				mallocs[mi] += after.Mallocs - before.Mallocs
				allocBytes[mi] += after.TotalAlloc - before.TotalAlloc
			}
		}
		if msgs[0] != msgs[1] || counters[0] != counters[1] {
			b.Fatalf("instrumented run diverged: %+v/%+v vs %+v/%+v",
				msgs[1], counters[1], msgs[0], counters[0])
		}
		if got, want := rs.Accesses.Load()-accBase, uint64(b.N)*uint64(len(accs)); got != want {
			b.Fatalf("RunStats saw %d accesses this pass, want %d", got, want)
		}
		measured := map[string]float64{"gomaxprocs": float64(runtime.GOMAXPROCS(0))}
		for mi, m := range modes {
			measured[m.name+"_ns_per_op"] = float64(elapsed[mi].Nanoseconds()) / float64(b.N)
			measured[m.name+"_bytes_per_op"] = float64(allocBytes[mi]) / float64(b.N)
			measured[m.name+"_allocs_per_op"] = float64(mallocs[mi]) / float64(b.N)
		}
		ratio := measured["on_ns_per_op"] / measured["off_ns_per_op"]
		measured["overhead_ratio"] = ratio
		b.ReportMetric(ratio, "on/off-ratio")
		if err := stats.UpdateBenchJSON("results/bench_sweep.json", "BenchmarkTelemetryOverhead", measured); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkParallelDecodeMTR prices the indexed (v3) decode path on its
// own, with no simulator attached: draining an in-memory .mtr image
// through the sequential FileSource versus through an IndexedFileSource
// whose workers decode whole segments from contiguous buffers. Decoded
// streams are asserted bit-identical via an order-sensitive checksum. The
// segment path wins even on one CPU — it replaces the per-byte bufio pull
// with slice-indexed varint decode — and overlaps decode with consumption
// when real cores exist.
func BenchmarkParallelDecodeMTR(b *testing.B) {
	img := benchMTRImage(b, "MP3D")
	drain := func(b *testing.B, src trace.Source) (int, uint64) {
		b.Helper()
		defer src.Close()
		buf := make([]trace.Access, 4096)
		total := 0
		var sum uint64
		for {
			n, err := trace.FillBatch(src, buf)
			for _, a := range buf[:n] {
				total += 1
				sum = sum*1099511628211 + uint64(a.Addr)<<9 + uint64(a.Node)<<1 + uint64(a.Kind)
			}
			if err == io.EOF {
				return total, sum
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	modes := []struct {
		name     string
		decoders int // 0 = sequential FileSource
	}{
		{"sequential", 0},
		{"indexed2", 2},
	}
	counts := make([]int, len(modes))
	sums := make([]uint64, len(modes))
	elapsed := make([]time.Duration, len(modes))
	mallocs := make([]uint64, len(modes))
	allocBytes := make([]uint64, len(modes))
	b.Run("paired", func(b *testing.B) {
		var before, after runtime.MemStats
		for i := 0; i < b.N; i++ {
			for mi, m := range modes {
				var src trace.Source
				var err error
				if m.decoders == 0 {
					src, err = trace.NewFileSource(bytes.NewReader(img))
				} else {
					src, err = trace.NewIndexedSource(bytes.NewReader(img), int64(len(img)), m.decoders)
				}
				if err != nil {
					b.Fatal(err)
				}
				runtime.ReadMemStats(&before)
				start := time.Now()
				counts[mi], sums[mi] = drain(b, src)
				elapsed[mi] += time.Since(start)
				runtime.ReadMemStats(&after)
				mallocs[mi] += after.Mallocs - before.Mallocs
				allocBytes[mi] += after.TotalAlloc - before.TotalAlloc
			}
		}
		if counts[1] != counts[0] || sums[1] != sums[0] {
			b.Fatalf("indexed decode diverged: %d/%x vs %d/%x", counts[1], sums[1], counts[0], sums[0])
		}
		measured := map[string]float64{"gomaxprocs": float64(runtime.GOMAXPROCS(0))}
		for mi, m := range modes {
			measured[m.name+"_ns_per_op"] = float64(elapsed[mi].Nanoseconds()) / float64(b.N)
			measured[m.name+"_bytes_per_op"] = float64(allocBytes[mi]) / float64(b.N)
			measured[m.name+"_allocs_per_op"] = float64(mallocs[mi]) / float64(b.N)
		}
		speedup := measured["sequential_ns_per_op"] / measured["indexed2_ns_per_op"]
		measured["speedup"] = speedup
		b.ReportMetric(speedup, "speedup-indexed")
		if err := stats.UpdateBenchJSON("results/bench_sweep.json", "BenchmarkParallelDecodeMTR", measured); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkShardedTable2NoProducer prices retiring the single-producer
// demux on an 8-shard .mtr replay (basic policy, 64 KB): the PR-5 path —
// one goroutine decoding and fanning out to every shard queue — versus the
// segment-parallel path, where decoder workers route per-segment batches
// straight into the shard queues. Counters are asserted bit-identical, and
// each mode's producer-side stall time (DemuxStallNs) is recorded: the
// no-producer path all but eliminates it, because no single producer sits
// blocked on whichever shard queue happens to be full.
func BenchmarkShardedTable2NoProducer(b *testing.B) {
	img := benchMTRImage(b, "MP3D")
	pl := placement.UsageBased(benchTrace(b, "MP3D"), benchGeom, 16)
	run := func(b *testing.B, decoders int, rs *telemetry.RunStats) (cost.Msgs, directory.Counters) {
		b.Helper()
		sys, err := directory.NewSharded(directory.Config{
			Nodes: 16, Geometry: benchGeom, CacheBytes: 64 << 10,
			Policy: core.Basic, Placement: pl, Stats: rs, Decoders: decoders,
		}, 8, nil)
		if err != nil {
			b.Fatal(err)
		}
		var src trace.Source
		if decoders > 1 {
			src, err = trace.NewIndexedSource(bytes.NewReader(img), int64(len(img)), decoders)
			if err != nil {
				b.Fatal(err)
			}
		} else {
			src = benchFileSource(b, img, true)
		}
		defer src.Close()
		if err := sys.RunSource(nil, src); err != nil {
			b.Fatal(err)
		}
		return sys.Messages(), sys.Counters()
	}
	modes := []struct {
		name     string
		decoders int
	}{
		{"producer", 1},
		{"noproducer", 2},
	}
	msgs := make([]cost.Msgs, len(modes))
	counters := make([]directory.Counters, len(modes))
	elapsed := make([]time.Duration, len(modes))
	stallNs := make([]uint64, len(modes))
	runStats := make([]*telemetry.RunStats, len(modes))
	for i := range runStats {
		runStats[i] = &telemetry.RunStats{}
	}
	b.Run("paired", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for mi, m := range modes {
				start := time.Now()
				msgs[mi], counters[mi] = run(b, m.decoders, runStats[mi])
				elapsed[mi] += time.Since(start)
			}
		}
		for mi := range modes {
			stallNs[mi] = runStats[mi].DemuxStallNs.Load()
		}
		if msgs[1] != msgs[0] || counters[1] != counters[0] {
			b.Fatalf("no-producer run diverged: %+v/%+v vs %+v/%+v",
				msgs[1], counters[1], msgs[0], counters[0])
		}
		measured := map[string]float64{"gomaxprocs": float64(runtime.GOMAXPROCS(0))}
		for mi, m := range modes {
			measured[m.name+"_ns_per_op"] = float64(elapsed[mi].Nanoseconds()) / float64(b.N)
			measured[m.name+"_stall_ns_per_op"] = float64(stallNs[mi]) / float64(b.N)
		}
		speedup := measured["producer_ns_per_op"] / measured["noproducer_ns_per_op"]
		measured["speedup"] = speedup
		// Stall reduction against a floor of 1ns/op, so a fully stall-free
		// no-producer pass reports a finite (huge) ratio instead of +Inf.
		reduction := measured["producer_stall_ns_per_op"] / max(measured["noproducer_stall_ns_per_op"], 1)
		measured["stall_reduction"] = reduction
		b.ReportMetric(speedup, "speedup-noproducer")
		b.ReportMetric(reduction, "stall-reduction")
		if err := stats.UpdateBenchJSON("results/bench_sweep.json", "BenchmarkShardedTable2NoProducer", measured); err != nil {
			b.Fatal(err)
		}
	})
}
