#!/bin/sh
# apidiff.sh — gate incompatible changes to the module's exported API.
#
# Compares the root package's exported API against a base commit
# (APIDIFF_BASE, default HEAD~1) with golang.org/x/exp/cmd/apidiff and
# fails on any incompatible change not listed in
# scripts/apidiff_allowlist.txt (one apidiff output line per entry; '#'
# comments and blank lines ignored).
#
# The script does not install anything: when apidiff is not on PATH it
# skips with a notice, mirroring the govulncheck arrangement — CI installs
# the tool in its own step.
set -eu

cd "$(dirname "$0")/.."

if ! command -v apidiff >/dev/null 2>&1; then
    echo "apidiff: not installed; skipping (CI runs it)"
    exit 0
fi

base="${APIDIFF_BASE:-HEAD~1}"
if ! git rev-parse --verify --quiet "$base^{commit}" >/dev/null; then
    echo "apidiff: base commit $base not available; skipping"
    exit 0
fi

tmp="$(mktemp -d)"
trap 'git worktree remove --force "$tmp/base" >/dev/null 2>&1 || true; rm -rf "$tmp"' EXIT

git worktree add --detach "$tmp/base" "$base" >/dev/null

(cd "$tmp/base" && apidiff -w "$tmp/old.export" .)
report="$(apidiff -incompatible "$tmp/old.export" . || true)"

# Drop allowlisted lines from the report.
if [ -f scripts/apidiff_allowlist.txt ]; then
    grep -v '^[[:space:]]*\(#\|$\)' scripts/apidiff_allowlist.txt > "$tmp/allow" || true
    if [ -s "$tmp/allow" ]; then
        report="$(printf '%s\n' "$report" | grep -v -F -x -f "$tmp/allow" || true)"
    fi
fi
report="$(printf '%s\n' "$report" | sed '/^[[:space:]]*$/d')"

if [ -n "$report" ]; then
    echo "apidiff: incompatible API changes vs $base:"
    printf '%s\n' "$report"
    echo "apidiff: extend scripts/apidiff_allowlist.txt if the break is intentional"
    exit 1
fi
echo "apidiff: exported API compatible with $base"
