package migratory_test

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"migratory"
)

// TestRunMatchesDeprecatedEntryPoints checks the unified Run against the
// deprecated wrappers it subsumes: identical engines, identical numbers.
func TestRunMatchesDeprecatedEntryPoints(t *testing.T) {
	const (
		nodes  = 16
		seed   = 1993
		length = 20_000
	)
	ctx := context.Background()
	accs, err := migratory.GenerateWorkload("MP3D", nodes, seed, length)
	if err != nil {
		t.Fatal(err)
	}
	geom := migratory.MustGeometry(16, 4096)

	t.Run("directory", func(t *testing.T) {
		res, err := migratory.Run(ctx, migratory.RunConfig{
			Engine: migratory.EngineDirectory, Workload: "MP3D",
			Policy: "basic", Length: length,
		})
		if err != nil {
			t.Fatal(err)
		}
		pol, err := migratory.PolicyByName("basic")
		if err != nil {
			t.Fatal(err)
		}
		sys, err := migratory.RunDirectory(ctx, migratory.NewSliceTraceSource(accs), migratory.DirectoryConfig{
			Nodes:     nodes,
			Geometry:  geom,
			Assoc:     4,
			Policy:    pol,
			Placement: migratory.UsageBasedPlacement(accs, geom, nodes),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Directory == nil || res.Directory.Msgs != sys.Messages() {
			t.Fatalf("message counts diverge: %+v vs %+v", res.Directory, sys.Messages())
		}
		if res.Accesses != sys.Counters().Accesses {
			t.Fatalf("access counts diverge: %d vs %d", res.Accesses, sys.Counters().Accesses)
		}
	})

	t.Run("bus", func(t *testing.T) {
		res, err := migratory.Run(ctx, migratory.RunConfig{
			Engine: migratory.EngineBus, Workload: "MP3D",
			Protocol: "adaptive", Length: length,
		})
		if err != nil {
			t.Fatal(err)
		}
		sys, err := migratory.RunBus(ctx, migratory.NewSliceTraceSource(accs), migratory.BusConfig{
			Nodes:    nodes,
			Geometry: geom,
			Assoc:    4,
			Protocol: migratory.BusAdaptive,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Bus == nil || res.Bus.Counts != sys.Counts() {
			t.Fatalf("bus counts diverge: %+v vs %+v", res.Bus, sys.Counts())
		}
	})

	t.Run("timing", func(t *testing.T) {
		res, err := migratory.Run(ctx, migratory.RunConfig{
			Engine: migratory.EngineTiming, Workload: "MP3D",
			Policy: "basic", Length: length, CacheBytes: 1 << 14,
		})
		if err != nil {
			t.Fatal(err)
		}
		old, err := migratory.RunTimedSource(ctx, migratory.NewSliceTraceSource(accs), migratory.TimingConfig{
			Nodes:      nodes,
			Geometry:   geom,
			CacheBytes: 1 << 14,
			Policy: func() migratory.Policy {
				p, err := migratory.PolicyByName("basic")
				if err != nil {
					t.Fatal(err)
				}
				return p
			}(),
			Params: migratory.DefaultTimingParams(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Timing == nil || !reflect.DeepEqual(*res.Timing, old) {
			t.Fatalf("timing results diverge: %+v vs %+v", res.Timing, old)
		}
	})
}

// TestRunFacadeSentinels checks the facade's re-exported sentinels match
// what Run returns for bad configs.
func TestRunFacadeSentinels(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name string
		cfg  migratory.RunConfig
		want error
	}{
		{"engine", migratory.RunConfig{Engine: "fpga", Workload: "MP3D"}, migratory.ErrUnknownEngine},
		{"profile", migratory.RunConfig{Engine: migratory.EngineDirectory, Workload: "Quake", Policy: "basic"}, migratory.ErrUnknownProfile},
		{"policy", migratory.RunConfig{Engine: migratory.EngineDirectory, Workload: "MP3D", Policy: "chaotic"}, migratory.ErrUnknownPolicy},
		{"protocol", migratory.RunConfig{Engine: migratory.EngineBus, Workload: "MP3D", Protocol: "firefly"}, migratory.ErrUnknownProtocol},
		{"placement", migratory.RunConfig{Engine: migratory.EngineDirectory, Workload: "MP3D", Policy: "basic", Placement: "random"}, migratory.ErrUnknownPlacement},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := migratory.Run(ctx, tc.cfg); !errors.Is(err, tc.want) {
				t.Fatalf("Run = %v, want errors.Is(err, %v)", err, tc.want)
			}
			if err := tc.cfg.Validate(); !errors.Is(err, tc.want) {
				t.Fatalf("Validate = %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}
}
