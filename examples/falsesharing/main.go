// False sharing versus block size: the paper's Table 3 effect, distilled.
//
// Small migratory records packed densely into memory behave perfectly
// migratory at 16-byte blocks — each record is alone in its blocks — but at
// 256-byte blocks several concurrently active records share a block, the
// block's accesses stop looking migratory, and the adaptive protocols lose
// their leverage (§4.1: "as block size increases, fewer blocks will be
// migratory because of false sharing").
//
// Run with:
//
//	go run ./examples/falsesharing
package main

import (
	"fmt"

	"migratory"
)

func main() {
	// MP3D-like particle records: 36 bytes each, padded to 48, hammered
	// by 16 workers with strong spatial locality.
	profile := migratory.WorkloadProfile{
		Name: "particles",
		Segments: []migratory.WorkloadSegment{{
			Name: "records", Kind: migratory.Migratory,
			Objects: 4096, ObjWords: 9, StrideBytes: 48,
			Weight: 1, Revisits: 30, WindowObjects: 96,
		}},
	}
	accs, err := migratory.GenerateFromProfile(profile, 16, 11, 150_000)
	if err != nil {
		panic(err)
	}

	fmt.Println("densely packed 36-byte migratory records, infinite caches:")
	fmt.Println()
	fmt.Printf("%-10s %14s %14s %12s %14s\n",
		"block", "conv msgs", "adaptive msgs", "reduction", "migratory blks")
	for _, blockSize := range []int{16, 32, 64, 128, 256} {
		geom := migratory.MustGeometry(blockSize, 4096)
		pl := migratory.UsageBasedPlacement(accs, geom, 16)

		// How many blocks still *look* migratory at this granularity?
		census := migratory.AnalyzeTrace(accs, geom)

		var base, adaptive migratory.Msgs
		for _, policy := range []migratory.Policy{migratory.Conventional, migratory.Aggressive} {
			sys, err := migratory.NewDirectorySystem(migratory.DirectoryConfig{
				Nodes:     16,
				Geometry:  geom,
				Policy:    policy,
				Placement: pl,
			})
			if err != nil {
				panic(err)
			}
			if err := sys.Run(accs); err != nil {
				panic(err)
			}
			if policy.Adaptive {
				adaptive = sys.Messages()
			} else {
				base = sys.Messages()
			}
		}
		fmt.Printf("%-10s %14d %14d %11.1f%% %8d/%d\n",
			fmt.Sprintf("%d bytes", blockSize),
			base.Total(), adaptive.Total(),
			migratory.Reduction(base, adaptive),
			census.MigratoryBlocks, census.Blocks)
	}
	fmt.Println()
	fmt.Println("As blocks grow past the record size, concurrently active records")
	fmt.Println("collide in single blocks: the off-line census shows the migratory")
	fmt.Println("blocks evaporating, and the adaptive protocol's reduction with them.")
}
