// Task queue: one of the paper's §1 motivating scenarios.
//
// A pool of workers pulls task records from a shared queue: each record is
// claimed, read, updated, and handed on — classic migratory sharing. This
// example builds the scenario with a custom workload profile, runs the full
// directory-protocol sweep over it, and reports how much communication each
// member of the adaptive family removes, at two cache sizes.
//
// Run with:
//
//	go run ./examples/taskqueue
package main

import (
	"fmt"

	"migratory"
)

func main() {
	profile := migratory.WorkloadProfile{
		Name: "taskqueue",
		Segments: []migratory.WorkloadSegment{
			// 2048 task records of 48 bytes, claimed by random workers,
			// each record visited ~12 times over its life.
			{
				Name: "tasks", Kind: migratory.Migratory,
				Objects: 2048, ObjWords: 12, StrideBytes: 64,
				Weight: 0.7, Revisits: 12, WindowObjects: 128,
			},
			// The immutable task descriptions everyone consults.
			{
				Name: "descriptions", Kind: migratory.ReadShared,
				Objects: 1024, ObjWords: 16, StrideBytes: 64,
				Weight: 0.3, Revisits: 24, WindowObjects: 128,
			},
		},
	}

	accs, err := migratory.GenerateFromProfile(profile, 16, 7, 200_000)
	if err != nil {
		panic(err)
	}
	geom := migratory.MustGeometry(16, 4096)
	pl := migratory.UsageBasedPlacement(accs, geom, 16)

	st := migratory.AnalyzeTrace(accs, geom)
	fmt.Printf("trace: %d accesses, %d blocks, off-line census: %d migratory / %d read-shared / %d other\n\n",
		st.Accesses, st.Blocks, st.MigratoryBlocks, st.ReadSharedBlocks, st.OtherBlocks)

	for _, cacheBytes := range []int{16 << 10, 0} {
		label := "infinite"
		if cacheBytes > 0 {
			label = fmt.Sprintf("%d KB", cacheBytes>>10)
		}
		fmt.Printf("per-node cache: %s\n", label)
		var base migratory.Msgs
		for _, policy := range migratory.Policies() {
			sys, err := migratory.NewDirectorySystem(migratory.DirectoryConfig{
				Nodes:      16,
				Geometry:   geom,
				CacheBytes: cacheBytes,
				Policy:     policy,
				Placement:  pl,
			})
			if err != nil {
				panic(err)
			}
			if err := sys.Run(accs); err != nil {
				panic(err)
			}
			m := sys.Messages()
			if policy.Name == "conventional" {
				base = m
				fmt.Printf("  %-13s %7d short + %6d data\n", policy.Name, m.Short, m.Data)
				continue
			}
			fmt.Printf("  %-13s %7d short + %6d data   (%.1f%% fewer messages)\n",
				policy.Name, m.Short, m.Data, migratory.Reduction(base, m))
		}
		fmt.Println()
	}
}
