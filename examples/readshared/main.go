// Read-shared data: the pattern the migratory optimization must not break.
//
// A configuration table is written once by its owner and then read by every
// worker, repeatedly. A pure migrate-on-read-miss policy (Sequent Symmetry
// model B, §5) keeps stealing the block from reader to reader; the paper's
// adaptive protocol detects the first clean handoff, declassifies the
// block, and replicates like the conventional protocol — the worst case is
// a single extra transaction per block.
//
// Run with:
//
//	go run ./examples/readshared
package main

import (
	"fmt"

	"migratory"
)

func main() {
	geom := migratory.MustGeometry(16, 4096)

	// Node 0 initializes a 1 KB table; then three rounds of all 15 other
	// nodes reading all of it.
	var accs []migratory.Access
	for w := 0; w < 256; w++ {
		accs = append(accs, migratory.Access{Node: 0, Kind: migratory.Write, Addr: migratory.Addr(w * 4)})
	}
	for round := 0; round < 3; round++ {
		for n := migratory.NodeID(1); n < 16; n++ {
			for w := 0; w < 256; w++ {
				accs = append(accs, migratory.Access{Node: n, Kind: migratory.Read, Addr: migratory.Addr(w * 4)})
			}
		}
	}

	fmt.Println("write-once read-many table, directory protocols:")
	var base migratory.Msgs
	for _, policy := range migratory.Policies() {
		sys, err := migratory.NewDirectorySystem(migratory.DirectoryConfig{
			Nodes:          16,
			Geometry:       geom,
			Policy:         policy,
			Placement:      migratory.RoundRobinPlacement(16),
			CheckCoherence: true,
		})
		if err != nil {
			panic(err)
		}
		if err := sys.Run(accs); err != nil {
			panic(err)
		}
		m := sys.Messages()
		if policy.Name == "conventional" {
			base = m
			fmt.Printf("  %-13s %5d short + %5d data\n", policy.Name, m.Short, m.Data)
			continue
		}
		fmt.Printf("  %-13s %5d short + %5d data  (%+.1f%% vs conventional)\n",
			policy.Name, m.Short, m.Data, -migratory.Reduction(base, m))
	}

	fmt.Println()
	fmt.Println("the same pattern on the bus protocols:")
	for _, p := range []migratory.BusProtocol{migratory.BusMESI, migratory.BusAdaptive, migratory.BusSymmetry} {
		s, err := migratory.NewBusSystem(migratory.BusConfig{
			Nodes: 16, Geometry: geom, Protocol: p, CheckCoherence: true,
		})
		if err != nil {
			panic(err)
		}
		if err := s.Run(accs); err != nil {
			panic(err)
		}
		c := s.Counts()
		fmt.Printf("  %-10s %5d read misses, %4d invalidations, %5d total transactions\n",
			p, c.ReadMiss, c.Invalidation, c.Total())
	}
	fmt.Println()
	fmt.Println("Symmetry's unconditional migration forces the readers to keep stealing")
	fmt.Println("the block; the adaptive protocol declassifies after one clean handoff")
	fmt.Println("and matches MESI almost exactly.")
}
