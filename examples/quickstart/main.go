// Quickstart: the paper's §2 example, end to end.
//
// A shared datum migrates between processors P1..P4, each reading then
// writing it. Under the conventional replicate-on-read-miss protocol every
// migration costs a read-miss transaction plus an invalidation
// transaction; the adaptive protocol detects the pattern and halves the
// traffic by migrating the block on the read miss.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"migratory"
)

func main() {
	// A 16-node CC-NUMA machine with 16-byte blocks and 4 KB pages. The
	// datum lives on a page homed at node 0; the workers are remote.
	geom := migratory.MustGeometry(16, 4096)

	// The access pattern of a lock-protected counter: each worker in turn
	// reads the current value and writes an updated one.
	var accs []migratory.Access
	for round := 0; round < 50; round++ {
		for n := migratory.NodeID(1); n <= 4; n++ {
			accs = append(accs,
				migratory.Access{Node: n, Kind: migratory.Read, Addr: 0x40},
				migratory.Access{Node: n, Kind: migratory.Write, Addr: 0x40},
			)
		}
	}

	fmt.Println("migratory counter, 200 turns across 4 workers:")
	fmt.Println()
	for _, policy := range migratory.Policies() {
		sys, err := migratory.NewDirectorySystem(migratory.DirectoryConfig{
			Nodes:     16,
			Geometry:  geom,
			Policy:    policy,
			Placement: migratory.RoundRobinPlacement(16),
		})
		if err != nil {
			panic(err)
		}
		if err := sys.Run(accs); err != nil {
			panic(err)
		}
		m := sys.Messages()
		c := sys.Counters()
		fmt.Printf("%-13s %3d short + %3d data messages  (%3d migrations, %3d ownership upgrades)\n",
			policy.Name, m.Short, m.Data, c.Migrations, c.WriteUpgrade)
	}

	fmt.Println()
	fmt.Println("The adaptive protocols approach the theoretical maximum saving of 50%:")
	fmt.Println("once a block is classified migratory, the read miss hands over an")
	fmt.Println("exclusive copy and the subsequent write completes silently.")
}
