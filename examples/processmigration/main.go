// Process migration: the closing observation of the paper's §6.
//
// "While at first blush one might expect that the adaptive protocols would
// not affect the cost of operations on private data, treating private data
// as though it is migratory will reduce the cost of process migration."
//
// A process's private working set is, from the coherence protocol's point
// of view, data accessed by one processor — until the scheduler moves the
// process. Then every block must follow it. Under the conventional
// protocol each block costs a read miss *plus* an ownership upgrade at the
// new node; under the aggressive protocol (which classifies
// single-processor read/write data as migratory) each block moves in a
// single transaction.
//
// Run with:
//
//	go run ./examples/processmigration
package main

import (
	"fmt"

	"migratory"
)

const (
	workingSetKB = 32
	blockSize    = 16
	blocks       = workingSetKB * 1024 / blockSize
)

// epoch emits one scheduling quantum: the process (on the given node)
// walks its working set, reading and updating every block.
func epoch(node migratory.NodeID) []migratory.Access {
	var accs []migratory.Access
	for b := 0; b < blocks; b++ {
		addr := migratory.Addr(b * blockSize)
		accs = append(accs,
			migratory.Access{Node: node, Kind: migratory.Read, Addr: addr},
			migratory.Access{Node: node, Kind: migratory.Write, Addr: addr},
		)
	}
	return accs
}

func main() {
	geom := migratory.MustGeometry(blockSize, 4096)
	// The process runs on node 1, is migrated to node 2, then to node 3,
	// and back to node 1 — four scheduling epochs.
	var accs []migratory.Access
	for _, n := range []migratory.NodeID{1, 2, 3, 1} {
		accs = append(accs, epoch(n)...)
	}

	fmt.Printf("a %d KB private working set dragged across 3 process migrations:\n\n", workingSetKB)
	var base migratory.Msgs
	for _, policy := range migratory.Policies() {
		sys, err := migratory.NewDirectorySystem(migratory.DirectoryConfig{
			Nodes:          16,
			Geometry:       geom,
			Policy:         policy,
			Placement:      migratory.RoundRobinPlacement(16),
			CheckCoherence: true,
		})
		if err != nil {
			panic(err)
		}
		if err := sys.Run(accs); err != nil {
			panic(err)
		}
		m := sys.Messages()
		c := sys.Counters()
		if policy.Name == "conventional" {
			base = m
			fmt.Printf("  %-13s %6d short + %5d data messages  (%5d upgrades)\n",
				policy.Name, m.Short, m.Data, c.WriteUpgrade)
			continue
		}
		fmt.Printf("  %-13s %6d short + %5d data messages  (%5d upgrades, %.1f%% fewer messages)\n",
			policy.Name, m.Short, m.Data, c.WriteUpgrade, migratory.Reduction(base, m))
	}
	fmt.Println()
	fmt.Println("After each migration the conventional protocol pays two transactions")
	fmt.Println("per block (refetch, then upgrade); the adaptive protocols learn after")
	fmt.Println("the first migration — and the aggressive protocol never pays an")
	fmt.Println("upgrade at all, halving the cost of moving the process.")
}
