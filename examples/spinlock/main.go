// Spinlock-protected record on a snooping bus.
//
// This example drives the paper's bus-based protocols (§2.1, Figures 1 and
// 2) directly: four processors take turns updating a record under a lock,
// and we watch the adaptive protocol's cache-line states classify the block
// as migratory (Migratory-Dirty) and eliminate the invalidation traffic.
// The Sequent-Symmetry-style baseline from §5 is included to show why a
// non-adaptive migrate-on-read policy backfires on read-shared data.
//
// Run with:
//
//	go run ./examples/spinlock
package main

import (
	"fmt"

	"migratory"
)

var stateNames = []string{"E", "S2", "S", "D", "MC", "MD"}

func render(states []int) string {
	out := ""
	for n, st := range states {
		if st < 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("P%d:%s", n, stateNames[st])
	}
	if out == "" {
		return "(uncached)"
	}
	return out
}

func main() {
	geom := migratory.MustGeometry(16, 4096)
	sys, err := migratory.NewBusSystem(migratory.BusConfig{
		Nodes:          8,
		Geometry:       geom,
		Protocol:       migratory.BusAdaptive,
		CheckCoherence: true,
	})
	if err != nil {
		panic(err)
	}

	fmt.Println("adaptive snooping protocol, block states after each step:")
	fmt.Println()
	script := []struct {
		desc string
		acc  migratory.Access
	}{
		{"P1 acquires the lock and reads the record", migratory.Access{Node: 1, Kind: migratory.Read, Addr: 0}},
		{"P1 updates it", migratory.Access{Node: 1, Kind: migratory.Write, Addr: 0}},
		{"P2 reads it (replicate: S2 + S pair)", migratory.Access{Node: 2, Kind: migratory.Read, Addr: 0}},
		{"P2 writes: the S2 copy asserts Migratory", migratory.Access{Node: 2, Kind: migratory.Write, Addr: 0}},
		{"P3 reads: the MD block migrates", migratory.Access{Node: 3, Kind: migratory.Read, Addr: 0}},
		{"P3 writes silently (MC -> MD)", migratory.Access{Node: 3, Kind: migratory.Write, Addr: 0}},
		{"P4 reads: migrates again", migratory.Access{Node: 4, Kind: migratory.Read, Addr: 0}},
		{"P4 writes silently", migratory.Access{Node: 4, Kind: migratory.Write, Addr: 0}},
	}
	for _, step := range script {
		if err := sys.Access(step.acc); err != nil {
			panic(err)
		}
		fmt.Printf("  %-45s %s\n", step.desc, render(sys.States(0)))
	}
	c := sys.Counts()
	fmt.Printf("\nbus transactions: %d read misses, %d write misses, %d invalidations, %d write-backs\n",
		c.ReadMiss, c.WriteMiss, c.Invalidation, c.WriteBack)

	// Now the same workload at scale, on all four bus protocols.
	var accs []migratory.Access
	for round := 0; round < 100; round++ {
		for n := migratory.NodeID(0); n < 8; n++ {
			accs = append(accs,
				migratory.Access{Node: n, Kind: migratory.Read, Addr: 0x100},
				migratory.Access{Node: n, Kind: migratory.Write, Addr: 0x100},
			)
		}
	}
	fmt.Println("\n800 lock-protected turns, all protocols:")
	for _, p := range []migratory.BusProtocol{
		migratory.BusMESI, migratory.BusAdaptive,
		migratory.BusAdaptiveMigrateFirst, migratory.BusSymmetry,
	} {
		s, err := migratory.NewBusSystem(migratory.BusConfig{
			Nodes: 8, Geometry: geom, Protocol: p, CheckCoherence: true,
		})
		if err != nil {
			panic(err)
		}
		if err := s.Run(accs); err != nil {
			panic(err)
		}
		cc := s.Counts()
		fmt.Printf("  %-22s %4d transactions (model 2 cost %4d)\n",
			p, cc.Total(), cc.Model2(p != migratory.BusMESI && p != migratory.BusSymmetry))
	}
}
