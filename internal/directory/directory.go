// Package directory implements the paper's directory-based protocols on a
// simulated CC-NUMA multiprocessor (§2.2, §3.3): a collection of nodes,
// each with a processor, a private 4-way set-associative cache, a memory
// module, and a memory controller holding the directory entries for the
// blocks homed at that node.
//
// Coherence is write-invalidate with delayed write-back: a modified block
// is written back when it is replaced or when another processor accesses
// it. The adaptive variants layer the migratory classification of
// internal/core on top, switching each block between replicate-on-read-miss
// and migrate-on-read-miss. Message accounting follows Table 1 exactly
// (internal/cost), including clean-replacement notifications to the home
// node.
package directory

import (
	"context"
	"errors"
	"fmt"
	"io"

	"migratory/internal/cache"
	"migratory/internal/core"
	"migratory/internal/cost"
	"migratory/internal/memory"
	"migratory/internal/obs"
	"migratory/internal/placement"
	"migratory/internal/telemetry"
	"migratory/internal/trace"
)

// Cache line permission states. A line's Dirty flag is orthogonal: a
// PermWrite line is clean until its holder actually writes.
const (
	// PermRead lines may be read but not written (the directory knows the
	// holder as a sharer).
	PermRead cache.State = iota
	// PermWrite lines may be read and written without contacting the
	// directory (the directory knows the holder as the owner). The
	// conventional protocol grants PermWrite only on writes; the adaptive
	// protocols also grant it when migrating a block on a read miss.
	PermWrite
)

// Config describes one simulated machine.
type Config struct {
	// Nodes is the processor/node count. The paper simulates 16.
	Nodes int
	// Geometry fixes block and page sizes.
	Geometry memory.Geometry
	// CacheBytes is the per-node cache capacity; 0 simulates an infinite
	// cache (no capacity or conflict misses, as in Table 3).
	CacheBytes int
	// Assoc is the cache associativity; 0 defaults to the paper's 4.
	Assoc int
	// Policy selects the protocol variant.
	Policy core.Policy
	// Placement maps pages to home nodes.
	Placement placement.Policy
	// CheckCoherence makes every access verify that the value observed is
	// the most recently written version of the block. Enabled by tests;
	// costs one map lookup per access.
	CheckCoherence bool
	// FreeDropNotifications treats the clean-replacement notifications to
	// the home node as free. §3.3 discusses exactly this accounting choice
	// ("one could argue that the notification message is a cheap,
	// low-priority maintenance message") and deliberately charges them;
	// this flag is the ablation.
	FreeDropNotifications bool
	// MigratoryOracle, when non-nil, replaces the on-line classifier with
	// off-line knowledge: read misses to blocks the oracle marks migratory
	// are issued as read-with-ownership operations (the §5 "load with
	// intent to modify" of the Berkeley Ownership protocol), charged as
	// write misses and granting a writable copy; all other blocks
	// replicate. This is the upper bound an off-line analysis could reach,
	// against which the on-line protocols are judged. Policy should be
	// Conventional when an oracle is supplied.
	MigratoryOracle func(memory.BlockID) bool
	// DirPointers bounds the number of sharer pointers a directory entry
	// can store, in the style of limited directories (Dir-i-B; the paper
	// cites Alewife's LimitLESS as a directory design that does not retain
	// state for uncached blocks). 0 means full-map (the paper's model).
	// When the copy set outgrows the pointers, invalidations must be
	// broadcast: every node except the initiator and home receives an
	// invalidation and acknowledges it, whether it holds a copy or not.
	// Migratory detection interacts with this favourably: migrating blocks
	// never grow their copy sets past one, so overflows become rarer.
	DirPointers int
	// Probe, when non-nil, receives a typed event for every coherence
	// action (internal/obs). Probes are invoked synchronously from the
	// simulation loop; nil (the default) costs nothing beyond a branch at
	// each emission site.
	Probe obs.Probe
	// Stats, when non-nil, receives batch-granularity run telemetry
	// (internal/telemetry): accesses processed, batches delivered,
	// classifier transitions, and migrations. The counters are pushed once
	// per DefaultBatchSize chunk, never per access, so nil costs a single
	// pointer test per batch.
	Stats *telemetry.RunStats
	// Decoders is the trace-decode worker count for sharded runs fed by an
	// indexed (MTR3) source: segments are decoded and routed concurrently
	// by this many goroutines instead of one producer (trace.DemuxParallel).
	// 0 means the source's configured width; 1 forces the single-producer
	// path. Results are bit-identical either way.
	Decoders int

	// shards/shardIndex mark this System as one slice of a set-sharded
	// run: its caches hold only the sets routed to shardIndex. Set by
	// NewSharded; zero for a whole-machine System.
	shards     int
	shardIndex int
}

func (c Config) withDefaults() Config {
	if c.Assoc == 0 {
		c.Assoc = 4
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Nodes <= 0 || c.Nodes > memory.MaxNodes {
		return fmt.Errorf("directory: node count %d out of range [1,%d]", c.Nodes, memory.MaxNodes)
	}
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	if c.Placement == nil {
		return fmt.Errorf("directory: no placement policy")
	}
	cc := cache.Config{
		SizeBytes: c.CacheBytes, BlockSize: c.Geometry.BlockSize(), Assoc: c.Assoc,
		Shards: c.shards, ShardIndex: c.shardIndex,
	}
	if err := cc.Validate(); err != nil {
		return err
	}
	return nil
}

// entry is one block's directory entry: the adaptive classifier state plus
// the copy set and owner tracking of the base protocol.
type entry struct {
	cls    core.Classifier
	copies memory.NodeSet
	// owner is the node holding a PermWrite line, or memory.NoNode.
	owner memory.NodeID
	// dirty mirrors the owner's Dirty flag. In hardware the directory
	// learns this when it next consults the owner; the simulator keeps it
	// synchronized eagerly, which is equivalent at every observation point.
	dirty bool
	// everMigratory records whether the block was classified migratory at
	// any point, for classifier-accuracy analysis.
	everMigratory bool
	// overflow is set when the copy set outgrew a limited directory's
	// pointers; invalidations must then be broadcast.
	overflow bool
}

// Counters tallies protocol activity beyond raw message counts.
type Counters struct {
	Accesses     uint64
	ReadHits     uint64
	ReadMisses   uint64
	WriteHits    uint64 // write hits needing no communication (PermWrite)
	WriteUpgrade uint64 // write hits on PermRead lines (invalidation requests)
	WriteMisses  uint64

	Migrations      uint64 // read misses served by migrating the block
	Replications    uint64 // read misses served by replicating the block
	Overflows       uint64 // invalidations broadcast due to limited directory pointers
	Invalidations   uint64 // individual cache copies invalidated remotely
	WriteBacks      uint64 // dirty replacements
	CleanDrops      uint64 // clean replacements (notification to home)
	Classifications uint64 // transitions other->migratory
	Declassified    uint64 // transitions migratory->other
}

// Merge adds o's tallies into c. Counters are pure sums, so merging the
// per-shard counters of a set-sharded run in any order reproduces the
// sequential run's totals exactly.
func (c *Counters) Merge(o Counters) {
	c.Accesses += o.Accesses
	c.ReadHits += o.ReadHits
	c.ReadMisses += o.ReadMisses
	c.WriteHits += o.WriteHits
	c.WriteUpgrade += o.WriteUpgrade
	c.WriteMisses += o.WriteMisses
	c.Migrations += o.Migrations
	c.Replications += o.Replications
	c.Overflows += o.Overflows
	c.Invalidations += o.Invalidations
	c.WriteBacks += o.WriteBacks
	c.CleanDrops += o.CleanDrops
	c.Classifications += o.Classifications
	c.Declassified += o.Declassified
}

// OpInfo describes the coherence action taken by the most recent access,
// for consumers (like the execution-driven timing model of §4.2) that need
// more than aggregate counts.
type OpInfo struct {
	// Hit is true when the access completed in the local cache with no
	// communication (read hit or write to a PermWrite line).
	Hit bool
	// Write is true for write accesses.
	Write bool
	// Op classifies the transaction when Hit is false.
	Op cost.Op
	// HomeLocal reports whether the initiator is the home node.
	HomeLocal bool
	// OwnerConsult reports whether a remote owner had to be consulted
	// (Table 1's dirty rows).
	OwnerConsult bool
	// Distant is ||DistantCopies|| for the transaction.
	Distant int
	// Migrated is true when the block was handed over with write
	// permission on a read miss.
	Migrated bool
}

// System is one simulated machine running one protocol over one trace.
// Entries and versions live in chunked BlockMap arenas rather than Go maps:
// block lookups are the per-access hot path of every sweep, and the trace
// generators produce dense block identifiers that index straight into a
// slice chunk (sparse external traces fall back to a map transparently).
type System struct {
	cfg     Config
	caches  []*cache.Cache
	entries memory.BlockMap[entry]
	msgs    cost.Counter
	n       Counters
	// versions holds the globally latest write version of each block, for
	// coherence checking; nil unless CheckCoherence is set.
	versions *memory.BlockMap[uint64]
	lastOp   OpInfo
	// probe mirrors cfg.Probe; cur is the access being serviced and step
	// its index in the global trace interleaving, for stamping emitted
	// events (maintained only when probe is non-nil). In a set-sharded run
	// the step comes from the demux stage, so events carry the same step a
	// sequential run would stamp.
	probe obs.Probe
	cur   trace.Access
	step  uint64
	// stats mirrors cfg.Stats; statTrans/statMig remember the classifier
	// counter values already pushed to it, so noteBatch adds deltas without
	// the hot path ever touching an atomic.
	stats     *telemetry.RunStats
	statTrans uint64
	statMig   uint64
	// invalHist counts ownership-acquiring operations by how many remote
	// copies they invalidated (the cache-invalidation-pattern analysis of
	// Weber & Gupta, the paper's reference [23], which motivates the whole
	// migratory-detection idea: most invalidating writes hit exactly one
	// remote copy). Indexed by invalidation-set size, which is at most the
	// node count.
	invalHist []uint64
}

// InvalidationHistogram returns, for each invalidation-set size, how many
// ownership-acquiring operations (write misses and write-hit upgrades)
// invalidated that many remote copies. Size 0 covers upgrades and write
// misses that found no other cached copy.
func (s *System) InvalidationHistogram() map[int]uint64 {
	out := make(map[int]uint64, len(s.invalHist))
	for k, v := range s.invalHist {
		if v != 0 {
			out[k] = v
		}
	}
	return out
}

func (s *System) noteInvalidations(n int) {
	for len(s.invalHist) <= n {
		s.invalHist = append(s.invalHist, 0)
	}
	s.invalHist[n]++
}

// LastOp returns the OpInfo for the most recent Access call.
func (s *System) LastOp() OpInfo { return s.lastOp }

// New builds a System; the configuration must be valid.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &System{
		cfg:       cfg,
		caches:    make([]*cache.Cache, cfg.Nodes),
		invalHist: make([]uint64, cfg.Nodes+1),
		probe:     cfg.Probe,
		stats:     cfg.Stats,
	}
	for i := range s.caches {
		s.caches[i] = cache.New(cache.Config{
			SizeBytes:  cfg.CacheBytes,
			BlockSize:  cfg.Geometry.BlockSize(),
			Assoc:      cfg.Assoc,
			Shards:     cfg.shards,
			ShardIndex: cfg.shardIndex,
		})
	}
	if cfg.CheckCoherence {
		s.versions = new(memory.BlockMap[uint64])
	}
	return s, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

func (s *System) entryFor(b memory.BlockID) *entry {
	e, created := s.entries.GetOrCreate(b)
	if created {
		e.cls = core.NewClassifier(s.cfg.Policy)
		e.owner = memory.NoNode
		if s.probe != nil {
			e.cls.Observe = func(ch core.Change) { s.emitClassifier(b, ch) }
		}
	}
	return e
}

// StateName renders a directory cache-line permission state for events and
// diagnostics ("R", "W"; "I" denotes an absent line).
func StateName(st cache.State) string {
	if st == PermWrite {
		return "W"
	}
	return "R"
}

// emit stamps and delivers one event; callers guard with s.probe != nil.
func (s *System) emit(e obs.Event) {
	e.Step = s.step
	e.Variant = s.cfg.Policy.Name
	e.Access = s.cur
	s.probe.OnEvent(e)
}

// emitClassifier translates a classifier state change into the matching
// event kind. The node is the requester of the in-flight access: every
// classifier transition happens while the directory services some access.
func (s *System) emitClassifier(b memory.BlockID, ch core.Change) {
	k := obs.KindEvidence
	if ch.Flipped {
		if ch.Migratory {
			k = obs.KindClassify
		} else {
			k = obs.KindDeclassify
		}
	}
	s.emit(obs.Event{Kind: k, Node: s.cur.Node, Block: b, Evidence: ch.Evidence, Migratory: ch.Migratory})
}

// emitMessage reports one charged transaction.
func (s *System) emitMessage(n memory.NodeID, b memory.BlockID, op cost.Op, m cost.Msgs) {
	s.emit(obs.Event{Kind: obs.KindMessage, Node: n, Block: b, Op: op.String(), Short: m.Short, Data: m.Data})
}

// emitInvalidation reports the invalidation of node m's copy of b, peeking
// the line's state before the caller invalidates it.
func (s *System) emitInvalidation(m memory.NodeID, b memory.BlockID) {
	old := "R"
	if line := s.caches[m].Peek(b); line != nil {
		old = StateName(line.State)
	}
	s.emit(obs.Event{Kind: obs.KindInvalidation, Node: m, Block: b, Old: old, New: "I"})
}

func (s *System) home(b memory.BlockID) memory.NodeID {
	return s.cfg.Placement.Home(s.cfg.Geometry.PageOfBlock(b))
}

// cancelCheckInterval is how many accesses run between context checks in
// RunSource — one check per trace.DefaultBatchSize chunk. Coarse enough
// that the check is free against the per-access simulation cost, fine
// enough that cancellation lands within microseconds.
const cancelCheckInterval = trace.DefaultBatchSize

// Run feeds every access of the trace through the system.
func (s *System) Run(accesses []trace.Access) error {
	return s.RunSource(nil, trace.NewSliceSource(accesses))
}

// RunSource feeds every access of a streamed trace through the system,
// holding O(1) trace memory. Accesses are pulled in DefaultBatchSize chunks
// (through the source's own NextBatch when it has one), so the per-access
// path pays no interface call and no cancellation check. A nil ctx is
// treated as context.Background(); on cancellation RunSource returns
// ctx.Err() within cancelCheckInterval accesses, so callers can test
// errors.Is(err, context.Canceled).
func (s *System) RunSource(ctx context.Context, src trace.Source) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// Fast path: slice-backed sources chunk the underlying slice directly
	// instead of copying through a batch buffer.
	if ss, ok := src.(*trace.SliceSource); ok {
		rest := ss.Rest()
		for off := 0; ; off += cancelCheckInterval {
			if err := ctx.Err(); err != nil {
				return err
			}
			if off >= len(rest) {
				return nil
			}
			end := off + cancelCheckInterval
			if end > len(rest) {
				end = len(rest)
			}
			if err := s.runBatch(rest[off:end], off); err != nil {
				return err
			}
		}
	}
	buf := trace.GetBatch()
	defer trace.PutBatch(buf)
	off := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		n, err := trace.FillBatch(src, buf)
		if n > 0 {
			if berr := s.runBatch(buf[:n], off); berr != nil {
				return berr
			}
			off += n
		}
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("directory: trace source at access %d: %w", off, err)
		}
	}
}

// runBatch feeds one chunk of accesses through the system; the context
// check lives with the caller, outside the per-access loop. The body
// specializes the dominant case — a read hit with no probe attached and no
// coherence checking — so the steady-state kernel is a geometry shift, one
// cache lookup, and two counter increments, with the loop-invariant nil
// checks hoisted out of the per-access path.
func (s *System) runBatch(batch []trace.Access, base int) error {
	fast := s.probe == nil && s.versions == nil
	for i := range batch {
		a := batch[i]
		if int(a.Node) >= s.cfg.Nodes {
			return fmt.Errorf("access %d (%v): %w", base+i, a, s.Access(a))
		}
		s.n.Accesses++
		if s.probe != nil {
			s.cur = a
			s.step = s.n.Accesses - 1
		}
		b := s.cfg.Geometry.Block(a.Addr)
		line := s.caches[a.Node].Lookup(b)
		if fast && a.Kind == trace.Read && line != nil {
			s.n.ReadHits++
			s.lastOp = OpInfo{Hit: true}
			continue
		}
		if err := s.dispatch(a, b, line); err != nil {
			return fmt.Errorf("access %d (%v): %w", base+i, a, err)
		}
	}
	s.noteBatch(len(batch))
	return nil
}

// noteBatch pushes one processed batch into the attached telemetry
// counters: the access count directly, the classifier counters as deltas
// against what was last pushed (they are plain uint64s on the per-access
// path; the atomics are touched once per batch).
func (s *System) noteBatch(n int) {
	st := s.stats
	if st == nil {
		return
	}
	st.Accesses.Add(uint64(n))
	st.Batches.Add(1)
	if t := s.n.Classifications + s.n.Declassified; t != s.statTrans {
		st.Transitions.Add(t - s.statTrans)
		s.statTrans = t
	}
	if m := s.n.Migrations; m != s.statMig {
		st.Migrations.Add(m - s.statMig)
		s.statMig = m
	}
}

// Access applies a single shared-memory reference.
func (s *System) Access(a trace.Access) error {
	if int(a.Node) >= s.cfg.Nodes {
		return fmt.Errorf("directory: node %d out of range (%d nodes)", a.Node, s.cfg.Nodes)
	}
	s.n.Accesses++
	if s.probe != nil {
		s.cur = a
		s.step = s.n.Accesses - 1
	}
	b := s.cfg.Geometry.Block(a.Addr)
	line := s.caches[a.Node].Lookup(b)
	return s.dispatch(a, b, line)
}

// dispatch routes an access whose cache lookup already happened; it is the
// shared tail of Access and runBatch's specialized loop.
func (s *System) dispatch(a trace.Access, b memory.BlockID, line *cache.Line) error {
	if a.Kind == trace.Read {
		if line != nil {
			s.n.ReadHits++
			s.lastOp = OpInfo{Hit: true}
			if s.probe != nil {
				s.emit(obs.Event{Kind: obs.KindHit, Node: a.Node, Block: b})
			}
			return s.checkRead(b, line)
		}
		s.n.ReadMisses++
		s.readMiss(a.Node, b)
		return nil
	}

	// Write.
	if line != nil {
		switch line.State {
		case PermWrite:
			// Silent write: the holder already has write permission
			// (dirty block, or a clean block granted by migration).
			s.n.WriteHits++
			s.lastOp = OpInfo{Hit: true, Write: true}
			if s.probe != nil {
				s.emit(obs.Event{Kind: obs.KindHit, Node: a.Node, Block: b})
			}
			s.write(b, line)
			e := s.entryFor(b)
			e.dirty = true
			return nil
		case PermRead:
			s.n.WriteUpgrade++
			s.writeHitUpgrade(a.Node, b, line)
			return nil
		default:
			return fmt.Errorf("directory: line %v in impossible state %d", b, line.State)
		}
	}
	s.n.WriteMisses++
	s.writeMiss(a.Node, b)
	return nil
}

// readMiss services a read miss by node n.
func (s *System) readMiss(n memory.NodeID, b memory.BlockID) {
	if s.cfg.MigratoryOracle != nil && s.cfg.MigratoryOracle(b) {
		s.readWithOwnership(n, b)
		return
	}
	e := s.entryFor(b)
	home := s.home(b)
	homeLocal := home == n
	// Table 1's "dirty" rows apply whenever a cache holds the block with
	// write permission: the owner must be consulted even if it has not yet
	// modified the block (it may have, silently).
	ownerHeld := e.owner != memory.NoNode
	distant := e.copies.Without(n, home).Len()

	wasMigratory := e.cls.Migratory
	migrate := e.cls.ReadMiss(e.dirty)
	s.noteReclass(e, wasMigratory)

	m := s.msgs.Charge(cost.ReadMiss, homeLocal, ownerHeld, distant)
	s.lastOp = OpInfo{Op: cost.ReadMiss, HomeLocal: homeLocal, OwnerConsult: ownerHeld, Distant: distant, Migrated: migrate}
	if s.probe != nil {
		s.emitMessage(n, b, cost.ReadMiss, m)
	}

	if migrate {
		s.n.Migrations++
		// The old copy (if any) is invalidated in the same transaction
		// that delivers the block; any dirty data is merged into memory on
		// the way (already charged as the data messages above).
		if e.owner != memory.NoNode {
			old := e.owner
			if s.probe != nil {
				s.emitInvalidation(old, b)
			}
			s.caches[old].Invalidate(b)
			e.copies = e.copies.Remove(old)
			s.n.Invalidations++
		}
		if s.probe != nil {
			s.emit(obs.Event{Kind: obs.KindMigration, Node: n, Block: b, Migratory: true})
		}
		line := s.insert(n, b, PermWrite)
		line.Version = s.version(b)
		e.copies = e.copies.Add(n)
		e.owner = n
		e.dirty = false
		if s.probe != nil {
			s.emit(obs.Event{Kind: obs.KindState, Node: n, Block: b, Old: "I", New: "W", Migratory: e.cls.Migratory})
		}
		return
	}

	s.n.Replications++
	// Replication: a previous owner (dirty or clean-exclusive) is
	// downgraded to a reader and memory is made current.
	if e.owner != memory.NoNode {
		owner := s.caches[e.owner].Peek(b)
		owner.State = PermRead
		owner.Dirty = false
		if s.probe != nil {
			s.emit(obs.Event{Kind: obs.KindState, Node: e.owner, Block: b, Old: "W", New: "R"})
		}
		e.owner = memory.NoNode
		e.dirty = false
	}
	if s.probe != nil {
		s.emit(obs.Event{Kind: obs.KindReplication, Node: n, Block: b, Migratory: e.cls.Migratory})
	}
	line := s.insert(n, b, PermRead)
	line.Version = s.version(b)
	e.copies = e.copies.Add(n)
	if s.cfg.DirPointers > 0 && e.copies.Len() > s.cfg.DirPointers {
		e.overflow = true
	}
	if s.probe != nil {
		s.emit(obs.Event{Kind: obs.KindState, Node: n, Block: b, Old: "I", New: "R", Migratory: e.cls.Migratory})
	}
}

// readWithOwnership services a read miss to an oracle-designated migratory
// block: the block is fetched with exclusive write permission in a single
// transaction, invalidating every existing copy, and charged as a write
// miss (the closest Table 1 row for a read-exclusive request).
func (s *System) readWithOwnership(n memory.NodeID, b memory.BlockID) {
	e := s.entryFor(b)
	home := s.home(b)
	homeLocal := home == n
	ownerHeld := e.owner != memory.NoNode
	distant := e.copies.Without(n, home).Len()
	if e.overflow {
		distant = s.broadcastDistant(n, home)
		s.n.Overflows++
		if s.probe != nil {
			s.emit(obs.Event{Kind: obs.KindOverflow, Node: n, Block: b})
		}
	}

	// Keep the classifier's copy-count bookkeeping coherent even though
	// its decisions are overridden.
	e.cls.WriteMiss(n, !e.copies.Empty(), e.dirty)

	msg := s.msgs.Charge(cost.WriteMiss, homeLocal, ownerHeld, distant)
	s.lastOp = OpInfo{Op: cost.WriteMiss, HomeLocal: homeLocal, OwnerConsult: ownerHeld, Distant: distant, Migrated: true}
	if s.probe != nil {
		s.emitMessage(n, b, cost.WriteMiss, msg)
	}

	e.copies.ForEach(func(m memory.NodeID) {
		if s.probe != nil {
			s.emitInvalidation(m, b)
		}
		s.caches[m].Invalidate(b)
		s.n.Invalidations++
	})
	e.copies = 0
	e.overflow = false
	s.n.Migrations++
	if s.probe != nil {
		s.emit(obs.Event{Kind: obs.KindMigration, Node: n, Block: b, Migratory: true})
	}
	line := s.insert(n, b, PermWrite)
	line.Version = s.version(b)
	e.copies = e.copies.Add(n)
	e.owner = n
	e.dirty = false
	if s.probe != nil {
		s.emit(obs.Event{Kind: obs.KindState, Node: n, Block: b, Old: "I", New: "W", Migratory: e.cls.Migratory})
	}
}

// broadcastDistant returns the DistantCopies cardinality to charge when a
// limited directory entry has overflowed: every node except the initiator
// (and the home, whose invalidation is local) must be reached.
func (s *System) broadcastDistant(n, home memory.NodeID) int {
	d := s.cfg.Nodes - 1
	if home != n {
		d--
	}
	return d
}

// writeMiss services a write miss by node n.
func (s *System) writeMiss(n memory.NodeID, b memory.BlockID) {
	e := s.entryFor(b)
	home := s.home(b)
	homeLocal := home == n
	ownerHeld := e.owner != memory.NoNode
	distant := e.copies.Without(n, home).Len()
	if e.overflow {
		distant = s.broadcastDistant(n, home)
		s.n.Overflows++
		if s.probe != nil {
			s.emit(obs.Event{Kind: obs.KindOverflow, Node: n, Block: b})
		}
	}
	hadCopies := !e.copies.Empty()

	wasMigratory := e.cls.Migratory
	e.cls.WriteMiss(n, hadCopies, e.dirty)
	s.noteReclass(e, wasMigratory)

	msg := s.msgs.Charge(cost.WriteMiss, homeLocal, ownerHeld, distant)
	s.lastOp = OpInfo{Write: true, Op: cost.WriteMiss, HomeLocal: homeLocal, OwnerConsult: ownerHeld, Distant: distant}
	if s.probe != nil {
		s.emitMessage(n, b, cost.WriteMiss, msg)
	}
	s.noteInvalidations(e.copies.Len())

	e.copies.ForEach(func(m memory.NodeID) {
		if s.probe != nil {
			s.emitInvalidation(m, b)
		}
		s.caches[m].Invalidate(b)
		s.n.Invalidations++
	})
	e.copies = 0
	e.overflow = false
	line := s.insert(n, b, PermWrite)
	s.write(b, line)
	e.copies = e.copies.Add(n)
	e.owner = n
	e.dirty = true
	if s.probe != nil {
		s.emit(obs.Event{Kind: obs.KindState, Node: n, Block: b, Old: "I", New: "W", Migratory: e.cls.Migratory})
	}
}

// writeHitUpgrade services a write hit on a PermRead line: an invalidation
// (ownership) request to the directory.
func (s *System) writeHitUpgrade(n memory.NodeID, b memory.BlockID, line *cache.Line) {
	e := s.entryFor(b)
	home := s.home(b)
	homeLocal := home == n
	others := e.copies.Remove(n)
	distant := others.Without(home).Len()
	if e.overflow {
		distant = s.broadcastDistant(n, home)
		s.n.Overflows++
		if s.probe != nil {
			s.emit(obs.Event{Kind: obs.KindOverflow, Node: n, Block: b})
		}
	}

	wasMigratory := e.cls.Migratory
	e.cls.WriteHit(n, !others.Empty())
	s.noteReclass(e, wasMigratory)

	// The block is clean: PermRead copies are never dirty.
	msg := s.msgs.Charge(cost.WriteHit, homeLocal, false, distant)
	s.lastOp = OpInfo{Write: true, Op: cost.WriteHit, HomeLocal: homeLocal, Distant: distant}
	if s.probe != nil {
		s.emitMessage(n, b, cost.WriteHit, msg)
	}
	s.noteInvalidations(others.Len())

	others.ForEach(func(m memory.NodeID) {
		if s.probe != nil {
			s.emitInvalidation(m, b)
		}
		s.caches[m].Invalidate(b)
		s.n.Invalidations++
	})
	e.copies = memory.NodeSet(0).Add(n)
	e.overflow = false
	line.State = PermWrite
	s.write(b, line)
	e.owner = n
	e.dirty = true
	if s.probe != nil {
		s.emit(obs.Event{Kind: obs.KindState, Node: n, Block: b, Old: "R", New: "W", Migratory: e.cls.Migratory})
	}
}

// insert places a block in node n's cache, handling any replacement.
func (s *System) insert(n memory.NodeID, b memory.BlockID, st cache.State) *cache.Line {
	line, victim := s.caches[n].Insert(b, st)
	if victim != nil {
		s.evict(n, victim)
	}
	return line
}

// evict processes the replacement of a victim line from node n's cache:
// a write-back for dirty lines, a clean-drop notification otherwise
// (§3.3 charges both, even the arguably-asynchronous notifications).
func (s *System) evict(n memory.NodeID, victim *cache.Line) {
	b := victim.Block
	e := s.entryFor(b)
	home := s.home(b)
	homeLocal := home == n

	if victim.Dirty {
		s.n.WriteBacks++
		m := s.msgs.Charge(cost.WriteBack, homeLocal, true, 0)
		if s.probe != nil {
			s.emit(obs.Event{Kind: obs.KindWriteBack, Node: n, Block: b, Old: StateName(victim.State), New: "I"})
			s.emitMessage(n, b, cost.WriteBack, m)
		}
	} else {
		s.n.CleanDrops++
		if s.probe != nil {
			s.emit(obs.Event{Kind: obs.KindCleanDrop, Node: n, Block: b, Old: StateName(victim.State), New: "I"})
		}
		if !s.cfg.FreeDropNotifications {
			m := s.msgs.Charge(cost.DropClean, homeLocal, false, 0)
			if s.probe != nil {
				s.emitMessage(n, b, cost.DropClean, m)
			}
		}
	}
	e.copies = e.copies.Remove(n)
	if e.owner == n {
		e.owner = memory.NoNode
		e.dirty = false
	}
	if e.copies.Empty() {
		e.overflow = false
		wasMigratory := e.cls.Migratory
		e.cls.BecameUncached()
		s.noteReclass(e, wasMigratory)
	}
}

func (s *System) noteReclass(e *entry, was bool) {
	switch {
	case !was && e.cls.Migratory:
		s.n.Classifications++
		e.everMigratory = true
	case was && !e.cls.Migratory:
		s.n.Declassified++
	}
}

// write records a write to a line, bumping the block's global version when
// coherence checking is on.
func (s *System) write(b memory.BlockID, line *cache.Line) {
	line.Dirty = true
	if s.versions != nil {
		v, _ := s.versions.GetOrCreate(b)
		*v++
		line.Version = *v
	}
}

func (s *System) version(b memory.BlockID) uint64 {
	if s.versions == nil {
		return 0
	}
	if v := s.versions.Get(b); v != nil {
		return *v
	}
	return 0
}

func (s *System) checkRead(b memory.BlockID, line *cache.Line) error {
	if s.versions == nil {
		return nil
	}
	if want := s.version(b); line.Version != want {
		return fmt.Errorf("directory: stale read of block %d: version %d, latest %d", b, line.Version, want)
	}
	return nil
}

// Messages returns the accumulated Table 1 message counts.
func (s *System) Messages() cost.Msgs { return s.msgs.Total() }

// MessagesByOp returns the accumulated counts for one operation class.
func (s *System) MessagesByOp(op cost.Op) cost.Msgs { return s.msgs.ByOp(op) }

// Counters returns the protocol activity counters.
func (s *System) Counters() Counters { return s.n }

// CacheStats aggregates hit/miss/eviction counts over all node caches.
func (s *System) CacheStats() (hits, misses, evictions uint64) {
	for _, c := range s.caches {
		h, m, e := c.Stats()
		hits += h
		misses += m
		evictions += e
	}
	return
}

// MigratoryBlocks returns how many blocks are currently classified
// migratory.
func (s *System) MigratoryBlocks() int {
	n := 0
	s.entries.ForEach(func(_ memory.BlockID, e *entry) {
		if e.cls.Migratory {
			n++
		}
	})
	return n
}

// EverMigratory returns the set of blocks that were classified migratory
// at any point during the run. Note that the aggressive protocol's
// *initial* classification does not count — only classifications the
// detection rules produced (or retained through events). Blocks that start
// migratory and are immediately declassified never appear here.
func (s *System) EverMigratory() map[memory.BlockID]bool {
	out := make(map[memory.BlockID]bool)
	s.entries.ForEach(func(b memory.BlockID, e *entry) {
		// Under an initially-migratory policy, a block that is still
		// classified at the end survived every declassification test:
		// count it as detected even though no classification event fired.
		if e.everMigratory || (s.cfg.Policy.InitialMigratory && e.cls.Migratory) {
			out[b] = true
		}
	})
	return out
}

// CheckInvariants verifies the structural coherence invariants listed in
// DESIGN.md §7. Tests call it between accesses; it is O(total cached
// lines).
func (s *System) CheckInvariants() error {
	// Rebuild the ground truth from the caches.
	type truth struct {
		copies memory.NodeSet
		owner  memory.NodeID
		dirty  bool
	}
	actual := make(map[memory.BlockID]*truth)
	for n, c := range s.caches {
		for _, b := range c.Blocks() {
			line := c.Peek(b)
			tr, ok := actual[b]
			if !ok {
				tr = &truth{owner: memory.NoNode}
				actual[b] = tr
			}
			tr.copies = tr.copies.Add(memory.NodeID(n))
			if line.State == PermWrite {
				if tr.owner != memory.NoNode {
					return fmt.Errorf("block %d: two owners (%d and %d)", b, tr.owner, n)
				}
				tr.owner = memory.NodeID(n)
				tr.dirty = line.Dirty
			} else if line.Dirty {
				return fmt.Errorf("block %d: dirty PermRead line at node %d", b, n)
			}
		}
	}
	for b, tr := range actual {
		e := s.entries.Get(b)
		if e == nil {
			return fmt.Errorf("block %d cached but has no directory entry", b)
		}
		if e.copies != tr.copies {
			return fmt.Errorf("block %d: directory copies %v != actual %v", b, e.copies, tr.copies)
		}
		if e.owner != tr.owner {
			return fmt.Errorf("block %d: directory owner %d != actual %d", b, e.owner, tr.owner)
		}
		if e.dirty != tr.dirty {
			return fmt.Errorf("block %d: directory dirty %v != actual %v", b, e.dirty, tr.dirty)
		}
		if tr.owner != memory.NoNode && tr.copies.Len() != 1 {
			return fmt.Errorf("block %d: owner %d coexists with copies %v", b, tr.owner, tr.copies)
		}
	}
	var entryErr error
	s.entries.ForEach(func(b memory.BlockID, e *entry) {
		if entryErr != nil {
			return
		}
		if _, ok := actual[b]; ok {
			return
		}
		if !e.copies.Empty() || e.owner != memory.NoNode || e.dirty {
			entryErr = fmt.Errorf("block %d: uncached but directory says copies=%v owner=%d dirty=%v",
				b, e.copies, e.owner, e.dirty)
			return
		}
		if e.cls.Count != core.Uncached {
			entryErr = fmt.Errorf("block %d: uncached but classifier count %v", b, e.cls.Count)
		}
	})
	return entryErr
}
