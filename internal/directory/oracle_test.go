package directory

import (
	"testing"

	"migratory/internal/core"
	"migratory/internal/cost"
	"migratory/internal/memory"
	"migratory/internal/placement"
	"migratory/internal/trace"
)

func newOracleSys(t *testing.T, oracle func(memory.BlockID) bool) *System {
	t.Helper()
	s, err := New(Config{
		Nodes:           16,
		Geometry:        geom,
		Policy:          core.Conventional,
		Placement:       placement.NewRoundRobin(16),
		CheckCoherence:  true,
		MigratoryOracle: oracle,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestOracleMatchesAggressiveSteadyState: with perfect foreknowledge the
// oracle reaches the migratory steady state immediately, like aggressive,
// with no detection transient at all.
func TestOracleMatchesAggressiveSteadyState(t *testing.T) {
	oracle := newOracleSys(t, func(memory.BlockID) bool { return true })
	run(t, oracle, rw(0, 1))
	// First read is a read-with-ownership: remote uncached clean write-miss
	// charge (1,1); the write is silent.
	if got := oracle.Messages(); got != (cost.Msgs{Short: 1, Data: 1}) {
		t.Fatalf("first turn: %+v", got)
	}
	for _, n := range []memory.NodeID{2, 3, 1, 2} {
		before := oracle.Messages()
		run(t, oracle, rw(0, n))
		delta := cost.Msgs{Short: oracle.Messages().Short - before.Short, Data: oracle.Messages().Data - before.Data}
		if delta != (cost.Msgs{Short: 2, Data: 2}) {
			t.Fatalf("steady turn cost %+v; want {2 2}", delta)
		}
	}
	if oracle.Counters().WriteUpgrade != 0 {
		t.Fatalf("oracle paid upgrades: %+v", oracle.Counters())
	}
}

// TestOracleReplicatesNonMigratory: blocks the oracle marks non-migratory
// behave exactly conventionally.
func TestOracleReplicatesNonMigratory(t *testing.T) {
	oracle := newOracleSys(t, func(memory.BlockID) bool { return false })
	conv := newSys(t, core.Conventional)
	accs := rw(0, 1, 2, 3, 1, 2)
	run(t, oracle, accs)
	run(t, conv, accs)
	if oracle.Messages() != conv.Messages() {
		t.Fatalf("oracle %+v != conventional %+v", oracle.Messages(), conv.Messages())
	}
}

// TestOracleInvalidatesAllCopiesOnRWO: a read-with-ownership to a block
// with several shared copies removes them all in one transaction.
func TestOracleInvalidatesAllCopiesOnRWO(t *testing.T) {
	calls := 0
	s := newOracleSys(t, func(b memory.BlockID) bool {
		calls++
		return b == 0
	})
	// Three readers replicate block 1 (non-migratory)...
	accs := []trace.Access{
		{Node: 1, Kind: trace.Read, Addr: 16},
		{Node: 2, Kind: trace.Read, Addr: 16},
		// ...and block 0 accumulates copies via writes/reads.
		{Node: 1, Kind: trace.Write, Addr: 0},
		{Node: 2, Kind: trace.Read, Addr: 0},
	}
	run(t, s, accs)
	// Wait: node 2's read of block 0 was itself an RWO, invalidating node
	// 1's copy. Verify only node 2 holds it.
	if s.caches[1].Peek(0) != nil || s.caches[2].Peek(0) == nil {
		t.Fatal("RWO did not transfer exclusively")
	}
	if calls == 0 {
		t.Fatal("oracle never consulted")
	}
	c := s.Counters()
	if c.Migrations == 0 || c.Invalidations == 0 {
		t.Fatalf("counters %+v", c)
	}
}

// TestOracleBeatsOnlineProtocolsOnPureMigratory: the off-line bound is at
// least as good as every on-line protocol for migratory data.
func TestOracleBeatsOnlineProtocolsOnPureMigratory(t *testing.T) {
	accs := rw(0, 1, 2, 3, 4, 1, 2, 3, 4, 1, 2, 3, 4)
	oracle := newOracleSys(t, func(memory.BlockID) bool { return true })
	run(t, oracle, accs)
	best := oracle.Messages().Total()
	for _, pol := range core.Policies() {
		s := newSys(t, pol)
		run(t, s, accs)
		if got := s.Messages().Total(); got < best {
			t.Errorf("%s (%d msgs) beat the oracle (%d)", pol.Name, got, best)
		}
	}
}

// TestStenstromDeclassifiesOnWriteMiss: the §5 related-work variant drops
// the classification on any write miss to a migratory block, where Basic
// keeps it for dirty blocks.
func TestStenstromDeclassifiesOnWriteMiss(t *testing.T) {
	classifyThenWriteMiss := func(pol core.Policy) *System {
		s := newSys(t, pol)
		run(t, s, rw(0, 1, 2)) // classify (basic rule)
		// Node 3 write-misses the dirty migratory block.
		run(t, s, []trace.Access{{Node: 3, Kind: trace.Write, Addr: 0}})
		return s
	}
	basic := classifyThenWriteMiss(core.Basic)
	sten := classifyThenWriteMiss(core.Stenstrom)
	if basic.MigratoryBlocks() != 1 {
		t.Fatalf("basic lost classification: %+v", basic.Counters())
	}
	if sten.MigratoryBlocks() != 0 {
		t.Fatalf("stenstrom kept classification: %+v", sten.Counters())
	}
	// The paper: "Since there is very little dynamic reclassification in
	// the SPLASH programs, our dixie simulations are consistent with their
	// results" — on a read-then-write migratory pattern the two protocols
	// coincide exactly.
	mk := func(pol core.Policy) cost.Msgs {
		s := newSys(t, pol)
		run(t, s, rw(16, 1, 2, 3, 4, 1, 2, 3, 4))
		return s.Messages()
	}
	if mk(core.Basic) != mk(core.Stenstrom) {
		t.Fatal("basic and stenstrom diverge on a pure read/write migratory pattern")
	}
}

func TestStenstromPolicyValidates(t *testing.T) {
	if err := core.Stenstrom.Validate(); err != nil {
		t.Fatal(err)
	}
	if !core.Stenstrom.DeclassifyOnWriteMiss || core.Stenstrom.InitialMigratory {
		t.Fatalf("stenstrom = %+v", core.Stenstrom)
	}
}
