// Set-sharded execution: accesses to different cache-set indices never
// interact in the untimed directory engine — tag arrays are per-set,
// directory entries, classifier state, and coherence versions are
// per-block, and every counter is a pure sum — so one run can be split
// across cores by set index with bit-identical results. This is the
// software analogue of partitioned directory designs (each slice owns a
// disjoint fraction of the blocks and serves it independently).
package directory

import (
	"context"
	"fmt"
	"math/bits"

	"migratory/internal/cost"
	"migratory/internal/memory"
	"migratory/internal/obs"
	"migratory/internal/trace"
)

// Sharded runs one directory protocol over one trace on several engine
// shards in parallel. Shard i owns the blocks whose low log2(shards) bits
// equal i — a block's set index is its low set-count bits, so this is a
// partition by set index — and holds private caches (each storing only its
// 1/shards of the sets), directory entries, classifiers, message counters,
// and probe. Accessors merge the shards deterministically in shard order.
//
// The trace's per-block access order is preserved (the demux stage keeps
// relative order within a shard), which is all the protocol state machines
// can observe; cross-shard interleaving is not replayed, which is why the
// timing model — where the bus serializes globally — cannot be sharded.
type Sharded struct {
	cfg    Config
	shards []*System
	probed bool
}

// NewSharded builds a set-sharded directory system: shards engine
// instances, each configured like cfg but owning only its slice of the
// sets. cfg.Probe must be nil; per-shard probes come from the probes
// factory (which may be nil, or return nil for any shard). The shard count
// must be a positive power of two and, for finite caches, no larger than
// the per-cache set count. cfg.Placement and cfg.MigratoryOracle are shared
// by all shards and must be safe for concurrent use (the built-in
// placements and oracles are: they only read static state after
// construction).
func NewSharded(cfg Config, shards int, probes func(int) obs.Probe) (*Sharded, error) {
	if cfg.Probe != nil {
		return nil, fmt.Errorf("directory: sharded run: set per-shard probes via the factory, not Config.Probe")
	}
	if shards < 1 || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("directory: shard count %d is not a positive power of two", shards)
	}
	sh := &Sharded{cfg: cfg, shards: make([]*System, shards)}
	for i := range sh.shards {
		c := cfg
		c.shards = shards
		c.shardIndex = i
		if probes != nil {
			c.Probe = probes(i)
		}
		if c.Probe != nil {
			sh.probed = true
		}
		sys, err := New(c)
		if err != nil {
			return nil, err
		}
		sh.shards[i] = sys
	}
	return sh, nil
}

// Config returns the configuration the shards were built from.
func (sh *Sharded) Config() Config { return sh.cfg }

// Shards returns the per-shard engine instances, in shard order. Exposed
// for per-shard probe reconciliation; mutate nothing while a run is active.
func (sh *Sharded) Shards() []*System { return sh.shards }

// routeMask returns the low-bits mask selecting a block's shard.
func (sh *Sharded) routeMask() uint64 { return uint64(len(sh.shards) - 1) }

// Run feeds every access of the trace through the sharded system.
func (sh *Sharded) Run(accesses []trace.Access) error {
	return sh.RunSource(nil, trace.NewSliceSource(accesses))
}

// RunSource demuxes the trace by set index across the shards and runs them
// concurrently. Counters, messages, histograms, and classifier verdicts
// end up bit-identical to a sequential run of the same configuration.
// Events are stamped with global access indices only when a probe is
// attached, so probe-less sharded runs move 1/3 less data per access.
// When src is an indexed (MTR3) source and cfg.Decoders allows it, the
// decode itself runs in parallel too (trace.DemuxParallel); otherwise a
// single producer feeds the shards.
func (sh *Sharded) RunSource(ctx context.Context, src trace.Source) error {
	if len(sh.shards) == 1 {
		return sh.shards[0].RunSource(ctx, src)
	}
	geom := sh.cfg.Geometry
	mask := sh.routeMask()
	return trace.DemuxParallel(ctx, src, sh.cfg.Decoders, len(sh.shards), sh.probed, sh.cfg.Stats,
		func(a trace.Access) int { return int(uint64(geom.Block(a.Addr)) & mask) },
		func(i int, b trace.ShardBatch) error { return sh.shards[i].runShardBatch(b) })
}

// runShardBatch runs one routed batch on this shard, stamping events with
// the batch's global access indices when they were carried along.
func (s *System) runShardBatch(b trace.ShardBatch) error {
	if b.Steps == nil {
		return s.runBatch(b.Accs, int(s.n.Accesses))
	}
	return s.runStamped(b.Accs, b.Steps)
}

// runStamped is runBatch for the probe-attached sharded path: each event
// is stamped with the access's global trace index so probe-visible step
// arithmetic (e.g. classification-latency distances) matches the
// sequential run bit for bit.
func (s *System) runStamped(batch []trace.Access, steps []uint64) error {
	for i := range batch {
		a := batch[i]
		if int(a.Node) >= s.cfg.Nodes {
			return fmt.Errorf("access %d (%v): %w", steps[i], a, s.Access(a))
		}
		s.n.Accesses++
		if s.probe != nil {
			s.cur = a
			s.step = steps[i]
		}
		b := s.cfg.Geometry.Block(a.Addr)
		line := s.caches[a.Node].Lookup(b)
		if err := s.dispatch(a, b, line); err != nil {
			return fmt.Errorf("access %d (%v): %w", steps[i], a, err)
		}
	}
	s.noteBatch(len(batch))
	return nil
}

// shardOf returns the shard owning block b.
func (sh *Sharded) shardOf(b memory.BlockID) *System {
	return sh.shards[uint64(b)&sh.routeMask()]
}

// Messages returns the Table 1 message counts summed over all shards.
func (sh *Sharded) Messages() cost.Msgs {
	m := sh.mergedMsgs()
	return m.Total()
}

// MessagesByOp returns the summed counts for one operation class.
func (sh *Sharded) MessagesByOp(op cost.Op) cost.Msgs {
	m := sh.mergedMsgs()
	return m.ByOp(op)
}

func (sh *Sharded) mergedMsgs() cost.Counter {
	var total cost.Counter
	for _, s := range sh.shards {
		total.Merge(&s.msgs)
	}
	return total
}

// Counters returns the protocol activity counters summed over all shards.
func (sh *Sharded) Counters() Counters {
	var total Counters
	for _, s := range sh.shards {
		total.Merge(s.n)
	}
	return total
}

// CacheStats aggregates hit/miss/eviction counts over every node cache of
// every shard.
func (sh *Sharded) CacheStats() (hits, misses, evictions uint64) {
	for _, s := range sh.shards {
		h, m, e := s.CacheStats()
		hits += h
		misses += m
		evictions += e
	}
	return
}

// MigratoryBlocks returns how many blocks are currently classified
// migratory, over all shards.
func (sh *Sharded) MigratoryBlocks() int {
	n := 0
	for _, s := range sh.shards {
		n += s.MigratoryBlocks()
	}
	return n
}

// EverMigratory unions the shards' classifier verdicts. Each block lives
// in exactly one shard, so this is a disjoint union.
func (sh *Sharded) EverMigratory() map[memory.BlockID]bool {
	out := make(map[memory.BlockID]bool)
	for _, s := range sh.shards {
		for b := range s.EverMigratory() {
			out[b] = true
		}
	}
	return out
}

// InvalidationHistogram merges the per-shard Weber–Gupta histograms.
func (sh *Sharded) InvalidationHistogram() map[int]uint64 {
	out := make(map[int]uint64)
	for _, s := range sh.shards {
		for sz, c := range s.InvalidationHistogram() {
			out[sz] += c
		}
	}
	return out
}

// CheckInvariants verifies every shard's structural invariants.
func (sh *Sharded) CheckInvariants() error {
	for i, s := range sh.shards {
		if err := s.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}

// MaxShards returns the largest usable shard count for a finite per-node
// cache of cacheBytes with the given block size and associativity (the
// per-cache set count; shard counts beyond it would leave shards with no
// sets). Infinite caches (cacheBytes == 0) have no limit and MaxShards
// returns 0.
func MaxShards(cacheBytes, blockSize, assoc int) int {
	if cacheBytes <= 0 {
		return 0
	}
	if assoc <= 0 {
		assoc = 4
	}
	sets := cacheBytes / blockSize / assoc
	if sets < 1 {
		return 1
	}
	// Round down to a power of two (set counts are validated as powers of
	// two anyway; this keeps MaxShards total for odd inputs).
	return 1 << (bits.Len(uint(sets)) - 1)
}
