package directory

import (
	"testing"

	"migratory/internal/core"
	"migratory/internal/memory"
	"migratory/internal/placement"
	"migratory/internal/trace"
)

func newLimitedSys(t *testing.T, pol core.Policy, pointers int) *System {
	t.Helper()
	s, err := New(Config{
		Nodes:          16,
		Geometry:       geom,
		Policy:         pol,
		Placement:      placement.NewRoundRobin(16),
		CheckCoherence: true,
		DirPointers:    pointers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// reads returns read accesses to addr by the given nodes.
func reads(addr memory.Addr, nodes ...memory.NodeID) []trace.Access {
	var out []trace.Access
	for _, n := range nodes {
		out = append(out, trace.Access{Node: n, Kind: trace.Read, Addr: addr})
	}
	return out
}

// TestLimitedDirectoryOverflowBroadcast: once the copy set outgrows the
// pointers, the next invalidation is charged as a broadcast to every node.
func TestLimitedDirectoryOverflowBroadcast(t *testing.T) {
	s := newLimitedSys(t, core.Conventional, 2)
	// Three sharers: one more than the pointers.
	run(t, s, reads(0, 1, 2, 3))
	before := s.Messages()
	run(t, s, []trace.Access{{Node: 1, Kind: trace.Write, Addr: 0}})
	// Broadcast: home 0 is remote to node 1, so DistantCopies is charged
	// as 14 (everyone but initiator and home): 2 + 2*14 = 30 shorts.
	delta := s.Messages().Short - before.Short
	if delta != 30 {
		t.Fatalf("overflow upgrade shorts = %d; want 30", delta)
	}
	c := s.Counters()
	if c.Overflows != 1 {
		t.Fatalf("counters %+v", c)
	}
	// Only the actual copies were invalidated.
	if c.Invalidations != 2 {
		t.Fatalf("invalidations = %d; want 2", c.Invalidations)
	}
}

// TestLimitedDirectoryWithinPointersIsExact: below the pointer limit the
// accounting matches the full-map directory.
func TestLimitedDirectoryWithinPointersIsExact(t *testing.T) {
	limited := newLimitedSys(t, core.Conventional, 4)
	full := newSys(t, core.Conventional)
	accs := append(reads(0, 1, 2, 3), trace.Access{Node: 1, Kind: trace.Write, Addr: 0})
	run(t, limited, accs)
	run(t, full, accs)
	if limited.Messages() != full.Messages() {
		t.Fatalf("limited %+v != full %+v", limited.Messages(), full.Messages())
	}
	if limited.Counters().Overflows != 0 {
		t.Fatal("overflow below the pointer limit")
	}
}

// TestOverflowClearsAfterInvalidation: once the block is exclusively held
// again the directory is exact.
func TestOverflowClearsAfterInvalidation(t *testing.T) {
	s := newLimitedSys(t, core.Conventional, 2)
	run(t, s, reads(0, 1, 2, 3))
	run(t, s, []trace.Access{{Node: 1, Kind: trace.Write, Addr: 0}}) // broadcast, then exact
	// A second upgrade cycle with only two sharers stays exact.
	run(t, s, reads(0, 2))
	before := s.Messages()
	run(t, s, []trace.Access{{Node: 2, Kind: trace.Write, Addr: 0}})
	delta := s.Messages().Short - before.Short
	// Sharers {1,2}, initiator 2, home 0: DistantCopies = {1}: 2+2*1 = 4.
	if delta != 4 {
		t.Fatalf("post-overflow upgrade shorts = %d; want 4", delta)
	}
	if got := s.Counters().Overflows; got != 1 {
		t.Fatalf("overflows = %d; want 1", got)
	}
}

// TestOverflowClearsWhenUncached: evicting every copy resets the entry.
func TestOverflowClearsWhenUncached(t *testing.T) {
	s, err := New(Config{
		Nodes: 4, Geometry: geom, CacheBytes: 32, Assoc: 2,
		Policy: core.Conventional, Placement: placement.NewRoundRobin(4),
		CheckCoherence: true, DirPointers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	run(t, s, reads(0, 1, 2)) // overflow at 2 copies with 1 pointer
	// Evict both copies.
	run(t, s, reads(16, 1, 2))
	run(t, s, reads(32, 1, 2))
	run(t, s, reads(48, 1, 2))
	// Reload with one reader and write: exact accounting again.
	run(t, s, reads(0, 1))
	before := s.Messages()
	run(t, s, []trace.Access{{Node: 1, Kind: trace.Write, Addr: 0}})
	delta := s.Messages().Short - before.Short
	if delta != 2 { // remote home upgrade, no distant copies
		t.Fatalf("upgrade shorts = %d; want 2", delta)
	}
}

// TestMigratoryDetectionReducesOverflows: the headline interaction — the
// adaptive protocol keeps migratory blocks at one copy, so a limited
// directory overflows less and broadcasts less.
func TestMigratoryDetectionReducesOverflows(t *testing.T) {
	mkTrace := func() []trace.Access {
		var accs []trace.Access
		// Migratory turns with an occasional extra reader: under the
		// conventional protocol stale copies accumulate past the pointer
		// limit; under the adaptive protocol migration keeps the set at 1.
		for round := 0; round < 40; round++ {
			for n := memory.NodeID(1); n <= 4; n++ {
				accs = append(accs,
					trace.Access{Node: n, Kind: trace.Read, Addr: 0},
					trace.Access{Node: n, Kind: trace.Write, Addr: 0},
				)
			}
		}
		return accs
	}
	conv := newLimitedSys(t, core.Conventional, 1)
	adp := newLimitedSys(t, core.Aggressive, 1)
	run(t, conv, mkTrace())
	run(t, adp, mkTrace())
	cc, ca := conv.Counters(), adp.Counters()
	if ca.Overflows >= cc.Overflows {
		t.Fatalf("adaptive overflows %d not below conventional %d", ca.Overflows, cc.Overflows)
	}
	if ca.Overflows != 0 {
		t.Fatalf("steady migratory under adaptive still overflowed %d times", ca.Overflows)
	}
	if adp.Messages().Total() >= conv.Messages().Total() {
		t.Fatal("adaptive not cheaper under a limited directory")
	}
}

// TestLimitedDirectoryReadSharedCost: heavily read-shared blocks pay the
// broadcast penalty under both protocols equally.
func TestLimitedDirectoryReadSharedCost(t *testing.T) {
	var accs []trace.Access
	accs = append(accs, trace.Access{Node: 1, Kind: trace.Write, Addr: 0})
	for n := memory.NodeID(2); n < 10; n++ {
		accs = append(accs, trace.Access{Node: n, Kind: trace.Read, Addr: 0})
	}
	accs = append(accs, trace.Access{Node: 1, Kind: trace.Write, Addr: 0})

	limited := newLimitedSys(t, core.Basic, 2)
	full := newSys(t, core.Basic)
	run(t, limited, accs)
	run(t, full, accs)
	if limited.Messages().Short <= full.Messages().Short {
		t.Fatal("broadcast penalty missing")
	}
	if limited.Counters().Overflows != 1 {
		t.Fatalf("overflows = %d", limited.Counters().Overflows)
	}
}
