package directory

import (
	"fmt"
	"strings"
	"testing"

	"migratory/internal/core"
	"migratory/internal/memory"
	"migratory/internal/placement"
	"migratory/internal/trace"
)

// TestExhaustiveStateSpace is the directory-side model check: explore
// every reachable (line states x directory entry x classifier) state for
// one block and three processors, verifying the invariants at each, and
// require the state space to close.
func TestExhaustiveStateSpace(t *testing.T) {
	policies := append(core.Policies(), core.Stenstrom,
		core.Policy{Name: "forgetful-basic", Adaptive: true, Hysteresis: 1},
		core.Policy{Name: "hyst3", Adaptive: true, Hysteresis: 3, RetainWhenUncached: true},
	)
	for _, pol := range policies {
		pol := pol
		t.Run(pol.Name, func(t *testing.T) {
			n := exploreDirectory(t, pol, 0)
			if n < 4 {
				t.Fatalf("only %d states", n)
			}
			t.Logf("%s: %d reachable states", pol.Name, n)
		})
	}
	t.Run("basic-dir1", func(t *testing.T) {
		n := exploreDirectory(t, core.Basic, 1)
		t.Logf("basic with 1 directory pointer: %d reachable states", n)
	})
}

func dirSignature(s *System, nodes int) string {
	var b strings.Builder
	for i := 0; i < nodes; i++ {
		line := s.caches[i].Peek(0)
		if line == nil {
			b.WriteString("- ")
			continue
		}
		fmt.Fprintf(&b, "%d/%v ", line.State, line.Dirty)
	}
	e := s.entries.Get(0)
	if e == nil {
		b.WriteString("|no-entry")
		return b.String()
	}
	fmt.Fprintf(&b, "|%v %d %v %v|%s", e.copies, e.owner, e.dirty, e.overflow, e.cls.String())
	return b.String()
}

func exploreDirectory(t *testing.T, pol core.Policy, pointers int) int {
	t.Helper()
	const nodes = 3
	var events []trace.Access
	for n := memory.NodeID(0); n < nodes; n++ {
		events = append(events,
			trace.Access{Node: n, Kind: trace.Read, Addr: 0},
			trace.Access{Node: n, Kind: trace.Write, Addr: 0},
		)
	}
	replay := func(path []trace.Access) *System {
		s, err := New(Config{
			Nodes: nodes, Geometry: geom, Policy: pol,
			Placement: placement.NewRoundRobin(nodes), CheckCoherence: true,
			DirPointers: pointers,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range path {
			if err := s.Access(a); err != nil {
				t.Fatalf("replaying %v at %d: %v", path, i, err)
			}
		}
		return s
	}

	seen := map[string][]trace.Access{}
	start := dirSignature(replay(nil), nodes)
	seen[start] = nil
	frontier := []string{start}
	const depthBound = 40
	for depth := 0; depth < depthBound && len(frontier) > 0; depth++ {
		var next []string
		for _, sig := range frontier {
			path := seen[sig]
			for _, ev := range events {
				s := replay(append(append([]trace.Access{}, path...), ev))
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("state %q + %v: %v", sig, ev, err)
				}
				ns := dirSignature(s, nodes)
				if _, ok := seen[ns]; ok {
					continue
				}
				seen[ns] = append(append([]trace.Access{}, path...), ev)
				next = append(next, ns)
			}
		}
		frontier = next
	}
	if len(frontier) != 0 {
		t.Fatalf("state space did not close within %d steps: %d states and growing", depthBound, len(seen))
	}
	return len(seen)
}
