package directory

import (
	"fmt"
	"testing"

	"migratory/internal/core"
	"migratory/internal/memory"
	"migratory/internal/obs"
	"migratory/internal/placement"
	"migratory/internal/trace"
)

// migratoryTrace is the canonical hand-built migratory pattern: four nodes
// read-then-write the same block in turn (steps 0..7).
func migratoryTrace() []trace.Access {
	var accs []trace.Access
	for n := memory.NodeID(0); n < 4; n++ {
		accs = append(accs,
			trace.Access{Node: n, Kind: trace.Read, Addr: 0},
			trace.Access{Node: n, Kind: trace.Write, Addr: 0},
		)
	}
	return accs
}

// flipEvent is the compact form the golden test compares.
type flipEvent struct {
	Step     uint64
	Kind     obs.Kind
	Evidence int
}

func (f flipEvent) String() string {
	return fmt.Sprintf("#%d %s ev=%d", f.Step, f.Kind, f.Evidence)
}

// TestGoldenClassificationFlips pins the exact classifier event sequence of
// Figure 3 on the canonical migratory pattern: the conservative protocol
// needs two migratory events (one below-threshold evidence bump, then the
// classification), basic classifies on the first event, and conventional
// and aggressive produce no flips at all (the former never classifies, the
// latter is born classified and never tested negative by this pattern).
func TestGoldenClassificationFlips(t *testing.T) {
	classifierKinds := obs.KindSet(0).
		Add(obs.KindEvidence).Add(obs.KindClassify).Add(obs.KindDeclassify)

	want := map[string][]flipEvent{
		// P1's write at step 3 invalidates P0's copy of a two-copy block
		// (first migratory event, evidence 1 < 2); P2's write at step 5 is
		// the second, crossing the hysteresis threshold.
		"conservative": {
			{Step: 3, Kind: obs.KindEvidence, Evidence: 1},
			{Step: 5, Kind: obs.KindClassify, Evidence: 2},
		},
		// Basic classifies on the first migratory event.
		"basic": {
			{Step: 3, Kind: obs.KindClassify, Evidence: 1},
		},
		"conventional": nil,
		"aggressive":   nil,
	}
	// Once classified, every subsequent read miss migrates. Aggressive
	// starts classified and migrates from the first handoff.
	wantMigrations := map[string]uint64{
		"conventional": 0,
		"conservative": 1, // P3's read at step 6
		"basic":        2, // P2's and P3's reads at steps 4 and 6
		"aggressive":   4, // every read, including P0's cold fill
	}

	for _, pol := range core.Policies() {
		var got []flipEvent
		probe := obs.FilterProbe{
			Filter: obs.Filter{Kinds: classifierKinds},
			Next: obs.FuncProbe(func(e obs.Event) {
				got = append(got, flipEvent{Step: e.Step, Kind: e.Kind, Evidence: e.Evidence})
			}),
		}
		sys, err := New(Config{
			Nodes:     4,
			Geometry:  memory.MustGeometry(16, 4096),
			Policy:    pol,
			Placement: placement.NewRoundRobin(4),
			Probe:     probe,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(migratoryTrace()); err != nil {
			t.Fatal(err)
		}
		w := want[pol.Name]
		if len(got) != len(w) {
			t.Fatalf("%s: classifier events %v, want %v", pol.Name, got, w)
		}
		for i := range w {
			if got[i] != w[i] {
				t.Errorf("%s: event %d = %v, want %v", pol.Name, i, got[i], w[i])
			}
		}
		if n := sys.Counters().Migrations; n != wantMigrations[pol.Name] {
			t.Errorf("%s: %d migrations, want %d", pol.Name, n, wantMigrations[pol.Name])
		}
	}
}

// TestMetricsReconcileWithCounters replays the migratory pattern and checks
// that the MetricsProbe's per-event aggregates exactly reconstruct the
// engine's own counters and message totals.
func TestMetricsReconcileWithCounters(t *testing.T) {
	for _, pol := range core.Policies() {
		mp := &obs.MetricsProbe{}
		sys, err := New(Config{
			Nodes:     4,
			Geometry:  memory.MustGeometry(16, 4096),
			Policy:    pol,
			Placement: placement.NewRoundRobin(4),
			Probe:     mp,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(migratoryTrace()); err != nil {
			t.Fatal(err)
		}
		mp.Finish()
		n := sys.Counters()
		if got, want := mp.Msgs(), sys.Messages(); got != want {
			t.Errorf("%s: probe msgs %+v != engine %+v", pol.Name, got, want)
		}
		if mp.Total.Hits != n.ReadHits+n.WriteHits {
			t.Errorf("%s: probe hits %d != counters %d", pol.Name, mp.Total.Hits, n.ReadHits+n.WriteHits)
		}
		if mp.Total.Migrations != n.Migrations ||
			mp.Total.Replications != n.Replications ||
			mp.Total.Invalidations != n.Invalidations ||
			mp.Total.WriteBacks != n.WriteBacks ||
			mp.Total.CleanDrops != n.CleanDrops {
			t.Errorf("%s: probe %+v != counters %+v", pol.Name, mp.Total, n)
		}
		if mp.ByKind[obs.KindClassify] != n.Classifications ||
			mp.ByKind[obs.KindDeclassify] != n.Declassified {
			t.Errorf("%s: classify/declassify %d/%d != counters %d/%d", pol.Name,
				mp.ByKind[obs.KindClassify], mp.ByKind[obs.KindDeclassify],
				n.Classifications, n.Declassified)
		}
	}
}
