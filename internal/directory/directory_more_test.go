package directory

import (
	"strings"
	"testing"

	"migratory/internal/core"
	"migratory/internal/cost"
	"migratory/internal/memory"
	"migratory/internal/placement"
	"migratory/internal/trace"
)

// TestMessagesByOpBreakdown: the per-operation accounting adds up to the
// total and attributes costs to the right classes.
func TestMessagesByOpBreakdown(t *testing.T) {
	s := newSys(t, core.Conventional)
	run(t, s, rw(0, 1, 2, 3))
	var sum cost.Msgs
	for op := cost.ReadMiss; op <= cost.WriteBack; op++ {
		sum = sum.Add(s.MessagesByOp(op))
	}
	if sum != s.Messages() {
		t.Fatalf("per-op sum %+v != total %+v", sum, s.Messages())
	}
	if s.MessagesByOp(cost.ReadMiss).Data == 0 {
		t.Fatal("read misses carried no data")
	}
	if s.MessagesByOp(cost.WriteHit).Short == 0 {
		t.Fatal("upgrades sent no shorts")
	}
	if s.MessagesByOp(cost.WriteMiss) != (cost.Msgs{}) {
		t.Fatal("no write misses occurred but messages were charged")
	}
}

// TestLastOpReporting: the OpInfo hook reflects each access class.
func TestLastOpReporting(t *testing.T) {
	s := newSys(t, core.Basic)
	steps := []struct {
		acc  trace.Access
		want OpInfo
	}{
		{trace.Access{Node: 1, Kind: trace.Read, Addr: 0},
			OpInfo{Op: cost.ReadMiss, HomeLocal: false}},
		{trace.Access{Node: 1, Kind: trace.Read, Addr: 0},
			OpInfo{Hit: true}},
		{trace.Access{Node: 1, Kind: trace.Write, Addr: 0},
			OpInfo{Write: true, Op: cost.WriteHit, HomeLocal: false}},
		{trace.Access{Node: 1, Kind: trace.Write, Addr: 0},
			OpInfo{Hit: true, Write: true}},
		{trace.Access{Node: 2, Kind: trace.Write, Addr: 0},
			OpInfo{Write: true, Op: cost.WriteMiss, OwnerConsult: true, Distant: 1}},
		{trace.Access{Node: 0, Kind: trace.Read, Addr: 0},
			OpInfo{Op: cost.ReadMiss, HomeLocal: true, OwnerConsult: true, Distant: 1, Migrated: true}},
	}
	for i, st := range steps {
		if err := s.Access(st.acc); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
		if got := s.LastOp(); got != st.want {
			t.Fatalf("step %d (%v): LastOp = %+v; want %+v", i, st.acc, got, st.want)
		}
	}
}

// TestFreeDropNotifications: the §3.3 accounting ablation removes exactly
// the clean-drop shorts.
func TestFreeDropNotifications(t *testing.T) {
	mk := func(free bool) *System {
		s, err := New(Config{
			Nodes: 4, Geometry: geom, CacheBytes: 32, Assoc: 2,
			Policy: core.Conventional, Placement: placement.NewRoundRobin(4),
			FreeDropNotifications: free,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	accs := []trace.Access{
		{Node: 1, Kind: trace.Read, Addr: 0},
		{Node: 1, Kind: trace.Read, Addr: 16},
		{Node: 1, Kind: trace.Read, Addr: 32}, // evicts a clean line
		{Node: 1, Kind: trace.Read, Addr: 48}, // evicts another
	}
	charged := mk(false)
	free := mk(true)
	run(t, charged, accs)
	run(t, free, accs)
	if charged.Counters().CleanDrops != free.Counters().CleanDrops {
		t.Fatal("drop counts differ")
	}
	wantDelta := charged.Counters().CleanDrops
	delta := charged.Messages().Short - free.Messages().Short
	if uint64(delta) != wantDelta {
		t.Fatalf("short delta %d; want %d", delta, wantDelta)
	}
	if charged.Messages().Data != free.Messages().Data {
		t.Fatal("data messages changed")
	}
}

// TestExclusiveCleanEvictionNotifies: an unmodified migratory grant evicted
// from the cache is a clean drop, not a write-back.
func TestExclusiveCleanEvictionNotifies(t *testing.T) {
	s, err := New(Config{
		Nodes: 4, Geometry: geom, CacheBytes: 32, Assoc: 2,
		Policy: core.Aggressive, Placement: placement.NewRoundRobin(4),
		CheckCoherence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	run(t, s, []trace.Access{
		{Node: 1, Kind: trace.Read, Addr: 0}, // migratory grant, never written
		{Node: 1, Kind: trace.Read, Addr: 16},
		{Node: 1, Kind: trace.Read, Addr: 32}, // evicts block 0
	})
	c := s.Counters()
	if c.CleanDrops != 1 || c.WriteBacks != 0 {
		t.Fatalf("counters %+v", c)
	}
}

// TestHomeDistribution: blocks on different pages route to different homes
// and local traffic is cheaper.
func TestHomeDistribution(t *testing.T) {
	s := newSys(t, core.Conventional)
	// Page 3 is homed at node 3 under round robin.
	addr := memory.Addr(3 * 4096)
	run(t, s, []trace.Access{{Node: 3, Kind: trace.Read, Addr: addr}})
	if got := s.Messages(); got != (cost.Msgs{}) {
		t.Fatalf("local-home read miss cost %+v", got)
	}
	run(t, s, []trace.Access{{Node: 4, Kind: trace.Read, Addr: addr + 16}})
	if got := s.Messages(); got != (cost.Msgs{Short: 1, Data: 1}) {
		t.Fatalf("remote-home read miss cost %+v", got)
	}
}

// TestRunReportsAccessIndexOnError: Run wraps errors with the failing
// position.
func TestRunReportsAccessIndexOnError(t *testing.T) {
	s := newSys(t, core.Basic)
	err := s.Run([]trace.Access{
		{Node: 1, Kind: trace.Read, Addr: 0},
		{Node: 99, Kind: trace.Read, Addr: 0},
	})
	if err == nil || !strings.Contains(err.Error(), "access 1") {
		t.Fatalf("err = %v", err)
	}
}

// TestCacheStatsAggregation: hits/misses/evictions aggregate across nodes.
func TestCacheStatsAggregation(t *testing.T) {
	s, err := New(Config{
		Nodes: 4, Geometry: geom, CacheBytes: 32, Assoc: 2,
		Policy: core.Conventional, Placement: placement.NewRoundRobin(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	accs := []trace.Access{
		{Node: 0, Kind: trace.Read, Addr: 0},
		{Node: 0, Kind: trace.Read, Addr: 0},
		{Node: 1, Kind: trace.Read, Addr: 0},
		{Node: 0, Kind: trace.Read, Addr: 16},
		{Node: 0, Kind: trace.Read, Addr: 32}, // eviction at node 0
	}
	if err := s.Run(accs); err != nil {
		t.Fatal(err)
	}
	hits, misses, evs := s.CacheStats()
	if hits != 1 || misses != 4 || evs != 1 {
		t.Fatalf("stats = %d %d %d", hits, misses, evs)
	}
}

// TestWriteMissOnUncachedMigratoryGrantsOwnership: the aggressive protocol
// retains the classification for a write-first block, and the next reader
// migrates it.
func TestWriteMissOnUncachedMigratoryGrantsOwnership(t *testing.T) {
	s := newSys(t, core.Aggressive)
	run(t, s, []trace.Access{
		{Node: 1, Kind: trace.Write, Addr: 0}, // write miss to uncached migratory
		{Node: 2, Kind: trace.Read, Addr: 0},  // should migrate, not replicate
	})
	c := s.Counters()
	if c.Migrations != 1 || c.Replications != 0 {
		t.Fatalf("counters %+v", c)
	}
	// Node 2 can now write silently.
	before := s.Messages()
	run(t, s, []trace.Access{{Node: 2, Kind: trace.Write, Addr: 0}})
	if s.Messages() != before {
		t.Fatal("write after migration was not silent")
	}
}

// TestConventionalSilentWriteOnDirtyLine: repeat writes to an owned dirty
// block stay local under every policy.
func TestConventionalSilentWriteOnDirtyLine(t *testing.T) {
	for _, pol := range core.Policies() {
		s := newSys(t, pol)
		run(t, s, []trace.Access{{Node: 1, Kind: trace.Write, Addr: 0}})
		before := s.Messages()
		for i := 0; i < 5; i++ {
			run(t, s, []trace.Access{{Node: 1, Kind: trace.Write, Addr: 4}})
		}
		if s.Messages() != before {
			t.Errorf("%s: repeat writes generated traffic", pol.Name)
		}
	}
}

// TestThreeSharersInvalidation: a write hit with several distant sharers
// charges 2 messages per distant copy.
func TestThreeSharersInvalidation(t *testing.T) {
	s := newSys(t, core.Conventional)
	run(t, s, []trace.Access{
		{Node: 1, Kind: trace.Read, Addr: 0},
		{Node: 2, Kind: trace.Read, Addr: 0},
		{Node: 3, Kind: trace.Read, Addr: 0},
		{Node: 4, Kind: trace.Read, Addr: 0},
	})
	before := s.Messages()
	run(t, s, []trace.Access{{Node: 1, Kind: trace.Write, Addr: 0}})
	// Home is node 0 (remote); distant copies {2,3,4}: 2 + 2*3 = 8 shorts.
	delta := s.Messages().Short - before.Short
	if delta != 8 {
		t.Fatalf("upgrade shorts = %d; want 8", delta)
	}
	if got := s.Counters().Invalidations - 0; got != 3 {
		t.Fatalf("invalidations = %d", got)
	}
}

// TestMigratoryBlocksGauge counts currently classified blocks.
func TestMigratoryBlocksGauge(t *testing.T) {
	s := newSys(t, core.Basic)
	run(t, s, rw(0, 1, 2))     // classifies block 0
	run(t, s, rw(16, 1))       // block 1: single node, not classified
	run(t, s, rw(32, 1, 2, 3)) // classifies block 2
	if got := s.MigratoryBlocks(); got != 2 {
		t.Fatalf("MigratoryBlocks = %d", got)
	}
}

// TestConfigAccessor returns the configuration.
func TestConfigAccessor(t *testing.T) {
	s := newSys(t, core.Basic)
	if s.Config().Policy.Name != "basic" || s.Config().Nodes != 16 {
		t.Fatalf("config = %+v", s.Config())
	}
}

// TestInvalidationHistogram: the Weber–Gupta analysis counts ownership
// acquisitions by invalidation-set size.
func TestInvalidationHistogram(t *testing.T) {
	s := newSys(t, core.Conventional)
	run(t, s, []trace.Access{
		{Node: 1, Kind: trace.Write, Addr: 0}, // write miss, 0 copies
		{Node: 2, Kind: trace.Read, Addr: 0},
		{Node: 2, Kind: trace.Write, Addr: 0}, // upgrade invalidating 1
		{Node: 1, Kind: trace.Read, Addr: 0},
		{Node: 3, Kind: trace.Read, Addr: 0},
		{Node: 4, Kind: trace.Read, Addr: 0},
		{Node: 4, Kind: trace.Write, Addr: 0}, // upgrade invalidating 3
		{Node: 5, Kind: trace.Write, Addr: 0}, // write miss invalidating 1 (owner)
	})
	hist := s.InvalidationHistogram()
	want := map[int]uint64{0: 1, 1: 2, 3: 1}
	if len(hist) != len(want) {
		t.Fatalf("hist = %v; want %v", hist, want)
	}
	for k, v := range want {
		if hist[k] != v {
			t.Fatalf("hist = %v; want %v", hist, want)
		}
	}
	// The returned map is a copy.
	hist[99] = 1
	if _, ok := s.InvalidationHistogram()[99]; ok {
		t.Fatal("histogram not copied")
	}
}

// TestEverMigratory: detection bookkeeping survives declassification and
// counts still-classified initial blocks for the aggressive policy.
func TestEverMigratory(t *testing.T) {
	s := newSys(t, core.Basic)
	run(t, s, rw(0, 1, 2)) // classifies block 0
	run(t, s, []trace.Access{{Node: 3, Kind: trace.Read, Addr: 0}, {Node: 4, Kind: trace.Read, Addr: 0}})
	if s.MigratoryBlocks() != 0 {
		t.Fatal("setup: block should have declassified")
	}
	ever := s.EverMigratory()
	if !ever[0] || len(ever) != 1 {
		t.Fatalf("EverMigratory = %v", ever)
	}

	agg := newSys(t, core.Aggressive)
	run(t, agg, rw(16, 1)) // initial classification, never evented
	if ever := agg.EverMigratory(); !ever[1] {
		t.Fatalf("aggressive EverMigratory = %v", ever)
	}
}

// TestStenstromSystemLevel: under eviction pressure the Stenström variant
// loses classifications that Basic keeps (write misses to retained
// migratory blocks declassify), so Basic never does worse.
func TestStenstromSystemLevel(t *testing.T) {
	mk := func(pol core.Policy) *System {
		s, err := New(Config{
			Nodes: 4, Geometry: geom, CacheBytes: 64, Assoc: 4,
			Policy: pol, Placement: placement.NewRoundRobin(4),
			CheckCoherence: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	// Blocks are written first on each visit (write miss after eviction).
	var accs []trace.Access
	for round := 0; round < 30; round++ {
		for n := memory.NodeID(0); n < 4; n++ {
			for blk := 0; blk < 8; blk++ {
				accs = append(accs,
					trace.Access{Node: n, Kind: trace.Write, Addr: memory.Addr(blk * 16)},
					trace.Access{Node: n, Kind: trace.Read, Addr: memory.Addr(blk * 16)},
				)
			}
		}
	}
	basic := mk(core.Basic)
	sten := mk(core.Stenstrom)
	run(t, basic, accs)
	run(t, sten, accs)
	if basic.Messages().Total() > sten.Messages().Total() {
		t.Fatalf("basic (%d) worse than stenstrom (%d)",
			basic.Messages().Total(), sten.Messages().Total())
	}
}
