package directory

import (
	"testing"

	"migratory/internal/core"
	"migratory/internal/cost"
	"migratory/internal/memory"
	"migratory/internal/placement"
	"migratory/internal/trace"
)

var geom = memory.MustGeometry(16, 4096)

// newSys builds a 16-node system with an infinite cache over a single page
// homed at node 0 (round-robin places page 0 at node 0), with coherence
// checking on.
func newSys(t *testing.T, p core.Policy) *System {
	t.Helper()
	s, err := New(Config{
		Nodes:          16,
		Geometry:       geom,
		CacheBytes:     0,
		Policy:         p,
		Placement:      placement.NewRoundRobin(16),
		CheckCoherence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func run(t *testing.T, s *System, accs []trace.Access) {
	t.Helper()
	for i, a := range accs {
		if err := s.Access(a); err != nil {
			t.Fatalf("access %d (%v): %v", i, a, err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("after access %d (%v): %v", i, a, err)
		}
	}
}

// rw emits read-then-write turns on one block by the given node sequence.
func rw(addr memory.Addr, nodes ...memory.NodeID) []trace.Access {
	var out []trace.Access
	for _, n := range nodes {
		out = append(out,
			trace.Access{Node: n, Kind: trace.Read, Addr: addr},
			trace.Access{Node: n, Kind: trace.Write, Addr: addr},
		)
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	base := Config{Nodes: 16, Geometry: geom, Policy: core.Basic, Placement: placement.NewRoundRobin(16)}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := base
	bad.Nodes = 0
	if bad.Validate() == nil {
		t.Error("zero nodes accepted")
	}
	bad = base
	bad.Nodes = 100
	if bad.Validate() == nil {
		t.Error("too many nodes accepted")
	}
	bad = base
	bad.Placement = nil
	if bad.Validate() == nil {
		t.Error("nil placement accepted")
	}
	bad = base
	bad.Policy = core.Policy{Name: "x", Adaptive: true}
	if bad.Validate() == nil {
		t.Error("invalid policy accepted")
	}
	bad = base
	bad.CacheBytes = 100 // not a valid cache size
	if bad.Validate() == nil {
		t.Error("invalid cache accepted")
	}
	if _, err := New(bad); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestAccessRejectsOutOfRangeNode(t *testing.T) {
	s := newSys(t, core.Basic)
	if err := s.Access(trace.Access{Node: 16, Kind: trace.Read, Addr: 0}); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

// TestConventionalMigratoryCost traces the §2 example exactly: under the
// conventional protocol each migration of a dirty block costs a read-miss
// transaction plus an invalidation transaction.
func TestConventionalMigratoryCost(t *testing.T) {
	s := newSys(t, core.Conventional)
	// Home is node 0; nodes 1,2,3 are all remote.
	run(t, s, rw(0, 1))
	// P1 read: remote clean (1,1); P1 write: upgrade, no distant (2,0).
	if got := s.Messages(); got != (cost.Msgs{Short: 3, Data: 1}) {
		t.Fatalf("after first turn: %+v", got)
	}
	before := s.Messages()
	run(t, s, rw(0, 2))
	// P2 read: remote dirty, DistantCopies={1} -> (2,2).
	// P2 write: upgrade, DistantCopies={1} -> (4,0).
	delta := cost.Msgs{
		Short: s.Messages().Short - before.Short,
		Data:  s.Messages().Data - before.Data,
	}
	if delta != (cost.Msgs{Short: 6, Data: 2}) {
		t.Fatalf("steady-state turn cost: %+v; want {6 2}", delta)
	}
	// Every further turn costs the same.
	for turn, n := range []memory.NodeID{3, 1, 2, 3} {
		before = s.Messages()
		run(t, s, rw(0, n))
		delta = cost.Msgs{Short: s.Messages().Short - before.Short, Data: s.Messages().Data - before.Data}
		if delta != (cost.Msgs{Short: 6, Data: 2}) {
			t.Fatalf("turn %d cost %+v; want {6 2}", turn, delta)
		}
	}
	if s.Counters().Migrations != 0 {
		t.Fatal("conventional protocol migrated")
	}
}

// TestBasicAdaptiveHalvesMigratoryCost verifies the paper's headline claim:
// once classified, each migration costs one transaction instead of two,
// halving total messages (8 -> 4 per turn with home remote).
func TestBasicAdaptiveHalvesMigratoryCost(t *testing.T) {
	s := newSys(t, core.Basic)
	// Warm-up: P1 turn, P2 turn. The write hit by P2 with two copies and a
	// different last invalidator classifies the block (basic: one event).
	run(t, s, rw(0, 1, 2))
	if s.MigratoryBlocks() != 1 {
		t.Fatalf("block not classified after warm-up; counters %+v", s.Counters())
	}
	for turn, n := range []memory.NodeID{3, 1, 2, 3, 1} {
		before := s.Messages()
		run(t, s, rw(0, n))
		delta := cost.Msgs{Short: s.Messages().Short - before.Short, Data: s.Messages().Data - before.Data}
		if delta != (cost.Msgs{Short: 2, Data: 2}) {
			t.Fatalf("migratory turn %d cost %+v; want {2 2}", turn, delta)
		}
	}
	c := s.Counters()
	if c.Migrations != 5 {
		t.Fatalf("Migrations = %d; want 5", c.Migrations)
	}
	if c.WriteHits != 5 {
		t.Fatalf("silent write hits = %d; want 5", c.WriteHits)
	}
}

// TestConservativeNeedsTwoMigrations: the conservative variant keeps using
// the conventional pattern for one extra migration.
func TestConservativeNeedsTwoMigrations(t *testing.T) {
	s := newSys(t, core.Conservative)
	run(t, s, rw(0, 1, 2))
	if s.MigratoryBlocks() != 0 {
		t.Fatal("conservative classified after one event")
	}
	run(t, s, rw(0, 3))
	if s.MigratoryBlocks() != 1 {
		t.Fatal("conservative did not classify after two events")
	}
	// Steady state now matches basic.
	before := s.Messages()
	run(t, s, rw(0, 1))
	delta := cost.Msgs{Short: s.Messages().Short - before.Short, Data: s.Messages().Data - before.Data}
	if delta != (cost.Msgs{Short: 2, Data: 2}) {
		t.Fatalf("steady turn cost %+v; want {2 2}", delta)
	}
}

// TestAggressiveFirstTouch: the aggressive protocol grants write permission
// on the very first read, so even the first turn is fully silent after the
// initial fetch.
func TestAggressiveFirstTouch(t *testing.T) {
	s := newSys(t, core.Aggressive)
	run(t, s, rw(0, 1))
	// P1 read: remote clean fetch (1,1) with immediate exclusive grant;
	// P1 write: silent.
	if got := s.Messages(); got != (cost.Msgs{Short: 1, Data: 1}) {
		t.Fatalf("first turn: %+v; want {1 1}", got)
	}
	before := s.Messages()
	run(t, s, rw(0, 2))
	delta := cost.Msgs{Short: s.Messages().Short - before.Short, Data: s.Messages().Data - before.Data}
	if delta != (cost.Msgs{Short: 2, Data: 2}) {
		t.Fatalf("second turn: %+v; want {2 2}", delta)
	}
}

// TestAggressiveReadSharedPenaltyIsSmall: misclassifying a read-shared
// block costs one extra transaction's worth of data messages, once, and the
// block is then managed conventionally.
func TestAggressiveReadSharedPenaltyIsSmall(t *testing.T) {
	agg := newSys(t, core.Aggressive)
	conv := newSys(t, core.Conventional)
	var accs []trace.Access
	// Node 1 initializes, then nodes 2..9 read, twice around.
	accs = append(accs, trace.Access{Node: 1, Kind: trace.Write, Addr: 0})
	for round := 0; round < 2; round++ {
		for n := memory.NodeID(2); n < 10; n++ {
			accs = append(accs, trace.Access{Node: n, Kind: trace.Read, Addr: 0})
		}
	}
	run(t, agg, accs)
	run(t, conv, accs)
	a, c := agg.Messages(), conv.Messages()
	if a.Short > c.Short+1 || a.Data > c.Data+1 {
		t.Fatalf("aggressive %+v vs conventional %+v: penalty too large", a, c)
	}
	if agg.MigratoryBlocks() != 0 {
		t.Fatal("read-shared block still classified migratory")
	}
	// After declassification the replications proceed exactly like the
	// conventional protocol.
	ab, cb := agg.Messages(), conv.Messages()
	more := []trace.Access{
		{Node: 10, Kind: trace.Read, Addr: 0},
		{Node: 11, Kind: trace.Read, Addr: 0},
	}
	run(t, agg, more)
	run(t, conv, more)
	da := cost.Msgs{Short: agg.Messages().Short - ab.Short, Data: agg.Messages().Data - ab.Data}
	dc := cost.Msgs{Short: conv.Messages().Short - cb.Short, Data: conv.Messages().Data - cb.Data}
	if da != dc {
		t.Fatalf("post-declassification deltas differ: %+v vs %+v", da, dc)
	}
}

// TestHomeLocalOperationsAreFree: a node working on blocks homed at itself
// with no other sharers exchanges no messages under the adaptive protocol,
// and only upgrade traffic under the conventional one.
func TestHomeLocalOperationsAreFree(t *testing.T) {
	// Page 0 is homed at node 0 under round robin.
	agg := newSys(t, core.Aggressive)
	run(t, agg, rw(0, 0))
	if got := agg.Messages(); got != (cost.Msgs{}) {
		t.Fatalf("aggressive local turn: %+v; want zero", got)
	}
	conv := newSys(t, core.Conventional)
	run(t, conv, rw(0, 0))
	// Read miss local clean (0,0); write hit local clean DC=0 (0,0).
	if got := conv.Messages(); got != (cost.Msgs{}) {
		t.Fatalf("conventional local turn: %+v; want zero", got)
	}
}

// TestWriteMissPath: write misses with existing sharers invalidate them and
// classify per Figure 3.
func TestWriteMissPath(t *testing.T) {
	s := newSys(t, core.Basic)
	accs := []trace.Access{
		{Node: 1, Kind: trace.Write, Addr: 0}, // write miss, uncached
		{Node: 2, Kind: trace.Write, Addr: 0}, // write miss, dirty single copy: evidence
	}
	run(t, s, accs)
	if s.MigratoryBlocks() != 1 {
		t.Fatalf("write-miss evidence not recorded; counters %+v", s.Counters())
	}
	c := s.Counters()
	if c.WriteMisses != 2 || c.Invalidations != 1 {
		t.Fatalf("counters %+v", c)
	}
	// First write miss: remote uncached clean -> (1,1).
	// Second: remote dirty, owner is node 1, DistantCopies={1} -> (2,2).
	if got := s.Messages(); got != (cost.Msgs{Short: 3, Data: 3}) {
		t.Fatalf("messages %+v", got)
	}
}

// TestUncachedIntervalDetection: with a tiny cache, a block that is read,
// written, evicted, and then read and written by another node is detected
// as migratory through the last-invalidator memory (§2.2's "big savings
// even if there are relatively few coherency messages").
func TestUncachedIntervalDetection(t *testing.T) {
	s, err := New(Config{
		Nodes:          4,
		Geometry:       geom,
		CacheBytes:     64, // 4 lines of 16 bytes: 1 set of 4 ways
		Assoc:          4,
		Policy:         core.Basic,
		Placement:      placement.NewRoundRobin(4),
		CheckCoherence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Node 1: read+write block 0, then touch 4 other blocks to evict it.
	accs := rw(0, 1)
	for i := 1; i <= 4; i++ {
		accs = append(accs, trace.Access{Node: 1, Kind: trace.Read, Addr: memory.Addr(i * 16)})
	}
	// Node 2: read+write block 0. The upgrade is the second migratory
	// event spanning the uncached interval.
	accs = append(accs, rw(0, 2)...)
	run(t, s, accs)
	if s.MigratoryBlocks() != 1 {
		t.Fatalf("uncached-interval migration not detected; counters %+v", s.Counters())
	}
	c := s.Counters()
	if c.WriteBacks == 0 {
		t.Fatalf("expected a write-back from the eviction; counters %+v", c)
	}
}

// TestEvictionMessages: dirty evictions cost a data message to a remote
// home; clean drops cost a short notification.
func TestEvictionMessages(t *testing.T) {
	s, err := New(Config{
		Nodes:          4,
		Geometry:       geom,
		CacheBytes:     32, // 2 lines: 1 set of 2 ways
		Assoc:          2,
		Policy:         core.Conventional,
		Placement:      placement.NewRoundRobin(4),
		CheckCoherence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// All blocks in page 0, homed at node 0. Node 1 is remote.
	accs := []trace.Access{
		{Node: 1, Kind: trace.Write, Addr: 0}, // (1,1)
		{Node: 1, Kind: trace.Read, Addr: 16}, // (1,1)
		{Node: 1, Kind: trace.Read, Addr: 32}, // (1,1) + evicts dirty block 0 -> (0,1)
		{Node: 1, Kind: trace.Read, Addr: 48}, // (1,1) + evicts clean block 1 -> (1,0)
	}
	run(t, s, accs)
	want := cost.Msgs{Short: 1 + 1 + 1 + 0 + 1 + 1, Data: 1 + 1 + 1 + 1 + 1}
	if got := s.Messages(); got != want {
		t.Fatalf("messages %+v; want %+v", got, want)
	}
	c := s.Counters()
	if c.WriteBacks != 1 || c.CleanDrops != 1 {
		t.Fatalf("counters %+v", c)
	}
	if got := s.MessagesByOp(cost.WriteBack); got != (cost.Msgs{Short: 0, Data: 1}) {
		t.Fatalf("writeback msgs %+v", got)
	}
	if got := s.MessagesByOp(cost.DropClean); got != (cost.Msgs{Short: 1, Data: 0}) {
		t.Fatalf("drop msgs %+v", got)
	}
}

// TestLocalHomeEvictionsAreFree: replacements writing back to the local
// home cost nothing.
func TestLocalHomeEvictionsAreFree(t *testing.T) {
	s, err := New(Config{
		Nodes:          4,
		Geometry:       geom,
		CacheBytes:     32,
		Assoc:          2,
		Policy:         core.Conventional,
		Placement:      placement.NewRoundRobin(4),
		CheckCoherence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	accs := []trace.Access{
		{Node: 0, Kind: trace.Write, Addr: 0},
		{Node: 0, Kind: trace.Read, Addr: 16},
		{Node: 0, Kind: trace.Read, Addr: 32}, // evicts dirty block 0, home local
		{Node: 0, Kind: trace.Read, Addr: 48}, // evicts clean block 1, home local
	}
	run(t, s, accs)
	if got := s.Messages(); got != (cost.Msgs{}) {
		t.Fatalf("messages %+v; want zero", got)
	}
}

// TestReadHitAndSilentWritesCostNothing exercises the no-communication
// paths.
func TestReadHitAndSilentWritesCostNothing(t *testing.T) {
	s := newSys(t, core.Conventional)
	run(t, s, []trace.Access{
		{Node: 1, Kind: trace.Write, Addr: 0},
	})
	before := s.Messages()
	run(t, s, []trace.Access{
		{Node: 1, Kind: trace.Read, Addr: 0},
		{Node: 1, Kind: trace.Write, Addr: 0},
		{Node: 1, Kind: trace.Write, Addr: 4}, // same block
		{Node: 1, Kind: trace.Read, Addr: 8},
	})
	if s.Messages() != before {
		t.Fatalf("hits generated messages: %+v -> %+v", before, s.Messages())
	}
	c := s.Counters()
	if c.ReadHits != 2 || c.WriteHits != 2 {
		t.Fatalf("counters %+v", c)
	}
}

// TestMigrationOfCleanBlockDeclassifies: a migratory block that moves
// without being written flips back to replication.
func TestMigrationOfCleanBlockDeclassifies(t *testing.T) {
	s := newSys(t, core.Aggressive)
	run(t, s, []trace.Access{
		{Node: 1, Kind: trace.Read, Addr: 0}, // migratory grant, clean
		{Node: 2, Kind: trace.Read, Addr: 0}, // moved without modification
	})
	if s.MigratoryBlocks() != 0 {
		t.Fatal("clean migration did not declassify")
	}
	c := s.Counters()
	if c.Declassified != 1 || c.Migrations != 1 || c.Replications != 1 {
		t.Fatalf("counters %+v", c)
	}
	// Both nodes now hold readable copies.
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	before := s.Messages()
	run(t, s, []trace.Access{{Node: 1, Kind: trace.Read, Addr: 0}})
	if s.Messages() != before {
		t.Fatal("node 1's copy was lost by the clean migration declassification")
	}
}
