package core

import (
	"strings"
	"testing"

	"migratory/internal/memory"
)

func TestNewClassifierInitialState(t *testing.T) {
	for _, p := range Policies() {
		c := NewClassifier(p)
		if c.Count != Uncached {
			t.Errorf("%s: initial count %v", p.Name, c.Count)
		}
		if c.Migratory != p.InitialMigratory {
			t.Errorf("%s: initial migratory = %v", p.Name, c.Migratory)
		}
		if c.LastInvalidator != memory.NoNode {
			t.Errorf("%s: initial last invalidator = %v", p.Name, c.LastInvalidator)
		}
	}
}

func TestNewClassifierPanicsOnInvalidPolicy(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewClassifier(Policy{Name: "bad", Adaptive: true})
}

// TestFigure3ReadMissStateTransitions checks every case arm of Figure 3's
// read-miss switch.
func TestFigure3ReadMissStateTransitions(t *testing.T) {
	t.Run("UNCACHED to ONE COPY", func(t *testing.T) {
		c := NewClassifier(Basic)
		if mig := c.ReadMiss(false); mig {
			t.Fatal("non-migratory uncached block migrated")
		}
		if c.Count != OneCopy {
			t.Fatalf("count = %v", c.Count)
		}
	})
	t.Run("UNCACHED/MIGRATORY to ONE COPY/MIGRATORY migrates", func(t *testing.T) {
		c := NewClassifier(Aggressive)
		if mig := c.ReadMiss(false); !mig {
			t.Fatal("aggressive first read did not migrate")
		}
		if c.Count != OneCopy || !c.Migratory {
			t.Fatalf("state = %v", c.String())
		}
	})
	t.Run("ONE COPY to TWO COPIES", func(t *testing.T) {
		c := NewClassifier(Basic)
		c.ReadMiss(false)
		if mig := c.ReadMiss(true); mig {
			t.Fatal("replicate policy migrated")
		}
		if c.Count != TwoCopies {
			t.Fatalf("count = %v", c.Count)
		}
	})
	t.Run("ONE COPY/MIGRATORY dirty migrates and stays", func(t *testing.T) {
		c := NewClassifier(Aggressive)
		c.ReadMiss(false) // -> ONE COPY/MIGRATORY
		if mig := c.ReadMiss(true); !mig {
			t.Fatal("dirty migratory block did not migrate")
		}
		if c.Count != OneCopy || !c.Migratory {
			t.Fatalf("state = %v", c.String())
		}
	})
	t.Run("ONE COPY/MIGRATORY clean declassifies and replicates", func(t *testing.T) {
		c := NewClassifier(Aggressive)
		c.ReadMiss(false)
		if mig := c.ReadMiss(false); mig {
			t.Fatal("clean migratory block migrated")
		}
		if c.Count != TwoCopies || c.Migratory {
			t.Fatalf("state = %v", c.String())
		}
		if c.Evidence != 0 {
			t.Fatalf("evidence = %d; declassification must reset it", c.Evidence)
		}
	})
	t.Run("TWO COPIES to THREE OR MORE and saturate", func(t *testing.T) {
		c := NewClassifier(Basic)
		for i := 0; i < 5; i++ {
			if mig := c.ReadMiss(false); mig {
				t.Fatal("replicating block migrated")
			}
		}
		if c.Count != ThreeOrMore {
			t.Fatalf("count = %v", c.Count)
		}
	})
}

// TestFigure3WriteHitTwoCopies follows the exact scenario of §2: block dirty
// at Pi, read by Pj, then written by Pj. Basic classifies immediately;
// conservative needs the pattern twice.
func TestFigure3WriteHitTwoCopies(t *testing.T) {
	t.Run("basic classifies after one event", func(t *testing.T) {
		c := NewClassifier(Basic)
		c.WriteMiss(1, false, false) // Pi writes: ONE COPY, last=1
		c.ReadMiss(true)             // Pj reads dirty block: TWO COPIES
		c.WriteHit(2, true)          // Pj invalidates Pi's copy
		if !c.Migratory || c.Count != OneCopy {
			t.Fatalf("state = %v", c.String())
		}
		if c.LastInvalidator != 2 {
			t.Fatalf("last invalidator = %d", c.LastInvalidator)
		}
	})
	t.Run("conservative needs two events", func(t *testing.T) {
		c := NewClassifier(Conservative)
		c.WriteMiss(1, false, false)
		c.ReadMiss(true)
		c.WriteHit(2, true)
		if c.Migratory {
			t.Fatalf("conservative classified after one event: %v", c.String())
		}
		if c.Evidence != 1 {
			t.Fatalf("evidence = %d", c.Evidence)
		}
		// Second migration: P3 reads then writes.
		c.ReadMiss(true)
		c.WriteHit(3, true)
		if !c.Migratory {
			t.Fatalf("conservative did not classify after two events: %v", c.String())
		}
	})
	t.Run("same invalidator is not evidence", func(t *testing.T) {
		c := NewClassifier(Basic)
		c.WriteMiss(1, false, false)
		c.ReadMiss(true)    // node 2 reads -> TWO COPIES
		c.WriteHit(1, true) // node 1 writes again, invalidating node 2
		if c.Migratory {
			t.Fatalf("same-node invalidation classified migratory: %v", c.String())
		}
		if c.Count != OneCopy {
			t.Fatalf("count = %v", c.Count)
		}
	})
	t.Run("three copies is not evidence", func(t *testing.T) {
		c := NewClassifier(Basic)
		c.WriteMiss(1, false, false)
		c.ReadMiss(true)  // 2 copies
		c.ReadMiss(false) // 3 copies
		c.WriteHit(2, true)
		if c.Migratory {
			t.Fatalf("read-shared block classified migratory: %v", c.String())
		}
		if c.Count != OneCopy || c.Evidence != 0 {
			t.Fatalf("state = %v", c.String())
		}
	})
}

// TestFigure3WriteMiss covers the write-miss handler branches.
func TestFigure3WriteMiss(t *testing.T) {
	t.Run("uncached write miss keeps retained classification", func(t *testing.T) {
		c := NewClassifier(Aggressive)
		c.WriteMiss(4, false, false)
		if c.Count != OneCopy || !c.Migratory || c.LastInvalidator != 4 {
			t.Fatalf("state = %v", c.String())
		}
	})
	t.Run("write miss on single copy by new node is evidence", func(t *testing.T) {
		c := NewClassifier(Basic)
		c.WriteMiss(1, false, false) // ONE COPY, last=1
		c.WriteMiss(2, true, true)   // node 2 write-misses, invalidating node 1
		if !c.Migratory || c.Count != OneCopy || c.LastInvalidator != 2 {
			t.Fatalf("state = %v", c.String())
		}
	})
	t.Run("write miss by last invalidator is not evidence", func(t *testing.T) {
		c := NewClassifier(Basic)
		c.WriteMiss(1, false, false)
		// Node 1's copy is evicted elsewhere; node 1 write-misses again
		// while some other copy exists. Same invalidator: no evidence.
		c.WriteMiss(1, true, true)
		if c.Migratory {
			t.Fatalf("state = %v", c.String())
		}
	})
	t.Run("write miss on clean migratory block declassifies", func(t *testing.T) {
		c := NewClassifier(Aggressive)
		c.ReadMiss(false) // ONE COPY/MIGRATORY, clean
		c.WriteMiss(2, true, false)
		if c.Migratory || c.Count != OneCopy {
			t.Fatalf("state = %v", c.String())
		}
	})
	t.Run("write miss on dirty migratory block stays migratory", func(t *testing.T) {
		c := NewClassifier(Aggressive)
		c.ReadMiss(false)
		c.WriteMiss(2, true, true)
		if !c.Migratory || c.Count != OneCopy {
			t.Fatalf("state = %v", c.String())
		}
	})
	t.Run("write miss with multiple copies resets to one copy", func(t *testing.T) {
		c := NewClassifier(Basic)
		c.ReadMiss(false)
		c.ReadMiss(false)
		c.ReadMiss(false) // THREE OR MORE
		c.WriteMiss(5, true, false)
		if c.Count != OneCopy || c.Migratory {
			t.Fatalf("state = %v", c.String())
		}
	})
}

// TestFigure3WriteHitExclusive covers the "write hit on a clean,
// exclusively-held block" handler, including the uncached-interval
// detection the paper highlights for small caches.
func TestFigure3WriteHitExclusive(t *testing.T) {
	t.Run("migratory pattern spanning uncached interval", func(t *testing.T) {
		c := NewClassifier(Basic)
		// Node 1 reads and writes; block then leaves all caches; node 2
		// reads it back and writes. The directory sees: read miss, upgrade
		// by 1, uncached, read miss, upgrade by 2.
		c.ReadMiss(false)
		c.WriteHit(1, false)
		if c.Migratory {
			t.Fatalf("classified with no invalidator history: %v", c.String())
		}
		c.BecameUncached()
		c.ReadMiss(false)
		c.WriteHit(2, false)
		if !c.Migratory {
			t.Fatalf("uncached-interval migration not detected: %v", c.String())
		}
	})
	t.Run("same node upgrading repeatedly is not evidence", func(t *testing.T) {
		c := NewClassifier(Basic)
		c.ReadMiss(false)
		c.WriteHit(1, false)
		c.BecameUncached()
		c.ReadMiss(false)
		c.WriteHit(1, false)
		if c.Migratory {
			t.Fatalf("state = %v", c.String())
		}
	})
	t.Run("upgrade after silent drops resets count", func(t *testing.T) {
		c := NewClassifier(Basic)
		c.ReadMiss(false)
		c.ReadMiss(false)
		c.ReadMiss(false) // THREE OR MORE created
		// All other copies silently dropped; sole holder upgrades.
		c.WriteHit(2, false)
		if c.Count != OneCopy || c.Migratory {
			t.Fatalf("state = %v", c.String())
		}
		if c.LastInvalidator != 2 {
			t.Fatalf("last invalidator = %d", c.LastInvalidator)
		}
	})
}

func TestConventionalNeverClassifies(t *testing.T) {
	c := NewClassifier(Conventional)
	// Run a strongly migratory sequence: the conventional protocol must
	// never migrate.
	for n := memory.NodeID(0); n < 10; n++ {
		if mig := c.ReadMiss(true); mig {
			t.Fatal("conventional migrated")
		}
		c.WriteHit(n, true)
		if c.Migratory {
			t.Fatal("conventional classified migratory")
		}
	}
}

func TestRetentionAcrossUncachedIntervals(t *testing.T) {
	classify := func(c *Classifier) {
		c.WriteMiss(1, false, false)
		c.ReadMiss(true)
		c.WriteHit(2, true)
	}
	t.Run("retaining policy keeps classification", func(t *testing.T) {
		c := NewClassifier(Basic)
		classify(&c)
		if !c.Migratory {
			t.Fatal("setup failed")
		}
		c.BecameUncached()
		if !c.Migratory || c.Count != Uncached || c.LastInvalidator != 2 {
			t.Fatalf("state = %v", c.String())
		}
		// The reload of a retained-migratory block migrates immediately.
		if mig := c.ReadMiss(false); !mig {
			t.Fatal("reload of retained migratory block did not migrate")
		}
	})
	t.Run("non-retaining ablation forgets", func(t *testing.T) {
		p := Policy{Name: "basic-forgetful", Adaptive: true, Hysteresis: 1}
		c := NewClassifier(p)
		classify(&c)
		if !c.Migratory {
			t.Fatal("setup failed")
		}
		c.BecameUncached()
		if c.Migratory || c.LastInvalidator != memory.NoNode || c.Evidence != 0 {
			t.Fatalf("state = %v", c.String())
		}
	})
	t.Run("non-retaining aggressive resets to migratory", func(t *testing.T) {
		p := Policy{Name: "aggressive-forgetful", Adaptive: true, Hysteresis: 1, InitialMigratory: true}
		c := NewClassifier(p)
		c.ReadMiss(false)
		c.ReadMiss(false) // declassified
		if c.Migratory {
			t.Fatal("setup failed")
		}
		c.BecameUncached()
		if !c.Migratory {
			t.Fatalf("state = %v", c.String())
		}
	})
}

func TestConservativeHysteresisResetByReplication(t *testing.T) {
	c := NewClassifier(Conservative)
	c.WriteMiss(1, false, false)
	c.ReadMiss(true)
	c.WriteHit(2, true) // evidence 1
	if c.Evidence != 1 {
		t.Fatalf("evidence = %d", c.Evidence)
	}
	// A replication (read-shared episode) intervenes: evidence resets, so
	// the events are no longer "successive".
	c.ReadMiss(true)
	c.ReadMiss(false)
	if c.Evidence != 0 {
		t.Fatalf("evidence after replication = %d", c.Evidence)
	}
}

func TestMigratorySteadyStateNeverTalksToDirectoryOnWrite(t *testing.T) {
	// Once migratory, the cycle is pure read-miss migrations: each ReadMiss
	// with dirty=true returns migrate and the classification is stable.
	c := NewClassifier(Basic)
	c.WriteMiss(1, false, false)
	c.ReadMiss(true)
	c.WriteHit(2, true)
	for i := 0; i < 20; i++ {
		if mig := c.ReadMiss(true); !mig {
			t.Fatalf("iteration %d: migratory block replicated", i)
		}
	}
	if !c.Migratory || c.Count != OneCopy {
		t.Fatalf("state = %v", c.String())
	}
}

func TestHysteresisDepthThree(t *testing.T) {
	p := Policy{Name: "hyst3", Adaptive: true, Hysteresis: 3, RetainWhenUncached: true}
	c := NewClassifier(p)
	c.WriteMiss(0, false, false)
	for i := 1; i <= 3; i++ {
		c.ReadMiss(true)
		c.WriteHit(memory.NodeID(i), true)
		want := i >= 3
		if c.Migratory != want {
			t.Fatalf("after event %d: migratory = %v", i, c.Migratory)
		}
	}
}

func TestCopyCountString(t *testing.T) {
	want := map[CopyCount]string{
		Uncached:      "UNCACHED",
		OneCopy:       "ONE COPY",
		TwoCopies:     "TWO COPIES",
		ThreeOrMore:   "THREE OR MORE COPIES",
		CopyCount(42): "CopyCount(42)",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("%d.String() = %q; want %q", uint8(c), c.String(), s)
		}
	}
}

func TestClassifierString(t *testing.T) {
	c := NewClassifier(Conservative)
	c.WriteMiss(1, false, false)
	c.ReadMiss(true)
	c.WriteHit(3, true)
	s := c.String()
	for _, want := range []string{"ONE COPY", "last=3", "evidence=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	m := NewClassifier(Aggressive)
	if got := m.String(); !strings.Contains(got, "UNCACHED/MIGRATORY") {
		t.Errorf("aggressive initial String() = %q", got)
	}
}
