package core

import (
	"fmt"

	"migratory/internal/memory"
)

// CopyCount is the directory's count of copies created since the block was
// last held exclusively (or uncached). Following the paper (§2.2), it
// deliberately counts copies *created*, not copies currently existing, so
// that silent drops of clean copies cannot make a three-copy history look
// like migratory two-copy behaviour.
type CopyCount uint8

const (
	// Uncached: no copies exist.
	Uncached CopyCount = iota
	// OneCopy: one copy has been created since the last exclusive interval.
	OneCopy
	// TwoCopies: two copies have been created.
	TwoCopies
	// ThreeOrMore: three or more copies have been created.
	ThreeOrMore
)

// String names the count, including the /MIGRATORY qualifier convention
// used by Figure 3 when rendered by Classifier.String.
func (c CopyCount) String() string {
	switch c {
	case Uncached:
		return "UNCACHED"
	case OneCopy:
		return "ONE COPY"
	case TwoCopies:
		return "TWO COPIES"
	case ThreeOrMore:
		return "THREE OR MORE COPIES"
	default:
		return fmt.Sprintf("CopyCount(%d)", uint8(c))
	}
}

// Classifier is the adaptive portion of one block's directory entry: the
// copies-created state, the migratory classification, the identity of the
// last invalidator, and the hysteresis evidence counter (the generalized
// "one migration" flag of Figure 3).
//
// The Classifier is a passive decision engine: the directory engine tells
// it what happened (read miss, write miss, write hit, block uncached) and
// asks whether to migrate or replicate. It holds no copy set and sends no
// messages.
type Classifier struct {
	policy Policy

	// Count is the copies-created state.
	Count CopyCount
	// Migratory is the current classification.
	Migratory bool
	// LastInvalidator is the node that most recently obtained exclusive
	// write access, or memory.NoNode.
	LastInvalidator memory.NodeID
	// Evidence counts successive migratory events toward Hysteresis.
	Evidence int

	// Observe, when non-nil, is called synchronously after every change to
	// Evidence or Migratory, with the state after the change. It exists for
	// observability layers; the classifier's decisions never depend on it.
	Observe func(Change)

	// table, when non-nil, drives transitions through the precomputed dense
	// lookup table instead of the reference switch logic. The two are
	// verified bit-identical (TestTableMatchesReference); only policies with
	// a hysteresis too large to tabulate fall back to the switches.
	table *transitionTable
}

// Change describes one observable update to a classifier's adaptive state:
// the Evidence counter and Migratory classification after the change, and
// whether the classification itself flipped.
type Change struct {
	// Evidence is the hysteresis counter after the change.
	Evidence int
	// Migratory is the classification after the change.
	Migratory bool
	// Flipped reports whether Migratory differs from before the change.
	Flipped bool
}

// NewClassifier returns the directory entry state for a freshly allocated
// block under the given policy. The policy must be valid.
func NewClassifier(p Policy) Classifier {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return Classifier{
		policy:          p,
		Count:           Uncached,
		Migratory:       p.Adaptive && p.InitialMigratory,
		LastInvalidator: memory.NoNode,
		table:           tableFor(p),
	}
}

// Policy returns the policy this classifier runs.
func (c *Classifier) Policy() Policy { return c.policy }

// record notes one piece of evidence that the block is migratory and
// classifies it once Hysteresis successive events have been seen. The
// counter saturates at the threshold: it models a one-or-two-bit hardware
// field, and larger values carry no information.
func (c *Classifier) record() {
	if !c.policy.Adaptive {
		return
	}
	changed := false
	if c.Evidence < c.policy.Hysteresis {
		c.Evidence++
		changed = true
	}
	flipped := false
	if c.Evidence >= c.policy.Hysteresis && !c.Migratory {
		c.Migratory = true
		changed, flipped = true, true
	}
	if changed && c.Observe != nil {
		c.Observe(Change{Evidence: c.Evidence, Migratory: c.Migratory, Flipped: flipped})
	}
}

// declassify marks the block non-migratory and clears the evidence counter
// (Figure 3 sets "one migration <- FALSE" whenever it declassifies or
// replicates).
func (c *Classifier) declassify() {
	changed := c.Migratory || c.Evidence != 0
	flipped := c.Migratory
	c.Migratory = false
	c.Evidence = 0
	if changed && c.Observe != nil {
		c.Observe(Change{Flipped: flipped})
	}
}

// resetEvidence clears the evidence counter without touching the
// classification, notifying the observer only on an actual change.
func (c *Classifier) resetEvidence() {
	if c.Evidence == 0 {
		return
	}
	c.Evidence = 0
	if c.Observe != nil {
		c.Observe(Change{Migratory: c.Migratory})
	}
}

// ReadMiss applies Figure 3's read-miss handler. dirty reports whether the
// block has been modified by its current (sole) holder; it is only
// meaningful when Count is OneCopy. The return value is true when the
// protocol should *migrate* the block (hand the requester an exclusive,
// writable copy, invalidating any existing copy in the same transaction)
// and false when it should *replicate* (hand out a read-only copy).
func (c *Classifier) ReadMiss(dirty bool) (migrate bool) {
	if t := c.table; t != nil {
		ev := evReadMissClean
		if dirty {
			ev = evReadMissDirty
		}
		return c.apply(t.lookup(c.stateIndex(), ev))
	}
	return c.readMissRef(dirty)
}

// readMissRef is the reference switch implementation of ReadMiss, kept as
// the source of truth the transition table is built from and verified
// against.
func (c *Classifier) readMissRef(dirty bool) (migrate bool) {
	switch c.Count {
	case Uncached:
		c.Count = OneCopy
	case OneCopy:
		if c.Migratory {
			if !dirty {
				// The block moved without being modified: evidence that it
				// is not currently migratory.
				c.Count = TwoCopies
				c.declassify()
			}
			// Otherwise the block stays ONE COPY/MIGRATORY: the old copy is
			// invalidated as part of the migration, so exactly one copy
			// continues to exist.
		} else {
			c.Count = TwoCopies
		}
	case TwoCopies:
		c.Count = ThreeOrMore
	case ThreeOrMore:
		// null statement
	}
	if c.Count == OneCopy && c.Migratory {
		return true
	}
	// Figure 3 clears "one migration" when replicating. Taken literally on
	// every replication that would make the conservative protocol unable to
	// classify anything: the two-event migratory pattern necessarily
	// contains a read miss between the write events (the paper says a block
	// must "migrate twice under the conventional copy-on-read-miss policy",
	// and each such migration is a read miss followed by an invalidation).
	// We therefore clear the evidence only when replication demonstrates
	// read-sharing — the copy that was just created is at least the third.
	if c.Count == ThreeOrMore {
		c.resetEvidence()
	}
	return false
}

// WriteMiss applies Figure 3's write-miss handler. hadCopies reports
// whether any cached copies existed (Figure 3 titles the handler "write
// miss invalidating one or more copies"; a write miss to an uncached block
// skips the classification tests). dirty is as for ReadMiss. After a write
// miss the requester always holds the sole, writable copy.
func (c *Classifier) WriteMiss(requester memory.NodeID, hadCopies bool, dirty bool) {
	if t := c.table; t != nil {
		bits := 0
		if c.LastInvalidator != memory.NoNode && c.LastInvalidator != requester {
			bits |= 1
		}
		if dirty {
			bits |= 2
		}
		if hadCopies {
			bits |= 4
		}
		c.apply(t.lookup(c.stateIndex(), evWriteMiss+bits))
		c.LastInvalidator = requester
		return
	}
	c.writeMissRef(requester, hadCopies, dirty)
}

// writeMissRef is the reference switch implementation of WriteMiss.
func (c *Classifier) writeMissRef(requester memory.NodeID, hadCopies bool, dirty bool) {
	switch {
	case !hadCopies:
		// Uncached: no evidence either way; the classification (including
		// an initial or retained "migratory") carries over.
		c.Count = OneCopy
	case c.Count == OneCopy && c.Migratory:
		if !dirty || c.policy.DeclassifyOnWriteMiss {
			c.declassify()
		}
		c.Count = OneCopy
	case c.LastInvalidator != memory.NoNode && c.LastInvalidator != requester && c.Count == OneCopy:
		c.record()
		c.Count = OneCopy
	default:
		// Figure 3's bare "else state <- ONE COPY". Note that, verbatim,
		// this branch does not clear the evidence counter; we follow the
		// pseudo-code exactly (the write-hit handler's else branch does
		// clear it).
		c.Count = OneCopy
	}
	c.LastInvalidator = requester
}

// WriteHit applies Figure 3's two write-hit handlers. invalidatedOthers
// selects between them: true for "write hit invalidating one or more
// copies" (the requester held a shared copy alongside others), false for a
// write hit on a block of which the requester holds the only cached copy
// ("write hit on a clean, exclusively-held block"). After the call the
// requester holds the sole, writable copy.
func (c *Classifier) WriteHit(requester memory.NodeID, invalidatedOthers bool) {
	if t := c.table; t != nil {
		bits := 0
		if c.LastInvalidator != memory.NoNode && c.LastInvalidator != requester {
			bits |= 1
		}
		if invalidatedOthers {
			bits |= 2
		}
		c.apply(t.lookup(c.stateIndex(), evWriteHit+bits))
		c.LastInvalidator = requester
		return
	}
	c.writeHitRef(requester, invalidatedOthers)
}

// writeHitRef is the reference switch implementation of WriteHit.
func (c *Classifier) writeHitRef(requester memory.NodeID, invalidatedOthers bool) {
	if invalidatedOthers {
		if c.LastInvalidator != memory.NoNode && c.LastInvalidator != requester && c.Count == TwoCopies {
			c.record()
		} else {
			c.declassify()
		}
		c.Count = OneCopy
		c.LastInvalidator = requester
		return
	}
	// Clean, exclusively-held upgrade. This handler fires only for blocks
	// managed by the replicate policy (a migratory holder already has write
	// permission and never contacts the directory), so seeing it with
	// Count == OneCopy and a different last invalidator means the block
	// migrated through memory: evidence of migratory behaviour spanning an
	// uncached interval (§2.2).
	if c.LastInvalidator != memory.NoNode && c.LastInvalidator != requester && c.Count == OneCopy {
		c.record()
	} else if c.Count != OneCopy {
		// Completion of the pseudo-code for a case it leaves implicit: the
		// copies-created count exceeded one (silent drops shrank the copy
		// set) but the requester now holds the block exclusively dirty.
		c.Count = OneCopy
		c.declassify()
	}
	c.LastInvalidator = requester
}

// BecameUncached records that the last cached copy of the block was dropped
// or written back. Policies that retain classification keep everything but
// the copy count; otherwise the entry resets as if never seen.
func (c *Classifier) BecameUncached() {
	if t := c.table; t != nil {
		e := t.lookup(c.stateIndex(), evBecameUncached)
		c.apply(e)
		if e.flags&flagClearLast != 0 {
			c.LastInvalidator = memory.NoNode
		}
		return
	}
	c.becameUncachedRef()
}

// becameUncachedRef is the reference switch implementation of BecameUncached.
func (c *Classifier) becameUncachedRef() {
	c.Count = Uncached
	if !c.policy.RetainWhenUncached {
		initial := c.policy.Adaptive && c.policy.InitialMigratory
		flipped := c.Migratory != initial
		changed := flipped || c.Evidence != 0
		c.Migratory = initial
		c.Evidence = 0
		c.LastInvalidator = memory.NoNode
		if changed && c.Observe != nil {
			c.Observe(Change{Migratory: c.Migratory, Flipped: flipped})
		}
	}
}

// String renders the entry in Figure 3's notation, e.g.
// "ONE COPY/MIGRATORY last=3 evidence=1".
func (c *Classifier) String() string {
	s := c.Count.String()
	if c.Migratory {
		s += "/MIGRATORY"
	}
	if c.LastInvalidator != memory.NoNode {
		s += fmt.Sprintf(" last=%d", c.LastInvalidator)
	}
	if c.Evidence > 0 {
		s += fmt.Sprintf(" evidence=%d", c.Evidence)
	}
	return s
}
