package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"migratory/internal/memory"
)

// applyRandomEvent drives one random directory event into the classifier,
// mirroring the call discipline of the directory engine (which only calls
// BecameUncached when the copy count reaches zero, etc. — here we are
// stricter and allow any order, since the classifier must tolerate every
// sequence the engine can produce and then some).
func applyRandomEvent(c *Classifier, rng *rand.Rand) {
	n := memory.NodeID(rng.Intn(8))
	switch rng.Intn(5) {
	case 0:
		c.ReadMiss(rng.Intn(2) == 0)
	case 1:
		c.WriteMiss(n, rng.Intn(2) == 0, rng.Intn(2) == 0)
	case 2:
		c.WriteHit(n, true)
	case 3:
		c.WriteHit(n, false)
	case 4:
		c.BecameUncached()
	}
}

func validState(c *Classifier) bool {
	if c.Count > ThreeOrMore {
		return false
	}
	if c.Evidence < 0 {
		return false
	}
	// A non-adaptive policy must never classify.
	if !c.Policy().Adaptive && c.Migratory {
		return false
	}
	// Migratory blocks are only meaningful with at most one copy created:
	// the classifier must never be simultaneously migratory and counting
	// two-plus created copies (classification always collapses the count).
	if c.Migratory && c.Count > OneCopy {
		return false
	}
	return true
}

// TestClassifierStateSpaceProperty: under arbitrary event sequences the
// classifier stays within its legal state space for every policy.
func TestClassifierStateSpaceProperty(t *testing.T) {
	policies := append(Policies(), Stenstrom,
		Policy{Name: "forgetful", Adaptive: true, Hysteresis: 2},
		Policy{Name: "hyst5", Adaptive: true, Hysteresis: 5, RetainWhenUncached: true, InitialMigratory: true},
	)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for _, p := range policies {
			c := NewClassifier(p)
			for i := 0; i < 400; i++ {
				applyRandomEvent(&c, rng)
				if !validState(&c) {
					t.Logf("policy %s invalid after %d events: %v", p.Name, i, c.String())
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestClassifierMigrateImpliesSingleCopy: ReadMiss only ever reports a
// migration when the resulting state is exactly one migratory copy.
func TestClassifierMigrateImpliesSingleCopyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewClassifier(Aggressive)
		for i := 0; i < 400; i++ {
			if rng.Intn(3) == 0 {
				if c.ReadMiss(rng.Intn(2) == 0) && (c.Count != OneCopy || !c.Migratory) {
					return false
				}
			} else {
				applyRandomEvent(&c, rng)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestConventionalNeverMigratesProperty: the baseline never migrates, under
// any event sequence.
func TestConventionalNeverMigratesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewClassifier(Conventional)
		for i := 0; i < 300; i++ {
			if rng.Intn(3) == 0 {
				if c.ReadMiss(rng.Intn(2) == 0) {
					return false
				}
			} else {
				applyRandomEvent(&c, rng)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestStenstromClassifierBranches covers the DeclassifyOnWriteMiss axis at
// the classifier level.
func TestStenstromClassifierBranches(t *testing.T) {
	mk := func() Classifier {
		c := NewClassifier(Stenstrom)
		c.WriteMiss(1, false, false)
		c.ReadMiss(true)
		c.WriteHit(2, true) // classified (basic rule)
		if !c.Migratory {
			t.Fatal("setup failed")
		}
		return c
	}
	t.Run("write miss to dirty migratory declassifies", func(t *testing.T) {
		c := mk()
		c.WriteMiss(3, true, true)
		if c.Migratory {
			t.Fatalf("state = %v", c.String())
		}
	})
	t.Run("read miss migration keeps classification", func(t *testing.T) {
		c := mk()
		if !c.ReadMiss(true) || !c.Migratory {
			t.Fatalf("state = %v", c.String())
		}
	})
	t.Run("basic keeps classification on the same event", func(t *testing.T) {
		c := NewClassifier(Basic)
		c.WriteMiss(1, false, false)
		c.ReadMiss(true)
		c.WriteHit(2, true)
		c.WriteMiss(3, true, true)
		if !c.Migratory {
			t.Fatalf("state = %v", c.String())
		}
	})
}
