package core

import (
	"fmt"
	"reflect"
	"testing"

	"migratory/internal/memory"
)

// tablePolicies are the policies the equivalence tests sweep: the four
// published protocols, the §5 related-work policy, and ablations that flip
// each behavior-relevant policy bit the table construction keys on.
func tablePolicies() []Policy {
	ps := append(Policies(), Stenstrom)
	ps = append(ps,
		Policy{Name: "no-retain", Adaptive: true, Hysteresis: 1},
		Policy{Name: "hyst3", Adaptive: true, Hysteresis: 3, RetainWhenUncached: true},
		Policy{Name: "aggr-no-retain", Adaptive: true, InitialMigratory: true, Hysteresis: 2},
	)
	return ps
}

// tableEvent is one call against the classifier's public event API,
// including the LastInvalidator context the transition consults.
type tableEvent struct {
	name string
	last memory.NodeID // pre-set LastInvalidator
	call func(c *Classifier)
	ref  func(c *Classifier)
}

func tableEvents() []tableEvent {
	const requester = memory.NodeID(2)
	lasts := []memory.NodeID{memory.NoNode, requester, memory.NodeID(5)}
	var evs []tableEvent
	for _, dirty := range []bool{false, true} {
		dirty := dirty
		evs = append(evs, tableEvent{
			name: fmt.Sprintf("ReadMiss(dirty=%v)", dirty),
			last: memory.NoNode,
			call: func(c *Classifier) { c.ReadMiss(dirty) },
			ref:  func(c *Classifier) { c.readMissRef(dirty) },
		})
	}
	for _, last := range lasts {
		for _, hadCopies := range []bool{false, true} {
			for _, dirty := range []bool{false, true} {
				last, hadCopies, dirty := last, hadCopies, dirty
				evs = append(evs, tableEvent{
					name: fmt.Sprintf("WriteMiss(last=%d,hadCopies=%v,dirty=%v)", last, hadCopies, dirty),
					last: last,
					call: func(c *Classifier) { c.WriteMiss(requester, hadCopies, dirty) },
					ref:  func(c *Classifier) { c.writeMissRef(requester, hadCopies, dirty) },
				})
			}
		}
		for _, inv := range []bool{false, true} {
			last, inv := last, inv
			evs = append(evs, tableEvent{
				name: fmt.Sprintf("WriteHit(last=%d,invalidatedOthers=%v)", last, inv),
				last: last,
				call: func(c *Classifier) { c.WriteHit(requester, inv) },
				ref:  func(c *Classifier) { c.writeHitRef(requester, inv) },
			})
		}
	}
	for _, last := range lasts {
		last := last
		evs = append(evs, tableEvent{
			name: fmt.Sprintf("BecameUncached(last=%d)", last),
			last: last,
			call: func(c *Classifier) { c.BecameUncached() },
			ref:  func(c *Classifier) { c.becameUncachedRef() },
		})
	}
	return evs
}

// TestTableMatchesReference exhaustively compares the precomputed
// transition table against the reference switch implementations: every
// policy shape x reachable state x event, including the Observe
// notification stream and the LastInvalidator updates.
func TestTableMatchesReference(t *testing.T) {
	for _, p := range tablePolicies() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tbl := tableFor(p)
			if tbl == nil {
				t.Fatalf("policy %v not tabulated", p)
			}
			for evidence := 0; evidence <= p.Hysteresis; evidence++ {
				for count := Uncached; count <= ThreeOrMore; count++ {
					for _, mig := range []bool{false, true} {
						for _, ev := range tableEvents() {
							got := Classifier{policy: p, table: tbl,
								Count: count, Migratory: mig, Evidence: evidence, LastInvalidator: ev.last}
							want := Classifier{policy: p,
								Count: count, Migratory: mig, Evidence: evidence, LastInvalidator: ev.last}
							var gotN, wantN []Change
							got.Observe = func(ch Change) { gotN = append(gotN, ch) }
							want.Observe = func(ch Change) { wantN = append(wantN, ch) }
							ev.call(&got)
							ev.ref(&want)
							if got.Count != want.Count || got.Migratory != want.Migratory ||
								got.Evidence != want.Evidence || got.LastInvalidator != want.LastInvalidator {
								t.Fatalf("%s from {count=%v mig=%v ev=%d}: table %s, reference %s",
									ev.name, count, mig, evidence, got.String(), want.String())
							}
							if !reflect.DeepEqual(gotN, wantN) {
								t.Fatalf("%s from {count=%v mig=%v ev=%d}: table notified %+v, reference %+v",
									ev.name, count, mig, evidence, gotN, wantN)
							}
						}
					}
				}
			}
		})
	}
}

// TestHugeHysteresisFallsBackToReference pins the table-size guard: a
// hysteresis beyond maxTableHysteresis runs the reference switches and
// still behaves.
func TestHugeHysteresisFallsBackToReference(t *testing.T) {
	p := Policy{Name: "huge", Adaptive: true, Hysteresis: maxTableHysteresis + 1, RetainWhenUncached: true}
	c := NewClassifier(p)
	if c.table != nil {
		t.Fatalf("hysteresis %d should not be tabulated", p.Hysteresis)
	}
	c.ReadMiss(false)
	c.WriteMiss(1, true, true)
	c.WriteMiss(2, true, true)
	if c.Evidence != 1 {
		t.Fatalf("evidence = %d, want 1", c.Evidence)
	}
}

// TestTableCacheSharedAcrossNames verifies that two policies differing only
// in Name share one table.
func TestTableCacheSharedAcrossNames(t *testing.T) {
	a := Basic
	b := Basic
	b.Name = "renamed"
	if tableFor(a) != tableFor(b) {
		t.Fatal("same-shape policies built distinct tables")
	}
}
