package core

// The per-access kernel of every simulator funnels through the classifier's
// four event handlers. This file replaces their branchy switch logic with a
// dense precomputed transition table
//
//	[state][event] -> {next state, action bitmask}
//
// where a state packs (Evidence, Count, Migratory) and an event packs the
// handler plus its boolean arguments (dirty, hadCopies, "last invalidator
// differs from the requester", invalidatedOthers). The table is built once
// per policy shape by running the reference switch implementations over
// every state x event pair, so it is bit-identical to the switches by
// construction; TestTableMatchesReference re-verifies the equivalence
// exhaustively, including the Observe notifications.
//
// LastInvalidator stays outside the tabulated state: the transitions only
// ever consult whether it differs from the requester, which is folded into
// the event index, and every write handler then overwrites it with the
// requester.

import (
	"fmt"
	"sync"

	"migratory/internal/memory"
)

// Event indices. Bit 0 of the write-miss and write-hit groups is "the last
// invalidator is some node other than the requester".
const (
	evReadMissClean  = 0               // ReadMiss(dirty=false)
	evReadMissDirty  = 1               // ReadMiss(dirty=true)
	evWriteMiss      = 2               // +1 lastDiffers, +2 dirty, +4 hadCopies
	evWriteHit       = evWriteMiss + 8 // +1 lastDiffers, +2 invalidatedOthers
	evBecameUncached = evWriteHit + 4  //
	numEvents        = evBecameUncached + 1
)

// Action flags of a table entry.
const (
	// flagMigrate is ReadMiss's migrate-don't-replicate return value.
	flagMigrate uint8 = 1 << iota
	// flagNotify fires the Observe callback after applying the entry.
	flagNotify
	// flagFlipped is the Change.Flipped value of the notification.
	flagFlipped
	// flagClearLast resets LastInvalidator to NoNode (BecameUncached under
	// a policy that does not retain classification).
	flagClearLast
)

// tableEntry is one precomputed transition: the successor state, unpacked
// so applying it is three stores, plus the action bitmask.
type tableEntry struct {
	count    CopyCount
	mig      bool
	evidence uint8
	flags    uint8
}

// transitionTable is the dense [state][event] relation for one policy
// shape. States are indexed Evidence*8 + Count*2 + Migratory.
type transitionTable struct {
	entries []tableEntry
}

func (t *transitionTable) lookup(state, event int) tableEntry {
	return t.entries[state*numEvents+event]
}

// stateIndex packs the classifier's tabulated state. The exported fields
// remain the canonical representation; the index is recomputed per event,
// which keeps external field writes (tests, zero values) coherent.
func (c *Classifier) stateIndex() int {
	i := int(c.Evidence)<<3 | int(c.Count)<<1
	if c.Migratory {
		i |= 1
	}
	return i
}

// apply installs a transition's successor state and fires the Observe
// notification the reference implementation would have fired. It returns
// the migrate decision for ReadMiss's benefit.
func (c *Classifier) apply(e tableEntry) bool {
	c.Count = e.count
	c.Migratory = e.mig
	c.Evidence = int(e.evidence)
	if e.flags&flagNotify != 0 && c.Observe != nil {
		c.Observe(Change{Evidence: int(e.evidence), Migratory: e.mig, Flipped: e.flags&flagFlipped != 0})
	}
	return e.flags&flagMigrate != 0
}

// maxTableHysteresis bounds the table size (the state space grows linearly
// with the hysteresis threshold). Policies beyond it — far past anything a
// one-or-two-bit hardware counter models — fall back to the reference
// switches.
const maxTableHysteresis = 256

// policyShape is the behavior-relevant projection of a Policy: two policies
// differing only in Name share a table.
type policyShape struct {
	adaptive              bool
	initialMigratory      bool
	hysteresis            int
	retainWhenUncached    bool
	declassifyOnWriteMiss bool
}

var (
	tableMu sync.Mutex
	tables  = make(map[policyShape]*transitionTable)
)

// DisableTables, when true, makes subsequently built classifiers run the
// reference switch implementations instead of the precomputed tables. It
// exists so benchmarks can price the table kernel against the switches
// (BenchmarkBatchedTable2) and is not safe to flip while classifiers are
// being constructed concurrently.
var DisableTables bool

// tableFor returns the (cached) transition table for the policy, or nil
// when the policy cannot be tabulated.
func tableFor(p Policy) *transitionTable {
	if DisableTables || p.Hysteresis > maxTableHysteresis {
		return nil
	}
	shape := policyShape{
		adaptive:              p.Adaptive,
		initialMigratory:      p.InitialMigratory,
		hysteresis:            p.Hysteresis,
		retainWhenUncached:    p.RetainWhenUncached,
		declassifyOnWriteMiss: p.DeclassifyOnWriteMiss,
	}
	tableMu.Lock()
	defer tableMu.Unlock()
	if t, ok := tables[shape]; ok {
		return t
	}
	t := buildTable(p)
	tables[shape] = t
	return t
}

// buildTable enumerates every state x event pair through the reference
// switch implementations.
func buildTable(p Policy) *transitionTable {
	h := p.Hysteresis
	if h < 0 {
		h = 0
	}
	states := (h + 1) * 8
	t := &transitionTable{entries: make([]tableEntry, states*numEvents)}
	for evidence := 0; evidence <= h; evidence++ {
		for count := Uncached; count <= ThreeOrMore; count++ {
			for _, mig := range [2]bool{false, true} {
				c := Classifier{policy: p, Count: count, Migratory: mig, Evidence: evidence}
				si := c.stateIndex()
				for event := 0; event < numEvents; event++ {
					t.entries[si*numEvents+event] = buildEntry(p, count, mig, evidence, event)
				}
			}
		}
	}
	return t
}

// buildEntry runs one (state, event) pair through the reference switches
// and records the successor and actions.
func buildEntry(p Policy, count CopyCount, mig bool, evidence, event int) tableEntry {
	const requester = memory.NodeID(0)
	const other = memory.NodeID(1)
	c := Classifier{policy: p, Count: count, Migratory: mig, Evidence: evidence, LastInvalidator: memory.NoNode}
	var notified bool
	var change Change
	c.Observe = func(ch Change) {
		if notified {
			panic("core: reference transition notified twice")
		}
		notified = true
		change = ch
	}
	var flags uint8
	switch {
	case event == evReadMissClean || event == evReadMissDirty:
		if c.readMissRef(event == evReadMissDirty) {
			flags |= flagMigrate
		}
	case event >= evWriteMiss && event < evWriteMiss+8:
		bits := event - evWriteMiss
		if bits&1 != 0 {
			c.LastInvalidator = other
		}
		c.writeMissRef(requester, bits&4 != 0, bits&2 != 0)
	case event >= evWriteHit && event < evWriteHit+4:
		bits := event - evWriteHit
		if bits&1 != 0 {
			c.LastInvalidator = other
		}
		c.writeHitRef(requester, bits&2 != 0)
	case event == evBecameUncached:
		c.LastInvalidator = other
		c.becameUncachedRef()
		if c.LastInvalidator == memory.NoNode {
			flags |= flagClearLast
		}
	default:
		panic(fmt.Sprintf("core: unknown event %d", event))
	}
	if notified {
		// The reference handlers always notify with the post-transition
		// (Evidence, Migratory) pair; apply() reconstructs the Change from
		// the entry on that invariant, so enforce it at build time.
		if change.Evidence != c.Evidence || change.Migratory != c.Migratory {
			panic(fmt.Sprintf("core: notification %+v disagrees with state %s", change, c.String()))
		}
		flags |= flagNotify
		if change.Flipped {
			flags |= flagFlipped
		}
	}
	if c.Evidence < 0 || c.Evidence > 255 {
		panic(fmt.Sprintf("core: evidence %d out of table range", c.Evidence))
	}
	return tableEntry{count: c.Count, mig: c.Migratory, evidence: uint8(c.Evidence), flags: flags}
}
