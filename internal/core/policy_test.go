package core

import "testing"

func TestPublishedPoliciesValidate(t *testing.T) {
	for _, p := range Policies() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestPoliciesOrderMatchesPaperTables(t *testing.T) {
	got := Policies()
	want := []string{"conventional", "conservative", "basic", "aggressive"}
	if len(got) != len(want) {
		t.Fatalf("Policies() = %v", got)
	}
	for i, name := range want {
		if got[i].Name != name {
			t.Errorf("Policies()[%d] = %s; want %s", i, got[i].Name, name)
		}
	}
}

func TestPolicyByName(t *testing.T) {
	p, err := PolicyByName("aggressive")
	if err != nil || !p.InitialMigratory {
		t.Fatalf("PolicyByName(aggressive) = %+v, %v", p, err)
	}
	if _, err := PolicyByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestPolicyParameters(t *testing.T) {
	if Conventional.Adaptive {
		t.Error("conventional must not be adaptive")
	}
	if Conservative.Hysteresis != 2 || Conservative.InitialMigratory {
		t.Errorf("conservative = %+v", Conservative)
	}
	if Basic.Hysteresis != 1 || Basic.InitialMigratory {
		t.Errorf("basic = %+v", Basic)
	}
	if Aggressive.Hysteresis != 1 || !Aggressive.InitialMigratory {
		t.Errorf("aggressive = %+v", Aggressive)
	}
	for _, p := range []Policy{Conservative, Basic, Aggressive} {
		if !p.RetainWhenUncached {
			t.Errorf("%s must retain classification while uncached", p.Name)
		}
	}
}

func TestPolicyValidateRejections(t *testing.T) {
	cases := []Policy{
		{},                                  // no name
		{Name: "x", Adaptive: true},         // hysteresis 0
		{Name: "x", InitialMigratory: true}, // non-adaptive migratory
		{Name: "x", Adaptive: true, Hysteresis: -1},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate accepted", i, p)
		}
	}
}

func TestPolicyString(t *testing.T) {
	if Basic.String() != "basic" {
		t.Fatalf("String = %q", Basic.String())
	}
}
