// Package core implements the paper's primary contribution: the on-line
// classification of cache blocks as migratory or other, following the
// directory-entry semantics of Figure 3, generalized over the three policy
// axes the paper identifies in §2:
//
//  1. adaptation speed — how many successive "migratory events" are needed
//     before a block is reclassified as migratory (hysteresis);
//  2. classification memory — whether the classification survives intervals
//     in which the block is uncached;
//  3. initial classification — migratory or other.
//
// The directory engine (internal/directory) and, in spirit, the snooping
// engine (internal/snoop) consume this package. The snooping protocol
// cannot retain state for uncached blocks, so it implements its
// classification directly in its transition relation (Figure 2), but the
// decision rules are the same ones expressed here.
package core

import (
	"errors"
	"fmt"
)

// ErrUnknownPolicy is wrapped by PolicyByName when no protocol matches, so
// callers can classify the failure with errors.Is.
var ErrUnknownPolicy = errors.New("core: unknown policy")

// Policy selects a member of the adaptive protocol family.
type Policy struct {
	// Name identifies the policy in reports ("conventional", "basic", ...).
	Name string
	// Adaptive is false for the conventional replicate-on-read-miss
	// protocol: blocks are never classified migratory.
	Adaptive bool
	// InitialMigratory classifies never-before-seen blocks as migratory
	// (the paper's aggressive protocol).
	InitialMigratory bool
	// Hysteresis is the number of successive migratory events required to
	// classify a block as migratory. 1 reclassifies immediately; 2 matches
	// the Figure 3 "one migration" flag of the conservative protocol.
	Hysteresis int
	// RetainWhenUncached preserves the classification, evidence counter,
	// and last-invalidator across intervals in which the block is not in
	// any cache. All three published variants retain (Figure 3 preserves
	// the directory entry explicitly); disabling it is an ablation that
	// models snooping-style protocols with no storage for uncached blocks.
	RetainWhenUncached bool
	// DeclassifyOnWriteMiss additionally shifts a block out of migratory
	// mode on any write miss, as in the concurrently published protocol of
	// Stenström, Brorsson & Sandberg (§5: "Their protocol also shifts on
	// any write miss to a migratory block"). The paper's own protocols
	// declassify on write miss only when the block was clean.
	DeclassifyOnWriteMiss bool
}

// The four protocols evaluated in §4.1 of the paper.
var (
	// Conventional is the replicate-on-read-miss baseline.
	Conventional = Policy{Name: "conventional"}
	// Conservative starts blocks as non-migratory and requires two
	// successive migratory events to classify (Figure 3).
	Conservative = Policy{Name: "conservative", Adaptive: true, Hysteresis: 2, RetainWhenUncached: true}
	// Basic starts blocks as non-migratory and classifies after a single
	// event.
	Basic = Policy{Name: "basic", Adaptive: true, Hysteresis: 1, RetainWhenUncached: true}
	// Aggressive starts blocks as migratory, reclassifies after a single
	// event, and remembers classifications while a block is uncached.
	Aggressive = Policy{Name: "aggressive", Adaptive: true, InitialMigratory: true, Hysteresis: 1, RetainWhenUncached: true}
)

// Stenstrom is the related-work protocol of Stenström, Brorsson & Sandberg
// (ISCA 1993), which the paper describes as "very similar" to its own: the
// same classification rule as Basic, but shifting out of migratory mode on
// any write miss to a migratory block rather than only on clean ones. It is
// not part of Policies() — the paper's tables do not include it — but is
// provided for the quantitative comparison §5 calls for.
var Stenstrom = Policy{Name: "stenstrom", Adaptive: true, Hysteresis: 1, RetainWhenUncached: true, DeclassifyOnWriteMiss: true}

// Policies lists the four published protocols in the order the paper's
// tables present them.
func Policies() []Policy {
	return []Policy{Conventional, Conservative, Basic, Aggressive}
}

// PolicyByName looks a policy up by its report name. Besides the four
// published protocols it also resolves "stenstrom", the §5 related-work
// comparison policy.
func PolicyByName(name string) (Policy, error) {
	for _, p := range append(Policies(), Stenstrom) {
		if p.Name == name {
			return p, nil
		}
	}
	return Policy{}, fmt.Errorf("%w: %q", ErrUnknownPolicy, name)
}

// Validate checks policy parameters.
func (p Policy) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("core: policy has no name")
	}
	if !p.Adaptive {
		if p.InitialMigratory {
			return fmt.Errorf("core: policy %q: non-adaptive policy cannot start migratory", p.Name)
		}
		return nil
	}
	if p.Hysteresis < 1 {
		return fmt.Errorf("core: policy %q: hysteresis %d must be >= 1", p.Name, p.Hysteresis)
	}
	return nil
}

// String returns the policy name.
func (p Policy) String() string { return p.Name }
