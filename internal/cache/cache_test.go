package cache

import (
	"testing"
	"testing/quick"

	"migratory/internal/memory"
)

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{"paper 4K", Config{SizeBytes: 4096, BlockSize: 16, Assoc: 4}, false},
		{"paper 1M", Config{SizeBytes: 1 << 20, BlockSize: 16, Assoc: 4}, false},
		{"infinite", Config{SizeBytes: 0, BlockSize: 64}, false},
		{"bad block", Config{SizeBytes: 4096, BlockSize: 24, Assoc: 4}, true},
		{"zero block", Config{SizeBytes: 4096, BlockSize: 0, Assoc: 4}, true},
		{"negative size", Config{SizeBytes: -1, BlockSize: 16, Assoc: 4}, true},
		{"zero assoc", Config{SizeBytes: 4096, BlockSize: 16, Assoc: 0}, true},
		{"size not multiple of block", Config{SizeBytes: 4100, BlockSize: 16, Assoc: 4}, true},
		{"lines not divisible by assoc", Config{SizeBytes: 48, BlockSize: 16, Assoc: 4}, true},
		{"sets not power of two", Config{SizeBytes: 16 * 4 * 3, BlockSize: 16, Assoc: 4}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.cfg.Validate()
			if (err != nil) != c.wantErr {
				t.Fatalf("Validate() = %v; wantErr = %v", err, c.wantErr)
			}
		})
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(Config{SizeBytes: 100, BlockSize: 16, Assoc: 4})
}

func TestLookupInsertInvalidate(t *testing.T) {
	c := New(Config{SizeBytes: 1024, BlockSize: 16, Assoc: 4})
	if l := c.Lookup(5); l != nil {
		t.Fatal("lookup in empty cache hit")
	}
	l, ev := c.Insert(5, 2)
	if ev != nil {
		t.Fatal("eviction from empty cache")
	}
	if l.Block != 5 || l.State != 2 || l.Dirty {
		t.Fatalf("inserted line = %+v", l)
	}
	got := c.Lookup(5)
	if got == nil || got != l {
		t.Fatal("lookup did not return the inserted line")
	}
	got.Dirty = true
	got.State = 3
	if p := c.Peek(5); p.State != 3 || !p.Dirty {
		t.Fatal("mutation through pointer not visible")
	}
	if !c.Invalidate(5) {
		t.Fatal("Invalidate missed present block")
	}
	if c.Invalidate(5) {
		t.Fatal("Invalidate hit absent block")
	}
	if c.Lookup(5) != nil {
		t.Fatal("block present after invalidate")
	}
}

func TestInsertPresentPanics(t *testing.T) {
	c := New(Config{SizeBytes: 1024, BlockSize: 16, Assoc: 4})
	c.Insert(1, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("double insert did not panic")
		}
	}()
	c.Insert(1, 0)
}

func TestLRUEviction(t *testing.T) {
	// 4 sets, assoc 2: blocks map to set b % 4.
	c := New(Config{SizeBytes: 8 * 16, BlockSize: 16, Assoc: 2})
	// Fill set 0 with blocks 0 and 4.
	c.Insert(0, 0)
	c.Insert(4, 0)
	// Touch 0 so 4 becomes LRU.
	c.Lookup(0)
	l, ev := c.Insert(8, 0)
	if ev == nil || ev.Block != 4 {
		t.Fatalf("evicted %+v; want block 4", ev)
	}
	if l.Block != 8 {
		t.Fatalf("inserted %+v", l)
	}
	if c.Peek(0) == nil || c.Peek(8) == nil || c.Peek(4) != nil {
		t.Fatal("post-eviction contents wrong")
	}
	_, _, evs := c.Stats()
	if evs != 1 {
		t.Fatalf("evictions = %d", evs)
	}
}

func TestEvictionReportsDirtyVictim(t *testing.T) {
	c := New(Config{SizeBytes: 2 * 16, BlockSize: 16, Assoc: 2})
	l, _ := c.Insert(0, 1)
	l.Dirty = true
	l.Version = 7
	c.Insert(2, 0) // same set (only one set)
	_, ev := c.Insert(4, 0)
	if ev == nil || ev.Block != 0 || !ev.Dirty || ev.State != 1 || ev.Version != 7 {
		t.Fatalf("victim = %+v; want dirty block 0 state 1 version 7", ev)
	}
}

func TestSetIsolation(t *testing.T) {
	// Blocks in different sets never evict each other.
	c := New(Config{SizeBytes: 4 * 16, BlockSize: 16, Assoc: 1})
	for b := memory.BlockID(0); b < 4; b++ {
		if _, ev := c.Insert(b, 0); ev != nil {
			t.Fatalf("cross-set eviction inserting %d: %+v", b, ev)
		}
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	// Block 4 conflicts with block 0 only.
	_, ev := c.Insert(4, 0)
	if ev == nil || ev.Block != 0 {
		t.Fatalf("victim = %+v; want block 0", ev)
	}
}

func TestInfiniteCacheNeverEvicts(t *testing.T) {
	c := New(Config{SizeBytes: 0, BlockSize: 16})
	if !c.Infinite() {
		t.Fatal("not infinite")
	}
	for b := memory.BlockID(0); b < 10000; b++ {
		if _, ev := c.Insert(b, 0); ev != nil {
			t.Fatalf("infinite cache evicted %+v", ev)
		}
	}
	if c.Len() != 10000 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.Lookup(9999) == nil || c.Lookup(0) == nil {
		t.Fatal("infinite cache lost a block")
	}
	if !c.Invalidate(500) || c.Peek(500) != nil {
		t.Fatal("infinite cache invalidate failed")
	}
	hits, misses, evs := c.Stats()
	if evs != 0 || hits != 2 || misses != 0 {
		t.Fatalf("stats = %d %d %d", hits, misses, evs)
	}
}

func TestPeekDoesNotTouchLRUOrStats(t *testing.T) {
	c := New(Config{SizeBytes: 2 * 16, BlockSize: 16, Assoc: 2})
	c.Insert(0, 0)
	c.Insert(1, 0)
	h0, m0, _ := c.Stats()
	// Peek block 0 repeatedly; block 0 must still be LRU (insert order).
	for i := 0; i < 5; i++ {
		if c.Peek(0) == nil {
			t.Fatal("peek missed")
		}
	}
	h1, m1, _ := c.Stats()
	if h1 != h0 || m1 != m0 {
		t.Fatal("Peek changed stats")
	}
	_, ev := c.Insert(2, 0)
	if ev == nil || ev.Block != 0 {
		t.Fatalf("victim = %+v; want block 0 (Peek must not refresh LRU)", ev)
	}
}

func TestBlocksListing(t *testing.T) {
	c := New(Config{SizeBytes: 1024, BlockSize: 16, Assoc: 4})
	want := map[memory.BlockID]bool{3: true, 9: true, 100: true}
	for b := range want {
		c.Insert(b, 0)
	}
	got := c.Blocks()
	if len(got) != len(want) {
		t.Fatalf("Blocks = %v", got)
	}
	for _, b := range got {
		if !want[b] {
			t.Fatalf("unexpected block %d", b)
		}
	}
}

func TestHitMissAccounting(t *testing.T) {
	c := New(Config{SizeBytes: 1024, BlockSize: 16, Assoc: 4})
	c.Lookup(1) // miss
	c.Insert(1, 0)
	c.Lookup(1) // hit
	c.Lookup(1) // hit
	c.Lookup(2) // miss
	h, m, _ := c.Stats()
	if h != 2 || m != 2 {
		t.Fatalf("hits=%d misses=%d", h, m)
	}
}

// Property: a finite cache never holds more lines than its capacity and
// never holds two lines for one block, under random operations.
func TestCacheInvariantsProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := New(Config{SizeBytes: 8 * 16, BlockSize: 16, Assoc: 2})
		for _, op := range ops {
			b := memory.BlockID(op % 32)
			switch (op / 32) % 3 {
			case 0:
				if c.Lookup(b) == nil {
					c.Insert(b, 0)
				}
			case 1:
				c.Invalidate(b)
			case 2:
				c.Peek(b)
			}
			if c.Len() > 8 {
				return false
			}
			seen := map[memory.BlockID]bool{}
			for _, blk := range c.Blocks() {
				if seen[blk] {
					return false
				}
				seen[blk] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: LRU within a set — after inserting A, B and touching A, an
// insert that overflows the set always evicts B.
func TestLRUWithinSetProperty(t *testing.T) {
	f := func(seed uint8) bool {
		c := New(Config{SizeBytes: 2 * 16, BlockSize: 16, Assoc: 2})
		a := memory.BlockID(seed)
		b := a + 1 // both map to the single set
		c.Insert(a, 0)
		c.Insert(b, 0)
		c.Lookup(a)
		_, ev := c.Insert(b+1, 0)
		return ev != nil && ev.Block == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
