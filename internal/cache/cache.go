// Package cache models the per-node private caches of the simulated
// multiprocessor: 4-way set-associative with LRU replacement, matching the
// paper's simplified architectural model (§3.3). An "infinite" mode with no
// capacity or conflict misses backs the block-size study (Table 3), which
// the paper runs with "caches large enough to eliminate capacity misses".
//
// The cache stores protocol-defined line states as opaque small integers;
// coherence semantics live in the protocol engines (internal/directory and
// internal/snoop), which react to the victims this package reports.
package cache

import (
	"fmt"

	"migratory/internal/memory"
)

// State is a protocol-defined per-line state. The cache only distinguishes
// present from absent; protocols define their own state enumerations and the
// meaning of Dirty.
type State uint8

// Line is one cache entry. Protocol engines mutate State, Dirty, and
// Version in place through the pointer returned by Lookup/Insert.
type Line struct {
	Block memory.BlockID
	State State
	Dirty bool
	// Version is an instrumentation field for coherence checking: the
	// simulated "data value" of the block, maintained by the protocol
	// engines as a monotonically increasing write counter.
	Version uint64
	// Aux is protocol-defined auxiliary per-line state (for example, the
	// small hysteresis counter the paper suggests for adaptive snooping
	// protocols, §2.1). The cache itself never touches it.
	Aux uint8
}

// Config describes one cache.
type Config struct {
	// SizeBytes is the total capacity. Zero means infinite (no capacity or
	// conflict misses).
	SizeBytes int
	// BlockSize in bytes. Must match the experiment geometry.
	BlockSize int
	// Assoc is the set associativity. The paper uses 4-way throughout.
	// Ignored for infinite caches.
	Assoc int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BlockSize <= 0 || c.BlockSize&(c.BlockSize-1) != 0 {
		return fmt.Errorf("cache: block size %d is not a positive power of two", c.BlockSize)
	}
	if c.SizeBytes == 0 {
		return nil // infinite
	}
	if c.SizeBytes < 0 {
		return fmt.Errorf("cache: negative size %d", c.SizeBytes)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache: associativity %d must be positive", c.Assoc)
	}
	lines := c.SizeBytes / c.BlockSize
	if lines*c.BlockSize != c.SizeBytes {
		return fmt.Errorf("cache: size %d not a multiple of block size %d", c.SizeBytes, c.BlockSize)
	}
	if lines%c.Assoc != 0 {
		return fmt.Errorf("cache: %d lines not divisible by associativity %d", lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	return nil
}

// Cache is a single node's private cache. The zero value is not usable;
// construct with New.
type Cache struct {
	cfg      Config
	sets     []set // nil for infinite caches
	setMask  memory.BlockID
	infinite *memory.BlockMap[Line] // used when cfg.SizeBytes == 0
	clock    uint64

	// Stats.
	hits      uint64
	misses    uint64
	evictions uint64
}

type way struct {
	line  Line
	valid bool
	used  uint64 // LRU timestamp
}

type set struct {
	ways []way
}

// New builds a cache from cfg. It panics if cfg is invalid; callers
// configure caches from validated experiment descriptions.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{cfg: cfg}
	if cfg.SizeBytes == 0 {
		c.infinite = new(memory.BlockMap[Line])
		return c
	}
	nsets := cfg.SizeBytes / cfg.BlockSize / cfg.Assoc
	c.sets = make([]set, nsets)
	// One backing array for every way keeps construction at two
	// allocations regardless of set count; sweeps build hundreds of caches.
	ways := make([]way, nsets*cfg.Assoc)
	for i := range c.sets {
		c.sets[i].ways = ways[i*cfg.Assoc : (i+1)*cfg.Assoc : (i+1)*cfg.Assoc]
	}
	c.setMask = memory.BlockID(nsets - 1)
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Infinite reports whether the cache has unbounded capacity.
func (c *Cache) Infinite() bool { return c.infinite != nil }

func (c *Cache) setFor(b memory.BlockID) *set { return &c.sets[b&c.setMask] }

// Lookup returns the line holding block b, touching LRU state, or nil if
// the block is not cached. The returned pointer stays valid until the line
// is evicted or invalidated.
func (c *Cache) Lookup(b memory.BlockID) *Line {
	c.clock++
	if c.infinite != nil {
		if l := c.infinite.Get(b); l != nil {
			c.hits++
			return l
		}
		c.misses++
		return nil
	}
	s := c.setFor(b)
	for i := range s.ways {
		w := &s.ways[i]
		if w.valid && w.line.Block == b {
			w.used = c.clock
			c.hits++
			return &w.line
		}
	}
	c.misses++
	return nil
}

// Peek returns the line holding block b without touching LRU state or
// hit/miss statistics. Protocol engines use it when servicing remote
// requests (a remote read miss probing this cache is not a local access).
func (c *Cache) Peek(b memory.BlockID) *Line {
	if c.infinite != nil {
		return c.infinite.Get(b)
	}
	s := c.setFor(b)
	for i := range s.ways {
		w := &s.ways[i]
		if w.valid && w.line.Block == b {
			return &w.line
		}
	}
	return nil
}

// Insert adds block b with the given state, evicting the LRU line of the
// set if necessary. It returns a pointer to the inserted line and, if an
// eviction occurred, a copy of the victim. Inserting a block that is
// already present panics: protocol engines must Lookup first.
func (c *Cache) Insert(b memory.BlockID, st State) (*Line, *Line) {
	c.clock++
	if c.infinite != nil {
		l, created := c.infinite.GetOrCreate(b)
		if !created {
			panic(fmt.Sprintf("cache: Insert of present block %d", b))
		}
		*l = Line{Block: b, State: st}
		return l, nil
	}
	s := c.setFor(b)
	var free *way
	var victim *way
	for i := range s.ways {
		w := &s.ways[i]
		if w.valid && w.line.Block == b {
			panic(fmt.Sprintf("cache: Insert of present block %d", b))
		}
		if !w.valid {
			if free == nil {
				free = w
			}
			continue
		}
		if victim == nil || w.used < victim.used {
			victim = w
		}
	}
	var evicted *Line
	target := free
	if target == nil {
		ev := victim.line // copy before overwrite
		evicted = &ev
		c.evictions++
		target = victim
	}
	target.valid = true
	target.line = Line{Block: b, State: st}
	target.used = c.clock
	return &target.line, evicted
}

// Invalidate removes block b if present, returning whether it was present.
// Invalidation (a coherence action, not a replacement) does not count as an
// eviction.
func (c *Cache) Invalidate(b memory.BlockID) bool {
	if c.infinite != nil {
		return c.infinite.Delete(b)
	}
	s := c.setFor(b)
	for i := range s.ways {
		w := &s.ways[i]
		if w.valid && w.line.Block == b {
			w.valid = false
			return true
		}
	}
	return false
}

// Len returns the number of valid lines.
func (c *Cache) Len() int {
	if c.infinite != nil {
		return c.infinite.Len()
	}
	n := 0
	for i := range c.sets {
		for j := range c.sets[i].ways {
			if c.sets[i].ways[j].valid {
				n++
			}
		}
	}
	return n
}

// Blocks returns the IDs of all valid lines, in no particular order.
func (c *Cache) Blocks() []memory.BlockID {
	out := make([]memory.BlockID, 0, c.Len())
	if c.infinite != nil {
		c.infinite.ForEach(func(b memory.BlockID, _ *Line) {
			out = append(out, b)
		})
		return out
	}
	for i := range c.sets {
		for j := range c.sets[i].ways {
			if c.sets[i].ways[j].valid {
				out = append(out, c.sets[i].ways[j].line.Block)
			}
		}
	}
	return out
}

// Stats reports hits, misses, and evictions since construction.
func (c *Cache) Stats() (hits, misses, evictions uint64) {
	return c.hits, c.misses, c.evictions
}
