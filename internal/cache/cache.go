// Package cache models the per-node private caches of the simulated
// multiprocessor: 4-way set-associative with LRU replacement, matching the
// paper's simplified architectural model (§3.3). An "infinite" mode with no
// capacity or conflict misses backs the block-size study (Table 3), which
// the paper runs with "caches large enough to eliminate capacity misses".
//
// The cache stores protocol-defined line states as opaque small integers;
// coherence semantics live in the protocol engines (internal/directory and
// internal/snoop), which react to the victims this package reports.
package cache

import (
	"fmt"
	"math/bits"

	"migratory/internal/memory"
)

// State is a protocol-defined per-line state. The cache only distinguishes
// present from absent; protocols define their own state enumerations and the
// meaning of Dirty.
type State uint8

// Line is one cache entry. Protocol engines mutate State, Dirty, and
// Version in place through the pointer returned by Lookup/Insert.
type Line struct {
	Block memory.BlockID
	State State
	Dirty bool
	// Version is an instrumentation field for coherence checking: the
	// simulated "data value" of the block, maintained by the protocol
	// engines as a monotonically increasing write counter.
	Version uint64
	// Aux is protocol-defined auxiliary per-line state (for example, the
	// small hysteresis counter the paper suggests for adaptive snooping
	// protocols, §2.1). The cache itself never touches it.
	Aux uint8
}

// Config describes one cache.
type Config struct {
	// SizeBytes is the total capacity. Zero means infinite (no capacity or
	// conflict misses).
	SizeBytes int
	// BlockSize in bytes. Must match the experiment geometry.
	BlockSize int
	// Assoc is the set associativity. The paper uses 4-way throughout.
	// Ignored for infinite caches.
	Assoc int
	// Shards and ShardIndex carve a set-sharded slice out of the cache:
	// when Shards > 1 the cache holds only the sets whose index is
	// congruent to ShardIndex modulo Shards, and stores them compactly (a
	// sharded run's per-shard caches together cost the same memory as one
	// full cache). Shards must be a power of two no larger than the set
	// count; zero means unsharded. Blocks outside the shard's sets must
	// never be presented to the cache — set sharding is the caller's
	// routing contract, not checked per access.
	Shards     int
	ShardIndex int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.BlockSize <= 0 || c.BlockSize&(c.BlockSize-1) != 0 {
		return fmt.Errorf("cache: block size %d is not a positive power of two", c.BlockSize)
	}
	if c.Shards > 1 {
		if c.Shards&(c.Shards-1) != 0 {
			return fmt.Errorf("cache: shard count %d is not a power of two", c.Shards)
		}
		if c.ShardIndex < 0 || c.ShardIndex >= c.Shards {
			return fmt.Errorf("cache: shard index %d out of range [0, %d)", c.ShardIndex, c.Shards)
		}
	} else if c.ShardIndex != 0 {
		return fmt.Errorf("cache: shard index %d without sharding", c.ShardIndex)
	}
	if c.SizeBytes == 0 {
		return nil // infinite
	}
	if c.SizeBytes < 0 {
		return fmt.Errorf("cache: negative size %d", c.SizeBytes)
	}
	if c.Assoc <= 0 {
		return fmt.Errorf("cache: associativity %d must be positive", c.Assoc)
	}
	lines := c.SizeBytes / c.BlockSize
	if lines*c.BlockSize != c.SizeBytes {
		return fmt.Errorf("cache: size %d not a multiple of block size %d", c.SizeBytes, c.BlockSize)
	}
	if lines%c.Assoc != 0 {
		return fmt.Errorf("cache: %d lines not divisible by associativity %d", lines, c.Assoc)
	}
	sets := lines / c.Assoc
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	if c.Shards > sets {
		return fmt.Errorf("cache: %d shards exceed %d sets", c.Shards, sets)
	}
	return nil
}

// Cache is a single node's private cache. The zero value is not usable;
// construct with New.
//
// Finite caches store tags and line payloads in parallel arrays: the
// Lookup/Peek scan touches only the compact tag entries (16 bytes per way,
// so a 4-way set's tags share one hardware cache line), and the fat Line
// payload is dereferenced only on a hit. Profiles of the sweep hot loop
// show the tag scan as the single largest per-access cost, which makes its
// memory footprint worth this layout.
type Cache struct {
	cfg        Config
	tags       []tagEntry // nil for infinite caches; len == sets*assoc
	lines      []Line     // parallel to tags
	assoc      int
	setMask    memory.BlockID
	shardShift uint // log2(Shards); global set index >> shardShift & setMask = local set
	infinite   *memory.BlockMap[Line] // used when cfg.SizeBytes == 0
	clock      uint64

	// Stats.
	hits      uint64
	misses    uint64
	evictions uint64
}

// tagEntry is the scanned portion of one way. used doubles as the validity
// flag: the clock is incremented before every stamp, so a live line always
// has used != 0, and Invalidate just zeroes it.
type tagEntry struct {
	block memory.BlockID
	used  uint64 // LRU timestamp; 0 means the way is empty
}

// New builds a cache from cfg. It panics if cfg is invalid; callers
// configure caches from validated experiment descriptions.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	c := &Cache{cfg: cfg}
	if cfg.SizeBytes == 0 {
		c.infinite = new(memory.BlockMap[Line])
		return c
	}
	nsets := cfg.SizeBytes / cfg.BlockSize / cfg.Assoc
	if cfg.Shards > 1 {
		// A shard stores its 1/Shards of the sets compactly. A block's low
		// bits select the shard, so the local set index is the remaining
		// set-index bits: (block >> log2(Shards)) & (nsets/Shards - 1).
		nsets /= cfg.Shards
		c.shardShift = uint(bits.TrailingZeros(uint(cfg.Shards)))
	}
	c.tags = make([]tagEntry, nsets*cfg.Assoc)
	c.lines = make([]Line, nsets*cfg.Assoc)
	c.assoc = cfg.Assoc
	c.setMask = memory.BlockID(nsets - 1)
	return c
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Infinite reports whether the cache has unbounded capacity.
func (c *Cache) Infinite() bool { return c.infinite != nil }

// setBase returns the index of block b's set's first way in tags/lines.
func (c *Cache) setBase(b memory.BlockID) int {
	return int((b>>c.shardShift)&c.setMask) * c.assoc
}

// Lookup returns the line holding block b, touching LRU state, or nil if
// the block is not cached. The returned pointer stays valid until the line
// is evicted or invalidated.
func (c *Cache) Lookup(b memory.BlockID) *Line {
	c.clock++
	if c.infinite != nil {
		if l := c.infinite.Get(b); l != nil {
			c.hits++
			return l
		}
		c.misses++
		return nil
	}
	base := c.setBase(b)
	tags := c.tags[base : base+c.assoc]
	for i := range tags {
		if tags[i].block == b && tags[i].used != 0 {
			tags[i].used = c.clock
			c.hits++
			return &c.lines[base+i]
		}
	}
	c.misses++
	return nil
}

// Peek returns the line holding block b without touching LRU state or
// hit/miss statistics. Protocol engines use it when servicing remote
// requests (a remote read miss probing this cache is not a local access).
func (c *Cache) Peek(b memory.BlockID) *Line {
	if c.infinite != nil {
		return c.infinite.Get(b)
	}
	base := c.setBase(b)
	tags := c.tags[base : base+c.assoc]
	for i := range tags {
		if tags[i].block == b && tags[i].used != 0 {
			return &c.lines[base+i]
		}
	}
	return nil
}

// Insert adds block b with the given state, evicting the LRU line of the
// set if necessary. It returns a pointer to the inserted line and, if an
// eviction occurred, a copy of the victim. Inserting a block that is
// already present panics: protocol engines must Lookup first.
func (c *Cache) Insert(b memory.BlockID, st State) (*Line, *Line) {
	c.clock++
	if c.infinite != nil {
		l, created := c.infinite.GetOrCreate(b)
		if !created {
			panic(fmt.Sprintf("cache: Insert of present block %d", b))
		}
		*l = Line{Block: b, State: st}
		return l, nil
	}
	base := c.setBase(b)
	tags := c.tags[base : base+c.assoc]
	free, victim := -1, -1
	for i := range tags {
		if tags[i].used == 0 {
			if free < 0 {
				free = i
			}
			continue
		}
		if tags[i].block == b {
			panic(fmt.Sprintf("cache: Insert of present block %d", b))
		}
		if victim < 0 || tags[i].used < tags[victim].used {
			victim = i
		}
	}
	var evicted *Line
	target := free
	if target < 0 {
		ev := c.lines[base+victim] // copy before overwrite
		evicted = &ev
		c.evictions++
		target = victim
	}
	tags[target] = tagEntry{block: b, used: c.clock}
	c.lines[base+target] = Line{Block: b, State: st}
	return &c.lines[base+target], evicted
}

// Invalidate removes block b if present, returning whether it was present.
// Invalidation (a coherence action, not a replacement) does not count as an
// eviction.
func (c *Cache) Invalidate(b memory.BlockID) bool {
	if c.infinite != nil {
		return c.infinite.Delete(b)
	}
	base := c.setBase(b)
	tags := c.tags[base : base+c.assoc]
	for i := range tags {
		if tags[i].block == b && tags[i].used != 0 {
			tags[i].used = 0
			return true
		}
	}
	return false
}

// Len returns the number of valid lines.
func (c *Cache) Len() int {
	if c.infinite != nil {
		return c.infinite.Len()
	}
	n := 0
	for i := range c.tags {
		if c.tags[i].used != 0 {
			n++
		}
	}
	return n
}

// Blocks returns the IDs of all valid lines, in no particular order.
func (c *Cache) Blocks() []memory.BlockID {
	out := make([]memory.BlockID, 0, c.Len())
	if c.infinite != nil {
		c.infinite.ForEach(func(b memory.BlockID, _ *Line) {
			out = append(out, b)
		})
		return out
	}
	for i := range c.tags {
		if c.tags[i].used != 0 {
			out = append(out, c.tags[i].block)
		}
	}
	return out
}

// Stats reports hits, misses, and evictions since construction.
func (c *Cache) Stats() (hits, misses, evictions uint64) {
	return c.hits, c.misses, c.evictions
}
