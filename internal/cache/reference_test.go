package cache

import (
	"math/rand"
	"testing"

	"migratory/internal/memory"
)

// refCache is a deliberately naive reference implementation of a
// set-associative LRU cache, kept as obviously correct as possible: each
// set is an ordered slice, most recently used last.
type refCache struct {
	sets      [][]memory.BlockID
	assoc     int
	evictions int
}

func newRef(sets, assoc int) *refCache {
	return &refCache{sets: make([][]memory.BlockID, sets), assoc: assoc}
}

func (r *refCache) set(b memory.BlockID) int { return int(b) % len(r.sets) }

func (r *refCache) lookup(b memory.BlockID) bool {
	s := r.set(b)
	for i, x := range r.sets[s] {
		if x == b {
			// Move to MRU position.
			r.sets[s] = append(append(append([]memory.BlockID{}, r.sets[s][:i]...), r.sets[s][i+1:]...), b)
			return true
		}
	}
	return false
}

func (r *refCache) insert(b memory.BlockID) (victim memory.BlockID, evicted bool) {
	s := r.set(b)
	if len(r.sets[s]) == r.assoc {
		victim = r.sets[s][0]
		r.sets[s] = r.sets[s][1:]
		evicted = true
		r.evictions++
	}
	r.sets[s] = append(r.sets[s], b)
	return victim, evicted
}

func (r *refCache) invalidate(b memory.BlockID) bool {
	s := r.set(b)
	for i, x := range r.sets[s] {
		if x == b {
			r.sets[s] = append(append([]memory.BlockID{}, r.sets[s][:i]...), r.sets[s][i+1:]...)
			return true
		}
	}
	return false
}

// TestAgainstReferenceModel runs long random operation sequences against
// both implementations and demands identical observable behaviour: hit or
// miss on every lookup, the same victim on every insert, and the same
// eviction totals.
func TestAgainstReferenceModel(t *testing.T) {
	const (
		sets  = 8
		assoc = 4
	)
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := New(Config{SizeBytes: sets * assoc * 16, BlockSize: 16, Assoc: assoc})
		ref := newRef(sets, assoc)
		for op := 0; op < 5000; op++ {
			b := memory.BlockID(rng.Intn(64))
			switch rng.Intn(3) {
			case 0: // access: lookup, insert on miss
				hit := c.Lookup(b) != nil
				refHit := ref.lookup(b)
				if hit != refHit {
					t.Fatalf("seed %d op %d: lookup(%d) = %v, ref %v", seed, op, b, hit, refHit)
				}
				if !hit {
					_, victim := c.Insert(b, 0)
					refVictim, refEvicted := ref.insert(b)
					if (victim != nil) != refEvicted {
						t.Fatalf("seed %d op %d: insert(%d) evicted=%v, ref %v", seed, op, b, victim != nil, refEvicted)
					}
					if victim != nil && victim.Block != refVictim {
						t.Fatalf("seed %d op %d: insert(%d) victim %d, ref %d", seed, op, b, victim.Block, refVictim)
					}
				}
			case 1: // invalidate
				got := c.Invalidate(b)
				want := ref.invalidate(b)
				if got != want {
					t.Fatalf("seed %d op %d: invalidate(%d) = %v, ref %v", seed, op, b, got, want)
				}
			case 2: // peek must not disturb LRU
				present := c.Peek(b) != nil
				var refPresent bool
				for _, x := range ref.sets[ref.set(b)] {
					if x == b {
						refPresent = true
					}
				}
				if present != refPresent {
					t.Fatalf("seed %d op %d: peek(%d) = %v, ref %v", seed, op, b, present, refPresent)
				}
			}
		}
		_, _, evs := c.Stats()
		if int(evs) != ref.evictions {
			t.Fatalf("seed %d: evictions %d, ref %d", seed, evs, ref.evictions)
		}
		if c.Len() != lenRef(ref) {
			t.Fatalf("seed %d: len %d, ref %d", seed, c.Len(), lenRef(ref))
		}
	}
}

func lenRef(r *refCache) int {
	n := 0
	for _, s := range r.sets {
		n += len(s)
	}
	return n
}
