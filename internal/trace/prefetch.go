package trace

import "io"

// fetchResult is one decoded window handed from the prefetch goroutine to
// the consumer. err, when non-nil, is terminal for the stream (io.EOF or a
// decode failure) and always travels with the final window.
type fetchResult struct {
	buf []Access
	n   int
	err error
}

// PrefetchSource wraps a Source with a decode goroutine that keeps one
// batch in flight ahead of the consumer: while the simulator chews on the
// current window, the goroutine is already running the underlying source's
// NextBatch (for an .mtr FileSource, the file IO and varint decode) for the
// next one. The channel holds one window and the consumer holds another, so
// the pipeline is double-buffered; buffers come from the shared batch pool.
//
// PrefetchSource is a Source itself and is driven by one consumer at a
// time, like every other Source. Reset and Close first quiesce the decode
// goroutine, so the underlying source is never touched concurrently.
type PrefetchSource struct {
	src  Source
	ch   chan fetchResult
	stop chan struct{}
	cur  []Access
	pos  int
	err  error // terminal stream error, delivered once cur drains
}

// NewPrefetchSource returns src wrapped with a prefetching decode stage.
// The wrapper owns src: closing the wrapper closes src.
func NewPrefetchSource(src Source) *PrefetchSource {
	p := &PrefetchSource{src: src}
	p.start()
	return p
}

func (p *PrefetchSource) start() {
	p.ch = make(chan fetchResult, 1)
	p.stop = make(chan struct{})
	p.cur = nil
	p.pos = 0
	p.err = nil
	go fill(p.src, p.ch, p.stop)
}

// fill decodes ahead until the stream ends or the consumer halts it. It
// always closes ch on the way out, and after a halt never touches src
// again — that is what lets Reset/Close safely reuse the source.
func fill(src Source, ch chan fetchResult, stop chan struct{}) {
	defer close(ch)
	for {
		buf := GetBatch()
		n, err := FillBatch(src, buf)
		select {
		case ch <- fetchResult{buf: buf, n: n, err: err}:
		case <-stop:
			PutBatch(buf)
			return
		}
		if err != nil {
			return
		}
	}
}

// advance recycles the drained window and installs the next one. It
// returns a non-nil error only when no further accesses exist.
func (p *PrefetchSource) advance() error {
	if p.cur != nil {
		PutBatch(p.cur)
		p.cur = nil
		p.pos = 0
	}
	for {
		if p.err != nil {
			return p.err
		}
		r, ok := <-p.ch
		if !ok {
			// The goroutine only exits after sending a terminal error, so
			// a bare close means it was halted; report end of stream.
			p.err = io.EOF
			return p.err
		}
		p.err = r.err
		if r.n > 0 {
			p.cur = r.buf[:r.n]
			p.pos = 0
			return nil
		}
		PutBatch(r.buf)
	}
}

// Next implements Source.
func (p *PrefetchSource) Next() (Access, error) {
	if p.pos >= len(p.cur) {
		if err := p.advance(); err != nil {
			return Access{}, err
		}
	}
	a := p.cur[p.pos]
	p.pos++
	return a, nil
}

// NextBatch implements BatchReader with the usual contract: n > 0 may
// arrive together with the terminal error when the stream ends mid-batch.
func (p *PrefetchSource) NextBatch(buf []Access) (int, error) {
	if p.pos >= len(p.cur) {
		if err := p.advance(); err != nil {
			return 0, err
		}
	}
	n := copy(buf, p.cur[p.pos:])
	p.pos += n
	if p.pos >= len(p.cur) && p.err != nil {
		return n, p.err
	}
	return n, nil
}

// halt quiesces the decode goroutine and recycles every in-flight buffer.
// After halt returns the goroutine has exited and the underlying source is
// exclusively ours again.
func (p *PrefetchSource) halt() {
	if p.stop == nil {
		return
	}
	close(p.stop)
	p.stop = nil
	for r := range p.ch {
		PutBatch(r.buf)
	}
	if p.cur != nil {
		PutBatch(p.cur)
		p.cur = nil
	}
	p.pos = 0
}

// Reset implements Source: it stops the prefetcher, rewinds the underlying
// source, and starts decoding ahead again.
func (p *PrefetchSource) Reset() error {
	p.halt()
	if err := p.src.Reset(); err != nil {
		p.err = err
		return err
	}
	p.start()
	return nil
}

// Close implements Source and closes the wrapped source.
func (p *PrefetchSource) Close() error {
	p.halt()
	p.err = io.EOF
	return p.src.Close()
}
