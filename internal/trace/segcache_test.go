package trace

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"migratory/internal/memory"
	"migratory/internal/telemetry"
)

// testAccs builds n deterministic accesses spread over a handful of nodes
// and blocks.
func testAccs(n int) []Access {
	accs := make([]Access, n)
	for i := range accs {
		k := Read
		if i%3 == 0 {
			k = Write
		}
		accs[i] = Access{
			Node: memory.NodeID(i % 7),
			Kind: k,
			Addr: memory.Addr((i % 97) * 16),
		}
	}
	return accs
}

// writeSegmentedMTR writes accs as an MTR3 file with small segments (so a
// modest trace spans many of them) and returns the path.
func writeSegmentedMTR(t *testing.T, dir string, accs []Access, segBytes int) string {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriterOptions(&buf, Header{BlockSize: 16, PageSize: 4096, Nodes: 16},
		WriterOptions{SegmentBytes: segBytes})
	for _, a := range accs {
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "seg.mtr")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSegmentCacheHitMissRefcount(t *testing.T) {
	c := NewSegmentCache(1 << 20)
	id := FileID{Dev: 1, Ino: 2, Size: 3, MTimeNs: 4}
	want := testAccs(100)
	decodes := 0
	decode := func() ([]Access, error) { decodes++; return want, nil }

	p1, err := c.Acquire(id, 0, decode)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1.Accesses(), want) {
		t.Fatal("decoded slab mismatch")
	}
	p2, err := c.Acquire(id, 0, decode)
	if err != nil {
		t.Fatal(err)
	}
	if decodes != 1 {
		t.Fatalf("decode ran %d times, want 1", decodes)
	}
	if &p1.Accesses()[0] != &p2.Accesses()[0] {
		t.Fatal("hit did not share the resident slab")
	}

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats: %d hits / %d misses, want 1/1", st.Hits, st.Misses)
	}
	if want := int64(len(want)) * accessFootprint; st.PinnedBytes != want || st.ResidentBytes != want {
		t.Fatalf("pinned %d resident %d, want both %d", st.PinnedBytes, st.ResidentBytes, want)
	}

	p1.Release()
	p1.Release() // idempotent
	p2.Release()
	st = c.Stats()
	if st.PinnedBytes != 0 {
		t.Fatalf("pinned %d after release, want 0", st.PinnedBytes)
	}
	if st.ResidentBytes == 0 || st.Entries != 1 {
		t.Fatalf("released segment should stay resident: %+v", st)
	}

	// A different segment index of the same file is a distinct entry.
	if _, err := c.Acquire(id, 1, decode); err != nil {
		t.Fatal(err)
	}
	if decodes != 2 {
		t.Fatalf("decode ran %d times, want 2 (distinct segment)", decodes)
	}
}

func TestSegmentCacheSingleFlight(t *testing.T) {
	c := NewSegmentCache(1 << 20)
	id := FileID{Ino: 9, Size: 10, MTimeNs: 11}
	const workers = 8
	var decodes atomic.Int32
	decode := func() ([]Access, error) {
		decodes.Add(1)
		// Hold the decode open until every other worker has pinned the
		// in-flight entry (joiners pin before blocking on ready), so all of
		// them join this single flight deterministically.
		for {
			c.mu.Lock()
			refs := c.entries[segCacheKey{file: id, seg: 0}].refs
			c.mu.Unlock()
			if refs >= workers {
				break
			}
			runtime.Gosched()
		}
		return testAccs(50), nil
	}

	var wg sync.WaitGroup
	slabs := make([][]Access, workers)
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := c.Acquire(id, 0, decode)
			if err != nil {
				errs[i] = err
				return
			}
			slabs[i] = p.Accesses()
			p.Release()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if n := decodes.Load(); n != 1 {
		t.Fatalf("decode ran %d times under %d concurrent acquirers, want 1", n, workers)
	}
	for i := 1; i < workers; i++ {
		if &slabs[i][0] != &slabs[0][0] {
			t.Fatalf("worker %d got a different slab", i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != workers-1 {
		t.Fatalf("stats %d/%d (hits/misses), want %d/1", st.Hits, st.Misses, workers-1)
	}
	if st.SingleFlightJoins != workers-1 {
		t.Fatalf("%d single-flight joins, want %d", st.SingleFlightJoins, workers-1)
	}
}

func TestSegmentCacheLRUEviction(t *testing.T) {
	// Capacity of exactly two 100-access segments.
	c := NewSegmentCache(2 * 100 * accessFootprint)
	id := FileID{Ino: 1}
	acquire := func(seg int) *PinnedSegment {
		t.Helper()
		p, err := c.Acquire(id, seg, func() ([]Access, error) { return testAccs(100), nil })
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	acquire(0).Release()
	acquire(1).Release()
	acquire(0).Release() // refresh 0: now 1 is least recently used
	acquire(2).Release() // over budget: evicts 1
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("after overflow: %d evictions, %d entries, want 1 and 2", st.Evictions, st.Entries)
	}
	if st.ResidentBytes != st.CapBytes {
		t.Fatalf("resident %d, want %d", st.ResidentBytes, st.CapBytes)
	}
	hits := st.Hits
	acquire(0).Release() // still resident
	if st = c.Stats(); st.Hits != hits+1 {
		t.Fatal("segment 0 was evicted; want LRU to keep it")
	}
	misses := st.Misses
	acquire(1).Release() // decodes again (miss), not served stale
	if st = c.Stats(); st.Misses != misses+1 {
		t.Fatal("segment 1 should re-decode after eviction")
	}

	// A pinned segment is untouchable even when the budget bursts.
	pin := acquire(3)
	acquire(4).Release()
	acquire(5).Release()
	if got := pin.Accesses(); len(got) != 100 {
		t.Fatal("pinned slab went away under eviction pressure")
	}
	st = c.Stats()
	if st.PinnedBytes != 100*accessFootprint {
		t.Fatalf("pinned bytes %d, want %d", st.PinnedBytes, 100*accessFootprint)
	}
	if st.PeakPinnedBytes < st.PinnedBytes {
		t.Fatalf("peak pinned %d below current %d", st.PeakPinnedBytes, st.PinnedBytes)
	}
	pin.Release()
	if st = c.Stats(); st.ResidentBytes > st.CapBytes {
		t.Fatalf("resident %d exceeds capacity %d after all pins released", st.ResidentBytes, st.CapBytes)
	}
}

func TestSegmentCacheDecodeErrorNotCached(t *testing.T) {
	c := NewSegmentCache(1 << 20)
	id := FileID{Ino: 42}
	boom := errors.New("boom")
	if _, err := c.Acquire(id, 0, func() ([]Access, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the decode error", err)
	}
	// The failure is not cached: the next acquirer retries and succeeds.
	p, err := c.Acquire(id, 0, func() ([]Access, error) { return testAccs(10), nil })
	if err != nil {
		t.Fatal(err)
	}
	p.Release()
	st := c.Stats()
	if st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("stats %+v: want 2 misses and 1 resident entry", st)
	}
}

func TestSegmentCacheSingleFlightError(t *testing.T) {
	c := NewSegmentCache(1 << 20)
	id := FileID{Ino: 7}
	boom := errors.New("boom")
	gate := make(chan struct{})
	const workers = 4
	var wg sync.WaitGroup
	errCount := atomic.Int32{}
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Acquire(id, 0, func() ([]Access, error) { <-gate; return nil, boom })
			if errors.Is(err, boom) {
				errCount.Add(1)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if n := errCount.Load(); n != workers {
		t.Fatalf("%d of %d acquirers saw the decode error", n, workers)
	}
	if st := c.Stats(); st.Entries != 0 || st.ResidentBytes != 0 {
		t.Fatalf("failed decode left residue: %+v", st)
	}
}

func TestSegmentCacheDisabled(t *testing.T) {
	if c := NewSegmentCache(0); c != nil {
		t.Fatal("capacity 0 should disable the cache (nil)")
	}
	if c := NewSegmentCache(-1); c != nil {
		t.Fatal("negative capacity should disable the cache (nil)")
	}
	var c *SegmentCache
	if st := c.Stats(); st != (telemetry.CacheStats{}) {
		t.Fatalf("nil cache stats not zero: %+v", st)
	}
}

// TestIndexedSourceCacheEquivalence replays one segmented MTR3 file through
// IndexedFileSource with and without a cache attached, sequentially and
// with parallel decoders, and requires identical access streams. Across
// both cached replays every segment decodes exactly once.
func TestIndexedSourceCacheEquivalence(t *testing.T) {
	accs := testAccs(20_000)
	path := writeSegmentedMTR(t, t.TempDir(), accs, 2<<10)

	read := func(cache *SegmentCache, decoders int) []Access {
		t.Helper()
		src, err := OpenFileParallelCache(path, decoders, cache)
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		if _, ok := src.(*IndexedFileSource); !ok {
			t.Fatalf("expected an indexed source for an MTR3 file, got %T", src)
		}
		got, err := ReadAll(src)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	want := read(nil, 1)
	if !reflect.DeepEqual(want, accs) {
		t.Fatal("uncached replay does not match the written trace")
	}
	c := NewSegmentCache(64 << 20)
	for _, decoders := range []int{1, 4} {
		if got := read(c, decoders); !reflect.DeepEqual(got, want) {
			t.Fatalf("cached replay (decoders=%d) diverged", decoders)
		}
	}
	st := c.Stats()
	if st.Misses == 0 || st.Hits == 0 {
		t.Fatalf("second replay should hit the cache: %+v", st)
	}
	if st.PinnedBytes != 0 {
		t.Fatalf("%d bytes still pinned after Close", st.PinnedBytes)
	}
	if st.Misses != uint64(st.Entries) {
		t.Fatalf("%d misses for %d resident segments: segments decoded more than once", st.Misses, st.Entries)
	}
}

// TestSegmentCacheReset pins the Reset contract: a cached indexed source
// rewinds and replays identically, serving the second pass from residency.
func TestSegmentCacheReset(t *testing.T) {
	accs := testAccs(10_000)
	path := writeSegmentedMTR(t, t.TempDir(), accs, 2<<10)
	c := NewSegmentCache(64 << 20)
	src, err := OpenFileParallelCache(path, 2, c)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	first, err := ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := src.(*IndexedFileSource).Reset(); err != nil {
		t.Fatal(err)
	}
	second, err := ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("replay after Reset diverged")
	}
	if st := c.Stats(); st.Hits == 0 {
		t.Fatalf("replay after Reset should hit the cache: %+v", st)
	}
}

// TestFileIDChangesWithContent pins the cache-key fence: rewriting a file
// (different size or mtime) must change its FileID.
func TestFileIDChangesWithContent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.mtr")
	if err := os.WriteFile(path, []byte("aaaa"), 0o644); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	id1, ok := fileIDFor(path, fi)
	if !ok {
		t.Skip("no file identity on this platform")
	}
	if err := os.WriteFile(path, []byte("bbbbbbbb"), 0o644); err != nil {
		t.Fatal(err)
	}
	if fi, err = os.Stat(path); err != nil {
		t.Fatal(err)
	}
	id2, _ := fileIDFor(path, fi)
	if id1 == id2 {
		t.Fatal("rewritten file (different size) kept the same FileID")
	}
}
