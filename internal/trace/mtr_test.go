package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"migratory/internal/memory"
)

func mtrAccesses() []Access {
	return []Access{
		{Node: 0, Kind: Read, Addr: 0},
		{Node: 3, Kind: Write, Addr: 4096},
		{Node: 3, Kind: Read, Addr: 4080}, // negative delta
		{Node: 15, Kind: Write, Addr: 1 << 30},
		{Node: 1, Kind: Read, Addr: 16},
	}
}

func encodeMTR(t *testing.T, hdr Header, accs []Access) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf, hdr)
	for _, a := range accs {
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMTRRoundTrip(t *testing.T) {
	hdr := Header{BlockSize: 16, PageSize: 4096, Nodes: 16}
	accs := mtrAccesses()
	data := encodeMTR(t, hdr, accs)

	src, err := NewFileSource(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if src.Header() != hdr {
		t.Fatalf("header %+v != %+v", src.Header(), hdr)
	}
	if g, ok := src.Header().Geometry(); !ok || g.BlockSize() != 16 {
		t.Fatalf("geometry = %v, %v", g, ok)
	}
	got, err := ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(accs) {
		t.Fatalf("decoded %d accesses, want %d", len(got), len(accs))
	}
	for i := range accs {
		if got[i] != accs[i] {
			t.Fatalf("access %d: %v != %v", i, got[i], accs[i])
		}
	}
	// EOF persists and Reset rewinds to the first access.
	if _, err := src.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("post-EOF Next = %v", err)
	}
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	a, err := src.Next()
	if err != nil || a != accs[0] {
		t.Fatalf("after Reset: %v, %v", a, err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMTRRoundTripEmpty(t *testing.T) {
	data := encodeMTR(t, Header{}, nil)
	src, err := NewFileSource(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got, err := ReadAll(src); err != nil || len(got) != 0 {
		t.Fatalf("empty trace: %v, %v", got, err)
	}
}

// TestMTRTruncation cuts a valid stream at every possible byte boundary:
// every cut must decode to ErrTruncated (never a silent short read, never
// a panic).
func TestMTRTruncation(t *testing.T) {
	data := encodeMTR(t, Header{BlockSize: 16, PageSize: 4096, Nodes: 16}, mtrAccesses())
	for cut := 0; cut < len(data); cut++ {
		src, err := NewFileSource(bytes.NewReader(data[:cut]))
		if err == nil {
			_, err = ReadAll(src)
		}
		if err == nil {
			t.Fatalf("cut at %d/%d decoded cleanly", cut, len(data))
		}
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) {
			t.Fatalf("cut at %d/%d: %v (want ErrTruncated or ErrBadMagic)", cut, len(data), err)
		}
	}
}

func TestMTRCorrupt(t *testing.T) {
	valid := encodeMTR(t, Header{Nodes: 4}, []Access{{Node: 1, Kind: Write, Addr: 64}})

	t.Run("trailing garbage", func(t *testing.T) {
		data := append(append([]byte{}, valid...), 0xAA)
		src, err := NewFileSource(bytes.NewReader(data))
		if err == nil {
			_, err = ReadAll(src)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("wrong trailer count", func(t *testing.T) {
		// A v2 image, whose final byte IS the trailer count; in v3 the
		// trailer sits before the index and the cross-check is exercised by
		// the index tests.
		var buf bytes.Buffer
		w := NewWriterOptions(&buf, Header{Nodes: 4}, WriterOptions{Version: 2})
		if err := w.Write(Access{Node: 1, Kind: Write, Addr: 64}); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		data[len(data)-1] = 7 // trailer says 7 records, stream has 1
		src, err := NewFileSource(bytes.NewReader(data))
		if err == nil {
			_, err = ReadAll(src)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("node outside header", func(t *testing.T) {
		// Header says 4 nodes; hand-craft a record head for node 9.
		var buf bytes.Buffer
		buf.Write(magic2[:])
		buf.Write([]byte{0, 0, 4})        // header: unspecified geometry, 4 nodes
		buf.Write([]byte{byte(9<<1) + 1}) // head: node 9, read
		buf.Write([]byte{0})              // delta 0
		buf.Write([]byte{0, 1})           // trailer: 1 record
		src, err := NewFileSource(bytes.NewReader(buf.Bytes()))
		if err == nil {
			_, err = ReadAll(src)
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("implausible header", func(t *testing.T) {
		var buf bytes.Buffer
		buf.Write(magic2[:])
		buf.Write([]byte{0, 0, 65}) // 65 nodes > MaxNodes
		_, err := NewFileSource(bytes.NewReader(buf.Bytes()))
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("bad magic", func(t *testing.T) {
		_, err := NewFileSource(bytes.NewReader([]byte("NOPE....")))
		if !errors.Is(err, ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
	})
}

func TestMTRWriterRejections(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{Nodes: memory.MaxNodes + 1})
	if err := w.Write(Access{}); err == nil {
		t.Fatal("invalid header accepted")
	}

	buf.Reset()
	w = NewWriter(&buf, Header{Nodes: 4})
	if err := w.Write(Access{Node: 4}); err == nil {
		t.Fatal("node outside header accepted")
	}

	buf.Reset()
	w = NewWriter(&buf, Header{})
	if err := w.Write(Access{Kind: Kind(3)}); err == nil {
		t.Fatal("impossible kind accepted")
	}

	buf.Reset()
	w = NewWriter(&buf, Header{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Access{}); err == nil {
		t.Fatal("Write after Close accepted")
	}
}

// TestFileSourceReadsLegacy decodes an MTR1 (fixed-record) stream through
// the same FileSource, with a zero header.
func TestFileSourceReadsLegacy(t *testing.T) {
	accs := mtrAccesses()
	var buf bytes.Buffer
	if err := WriteTo(&buf, accs); err != nil {
		t.Fatal(err)
	}
	src, err := NewFileSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if src.Header() != (Header{}) {
		t.Fatalf("legacy header = %+v, want zero", src.Header())
	}
	got, err := ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	for i := range accs {
		if got[i] != accs[i] {
			t.Fatalf("access %d: %v != %v", i, got[i], accs[i])
		}
	}
	if err := src.Reset(); err != nil {
		t.Fatal(err)
	}
	if again, err := ReadAll(src); err != nil || len(again) != len(accs) {
		t.Fatalf("legacy Reset: %d, %v", len(again), err)
	}
}

func TestMTRCopy(t *testing.T) {
	accs := mtrAccesses()
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{})
	n, err := Copy(w, NewSliceSource(accs))
	if err != nil || n != len(accs) {
		t.Fatalf("Copy = %d, %v", n, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	src, err := NewFileSource(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(src)
	if err != nil || len(got) != len(accs) {
		t.Fatalf("decode after Copy: %d, %v", len(got), err)
	}
}

// TestMTRCompactness: the varint-delta format should be much smaller than
// the 10-byte fixed records for address-local traces.
func TestMTRCompactness(t *testing.T) {
	accs := make([]Access, 10_000)
	addr := memory.Addr(0)
	for i := range accs {
		addr += memory.Addr(16 * (i % 5))
		accs[i] = Access{Node: memory.NodeID(i % 16), Kind: Kind(i % 2), Addr: addr}
	}
	mtr2 := encodeMTR(t, Header{BlockSize: 16, PageSize: 4096, Nodes: 16}, accs)
	var mtr1 bytes.Buffer
	if err := WriteTo(&mtr1, accs); err != nil {
		t.Fatal(err)
	}
	if len(mtr2)*2 > mtr1.Len() {
		t.Fatalf("MTR2 %d bytes not clearly below MTR1 %d bytes", len(mtr2), mtr1.Len())
	}
}
