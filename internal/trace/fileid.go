package trace

import (
	"hash/fnv"
	"io/fs"
	"path/filepath"
)

// fileIDFromPath is the portable file identity: a hash of the absolute
// path in place of dev/ino, still fenced by size and mtime so content
// changes invalidate cached segments.
func fileIDFromPath(path string, fi fs.FileInfo) (FileID, bool) {
	abs, err := filepath.Abs(path)
	if err != nil {
		abs = path
	}
	h := fnv.New64a()
	h.Write([]byte(abs))
	return FileID{
		Ino:     h.Sum64(),
		Size:    fi.Size(),
		MTimeNs: fi.ModTime().UnixNano(),
	}, true
}
