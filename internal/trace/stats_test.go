package trace

import (
	"strings"
	"testing"

	"migratory/internal/memory"
)

var g16 = memory.MustGeometry(16, 4096)

// block returns the base address of block n under g16.
func block(n int) memory.Addr { return memory.Addr(n * 16) }

func TestAnalyzeTotals(t *testing.T) {
	accs := []Access{
		{Node: 0, Kind: Read, Addr: block(0)},
		{Node: 0, Kind: Write, Addr: block(0)},
		{Node: 1, Kind: Read, Addr: block(1)},
		{Node: 2, Kind: Read, Addr: block(300)}, // second page
	}
	st := Analyze(accs, g16)
	if st.Accesses != 4 || st.Reads != 3 || st.Writes != 1 {
		t.Fatalf("totals: %+v", st)
	}
	if st.Blocks != 3 {
		t.Fatalf("Blocks = %d", st.Blocks)
	}
	if st.Pages != 2 || st.FootprintKB != 8 {
		t.Fatalf("Pages = %d FootprintKB = %d", st.Pages, st.FootprintKB)
	}
	if st.Nodes != 3 {
		t.Fatalf("Nodes = %d", st.Nodes)
	}
	if len(st.PerNode) != 3 || st.PerNode[0] != 2 || st.PerNode[1] != 1 || st.PerNode[2] != 1 {
		t.Fatalf("PerNode = %v", st.PerNode)
	}
}

func TestAnalyzePatternPrivate(t *testing.T) {
	accs := []Access{
		{Node: 5, Kind: Read, Addr: block(0)},
		{Node: 5, Kind: Write, Addr: block(0)},
		{Node: 5, Kind: Read, Addr: block(0)},
	}
	st := Analyze(accs, g16)
	if st.PrivateBlocks != 1 || st.MigratoryBlocks != 0 || st.ReadSharedBlocks != 0 || st.OtherBlocks != 0 {
		t.Fatalf("census: %+v", st)
	}
}

func TestAnalyzePatternReadShared(t *testing.T) {
	// Node 0 initializes, then everyone reads.
	accs := []Access{
		{Node: 0, Kind: Write, Addr: block(0)},
		{Node: 1, Kind: Read, Addr: block(0)},
		{Node: 2, Kind: Read, Addr: block(0)},
		{Node: 0, Kind: Read, Addr: block(0)},
		{Node: 3, Kind: Read, Addr: block(0)},
	}
	st := Analyze(accs, g16)
	if st.ReadSharedBlocks != 1 {
		t.Fatalf("census: %+v", st)
	}
}

func TestAnalyzePatternMigratory(t *testing.T) {
	// Classic migratory: each node reads then writes, in turn.
	var accs []Access
	for round := 0; round < 3; round++ {
		for n := memory.NodeID(0); n < 4; n++ {
			accs = append(accs,
				Access{Node: n, Kind: Read, Addr: block(7)},
				Access{Node: n, Kind: Write, Addr: block(7)},
			)
		}
	}
	st := Analyze(accs, g16)
	if st.MigratoryBlocks != 1 {
		t.Fatalf("census: %+v", st)
	}
}

func TestAnalyzePatternOther(t *testing.T) {
	// Producer/consumer: node 0 writes, node 1 reads, repeatedly. The
	// handoff from 1 back to 0 is clean (no write in node 1's run), so the
	// block is not migratory.
	var accs []Access
	for i := 0; i < 4; i++ {
		accs = append(accs,
			Access{Node: 0, Kind: Write, Addr: block(2)},
			Access{Node: 1, Kind: Read, Addr: block(2)},
		)
	}
	st := Analyze(accs, g16)
	if st.OtherBlocks != 1 {
		t.Fatalf("census: %+v", st)
	}
}

func TestAnalyzeMigratoryWriteOnlyRuns(t *testing.T) {
	// Write-only runs still count as migratory handoffs.
	accs := []Access{
		{Node: 0, Kind: Write, Addr: block(1)},
		{Node: 1, Kind: Write, Addr: block(1)},
		{Node: 2, Kind: Write, Addr: block(1)},
	}
	st := Analyze(accs, g16)
	if st.MigratoryBlocks != 1 {
		t.Fatalf("census: %+v", st)
	}
}

func TestBlockPatternString(t *testing.T) {
	want := map[BlockPattern]string{
		PatternPrivate:    "private",
		PatternReadShared: "read-shared",
		PatternMigratory:  "migratory",
		PatternOther:      "other",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%v.String() = %q; want %q", uint8(p), p.String(), s)
		}
	}
	if got := BlockPattern(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown pattern string: %q", got)
	}
}

func TestStatsString(t *testing.T) {
	st := Analyze([]Access{{Node: 0, Kind: Read, Addr: 0}}, g16)
	s := st.String()
	for _, want := range []string{"accesses: 1", "1 reads", "private"} {
		if !strings.Contains(s, want) {
			t.Errorf("Stats.String missing %q:\n%s", want, s)
		}
	}
}

func TestTopPages(t *testing.T) {
	var accs []Access
	// Page 0: 3 accesses, page 1: 5, page 2: 1.
	for i := 0; i < 3; i++ {
		accs = append(accs, Access{Node: 0, Kind: Read, Addr: 0})
	}
	for i := 0; i < 5; i++ {
		accs = append(accs, Access{Node: 0, Kind: Read, Addr: 4096})
	}
	accs = append(accs, Access{Node: 0, Kind: Read, Addr: 8192})

	top := TopPages(accs, g16, 2)
	if len(top) != 2 {
		t.Fatalf("len = %d", len(top))
	}
	if top[0].Page != 1 || top[0].Count != 5 {
		t.Fatalf("top[0] = %+v", top[0])
	}
	if top[1].Page != 0 || top[1].Count != 3 {
		t.Fatalf("top[1] = %+v", top[1])
	}
	// n larger than distinct pages returns everything.
	if got := TopPages(accs, g16, 10); len(got) != 3 {
		t.Fatalf("TopPages(10) len = %d", len(got))
	}
}

func TestTopPagesTieBreak(t *testing.T) {
	accs := []Access{
		{Node: 0, Kind: Read, Addr: 8192},
		{Node: 0, Kind: Read, Addr: 0},
	}
	top := TopPages(accs, g16, 2)
	if top[0].Page != 0 || top[1].Page != 2 {
		t.Fatalf("tie break by page id failed: %+v", top)
	}
}
