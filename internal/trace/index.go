package trace

// Segment index for the version-3 trace format ("MTR3").
//
// An MTR3 file is an MTR2 record stream — same header, same
// head/zigzag-delta record encoding, same 0x00+count trailer — followed by
// a self-describing segment index:
//
//	magic    [4]byte "MTR3"
//	header   uvarint blockSize, pageSize, nodes      (as in MTR2)
//	records  uvarint head, uvarint addrDelta ...     (as in MTR2)
//	trailer  0x00, uvarint count                     (as in MTR2)
//	index    uvarint segCount
//	         per segment:
//	           uvarint byteOff     (file offset of the segment's first record)
//	           uvarint byteLen     (encoded length of the segment's records)
//	           uvarint count       (records in the segment)
//	           uvarint startAddr   (address the segment's first delta is
//	                                relative to: the previous record's
//	                                address, 0 for the first segment)
//	           uvarint crc32       (IEEE CRC-32 of the segment's record bytes)
//	footer   uint64le indexOff     (file offset of segCount)
//	         uint32le indexCrc     (IEEE CRC-32 of the index bytes)
//	         [4]byte  "MTRX"
//
// The writer cuts the record stream into segments of roughly
// DefaultSegmentBytes encoded bytes. Because every segment's start address
// rides in the index, a segment decodes independently of its predecessors:
// a reader seeds the delta chain from startAddr and decodes exactly count
// records from the byteLen bytes at byteOff — no replay of prior deltas.
// That is what lets N decoder goroutines work on one file through a shared
// io.ReaderAt (IndexedFileSource, DemuxParallel).
//
// The fixed-width footer at end-of-file locates the index without a
// sequential scan; its magic doubles as the truncation check (a partially
// copied MTR3 file has no footer and surfaces as ErrTruncated). Segment
// entries are validated to tile the record region exactly — contiguous,
// non-overlapping, ending at the trailer — and both the index and every
// segment carry a CRC, so a corrupt offset table surfaces as ErrCorrupt
// rather than a silent short or misaligned read.
//
// Sequential readers (Decoder, FileSource) handle MTR3 by decoding the
// record stream exactly like MTR2 and then validating the index
// structurally; v1/v2 files carry no index and keep decoding as before.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"migratory/internal/memory"
)

var (
	magic3      = [4]byte{'M', 'T', 'R', '3'}
	footerMagic = [4]byte{'M', 'T', 'R', 'X'}
)

// footerSize is the fixed byte width of the MTR3 end-of-file footer.
const footerSize = 8 + 4 + 4

// DefaultSegmentBytes is the target encoded size of one MTR3 segment.
// Records average two to three encoded bytes, so a segment holds a few
// tens of thousands of accesses: coarse enough that the per-segment index
// entry and CRC are noise, fine enough that an eight-way parallel decode
// has real work per worker even on traces of a few hundred thousand
// accesses.
const DefaultSegmentBytes = 64 << 10

// maxIndexBytes bounds how much trailing index a sequential v3 decode will
// buffer; a structurally valid index is ~20 bytes per segment, so anything
// near this limit is garbage.
const maxIndexBytes = 1 << 26

// ErrNoIndex is returned by ReadIndex and the indexed-source constructors
// when the input is a valid trace format without a segment index (MTR1 or
// MTR2): the caller should fall back to sequential decode.
var ErrNoIndex = errors.New("trace: no segment index (not an MTR3 file)")

// Segment describes one independently decodable slice of an MTR3 record
// stream.
type Segment struct {
	// Off is the file offset of the segment's first record byte.
	Off int64
	// Len is the encoded length of the segment's records in bytes.
	Len int64
	// Count is the number of records in the segment.
	Count uint64
	// StartAddr is the address the segment's first delta is relative to
	// (the address of the previous record; 0 for the first segment).
	StartAddr memory.Addr
	// StartIndex is the global index of the segment's first record,
	// derived from the preceding segments' counts.
	StartIndex uint64
	// CRC is the IEEE CRC-32 of the segment's record bytes.
	CRC uint32
}

// Index is the decoded segment index of an MTR3 file.
type Index struct {
	// Header is the trace geometry header.
	Header Header
	// Segments tile the record region in file order.
	Segments []Segment
	// Records is the total record count (the sum of the segment counts,
	// cross-checked against the stream trailer).
	Records uint64
}

// uvarintLen returns the encoded length of v as a uvarint.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// headerEnd returns the file offset of the first record byte for a given
// header: magic plus the three header uvarints.
func (h Header) headerEnd() int64 {
	return int64(4 + uvarintLen(uint64(h.BlockSize)) + uvarintLen(uint64(h.PageSize)) + uvarintLen(uint64(h.Nodes)))
}

// indexUvarint decodes one uvarint from b at pos, failing with ErrCorrupt
// on an overlong or truncated varint.
func indexUvarint(b []byte, pos int, what string) (uint64, int, error) {
	v, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return 0, 0, fmt.Errorf("trace: segment index %s: bad varint: %w", what, ErrCorrupt)
	}
	return v, pos + n, nil
}

// parseIndexEntries decodes and validates the index body (segCount followed
// by the per-segment entries). headerEnd and indexOff anchor the geometric
// validation: the segments must tile [headerEnd, trailer) contiguously and
// leave a plausible trailer gap before indexOff. The returned segments have
// StartIndex filled in.
func parseIndexEntries(body []byte, headerEnd, indexOff int64) ([]Segment, uint64, error) {
	segCount, pos, err := indexUvarint(body, 0, "segment count")
	if err != nil {
		return nil, 0, err
	}
	// Every entry is at least five single-byte uvarints.
	if segCount > uint64(len(body))/5+1 {
		return nil, 0, fmt.Errorf("trace: segment index claims %d segments in %d bytes: %w", segCount, len(body), ErrCorrupt)
	}
	segs := make([]Segment, 0, segCount)
	expectOff := headerEnd
	var total uint64
	for i := uint64(0); i < segCount; i++ {
		var off, length, count, startAddr, crc uint64
		if off, pos, err = indexUvarint(body, pos, "segment offset"); err != nil {
			return nil, 0, err
		}
		if length, pos, err = indexUvarint(body, pos, "segment length"); err != nil {
			return nil, 0, err
		}
		if count, pos, err = indexUvarint(body, pos, "segment record count"); err != nil {
			return nil, 0, err
		}
		if startAddr, pos, err = indexUvarint(body, pos, "segment start address"); err != nil {
			return nil, 0, err
		}
		if crc, pos, err = indexUvarint(body, pos, "segment crc"); err != nil {
			return nil, 0, err
		}
		if off > math.MaxInt64 || length > math.MaxInt64 || crc > math.MaxUint32 {
			return nil, 0, fmt.Errorf("trace: segment %d entry out of range: %w", i, ErrCorrupt)
		}
		seg := Segment{
			Off: int64(off), Len: int64(length), Count: count,
			StartAddr: memory.Addr(startAddr), StartIndex: total, CRC: uint32(crc),
		}
		// Segments must tile the record region exactly: an offset below the
		// expected position overlaps its predecessor, one above leaves a gap
		// of bytes no segment owns — either way the offset table lies about
		// the stream and a parallel decode would silently skip or re-read
		// records, so both are corruption.
		if seg.Off != expectOff {
			return nil, 0, fmt.Errorf("trace: segment %d starts at offset %d, want %d (overlapping or gapped segments): %w",
				i, seg.Off, expectOff, ErrCorrupt)
		}
		// A record is 2..20 encoded bytes (two uvarints of 1..10 bytes).
		if seg.Count == 0 || seg.Len < 2*int64(seg.Count) || seg.Len > 20*int64(seg.Count) {
			return nil, 0, fmt.Errorf("trace: segment %d claims %d records in %d bytes: %w", i, seg.Count, seg.Len, ErrCorrupt)
		}
		if i == 0 && seg.StartAddr != 0 {
			return nil, 0, fmt.Errorf("trace: first segment start address %#x (want 0): %w", seg.StartAddr, ErrCorrupt)
		}
		expectOff += seg.Len
		total += count
		segs = append(segs, seg)
	}
	if pos != len(body) {
		return nil, 0, fmt.Errorf("trace: %d trailing bytes after segment index entries: %w", len(body)-pos, ErrCorrupt)
	}
	// Between the last segment and the index sits the stream trailer: the
	// 0x00 terminator plus the count uvarint, 2..11 bytes.
	if gap := indexOff - expectOff; gap < 2 || gap > 1+binary.MaxVarintLen64 {
		return nil, 0, fmt.Errorf("trace: %d-byte gap between records and index (want the 2..11-byte trailer): %w", gap, ErrCorrupt)
	}
	return segs, total, nil
}

// ReadIndex reads and validates the segment index of an MTR3 trace of the
// given size. MTR1/MTR2 inputs return ErrNoIndex (fall back to sequential
// decode); a missing or cut-off footer returns ErrTruncated; any
// structural lie — bad index CRC, overlapping or gapped segments,
// implausible entries, a trailer that disagrees — returns ErrCorrupt.
func ReadIndex(r io.ReaderAt, size int64) (*Index, error) {
	// Magic and geometry header.
	head := make([]byte, 4+3*binary.MaxVarintLen64)
	if size < int64(len(head)) {
		head = head[:size]
	}
	if _, err := r.ReadAt(head, 0); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", coalesceEOF(err))
	}
	if len(head) < 4 {
		return nil, fmt.Errorf("trace: %d-byte input: %w", size, ErrTruncated)
	}
	var m [4]byte
	copy(m[:], head)
	switch m {
	case magic3:
	case magic2, magic:
		return nil, ErrNoIndex
	default:
		return nil, ErrBadMagic
	}
	pos := 4
	var geom [3]uint64
	for i, what := range []string{"header block size", "header page size", "header node count"} {
		v, p, err := indexUvarint(head, pos, what)
		if err != nil {
			return nil, err
		}
		geom[i], pos = v, p
	}
	const maxGeom = 1 << 30
	if geom[0] > maxGeom || geom[1] > maxGeom || geom[2] > memory.MaxNodes {
		return nil, fmt.Errorf("trace: implausible header (block %d, page %d, nodes %d): %w", geom[0], geom[1], geom[2], ErrCorrupt)
	}
	hdr := Header{BlockSize: int(geom[0]), PageSize: int(geom[1]), Nodes: int(geom[2])}
	headerEnd := int64(pos)

	// Footer: the record stream needs at least the 2-byte trailer after the
	// header, then the index body, then the footer.
	if size < headerEnd+2+1+footerSize {
		return nil, fmt.Errorf("trace: %d-byte MTR3 file has no room for a footer: %w", size, ErrTruncated)
	}
	var foot [footerSize]byte
	if _, err := r.ReadAt(foot[:], size-footerSize); err != nil {
		return nil, fmt.Errorf("trace: reading footer: %w", coalesceEOF(err))
	}
	if *(*[4]byte)(foot[12:16]) != footerMagic {
		return nil, fmt.Errorf("trace: missing MTR3 footer magic (file cut before the index was written): %w", ErrTruncated)
	}
	indexOff64 := binary.LittleEndian.Uint64(foot[0:8])
	indexCrc := binary.LittleEndian.Uint32(foot[8:12])
	if indexOff64 > math.MaxInt64 {
		return nil, fmt.Errorf("trace: footer index offset %#x out of range: %w", indexOff64, ErrCorrupt)
	}
	indexOff := int64(indexOff64)
	if indexOff < headerEnd+2 || indexOff >= size-footerSize {
		return nil, fmt.Errorf("trace: footer index offset %d outside [%d, %d): %w", indexOff, headerEnd+2, size-footerSize, ErrCorrupt)
	}
	indexLen := size - footerSize - indexOff
	if indexLen > maxIndexBytes {
		return nil, fmt.Errorf("trace: implausible %d-byte segment index: %w", indexLen, ErrCorrupt)
	}
	body := make([]byte, indexLen)
	if _, err := r.ReadAt(body, indexOff); err != nil {
		return nil, fmt.Errorf("trace: reading segment index: %w", coalesceEOF(err))
	}
	if got := crc32.ChecksumIEEE(body); got != indexCrc {
		return nil, fmt.Errorf("trace: segment index crc %#x != footer %#x: %w", got, indexCrc, ErrCorrupt)
	}
	segs, total, err := parseIndexEntries(body, headerEnd, indexOff)
	if err != nil {
		return nil, err
	}

	// Cross-check the stream trailer the index claims sits between the last
	// segment and indexOff: terminator byte plus the total record count.
	trailerOff := headerEnd
	if n := len(segs); n > 0 {
		trailerOff = segs[n-1].Off + segs[n-1].Len
	}
	trailer := make([]byte, indexOff-trailerOff)
	if _, err := r.ReadAt(trailer, trailerOff); err != nil {
		return nil, fmt.Errorf("trace: reading trailer: %w", coalesceEOF(err))
	}
	if trailer[0] != 0 {
		return nil, fmt.Errorf("trace: trailer terminator byte %#x (want 0x00): %w", trailer[0], ErrCorrupt)
	}
	count, n := binary.Uvarint(trailer[1:])
	if n <= 0 || 1+n != len(trailer) {
		return nil, fmt.Errorf("trace: malformed trailer count: %w", ErrCorrupt)
	}
	if count != total {
		return nil, fmt.Errorf("trace: trailer count %d != segment index total %d: %w", count, total, ErrCorrupt)
	}
	return &Index{Header: hdr, Segments: segs, Records: total}, nil
}

// verifySegment checks data (the segment's record bytes) against the
// index entry's length and CRC.
func verifySegment(data []byte, seg Segment) error {
	if int64(len(data)) != seg.Len {
		return fmt.Errorf("trace: segment at %d: read %d of %d bytes: %w", seg.Off, len(data), seg.Len, ErrTruncated)
	}
	if got := crc32.ChecksumIEEE(data); got != seg.CRC {
		return fmt.Errorf("trace: segment at %d: crc %#x != index %#x: %w", seg.Off, got, seg.CRC, ErrCorrupt)
	}
	return nil
}

// segmentDecoder decodes one segment's records out of its in-memory bytes.
// The delta chain is seeded from the index entry's StartAddr, which is
// what makes segments independent of one another.
type segmentDecoder struct {
	data  []byte
	pos   int
	prev  memory.Addr
	left  uint64
	nodes int
	off   int64 // segment file offset, for error messages
}

func newSegmentDecoder(data []byte, seg Segment, nodes int) segmentDecoder {
	return segmentDecoder{data: data, prev: seg.StartAddr, left: seg.Count, nodes: nodes, off: seg.Off}
}

// next fills buf with up to len(buf) records and reports how many remain
// undecoded via d.left; when the count is exhausted it checks the segment
// had no leftover bytes. All structural failures are ErrCorrupt: the bytes
// already passed the CRC, so a short or overlong stream means the index
// entry lied about the segment.
func (d *segmentDecoder) next(buf []Access) (int, error) {
	n := 0
	data := d.data
	for n < len(buf) {
		if d.left == 0 {
			if d.pos != len(data) {
				return n, fmt.Errorf("trace: segment at %d: %d bytes after final record: %w", d.off, len(data)-d.pos, ErrCorrupt)
			}
			if n == 0 {
				return 0, io.EOF
			}
			return n, nil
		}
		var head uint64
		var hn int
		if d.pos < len(data) && data[d.pos] < 0x80 {
			head, hn = uint64(data[d.pos]), 1
		} else if head, hn = binary.Uvarint(data[d.pos:]); hn <= 0 {
			return n, fmt.Errorf("trace: segment at %d: bad record head varint: %w", d.off, ErrCorrupt)
		}
		if head == 0 {
			return n, fmt.Errorf("trace: segment at %d: terminator inside segment: %w", d.off, ErrCorrupt)
		}
		kn := head - 1
		node := kn >> 1
		if node > 0xFF || (d.nodes > 0 && node >= uint64(d.nodes)) {
			return n, fmt.Errorf("trace: segment at %d: impossible node %d: %w", d.off, node, ErrCorrupt)
		}
		p := d.pos + hn
		var enc uint64
		var en int
		if p < len(data) && data[p] < 0x80 {
			enc, en = uint64(data[p]), 1
		} else if enc, en = binary.Uvarint(data[p:]); en <= 0 {
			return n, fmt.Errorf("trace: segment at %d: bad record address varint: %w", d.off, ErrCorrupt)
		}
		delta := int64(enc>>1) ^ -int64(enc&1) // un-zigzag
		addr := memory.Addr(int64(d.prev) + delta)
		d.prev = addr
		buf[n] = Access{Node: memory.NodeID(node), Kind: Kind(kn & 1), Addr: addr}
		n++
		d.pos = p + en
		d.left--
	}
	return n, nil
}
