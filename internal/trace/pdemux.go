package trace

import (
	"context"
	"sync"

	"migratory/internal/telemetry"
)

// DemuxParallel is the multi-producer successor of DemuxStats for sources
// that carry a segment index: decoders goroutines decode segments
// concurrently, route each segment's accesses into per-shard batches, and
// hand the routed batches straight to the shard consumers — the serial
// decode-and-route producer of DemuxStats disappears entirely. Per-shard
// delivery stays in segment order (a per-shard reorder buffer releases
// segment k's batches only after k-1's), and global access indices are
// stamped from each segment's StartIndex, so counters, histograms, and
// probe-visible step arithmetic are bit-identical to the single-producer
// path and to a fully sequential run.
//
// Sources without an index (v1/v2 files, slices, generators, prefetch
// wrappers), decoders <= 1, single-shard runs, and indexed sources that
// already started sequential decode all fall back to DemuxStats — same
// contract, one producer. An indexed source handled here must be
// positioned at the start (freshly opened or Reset), which RunSource
// callers guarantee.
//
// Telemetry accounting matches DemuxStats' multi-producer contract (see
// telemetry.RunStats): every producer increments QueueDepth before its
// batches become visible to a consumer, so the gauge never dips negative
// no matter how many producers race. DemuxStalls/DemuxStallNs stay near
// zero on this path by construction: they measure a producer blocked on
// one full shard queue while the other shards starve, and with no serial
// producer that head-of-line stall no longer exists — a decoder waiting on
// the bounded in-flight budget is spare capacity (every decoded segment is
// already published to all shards), not a pipeline stall. The collapse of
// DemuxStallNs relative to DemuxStats on the same run is the signature of
// retiring the single producer.
//
// The error precedence matches DemuxStats: context cancellation, then the
// lowest-numbered shard's consume error, then the source (decode) error.
func DemuxParallel(ctx context.Context, src Source, decoders, shards int, withSteps bool,
	stats *telemetry.RunStats, route func(Access) int, consume func(shard int, b ShardBatch) error) error {
	ifs, ok := src.(*IndexedFileSource)
	if ok && decoders <= 0 {
		decoders = ifs.Decoders() // 0 means "use the source's configured width"
	}
	if !ok || decoders <= 1 || shards < 2 || ifs.started() || len(ifs.idx.Segments) < 2 {
		return DemuxStats(ctx, src, shards, withSteps, stats, route, consume)
	}
	return demuxSegments(ctx, ifs, decoders, shards, withSteps, stats, route, consume)
}

// segDelivery is one segment's routed batches for one shard, queued in the
// shard's reorder buffer.
type segDelivery struct {
	batches []ShardBatch
	err     error
}

// demuxSegments runs the no-producer sharded pipeline over an indexed
// source.
func demuxSegments(ctx context.Context, src *IndexedFileSource, decoders, shards int, withSteps bool,
	stats *telemetry.RunStats, route func(Access) int, consume func(shard int, b ShardBatch) error) error {
	segs := src.idx.Segments
	workers := decoders
	if workers > len(segs) {
		workers = len(segs)
	}

	var (
		mu      sync.Mutex
		cond    = sync.NewCond(&mu)
		ready   = make([]map[int]segDelivery, shards) // per-shard reorder buffers
		refs    = make(map[int]int)                   // per-segment shards still to consume it
		claim   int
		stopped bool
	)
	for s := range ready {
		ready[s] = make(map[int]segDelivery)
	}
	stopC := make(chan struct{})
	var stopOnce sync.Once
	halt := func() {
		stopOnce.Do(func() { close(stopC) })
		mu.Lock()
		stopped = true
		cond.Broadcast()
		mu.Unlock()
	}
	// slots bounds decoded-but-unconsumed segments; a worker holds one from
	// claim to the last shard's consumption of its segment.
	slots := make(chan struct{}, workers+2)

	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
		watch := make(chan struct{})
		defer close(watch)
		go func() {
			select {
			case <-ctxDone:
				halt()
			case <-stopC:
			case <-watch:
			}
		}()
	}

	// Decoder workers: claim a segment, decode and route it, publish the
	// per-shard batches into the reorder buffers.
	var wgW sync.WaitGroup
	wgW.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wgW.Done()
			for {
				// Waiting here is spare decode capacity under backpressure,
				// not a head-of-line stall (see the DemuxParallel doc), so it
				// is deliberately not charged to DemuxStalls/DemuxStallNs.
				select {
				case slots <- struct{}{}:
				case <-stopC:
					return
				}
				mu.Lock()
				if stopped || claim >= len(segs) {
					mu.Unlock()
					<-slots
					return
				}
				i := claim
				claim++
				mu.Unlock()

				out, derr := routeSegment(src, i, shards, withSteps, route)
				if derr != nil {
					// Stop claiming past the first bad segment; consumers
					// surface the error when they reach it in order.
					mu.Lock()
					claim = len(segs)
					mu.Unlock()
				}
				total := 0
				if stats != nil {
					// Pre-hand-off accounting: the batches are counted in
					// flight before any consumer can see them, so the gauge
					// cannot dip negative however the producers interleave.
					for s := 0; s < shards; s++ {
						if n := len(out[s]); n > 0 {
							stats.QueueDepth[s%telemetry.MaxQueueShards].Add(int64(n))
							total += n
						}
					}
				}
				mu.Lock()
				if stopped {
					mu.Unlock()
					if stats != nil {
						for s := 0; s < shards; s++ {
							if n := len(out[s]); n > 0 {
								stats.QueueDepth[s%telemetry.MaxQueueShards].Add(-int64(n))
							}
						}
					}
					for s := 0; s < shards; s++ {
						for _, b := range out[s] {
							putShardBatch(b)
						}
					}
					<-slots
					return
				}
				refs[i] = shards
				for s := 0; s < shards; s++ {
					ready[s][i] = segDelivery{batches: out[s], err: derr}
				}
				cond.Broadcast()
				mu.Unlock()
				if stats != nil && total > 0 {
					stats.DemuxBatches.Add(uint64(total))
				}
			}
		}()
	}

	// Shard consumers: drain the reorder buffer strictly in segment order.
	consumeErrs := make([]error, shards)
	srcErrs := make([]error, shards)
	var wgC sync.WaitGroup
	wgC.Add(shards)
	for s := 0; s < shards; s++ {
		go func(shard int) {
			defer wgC.Done()
			for i := 0; i < len(segs); i++ {
				mu.Lock()
				for {
					if stopped {
						mu.Unlock()
						return
					}
					if _, ok := ready[shard][i]; ok {
						break
					}
					cond.Wait()
				}
				d := ready[shard][i]
				delete(ready[shard], i)
				mu.Unlock()

				if d.err != nil {
					srcErrs[shard] = d.err
					halt()
					return
				}
				for _, b := range d.batches {
					if stats != nil {
						stats.QueueDepth[shard%telemetry.MaxQueueShards].Add(-1)
					}
					if consumeErrs[shard] == nil {
						if err := consume(shard, b); err != nil {
							consumeErrs[shard] = err
							halt()
						}
					}
					putShardBatch(b)
				}
				mu.Lock()
				refs[i]--
				if refs[i] == 0 {
					delete(refs, i)
					<-slots
				}
				done := consumeErrs[shard] != nil
				mu.Unlock()
				if done {
					return
				}
			}
		}(s)
	}

	wgC.Wait()
	halt()
	wgW.Wait()

	// Recycle anything published but never consumed (error or cancel path).
	mu.Lock()
	for s := range ready {
		for i, d := range ready[s] {
			if stats != nil {
				if n := len(d.batches); n > 0 {
					stats.QueueDepth[s%telemetry.MaxQueueShards].Add(-int64(n))
				}
			}
			for _, b := range d.batches {
				putShardBatch(b)
			}
			delete(ready[s], i)
		}
	}
	mu.Unlock()

	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	for _, err := range consumeErrs {
		if err != nil {
			return err
		}
	}
	for _, err := range srcErrs {
		if err != nil {
			return err
		}
	}
	return nil
}

// routeSegment decodes one segment of src and routes its accesses into
// per-shard batches, stamping global step indices from the segment's
// StartIndex when asked. When src carries a SegmentCache the decoded slab
// comes from (or lands in) the cache — accesses are copied out of the
// pinned immutable slab into pooled shard batches, so downstream recycling
// never touches cache-owned memory. The returned slice has one batch list
// per shard.
func routeSegment(src *IndexedFileSource, segIdx, shards int, withSteps bool,
	route func(Access) int) ([][]ShardBatch, error) {
	seg := src.idx.Segments[segIdx]
	rt := newShardRouter(shards, withSteps, seg.StartIndex, route)

	if src.cache != nil && src.hasID {
		pin, err := src.cache.Acquire(src.fileID, segIdx, func() ([]Access, error) {
			return decodeSegmentSlab(src.r, seg, src.idx.Header.Nodes)
		})
		if err != nil {
			return rt.fail(err)
		}
		rt.routeAll(pin.Accesses())
		pin.Release()
		return rt.finish()
	}

	data, err := readSegment(src.r, seg)
	if err != nil {
		return rt.fail(err)
	}
	defer putSegBuf(data)
	dec := newSegmentDecoder(data, seg, src.idx.Header.Nodes)
	buf := GetBatch()
	for dec.left > 0 {
		n, err := dec.next(buf)
		if err != nil {
			PutBatch(buf)
			return rt.fail(err)
		}
		rt.routeAll(buf[:n])
	}
	PutBatch(buf)
	return rt.finish()
}

// shardRouter accumulates routed accesses into pooled per-shard batches,
// shared by the cached-slab and raw-decode paths of routeSegment.
type shardRouter struct {
	out       [][]ShardBatch
	pending   []ShardBatch
	withSteps bool
	step      uint64
	route     func(Access) int
}

func newShardRouter(shards int, withSteps bool, startStep uint64, route func(Access) int) *shardRouter {
	rt := &shardRouter{
		out:       make([][]ShardBatch, shards),
		pending:   make([]ShardBatch, shards),
		withSteps: withSteps,
		step:      startStep,
		route:     route,
	}
	for i := range rt.pending {
		rt.pending[i] = rt.newPending()
	}
	return rt
}

func (rt *shardRouter) newPending() ShardBatch {
	b := ShardBatch{Accs: GetBatch()[:0]}
	if rt.withSteps {
		b.Steps = getSteps()
	}
	return b
}

// routeAll copies the accesses into the pending shard batches, flushing
// each batch as it fills.
func (rt *shardRouter) routeAll(accs []Access) {
	for _, a := range accs {
		shard := rt.route(a)
		p := &rt.pending[shard]
		p.Accs = append(p.Accs, a)
		if rt.withSteps {
			p.Steps = append(p.Steps, rt.step)
		}
		rt.step++
		if len(p.Accs) == DefaultBatchSize {
			rt.out[shard] = append(rt.out[shard], *p)
			*p = rt.newPending()
		}
	}
}

// finish flushes the partial batches and returns the per-shard lists.
func (rt *shardRouter) finish() ([][]ShardBatch, error) {
	for i := range rt.pending {
		if len(rt.pending[i].Accs) > 0 {
			rt.out[i] = append(rt.out[i], rt.pending[i])
		} else {
			putShardBatch(rt.pending[i])
		}
	}
	return rt.out, nil
}

// fail recycles everything accumulated and returns the per-shard slice
// shape the callers expect alongside err.
func (rt *shardRouter) fail(err error) ([][]ShardBatch, error) {
	for i := range rt.pending {
		putShardBatch(rt.pending[i])
	}
	for s := range rt.out {
		for _, b := range rt.out[s] {
			putShardBatch(b)
		}
		rt.out[s] = nil
	}
	return rt.out, err
}
