package trace

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"testing"

	"migratory/internal/memory"
)

// indexTestAccesses builds a stream long enough to span several segments
// at the given target segment size.
func indexTestAccesses(n int) []Access {
	accs := make([]Access, n)
	for i := range accs {
		accs[i] = Access{
			Node: memory.NodeID(i % 8),
			Kind: Kind(i % 2),
			Addr: memory.Addr((i*7919 + (i%13)*1<<20) % (1 << 24)),
		}
	}
	return accs
}

// encodeMTR3 encodes accs as a v3 image with a small segment target, so
// even short test traces have several segments.
func encodeMTR3(t *testing.T, hdr Header, accs []Access, segBytes int) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriterOptions(&buf, hdr, WriterOptions{Version: 3, SegmentBytes: segBytes})
	for _, a := range accs {
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestMTR3IndexRoundTrip(t *testing.T) {
	hdr := Header{BlockSize: 16, PageSize: 4096, Nodes: 8}
	accs := indexTestAccesses(10_000)
	data := encodeMTR3(t, hdr, accs, 2048)

	idx, err := ReadIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if idx.Header != hdr {
		t.Fatalf("index header %+v, want %+v", idx.Header, hdr)
	}
	if idx.Records != uint64(len(accs)) {
		t.Fatalf("index records %d, want %d", idx.Records, len(accs))
	}
	if len(idx.Segments) < 4 {
		t.Fatalf("got %d segments at a 2048-byte target over %d bytes, want several", len(idx.Segments), len(data))
	}

	// Segments tile the record region and carry correct per-segment state:
	// decoding each independently reproduces exactly its slice of the trace.
	var total uint64
	expectOff := hdr.headerEnd()
	for i, seg := range idx.Segments {
		if seg.Off != expectOff {
			t.Fatalf("segment %d at offset %d, want %d", i, seg.Off, expectOff)
		}
		if seg.StartIndex != total {
			t.Fatalf("segment %d StartIndex %d, want %d", i, seg.StartIndex, total)
		}
		raw := data[seg.Off : seg.Off+seg.Len]
		if err := verifySegment(raw, seg); err != nil {
			t.Fatalf("segment %d: %v", i, err)
		}
		dec := newSegmentDecoder(raw, seg, hdr.Nodes)
		buf := make([]Access, DefaultBatchSize)
		var got []Access
		for {
			n, err := dec.next(buf)
			got = append(got, buf[:n]...)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatalf("segment %d: %v", i, err)
			}
			if n == 0 {
				break
			}
		}
		want := accs[seg.StartIndex : seg.StartIndex+seg.Count]
		if len(got) != len(want) {
			t.Fatalf("segment %d decoded %d records, want %d", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("segment %d record %d: %+v != %+v", i, j, got[j], want[j])
			}
		}
		expectOff += seg.Len
		total += seg.Count
	}
	if total != uint64(len(accs)) {
		t.Fatalf("segment counts sum to %d, want %d", total, len(accs))
	}

	// The sequential decoder reads the same stream (and validates the
	// index structurally on the way out).
	src, err := NewFileSource(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(accs) {
		t.Fatalf("sequential decode: %d accesses, want %d", len(got), len(accs))
	}
	for i := range got {
		if got[i] != accs[i] {
			t.Fatalf("sequential decode access %d: %+v != %+v", i, got[i], accs[i])
		}
	}
}

// TestMTRVersionMatrix pins the compatibility contract: every format
// version decodes to the same accesses through the sequential reader, and
// OpenFileParallel picks the indexed path for v3 and the prefetch fallback
// for v1/v2.
func TestMTRVersionMatrix(t *testing.T) {
	hdr := Header{BlockSize: 16, PageSize: 4096, Nodes: 8}
	accs := indexTestAccesses(3000)
	dir := t.TempDir()

	write := func(name string, encode func(f *os.File) error) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := encode(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	v1 := write("v1.mtr", func(f *os.File) error {
		return WriteTo(f, accs)
	})
	v2 := write("v2.mtr", func(f *os.File) error {
		w := NewWriterOptions(f, hdr, WriterOptions{Version: 2})
		for _, a := range accs {
			if err := w.Write(a); err != nil {
				return err
			}
		}
		return w.Close()
	})
	v3 := write("v3.mtr", func(f *os.File) error {
		w := NewWriterOptions(f, hdr, WriterOptions{Version: 3, SegmentBytes: 2048})
		for _, a := range accs {
			if err := w.Write(a); err != nil {
				return err
			}
		}
		return w.Close()
	})

	check := func(name string, src Source) {
		t.Helper()
		got, err := ReadAll(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(accs) {
			t.Fatalf("%s: decoded %d accesses, want %d", name, len(got), len(accs))
		}
		for i := range got {
			if got[i] != accs[i] {
				t.Fatalf("%s: access %d: %+v != %+v", name, i, got[i], accs[i])
			}
		}
		if err := src.Close(); err != nil {
			t.Fatalf("%s: close: %v", name, err)
		}
	}

	for _, tc := range []struct {
		name, path string
		indexed    bool
	}{{"v1", v1, false}, {"v2", v2, false}, {"v3", v3, true}} {
		fs, err := OpenFile(tc.path)
		if err != nil {
			t.Fatalf("%s sequential: %v", tc.name, err)
		}
		check(tc.name+" sequential", fs)

		src, err := OpenFileParallel(tc.path, 4)
		if err != nil {
			t.Fatalf("%s parallel: %v", tc.name, err)
		}
		if _, ok := src.(*IndexedFileSource); ok != tc.indexed {
			t.Fatalf("%s: OpenFileParallel returned %T, indexed=%v", tc.name, src, tc.indexed)
		}
		check(tc.name+" parallel", src)
	}

	// v1/v2 input through the indexed-only constructor is a typed refusal.
	for _, path := range []string{v1, v2} {
		if _, err := OpenIndexedFile(path, 2); !errors.Is(err, ErrNoIndex) {
			t.Fatalf("OpenIndexedFile(%s): %v, want ErrNoIndex", path, err)
		}
	}
}

// rebuildIndex re-encodes a (possibly mutated) index over the original
// record stream, with a consistent index CRC and footer, so tests can
// construct structural lies that only the entry validation can catch.
func rebuildIndex(t *testing.T, data []byte, mutate func(idx *Index)) []byte {
	t.Helper()
	idx, err := ReadIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	mutate(idx)
	last := idx.Segments[len(idx.Segments)-1]
	// The record stream plus trailer is everything before the old index.
	foot := data[len(data)-footerSize:]
	oldIndexOff := binary.LittleEndian.Uint64(foot[0:8])
	stream := data[:oldIndexOff]
	_ = last

	body := binary.AppendUvarint(nil, uint64(len(idx.Segments)))
	for _, seg := range idx.Segments {
		body = binary.AppendUvarint(body, uint64(seg.Off))
		body = binary.AppendUvarint(body, uint64(seg.Len))
		body = binary.AppendUvarint(body, seg.Count)
		body = binary.AppendUvarint(body, uint64(seg.StartAddr))
		body = binary.AppendUvarint(body, uint64(seg.CRC))
	}
	out := append([]byte{}, stream...)
	out = append(out, body...)
	var newFoot [footerSize]byte
	binary.LittleEndian.PutUint64(newFoot[0:8], oldIndexOff)
	binary.LittleEndian.PutUint32(newFoot[8:12], crc32.ChecksumIEEE(body))
	copy(newFoot[12:16], footerMagic[:])
	return append(out, newFoot[:]...)
}

func TestReadIndexRejectsCorruption(t *testing.T) {
	hdr := Header{BlockSize: 16, PageSize: 4096, Nodes: 8}
	accs := indexTestAccesses(5000)
	valid := encodeMTR3(t, hdr, accs, 2048)

	read := func(data []byte) error {
		_, err := ReadIndex(bytes.NewReader(data), int64(len(data)))
		return err
	}
	if err := read(valid); err != nil {
		t.Fatalf("valid image rejected: %v", err)
	}

	t.Run("truncations", func(t *testing.T) {
		// Any prefix of the image must fail typed — never decode cleanly.
		for _, cut := range []int{0, 3, 10, len(valid) / 2, len(valid) - footerSize - 1, len(valid) - footerSize, len(valid) - 4, len(valid) - 1} {
			err := read(valid[:cut])
			if err == nil {
				t.Fatalf("cut at %d/%d read cleanly", cut, len(valid))
			}
			if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrCorrupt) {
				t.Fatalf("cut at %d: untyped error %v", cut, err)
			}
		}
	})

	t.Run("bad footer magic", func(t *testing.T) {
		data := append([]byte{}, valid...)
		data[len(data)-1] ^= 0xFF
		if err := read(data); !errors.Is(err, ErrTruncated) {
			t.Fatalf("got %v, want ErrTruncated", err)
		}
	})

	t.Run("bad index crc", func(t *testing.T) {
		data := append([]byte{}, valid...)
		data[len(data)-footerSize-1] ^= 0x01 // last index body byte
		if err := read(data); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("footer offset out of range", func(t *testing.T) {
		data := append([]byte{}, valid...)
		binary.LittleEndian.PutUint64(data[len(data)-footerSize:], uint64(len(data)))
		if err := read(data); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("overlapping segments", func(t *testing.T) {
		data := rebuildIndex(t, valid, func(idx *Index) {
			idx.Segments[1].Off -= 2 // bites into segment 0
		})
		if err := read(data); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("gapped segments", func(t *testing.T) {
		data := rebuildIndex(t, valid, func(idx *Index) {
			idx.Segments[1].Off += 2 // leaves 2 unowned bytes
		})
		if err := read(data); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("zero-count segment", func(t *testing.T) {
		data := rebuildIndex(t, valid, func(idx *Index) {
			idx.Segments[2].Count = 0
		})
		if err := read(data); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("nonzero first start address", func(t *testing.T) {
		data := rebuildIndex(t, valid, func(idx *Index) {
			idx.Segments[0].StartAddr = 64
		})
		if err := read(data); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("trailer count mismatch", func(t *testing.T) {
		data := rebuildIndex(t, valid, func(idx *Index) {
			idx.Segments[len(idx.Segments)-1].Count++
		})
		// The last segment now claims one extra record: either the
		// byte-per-record sanity or the trailer cross-check trips.
		if err := read(data); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("got %v, want ErrCorrupt", err)
		}
	})

	t.Run("not a v3 file", func(t *testing.T) {
		var buf bytes.Buffer
		w := NewWriterOptions(&buf, hdr, WriterOptions{Version: 2})
		for _, a := range accs[:100] {
			if err := w.Write(a); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		if err := read(buf.Bytes()); !errors.Is(err, ErrNoIndex) {
			t.Fatalf("v2: got %v, want ErrNoIndex", err)
		}
		if err := read([]byte("not a trace at all")); !errors.Is(err, ErrBadMagic) {
			t.Fatalf("garbage: got %v, want ErrBadMagic", err)
		}
	})
}

func TestIndexedSourceMatchesSequential(t *testing.T) {
	hdr := Header{BlockSize: 16, PageSize: 4096, Nodes: 8}
	accs := indexTestAccesses(20_000)
	data := encodeMTR3(t, hdr, accs, 2048)

	for _, decoders := range []int{1, 2, 4} {
		src, err := NewIndexedSource(bytes.NewReader(data), int64(len(data)), decoders)
		if err != nil {
			t.Fatal(err)
		}
		if src.Decoders() != decoders {
			t.Fatalf("Decoders() = %d, want %d", src.Decoders(), decoders)
		}
		if src.Header() != hdr {
			t.Fatalf("Header() = %+v, want %+v", src.Header(), hdr)
		}
		// Two passes with a Reset between, exercising both read faces.
		for pass := 0; pass < 2; pass++ {
			var got []Access
			if pass == 0 {
				buf := make([]Access, 777) // off-size to cross window boundaries
				for {
					n, err := src.NextBatch(buf)
					got = append(got, buf[:n]...)
					if errors.Is(err, io.EOF) {
						break
					}
					if err != nil {
						t.Fatal(err)
					}
				}
			} else {
				for {
					a, err := src.Next()
					if errors.Is(err, io.EOF) {
						break
					}
					if err != nil {
						t.Fatal(err)
					}
					got = append(got, a)
				}
			}
			if len(got) != len(accs) {
				t.Fatalf("decoders=%d pass %d: %d accesses, want %d", decoders, pass, len(got), len(accs))
			}
			for i := range got {
				if got[i] != accs[i] {
					t.Fatalf("decoders=%d pass %d access %d: %+v != %+v", decoders, pass, i, got[i], accs[i])
				}
			}
			if err := src.Reset(); err != nil {
				t.Fatal(err)
			}
		}
		if err := src.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestIndexedSourceSegmentCorruption(t *testing.T) {
	hdr := Header{BlockSize: 16, PageSize: 4096, Nodes: 8}
	accs := indexTestAccesses(10_000)
	data := encodeMTR3(t, hdr, accs, 2048)

	idx, err := ReadIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	// Flip a record byte in the third segment: ReadIndex still accepts the
	// file (the index itself is intact), but decode must hit the segment
	// CRC and fail typed — never return silently wrong accesses.
	seg := idx.Segments[2]
	bad := append([]byte{}, data...)
	bad[seg.Off+seg.Len/2] ^= 0x40

	src, err := NewIndexedSource(bytes.NewReader(bad), int64(len(bad)), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	n := 0
	for {
		_, err := src.Next()
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("got %v after %d accesses, want ErrCorrupt", err, n)
			}
			break
		}
		n++
		if n > len(accs) {
			t.Fatal("decoded past the end of a corrupt trace")
		}
	}
	// Everything before the bad segment must have decoded: errors surface
	// in segment order, not as an early abort of good data.
	if n != int(seg.StartIndex) {
		t.Fatalf("decoded %d accesses before the error, want %d", n, seg.StartIndex)
	}
}

func TestOpenFileParallelCorruptV3FailsLoudly(t *testing.T) {
	hdr := Header{BlockSize: 16, PageSize: 4096, Nodes: 8}
	data := encodeMTR3(t, hdr, indexTestAccesses(5000), 2048)
	data[len(data)-footerSize-1] ^= 0x01 // break the index CRC

	path := filepath.Join(t.TempDir(), "bad.mtr")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileParallel(path, 2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want a loud ErrCorrupt (no silent sequential fallback)", err)
	}
}

func TestWriterSegmentTarget(t *testing.T) {
	hdr := Header{BlockSize: 16, PageSize: 4096, Nodes: 8}
	accs := indexTestAccesses(50_000)
	data := encodeMTR3(t, hdr, accs, 4096)
	idx, err := ReadIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	for i, seg := range idx.Segments {
		if seg.Len > 4096+20 { // target plus one max-size record
			t.Fatalf("segment %d is %d bytes, target 4096", i, seg.Len)
		}
		if i < len(idx.Segments)-1 && seg.Len < 4096/2 {
			t.Fatalf("non-final segment %d is only %d bytes", i, seg.Len)
		}
	}
}
