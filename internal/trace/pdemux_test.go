package trace

import (
	"bytes"
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"migratory/internal/telemetry"
)

// pdemuxSource builds a v3 image of n accesses (small segments, so there
// is real parallel structure) and returns a fresh IndexedFileSource.
func pdemuxSource(t *testing.T, n, decoders int) (*IndexedFileSource, []Access) {
	t.Helper()
	accs := indexTestAccesses(n)
	data := encodeMTR3(t, Header{BlockSize: 16, PageSize: 4096, Nodes: 8}, accs, 2048)
	src, err := NewIndexedSource(bytes.NewReader(data), int64(len(data)), decoders)
	if err != nil {
		t.Fatal(err)
	}
	return src, accs
}

// collectShards runs a demux function and gathers per-shard accesses and
// steps. Each shard's consume callback runs on that shard's consumer
// goroutine only, so plain slices suffice.
type shardCollector struct {
	accs  [][]Access
	steps [][]uint64
}

func newShardCollector(shards int) *shardCollector {
	return &shardCollector{accs: make([][]Access, shards), steps: make([][]uint64, shards)}
}

func (c *shardCollector) consume(shard int, b ShardBatch) error {
	c.accs[shard] = append(c.accs[shard], b.Accs...)
	c.steps[shard] = append(c.steps[shard], b.Steps...)
	return nil
}

func TestDemuxParallelMatchesDemuxStats(t *testing.T) {
	const shards = 4
	for _, withSteps := range []bool{true, false} {
		src, accs := pdemuxSource(t, 30_000, 4)
		route := func(a Access) int { return int(a.Addr/16) % shards }

		want := newShardCollector(shards)
		if err := DemuxStats(nil, NewSliceSource(accs), shards, withSteps, nil, route, want.consume); err != nil {
			t.Fatal(err)
		}

		var stats telemetry.RunStats
		got := newShardCollector(shards)
		if err := DemuxParallel(nil, src, 4, shards, withSteps, &stats, route, got.consume); err != nil {
			t.Fatal(err)
		}
		src.Close()

		for s := 0; s < shards; s++ {
			if len(got.accs[s]) != len(want.accs[s]) {
				t.Fatalf("steps=%v shard %d: %d accesses, want %d", withSteps, s, len(got.accs[s]), len(want.accs[s]))
			}
			for i := range got.accs[s] {
				if got.accs[s][i] != want.accs[s][i] {
					t.Fatalf("steps=%v shard %d access %d: %+v != %+v", withSteps, s, i, got.accs[s][i], want.accs[s][i])
				}
			}
			if withSteps {
				for i := range got.steps[s] {
					if got.steps[s][i] != want.steps[s][i] {
						t.Fatalf("shard %d step %d: %d != %d", s, i, got.steps[s][i], want.steps[s][i])
					}
				}
			} else if len(got.steps[s]) != 0 {
				t.Fatalf("shard %d carries %d steps without a probe", s, len(got.steps[s]))
			}
		}
		if stats.DemuxBatches.Load() == 0 {
			t.Fatal("no batches accounted")
		}
		for i := range stats.QueueDepth {
			if d := stats.QueueDepth[i].Load(); d != 0 {
				t.Fatalf("slot %d depth %d after completion, want 0", i, d)
			}
		}
	}
}

// TestDemuxParallelFallbacks pins the conditions that route back to the
// single-producer path — they must still deliver everything correctly.
func TestDemuxParallelFallbacks(t *testing.T) {
	const shards = 2

	check := func(name string, src Source, decoders, shards int, wantTotal int) {
		t.Helper()
		var got atomic.Int64
		err := DemuxParallel(nil, src, decoders, shards, false, nil,
			func(a Access) int { return int(a.Addr/16) % shards },
			func(_ int, b ShardBatch) error { got.Add(int64(len(b.Accs))); return nil })
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Load() != int64(wantTotal) {
			t.Fatalf("%s: delivered %d accesses, want %d", name, got.Load(), wantTotal)
		}
	}

	accs := indexTestAccesses(10_000)
	check("unindexed source", NewSliceSource(accs), 4, shards, len(accs))

	src, _ := pdemuxSource(t, 10_000, 4)
	check("decoders=1", src, 1, shards, len(accs))
	src.Close()

	src, _ = pdemuxSource(t, 10_000, 4)
	check("single shard", src, 4, 1, len(accs))
	src.Close()

	// A source mid-stream keeps its sequential face: the parallel demux
	// must not reset it behind the consumer's back.
	src, _ = pdemuxSource(t, 10_000, 4)
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	if !src.started() {
		t.Fatal("source should report started after a read")
	}
	check("started source", src, 4, shards, len(accs)-1)
	src.Close()
}

func TestDemuxParallelConsumeError(t *testing.T) {
	src, _ := pdemuxSource(t, 30_000, 4)
	defer src.Close()
	boom := errors.New("boom")
	err := DemuxParallel(nil, src, 4, 4, false, nil,
		func(a Access) int { return int(a.Addr/16) % 4 },
		func(shard int, b ShardBatch) error {
			if shard == 2 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want the consume error", err)
	}
}

func TestDemuxParallelDecodeError(t *testing.T) {
	accs := indexTestAccesses(30_000)
	data := encodeMTR3(t, Header{BlockSize: 16, PageSize: 4096, Nodes: 8}, accs, 2048)
	idx, err := ReadIndex(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	seg := idx.Segments[3]
	data[seg.Off+seg.Len/2] ^= 0x40 // segment CRC will fail at decode

	src, err := NewIndexedSource(bytes.NewReader(data), int64(len(data)), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()

	var stats telemetry.RunStats
	var mu sync.Mutex
	maxStep := uint64(0)
	err = DemuxParallel(nil, src, 4, 4, true, &stats,
		func(a Access) int { return int(a.Addr/16) % 4 },
		func(shard int, b ShardBatch) error {
			mu.Lock()
			for _, s := range b.Steps {
				if s >= maxStep {
					maxStep = s + 1
				}
			}
			mu.Unlock()
			return nil
		})
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
	// Nothing at or past the corrupt segment may have been delivered.
	if maxStep > seg.StartIndex {
		t.Fatalf("delivered step %d from the corrupt segment (starts at %d)", maxStep-1, seg.StartIndex)
	}
	for i := range stats.QueueDepth {
		if d := stats.QueueDepth[i].Load(); d != 0 {
			t.Fatalf("slot %d depth %d after error teardown, want 0", i, d)
		}
	}
}

func TestDemuxParallelCancel(t *testing.T) {
	src, _ := pdemuxSource(t, 50_000, 4)
	defer src.Close()
	ctx, cancel := context.WithCancel(context.Background())
	n := 0
	err := DemuxParallel(ctx, src, 4, 4, false, nil,
		func(a Access) int { return int(a.Addr/16) % 4 },
		func(shard int, b ShardBatch) error {
			n += len(b.Accs)
			if n > 5000 {
				cancel()
			}
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	cancel()
}

// TestQueueDepthMultiProducer is the -race pin for the QueueDepth
// contract: with four producers (two single-producer demux runs and two
// parallel-decode runs) hammering one RunStats, the gauge observed at
// every consumption is non-negative, and it returns exactly to zero when
// all producers finish — increments happen pre-hand-off and decrements
// exactly once, so no interleaving double-counts or dips below zero.
func TestQueueDepthMultiProducer(t *testing.T) {
	const shards = 4
	var stats telemetry.RunStats
	route := func(a Access) int { return int(a.Addr/16) % shards }

	var wg sync.WaitGroup
	errs := make([]error, 4)
	var dips sync.Map
	consume := func(shard int, b ShardBatch) error {
		// The consumer's own decrement has already happened; any negative
		// reading means some producer published before incrementing.
		if d := stats.QueueDepth[shard%telemetry.MaxQueueShards].Load(); d < 0 {
			dips.Store(shard, d)
		}
		return nil
	}
	accs := indexTestAccesses(20_000)
	data := encodeMTR3(t, Header{BlockSize: 16, PageSize: 4096, Nodes: 8}, accs, 2048)
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			if p < 2 {
				errs[p] = DemuxStats(nil, NewSliceSource(accs), shards, p == 0, &stats, route, consume)
				return
			}
			src, err := NewIndexedSource(bytes.NewReader(data), int64(len(data)), 2)
			if err != nil {
				errs[p] = err
				return
			}
			defer src.Close()
			errs[p] = DemuxParallel(nil, src, 2, shards, p == 2, &stats, route, consume)
		}(p)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Fatalf("producer %d: %v", p, err)
		}
	}
	dips.Range(func(k, v any) bool {
		t.Errorf("shard %v saw negative queue depth %v", k, v)
		return true
	})
	for i := range stats.QueueDepth {
		if d := stats.QueueDepth[i].Load(); d != 0 {
			t.Fatalf("slot %d depth %d after all producers finished, want 0", i, d)
		}
	}
	if stats.DemuxBatches.Load() == 0 {
		t.Fatal("no batches accounted")
	}
}
