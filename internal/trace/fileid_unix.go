//go:build unix

package trace

import (
	"io/fs"
	"syscall"
)

// fileIDFor derives the cache identity of an opened trace file: dev/ino
// name the file object, size and mtime its content generation. A Stat that
// carries no syscall detail (synthetic filesystems) falls back to the
// portable path hash.
func fileIDFor(path string, fi fs.FileInfo) (FileID, bool) {
	st, ok := fi.Sys().(*syscall.Stat_t)
	if !ok {
		return fileIDFromPath(path, fi)
	}
	return FileID{
		Dev:     uint64(st.Dev),
		Ino:     uint64(st.Ino),
		Size:    fi.Size(),
		MTimeNs: fi.ModTime().UnixNano(),
	}, true
}
