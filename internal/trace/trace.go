// Package trace defines the shared-memory access traces that drive every
// simulator in this repository, together with a compact binary codec and
// summary statistics.
//
// The paper drove its simulators with Tango-generated traces of five SPLASH
// programs; those traces "include accesses to ordinary shared data, but
// exclude accesses to synchronization variables, private data, and
// instructions" (§3.2). Our traces have the same shape: a sequence of
// (node, read|write, address) records over the shared address space, in a
// single global interleaving.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"migratory/internal/memory"
)

// Kind distinguishes read accesses from write accesses.
type Kind uint8

const (
	// Read is a load from shared memory.
	Read Kind = iota
	// Write is a store to shared memory.
	Write
)

// String returns "read" or "write".
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Access is one shared-memory reference by one node.
type Access struct {
	Node memory.NodeID
	Kind Kind
	Addr memory.Addr
}

// String renders an access for diagnostics, e.g. "P3 write 0x1040".
func (a Access) String() string {
	return fmt.Sprintf("P%d %s %#x", a.Node, a.Kind, a.Addr)
}

// Reader yields successive accesses. Next returns io.EOF after the final
// access.
type Reader interface {
	Next() (Access, error)
}

// DefaultBatchSize is the chunk size the simulators pull accesses in. A
// 4096-entry batch of 16-byte Access records is 64 KiB — big enough to
// amortize the per-batch interface call and the hoisted cancellation and
// probe checks down to noise, small enough to stay cache-friendly and keep
// per-worker buffers cheap under Options.Parallelism.
const DefaultBatchSize = 4096

// BatchReader is implemented by readers that can deliver accesses in bulk.
// NextBatch fills buf with up to len(buf) accesses and returns how many it
// wrote. Like io.Reader, it may return n > 0 alongside a non-nil error
// (including io.EOF when the stream ends mid-batch); callers must process
// the n accesses before looking at the error. After the final access it
// returns (0, io.EOF).
//
// All Sources in this package implement BatchReader; external Reader
// implementations are adapted by FillBatch.
type BatchReader interface {
	NextBatch(buf []Access) (int, error)
}

// FillBatch reads up to len(buf) accesses from r into buf. It uses r's own
// NextBatch when r implements BatchReader and otherwise falls back to
// repeated Next calls, so callers can batch over any Reader. The semantics
// match BatchReader.NextBatch.
func FillBatch(r Reader, buf []Access) (int, error) {
	if br, ok := r.(BatchReader); ok {
		return br.NextBatch(buf)
	}
	n := 0
	for n < len(buf) {
		a, err := r.Next()
		if err != nil {
			return n, err
		}
		buf[n] = a
		n++
	}
	return n, nil
}

// batchPool recycles DefaultBatchSize access buffers across runs so a
// parallel sweep's steady state allocates no per-cell batch buffers.
var batchPool = sync.Pool{
	New: func() any {
		buf := make([]Access, DefaultBatchSize)
		return &buf
	},
}

// GetBatch returns a DefaultBatchSize buffer from a shared pool. Return it
// with PutBatch when the run is done.
func GetBatch() []Access {
	return *batchPool.Get().(*[]Access)
}

// PutBatch returns a buffer obtained from GetBatch to the pool. Undersized
// buffers are dropped; caller-grown buffers are clamped back to
// DefaultBatchSize capacity so every pooled buffer stays uniform.
func PutBatch(buf []Access) {
	if cap(buf) < DefaultBatchSize {
		return
	}
	buf = buf[:DefaultBatchSize:DefaultBatchSize]
	batchPool.Put(&buf)
}

// Source is a pull-based stream of accesses that can be replayed. Every
// simulator in the repository consumes traces through this interface, so a
// trace never has to be materialized as a slice: it may live in memory
// (SliceSource), be generated lazily (workload.Source), or be decoded from
// a binary file (FileSource).
//
// Next returns io.EOF after the final access. Reset rewinds the stream to
// the first access; trace-driven simulation is two-pass (page placement,
// then protocol simulation), so rewinding is part of the normal workflow.
// Close releases any underlying resources; after Close the source must not
// be used.
type Source interface {
	Reader
	Reset() error
	Close() error
}

// SliceSource adapts an in-memory access sequence to the Source interface.
type SliceSource struct {
	accesses []Access
	pos      int
}

// NewSliceSource returns a Source over the given accesses. The slice is
// not copied; the caller must not mutate it while reading.
func NewSliceSource(accesses []Access) *SliceSource {
	return &SliceSource{accesses: accesses}
}

// Next implements Source.
func (s *SliceSource) Next() (Access, error) {
	if s.pos >= len(s.accesses) {
		return Access{}, io.EOF
	}
	a := s.accesses[s.pos]
	s.pos++
	return a, nil
}

// NextBatch implements BatchReader by copying straight out of the backing
// slice.
func (s *SliceSource) NextBatch(buf []Access) (int, error) {
	n := copy(buf, s.accesses[s.pos:])
	s.pos += n
	if n == 0 {
		return 0, io.EOF
	}
	return n, nil
}

// Reset implements Source; it never fails.
func (s *SliceSource) Reset() error {
	s.pos = 0
	return nil
}

// Close implements Source; it never fails.
func (s *SliceSource) Close() error { return nil }

// Len returns the total number of accesses.
func (s *SliceSource) Len() int { return len(s.accesses) }

// Rest returns the not-yet-consumed tail of the underlying slice and marks
// the source as drained. The protocol engines use it as a fast path: when a
// Source is really a slice they iterate the slice directly instead of
// paying an interface call per access.
func (s *SliceSource) Rest() []Access {
	rest := s.accesses[s.pos:]
	s.pos = len(s.accesses)
	return rest
}

// ReadAll drains a Reader into a slice.
func ReadAll(r Reader) ([]Access, error) {
	var out []Access
	for {
		a, err := r.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, a)
	}
}

// Binary trace format:
//
//	magic   [4]byte  "MTR1"
//	count   uint64   number of records
//	records          count * (node uint8, kind uint8, addr uint64), little endian
//
// The format is deliberately trivial: traces are an interchange artifact
// between cmd/tracegen and the simulators, not an archival format.

var magic = [4]byte{'M', 'T', 'R', '1'}

const recordSize = 1 + 1 + 8

// ErrBadMagic is returned by ReadFrom when the input does not begin with
// the trace file magic.
var ErrBadMagic = errors.New("trace: bad magic (not a trace file)")

// WriteTo encodes accesses to w in the binary trace format.
func WriteTo(w io.Writer, accesses []Access) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(accesses)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [recordSize]byte
	for _, a := range accesses {
		rec[0] = byte(a.Node)
		rec[1] = byte(a.Kind)
		binary.LittleEndian.PutUint64(rec[2:], uint64(a.Addr))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFrom decodes a binary trace written by WriteTo.
func ReadFrom(r io.Reader) ([]Access, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if m != magic {
		return nil, ErrBadMagic
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading count: %w", err)
	}
	count := binary.LittleEndian.Uint64(hdr[:])
	const sanityMax = 1 << 32
	if count > sanityMax {
		return nil, fmt.Errorf("trace: implausible record count %d: %w", count, ErrCorrupt)
	}
	out := make([]Access, 0, count)
	var rec [recordSize]byte
	for i := uint64(0); i < count; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("trace: reading record %d of %d: %w", i, count, err)
		}
		out = append(out, Access{
			Node: memory.NodeID(rec[0]),
			Kind: Kind(rec[1]),
			Addr: memory.Addr(binary.LittleEndian.Uint64(rec[2:])),
		})
	}
	return out, nil
}
