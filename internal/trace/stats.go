package trace

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"

	"migratory/internal/memory"
)

// Stats summarizes a trace: totals, per-node activity, footprint, and an
// off-line sharing-pattern classification of each block. The classification
// is the ground truth against which the on-line adaptive protocols can be
// judged (the protocols only ever see the access stream).
type Stats struct {
	Accesses int
	Reads    int
	Writes   int
	Nodes    int // number of distinct nodes that appear

	Blocks      int // distinct blocks touched
	Pages       int // distinct pages touched
	FootprintKB int // Pages * page size / 1024

	PerNode []int // accesses per node, indexed by NodeID

	// Sharing-pattern census over blocks (see BlockPattern).
	PrivateBlocks    int
	ReadSharedBlocks int
	MigratoryBlocks  int
	OtherBlocks      int
}

// BlockPattern is the off-line classification of one block's access
// pattern over a whole trace.
type BlockPattern uint8

const (
	// PatternPrivate: the block was only ever accessed by one node.
	PatternPrivate BlockPattern = iota
	// PatternReadShared: multiple nodes accessed the block, and after the
	// initializing writes (writes by the first writer before any second
	// node touched it) it was only read.
	PatternReadShared
	// PatternMigratory: multiple nodes both read and wrote the block, and
	// accesses cluster into single-node read/write runs: whenever the
	// accessing node changes, the previous node's run included a write.
	PatternMigratory
	// PatternOther: any remaining multi-node pattern (producer/consumer,
	// false sharing, irregular).
	PatternOther
)

// String names the pattern.
func (p BlockPattern) String() string {
	switch p {
	case PatternPrivate:
		return "private"
	case PatternReadShared:
		return "read-shared"
	case PatternMigratory:
		return "migratory"
	case PatternOther:
		return "other"
	default:
		return fmt.Sprintf("BlockPattern(%d)", uint8(p))
	}
}

type blockHistory struct {
	firstNode memory.NodeID
	nodes     memory.NodeSet
	writes    int
	// Run tracking for the migratory test.
	curNode      memory.NodeID
	curRunWrote  bool
	migrations   int
	cleanHandoff int // node changed while previous run had no write
	// Writes by a non-first node, or by the first node after another node
	// has touched the block, disqualify read-shared.
	lateWrites int
}

// observe feeds one access into a block's history.
func (h *blockHistory) observe(a Access) {
	if a.Node != h.curNode {
		if h.curRunWrote {
			h.migrations++
		} else {
			h.cleanHandoff++
		}
		h.curNode = a.Node
		h.curRunWrote = false
	}
	if a.Kind == Write {
		h.writes++
		h.curRunWrote = true
		if a.Node != h.firstNode || h.nodes.Len() > 1 {
			h.lateWrites++
		}
	}
	h.nodes = h.nodes.Add(a.Node)
}

func observeBlock(blocks map[memory.BlockID]*blockHistory, a Access, geom memory.Geometry) {
	b := geom.Block(a.Addr)
	h, ok := blocks[b]
	if !ok {
		h = &blockHistory{firstNode: a.Node, curNode: a.Node}
		blocks[b] = h
	}
	h.observe(a)
}

func buildHistories(src Reader, geom memory.Geometry) (map[memory.BlockID]*blockHistory, error) {
	blocks := make(map[memory.BlockID]*blockHistory)
	buf := GetBatch()
	defer PutBatch(buf)
	for {
		n, err := FillBatch(src, buf)
		for _, a := range buf[:n] {
			observeBlock(blocks, a, geom)
		}
		if errors.Is(err, io.EOF) {
			return blocks, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

// Analyze computes Stats for a trace under the given geometry.
func Analyze(accesses []Access, geom memory.Geometry) Stats {
	st, err := AnalyzeSource(NewSliceSource(accesses), geom)
	if err != nil {
		// A SliceSource never fails.
		panic(err)
	}
	return st
}

// AnalyzeSource computes Stats for a streamed trace in a single pass. The
// census state is proportional to the trace's footprint (distinct blocks
// and pages), never to its length.
func AnalyzeSource(src Reader, geom memory.Geometry) (Stats, error) {
	var st Stats
	pages := make(map[memory.PageID]struct{})
	perNode := make(map[memory.NodeID]int)
	blocks := make(map[memory.BlockID]*blockHistory)

	buf := GetBatch()
	defer PutBatch(buf)
	for {
		n, err := FillBatch(src, buf)
		for _, a := range buf[:n] {
			st.Accesses++
			if a.Kind == Read {
				st.Reads++
			} else {
				st.Writes++
			}
			perNode[a.Node]++
			pages[geom.Page(a.Addr)] = struct{}{}
			observeBlock(blocks, a, geom)
		}
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return Stats{}, err
		}
	}

	st.Blocks = len(blocks)
	st.Pages = len(pages)
	st.FootprintKB = len(pages) * geom.PageSize() / 1024

	var maxNode memory.NodeID
	for n := range perNode {
		if n > maxNode {
			maxNode = n
		}
	}
	st.Nodes = len(perNode)
	st.PerNode = make([]int, int(maxNode)+1)
	for n, c := range perNode {
		st.PerNode[n] = c
	}

	for _, h := range blocks {
		switch classify(h) {
		case PatternPrivate:
			st.PrivateBlocks++
		case PatternReadShared:
			st.ReadSharedBlocks++
		case PatternMigratory:
			st.MigratoryBlocks++
		default:
			st.OtherBlocks++
		}
	}
	return st, nil
}

func classify(h *blockHistory) BlockPattern {
	if h.nodes.Len() <= 1 {
		return PatternPrivate
	}
	if h.lateWrites == 0 {
		return PatternReadShared
	}
	// Migratory: accesses cluster into single-writer runs. Tolerate no
	// clean handoffs at all: every change of node was preceded by a write
	// in the departing run.
	if h.migrations > 0 && h.cleanHandoff == 0 {
		return PatternMigratory
	}
	return PatternOther
}

// ClassifyBlocks returns the off-line sharing-pattern classification of
// every block touched by the trace. This is the "oracle" view an off-line
// analysis (§5's load-with-intent-to-modify discussion) would have: it sees
// the whole future, where the on-line protocols can only react to the past.
func ClassifyBlocks(accesses []Access, geom memory.Geometry) map[memory.BlockID]BlockPattern {
	out, err := ClassifyBlocksSource(NewSliceSource(accesses), geom)
	if err != nil {
		// A SliceSource never fails.
		panic(err)
	}
	return out
}

// ClassifyBlocksSource is ClassifyBlocks over a streamed trace: one pass,
// state proportional to the number of distinct blocks.
func ClassifyBlocksSource(src Reader, geom memory.Geometry) (map[memory.BlockID]BlockPattern, error) {
	blocks, err := buildHistories(src, geom)
	if err != nil {
		return nil, err
	}
	out := make(map[memory.BlockID]BlockPattern, len(blocks))
	for b, h := range blocks {
		out[b] = classify(h)
	}
	return out, nil
}

// String renders a human-readable multi-line summary.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "accesses: %d (%d reads, %d writes)\n", s.Accesses, s.Reads, s.Writes)
	fmt.Fprintf(&b, "nodes: %d  blocks: %d  pages: %d  footprint: %d KB\n",
		s.Nodes, s.Blocks, s.Pages, s.FootprintKB)
	fmt.Fprintf(&b, "block patterns: %d private, %d read-shared, %d migratory, %d other\n",
		s.PrivateBlocks, s.ReadSharedBlocks, s.MigratoryBlocks, s.OtherBlocks)
	return b.String()
}

// TopPages returns the n most-referenced pages with their counts,
// descending; useful for inspecting placement decisions.
func TopPages(accesses []Access, geom memory.Geometry, n int) []PageCount {
	counts := make(map[memory.PageID]int)
	for _, a := range accesses {
		counts[geom.Page(a.Addr)]++
	}
	out := make([]PageCount, 0, len(counts))
	for p, c := range counts {
		out = append(out, PageCount{Page: p, Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Page < out[j].Page
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// PageCount pairs a page with its reference count.
type PageCount struct {
	Page  memory.PageID
	Count int
}
