package trace

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"migratory/internal/memory"
)

func TestKindString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Fatalf("Kind strings: %q %q", Read, Write)
	}
	if got := Kind(9).String(); got != "Kind(9)" {
		t.Fatalf("unknown kind string: %q", got)
	}
}

func TestAccessString(t *testing.T) {
	a := Access{Node: 3, Kind: Write, Addr: 0x1040}
	if got := a.String(); got != "P3 write 0x1040" {
		t.Fatalf("Access.String = %q", got)
	}
}

func TestSliceSource(t *testing.T) {
	accs := []Access{
		{Node: 0, Kind: Read, Addr: 0},
		{Node: 1, Kind: Write, Addr: 16},
	}
	s := NewSliceSource(accs)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	got, err := ReadAll(s)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, accs) {
		t.Fatalf("ReadAll = %v; want %v", got, accs)
	}
	// Exhausted source keeps returning EOF.
	if _, err := s.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("Next after EOF: %v", err)
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	a, err := s.Next()
	if err != nil || a != accs[0] {
		t.Fatalf("after Reset: %v %v", a, err)
	}
	// Rest returns the unconsumed tail and drains the source.
	if rest := s.Rest(); !reflect.DeepEqual(rest, accs[1:]) {
		t.Fatalf("Rest = %v; want %v", rest, accs[1:])
	}
	if _, err := s.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("Next after Rest: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestEmptySlice(t *testing.T) {
	s := NewSliceSource(nil)
	if _, err := s.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("empty Next: %v", err)
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(s)
	if err != nil || len(got) != 0 {
		t.Fatalf("ReadAll empty = %v, %v", got, err)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	accs := make([]Access, 1000)
	for i := range accs {
		accs[i] = Access{
			Node: memory.NodeID(rng.Intn(16)),
			Kind: Kind(rng.Intn(2)),
			Addr: memory.Addr(rng.Uint64() >> 20),
		}
	}
	var buf bytes.Buffer
	if err := WriteTo(&buf, accs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, accs) {
		t.Fatal("round trip mismatch")
	}
}

func TestBinaryRoundTripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTo(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrom(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty round trip = %v, %v", got, err)
	}
}

func TestReadFromBadMagic(t *testing.T) {
	_, err := ReadFrom(bytes.NewReader([]byte("XXXX\x00\x00\x00\x00\x00\x00\x00\x00")))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic error: %v", err)
	}
}

func TestReadFromTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTo(&buf, []Access{{Node: 1, Kind: Write, Addr: 42}}); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 1; cut < len(full); cut++ {
		if _, err := ReadFrom(bytes.NewReader(full[:len(full)-cut])); err == nil {
			t.Fatalf("truncating %d bytes: no error", cut)
		}
	}
}

func TestReadFromImplausibleCount(t *testing.T) {
	raw := append([]byte("MTR1"), 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := ReadFrom(bytes.NewReader(raw)); err == nil {
		t.Fatal("implausible count accepted")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(nodes []uint8, kinds []bool, addrs []uint32) bool {
		n := len(nodes)
		if len(kinds) < n {
			n = len(kinds)
		}
		if len(addrs) < n {
			n = len(addrs)
		}
		accs := make([]Access, n)
		for i := 0; i < n; i++ {
			k := Read
			if kinds[i] {
				k = Write
			}
			accs[i] = Access{Node: memory.NodeID(nodes[i]), Kind: k, Addr: memory.Addr(addrs[i])}
		}
		var buf bytes.Buffer
		if err := WriteTo(&buf, accs); err != nil {
			return false
		}
		got, err := ReadFrom(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(accs) {
			return false
		}
		for i := range accs {
			if got[i] != accs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
