package trace

import (
	"testing"

	"migratory/internal/memory"
)

func TestClassifyBlocks(t *testing.T) {
	accs := []Access{
		// Block 0: private.
		{Node: 0, Kind: Write, Addr: block(0)},
		{Node: 0, Kind: Read, Addr: block(0)},
		// Block 1: migratory.
		{Node: 0, Kind: Write, Addr: block(1)},
		{Node: 1, Kind: Read, Addr: block(1)},
		{Node: 1, Kind: Write, Addr: block(1)},
		{Node: 2, Kind: Read, Addr: block(1)},
		{Node: 2, Kind: Write, Addr: block(1)},
		// Block 2: read-shared.
		{Node: 0, Kind: Write, Addr: block(2)},
		{Node: 1, Kind: Read, Addr: block(2)},
		{Node: 2, Kind: Read, Addr: block(2)},
		// Block 3: other (producer/consumer).
		{Node: 0, Kind: Write, Addr: block(3)},
		{Node: 1, Kind: Read, Addr: block(3)},
		{Node: 0, Kind: Write, Addr: block(3)},
		{Node: 1, Kind: Read, Addr: block(3)},
	}
	got := ClassifyBlocks(accs, g16)
	want := map[memory.BlockID]BlockPattern{
		0: PatternPrivate,
		1: PatternMigratory,
		2: PatternReadShared,
		3: PatternOther,
	}
	if len(got) != len(want) {
		t.Fatalf("classified %d blocks; want %d", len(got), len(want))
	}
	for b, p := range want {
		if got[b] != p {
			t.Errorf("block %d = %v; want %v", b, got[b], p)
		}
	}
}

// TestClassifyBlocksAgreesWithAnalyze: the per-block map and the aggregate
// census must be two views of the same classification.
func TestClassifyBlocksAgreesWithAnalyze(t *testing.T) {
	var accs []Access
	// A mix of everything across 40 blocks.
	for i := 0; i < 40; i++ {
		base := block(i)
		switch i % 4 {
		case 0:
			accs = append(accs, Access{Node: 0, Kind: Write, Addr: base})
		case 1:
			for n := memory.NodeID(0); n < 3; n++ {
				accs = append(accs,
					Access{Node: n, Kind: Read, Addr: base},
					Access{Node: n, Kind: Write, Addr: base})
			}
		case 2:
			accs = append(accs, Access{Node: 0, Kind: Write, Addr: base})
			for n := memory.NodeID(1); n < 4; n++ {
				accs = append(accs, Access{Node: n, Kind: Read, Addr: base})
			}
		case 3:
			for rep := 0; rep < 2; rep++ {
				accs = append(accs,
					Access{Node: 0, Kind: Write, Addr: base},
					Access{Node: 1, Kind: Read, Addr: base})
			}
		}
	}
	st := Analyze(accs, g16)
	counts := map[BlockPattern]int{}
	for _, p := range ClassifyBlocks(accs, g16) {
		counts[p]++
	}
	if counts[PatternPrivate] != st.PrivateBlocks ||
		counts[PatternMigratory] != st.MigratoryBlocks ||
		counts[PatternReadShared] != st.ReadSharedBlocks ||
		counts[PatternOther] != st.OtherBlocks {
		t.Fatalf("census mismatch: map %v vs stats %+v", counts, st)
	}
}

func TestClassifyBlocksEmpty(t *testing.T) {
	if got := ClassifyBlocks(nil, g16); len(got) != 0 {
		t.Fatalf("empty trace classified %d blocks", len(got))
	}
}
