package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"migratory/internal/memory"
)

func batchTestImage(t testing.TB, n int) ([]Access, []byte) {
	t.Helper()
	accs := make([]Access, n)
	addr := memory.Addr(0)
	for i := range accs {
		addr += memory.Addr((i%7)*16 - 32)
		accs[i] = Access{Node: memory.NodeID(i % 16), Kind: Kind(i % 2), Addr: addr}
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, Header{BlockSize: 16, PageSize: 4096, Nodes: 16})
	for _, a := range accs {
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return accs, buf.Bytes()
}

// TestSliceSourceNextBatch pins the BatchReader contract on the slice
// source: full batches, a short tail, then (0, io.EOF).
func TestSliceSourceNextBatch(t *testing.T) {
	accs, _ := batchTestImage(t, 10)
	src := NewSliceSource(accs)
	buf := make([]Access, 4)
	sizes := []int{4, 4, 2}
	for _, want := range sizes {
		n, err := src.NextBatch(buf)
		if n != want || err != nil {
			t.Fatalf("NextBatch = (%d, %v), want (%d, nil)", n, err, want)
		}
	}
	if n, err := src.NextBatch(buf); n != 0 || !errors.Is(err, io.EOF) {
		t.Fatalf("drained NextBatch = (%d, %v), want (0, EOF)", n, err)
	}
}

// TestFileSourceResetReusesBuffers: after the first full pass, a Reset plus
// a complete batched drain performs no steady-state allocations — the
// decoder, its bufio buffer, and the pooled batch buffer are all reused.
// This is what keeps Parallelism > 1 sweeps (which Reset and re-drain the
// same sources for every cell) allocation-free in the hot loop.
func TestFileSourceResetReusesBuffers(t *testing.T) {
	_, img := batchTestImage(t, 5000)
	src, err := NewFileSource(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	buf := GetBatch()
	defer PutBatch(buf)
	drain := func() {
		if err := src.Reset(); err != nil {
			t.Fatal(err)
		}
		total := 0
		for {
			n, err := src.NextBatch(buf)
			total += n
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		if total != 5000 {
			t.Fatalf("drained %d accesses, want 5000", total)
		}
	}
	drain() // warm: grows the bufio buffer once
	if allocs := testing.AllocsPerRun(10, drain); allocs > 0 {
		t.Errorf("Reset+drain allocates %.1f objects per pass, want 0", allocs)
	}
}

// TestBatchPoolRecycles: a returned buffer has the canonical capacity and
// full length, and foreign-sized buffers are rejected rather than poisoning
// the pool.
func TestBatchPoolRecycles(t *testing.T) {
	buf := GetBatch()
	if len(buf) != DefaultBatchSize || cap(buf) != DefaultBatchSize {
		t.Fatalf("GetBatch: len %d cap %d, want %d", len(buf), cap(buf), DefaultBatchSize)
	}
	PutBatch(buf[:17]) // short length is fine; capacity is what matters
	buf2 := GetBatch()
	if len(buf2) != DefaultBatchSize {
		t.Fatalf("recycled batch has len %d, want %d", len(buf2), DefaultBatchSize)
	}
	PutBatch(buf2)
	PutBatch(make([]Access, 3)) // wrong capacity: dropped, not pooled
	if got := GetBatch(); len(got) != DefaultBatchSize {
		t.Fatalf("pool returned foreign buffer of len %d", len(got))
	}
}

// TestDecodeBatchMatchesNext: the Peek/Discard fast path and the per-record
// slow path produce identical streams, batch by batch, for an image sized
// to cross several bufio refill boundaries.
func TestDecodeBatchMatchesNext(t *testing.T) {
	accs, img := batchTestImage(t, 20_000)
	batched, err := NewFileSource(bytes.NewReader(img))
	if err != nil {
		t.Fatal(err)
	}
	got := make([]Access, 0, len(accs))
	buf := make([]Access, 113) // deliberately off-power-of-two
	for {
		n, err := batched.NextBatch(buf)
		got = append(got, buf[:n]...)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(accs) {
		t.Fatalf("decoded %d accesses, want %d", len(got), len(accs))
	}
	for i := range got {
		if got[i] != accs[i] {
			t.Fatalf("access %d: %+v != %+v", i, got[i], accs[i])
		}
	}
}
