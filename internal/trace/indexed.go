package trace

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
)

// segBufPool recycles the raw byte buffers segments are read into. All
// segments of one file are near DefaultSegmentBytes, so the pool converges
// on uniformly sized buffers.
var segBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, DefaultSegmentBytes+DefaultSegmentBytes/4)
		return &b
	},
}

func getSegBuf(n int64) []byte {
	b := *segBufPool.Get().(*[]byte)
	if int64(cap(b)) < n {
		return make([]byte, n)
	}
	return b[:n]
}

func putSegBuf(b []byte) {
	b = b[:0]
	segBufPool.Put(&b)
}

// readSegment pulls one segment's record bytes through the shared ReaderAt
// and verifies them against the index entry. The returned buffer comes
// from segBufPool; return it with putSegBuf.
func readSegment(r io.ReaderAt, seg Segment) ([]byte, error) {
	buf := getSegBuf(seg.Len)
	n, err := r.ReadAt(buf, seg.Off)
	if err != nil && !(errors.Is(err, io.EOF) && int64(n) == seg.Len) {
		putSegBuf(buf)
		return nil, fmt.Errorf("trace: reading segment at %d: %w", seg.Off, coalesceEOF(err))
	}
	if err := verifySegment(buf, seg); err != nil {
		putSegBuf(buf)
		return nil, err
	}
	return buf, nil
}

// segWindow is one decoded window of a segment, sized by the batch pool.
type segWindow struct {
	buf []Access
	n   int
}

// decodeSegmentWindows decodes a whole segment into pooled
// DefaultBatchSize windows.
func decodeSegmentWindows(r io.ReaderAt, seg Segment, nodes int) ([]segWindow, error) {
	data, err := readSegment(r, seg)
	if err != nil {
		return nil, err
	}
	defer putSegBuf(data)
	dec := newSegmentDecoder(data, seg, nodes)
	wins := make([]segWindow, 0, int(seg.Count)/DefaultBatchSize+1)
	for dec.left > 0 {
		buf := GetBatch()
		n, err := dec.next(buf)
		if err != nil {
			PutBatch(buf)
			for _, w := range wins {
				PutBatch(w.buf)
			}
			return nil, err
		}
		wins = append(wins, segWindow{buf: buf, n: n})
	}
	// dec.left reached zero inside next, which also verified no bytes
	// trail the final record; a lying count with spare bytes errors there.
	return wins, nil
}

// decodeSegmentSlab decodes a whole segment into one freshly allocated
// contiguous slab — the immutable form the SegmentCache shares across
// consumers. Unlike decodeSegmentWindows the result owes nothing to the
// batch pools, so cached slabs can never be recycled under a reader.
func decodeSegmentSlab(r io.ReaderAt, seg Segment, nodes int) ([]Access, error) {
	data, err := readSegment(r, seg)
	if err != nil {
		return nil, err
	}
	defer putSegBuf(data)
	out := make([]Access, seg.Count)
	dec := newSegmentDecoder(data, seg, nodes)
	filled := 0
	for dec.left > 0 {
		n, err := dec.next(out[filled:])
		if err != nil {
			return nil, err
		}
		filled += n
	}
	// The slab is exactly Count long, so the loop exits the moment the last
	// record lands and the trailing-bytes check inside next has not run;
	// one extra read (which must report EOF) performs it.
	var dummy [1]Access
	if _, err := dec.next(dummy[:]); err != io.EOF {
		return nil, err
	}
	return out[:filled], nil
}

// segEntry is one decoded segment queued for in-order delivery: either
// pooled windows (uncached decode) or a pinned cache slab — never both.
type segEntry struct {
	wins []segWindow
	pin  *PinnedSegment
	err  error
}

// discard recycles or releases whatever the entry holds.
func (e *segEntry) discard() {
	for _, w := range e.wins {
		PutBatch(w.buf)
	}
	e.wins = nil
	if e.pin != nil {
		e.pin.Release()
		e.pin = nil
	}
}

// segPipe is the parallel decode pipeline behind IndexedFileSource's
// sequential face: workers claim segments in file order, decode them
// concurrently through the shared io.ReaderAt, and publish the results
// into a reorder buffer the consumer drains strictly in segment order. A
// slot semaphore bounds decoded-but-unconsumed segments, so a slow
// consumer applies backpressure instead of the pipeline buffering the
// whole file.
type segPipe struct {
	r     io.ReaderAt
	idx   *Index
	cache *SegmentCache // nil = decode into pooled windows
	id    FileID        // cache identity, set when cache != nil
	mu    sync.Mutex
	cond  *sync.Cond
	ready map[int]segEntry
	next  int // next segment the consumer needs
	claim int // next segment a worker will take (guarded by mu)
	stop  bool
	stopC chan struct{}
	slots chan struct{}
	wg    sync.WaitGroup
}

func newSegPipe(r io.ReaderAt, idx *Index, workers int, cache *SegmentCache, id FileID) *segPipe {
	if workers > len(idx.Segments) {
		workers = len(idx.Segments)
	}
	if workers < 1 {
		workers = 1
	}
	p := &segPipe{
		r:     r,
		idx:   idx,
		cache: cache,
		id:    id,
		ready: make(map[int]segEntry),
		stopC: make(chan struct{}),
		slots: make(chan struct{}, workers+2),
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *segPipe) worker() {
	defer p.wg.Done()
	for {
		// Hold a slot before claiming, so every claimed segment is
		// guaranteed to publish: the in-order consumer always finds its
		// next segment either ready or on a slotted worker.
		select {
		case p.slots <- struct{}{}:
		case <-p.stopC:
			return
		}
		p.mu.Lock()
		if p.stop || p.claim >= len(p.idx.Segments) {
			p.mu.Unlock()
			<-p.slots
			return
		}
		i := p.claim
		p.claim++
		p.mu.Unlock()

		var e segEntry
		if p.cache != nil {
			seg := p.idx.Segments[i]
			pin, err := p.cache.Acquire(p.id, i, func() ([]Access, error) {
				return decodeSegmentSlab(p.r, seg, p.idx.Header.Nodes)
			})
			e = segEntry{pin: pin, err: err}
		} else {
			wins, err := decodeSegmentWindows(p.r, p.idx.Segments[i], p.idx.Header.Nodes)
			e = segEntry{wins: wins, err: err}
		}
		err := e.err
		p.mu.Lock()
		if p.stop {
			p.mu.Unlock()
			e.discard()
			<-p.slots
			return
		}
		p.ready[i] = e
		if err != nil {
			// Decode failures surface to the consumer in order; segments
			// past the bad one would be wasted work.
			p.claim = len(p.idx.Segments)
		}
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// nextSegment blocks until the next in-order segment is decoded and
// returns its entry (pooled windows or a pinned cache slab). It returns
// io.EOF after the final segment and the decode error of the first bad
// segment.
func (p *segPipe) nextSegment() (segEntry, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.next >= len(p.idx.Segments) {
		return segEntry{}, io.EOF
	}
	for {
		if p.stop {
			return segEntry{}, io.EOF
		}
		if e, ok := p.ready[p.next]; ok {
			delete(p.ready, p.next)
			p.next++
			<-p.slots
			return e, e.err
		}
		p.cond.Wait()
	}
}

// halt stops the workers, waits them out, and recycles every buffer still
// queued. After halt the pipe is inert.
func (p *segPipe) halt() {
	p.mu.Lock()
	if !p.stop {
		p.stop = true
		close(p.stopC)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
	for i, e := range p.ready {
		e.discard()
		delete(p.ready, i)
	}
}

// IndexedFileSource is a Source decoding an MTR3 trace through its segment
// index: up to Decoders goroutines decode segments concurrently via a
// shared io.ReaderAt, and the Source face reassembles them in segment
// order, so consumers see exactly the sequential access stream — the
// parallel successor of PrefetchSource's single decode-ahead goroutine.
//
// The decode pipeline starts lazily at the first read, and Reset returns
// the source to the unstarted state, so a source that is handed to the
// sharded demux (DemuxParallel, which reads segments itself and never
// touches the sequential face) costs nothing here.
//
// Like every Source, an IndexedFileSource is driven by one consumer
// goroutine at a time.
type IndexedFileSource struct {
	r        io.ReaderAt
	closer   io.Closer
	idx      *Index
	decoders int

	cache  *SegmentCache // nil = caching off
	fileID FileID
	hasID  bool // file identity known (opened from a real path)

	pipe *segPipe
	wins []segWindow
	pin  *PinnedSegment // pin backing cur when it is a cache slab
	cur  []Access
	pos  int
	err  error
}

// NewIndexedSource builds an IndexedFileSource over any io.ReaderAt (which
// must be safe for concurrent ReadAt, as *os.File and *bytes.Reader are).
// size is the total trace length in bytes. decoders bounds the concurrent
// segment decoders; 0 means GOMAXPROCS. MTR1/MTR2 input fails with
// ErrNoIndex; use FileSource for those.
func NewIndexedSource(r io.ReaderAt, size int64, decoders int) (*IndexedFileSource, error) {
	idx, err := ReadIndex(r, size)
	if err != nil {
		return nil, err
	}
	if decoders <= 0 {
		decoders = runtime.GOMAXPROCS(0)
	}
	return &IndexedFileSource{r: r, idx: idx, decoders: decoders}, nil
}

// OpenIndexedFile opens path as an IndexedFileSource. The caller must
// Close it. Non-MTR3 traces fail with ErrNoIndex.
func OpenIndexedFile(path string, decoders int) (*IndexedFileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	src, err := NewIndexedSource(f, fi.Size(), decoders)
	if err != nil {
		f.Close()
		return nil, err
	}
	src.closer = f
	src.fileID, src.hasID = fileIDFor(path, fi)
	return src, nil
}

// WithCache attaches the shared decoded-segment cache: subsequent decodes
// (sequential face and DemuxParallel alike) consult it before touching the
// raw bytes. A nil cache, an already-started pipeline, or a source without
// file identity (NewIndexedSource over a bare ReaderAt) leaves the source
// uncached. Returns s for chaining.
func (s *IndexedFileSource) WithCache(c *SegmentCache) *IndexedFileSource {
	if c != nil && s.hasID && s.pipe == nil {
		s.cache = c
	}
	return s
}

// OpenFileParallel opens path with the best decode pipeline its format
// supports: MTR3 files get an IndexedFileSource with up to decoders
// (0 = GOMAXPROCS) concurrent segment decoders, while MTR1/MTR2 files fall
// back to sequential decode behind a prefetch goroutine. This is how the
// CLIs and sim.Run open -trace files; a v3 file with a damaged index fails
// loudly here rather than silently degrading to the sequential path.
func OpenFileParallel(path string, decoders int) (Source, error) {
	return OpenFileParallelCache(path, decoders, nil)
}

// OpenFileParallelCache is OpenFileParallel with a shared decoded-segment
// cache attached to indexed sources. Unindexed (v1/v2) files bypass the
// cache entirely — they have no independently decodable segments — and a
// nil cache behaves exactly like OpenFileParallel.
func OpenFileParallelCache(path string, decoders int, cache *SegmentCache) (Source, error) {
	src, err := OpenIndexedFile(path, decoders)
	if err == nil {
		return src.WithCache(cache), nil
	}
	if !errors.Is(err, ErrNoIndex) {
		return nil, err
	}
	fs, err := OpenFile(path)
	if err != nil {
		return nil, err
	}
	return NewPrefetchSource(fs), nil
}

// Header returns the trace geometry header.
func (s *IndexedFileSource) Header() Header { return s.idx.Header }

// Index returns the decoded segment index. The caller must not mutate it.
func (s *IndexedFileSource) Index() *Index { return s.idx }

// Decoders returns the configured decoder-goroutine bound.
func (s *IndexedFileSource) Decoders() int { return s.decoders }

// started reports whether the sequential decode pipeline is running (the
// source is mid-stream). DemuxParallel uses it to keep off the segment
// table while the sequential face owns the stream position.
func (s *IndexedFileSource) started() bool { return s.pipe != nil }

// advance recycles the drained window (or releases the drained cache pin)
// and installs the next one, starting the pipeline on first use.
func (s *IndexedFileSource) advance() error {
	if s.cur != nil {
		if s.pin != nil {
			// A pinned cache slab is shared and immutable: release the pin,
			// never recycle the memory into the batch pools.
			s.pin.Release()
			s.pin = nil
		} else {
			PutBatch(s.cur)
		}
		s.cur = nil
		s.pos = 0
	}
	for {
		if s.err != nil {
			return s.err
		}
		if len(s.wins) == 0 {
			if s.pipe == nil {
				s.pipe = newSegPipe(s.r, s.idx, s.decoders, s.cache, s.fileID)
			}
			e, err := s.pipe.nextSegment()
			if err != nil {
				s.err = err
				e.discard()
				return err
			}
			if e.pin != nil {
				if accs := e.pin.Accesses(); len(accs) > 0 {
					s.pin = e.pin
					s.cur = accs
					s.pos = 0
					return nil
				}
				e.pin.Release()
				continue
			}
			s.wins = e.wins
			continue
		}
		w := s.wins[0]
		s.wins = s.wins[1:]
		if w.n > 0 {
			s.cur = w.buf[:w.n]
			s.pos = 0
			return nil
		}
		PutBatch(w.buf)
	}
}

// Next implements Source.
func (s *IndexedFileSource) Next() (Access, error) {
	if s.pos >= len(s.cur) {
		if err := s.advance(); err != nil {
			return Access{}, err
		}
	}
	a := s.cur[s.pos]
	s.pos++
	return a, nil
}

// NextBatch implements BatchReader.
func (s *IndexedFileSource) NextBatch(buf []Access) (int, error) {
	if s.pos >= len(s.cur) {
		if err := s.advance(); err != nil {
			return 0, err
		}
	}
	n := copy(buf, s.cur[s.pos:])
	s.pos += n
	return n, nil
}

// drain quiesces the pipeline and recycles every in-flight buffer.
func (s *IndexedFileSource) drain() {
	if s.pipe != nil {
		s.pipe.halt()
		s.pipe = nil
	}
	for _, w := range s.wins {
		PutBatch(w.buf)
	}
	s.wins = nil
	if s.cur != nil {
		if s.pin != nil {
			s.pin.Release()
			s.pin = nil
		} else {
			PutBatch(s.cur)
		}
		s.cur = nil
	}
	s.pos = 0
	s.err = nil
}

// Reset implements Source, returning to the first access with the
// pipeline unstarted (it relaunches lazily at the next read).
func (s *IndexedFileSource) Reset() error {
	s.drain()
	return nil
}

// Close implements Source, closing the underlying file when the source
// was opened by OpenIndexedFile.
func (s *IndexedFileSource) Close() error {
	s.drain()
	s.err = io.EOF
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}

// SegmentSource reports the segment layout of a source that can decode
// segments independently. The demux stage uses it to route per-segment
// batches straight to shard queues (DemuxParallel) without a serial
// producer. It is implemented by IndexedFileSource.
type SegmentSource interface {
	Source
	Index() *Index
}

var _ SegmentSource = (*IndexedFileSource)(nil)
