package trace

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync"
)

// segBufPool recycles the raw byte buffers segments are read into. All
// segments of one file are near DefaultSegmentBytes, so the pool converges
// on uniformly sized buffers.
var segBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, DefaultSegmentBytes+DefaultSegmentBytes/4)
		return &b
	},
}

func getSegBuf(n int64) []byte {
	b := *segBufPool.Get().(*[]byte)
	if int64(cap(b)) < n {
		return make([]byte, n)
	}
	return b[:n]
}

func putSegBuf(b []byte) {
	b = b[:0]
	segBufPool.Put(&b)
}

// readSegment pulls one segment's record bytes through the shared ReaderAt
// and verifies them against the index entry. The returned buffer comes
// from segBufPool; return it with putSegBuf.
func readSegment(r io.ReaderAt, seg Segment) ([]byte, error) {
	buf := getSegBuf(seg.Len)
	n, err := r.ReadAt(buf, seg.Off)
	if err != nil && !(errors.Is(err, io.EOF) && int64(n) == seg.Len) {
		putSegBuf(buf)
		return nil, fmt.Errorf("trace: reading segment at %d: %w", seg.Off, coalesceEOF(err))
	}
	if err := verifySegment(buf, seg); err != nil {
		putSegBuf(buf)
		return nil, err
	}
	return buf, nil
}

// segWindow is one decoded window of a segment, sized by the batch pool.
type segWindow struct {
	buf []Access
	n   int
}

// decodeSegmentWindows decodes a whole segment into pooled
// DefaultBatchSize windows.
func decodeSegmentWindows(r io.ReaderAt, seg Segment, nodes int) ([]segWindow, error) {
	data, err := readSegment(r, seg)
	if err != nil {
		return nil, err
	}
	defer putSegBuf(data)
	dec := newSegmentDecoder(data, seg, nodes)
	wins := make([]segWindow, 0, int(seg.Count)/DefaultBatchSize+1)
	for dec.left > 0 {
		buf := GetBatch()
		n, err := dec.next(buf)
		if err != nil {
			PutBatch(buf)
			for _, w := range wins {
				PutBatch(w.buf)
			}
			return nil, err
		}
		wins = append(wins, segWindow{buf: buf, n: n})
	}
	// dec.left reached zero inside next, which also verified no bytes
	// trail the final record; a lying count with spare bytes errors there.
	return wins, nil
}

// segEntry is one decoded segment queued for in-order delivery.
type segEntry struct {
	wins []segWindow
	err  error
}

// segPipe is the parallel decode pipeline behind IndexedFileSource's
// sequential face: workers claim segments in file order, decode them
// concurrently through the shared io.ReaderAt, and publish the results
// into a reorder buffer the consumer drains strictly in segment order. A
// slot semaphore bounds decoded-but-unconsumed segments, so a slow
// consumer applies backpressure instead of the pipeline buffering the
// whole file.
type segPipe struct {
	r     io.ReaderAt
	idx   *Index
	mu    sync.Mutex
	cond  *sync.Cond
	ready map[int]segEntry
	next  int // next segment the consumer needs
	claim int // next segment a worker will take (guarded by mu)
	stop  bool
	stopC chan struct{}
	slots chan struct{}
	wg    sync.WaitGroup
}

func newSegPipe(r io.ReaderAt, idx *Index, workers int) *segPipe {
	if workers > len(idx.Segments) {
		workers = len(idx.Segments)
	}
	if workers < 1 {
		workers = 1
	}
	p := &segPipe{
		r:     r,
		idx:   idx,
		ready: make(map[int]segEntry),
		stopC: make(chan struct{}),
		slots: make(chan struct{}, workers+2),
	}
	p.cond = sync.NewCond(&p.mu)
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *segPipe) worker() {
	defer p.wg.Done()
	for {
		// Hold a slot before claiming, so every claimed segment is
		// guaranteed to publish: the in-order consumer always finds its
		// next segment either ready or on a slotted worker.
		select {
		case p.slots <- struct{}{}:
		case <-p.stopC:
			return
		}
		p.mu.Lock()
		if p.stop || p.claim >= len(p.idx.Segments) {
			p.mu.Unlock()
			<-p.slots
			return
		}
		i := p.claim
		p.claim++
		p.mu.Unlock()

		wins, err := decodeSegmentWindows(p.r, p.idx.Segments[i], p.idx.Header.Nodes)
		p.mu.Lock()
		if p.stop {
			p.mu.Unlock()
			for _, w := range wins {
				PutBatch(w.buf)
			}
			<-p.slots
			return
		}
		p.ready[i] = segEntry{wins: wins, err: err}
		if err != nil {
			// Decode failures surface to the consumer in order; segments
			// past the bad one would be wasted work.
			p.claim = len(p.idx.Segments)
		}
		p.cond.Broadcast()
		p.mu.Unlock()
	}
}

// nextSegment blocks until the next in-order segment is decoded and
// returns its windows. It returns io.EOF after the final segment and the
// decode error of the first bad segment.
func (p *segPipe) nextSegment() ([]segWindow, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.next >= len(p.idx.Segments) {
		return nil, io.EOF
	}
	for {
		if p.stop {
			return nil, io.EOF
		}
		if e, ok := p.ready[p.next]; ok {
			delete(p.ready, p.next)
			p.next++
			<-p.slots
			return e.wins, e.err
		}
		p.cond.Wait()
	}
}

// halt stops the workers, waits them out, and recycles every buffer still
// queued. After halt the pipe is inert.
func (p *segPipe) halt() {
	p.mu.Lock()
	if !p.stop {
		p.stop = true
		close(p.stopC)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	p.wg.Wait()
	for i, e := range p.ready {
		for _, w := range e.wins {
			PutBatch(w.buf)
		}
		delete(p.ready, i)
	}
}

// IndexedFileSource is a Source decoding an MTR3 trace through its segment
// index: up to Decoders goroutines decode segments concurrently via a
// shared io.ReaderAt, and the Source face reassembles them in segment
// order, so consumers see exactly the sequential access stream — the
// parallel successor of PrefetchSource's single decode-ahead goroutine.
//
// The decode pipeline starts lazily at the first read, and Reset returns
// the source to the unstarted state, so a source that is handed to the
// sharded demux (DemuxParallel, which reads segments itself and never
// touches the sequential face) costs nothing here.
//
// Like every Source, an IndexedFileSource is driven by one consumer
// goroutine at a time.
type IndexedFileSource struct {
	r        io.ReaderAt
	closer   io.Closer
	idx      *Index
	decoders int

	pipe *segPipe
	wins []segWindow
	cur  []Access
	pos  int
	err  error
}

// NewIndexedSource builds an IndexedFileSource over any io.ReaderAt (which
// must be safe for concurrent ReadAt, as *os.File and *bytes.Reader are).
// size is the total trace length in bytes. decoders bounds the concurrent
// segment decoders; 0 means GOMAXPROCS. MTR1/MTR2 input fails with
// ErrNoIndex; use FileSource for those.
func NewIndexedSource(r io.ReaderAt, size int64, decoders int) (*IndexedFileSource, error) {
	idx, err := ReadIndex(r, size)
	if err != nil {
		return nil, err
	}
	if decoders <= 0 {
		decoders = runtime.GOMAXPROCS(0)
	}
	return &IndexedFileSource{r: r, idx: idx, decoders: decoders}, nil
}

// OpenIndexedFile opens path as an IndexedFileSource. The caller must
// Close it. Non-MTR3 traces fail with ErrNoIndex.
func OpenIndexedFile(path string, decoders int) (*IndexedFileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	src, err := NewIndexedSource(f, fi.Size(), decoders)
	if err != nil {
		f.Close()
		return nil, err
	}
	src.closer = f
	return src, nil
}

// OpenFileParallel opens path with the best decode pipeline its format
// supports: MTR3 files get an IndexedFileSource with up to decoders
// (0 = GOMAXPROCS) concurrent segment decoders, while MTR1/MTR2 files fall
// back to sequential decode behind a prefetch goroutine. This is how the
// CLIs and sim.Run open -trace files; a v3 file with a damaged index fails
// loudly here rather than silently degrading to the sequential path.
func OpenFileParallel(path string, decoders int) (Source, error) {
	src, err := OpenIndexedFile(path, decoders)
	if err == nil {
		return src, nil
	}
	if !errors.Is(err, ErrNoIndex) {
		return nil, err
	}
	fs, err := OpenFile(path)
	if err != nil {
		return nil, err
	}
	return NewPrefetchSource(fs), nil
}

// Header returns the trace geometry header.
func (s *IndexedFileSource) Header() Header { return s.idx.Header }

// Index returns the decoded segment index. The caller must not mutate it.
func (s *IndexedFileSource) Index() *Index { return s.idx }

// Decoders returns the configured decoder-goroutine bound.
func (s *IndexedFileSource) Decoders() int { return s.decoders }

// started reports whether the sequential decode pipeline is running (the
// source is mid-stream). DemuxParallel uses it to keep off the segment
// table while the sequential face owns the stream position.
func (s *IndexedFileSource) started() bool { return s.pipe != nil }

// advance recycles the drained window and installs the next one, starting
// the pipeline on first use.
func (s *IndexedFileSource) advance() error {
	if s.cur != nil {
		PutBatch(s.cur)
		s.cur = nil
		s.pos = 0
	}
	for {
		if s.err != nil {
			return s.err
		}
		if len(s.wins) == 0 {
			if s.pipe == nil {
				s.pipe = newSegPipe(s.r, s.idx, s.decoders)
			}
			wins, err := s.pipe.nextSegment()
			if err != nil {
				s.err = err
				for _, w := range wins {
					PutBatch(w.buf)
				}
				return err
			}
			s.wins = wins
			continue
		}
		w := s.wins[0]
		s.wins = s.wins[1:]
		if w.n > 0 {
			s.cur = w.buf[:w.n]
			s.pos = 0
			return nil
		}
		PutBatch(w.buf)
	}
}

// Next implements Source.
func (s *IndexedFileSource) Next() (Access, error) {
	if s.pos >= len(s.cur) {
		if err := s.advance(); err != nil {
			return Access{}, err
		}
	}
	a := s.cur[s.pos]
	s.pos++
	return a, nil
}

// NextBatch implements BatchReader.
func (s *IndexedFileSource) NextBatch(buf []Access) (int, error) {
	if s.pos >= len(s.cur) {
		if err := s.advance(); err != nil {
			return 0, err
		}
	}
	n := copy(buf, s.cur[s.pos:])
	s.pos += n
	return n, nil
}

// drain quiesces the pipeline and recycles every in-flight buffer.
func (s *IndexedFileSource) drain() {
	if s.pipe != nil {
		s.pipe.halt()
		s.pipe = nil
	}
	for _, w := range s.wins {
		PutBatch(w.buf)
	}
	s.wins = nil
	if s.cur != nil {
		PutBatch(s.cur)
		s.cur = nil
	}
	s.pos = 0
	s.err = nil
}

// Reset implements Source, returning to the first access with the
// pipeline unstarted (it relaunches lazily at the next read).
func (s *IndexedFileSource) Reset() error {
	s.drain()
	return nil
}

// Close implements Source, closing the underlying file when the source
// was opened by OpenIndexedFile.
func (s *IndexedFileSource) Close() error {
	s.drain()
	s.err = io.EOF
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}

// SegmentSource reports the segment layout of a source that can decode
// segments independently. The demux stage uses it to route per-segment
// batches straight to shard queues (DemuxParallel) without a serial
// producer. It is implemented by IndexedFileSource.
type SegmentSource interface {
	Source
	Index() *Index
}

var _ SegmentSource = (*IndexedFileSource)(nil)
