//go:build !unix

package trace

import "io/fs"

// fileIDFor on platforms without dev/ino uses the portable path-hash
// identity.
func fileIDFor(path string, fi fs.FileInfo) (FileID, bool) {
	return fileIDFromPath(path, fi)
}
