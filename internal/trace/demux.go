package trace

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"migratory/internal/telemetry"
)

// ShardBatch is one routed chunk of accesses delivered to a demux consumer.
// Accs holds the accesses in their original relative order. Steps, when the
// demux was asked for it, is parallel to Accs and holds each access's index
// in the global interleaving — sharded engines stamp emitted events with it
// so probe-visible step distances match the sequential run exactly.
type ShardBatch struct {
	Accs  []Access
	Steps []uint64
}

// stepPool recycles the Steps arrays that ride along with routed batches,
// mirroring batchPool for the access buffers themselves.
var stepPool = sync.Pool{
	New: func() any {
		s := make([]uint64, 0, DefaultBatchSize)
		return &s
	},
}

func getSteps() []uint64 {
	return (*stepPool.Get().(*[]uint64))[:0]
}

func putSteps(s []uint64) {
	if cap(s) < DefaultBatchSize {
		return
	}
	s = s[:0:DefaultBatchSize]
	stepPool.Put(&s)
}

func putShardBatch(b ShardBatch) {
	PutBatch(b.Accs)
	if b.Steps != nil {
		putSteps(b.Steps)
	}
}

// Demux fans a single access stream out to per-shard consumers. The
// producer (the calling goroutine) pulls batches from src, routes each
// access with route (which must return a value in [0, shards)), and
// accumulates per-shard batches of up to DefaultBatchSize accesses; full
// batches are handed to one consumer goroutine per shard over a bounded
// channel, so a slow shard applies backpressure instead of queueing
// unbounded work. Within one shard, consume(shard, batch) calls observe
// every access in its original relative order — the property the sharded
// engines rely on for bit-identical counters.
//
// When withSteps is set, each batch carries the global access indices in
// ShardBatch.Steps. Batch buffers are pooled; consume must not retain the
// batch after returning.
//
// Demux returns after every consumer has finished. On failure the error
// precedence is: context cancellation, then the lowest-numbered shard's
// consume error, then the source error.
func Demux(ctx context.Context, src Reader, shards int, withSteps bool,
	route func(Access) int, consume func(shard int, b ShardBatch) error) error {
	return DemuxStats(ctx, src, shards, withSteps, nil, route, consume)
}

// DemuxStats is Demux with an optional telemetry counter block. When stats
// is non-nil the producer and consumers account each routed batch
// (DemuxBatches), per-shard in-flight depth (QueueDepth), and producer time
// spent blocked on a full shard queue (DemuxStalls / DemuxStallNs) — the
// live back-pressure signal of a sharded run. A nil stats is exactly
// Demux: the accounting sits on batch hand-offs, never the per-access loop.
//
// QueueDepth follows the multi-producer contract documented on
// telemetry.RunStats: the increment happens strictly before the batch is
// visible to a consumer, the decrement exactly once at consumption, so the
// gauge never dips negative and never double-counts even when several
// demux pipelines (this one or trace.DemuxParallel's decoder workers)
// share one RunStats.
func DemuxStats(ctx context.Context, src Reader, shards int, withSteps bool,
	stats *telemetry.RunStats, route func(Access) int, consume func(shard int, b ShardBatch) error) error {
	if shards < 1 {
		return fmt.Errorf("trace: demux shards %d (want >= 1)", shards)
	}
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}

	chans := make([]chan ShardBatch, shards)
	for i := range chans {
		chans[i] = make(chan ShardBatch, 2)
	}
	// stop is closed at the first failure so a blocked producer send (or a
	// long source read) doesn't outlive the run.
	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }

	consumeErrs := make([]error, shards)
	var wg sync.WaitGroup
	for i := 0; i < shards; i++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for b := range chans[shard] {
				if stats != nil {
					stats.QueueDepth[shard%telemetry.MaxQueueShards].Add(-1)
				}
				if consumeErrs[shard] == nil {
					if err := consume(shard, b); err != nil {
						consumeErrs[shard] = err
						halt()
					}
				}
				putShardBatch(b)
			}
		}(i)
	}

	pending := make([]ShardBatch, shards)
	newPending := func() ShardBatch {
		b := ShardBatch{Accs: GetBatch()[:0]}
		if withSteps {
			b.Steps = getSteps()
		}
		return b
	}
	for i := range pending {
		pending[i] = newPending()
	}
	// send hands pending[shard] to its consumer, or recycles it when the
	// run is being torn down; either way pending[shard] is replaced. With
	// stats attached it first tries a non-blocking hand-off; only when the
	// shard queue is full does it fall back to the blocking path and charge
	// the wait to DemuxStalls/DemuxStallNs.
	send := func(shard int) bool {
		if stats != nil {
			// Count the batch in flight before the hand-off: if the consumer
			// drained it before the producer incremented, the gauge would dip
			// below zero. The stop path undoes the optimistic increment.
			depth := &stats.QueueDepth[shard%telemetry.MaxQueueShards]
			depth.Add(1)
			select {
			case chans[shard] <- pending[shard]:
			default:
				stats.DemuxStalls.Add(1)
				t0 := time.Now()
				select {
				case chans[shard] <- pending[shard]:
					stats.DemuxStallNs.Add(uint64(time.Since(t0)))
				case <-stop:
					stats.DemuxStallNs.Add(uint64(time.Since(t0)))
					depth.Add(-1)
					putShardBatch(pending[shard])
					pending[shard] = newPending()
					return false
				}
			}
			stats.DemuxBatches.Add(1)
			pending[shard] = newPending()
			return true
		}
		select {
		case chans[shard] <- pending[shard]:
			pending[shard] = newPending()
			return true
		case <-stop:
			putShardBatch(pending[shard])
			pending[shard] = newPending()
			return false
		}
	}

	in := GetBatch()
	var srcErr error
	var step uint64
	halted := false
producer:
	for {
		select {
		case <-ctxDone:
			halt()
			halted = true
			break producer
		case <-stop:
			halted = true
			break producer
		default:
		}
		n, err := FillBatch(src, in)
		for _, a := range in[:n] {
			shard := route(a)
			p := &pending[shard]
			p.Accs = append(p.Accs, a)
			if withSteps {
				p.Steps = append(p.Steps, step)
			}
			step++
			if len(p.Accs) == DefaultBatchSize {
				if !send(shard) {
					halted = true
					break producer
				}
			}
		}
		if err != nil {
			if !errors.Is(err, io.EOF) {
				srcErr = err
			}
			break
		}
	}
	if !halted {
		for i := range pending {
			if len(pending[i].Accs) > 0 && !send(i) {
				break
			}
		}
	}
	for i := range pending {
		putShardBatch(pending[i])
	}
	PutBatch(in)
	for i := range chans {
		close(chans[i])
	}
	wg.Wait()

	if ctx != nil && ctx.Err() != nil {
		return ctx.Err()
	}
	for _, err := range consumeErrs {
		if err != nil {
			return err
		}
	}
	return srcErr
}
