package trace

// Streaming binary trace format, version 2 ("MTR2"):
//
//	magic    [4]byte "MTR2"
//	header   uvarint blockSize   (0 = unspecified)
//	         uvarint pageSize    (0 = unspecified)
//	         uvarint nodes       (0 = unspecified)
//	records  per access:
//	         uvarint head        ((node<<1 | kind) + 1; never zero)
//	         uvarint addrDelta   (zigzag-encoded signed delta from the
//	                              previous record's address; first record
//	                              is a delta from address 0)
//	trailer  0x00                (terminator; impossible as a record head)
//	         uvarint count       (number of records, as an integrity check)
//
// Consecutive accesses tend to be near one another in the address space, so
// the zigzag deltas keep most records to two or three bytes versus MTR1's
// fixed ten. More importantly the format streams: the decoder needs no
// record count up front and holds O(1) state, and every truncation is
// detectable without seeking — cutting the stream mid-varint leaves a byte
// with the continuation bit set and no successor, cutting between records
// removes the terminator/count trailer, and both cases surface as
// ErrTruncated.
//
// The version-1 format (fixed-width records behind an up-front count, see
// trace.go) remains readable: Decoder and FileSource accept any of the
// three magics. Version 3 ("MTR3", see index.go) keeps this record stream
// byte for byte and appends a segment index + footer after the trailer, so
// segments can be decoded independently and in parallel; the sequential
// decoder here reads v3 exactly like v2 and then validates the index
// structurally.

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"migratory/internal/memory"
)

var magic2 = [4]byte{'M', 'T', 'R', '2'}

// ErrTruncated is wrapped by decode errors caused by an input that ends
// before the trace's trailer, e.g. a partially copied file.
var ErrTruncated = errors.New("trace: truncated trace file")

// ErrCorrupt is wrapped by decode errors caused by structurally invalid
// input: overlong varints, impossible node numbers, a record count that
// disagrees with the trailer, or trailing garbage.
var ErrCorrupt = errors.New("trace: corrupt trace file")

// Header carries the trace geometry recorded in an MTR2 file. Zero fields
// mean the writer did not specify them; version-1 files always decode to a
// zero Header.
type Header struct {
	BlockSize int // block size in bytes, 0 if unspecified
	PageSize  int // page size in bytes, 0 if unspecified
	Nodes     int // number of nodes, 0 if unspecified
}

// Geometry returns the header's block/page geometry, if fully specified
// and valid.
func (h Header) Geometry() (memory.Geometry, bool) {
	if h.BlockSize == 0 || h.PageSize == 0 {
		return memory.Geometry{}, false
	}
	g, err := memory.NewGeometry(h.BlockSize, h.PageSize)
	if err != nil {
		return memory.Geometry{}, false
	}
	return g, true
}

// WriterOptions selects the output format of a Writer.
type WriterOptions struct {
	// Version is the trace format version: 0 (the latest, currently 3), 2,
	// or 3. Version 2 omits the segment index, for readers predating it.
	Version int
	// SegmentBytes is the target encoded size of one segment (0 =
	// DefaultSegmentBytes). Version 3 only. Segments close at the first
	// record boundary at or past the target, so a segment can exceed it by
	// one record's encoding.
	SegmentBytes int
}

// Writer encodes accesses to the MTR3 format (or MTR2 on request). Close
// must be called to emit the trailer — and, for v3, the segment index and
// footer; a stream without them reads back as ErrTruncated.
type Writer struct {
	bw     *bufio.Writer
	hdr    Header
	prev   memory.Addr
	count  uint64
	err    error
	closed bool

	// v3 segmenting state. off tracks the file offset of every emitted
	// byte; while inSeg, record bytes also feed the running segment CRC.
	version  int
	segBytes int64
	off      int64
	inSeg    bool
	seg      Segment
	crc      uint32
	segs     []Segment
}

// NewWriter returns a Writer emitting to w in the latest format version
// with default segmenting. The header is written immediately. Header
// fields may be zero (unspecified), but a negative field or a Nodes beyond
// memory.MaxNodes is rejected at the first Write.
func NewWriter(w io.Writer, hdr Header) *Writer {
	return NewWriterOptions(w, hdr, WriterOptions{})
}

// NewWriterOptions is NewWriter with an explicit format version and
// segment target (the tracegen -mtr-version escape hatch).
func NewWriterOptions(w io.Writer, hdr Header, opts WriterOptions) *Writer {
	tw := &Writer{bw: bufio.NewWriter(w), hdr: hdr}
	switch opts.Version {
	case 0, 3:
		tw.version = 3
	case 2:
		tw.version = 2
	default:
		tw.err = fmt.Errorf("trace: unsupported writer format version %d (want 2 or 3)", opts.Version)
		return tw
	}
	tw.segBytes = int64(opts.SegmentBytes)
	if tw.segBytes <= 0 {
		tw.segBytes = DefaultSegmentBytes
	}
	if hdr.BlockSize < 0 || hdr.PageSize < 0 || hdr.Nodes < 0 || hdr.Nodes > memory.MaxNodes {
		tw.err = fmt.Errorf("trace: invalid header %+v", hdr)
		return tw
	}
	m := magic2
	if tw.version == 3 {
		m = magic3
	}
	tw.emit(m[:])
	tw.putUvarint(uint64(hdr.BlockSize))
	tw.putUvarint(uint64(hdr.PageSize))
	tw.putUvarint(uint64(hdr.Nodes))
	return tw
}

// emit writes p, advancing the offset tracker and, inside a segment, the
// segment CRC.
func (w *Writer) emit(p []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.bw.Write(p); err != nil {
		w.err = err
		return
	}
	w.off += int64(len(p))
	if w.inSeg {
		w.crc = crc32.Update(w.crc, crc32.IEEETable, p)
	}
}

func (w *Writer) putUvarint(v uint64) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	w.emit(buf[:n])
}

// closeSegment finishes the in-progress segment and files its index entry.
func (w *Writer) closeSegment() {
	if !w.inSeg {
		return
	}
	w.seg.Len = w.off - w.seg.Off
	w.seg.CRC = w.crc
	w.segs = append(w.segs, w.seg)
	w.inSeg = false
}

// Write appends one access to the stream.
func (w *Writer) Write(a Access) error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		w.err = errors.New("trace: Write after Close")
		return w.err
	}
	if a.Kind > Write {
		w.err = fmt.Errorf("trace: cannot encode access with kind %v", a.Kind)
		return w.err
	}
	if w.hdr.Nodes > 0 && int(a.Node) >= w.hdr.Nodes {
		w.err = fmt.Errorf("trace: access node %d outside header node count %d", a.Node, w.hdr.Nodes)
		return w.err
	}
	if w.version == 3 && !w.inSeg {
		// Open a segment at the current record boundary. StartAddr is the
		// running delta base, so an indexed reader can decode the segment
		// without replaying anything before it.
		w.seg = Segment{Off: w.off, StartAddr: w.prev, StartIndex: w.count}
		w.crc = 0
		w.inSeg = true
	}
	w.putUvarint((uint64(a.Node)<<1 | uint64(a.Kind)) + 1)
	delta := int64(a.Addr) - int64(w.prev)
	w.putUvarint(uint64(delta<<1) ^ uint64(delta>>63)) // zigzag
	w.prev = a.Addr
	w.count++
	if w.inSeg {
		w.seg.Count++
		if w.off-w.seg.Off >= w.segBytes {
			w.closeSegment()
		}
	}
	return w.err
}

// Close writes the trailer — and, for v3, the segment index and footer —
// then flushes. It does not close the underlying io.Writer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.closed {
		return nil
	}
	w.closed = true
	w.closeSegment()
	w.emit([]byte{0})
	w.putUvarint(w.count)
	if w.version == 3 {
		indexOff := w.off
		body := make([]byte, 0, 16+len(w.segs)*5*binary.MaxVarintLen64/2)
		body = binary.AppendUvarint(body, uint64(len(w.segs)))
		for _, s := range w.segs {
			body = binary.AppendUvarint(body, uint64(s.Off))
			body = binary.AppendUvarint(body, uint64(s.Len))
			body = binary.AppendUvarint(body, s.Count)
			body = binary.AppendUvarint(body, uint64(s.StartAddr))
			body = binary.AppendUvarint(body, uint64(s.CRC))
		}
		w.emit(body)
		var foot [footerSize]byte
		binary.LittleEndian.PutUint64(foot[0:8], uint64(indexOff))
		binary.LittleEndian.PutUint32(foot[8:12], crc32.ChecksumIEEE(body))
		copy(foot[12:16], footerMagic[:])
		w.emit(foot[:])
	}
	if w.err != nil {
		return w.err
	}
	w.err = w.bw.Flush()
	return w.err
}

// Copy streams every access from r into w and returns the number copied.
// It does not Close the Writer; the caller decides when the trailer goes
// out.
func Copy(w *Writer, r Reader) (int, error) {
	n := 0
	for {
		a, err := r.Next()
		if errors.Is(err, io.EOF) {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		if err := w.Write(a); err != nil {
			return n, err
		}
		n++
	}
}

// Decoder streams accesses out of a binary trace (MTR3, MTR2, or the
// legacy MTR1 format) with O(1) record-decode state. MTR3 input decodes
// sequentially here — the segment index after the trailer is validated
// structurally, then discarded; IndexedFileSource is the reader that puts
// it to work.
type Decoder struct {
	br        *bufio.Reader
	hdr       Header
	legacy    bool   // MTR1 input
	indexed   bool   // MTR3 input: a segment index follows the trailer
	idxOK     bool   // MTR3 index already validated once on this stream
	remaining uint64 // MTR1: records left
	prev      memory.Addr
	count     uint64
	done      bool
}

// NewDecoder reads the magic and header from r and returns a Decoder
// positioned at the first record.
func NewDecoder(r io.Reader) (*Decoder, error) {
	d := &Decoder{br: bufio.NewReader(r)}
	if err := d.init(); err != nil {
		return nil, err
	}
	return d, nil
}

// init reads the magic and header and resets all per-stream decode state.
// It is called both by NewDecoder and when a FileSource rewinds, so a Reset
// reuses the Decoder and its bufio buffer instead of reallocating them.
func (d *Decoder) init() error {
	// Peek/Discard instead of ReadFull into a local: the local would escape
	// through the io.Reader interface, costing one allocation per Reset.
	win, err := d.br.Peek(4)
	if err != nil {
		return fmt.Errorf("trace: reading magic: %w", coalesceEOF(err))
	}
	var m [4]byte
	copy(m[:], win)
	d.br.Discard(4)
	d.hdr = Header{}
	d.legacy = false
	d.indexed = false
	d.remaining = 0
	d.prev = 0
	d.count = 0
	d.done = false
	switch m {
	case magic2, magic3:
		d.indexed = m == magic3
		bs, err := d.uvarint("header block size")
		if err != nil {
			return err
		}
		ps, err := d.uvarint("header page size")
		if err != nil {
			return err
		}
		nodes, err := d.uvarint("header node count")
		if err != nil {
			return err
		}
		const maxGeom = 1 << 30
		if bs > maxGeom || ps > maxGeom || nodes > memory.MaxNodes {
			return fmt.Errorf("trace: implausible header (block %d, page %d, nodes %d): %w", bs, ps, nodes, ErrCorrupt)
		}
		d.hdr = Header{BlockSize: int(bs), PageSize: int(ps), Nodes: int(nodes)}
	case magic:
		d.legacy = true
		hdr, err := d.br.Peek(8)
		if err != nil {
			return fmt.Errorf("trace: reading count: %w", coalesceEOF(err))
		}
		d.remaining = binary.LittleEndian.Uint64(hdr)
		d.br.Discard(8)
		const sanityMax = 1 << 32
		if d.remaining > sanityMax {
			return fmt.Errorf("trace: implausible record count %d: %w", d.remaining, ErrCorrupt)
		}
	default:
		return ErrBadMagic
	}
	return nil
}

// coalesceEOF folds the two flavors of premature end-of-input into
// ErrTruncated; other errors pass through.
func coalesceEOF(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return err
}

func (d *Decoder) uvarint(what string) (uint64, error) {
	v, err := binary.ReadUvarint(d.br)
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, fmt.Errorf("trace: reading %s: %w", what, coalesceEOF(err))
		}
		return 0, fmt.Errorf("trace: reading %s: %w: %v", what, ErrCorrupt, err)
	}
	return v, nil
}

// Header returns the geometry header (zero for legacy MTR1 input).
func (d *Decoder) Header() Header { return d.hdr }

// recordErr wraps a varint read failure with the record position it
// happened at. Building the context string only here keeps fmt.Sprintf off
// the per-record success path.
func (d *Decoder) recordErr(what string, err error) error {
	what = fmt.Sprintf("record %d %s", d.count, what)
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("trace: reading %s: %w", what, coalesceEOF(err))
	}
	return fmt.Errorf("trace: reading %s: %w: %v", what, ErrCorrupt, err)
}

// finishTrailer validates the count trailer after the 0x00 terminator and
// demands a clean EOF — except for MTR3 input, where the segment index and
// footer legitimately follow and are validated instead. On success it
// marks the decoder done.
func (d *Decoder) finishTrailer() error {
	n, err := d.uvarint("trailer count")
	if err != nil {
		return err
	}
	if n != d.count {
		return fmt.Errorf("trace: trailer count %d != %d records decoded: %w", n, d.count, ErrCorrupt)
	}
	if d.indexed {
		if err := d.finishIndex(); err != nil {
			return err
		}
		d.done = true
		return nil
	}
	if _, err := d.br.ReadByte(); err == nil {
		return fmt.Errorf("trace: trailing bytes after trailer: %w", ErrCorrupt)
	} else if !errors.Is(err, io.EOF) {
		return err
	}
	d.done = true
	return nil
}

// finishIndex consumes and validates the MTR3 segment index and footer
// that trail the record stream, so a sequential decode of a v3 file keeps
// the "every truncation or corruption is detected" property end to end.
// The stream gives no random access, so the validation is structural: the
// footer magic and index CRC must check out, the entries must parse, tile
// the record region for this header, and sum to the count just verified.
//
// The validation result is sticky: when a FileSource resets and replays the
// same bytes, later passes discard the tail without re-parsing it, keeping
// the steady-state Reset+drain loop allocation-free.
func (d *Decoder) finishIndex() error {
	if d.idxOK {
		if _, err := io.Copy(io.Discard, d.br); err != nil {
			return fmt.Errorf("trace: reading segment index: %w", err)
		}
		return nil
	}
	rest, err := io.ReadAll(io.LimitReader(d.br, maxIndexBytes+1))
	if err != nil {
		return fmt.Errorf("trace: reading segment index: %w", err)
	}
	if len(rest) > maxIndexBytes {
		return fmt.Errorf("trace: implausible %d-byte segment index: %w", len(rest), ErrCorrupt)
	}
	if len(rest) < footerSize+1 {
		return fmt.Errorf("trace: %d bytes after trailer (want segment index + footer): %w", len(rest), ErrTruncated)
	}
	foot := rest[len(rest)-footerSize:]
	if *(*[4]byte)(foot[12:16]) != footerMagic {
		// A footer magic somewhere inside the tail but not at the very end
		// means the writer finished and something appended bytes after it;
		// no magic at all means the file was cut mid-index.
		if i := bytes.LastIndex(rest, footerMagic[:]); i >= 0 {
			return fmt.Errorf("trace: %d trailing bytes after MTR3 footer: %w", len(rest)-i-len(footerMagic), ErrCorrupt)
		}
		return fmt.Errorf("trace: missing MTR3 footer magic (file cut before the index was written): %w", ErrTruncated)
	}
	body := rest[:len(rest)-footerSize]
	if got, want := crc32.ChecksumIEEE(body), binary.LittleEndian.Uint32(foot[8:12]); got != want {
		return fmt.Errorf("trace: segment index crc %#x != footer %#x: %w", got, want, ErrCorrupt)
	}
	indexOff := binary.LittleEndian.Uint64(foot[0:8])
	if indexOff > 1<<62 {
		return fmt.Errorf("trace: footer index offset %#x out of range: %w", indexOff, ErrCorrupt)
	}
	_, total, err := parseIndexEntries(body, d.hdr.headerEnd(), int64(indexOff))
	if err != nil {
		return err
	}
	if total != d.count {
		return fmt.Errorf("trace: segment index total %d != %d records decoded: %w", total, d.count, ErrCorrupt)
	}
	d.idxOK = true
	return nil
}

// Next returns the next access, or io.EOF after the final one. Any other
// error wraps ErrTruncated or ErrCorrupt.
func (d *Decoder) Next() (Access, error) {
	if d.done {
		return Access{}, io.EOF
	}
	if d.legacy {
		return d.nextLegacy()
	}
	head, err := binary.ReadUvarint(d.br)
	if err != nil {
		return Access{}, d.recordErr("head", err)
	}
	if head == 0 {
		if err := d.finishTrailer(); err != nil {
			return Access{}, err
		}
		return Access{}, io.EOF
	}
	kn := head - 1
	node := kn >> 1
	if node > 0xFF || (d.hdr.Nodes > 0 && node >= uint64(d.hdr.Nodes)) {
		return Access{}, fmt.Errorf("trace: record %d has impossible node %d: %w", d.count, node, ErrCorrupt)
	}
	enc, err := binary.ReadUvarint(d.br)
	if err != nil {
		return Access{}, d.recordErr("address", err)
	}
	delta := int64(enc>>1) ^ -int64(enc&1) // un-zigzag
	addr := memory.Addr(int64(d.prev) + delta)
	d.prev = addr
	d.count++
	return Access{Node: memory.NodeID(node), Kind: Kind(kn & 1), Addr: addr}, nil
}

// DecodeBatch fills buf with up to len(buf) accesses, implementing the
// BatchReader contract. The hot path decodes varints straight out of the
// bufio window via Peek/Discard — no per-byte io.ByteReader calls and no
// per-record error-context formatting — and falls back to Next only to
// cross a buffer refill boundary.
func (d *Decoder) DecodeBatch(buf []Access) (int, error) {
	if d.done {
		return 0, io.EOF
	}
	n := 0
	if d.legacy {
		for n < len(buf) {
			a, err := d.nextLegacy()
			if err != nil {
				return n, err
			}
			buf[n] = a
			n++
		}
		return n, nil
	}
	// A record is two varints of at most MaxVarintLen64 bytes each; as long
	// as that many bytes are buffered, both decode without boundary checks.
	// Peeking the whole buffered window (not just one record's worth)
	// amortizes the Peek/Discard bookkeeping over the hundreds of records a
	// bufio buffer holds, leaving two varint decodes per record.
	const maxRec = 2 * binary.MaxVarintLen64
	prev := d.prev
	for n < len(buf) {
		avail := d.br.Buffered()
		if avail < maxRec {
			if win, _ := d.br.Peek(maxRec); len(win) < maxRec {
				// Near a refill or the end of input: take the careful path.
				d.prev = prev
				a, err := d.Next()
				if err != nil {
					return n, err
				}
				prev = d.prev
				buf[n] = a
				n++
				continue
			}
			avail = d.br.Buffered()
		}
		win, _ := d.br.Peek(avail)
		off := 0
		for n < len(buf) && off+maxRec <= len(win) {
			// Single-byte varints dominate (heads fit one byte for up to 127
			// nodes, and delta-encoded addresses are usually small), so check
			// the continuation bit inline before calling binary.Uvarint.
			var head uint64
			var hn int
			if b := win[off]; b < 0x80 {
				head, hn = uint64(b), 1
			} else if head, hn = binary.Uvarint(win[off:]); hn <= 0 {
				d.br.Discard(off)
				d.prev = prev
				return n, d.recordErr("head", errors.New("overlong varint"))
			}
			if head == 0 {
				d.br.Discard(off + hn)
				d.prev = prev
				if err := d.finishTrailer(); err != nil {
					return n, err
				}
				return n, io.EOF
			}
			kn := head - 1
			node := kn >> 1
			if node > 0xFF || (d.hdr.Nodes > 0 && node >= uint64(d.hdr.Nodes)) {
				d.br.Discard(off)
				d.prev = prev
				return n, fmt.Errorf("trace: record %d has impossible node %d: %w", d.count, node, ErrCorrupt)
			}
			var enc uint64
			var en int
			if b := win[off+hn]; b < 0x80 {
				enc, en = uint64(b), 1
			} else if enc, en = binary.Uvarint(win[off+hn:]); en <= 0 {
				d.br.Discard(off)
				d.prev = prev
				return n, d.recordErr("address", errors.New("overlong varint"))
			}
			delta := int64(enc>>1) ^ -int64(enc&1) // un-zigzag
			addr := memory.Addr(int64(prev) + delta)
			prev = addr
			buf[n] = Access{Node: memory.NodeID(node), Kind: Kind(kn & 1), Addr: addr}
			n++
			d.count++
			off += hn + en
		}
		d.br.Discard(off)
	}
	d.prev = prev
	return n, nil
}

func (d *Decoder) nextLegacy() (Access, error) {
	if d.remaining == 0 {
		d.done = true
		return Access{}, io.EOF
	}
	var rec [recordSize]byte
	if _, err := io.ReadFull(d.br, rec[:]); err != nil {
		return Access{}, fmt.Errorf("trace: reading record %d: %w", d.count, coalesceEOF(err))
	}
	d.remaining--
	d.count++
	return Access{
		Node: memory.NodeID(rec[0]),
		Kind: Kind(rec[1]),
		Addr: memory.Addr(binary.LittleEndian.Uint64(rec[2:])),
	}, nil
}

// FileSource is a Source decoding a binary trace (MTR1, MTR2, or MTR3 —
// the latter sequentially, ignoring its segment index) from a seekable
// stream, typically a file. Reset seeks back to the start and re-reads the
// header, so the two-pass placement/simulation workflow works without ever
// materializing the trace. For parallel segment decode of MTR3 files, see
// IndexedFileSource and OpenFileParallel.
type FileSource struct {
	r      io.ReadSeeker
	dec    *Decoder
	closer io.Closer // non-nil when OpenFile owns the descriptor
}

// OpenFile opens path as a FileSource. The caller must Close it.
func OpenFile(path string) (*FileSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	src, err := NewFileSource(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	src.closer = f
	return src, nil
}

// NewFileSource wraps an existing seekable stream. The stream must be
// positioned at the start of the trace; Close does not close it.
func NewFileSource(r io.ReadSeeker) (*FileSource, error) {
	dec, err := NewDecoder(r)
	if err != nil {
		return nil, err
	}
	return &FileSource{r: r, dec: dec}, nil
}

// Header returns the geometry header (zero for legacy MTR1 files).
func (s *FileSource) Header() Header { return s.dec.Header() }

// Next implements Source.
func (s *FileSource) Next() (Access, error) { return s.dec.Next() }

// NextBatch implements BatchReader via Decoder.DecodeBatch.
func (s *FileSource) NextBatch(buf []Access) (int, error) { return s.dec.DecodeBatch(buf) }

// Reset implements Source by seeking back to the start of the stream. The
// Decoder and its buffer are reused across Resets, so the two-pass
// placement/simulation workflow allocates no per-pass decode state.
func (s *FileSource) Reset() error {
	if _, err := s.r.Seek(0, io.SeekStart); err != nil {
		return err
	}
	s.dec.br.Reset(s.r)
	return s.dec.init()
}

// Close implements Source, closing the underlying file when the source was
// created by OpenFile.
func (s *FileSource) Close() error {
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}
