package trace

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"testing"

	"migratory/internal/memory"
)

// demuxTrace builds a deterministic access stream spread over many blocks.
func demuxTrace(n int) []Access {
	accs := make([]Access, n)
	for i := range accs {
		accs[i] = Access{
			Node: memory.NodeID(i % 16),
			Kind: Kind(i % 2),
			Addr: memory.Addr((i * 7919) % 4096 * 16),
		}
	}
	return accs
}

func TestDemuxPartitionsAndPreservesOrder(t *testing.T) {
	const shards = 4
	accs := demuxTrace(3*DefaultBatchSize + 57)
	route := func(a Access) int { return int(a.Addr/16) % shards }

	got := make([][]Access, shards)
	steps := make([][]uint64, shards)
	err := Demux(nil, NewSliceSource(accs), shards, true, route,
		func(shard int, b ShardBatch) error {
			got[shard] = append(got[shard], b.Accs...)
			steps[shard] = append(steps[shard], b.Steps...)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}

	total := 0
	for s := 0; s < shards; s++ {
		total += len(got[s])
		if len(got[s]) != len(steps[s]) {
			t.Fatalf("shard %d: %d accesses but %d steps", s, len(got[s]), len(steps[s]))
		}
		prev := -1
		for i, a := range got[s] {
			if route(a) != s {
				t.Fatalf("shard %d: access %v routed to shard %d", s, a, route(a))
			}
			st := int(steps[s][i])
			if st <= prev {
				t.Fatalf("shard %d: steps not increasing (%d after %d)", s, st, prev)
			}
			prev = st
			if accs[st] != a {
				t.Fatalf("shard %d: step %d carries %v, trace has %v", s, st, a, accs[st])
			}
		}
	}
	if total != len(accs) {
		t.Fatalf("demux delivered %d of %d accesses", total, len(accs))
	}
}

func TestDemuxWithoutSteps(t *testing.T) {
	const shards = 2
	accs := demuxTrace(2 * DefaultBatchSize)
	route := func(a Access) int { return int(a.Addr/16) % shards }
	want := make([][]Access, shards)
	for _, a := range accs {
		s := route(a)
		want[s] = append(want[s], a)
	}

	got := make([][]Access, shards)
	err := Demux(nil, NewSliceSource(accs), shards, false, route,
		func(shard int, b ShardBatch) error {
			if b.Steps != nil {
				return errors.New("unexpected step array")
			}
			got[shard] = append(got[shard], b.Accs...)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for s := range want {
		if len(got[s]) != len(want[s]) {
			t.Fatalf("shard %d: got %d accesses, want %d", s, len(got[s]), len(want[s]))
		}
		for i := range want[s] {
			if got[s][i] != want[s][i] {
				t.Fatalf("shard %d access %d: got %v, want %v", s, i, got[s][i], want[s][i])
			}
		}
	}
}

func TestDemuxBadShardCount(t *testing.T) {
	err := Demux(nil, NewSliceSource(nil), 0, false,
		func(Access) int { return 0 },
		func(int, ShardBatch) error { return nil })
	if err == nil {
		t.Fatal("demux accepted 0 shards")
	}
}

func TestDemuxConsumeError(t *testing.T) {
	accs := demuxTrace(4 * DefaultBatchSize)
	boom := errors.New("boom")
	err := Demux(nil, NewSliceSource(accs), 2, false,
		func(a Access) int { return int(a.Addr/16) % 2 },
		func(shard int, b ShardBatch) error {
			if shard == 1 {
				return boom
			}
			return nil
		})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want %v", err, boom)
	}
}

func TestDemuxContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Demux(ctx, NewSliceSource(demuxTrace(8*DefaultBatchSize)), 2, false,
		func(a Access) int { return int(a.Addr/16) % 2 },
		func(int, ShardBatch) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// failAfter yields n accesses, then a permanent non-EOF error.
type failAfter struct {
	n    int
	read int
	err  error
}

func (f *failAfter) Next() (Access, error) {
	if f.read >= f.n {
		return Access{}, f.err
	}
	f.read++
	return Access{Addr: memory.Addr(f.read * 16)}, nil
}
func (f *failAfter) Reset() error { f.read = 0; return nil }
func (f *failAfter) Close() error { return nil }

func TestDemuxSourceError(t *testing.T) {
	srcErr := fmt.Errorf("decode failed")
	src := &failAfter{n: DefaultBatchSize / 2, err: srcErr}
	var seen atomic.Int64
	err := Demux(nil, src, 2, false,
		func(a Access) int { return int(a.Addr/16) % 2 },
		func(_ int, b ShardBatch) error { seen.Add(int64(len(b.Accs))); return nil })
	if !errors.Is(err, srcErr) {
		t.Fatalf("got %v, want %v", err, srcErr)
	}
	if seen.Load() != DefaultBatchSize/2 {
		t.Fatalf("consumers saw %d accesses before the error, want %d", seen.Load(), DefaultBatchSize/2)
	}
}

func TestPutBatchClampsOversizedBuffers(t *testing.T) {
	// Caller-grown buffers go back to the pool clamped to the uniform
	// capacity; undersized ones are dropped. Either way every GetBatch
	// hands out exactly DefaultBatchSize capacity.
	PutBatch(make([]Access, 0, 3*DefaultBatchSize))
	PutBatch(make([]Access, 10, DefaultBatchSize/2))
	for i := 0; i < 8; i++ {
		buf := GetBatch()
		if cap(buf) != DefaultBatchSize || len(buf) != DefaultBatchSize {
			t.Fatalf("GetBatch returned len %d cap %d, want %d/%d",
				len(buf), cap(buf), DefaultBatchSize, DefaultBatchSize)
		}
		PutBatch(buf)
	}
}

func TestPrefetchSourceMatchesPlain(t *testing.T) {
	accs := demuxTrace(2*DefaultBatchSize + 123)
	p := NewPrefetchSource(NewSliceSource(accs))
	defer p.Close()
	got, err := ReadAll(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(accs) {
		t.Fatalf("prefetch read %d accesses, want %d", len(got), len(accs))
	}
	for i := range accs {
		if got[i] != accs[i] {
			t.Fatalf("access %d: got %v, want %v", i, got[i], accs[i])
		}
	}
	// The stream stays terminal after EOF.
	if _, err := p.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("Next after EOF: %v, want io.EOF", err)
	}
}

func TestPrefetchSourceReset(t *testing.T) {
	accs := demuxTrace(DefaultBatchSize + 17)
	p := NewPrefetchSource(NewSliceSource(accs))
	defer p.Close()
	for _, drained := range []int{3, len(accs), DefaultBatchSize} {
		for i := 0; i < drained && i < len(accs); i++ {
			if _, err := p.Next(); err != nil {
				t.Fatal(err)
			}
		}
		if err := p.Reset(); err != nil {
			t.Fatal(err)
		}
		got, err := ReadAll(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(accs) {
			t.Fatalf("after Reset: read %d accesses, want %d", len(got), len(accs))
		}
		if err := p.Reset(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPrefetchSourceClose(t *testing.T) {
	p := NewPrefetchSource(NewSliceSource(demuxTrace(4 * DefaultBatchSize)))
	if _, err := p.Next(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("Next after Close: %v, want io.EOF", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err) // idempotent
	}
}

func TestPrefetchSourcePropagatesError(t *testing.T) {
	srcErr := errors.New("short read")
	p := NewPrefetchSource(&failAfter{n: 5, err: srcErr})
	defer p.Close()
	n := 0
	for {
		_, err := p.Next()
		if err != nil {
			if !errors.Is(err, srcErr) {
				t.Fatalf("got %v, want %v", err, srcErr)
			}
			break
		}
		n++
	}
	if n != 5 {
		t.Fatalf("delivered %d accesses before the error, want 5", n)
	}
}
