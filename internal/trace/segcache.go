package trace

import (
	"sync"
	"sync/atomic"

	"migratory/internal/telemetry"
)

// DefaultTraceCacheBytes is the default capacity of the process-wide
// decoded-segment cache behind -trace-cache-bytes (~256 MB). 0 disables
// the cache entirely.
const DefaultTraceCacheBytes = 256 << 20

// accessFootprint is the heap footprint one decoded Access contributes to
// the cache budget (Access is a 16-byte struct; slab bookkeeping is noise
// next to the data).
const accessFootprint = 16

// FileID identifies one on-disk trace file instance for cache keying:
// device and inode pin the file object, size and mtime pin its content
// generation, so a rewritten or truncated trace can never serve segments
// decoded from its previous bytes. On platforms without dev/ino the Ino
// field carries a hash of the absolute path instead (see fileid_other.go).
type FileID struct {
	Dev     uint64
	Ino     uint64
	Size    int64
	MTimeNs int64
}

// segCacheKey is one decoded segment's cache identity.
type segCacheKey struct {
	file FileID
	seg  int
}

// segCacheEntry is one (possibly still decoding) cached segment. refs
// counts in-flight pins; an entry is LRU-linked only while evictable
// (decoded, refs == 0).
type segCacheEntry struct {
	key   segCacheKey
	accs  []Access
	bytes int64
	err   error
	ready chan struct{} // closed when decode finishes (accs or err set)
	done  bool          // decode finished (guarded by cache mu)
	refs  int           // in-flight pins (guarded by cache mu)

	prev, next *segCacheEntry // LRU links, valid while evictable
}

// SegmentCache is a process-wide, memory-bounded, ref-counted LRU of
// decoded .mtr (v3) segments, shared across every sweep cell, shard
// consumer, and cohd request that replays the same trace file: the first
// acquisition of a segment decodes it once, and every later acquisition —
// concurrent (single-flight) or subsequent (resident) — shares the same
// immutable []Access slab.
//
// Consumers acquire a segment with Acquire and release the returned pin
// when done; pinned segments are never evicted or mutated, so replay stays
// bit-identical to an uncached decode. Unpinned segments age out
// least-recently-used once resident bytes exceed the configured capacity;
// an evicted segment simply decodes again on next use.
//
// All methods are safe for concurrent use. A nil *SegmentCache is a valid
// always-miss cache: attachment points treat it as "caching off".
type SegmentCache struct {
	capBytes int64

	mu       sync.Mutex
	entries  map[segCacheKey]*segCacheEntry
	lruHead  *segCacheEntry // most recently released
	lruTail  *segCacheEntry // eviction candidate
	resident int64
	pinned   int64
	peak     int64

	hits       atomic.Uint64
	misses     atomic.Uint64
	joins      atomic.Uint64
	evictions  atomic.Uint64
	evictedByt atomic.Uint64
}

// NewSegmentCache builds a cache bounded at capBytes of decoded accesses.
// capBytes <= 0 returns nil — the disabled cache every attachment point
// treats as "decode as before".
func NewSegmentCache(capBytes int64) *SegmentCache {
	if capBytes <= 0 {
		return nil
	}
	return &SegmentCache{
		capBytes: capBytes,
		entries:  make(map[segCacheKey]*segCacheEntry),
	}
}

// PinnedSegment is one acquired segment: an immutable decoded slab the
// holder may read until Release. Neither the slab nor its subslices may be
// mutated or returned to the batch pools.
type PinnedSegment struct {
	c    *SegmentCache
	e    *segCacheEntry
	once sync.Once
}

// Accesses returns the decoded segment. The slice is shared and immutable;
// it is valid until Release.
func (p *PinnedSegment) Accesses() []Access { return p.e.accs }

// Release drops the pin. Idempotent. After the last pin drops the segment
// becomes evictable (most-recently-used first).
func (p *PinnedSegment) Release() {
	p.once.Do(func() { p.c.release(p.e) })
}

// Acquire returns a pin on the decoded segment (id, seg), decoding via
// decode when it is not resident. Concurrent acquirers of the same segment
// share one decode (single-flight); a decode error is returned to every
// waiter and nothing is cached. The caller must Release the pin.
func (c *SegmentCache) Acquire(id FileID, seg int, decode func() ([]Access, error)) (*PinnedSegment, error) {
	key := segCacheKey{file: id, seg: seg}
	c.mu.Lock()
	if e := c.entries[key]; e != nil {
		joined := !e.done
		c.pinLocked(e)
		c.mu.Unlock()
		<-e.ready
		if e.err != nil {
			// The decode owner already uncached the entry; just drop the ref.
			c.release(e)
			return nil, e.err
		}
		c.hits.Add(1)
		if joined {
			c.joins.Add(1)
		}
		return &PinnedSegment{c: c, e: e}, nil
	}

	e := &segCacheEntry{key: key, refs: 1, ready: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.Add(1)

	accs, err := decode()
	c.mu.Lock()
	if err != nil {
		e.err = err
		// Failed decodes are not cached: unmap so the next acquirer retries.
		if c.entries[key] == e {
			delete(c.entries, key)
		}
		close(e.ready)
		c.mu.Unlock()
		return nil, err
	}
	e.accs = accs
	e.bytes = int64(len(accs)) * accessFootprint
	e.done = true
	c.resident += e.bytes
	c.pinned += e.bytes
	if c.pinned > c.peak {
		c.peak = c.pinned
	}
	close(e.ready)
	c.evictLocked()
	c.mu.Unlock()
	return &PinnedSegment{c: c, e: e}, nil
}

// pinLocked takes one reference on e, unlinking it from the LRU when it
// was evictable.
func (c *SegmentCache) pinLocked(e *segCacheEntry) {
	if e.refs == 0 && e.done {
		c.lruUnlink(e)
		c.pinned += e.bytes
		if c.pinned > c.peak {
			c.peak = c.pinned
		}
	}
	e.refs++
}

// release drops one reference; the last drop makes a resident entry
// evictable at the most-recently-used end and trims to capacity.
func (c *SegmentCache) release(e *segCacheEntry) {
	c.mu.Lock()
	e.refs--
	if e.refs == 0 && e.done && c.entries[e.key] == e {
		c.pinned -= e.bytes
		c.lruPushFront(e)
		c.evictLocked()
	}
	c.mu.Unlock()
}

// evictLocked drops least-recently-used unpinned entries until resident
// bytes fit the capacity. Pinned entries are untouchable, so a burst of
// concurrent pins may transiently exceed the budget; it drains as pins
// release.
func (c *SegmentCache) evictLocked() {
	for c.resident > c.capBytes && c.lruTail != nil {
		e := c.lruTail
		c.lruUnlink(e)
		delete(c.entries, e.key)
		c.resident -= e.bytes
		c.evictions.Add(1)
		c.evictedByt.Add(uint64(e.bytes))
	}
}

func (c *SegmentCache) lruPushFront(e *segCacheEntry) {
	e.prev = nil
	e.next = c.lruHead
	if c.lruHead != nil {
		c.lruHead.prev = e
	}
	c.lruHead = e
	if c.lruTail == nil {
		c.lruTail = e
	}
}

func (c *SegmentCache) lruUnlink(e *segCacheEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.lruHead == e {
		c.lruHead = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.lruTail == e {
		c.lruTail = e.prev
	}
	e.prev, e.next = nil, nil
}

// Stats returns the cache observation the telemetry plane publishes
// (Sample.Cache, run manifests, /metrics). Nil-receiver safe: a disabled
// cache reports all zeros.
func (c *SegmentCache) Stats() telemetry.CacheStats {
	if c == nil {
		return telemetry.CacheStats{}
	}
	c.mu.Lock()
	cs := telemetry.CacheStats{
		CapBytes:        c.capBytes,
		ResidentBytes:   c.resident,
		PinnedBytes:     c.pinned,
		PeakPinnedBytes: c.peak,
		Entries:         len(c.entries),
	}
	c.mu.Unlock()
	cs.Hits = c.hits.Load()
	cs.Misses = c.misses.Load()
	cs.SingleFlightJoins = c.joins.Load()
	cs.Evictions = c.evictions.Load()
	cs.EvictedBytes = c.evictedByt.Load()
	return cs
}
