package workload

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"migratory/internal/memory"
	"migratory/internal/trace"
)

var geom = memory.MustGeometry(16, 4096)

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		Migratory:        "migratory",
		ReadShared:       "read-shared",
		ProducerConsumer: "producer-consumer",
		MostlyPrivate:    "mostly-private",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q", uint8(k), k.String())
		}
	}
	if !strings.Contains(Kind(9).String(), "9") {
		t.Error("unknown kind string")
	}
}

func TestSegmentValidate(t *testing.T) {
	ok := Segment{Name: "x", Kind: Migratory, Objects: 10, ObjWords: 4, Weight: 1}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid segment rejected: %v", err)
	}
	bad := []Segment{
		{Name: "x", Objects: 0, ObjWords: 4, Weight: 1},
		{Name: "x", Objects: 10, ObjWords: 0, Weight: 1},
		{Name: "x", Objects: 10, ObjWords: 4, Weight: 0},
		{Name: "x", Objects: 10, ObjWords: 4, StrideBytes: 8, Weight: 1}, // stride < size
		{Name: "x", Kind: Kind(9), Objects: 10, ObjWords: 4, Weight: 1},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("bad segment %d accepted", i)
		}
	}
}

func TestProfileValidateAndFootprints(t *testing.T) {
	// The built-in profiles must match the paper's §3.1 footprints within
	// a few percent.
	want := map[string]int{
		"Cholesky":    1476,
		"Locus Route": 1232,
		"MP3D":        552,
		"Pthor":       2676,
		"Water":       200,
	}
	for _, p := range Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		target, ok := want[p.Name]
		if !ok {
			t.Errorf("unexpected profile %q", p.Name)
			continue
		}
		got := p.FootprintKB()
		if math.Abs(float64(got-target))/float64(target) > 0.06 {
			t.Errorf("%s footprint = %d KB; paper says %d KB", p.Name, got, target)
		}
		if p.DefaultLength < 100_000 {
			t.Errorf("%s default length = %d", p.Name, p.DefaultLength)
		}
	}
	if len(Profiles()) != 5 {
		t.Fatalf("Profiles() returned %d profiles", len(Profiles()))
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("MP3D")
	if err != nil || p.Name != "MP3D" {
		t.Fatalf("ProfileByName(MP3D) = %+v, %v", p.Name, err)
	}
	if _, err := ProfileByName("mp3d"); err == nil {
		t.Fatal("case-insensitive match accepted")
	}
}

func TestProfileValidateRejections(t *testing.T) {
	if (Profile{}).Validate() == nil {
		t.Error("empty profile accepted")
	}
	if (Profile{Name: "x"}).Validate() == nil {
		t.Error("segmentless profile accepted")
	}
	p := Profile{Name: "x", Segments: []Segment{{Name: "bad"}}}
	if p.Validate() == nil {
		t.Error("profile with bad segment accepted")
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	p, _ := ProfileByName("Water")
	if _, err := NewGenerator(p, 1, 1); err == nil {
		t.Error("1 node accepted")
	}
	if _, err := NewGenerator(p, 65, 1); err == nil {
		t.Error("65 nodes accepted")
	}
	if _, err := NewGenerator(Profile{}, 16, 1); err == nil {
		t.Error("invalid profile accepted")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("MP3D")
	a, err := Generate(p, 16, 42, 5000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(p, 16, 42, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c, err := Generate(p, 16, 43, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateDefaultLength(t *testing.T) {
	p := Profile{
		Name:          "tiny",
		DefaultLength: 1234,
		Segments:      []Segment{{Name: "m", Kind: Migratory, Objects: 64, ObjWords: 4, Weight: 1}},
	}
	accs, err := Generate(p, 4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) < 1234 || len(accs) > 1234+16 {
		t.Fatalf("len = %d; want ~1234", len(accs))
	}
}

func TestGenerateBasicShape(t *testing.T) {
	for _, p := range Profiles() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			accs, err := Generate(p, 16, 7, 40_000)
			if err != nil {
				t.Fatal(err)
			}
			st := trace.Analyze(accs, geom)
			if st.Nodes < 12 {
				t.Errorf("only %d nodes active", st.Nodes)
			}
			if st.Writes == 0 || st.Reads == 0 {
				t.Errorf("reads %d writes %d", st.Reads, st.Writes)
			}
			// Addresses stay within the padded footprint.
			var limit memory.Addr
			for _, s := range p.Segments {
				limit += memory.Addr((s.FootprintBytes() + 8191) / 4096 * 4096)
			}
			for _, a := range accs {
				if a.Addr >= limit {
					t.Fatalf("address %#x beyond footprint %#x", a.Addr, limit)
				}
			}
		})
	}
}

// TestMigratorySegmentLooksMigratory: a pure migratory profile produces
// blocks the off-line classifier labels migratory.
func TestMigratorySegmentLooksMigratory(t *testing.T) {
	p := Profile{
		Name:     "pure-migratory",
		Segments: []Segment{{Name: "m", Kind: Migratory, Objects: 32, ObjWords: 4, Weight: 1}},
	}
	accs, err := Generate(p, 8, 3, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Analyze(accs, geom)
	total := st.MigratoryBlocks + st.OtherBlocks + st.ReadSharedBlocks + st.PrivateBlocks
	if st.MigratoryBlocks*10 < total*8 {
		t.Fatalf("only %d/%d blocks migratory: %+v", st.MigratoryBlocks, total, st)
	}
}

// TestReadSharedSegmentLooksReadShared: with no writes after init the
// blocks classify read-shared or private.
func TestReadSharedSegmentLooksReadShared(t *testing.T) {
	p := Profile{
		Name:     "pure-readshared",
		Segments: []Segment{{Name: "r", Kind: ReadShared, Objects: 64, ObjWords: 4, Weight: 1}},
	}
	accs, err := Generate(p, 8, 3, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Analyze(accs, geom)
	if st.MigratoryBlocks != 0 {
		t.Fatalf("read-shared profile produced %d migratory blocks", st.MigratoryBlocks)
	}
	if st.Writes != 0 {
		t.Fatalf("pure read-shared profile wrote %d times", st.Writes)
	}
}

// TestMigratoryLockSerialization: accesses to one migratory object never
// interleave two nodes inside an episode (the lock holds).
func TestMigratoryLockSerialization(t *testing.T) {
	p := Profile{
		Name:     "locks",
		Segments: []Segment{{Name: "m", Kind: Migratory, Objects: 4, ObjWords: 8, Weight: 1}},
	}
	accs, err := Generate(p, 8, 9, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	// Episode = 8 reads then 8 writes by one node on one object. Walk the
	// per-object streams checking the pattern.
	type state struct {
		node memory.NodeID
		pos  int
	}
	cur := map[int]*state{}
	for i, a := range accs {
		obj := int(a.Addr / 32)
		word := int(a.Addr % 32 / 4)
		st, ok := cur[obj]
		if !ok || st.pos == 16 {
			st = &state{node: a.Node}
			cur[obj] = st
		}
		if a.Node != st.node {
			t.Fatalf("access %d: node %d intruded into node %d's episode on object %d", i, a.Node, st.node, obj)
		}
		wantWord := st.pos % 8
		wantKind := trace.Read
		if st.pos >= 8 {
			wantKind = trace.Write
		}
		if word != wantWord || a.Kind != wantKind {
			t.Fatalf("access %d: got word %d kind %v at episode pos %d", i, word, a.Kind, st.pos)
		}
		st.pos++
	}
}

// TestProducerConsumerAlternation: each object's trace alternates write
// episodes by its fixed producer with read episodes by others.
func TestProducerConsumerAlternation(t *testing.T) {
	p := Profile{
		Name:     "pc",
		Segments: []Segment{{Name: "q", Kind: ProducerConsumer, Objects: 8, ObjWords: 2, Weight: 1}},
	}
	accs, err := Generate(p, 4, 11, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	lastKind := map[int]trace.Kind{}
	for i, a := range accs {
		obj := int(a.Addr / 8)
		producer := memory.NodeID(obj % 4)
		if a.Kind == trace.Write {
			if a.Node != producer {
				t.Fatalf("access %d: write by %d; producer is %d", i, a.Node, producer)
			}
		} else if a.Node == producer {
			t.Fatalf("access %d: producer %d consumed its own object", i, a.Node)
		}
		// Kinds alternate at word-0 boundaries.
		if int(a.Addr%8/4) == 0 {
			if prev, ok := lastKind[obj]; ok && prev == a.Kind {
				t.Fatalf("access %d: two consecutive %v episodes on object %d", i, a.Kind, obj)
			}
			lastKind[obj] = a.Kind
		}
	}
}

// TestMostlyPrivateAffinity: the owning node performs the large majority of
// accesses to its objects, and all writes.
func TestMostlyPrivateAffinity(t *testing.T) {
	p := Profile{
		Name:     "affine",
		Segments: []Segment{{Name: "w", Kind: MostlyPrivate, Objects: 64, ObjWords: 4, Weight: 1}},
	}
	accs, err := Generate(p, 8, 13, 40_000)
	if err != nil {
		t.Fatal(err)
	}
	own, foreign := 0, 0
	for i, a := range accs {
		obj := int(a.Addr / 16)
		owner := memory.NodeID(obj * 8 / 64) // contiguous partitioning

		if a.Node == owner {
			own++
		} else {
			foreign++
			if a.Kind == trace.Write {
				t.Fatalf("access %d: foreign write by %d to object of %d", i, a.Node, owner)
			}
		}
	}
	if own < foreign*3 {
		t.Fatalf("affinity too weak: own=%d foreign=%d", own, foreign)
	}
	if foreign == 0 {
		t.Fatal("no foreign reads at all")
	}
}

// TestSweepFraction: partial sweeps touch only the first words.
func TestSweepFraction(t *testing.T) {
	p := Profile{
		Name: "partial",
		Segments: []Segment{{
			Name: "m", Kind: Migratory, Objects: 4, ObjWords: 16, Weight: 1, SweepFraction: 0.25,
		}},
	}
	accs, err := Generate(p, 4, 17, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range accs {
		if word := int(a.Addr % 64 / 4); word >= 4 {
			t.Fatalf("partial sweep touched word %d", word)
		}
	}
}

func TestSegmentHelpers(t *testing.T) {
	s := Segment{Name: "x", Kind: Migratory, Objects: 10, ObjWords: 4, Weight: 1}
	if s.stride() != 16 {
		t.Fatalf("default stride = %d", s.stride())
	}
	if s.FootprintBytes() != 160 {
		t.Fatalf("footprint = %d", s.FootprintBytes())
	}
	s.StrideBytes = 64
	if s.stride() != 64 || s.FootprintBytes() != 640 {
		t.Fatalf("explicit stride: %d / %d", s.stride(), s.FootprintBytes())
	}
	if s.sweepWords() != 4 {
		t.Fatalf("sweepWords = %d", s.sweepWords())
	}
	s.SweepFraction = 0.1 // rounds below 1 word -> clamps to 1
	if s.sweepWords() != 1 {
		t.Fatalf("sweepWords = %d", s.sweepWords())
	}
}

// TestSharersBound: a segment with Sharers=2 only ever sees two nodes.
func TestSharersBound(t *testing.T) {
	p := Profile{
		Name:     "pair",
		Segments: []Segment{{Name: "m", Kind: Migratory, Objects: 16, ObjWords: 4, Weight: 1, Sharers: 2}},
	}
	accs, err := Generate(p, 8, 19, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range accs {
		if a.Node > 1 {
			t.Fatalf("node %d accessed a 2-sharer segment", a.Node)
		}
	}
}

func TestScale(t *testing.T) {
	p, _ := ProfileByName("Water")
	big, err := Scale(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if big.FootprintKB() < p.FootprintKB()*19/10 {
		t.Fatalf("scaled footprint %d vs base %d", big.FootprintKB(), p.FootprintKB())
	}
	if big.DefaultLength != 2*p.DefaultLength {
		t.Fatalf("scaled length %d", big.DefaultLength)
	}
	if big.Name != "Water (x2)" {
		t.Fatalf("scaled name %q", big.Name)
	}
	// Windows are unscaled.
	if big.Segments[0].WindowObjects != p.Segments[0].WindowObjects {
		t.Fatal("window scaled")
	}
	// The scaled profile generates a valid trace.
	if _, err := Generate(big, 16, 1, 10_000); err != nil {
		t.Fatal(err)
	}

	small, err := Scale(p, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if small.FootprintKB() >= p.FootprintKB()/2 {
		t.Fatalf("shrink failed: %d", small.FootprintKB())
	}
	if _, err := Scale(p, 0); err == nil {
		t.Fatal("zero factor accepted")
	}
	if _, err := Scale(p, -1); err == nil {
		t.Fatal("negative factor accepted")
	}
	// Tiny factors clamp object counts to one rather than zero.
	tiny, err := Scale(p, 0.0001)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tiny.Segments {
		if s.Objects < 1 {
			t.Fatal("object count fell to zero")
		}
	}
}
