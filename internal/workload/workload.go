// Package workload generates synthetic shared-memory traces that stand in
// for the paper's Tango-generated SPLASH traces (Cholesky, LocusRoute,
// MP3D, Pthor, Water). This is the substitution documented in DESIGN.md §4:
// we do not have the 1993 binaries, inputs, or Tango, so we model each
// application as a mix of the sharing idioms the paper identifies —
// migratory objects under locks, shared task queues, read-shared tables,
// producer/consumer pairs, and node-affine ("mostly private") data — with
// per-application proportions and object sizes chosen to match each
// program's published fingerprint.
//
// The generator models sixteen processors executing concurrently: each node
// runs a sequence of episodes (a critical section, a table lookup, a
// produce or consume step), and the emitted trace is a fine-grained random
// interleaving of the per-node access streams. Episodes on one migratory
// object are serialized by a lock, exactly as lock-protected data is in the
// source programs; accesses from episodes on *different* objects interleave
// freely, which is what makes false sharing visible at large block sizes.
//
// All generation is deterministic given (profile, nodes, seed, length).
package workload

import (
	"fmt"
	"io"
	"math/rand"

	"migratory/internal/memory"
	"migratory/internal/trace"
)

// wordSize is the access granularity in bytes.
const wordSize = 4

// Kind classifies a segment's sharing idiom.
type Kind uint8

const (
	// Migratory objects are read and written under a lock by one node at a
	// time, with the accessing node changing between episodes (lock-
	// protected records, task queue entries).
	Migratory Kind = iota
	// ReadShared objects are read concurrently by many nodes and written
	// rarely (cost tables, configuration, netlists).
	ReadShared
	// ProducerConsumer objects alternate between a write episode by a
	// fixed producer and a read episode by some other node.
	ProducerConsumer
	// MostlyPrivate objects belong to one node, which reads and writes
	// them; other nodes occasionally read them (partitioned matrices,
	// per-processor work regions that neighbours inspect).
	MostlyPrivate
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Migratory:
		return "migratory"
	case ReadShared:
		return "read-shared"
	case ProducerConsumer:
		return "producer-consumer"
	case MostlyPrivate:
		return "mostly-private"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Segment describes one homogeneous region of an application's shared data.
type Segment struct {
	// Name describes the segment ("particles", "cost array", ...).
	Name string
	// Kind selects the sharing idiom.
	Kind Kind
	// Objects is the number of objects in the segment.
	Objects int
	// ObjWords is the object size in 4-byte words.
	ObjWords int
	// StrideBytes is the distance between consecutive object base
	// addresses; packing objects tighter than the block size produces
	// false sharing at large blocks. Zero defaults to the object size.
	StrideBytes int
	// Weight is the segment's share of episodes (relative to the other
	// segments of the profile).
	Weight float64
	// Sharers bounds how many nodes touch the segment (0 = all nodes).
	Sharers int
	// WriteEveryN makes one in N read-shared episodes a write episode
	// (0 = written only during initialization).
	WriteEveryN int
	// SweepFraction is the fraction of an object's words an episode
	// touches (clamped to [0,1]; 0 defaults to 1: full sweep).
	SweepFraction float64
	// Revisits controls temporal locality: episodes draw objects from a
	// sliding working-set window that advances one object every Revisits
	// episodes, so each object is visited about Revisits times per sweep
	// of the segment (real SPLASH programs process their records in index
	// order, repeatedly). 0 disables the window: objects are drawn
	// uniformly.
	Revisits int
	// WindowObjects is the size of the sliding window in objects
	// (0 = Objects/12, minimum 16). The window also creates the spatial
	// clustering that makes false sharing visible at large block sizes:
	// concurrent episodes work on neighbouring objects.
	WindowObjects int
	// EpisodeObjects makes each read-shared episode sweep this many
	// consecutive objects, with each node cycling through the current
	// window at its own cursor. This models the per-node re-reference of
	// remote shared tables (source panels, cost grids, other processors'
	// molecules) whose reloads dominate small-cache traffic: with a cache
	// larger than the window the re-reads hit; below it they miss and
	// generate messages no protocol can remove. 0 = 1 object, random.
	EpisodeObjects int
}

func (s Segment) stride() int {
	if s.StrideBytes > 0 {
		return s.StrideBytes
	}
	return s.ObjWords * wordSize
}

func (s Segment) sweepWords() int {
	f := s.SweepFraction
	if f <= 0 || f > 1 {
		f = 1
	}
	w := int(f * float64(s.ObjWords))
	if w < 1 {
		w = 1
	}
	return w
}

// Validate checks segment parameters.
func (s Segment) Validate() error {
	if s.Objects <= 0 {
		return fmt.Errorf("workload: segment %q has %d objects", s.Name, s.Objects)
	}
	if s.ObjWords <= 0 {
		return fmt.Errorf("workload: segment %q has %d words per object", s.Name, s.ObjWords)
	}
	if s.StrideBytes != 0 && s.StrideBytes < s.ObjWords*wordSize {
		return fmt.Errorf("workload: segment %q stride %d smaller than object size %d",
			s.Name, s.StrideBytes, s.ObjWords*wordSize)
	}
	if s.Weight <= 0 {
		return fmt.Errorf("workload: segment %q has weight %v", s.Name, s.Weight)
	}
	if s.Kind > MostlyPrivate {
		return fmt.Errorf("workload: segment %q has unknown kind %d", s.Name, s.Kind)
	}
	return nil
}

// FootprintBytes is the address-space extent of the segment.
func (s Segment) FootprintBytes() int { return s.Objects * s.stride() }

// Profile describes one application.
type Profile struct {
	// Name is the application name as the paper's tables spell it.
	Name string
	// Segments composes the shared data.
	Segments []Segment
	// DefaultLength is the trace length used when the caller passes 0.
	DefaultLength int
}

// Validate checks the profile.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile has no name")
	}
	if len(p.Segments) == 0 {
		return fmt.Errorf("workload: profile %q has no segments", p.Name)
	}
	for _, s := range p.Segments {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// FootprintKB is the total shared footprint in kilobytes.
func (p Profile) FootprintKB() int {
	total := 0
	for _, s := range p.Segments {
		total += s.FootprintBytes()
	}
	return total / 1024
}

// Generator produces the interleaved trace.
type Generator struct {
	prof  Profile
	nodes int
	rng   *rand.Rand

	segs []*segState
	cum  []float64 // cumulative weights

	// Per-node in-flight episode.
	episodes []episode
}

type segState struct {
	seg  Segment
	base memory.Addr
	// lastOwner of each object (migratory handoff avoidance).
	lastOwner []memory.NodeID
	// locked marks objects with an in-flight exclusive episode.
	locked []bool
	// epoch: for ProducerConsumer, false = needs produce, true = needs
	// consume.
	produced []bool
	// episodeCount advances the working-set window.
	episodeCount int
	// cursor is each node's position for chunked read-shared sweeps.
	cursor [memory.MaxNodes]int
}

// windowSpan returns the start and size of the current working-set window.
func (st *segState) windowSpan() (start, size int) {
	size = st.seg.WindowObjects
	if size <= 0 {
		size = st.seg.Objects / 12
	}
	if size < 16 {
		size = 16
	}
	if size > st.seg.Objects {
		size = st.seg.Objects
	}
	start = 0
	if st.seg.Revisits > 0 {
		start = (st.episodeCount / st.seg.Revisits) % st.seg.Objects
	}
	return start, size
}

// pickObject draws an object index, from the sliding working-set window
// when the segment has one, uniformly otherwise.
func (st *segState) pickObject(rng *rand.Rand) int {
	st.episodeCount++
	if st.seg.Revisits <= 0 {
		return rng.Intn(st.seg.Objects)
	}
	start, size := st.windowSpan()
	return (start + rng.Intn(size)) % st.seg.Objects
}

// episode is a node's in-flight access sequence. Its accs buffer is reused
// across episodes of the same node, so steady-state generation does not
// allocate per episode (which keeps streamed sweeps at constant memory).
type episode struct {
	accs []trace.Access
	pos  int
	// lockSeg/lockObj, when lockSeg is non-nil, identify the object lock to
	// release at episode end.
	lockSeg *segState
	lockObj int
}

func (e *episode) done() bool { return e.pos >= len(e.accs) }

// release drops the episode's object lock, if it holds one.
func (e *episode) release() {
	if e.lockSeg != nil {
		e.lockSeg.locked[e.lockObj] = false
		e.lockSeg = nil
	}
}

// NewGenerator builds a generator for the profile. The profile must be
// valid and nodes in [2, memory.MaxNodes].
func NewGenerator(p Profile, nodes int, seed int64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if nodes < 2 || nodes > memory.MaxNodes {
		return nil, fmt.Errorf("workload: node count %d out of range [2,%d]", nodes, memory.MaxNodes)
	}
	g := &Generator{
		prof:     p,
		nodes:    nodes,
		rng:      rand.New(rand.NewSource(seed)),
		episodes: make([]episode, nodes),
	}
	var base memory.Addr
	var cum float64
	for _, seg := range p.Segments {
		st := &segState{
			seg:       seg,
			base:      base,
			lastOwner: make([]memory.NodeID, seg.Objects),
			locked:    make([]bool, seg.Objects),
			produced:  make([]bool, seg.Objects),
		}
		for i := range st.lastOwner {
			st.lastOwner[i] = memory.NoNode
		}
		g.segs = append(g.segs, st)
		cum += seg.Weight
		g.cum = append(g.cum, cum)
		// Segments are padded to page boundaries so that placement
		// decisions for one segment do not leak into the next.
		base += memory.Addr((seg.FootprintBytes() + 8191) / 4096 * 4096)
	}
	return g, nil
}

// Generate emits exactly n accesses into a fresh slice.
func (g *Generator) Generate(n int) []trace.Access {
	out := make([]trace.Access, 0, n+64)
	for len(out) < n {
		out = append(out, g.next())
	}
	return out
}

// next emits the next access of the interleaved trace. Generate and the
// streaming Source both funnel through it, consuming the generator's random
// stream in exactly the same order, so a streamed trace is bit-identical to
// a materialized one.
func (g *Generator) next() trace.Access {
	for {
		node := memory.NodeID(g.rng.Intn(g.nodes))
		ep := &g.episodes[node]
		if ep.done() {
			ep.release()
			buf := ep.accs[:0]
			*ep = g.newEpisode(node, buf)
			if ep.accs == nil {
				ep.accs = buf // keep the buffer across empty episodes
			}
			if ep.done() {
				continue // node found nothing runnable this tick
			}
		}
		a := ep.accs[ep.pos]
		ep.pos++
		if ep.done() {
			ep.release()
		}
		return a
	}
}

func (g *Generator) pickSegment() *segState {
	x := g.rng.Float64() * g.cum[len(g.cum)-1]
	for i, c := range g.cum {
		if x < c {
			return g.segs[i]
		}
	}
	return g.segs[len(g.segs)-1]
}

func (g *Generator) newEpisode(n memory.NodeID, buf []trace.Access) episode {
	st := g.pickSegment()
	switch st.seg.Kind {
	case Migratory:
		return g.migratoryEpisode(st, n, buf)
	case ReadShared:
		return g.readSharedEpisode(st, n, buf)
	case ProducerConsumer:
		return g.producerConsumerEpisode(st, n, buf)
	case MostlyPrivate:
		return g.mostlyPrivateEpisode(st, n, buf)
	}
	return episode{}
}

// nodeInSharers maps node n into the segment's sharer set.
func (st *segState) nodeInSharers(n memory.NodeID, nodes int) memory.NodeID {
	if st.seg.Sharers <= 0 || st.seg.Sharers >= nodes {
		return n
	}
	return memory.NodeID(int(n) % st.seg.Sharers)
}

func (st *segState) addr(obj, word int) memory.Addr {
	return st.base + memory.Addr(obj*st.seg.stride()+word*wordSize)
}

// rwSweep appends a read-all-then-write-all access list over the first
// `words` words of an object — the access pattern of a critical section
// that inspects and then updates a record — into buf and returns it.
func (st *segState) rwSweep(buf []trace.Access, n memory.NodeID, obj, words int) []trace.Access {
	for w := 0; w < words; w++ {
		buf = append(buf, trace.Access{Node: n, Kind: trace.Read, Addr: st.addr(obj, w)})
	}
	for w := 0; w < words; w++ {
		buf = append(buf, trace.Access{Node: n, Kind: trace.Write, Addr: st.addr(obj, w)})
	}
	return buf
}

func (st *segState) readSweep(buf []trace.Access, n memory.NodeID, obj, words int) []trace.Access {
	for w := 0; w < words; w++ {
		buf = append(buf, trace.Access{Node: n, Kind: trace.Read, Addr: st.addr(obj, w)})
	}
	return buf
}

func (g *Generator) migratoryEpisode(st *segState, n memory.NodeID, buf []trace.Access) episode {
	n = st.nodeInSharers(n, g.nodes)
	// Find an unlocked object this node did not own last (a node re-taking
	// its own lock immediately is possible but rare in the modeled apps).
	for try := 0; try < 8; try++ {
		obj := st.pickObject(g.rng)
		if st.locked[obj] {
			continue
		}
		if st.lastOwner[obj] == n && st.seg.Objects > 1 && try < 7 {
			continue
		}
		st.locked[obj] = true
		st.lastOwner[obj] = n
		return episode{
			accs:    st.rwSweep(buf, n, obj, st.seg.sweepWords()),
			lockSeg: st, lockObj: obj,
		}
	}
	return episode{}
}

func (g *Generator) readSharedEpisode(st *segState, n memory.NodeID, buf []trace.Access) episode {
	obj := st.pickObject(g.rng)
	words := st.seg.sweepWords()
	if st.seg.WriteEveryN > 0 && g.rng.Intn(st.seg.WriteEveryN) == 0 && !st.locked[obj] {
		st.locked[obj] = true
		return episode{
			accs:    st.rwSweep(buf, n, obj, words),
			lockSeg: st, lockObj: obj,
		}
	}
	k := st.seg.EpisodeObjects
	if k <= 1 {
		return episode{accs: st.readSweep(buf, n, obj, words)}
	}
	// Chunked sweep: node n reads k consecutive objects at its own cursor
	// within the current window, cycling so that the node re-reads the
	// same window contents every size/k episodes.
	start, size := st.windowSpan()
	if k > size {
		k = size
	}
	for i := 0; i < k; i++ {
		o := (start + (st.cursor[n]+i)%size) % st.seg.Objects
		buf = st.readSweep(buf, n, o, words)
	}
	st.cursor[n] = (st.cursor[n] + k) % size
	return episode{accs: buf}
}

func (g *Generator) producerConsumerEpisode(st *segState, n memory.NodeID, buf []trace.Access) episode {
	// Each object has a fixed producer derived from its index.
	for try := 0; try < 8; try++ {
		obj := st.pickObject(g.rng)
		if st.locked[obj] {
			continue
		}
		producer := memory.NodeID(obj % g.nodes)
		words := st.seg.sweepWords()
		if !st.produced[obj] {
			if n != producer {
				continue
			}
			st.locked[obj] = true
			st.produced[obj] = true
			return episode{
				accs:    writeSweep(st, buf, n, obj, words),
				lockSeg: st, lockObj: obj,
			}
		}
		if n == producer {
			continue
		}
		st.locked[obj] = true
		st.produced[obj] = false
		return episode{
			accs:    st.readSweep(buf, n, obj, words),
			lockSeg: st, lockObj: obj,
		}
	}
	return episode{}
}

func writeSweep(st *segState, buf []trace.Access, n memory.NodeID, obj, words int) []trace.Access {
	for w := 0; w < words; w++ {
		buf = append(buf, trace.Access{Node: n, Kind: trace.Write, Addr: st.addr(obj, w)})
	}
	return buf
}

func (g *Generator) mostlyPrivateEpisode(st *segState, n memory.NodeID, buf []trace.Access) episode {
	words := st.seg.sweepWords()
	// 90% of episodes work on the node's own objects (read/write); 10%
	// read a random other node's object.
	if g.rng.Intn(10) > 0 {
		own := g.ownObject(st, n)
		if own < 0 {
			return episode{}
		}
		if st.locked[own] {
			return episode{}
		}
		st.locked[own] = true
		st.lastOwner[own] = n
		return episode{
			accs:    st.rwSweep(buf, n, own, words),
			lockSeg: st, lockObj: own,
		}
	}
	obj := g.rng.Intn(st.seg.Objects)
	return episode{accs: st.readSweep(buf, n, obj, words)}
}

// ownObject picks a random object owned by node n. Objects are partitioned
// in contiguous chunks (node 0 owns the first Objects/nodes, and so on), as
// real programs partition their work regions — this keeps each page mostly
// single-owner, which is what lets the usage-based placement of §3.3 make
// node-affine accesses local.
func (g *Generator) ownObject(st *segState, n memory.NodeID) int {
	lo := int(n) * st.seg.Objects / g.nodes
	hi := (int(n) + 1) * st.seg.Objects / g.nodes
	if hi <= lo {
		return -1
	}
	return lo + g.rng.Intn(hi-lo)
}

// Generate is the package-level convenience: build a generator and emit a
// trace of the given length (0 = the profile's default).
func Generate(p Profile, nodes int, seed int64, length int) ([]trace.Access, error) {
	g, err := NewGenerator(p, nodes, seed)
	if err != nil {
		return nil, err
	}
	if length == 0 {
		length = p.DefaultLength
	}
	return g.Generate(length), nil
}

// Source streams a generated trace access by access without ever
// materializing it: memory use is the generator's own state (segment
// bookkeeping plus in-flight episodes), independent of the trace length.
// The stream is bit-identical to Generate with the same parameters, and
// Reset replays it from the beginning by rebuilding the generator, so the
// two-pass placement/simulation workflow works unchanged.
type Source struct {
	prof    Profile
	nodes   int
	seed    int64
	length  int
	g       *Generator
	emitted int
}

// NewSource returns a streaming Source for the profile (length 0 = the
// profile's default length).
func NewSource(p Profile, nodes int, seed int64, length int) (*Source, error) {
	g, err := NewGenerator(p, nodes, seed)
	if err != nil {
		return nil, err
	}
	if length == 0 {
		length = p.DefaultLength
	}
	return &Source{prof: p, nodes: nodes, seed: seed, length: length, g: g}, nil
}

// Len returns the total number of accesses the source will emit.
func (s *Source) Len() int { return s.length }

// Next implements trace.Source.
func (s *Source) Next() (trace.Access, error) {
	if s.emitted >= s.length {
		return trace.Access{}, io.EOF
	}
	s.emitted++
	return s.g.next(), nil
}

// NextBatch implements trace.BatchReader. Batched and single-access pulls
// consume the generator's random stream in exactly the same order, so a
// batched run stays bit-identical to an unbatched one.
func (s *Source) NextBatch(buf []trace.Access) (int, error) {
	if s.emitted >= s.length {
		return 0, io.EOF
	}
	n := s.length - s.emitted
	if n > len(buf) {
		n = len(buf)
	}
	for i := 0; i < n; i++ {
		buf[i] = s.g.next()
	}
	s.emitted += n
	return n, nil
}

// Reset implements trace.Source by rebuilding the generator from the
// original parameters.
func (s *Source) Reset() error {
	g, err := NewGenerator(s.prof, s.nodes, s.seed)
	if err != nil {
		return err
	}
	s.g = g
	s.emitted = 0
	return nil
}

// Close implements trace.Source; it never fails.
func (s *Source) Close() error { return nil }
