package workload

import (
	"errors"
	"fmt"
)

// ErrUnknownProfile is wrapped by ProfileByName when no built-in profile
// matches, so callers can classify the failure with errors.Is.
var ErrUnknownProfile = errors.New("workload: unknown profile")

// The five benchmark profiles. Shared-memory footprints follow §3.1 of the
// paper (Cholesky 1476 KB, LocusRoute 1232 KB, MP3D 552 KB, Pthor 2676 KB,
// Water 200 KB); the idiom mixes are our modeling of each program's
// published sharing behaviour (see DESIGN.md §4):
//
//   - MP3D: particle and space-cell records are read-modified-written by
//     whichever processor moves the particle — intensely migratory, with
//     records small and densely packed enough that blocks of 64 bytes and
//     up exhibit false sharing (the paper observes MP3D's invalidations
//     rising from 64- to 128-byte blocks).
//   - Water: per-molecule force records updated under lock by successive
//     processors in the pairwise force computation — migratory with larger
//     records and a small read-shared portion.
//   - Cholesky: panels being factored migrate between workers via the task
//     queue; finished panels are read by consumers; supernode workspaces
//     are node-affine.
//   - LocusRoute: dominated by the read-shared cost array, which routers
//     also update in place as they commit wires (reads by many, occasional
//     writes) — little for a migratory optimization to win.
//   - Pthor: logic-element records migrate; event queues are
//     producer/consumer; the netlist is read-shared — a mixed profile with
//     a modest migratory component.
func builtins() []Profile {
	return []Profile{
		{
			Name:          "Cholesky",
			DefaultLength: 600_000,
			Segments: []Segment{
				{Name: "panels", Kind: Migratory, Objects: 1600, ObjWords: 64, StrideBytes: 256, Weight: 0.40, Revisits: 30, WindowObjects: 32},
				{Name: "workspaces", Kind: MostlyPrivate, Objects: 6000, ObjWords: 32, StrideBytes: 128, Weight: 0.35},
				{Name: "structure", Kind: ReadShared, Objects: 5216, ObjWords: 16, StrideBytes: 64, Weight: 0.20, Revisits: 60, WindowObjects: 192, EpisodeObjects: 48, SweepFraction: 0.25},
			},
		},
		{
			Name:          "Locus Route",
			DefaultLength: 500_000,
			Segments: []Segment{
				{Name: "cost array", Kind: ReadShared, Objects: 14000, ObjWords: 8, StrideBytes: 64, Weight: 0.50, WriteEveryN: 12, Revisits: 40, WindowObjects: 192, EpisodeObjects: 24, SweepFraction: 0.5},
				{Name: "route records", Kind: Migratory, Objects: 3200, ObjWords: 8, StrideBytes: 64, Weight: 0.25, Revisits: 5, WindowObjects: 64},
				{Name: "netlist", Kind: ReadShared, Objects: 2512, ObjWords: 16, StrideBytes: 64, Weight: 0.25, Revisits: 24, WindowObjects: 256},
			},
		},
		{
			Name:          "MP3D",
			DefaultLength: 400_000,
			Segments: []Segment{
				{Name: "particles", Kind: Migratory, Objects: 7000, ObjWords: 9, StrideBytes: 64, Weight: 0.80, Revisits: 40, WindowObjects: 160},
				{Name: "space cells", Kind: Migratory, Objects: 4096, ObjWords: 4, StrideBytes: 16, Weight: 0.15, Revisits: 40, WindowObjects: 64},
				{Name: "constants", Kind: ReadShared, Objects: 600, ObjWords: 16, StrideBytes: 64, Weight: 0.08, Revisits: 60, WindowObjects: 128, EpisodeObjects: 32, SweepFraction: 0.25},
			},
		},
		{
			Name:          "Pthor",
			DefaultLength: 600_000,
			Segments: []Segment{
				{Name: "elements", Kind: Migratory, Objects: 12800, ObjWords: 12, StrideBytes: 64, Weight: 0.18, Revisits: 16, WindowObjects: 128},
				{Name: "event queues", Kind: ProducerConsumer, Objects: 12800, ObjWords: 8, StrideBytes: 32, Weight: 0.30, Revisits: 8, WindowObjects: 512},
				{Name: "netlist", Kind: ReadShared, Objects: 23616, ObjWords: 16, StrideBytes: 64, Weight: 0.40, Revisits: 60, WindowObjects: 192, EpisodeObjects: 48, SweepFraction: 0.25},
			},
		},
		{
			Name:          "Water",
			DefaultLength: 500_000,
			Segments: []Segment{
				{Name: "molecules", Kind: Migratory, Objects: 900, ObjWords: 48, StrideBytes: 192, Weight: 0.75, Revisits: 80, WindowObjects: 96},
				{Name: "globals", Kind: ReadShared, Objects: 400, ObjWords: 16, StrideBytes: 64, Weight: 0.25, Revisits: 60, WindowObjects: 200, EpisodeObjects: 48, SweepFraction: 0.25},
			},
		},
	}
}

// Profiles returns the five SPLASH-like application profiles in the order
// the paper's tables list them.
func Profiles() []Profile { return builtins() }

// ProfileByName looks a profile up case-sensitively ("MP3D", "Water", ...).
func ProfileByName(name string) (Profile, error) {
	for _, p := range builtins() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("%w: %q", ErrUnknownProfile, name)
}

// Scale returns a copy of the profile with every segment's object count
// (and the default trace length) multiplied by factor, modeling larger or
// smaller problem inputs than the paper's §3.1 standard ones. Working-set
// windows are left unscaled: a bigger input means more data, not more
// concurrent activity, which is how real inputs grow. factor must be
// positive; object counts are clamped to at least one.
func Scale(p Profile, factor float64) (Profile, error) {
	if factor <= 0 {
		return Profile{}, fmt.Errorf("workload: scale factor %v must be positive", factor)
	}
	out := p
	out.Name = fmt.Sprintf("%s (x%g)", p.Name, factor)
	out.DefaultLength = int(float64(p.DefaultLength) * factor)
	out.Segments = make([]Segment, len(p.Segments))
	for i, s := range p.Segments {
		s.Objects = int(float64(s.Objects) * factor)
		if s.Objects < 1 {
			s.Objects = 1
		}
		out.Segments[i] = s
	}
	if err := out.Validate(); err != nil {
		return Profile{}, err
	}
	return out, nil
}
