package workload

import (
	"testing"

	"migratory/internal/memory"
	"migratory/internal/trace"
)

func TestWindowSpanDefaults(t *testing.T) {
	st := &segState{seg: Segment{Objects: 1200, Revisits: 10}}
	start, size := st.windowSpan()
	if start != 0 || size != 100 {
		t.Fatalf("span = %d,%d; want 0,100 (Objects/12)", start, size)
	}
	// Minimum window of 16.
	st = &segState{seg: Segment{Objects: 60, Revisits: 10}}
	if _, size := st.windowSpan(); size != 16 {
		t.Fatalf("size = %d; want 16", size)
	}
	// Window clamped to the segment.
	st = &segState{seg: Segment{Objects: 10, Revisits: 10}}
	if _, size := st.windowSpan(); size != 10 {
		t.Fatalf("size = %d; want 10", size)
	}
	// Explicit window.
	st = &segState{seg: Segment{Objects: 1000, Revisits: 10, WindowObjects: 64}}
	if _, size := st.windowSpan(); size != 64 {
		t.Fatalf("size = %d; want 64", size)
	}
}

func TestWindowAdvancesWithEpisodes(t *testing.T) {
	st := &segState{seg: Segment{Objects: 100, Revisits: 4, WindowObjects: 16}}
	st.episodeCount = 40 // 40/4 = 10 objects in
	start, _ := st.windowSpan()
	if start != 10 {
		t.Fatalf("start = %d; want 10", start)
	}
	st.episodeCount = 4 * 100 // a full wrap
	if start, _ := st.windowSpan(); start != 0 {
		t.Fatalf("wrapped start = %d; want 0", start)
	}
}

// TestWindowConcentratesVisits: with a window, early trace accesses stay
// within a small object range; without one they scatter.
func TestWindowConcentratesVisits(t *testing.T) {
	base := Segment{Name: "m", Kind: Migratory, Objects: 4096, ObjWords: 4, Weight: 1}
	windowed := base
	windowed.Revisits = 10
	windowed.WindowObjects = 32

	countEarlyObjects := func(seg Segment) int {
		p := Profile{Name: "t", Segments: []Segment{seg}}
		accs, err := Generate(p, 8, 5, 4_000)
		if err != nil {
			t.Fatal(err)
		}
		objs := map[int]bool{}
		for _, a := range accs {
			objs[int(a.Addr/16)] = true
		}
		return len(objs)
	}
	scattered := countEarlyObjects(base)
	focused := countEarlyObjects(windowed)
	if focused*4 > scattered {
		t.Fatalf("window did not concentrate: %d focused vs %d scattered objects", focused, scattered)
	}
}

// TestChunkedEpisodesReRead: a node's chunked read-shared episodes cycle
// through the window, so the same blocks are re-read (cache-hit fodder at
// large caches, reload traffic at small ones).
func TestChunkedEpisodesReRead(t *testing.T) {
	p := Profile{
		Name: "chunked",
		Segments: []Segment{{
			Name: "tbl", Kind: ReadShared, Objects: 256, ObjWords: 4,
			Weight: 1, Revisits: 1000, WindowObjects: 32, EpisodeObjects: 8,
		}},
	}
	accs, err := Generate(p, 4, 9, 8_000)
	if err != nil {
		t.Fatal(err)
	}
	// Count per-node repeat reads of the same address.
	type key struct {
		n memory.NodeID
		a memory.Addr
	}
	seen := map[key]int{}
	repeats := 0
	for _, a := range accs {
		k := key{a.Node, a.Addr}
		if seen[k] > 0 {
			repeats++
		}
		seen[k]++
	}
	if repeats*2 < len(accs) {
		t.Fatalf("only %d/%d accesses were per-node re-reads", repeats, len(accs))
	}
}

// TestChunkedEpisodeClampsToWindow: EpisodeObjects larger than the window
// sweeps the whole window, not beyond.
func TestChunkedEpisodeClampsToWindow(t *testing.T) {
	p := Profile{
		Name: "clamp",
		Segments: []Segment{{
			Name: "tbl", Kind: ReadShared, Objects: 64, ObjWords: 2,
			Weight: 1, Revisits: 1000, WindowObjects: 16, EpisodeObjects: 99,
		}},
	}
	accs, err := Generate(p, 4, 13, 2_000)
	if err != nil {
		t.Fatal(err)
	}
	objs := map[int]bool{}
	for _, a := range accs {
		objs[int(a.Addr/8)] = true
	}
	// The window stays near the start for a 2k trace with Revisits 1000.
	if len(objs) > 24 {
		t.Fatalf("clamped chunk touched %d objects", len(objs))
	}
}

// TestChunkedWritesStillHappen: WriteEveryN interacts with chunking.
func TestChunkedWritesStillHappen(t *testing.T) {
	p := Profile{
		Name: "rw",
		Segments: []Segment{{
			Name: "tbl", Kind: ReadShared, Objects: 128, ObjWords: 4,
			Weight: 1, Revisits: 100, WindowObjects: 32, EpisodeObjects: 8,
			WriteEveryN: 3,
		}},
	}
	accs, err := Generate(p, 4, 17, 6_000)
	if err != nil {
		t.Fatal(err)
	}
	st := trace.Analyze(accs, memory.MustGeometry(16, 4096))
	if st.Writes == 0 {
		t.Fatal("no writes generated")
	}
	if st.Writes*4 > st.Accesses {
		t.Fatalf("too many writes: %d of %d", st.Writes, st.Accesses)
	}
}
