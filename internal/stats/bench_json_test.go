package stats

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestUpdateBenchJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "results", "bench.json")

	if err := UpdateBenchJSON(path, "BenchmarkB", map[string]float64{"ns_per_op": 100}); err != nil {
		t.Fatal(err)
	}
	if err := UpdateBenchJSON(path, "BenchmarkA", map[string]float64{"speedup": 2.5}); err != nil {
		t.Fatal(err)
	}
	// Updating an existing record replaces it rather than appending.
	if err := UpdateBenchJSON(path, "BenchmarkB", map[string]float64{"ns_per_op": 50}); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var records []BenchRecord
	if err := json.Unmarshal(data, &records); err != nil {
		t.Fatal(err)
	}
	if len(records) != 2 {
		t.Fatalf("got %d records, want 2: %+v", len(records), records)
	}
	if records[0].Name != "BenchmarkA" || records[1].Name != "BenchmarkB" {
		t.Fatalf("records not sorted by name: %+v", records)
	}
	if records[1].Metrics["ns_per_op"] != 50 {
		t.Fatalf("update did not replace record: %+v", records[1])
	}
}

func TestUpdateBenchJSONRejectsCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := UpdateBenchJSON(path, "X", nil); err == nil {
		t.Fatal("expected error for corrupt baseline")
	}
}
