// Package stats provides the small formatting utilities the simulators and
// CLIs share: aligned text tables and number formatting in the style of the
// paper's tables (message counts in thousands, percentages to three
// significant digits).
package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row. Rows may be ragged; missing cells render empty.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table to w with columns padded to their widest cell.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	grow := func(row []string) {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	grow(t.Header)
	for _, r := range t.Rows {
		grow(r)
	}
	if t.Title != "" {
		if _, err := fmt.Fprintln(w, t.Title); err != nil {
			return err
		}
	}
	writeRow := func(row []string) error {
		var b strings.Builder
		for i, width := range widths {
			c := ""
			if i < len(row) {
				c = row[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, width))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if len(t.Header) > 0 {
		if err := writeRow(t.Header); err != nil {
			return err
		}
		var b strings.Builder
		for i, width := range widths {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat("-", width))
		}
		if _, err := fmt.Fprintln(w, b.String()); err != nil {
			return err
		}
	}
	for _, r := range t.Rows {
		if err := writeRow(r); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Thousands renders a count in thousands, the unit of the paper's Tables 2
// and 3 (e.g. 2091715 -> "2092").
func Thousands(n int) string {
	return fmt.Sprintf("%d", (n+500)/1000)
}

// Percent renders a percentage to three significant digits, matching the
// paper's "% reduction" columns (9.01, 43.1, 5.90 ...).
func Percent(p float64) string {
	switch {
	case p < 0:
		return "-" + Percent(-p)
	case p < 10:
		return fmt.Sprintf("%.2f", p)
	case p < 100:
		return fmt.Sprintf("%.1f", p)
	default:
		return fmt.Sprintf("%.0f", p)
	}
}

// KB renders a byte count as "4K", "256K", "1M" in the style of the
// paper's cache-size rows.
func KB(bytes int) string {
	switch {
	case bytes == 0:
		return "inf"
	case bytes >= 1<<20 && bytes%(1<<20) == 0:
		return fmt.Sprintf("%dM", bytes>>20)
	case bytes >= 1024 && bytes%1024 == 0:
		return fmt.Sprintf("%dK", bytes>>10)
	default:
		return fmt.Sprintf("%dB", bytes)
	}
}
