package stats

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:  "demo",
		Header: []string{"app", "w/o data", "%"},
	}
	tab.Add("MP3D", "2092", "43.1")
	tab.Add("Water", "3290")
	got := tab.String()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines:\n%s", len(lines), got)
	}
	if lines[0] != "demo" {
		t.Fatalf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "app ") || !strings.Contains(lines[1], "w/o data") {
		t.Fatalf("header = %q", lines[1])
	}
	if !strings.Contains(lines[2], "---") {
		t.Fatalf("separator = %q", lines[2])
	}
	if !strings.Contains(lines[3], "MP3D") || !strings.Contains(lines[3], "43.1") {
		t.Fatalf("row = %q", lines[3])
	}
	// Ragged row renders without trailing padding.
	if strings.HasSuffix(lines[4], " ") {
		t.Fatalf("trailing spaces in %q", lines[4])
	}
}

func TestTableNoHeader(t *testing.T) {
	tab := &Table{}
	tab.Add("a", "b")
	got := tab.String()
	if got != "a  b\n" {
		t.Fatalf("got %q", got)
	}
}

func TestTableWideRow(t *testing.T) {
	// A row wider than the header must not panic and must align.
	tab := &Table{Header: []string{"x"}}
	tab.Add("1", "2", "3")
	got := tab.String()
	if !strings.Contains(got, "1  2  3") {
		t.Fatalf("got %q", got)
	}
}

func TestThousands(t *testing.T) {
	cases := map[int]string{
		0:       "0",
		499:     "0",
		500:     "1",
		2091715: "2092",
		784000:  "784",
	}
	for n, want := range cases {
		if got := Thousands(n); got != want {
			t.Errorf("Thousands(%d) = %q; want %q", n, got, want)
		}
	}
}

func TestPercent(t *testing.T) {
	cases := map[float64]string{
		9.012:  "9.01",
		5.9:    "5.90",
		43.13:  "43.1",
		15.96:  "16.0",
		100.4:  "100",
		0:      "0.00",
		-0.42:  "-0.42",
		-12.34: "-12.3",
	}
	for p, want := range cases {
		if got := Percent(p); got != want {
			t.Errorf("Percent(%v) = %q; want %q", p, got, want)
		}
	}
}

func TestKB(t *testing.T) {
	cases := map[int]string{
		0:       "inf",
		4096:    "4K",
		16384:   "16K",
		1 << 20: "1M",
		100:     "100B",
	}
	for b, want := range cases {
		if got := KB(b); got != want {
			t.Errorf("KB(%d) = %q; want %q", b, got, want)
		}
	}
}
