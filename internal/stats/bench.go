package stats

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"migratory/internal/telemetry"
)

// BenchRecord is one benchmark's machine-readable metrics, as written to
// results/bench_sweep.json by the benchmarks in the repository root.
type BenchRecord struct {
	Name    string             `json:"name"`
	Metrics map[string]float64 `json:"metrics"`
}

// ReadBenchJSON loads a benchmark-rows file (the bench_sweep.json format).
func ReadBenchJSON(path string) ([]BenchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var records []BenchRecord
	if err := json.Unmarshal(data, &records); err != nil {
		return nil, fmt.Errorf("stats: parsing %s: %w", path, err)
	}
	return records, nil
}

// UpdateBenchJSON merges one benchmark's metrics into the JSON baseline at
// path, creating the file (and its directory) if needed. Records are keyed
// by benchmark name and kept sorted, so re-running a benchmark overwrites
// its own record and leaves the rest of the baseline intact.
func UpdateBenchJSON(path, name string, metrics map[string]float64) error {
	var records []BenchRecord
	if data, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(data, &records); err != nil {
			return fmt.Errorf("stats: parsing %s: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	rec := BenchRecord{Name: name, Metrics: metrics}
	replaced := false
	for i := range records {
		if records[i].Name == name {
			records[i], replaced = rec, true
			break
		}
	}
	if !replaced {
		records = append(records, rec)
	}
	sort.Slice(records, func(i, j int) bool { return records[i].Name < records[j].Name })

	out, err := json.MarshalIndent(records, "", "  ")
	if err != nil {
		return err
	}
	// Atomic replace: concurrent readers (benchcheck, a live sweep's
	// telemetry) never observe a torn file, and an interrupted benchmark
	// run leaves the previous rows intact.
	return telemetry.WriteFileAtomic(path, append(out, '\n'), 0o644)
}
