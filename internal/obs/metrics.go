package obs

import (
	"fmt"
	"math/bits"
	"sort"

	"migratory/internal/cost"
	"migratory/internal/memory"
	"migratory/internal/stats"
)

// Histogram is a power-of-two-bucketed distribution of non-negative
// integer samples. Bucket i counts values v with bits.Len64(v) == i, i.e.
// bucket 0 holds zeros and bucket i>0 holds [2^(i-1), 2^i). The zero value
// is an empty histogram.
type Histogram struct {
	Buckets []uint64
	Count   uint64
	Sum     uint64
	Min     uint64
	Max     uint64
}

// Add records one sample.
func (h *Histogram) Add(v uint64) {
	i := bits.Len64(v)
	for len(h.Buckets) <= i {
		h.Buckets = append(h.Buckets, 0)
	}
	h.Buckets[i]++
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
}

// Merge accumulates o into h.
func (h *Histogram) Merge(o *Histogram) {
	for len(h.Buckets) < len(o.Buckets) {
		h.Buckets = append(h.Buckets, 0)
	}
	for i, c := range o.Buckets {
		h.Buckets[i] += c
	}
	if o.Count != 0 {
		if h.Count == 0 || o.Min < h.Min {
			h.Min = o.Min
		}
		if o.Max > h.Max {
			h.Max = o.Max
		}
	}
	h.Count += o.Count
	h.Sum += o.Sum
}

// Mean returns the sample mean (0 for an empty histogram).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// bucketLabel renders bucket i's value range.
func bucketLabel(i int) string {
	switch i {
	case 0:
		return "0"
	case 1:
		return "1"
	default:
		return fmt.Sprintf("%d-%d", 1<<(i-1), 1<<i-1)
	}
}

// Counters is the per-node and per-block tally of the event stream. Fields
// count events of the corresponding kind; Short and Data accumulate the
// message charges of KindMessage events.
type Counters struct {
	Events            uint64
	Hits              uint64
	Messages          uint64
	Short             uint64
	Data              uint64
	Migrations        uint64
	Replications      uint64
	Invalidations     uint64
	WriteBacks        uint64
	CleanDrops        uint64
	Classifications   uint64
	Declassifications uint64
	Overflows         uint64
}

func (c *Counters) add(o *Counters) {
	c.Events += o.Events
	c.Hits += o.Hits
	c.Messages += o.Messages
	c.Short += o.Short
	c.Data += o.Data
	c.Migrations += o.Migrations
	c.Replications += o.Replications
	c.Invalidations += o.Invalidations
	c.WriteBacks += o.WriteBacks
	c.CleanDrops += o.CleanDrops
	c.Classifications += o.Classifications
	c.Declassifications += o.Declassifications
	c.Overflows += o.Overflows
}

// Msgs returns the accumulated message counts in Table 1's units.
func (c *Counters) Msgs() cost.Msgs {
	return cost.Msgs{Short: int(c.Short), Data: int(c.Data)}
}

func (c *Counters) observe(e Event) {
	c.Events++
	switch e.Kind {
	case KindHit:
		c.Hits++
	case KindMessage:
		c.Messages++
		c.Short += uint64(e.Short)
		c.Data += uint64(e.Data)
	case KindMigration:
		c.Migrations++
	case KindReplication:
		c.Replications++
	case KindInvalidation:
		c.Invalidations++
	case KindWriteBack:
		c.WriteBacks++
	case KindCleanDrop:
		c.CleanDrops++
	case KindClassify:
		c.Classifications++
	case KindDeclassify:
		c.Declassifications++
	case KindOverflow:
		c.Overflows++
	}
}

// blockTrack is the per-block bookkeeping behind the histograms.
type blockTrack struct {
	Counters
	seen        bool
	firstNode   memory.NodeID
	shared      bool
	sharedStep  uint64
	latencyDone bool
	run         uint64 // current consecutive-migration run length
}

// BlockStat is one block's aggregated metrics, as returned by TopBlocks.
type BlockStat struct {
	Block memory.BlockID
	Counters
}

// MetricsProbe aggregates the event stream into per-node and per-block
// counters plus two distributions:
//
//   - MigrationRuns: lengths of consecutive-migration runs — how many times
//     a block migrated before a replication or declassification ended the
//     run (the payoff of a correct classification);
//   - ClassifyLatency: accesses from a block's first sharing (the first
//     event from a second node) to its first migratory classification — how
//     long the detector took to reach the correct class.
//
// The zero value is ready for use. A MetricsProbe attached to one System
// must not be shared across concurrently running systems; sweep drivers
// attach one probe per cell and merge afterwards (Merge), which is
// deterministic in merge order.
type MetricsProbe struct {
	// Variant records the protocol variant of the first event seen.
	Variant string
	// Total aggregates over all nodes and blocks.
	Total Counters
	// ByKind counts events per kind.
	ByKind [numKinds]uint64
	// MigrationRuns and ClassifyLatency are the two distributions above.
	// Open migration runs are folded in by Finish.
	MigrationRuns   Histogram
	ClassifyLatency Histogram

	nodes    []Counters
	blocks   memory.BlockMap[blockTrack]
	finished bool
}

// OnEvent implements Probe.
func (m *MetricsProbe) OnEvent(e Event) {
	if m.Variant == "" {
		m.Variant = e.Variant
	}
	m.Total.observe(e)
	m.ByKind[e.Kind]++
	for int(e.Node) >= len(m.nodes) {
		m.nodes = append(m.nodes, Counters{})
	}
	m.nodes[e.Node].observe(e)

	b, _ := m.blocks.GetOrCreate(e.Block)
	b.observe(e)
	if !b.seen {
		b.seen = true
		b.firstNode = e.Node
	} else if !b.shared && e.Node != b.firstNode {
		b.shared = true
		b.sharedStep = e.Step
	}
	switch e.Kind {
	case KindMigration:
		b.run++
	case KindReplication, KindDeclassify:
		if b.run > 0 {
			m.MigrationRuns.Add(b.run)
			b.run = 0
		}
	case KindClassify:
		if b.shared && !b.latencyDone {
			m.ClassifyLatency.Add(e.Step - b.sharedStep)
			b.latencyDone = true
		}
	}
}

// Finish folds still-open migration runs into MigrationRuns. It is
// idempotent; call it after the run completes and before reading the
// histograms or merging.
func (m *MetricsProbe) Finish() {
	if m.finished {
		return
	}
	m.finished = true
	m.blocks.ForEach(func(_ memory.BlockID, b *blockTrack) {
		if b.run > 0 {
			m.MigrationRuns.Add(b.run)
			b.run = 0
		}
	})
}

// Merge accumulates o into m, finishing both first. Merging the per-cell
// probes of a sweep in paper (cell) order yields the same aggregate
// regardless of how the cells were scheduled.
func (m *MetricsProbe) Merge(o *MetricsProbe) {
	m.Finish()
	o.Finish()
	if m.Variant == "" {
		m.Variant = o.Variant
	}
	m.Total.add(&o.Total)
	for i := range o.ByKind {
		m.ByKind[i] += o.ByKind[i]
	}
	for len(m.nodes) < len(o.nodes) {
		m.nodes = append(m.nodes, Counters{})
	}
	for i := range o.nodes {
		m.nodes[i].add(&o.nodes[i])
	}
	o.blocks.ForEach(func(id memory.BlockID, ob *blockTrack) {
		b, created := m.blocks.GetOrCreate(id)
		b.Counters.add(&ob.Counters)
		if created {
			b.seen, b.firstNode = ob.seen, ob.firstNode
		}
		b.shared = b.shared || ob.shared
		b.latencyDone = b.latencyDone || ob.latencyDone
	})
	m.MigrationRuns.Merge(&o.MigrationRuns)
	m.ClassifyLatency.Merge(&o.ClassifyLatency)
}

// MergeMetrics merges the given probes (in order) into one aggregate.
// Nil entries — cells the caller filtered out — are skipped.
func MergeMetrics(probes ...*MetricsProbe) *MetricsProbe {
	out := &MetricsProbe{}
	for _, p := range probes {
		if p != nil {
			out.Merge(p)
		}
	}
	return out
}

// Msgs returns the total message counts observed, which reconcile exactly
// with the owning System's cost accounting (directory engine) or bus
// transaction count (bus engine, as Short).
func (m *MetricsProbe) Msgs() cost.Msgs { return m.Total.Msgs() }

// Node returns node n's counters (zero if n emitted no events).
func (m *MetricsProbe) Node(n memory.NodeID) Counters {
	if int(n) < len(m.nodes) {
		return m.nodes[n]
	}
	return Counters{}
}

// NodeCount returns the number of nodes with recorded counters.
func (m *MetricsProbe) NodeCount() int { return len(m.nodes) }

// BlockCount returns the number of distinct blocks observed.
func (m *MetricsProbe) BlockCount() int { return m.blocks.Len() }

// Block returns block b's counters.
func (m *MetricsProbe) Block(b memory.BlockID) Counters {
	if t := m.blocks.Get(b); t != nil {
		return t.Counters
	}
	return Counters{}
}

// TopBlocks returns the n blocks with the most coherence messages
// (Short+Data; bus transactions count as Short), most-expensive first,
// ties broken by ascending block ID so the order is deterministic.
func (m *MetricsProbe) TopBlocks(n int) []BlockStat {
	all := make([]BlockStat, 0, m.blocks.Len())
	m.blocks.ForEach(func(id memory.BlockID, t *blockTrack) {
		all = append(all, BlockStat{Block: id, Counters: t.Counters})
	})
	sort.Slice(all, func(i, j int) bool {
		mi, mj := all[i].Short+all[i].Data, all[j].Short+all[j].Data
		if mi != mj {
			return mi > mj
		}
		return all[i].Block < all[j].Block
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}

// RenderNodes renders the per-node counters as a table.
func (m *MetricsProbe) RenderNodes() *stats.Table {
	tab := &stats.Table{
		Header: []string{"node", "events", "hits", "short", "data", "migr", "repl", "inval", "wb", "class", "declass"},
	}
	for i := range m.nodes {
		c := &m.nodes[i]
		tab.Add(fmt.Sprintf("P%d", i),
			fmt.Sprintf("%d", c.Events), fmt.Sprintf("%d", c.Hits),
			fmt.Sprintf("%d", c.Short), fmt.Sprintf("%d", c.Data),
			fmt.Sprintf("%d", c.Migrations), fmt.Sprintf("%d", c.Replications),
			fmt.Sprintf("%d", c.Invalidations), fmt.Sprintf("%d", c.WriteBacks),
			fmt.Sprintf("%d", c.Classifications), fmt.Sprintf("%d", c.Declassifications))
	}
	t := &m.Total
	tab.Add("total",
		fmt.Sprintf("%d", t.Events), fmt.Sprintf("%d", t.Hits),
		fmt.Sprintf("%d", t.Short), fmt.Sprintf("%d", t.Data),
		fmt.Sprintf("%d", t.Migrations), fmt.Sprintf("%d", t.Replications),
		fmt.Sprintf("%d", t.Invalidations), fmt.Sprintf("%d", t.WriteBacks),
		fmt.Sprintf("%d", t.Classifications), fmt.Sprintf("%d", t.Declassifications))
	return tab
}

// RenderTopBlocks renders the n hottest blocks by coherence messages.
func (m *MetricsProbe) RenderTopBlocks(n int) *stats.Table {
	tab := &stats.Table{
		Header: []string{"block", "msgs", "short", "data", "migr", "repl", "inval", "class", "declass"},
	}
	for _, b := range m.TopBlocks(n) {
		tab.Add(fmt.Sprintf("%d", b.Block),
			fmt.Sprintf("%d", b.Short+b.Data),
			fmt.Sprintf("%d", b.Short), fmt.Sprintf("%d", b.Data),
			fmt.Sprintf("%d", b.Migrations), fmt.Sprintf("%d", b.Replications),
			fmt.Sprintf("%d", b.Invalidations),
			fmt.Sprintf("%d", b.Classifications), fmt.Sprintf("%d", b.Declassifications))
	}
	return tab
}

// RenderHistograms renders the migration-run-length and
// classification-latency distributions. Call Finish first.
func (m *MetricsProbe) RenderHistograms() *stats.Table {
	tab := &stats.Table{
		Header: []string{"distribution", "bucket", "count"},
	}
	render := func(name string, h *Histogram) {
		if h.Count == 0 {
			tab.Add(name, "(empty)", "0")
			return
		}
		for i, c := range h.Buckets {
			if c != 0 {
				tab.Add(name, bucketLabel(i), fmt.Sprintf("%d", c))
			}
		}
		tab.Add(name, "mean", fmt.Sprintf("%.2f", h.Mean()))
		tab.Add(name, "min/max", fmt.Sprintf("%d/%d", h.Min, h.Max))
	}
	render("migration-run-length", &m.MigrationRuns)
	render("classify-latency", &m.ClassifyLatency)
	return tab
}
