package obs

import (
	"bufio"
	"io"
	"strconv"

	"migratory/internal/memory"
)

// TraceEventProbe exports the event stream in Chrome's trace_event JSON
// format, so a run opens directly in Perfetto (ui.perfetto.dev) or
// chrome://tracing. The mapping:
//
//   - process = protocol variant, thread = node (named via "M" metadata);
//   - every coherence event is a thread-scoped instant ("ph":"i") at
//     ts = step index (microsecond units stand in for access steps);
//   - cumulative short/data message counts are emitted as counter events
//     ("ph":"C") on each KindMessage, graphing traffic over the run.
//
// Call Close after the run to write the closing bracket and flush.
type TraceEventProbe struct {
	w       *bufio.Writer
	scratch []byte
	err     error
	first   bool
	closed  bool

	pids      map[string]int
	namedTids map[int64]bool
	cumShort  uint64
	cumData   uint64
}

// NewTraceEventProbe returns a probe streaming trace_event JSON to w.
func NewTraceEventProbe(w io.Writer) *TraceEventProbe {
	p := &TraceEventProbe{
		w:         bufio.NewWriter(w),
		scratch:   make([]byte, 0, 256),
		first:     true,
		pids:      make(map[string]int),
		namedTids: make(map[int64]bool),
	}
	p.raw(`{"traceEvents":[`)
	return p
}

func (p *TraceEventProbe) raw(s string) {
	if p.err != nil {
		return
	}
	if _, err := p.w.WriteString(s); err != nil {
		p.err = err
	}
}

func (p *TraceEventProbe) emit(b []byte) {
	if p.err != nil {
		return
	}
	if !p.first {
		if err := p.w.WriteByte(','); err != nil {
			p.err = err
			return
		}
	}
	p.first = false
	if _, err := p.w.Write(b); err != nil {
		p.err = err
	}
}

// pid assigns a stable process ID per variant, emitting the process_name
// metadata record on first sight.
func (p *TraceEventProbe) pid(variant string) int {
	id, ok := p.pids[variant]
	if !ok {
		id = len(p.pids) + 1
		p.pids[variant] = id
		b := p.scratch[:0]
		b = append(b, `{"name":"process_name","ph":"M","pid":`...)
		b = strconv.AppendInt(b, int64(id), 10)
		b = append(b, `,"args":{"name":"`...)
		b = append(b, variant...)
		b = append(b, `"}}`...)
		p.scratch = b
		p.emit(b)
	}
	return id
}

// tid emits the thread_name metadata record the first time a (pid, node)
// pair appears.
func (p *TraceEventProbe) tid(pid int, node memory.NodeID) int {
	key := int64(pid)<<32 | int64(node)
	if !p.namedTids[key] {
		p.namedTids[key] = true
		b := p.scratch[:0]
		b = append(b, `{"name":"thread_name","ph":"M","pid":`...)
		b = strconv.AppendInt(b, int64(pid), 10)
		b = append(b, `,"tid":`...)
		b = strconv.AppendInt(b, int64(node), 10)
		b = append(b, `,"args":{"name":"P`...)
		b = strconv.AppendInt(b, int64(node), 10)
		b = append(b, `"}}`...)
		p.scratch = b
		p.emit(b)
	}
	return int(node)
}

// OnEvent implements Probe.
func (p *TraceEventProbe) OnEvent(e Event) {
	if p.err != nil || p.closed {
		return
	}
	pid := p.pid(e.Variant)
	tid := p.tid(pid, e.Node)

	b := p.scratch[:0]
	b = append(b, `{"name":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","cat":"coherence","ph":"i","s":"t","pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, `,"ts":`...)
	b = strconv.AppendUint(b, e.Step, 10)
	b = append(b, `,"args":{"block":`...)
	b = strconv.AppendUint(b, uint64(e.Block), 10)
	b = append(b, `,"access":"`...)
	b = append(b, e.Access.Kind.String()...)
	b = append(b, ` 0x`...)
	b = strconv.AppendUint(b, uint64(e.Access.Addr), 16)
	b = append(b, '"')
	if e.Old != "" || e.New != "" {
		b = append(b, `,"transition":"`...)
		b = append(b, e.Old...)
		b = append(b, "->"...)
		b = append(b, e.New...)
		b = append(b, '"')
	}
	if e.Op != "" {
		b = append(b, `,"op":"`...)
		b = append(b, e.Op...)
		b = append(b, '"')
	}
	if e.Kind == KindEvidence || e.Kind == KindClassify || e.Kind == KindDeclassify {
		b = append(b, `,"evidence":`...)
		b = strconv.AppendInt(b, int64(e.Evidence), 10)
	}
	if e.Migratory {
		b = append(b, `,"migratory":true`...)
	}
	b = append(b, `}}`...)
	p.scratch = b
	p.emit(b)

	if e.Kind == KindMessage {
		p.cumShort += uint64(e.Short)
		p.cumData += uint64(e.Data)
		b := p.scratch[:0]
		b = append(b, `{"name":"messages","ph":"C","pid":`...)
		b = strconv.AppendInt(b, int64(pid), 10)
		b = append(b, `,"ts":`...)
		b = strconv.AppendUint(b, e.Step, 10)
		b = append(b, `,"args":{"short":`...)
		b = strconv.AppendUint(b, p.cumShort, 10)
		b = append(b, `,"data":`...)
		b = strconv.AppendUint(b, p.cumData, 10)
		b = append(b, `}}`...)
		p.scratch = b
		p.emit(b)
	}
}

// Close writes the closing bracket, flushes, and returns the first error
// encountered. The probe drops any events after Close.
func (p *TraceEventProbe) Close() error {
	if !p.closed {
		p.closed = true
		p.raw(`]}`)
		p.raw("\n")
	}
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}
