package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"migratory/internal/memory"
	"migratory/internal/trace"
)

func TestKindNamesRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("round trip %v -> %v", k, got)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind accepted a bogus name")
	}
}

func TestEventString(t *testing.T) {
	e := Event{
		Step: 12, Kind: KindClassify, Node: 3, Block: 5, Variant: "basic",
		Access:   trace.Access{Node: 3, Kind: trace.Write, Addr: 0x50},
		Evidence: 1, Migratory: true,
	}
	want := "#12 basic P3 classify blk=5 evidence=1 migratory (P3 write 0x50)"
	if got := e.String(); got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}

func TestMultiProbeFansOut(t *testing.T) {
	var a, b int
	m := MultiProbe{
		FuncProbe(func(Event) { a++ }),
		FuncProbe(func(Event) { b++ }),
	}
	m.OnEvent(Event{})
	m.OnEvent(Event{})
	if a != 2 || b != 2 {
		t.Fatalf("fan-out counts %d/%d", a, b)
	}
}

func TestFilter(t *testing.T) {
	zero := Filter{}
	if !zero.Match(Event{Kind: KindMigration, Node: 7, Block: 9}) {
		t.Fatal("zero filter rejected an event")
	}
	f := Filter{
		Kinds:  KindSet(0).Add(KindClassify).Add(KindMigration),
		Blocks: map[memory.BlockID]bool{5: true},
		Nodes:  map[memory.NodeID]bool{3: true},
	}
	cases := []struct {
		e    Event
		want bool
	}{
		{Event{Kind: KindClassify, Node: 3, Block: 5}, true},
		{Event{Kind: KindMigration, Node: 3, Block: 5}, true},
		{Event{Kind: KindHit, Node: 3, Block: 5}, false},
		{Event{Kind: KindClassify, Node: 2, Block: 5}, false},
		{Event{Kind: KindClassify, Node: 3, Block: 6}, false},
	}
	for i, c := range cases {
		if got := f.Match(c.e); got != c.want {
			t.Errorf("case %d: Match = %v, want %v", i, got, c.want)
		}
	}
	n := 0
	p := FilterProbe{Filter: f, Next: FuncProbe(func(Event) { n++ })}
	for _, c := range cases {
		p.OnEvent(c.e)
	}
	if n != 2 {
		t.Fatalf("FilterProbe passed %d events, want 2", n)
	}
}

func TestHistogram(t *testing.T) {
	var h Histogram
	if h.Mean() != 0 {
		t.Fatal("empty histogram mean != 0")
	}
	for _, v := range []uint64{0, 1, 1, 2, 3, 4, 7, 8, 100} {
		h.Add(v)
	}
	if h.Count != 9 || h.Sum != 126 || h.Min != 0 || h.Max != 100 {
		t.Fatalf("histogram %+v", h)
	}
	// Buckets: len(0)=0 -> b0; 1 -> b1; 2,3 -> b2; 4..7 -> b3; 8 -> b4; 100 -> b7.
	wantBuckets := []uint64{1, 2, 2, 2, 1, 0, 0, 1}
	if len(h.Buckets) != len(wantBuckets) {
		t.Fatalf("buckets %v", h.Buckets)
	}
	for i, w := range wantBuckets {
		if h.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, h.Buckets[i], w, h.Buckets)
		}
	}

	var a, b Histogram
	a.Add(1)
	a.Add(200)
	b.Add(3)
	a.Merge(&b)
	if a.Count != 3 || a.Sum != 204 || a.Min != 1 || a.Max != 200 {
		t.Fatalf("merged %+v", a)
	}
	var empty Histogram
	empty.Merge(&a)
	if empty.Count != 3 || empty.Min != 1 {
		t.Fatalf("merge into empty %+v", empty)
	}
}

// events replays a tiny synthetic stream: two blocks, two nodes, with a
// migration run, a classification, and messages.
func sampleEvents() []Event {
	acc := func(n memory.NodeID) trace.Access {
		return trace.Access{Node: n, Kind: trace.Read, Addr: 0x10}
	}
	return []Event{
		{Step: 0, Kind: KindMessage, Node: 0, Block: 1, Variant: "basic", Op: "read miss", Short: 1, Data: 1, Access: acc(0)},
		{Step: 1, Kind: KindHit, Node: 0, Block: 1, Variant: "basic", Access: acc(0)},
		{Step: 2, Kind: KindMessage, Node: 1, Block: 1, Variant: "basic", Op: "write miss", Short: 2, Access: acc(1)},
		{Step: 3, Kind: KindClassify, Node: 1, Block: 1, Variant: "basic", Evidence: 1, Migratory: true, Access: acc(1)},
		{Step: 4, Kind: KindMigration, Node: 0, Block: 1, Variant: "basic", Migratory: true, Access: acc(0)},
		{Step: 5, Kind: KindMigration, Node: 1, Block: 1, Variant: "basic", Migratory: true, Access: acc(1)},
		{Step: 6, Kind: KindDeclassify, Node: 1, Block: 1, Variant: "basic", Access: acc(1)},
		{Step: 7, Kind: KindMessage, Node: 1, Block: 2, Variant: "basic", Op: "read miss", Short: 1, Access: acc(1)},
	}
}

func TestMetricsProbe(t *testing.T) {
	m := &MetricsProbe{}
	for _, e := range sampleEvents() {
		m.OnEvent(e)
	}
	m.Finish()

	if m.Variant != "basic" {
		t.Fatalf("variant %q", m.Variant)
	}
	if m.Total.Events != 8 || m.Total.Short != 4 || m.Total.Data != 1 || m.Total.Hits != 1 {
		t.Fatalf("totals %+v", m.Total)
	}
	if m.Msgs().Short != 4 || m.Msgs().Data != 1 {
		t.Fatalf("msgs %+v", m.Msgs())
	}
	if m.NodeCount() != 2 || m.BlockCount() != 2 {
		t.Fatalf("nodes %d blocks %d", m.NodeCount(), m.BlockCount())
	}
	if n0 := m.Node(0); n0.Events != 3 || n0.Migrations != 1 {
		t.Fatalf("node 0 %+v", n0)
	}
	// Block 1 first seen from node 0, shared at step 2, classified at step
	// 3: latency 1.
	if m.ClassifyLatency.Count != 1 || m.ClassifyLatency.Sum != 1 {
		t.Fatalf("latency %+v", m.ClassifyLatency)
	}
	// The two migrations form one run, flushed by the declassification.
	if m.MigrationRuns.Count != 1 || m.MigrationRuns.Sum != 2 {
		t.Fatalf("runs %+v", m.MigrationRuns)
	}
	top := m.TopBlocks(10)
	if len(top) != 2 || top[0].Block != 1 || top[1].Block != 2 {
		t.Fatalf("top blocks %+v", top)
	}
	if top[0].Short+top[0].Data != 4 {
		t.Fatalf("hottest block msgs %d", top[0].Short+top[0].Data)
	}
	if got := m.TopBlocks(1); len(got) != 1 {
		t.Fatalf("TopBlocks(1) returned %d", len(got))
	}

	// Render methods must not panic and must mention every node.
	if s := m.RenderNodes().String(); !strings.Contains(s, "P1") || !strings.Contains(s, "total") {
		t.Fatalf("RenderNodes:\n%s", s)
	}
	if s := m.RenderTopBlocks(5).String(); !strings.Contains(s, "1") {
		t.Fatalf("RenderTopBlocks:\n%s", s)
	}
	if s := m.RenderHistograms().String(); !strings.Contains(s, "migration-run-length") {
		t.Fatalf("RenderHistograms:\n%s", s)
	}
}

// TestMetricsMergeMatchesSequential splits the sample stream across
// per-cell probes and checks that merging them (in order) equals one
// sequential probe, and that merge order over disjoint cells does not
// change the aggregate counters.
func TestMetricsMergeMatchesSequential(t *testing.T) {
	evs := sampleEvents()
	seq := &MetricsProbe{}
	for _, e := range evs {
		seq.OnEvent(e)
	}
	seq.Finish()

	a, b := &MetricsProbe{}, &MetricsProbe{}
	for i, e := range evs {
		if i < 4 {
			a.OnEvent(e)
		} else {
			b.OnEvent(e)
		}
	}
	merged := MergeMetrics(a, nil, b)
	if merged.Total != seq.Total {
		t.Fatalf("merged totals %+v != sequential %+v", merged.Total, seq.Total)
	}
	if merged.ByKind != seq.ByKind {
		t.Fatalf("merged byKind %v != %v", merged.ByKind, seq.ByKind)
	}
	for n := memory.NodeID(0); int(n) < seq.NodeCount(); n++ {
		if merged.Node(n) != seq.Node(n) {
			t.Fatalf("node %d: %+v != %+v", n, merged.Node(n), seq.Node(n))
		}
	}
	if merged.Block(1) != seq.Block(1) || merged.Block(2) != seq.Block(2) {
		t.Fatal("per-block counters diverge after merge")
	}
	// Note: the split cut the migration run in half, so the run histogram
	// legitimately differs (two runs of 1 instead of one run of 2) — that
	// is why sweep cells carry whole runs, not arbitrary splits. Counter
	// totals above must still match exactly.
	if merged.MigrationRuns.Sum != seq.MigrationRuns.Sum {
		t.Fatalf("run totals %d != %d", merged.MigrationRuns.Sum, seq.MigrationRuns.Sum)
	}
}

func TestJSONLProbe(t *testing.T) {
	var buf bytes.Buffer
	p := NewJSONLProbe(&buf)
	for _, e := range sampleEvents() {
		p.OnEvent(e)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(sampleEvents()) {
		t.Fatalf("%d lines, want %d", len(lines), len(sampleEvents()))
	}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not valid JSON: %v\n%s", i, err, line)
		}
		if m["variant"] != "basic" {
			t.Fatalf("line %d variant %v", i, m["variant"])
		}
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["kind"] != "message" || first["short"] != float64(1) || first["op"] != "read miss" {
		t.Fatalf("first line %v", first)
	}
	if _, ok := first["migratory"]; ok {
		t.Fatal("zero field not omitted")
	}
}

func TestTraceEventProbe(t *testing.T) {
	var buf bytes.Buffer
	p := NewTraceEventProbe(&buf)
	for _, e := range sampleEvents() {
		p.OnEvent(e)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid trace_event JSON: %v\n%s", err, buf.String())
	}
	var meta, instants, counters int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M":
			meta++
		case "i":
			instants++
		case "C":
			counters++
		}
	}
	// 1 process_name + 2 thread_name metadata records; every sample event
	// is an instant; each of the 3 messages adds a counter sample.
	if meta != 3 || instants != len(sampleEvents()) || counters != 3 {
		t.Fatalf("meta=%d instants=%d counters=%d", meta, instants, counters)
	}
}
