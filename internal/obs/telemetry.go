package obs

import "migratory/internal/telemetry"

// StatsProbe forwards the typed event stream's volume into a telemetry
// counter block (RunStats.Events), so a probe-instrumented run (e.g.
// cmd/inspect replaying a trace) shows its event rate on the live /metrics
// endpoint. It counts only Events — classifier transitions and migrations
// are owned by the engines' own batch-granularity counters, which a shared
// RunStats would otherwise double-count. Per-event accounting is
// acceptable here because attaching any probe already puts the run on the
// slow path. Wrap an inner probe to stack it with JSONL/metrics sinks.
type StatsProbe struct {
	Stats *telemetry.RunStats
	// Inner, when non-nil, receives every event after accounting.
	Inner Probe
}

// OnEvent implements Probe.
func (p *StatsProbe) OnEvent(e Event) {
	if p.Stats != nil {
		p.Stats.Events.Add(1)
	}
	if p.Inner != nil {
		p.Inner.OnEvent(e)
	}
}
