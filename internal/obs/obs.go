// Package obs is the observability layer of the simulators: a typed
// coherence event stream emitted by the protocol engines, and a family of
// composable probes that consume it — aggregating metrics, streaming JSONL,
// or exporting Chrome trace_event files that open in Perfetto.
//
// The paper's entire argument rests on *when* the classifier flips a block
// between migratory and other (Figure 3's hysteresis, Tables 2/3's message
// reductions); the event stream makes every such flip, every state
// transition, and every charged message individually visible instead of
// only the end-of-run aggregates.
//
// Probing is strictly opt-in: engines hold a nil Probe by default and guard
// every emission site with a nil check, so the uninstrumented hot path pays
// nothing beyond that branch. Events are plain values built only when a
// probe is attached; their string fields are shared constants, so emission
// does not allocate.
package obs

import (
	"errors"
	"fmt"

	"migratory/internal/memory"
	"migratory/internal/trace"
)

// ErrUnknownEventKind is wrapped by ParseKind when no event kind matches,
// so callers can classify the failure with errors.Is.
var ErrUnknownEventKind = errors.New("obs: unknown event kind")

// Kind enumerates the coherence event types.
type Kind uint8

const (
	// KindState: a cache line changed state without being invalidated
	// (fill, downgrade, upgrade). Old/New carry the engine's state names;
	// "I" is invalid (absent).
	KindState Kind = iota
	// KindEvidence: the classifier accumulated (or reset) migratory
	// evidence without crossing the hysteresis threshold.
	KindEvidence
	// KindClassify: a block was classified migratory.
	KindClassify
	// KindDeclassify: a block lost its migratory classification.
	KindDeclassify
	// KindMigration: a read miss was served by migrating the block —
	// handing the requester the sole, writable copy.
	KindMigration
	// KindReplication: a read miss was served by replicating the block.
	KindReplication
	// KindInvalidation: a remote cached copy was invalidated. Old carries
	// the invalidated line's state; New is "I".
	KindInvalidation
	// KindWriteBack: a dirty line was replaced and written back.
	KindWriteBack
	// KindCleanDrop: a clean line was silently replaced (on the directory
	// machine, with a notification to the home node).
	KindCleanDrop
	// KindMessage: inter-node messages were charged for one transaction
	// (directory engine: Table 1 short/data counts; bus engine: one bus
	// transaction, recorded as Short=1). Op names the operation class.
	KindMessage
	// KindOverflow: a limited directory entry overflowed and invalidations
	// were broadcast.
	KindOverflow
	// KindHit: an access completed locally with no communication.
	KindHit

	numKinds = int(KindHit) + 1
)

// String names the kind (the names ParseKind accepts).
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

var kindNames = [...]string{
	KindState:        "state",
	KindEvidence:     "evidence",
	KindClassify:     "classify",
	KindDeclassify:   "declassify",
	KindMigration:    "migration",
	KindReplication:  "replication",
	KindInvalidation: "invalidation",
	KindWriteBack:    "writeback",
	KindCleanDrop:    "cleandrop",
	KindMessage:      "message",
	KindOverflow:     "overflow",
	KindHit:          "hit",
}

// ParseKind resolves a kind name as printed by Kind.String.
func ParseKind(name string) (Kind, error) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownEventKind, name)
}

// Kinds lists every event kind in declaration order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Event is one coherence event, stamped with the step index of the
// triggering access, the node and block it concerns, and the protocol
// variant that produced it. Fields beyond the stamp are kind-specific and
// zero elsewhere.
type Event struct {
	// Step is the zero-based index of the triggering access in the run.
	Step uint64
	// Kind is the event type.
	Kind Kind
	// Node is the node the event concerns: the requester for misses,
	// migrations, and classifier events; the victim's holder for
	// invalidations, write-backs, and drops.
	Node memory.NodeID
	// Block is the cache block concerned.
	Block memory.BlockID
	// Variant is the protocol variant name ("basic", "adaptive", ...).
	Variant string
	// Access is the shared-memory reference that triggered the event.
	Access trace.Access
	// Old and New are line state names for KindState, KindInvalidation,
	// KindWriteBack, and KindCleanDrop ("I" = invalid).
	Old, New string
	// Op names the operation class for KindMessage ("read miss", ...).
	Op string
	// Short and Data are the messages charged (KindMessage).
	Short, Data int
	// Evidence is the classifier's hysteresis counter after the event
	// (KindEvidence, KindClassify, KindDeclassify).
	Evidence int
	// Migratory is the block's classification after the event.
	Migratory bool
}

// String renders the event as one diagnostic line, e.g.
//
//	#12 basic P3 classify blk=5 evidence=1 migratory (P3 write 0x50)
func (e Event) String() string {
	s := fmt.Sprintf("#%d %s P%d %s blk=%d", e.Step, e.Variant, e.Node, e.Kind, e.Block)
	if e.Old != "" || e.New != "" {
		s += fmt.Sprintf(" %s->%s", e.Old, e.New)
	}
	if e.Op != "" {
		s += fmt.Sprintf(" op=%q", e.Op)
	}
	if e.Kind == KindMessage {
		s += fmt.Sprintf(" short=%d data=%d", e.Short, e.Data)
	}
	if e.Kind == KindEvidence || e.Kind == KindClassify || e.Kind == KindDeclassify {
		s += fmt.Sprintf(" evidence=%d", e.Evidence)
	}
	if e.Migratory {
		s += " migratory"
	}
	return s + fmt.Sprintf(" (%s)", e.Access)
}

// Probe consumes coherence events. Implementations attached to a single
// System are invoked synchronously from the simulation loop and need not be
// safe for concurrent use; sweep drivers attach one probe per cell.
type Probe interface {
	OnEvent(Event)
}

// FuncProbe adapts a function to the Probe interface.
type FuncProbe func(Event)

// OnEvent implements Probe.
func (f FuncProbe) OnEvent(e Event) { f(e) }

// MultiProbe fans every event out to each probe in order.
type MultiProbe []Probe

// OnEvent implements Probe.
func (m MultiProbe) OnEvent(e Event) {
	for _, p := range m {
		p.OnEvent(e)
	}
}

// KindSet is a set of event kinds. The zero value is the empty set, which
// Filter treats as "all kinds".
type KindSet uint32

// Add returns s with k added.
func (s KindSet) Add(k Kind) KindSet { return s | 1<<k }

// Has reports whether k is in the set.
func (s KindSet) Has(k Kind) bool { return s&(1<<k) != 0 }

// Filter selects a subset of the event stream. Zero-valued fields match
// everything, so the zero Filter passes every event.
type Filter struct {
	// Kinds restricts the event kinds (zero = all).
	Kinds KindSet
	// Blocks restricts to the given blocks (nil = all).
	Blocks map[memory.BlockID]bool
	// Nodes restricts to events concerning the given nodes (nil = all).
	Nodes map[memory.NodeID]bool
}

// Match reports whether the event passes the filter.
func (f Filter) Match(e Event) bool {
	if f.Kinds != 0 && !f.Kinds.Has(e.Kind) {
		return false
	}
	if f.Blocks != nil && !f.Blocks[e.Block] {
		return false
	}
	if f.Nodes != nil && !f.Nodes[e.Node] {
		return false
	}
	return true
}

// FilterProbe forwards matching events to Next.
type FilterProbe struct {
	Filter Filter
	Next   Probe
}

// OnEvent implements Probe.
func (p FilterProbe) OnEvent(e Event) {
	if p.Filter.Match(e) {
		p.Next.OnEvent(e)
	}
}
