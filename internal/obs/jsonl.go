package obs

import (
	"bufio"
	"io"
	"strconv"
)

// JSONLProbe streams every event as one JSON object per line. Encoding is
// hand-rolled over a reused scratch buffer — no reflection, no per-event
// allocation — so a JSONL stream can be attached to full-length runs.
//
// Line schema (fields with zero values are omitted, except the stamp):
//
//	{"step":12,"kind":"classify","variant":"basic","node":3,"block":5,
//	 "access":"write","addr":"0x50","old":"R","new":"W","op":"read miss",
//	 "short":2,"data":1,"evidence":1,"migratory":true}
//
// Call Flush (and check its error) after the run; the probe itself cannot
// report write errors from OnEvent, so the first error is sticky and
// returned by Flush.
type JSONLProbe struct {
	w       *bufio.Writer
	scratch []byte
	err     error
}

// NewJSONLProbe returns a probe streaming to w.
func NewJSONLProbe(w io.Writer) *JSONLProbe {
	return &JSONLProbe{w: bufio.NewWriter(w), scratch: make([]byte, 0, 256)}
}

// OnEvent implements Probe.
func (p *JSONLProbe) OnEvent(e Event) {
	if p.err != nil {
		return
	}
	b := p.scratch[:0]
	b = append(b, `{"step":`...)
	b = strconv.AppendUint(b, e.Step, 10)
	b = append(b, `,"kind":"`...)
	b = append(b, e.Kind.String()...)
	b = append(b, `","variant":"`...)
	b = append(b, e.Variant...)
	b = append(b, `","node":`...)
	b = strconv.AppendInt(b, int64(e.Node), 10)
	b = append(b, `,"block":`...)
	b = strconv.AppendUint(b, uint64(e.Block), 10)
	b = append(b, `,"access":"`...)
	b = append(b, e.Access.Kind.String()...)
	b = append(b, `","addr":"0x`...)
	b = strconv.AppendUint(b, uint64(e.Access.Addr), 16)
	b = append(b, '"')
	if e.Old != "" {
		b = append(b, `,"old":"`...)
		b = append(b, e.Old...)
		b = append(b, '"')
	}
	if e.New != "" {
		b = append(b, `,"new":"`...)
		b = append(b, e.New...)
		b = append(b, '"')
	}
	if e.Op != "" {
		b = append(b, `,"op":"`...)
		b = append(b, e.Op...)
		b = append(b, '"')
	}
	if e.Short != 0 {
		b = append(b, `,"short":`...)
		b = strconv.AppendInt(b, int64(e.Short), 10)
	}
	if e.Data != 0 {
		b = append(b, `,"data":`...)
		b = strconv.AppendInt(b, int64(e.Data), 10)
	}
	if e.Evidence != 0 {
		b = append(b, `,"evidence":`...)
		b = strconv.AppendInt(b, int64(e.Evidence), 10)
	}
	if e.Migratory {
		b = append(b, `,"migratory":true`...)
	}
	b = append(b, '}', '\n')
	p.scratch = b
	if _, err := p.w.Write(b); err != nil {
		p.err = err
	}
}

// Flush drains the buffer and returns the first write error, if any.
func (p *JSONLProbe) Flush() error {
	if p.err != nil {
		return p.err
	}
	return p.w.Flush()
}
