// Package placement assigns virtual pages of the shared address space to
// home nodes. The home node of a page holds the memory and the directory
// entries for every block in the page, so placement determines how many
// coherence operations cross node boundaries.
//
// The paper's trace-driven simulator "uses a simple dynamic technique for
// finding a good static placement" (§3.3, after Bolosky et al. and
// Stenström et al.), while the execution-driven simulations use "the
// standard round-robin memory allocation" (§4.2 attributes most of the gap
// between the two sets of results to exactly this difference). Both are
// provided here, plus first-touch as a common point of comparison.
package placement

import (
	"errors"
	"fmt"
	"io"

	"migratory/internal/memory"
	"migratory/internal/trace"
)

// Policy maps pages to home nodes. Implementations are immutable once
// built; Home must be deterministic.
type Policy interface {
	// Home returns the home node of a page.
	Home(p memory.PageID) memory.NodeID
	// Name identifies the policy in reports.
	Name() string
}

// RoundRobin assigns page p to node p mod n.
type RoundRobin struct {
	n int
}

// NewRoundRobin returns a round-robin policy over n nodes.
func NewRoundRobin(n int) RoundRobin {
	if n <= 0 {
		panic(fmt.Sprintf("placement: node count %d", n))
	}
	return RoundRobin{n: n}
}

// Home implements Policy.
func (r RoundRobin) Home(p memory.PageID) memory.NodeID {
	return memory.NodeID(uint64(p) % uint64(r.n))
}

// Name implements Policy.
func (r RoundRobin) Name() string { return "round-robin" }

// Static is a fixed page->node table with a fallback for unmapped pages.
type Static struct {
	name     string
	table    map[memory.PageID]memory.NodeID
	fallback RoundRobin
}

// Home implements Policy.
func (s *Static) Home(p memory.PageID) memory.NodeID {
	if n, ok := s.table[p]; ok {
		return n
	}
	return s.fallback.Home(p)
}

// Name implements Policy.
func (s *Static) Name() string { return s.name }

// Pages returns the number of explicitly mapped pages.
func (s *Static) Pages() int { return len(s.table) }

// FirstTouch builds a static placement that assigns each page to the first
// node that references it in the trace.
func FirstTouch(accesses []trace.Access, geom memory.Geometry, nodes int) *Static {
	s, err := FirstTouchSource(trace.NewSliceSource(accesses), geom, nodes)
	if err != nil {
		// A SliceSource never fails.
		panic(err)
	}
	return s
}

// FirstTouchSource is FirstTouch over a streamed trace: one pass, state
// proportional to the number of distinct pages.
func FirstTouchSource(src trace.Reader, geom memory.Geometry, nodes int) (*Static, error) {
	table := make(map[memory.PageID]memory.NodeID)
	err := each(src, func(a trace.Access) {
		p := geom.Page(a.Addr)
		if _, ok := table[p]; !ok {
			table[p] = a.Node
		}
	})
	if err != nil {
		return nil, err
	}
	return &Static{name: "first-touch", table: table, fallback: NewRoundRobin(nodes)}, nil
}

// UsageBased builds the paper's "good static placement": each page is
// assigned to the node that references it most over the whole trace, with
// ties broken toward the lower node ID. This is the profile-then-place
// technique of Bolosky et al. and Stenström et al. cited in §3.3.
func UsageBased(accesses []trace.Access, geom memory.Geometry, nodes int) *Static {
	s, err := UsageBasedSource(trace.NewSliceSource(accesses), geom, nodes)
	if err != nil {
		// A SliceSource never fails.
		panic(err)
	}
	return s
}

// UsageBasedSource is UsageBased over a streamed trace: one pass, state
// proportional to the number of distinct pages. It is the profiling pass of
// the two-pass trace-driven methodology; the caller Resets the source and
// replays it for the protocol simulation proper.
func UsageBasedSource(src trace.Reader, geom memory.Geometry, nodes int) (*Static, error) {
	counts := make(map[memory.PageID]*[memory.MaxNodes]uint32)
	err := each(src, func(a trace.Access) {
		p := geom.Page(a.Addr)
		c, ok := counts[p]
		if !ok {
			c = new([memory.MaxNodes]uint32)
			counts[p] = c
		}
		c[a.Node]++
	})
	if err != nil {
		return nil, err
	}
	table := make(map[memory.PageID]memory.NodeID, len(counts))
	for p, c := range counts {
		best := memory.NodeID(0)
		for n := 1; n < nodes; n++ {
			if c[n] > c[best] {
				best = memory.NodeID(n)
			}
		}
		table[p] = best
	}
	return &Static{name: "usage-based", table: table, fallback: NewRoundRobin(nodes)}, nil
}

// LocalFraction reports the fraction of accesses in the trace whose page is
// homed at the accessing node under the given policy. It is a direct
// measure of placement quality.
func LocalFraction(accesses []trace.Access, geom memory.Geometry, p Policy) float64 {
	f, err := LocalFractionSource(trace.NewSliceSource(accesses), geom, p)
	if err != nil {
		// A SliceSource never fails.
		panic(err)
	}
	return f
}

// LocalFractionSource is LocalFraction over a streamed trace.
func LocalFractionSource(src trace.Reader, geom memory.Geometry, p Policy) (float64, error) {
	local, total := 0, 0
	err := each(src, func(a trace.Access) {
		total++
		if p.Home(geom.Page(a.Addr)) == a.Node {
			local++
		}
	})
	if err != nil {
		return 0, err
	}
	if total == 0 {
		return 0, nil
	}
	return float64(local) / float64(total), nil
}

// each drains src through fn, folding io.EOF into a nil return.
func each(src trace.Reader, fn func(trace.Access)) error {
	for {
		a, err := src.Next()
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return err
		}
		fn(a)
	}
}
