package placement

import (
	"testing"

	"migratory/internal/memory"
	"migratory/internal/trace"
)

var geom = memory.MustGeometry(16, 4096)

func pageAddr(p int) memory.Addr { return memory.Addr(p * 4096) }

func TestRoundRobin(t *testing.T) {
	r := NewRoundRobin(16)
	if r.Name() != "round-robin" {
		t.Fatalf("Name = %q", r.Name())
	}
	for p := memory.PageID(0); p < 64; p++ {
		if got := r.Home(p); got != memory.NodeID(p%16) {
			t.Fatalf("Home(%d) = %d", p, got)
		}
	}
}

func TestRoundRobinPanicsOnZeroNodes(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRoundRobin(0)
}

func TestFirstTouch(t *testing.T) {
	accs := []trace.Access{
		{Node: 3, Kind: trace.Read, Addr: pageAddr(0)},
		{Node: 5, Kind: trace.Write, Addr: pageAddr(0) + 64}, // same page, later
		{Node: 7, Kind: trace.Read, Addr: pageAddr(1)},
	}
	p := FirstTouch(accs, geom, 16)
	if p.Name() != "first-touch" {
		t.Fatalf("Name = %q", p.Name())
	}
	if p.Pages() != 2 {
		t.Fatalf("Pages = %d", p.Pages())
	}
	if got := p.Home(0); got != 3 {
		t.Fatalf("Home(0) = %d; want first toucher 3", got)
	}
	if got := p.Home(1); got != 7 {
		t.Fatalf("Home(1) = %d", got)
	}
	// Unmapped page falls back to round robin.
	if got := p.Home(99); got != memory.NodeID(99%16) {
		t.Fatalf("fallback Home(99) = %d", got)
	}
}

func TestUsageBased(t *testing.T) {
	var accs []trace.Access
	// Page 0: node 2 accesses 5 times, node 9 accesses 3 times.
	for i := 0; i < 5; i++ {
		accs = append(accs, trace.Access{Node: 2, Kind: trace.Read, Addr: pageAddr(0)})
	}
	for i := 0; i < 3; i++ {
		accs = append(accs, trace.Access{Node: 9, Kind: trace.Write, Addr: pageAddr(0) + 32})
	}
	// Page 1: tie between nodes 4 and 1 -> lower ID wins.
	accs = append(accs,
		trace.Access{Node: 4, Kind: trace.Read, Addr: pageAddr(1)},
		trace.Access{Node: 1, Kind: trace.Read, Addr: pageAddr(1)},
	)
	p := UsageBased(accs, geom, 16)
	if p.Name() != "usage-based" {
		t.Fatalf("Name = %q", p.Name())
	}
	if got := p.Home(0); got != 2 {
		t.Fatalf("Home(0) = %d; want 2", got)
	}
	if got := p.Home(1); got != 1 {
		t.Fatalf("Home(1) = %d; want tie broken to 1", got)
	}
}

func TestUsageBasedRespectsNodeBound(t *testing.T) {
	// Accesses from node 12 with nodes=4: counts beyond the bound are
	// ignored, so the page falls to node 0 (no in-range counts).
	accs := []trace.Access{{Node: 12, Kind: trace.Read, Addr: pageAddr(0)}}
	p := UsageBased(accs, geom, 4)
	if got := p.Home(0); got != 0 {
		t.Fatalf("Home(0) = %d; want 0", got)
	}
}

func TestLocalFraction(t *testing.T) {
	accs := []trace.Access{
		{Node: 0, Kind: trace.Read, Addr: pageAddr(0)}, // home 0 under RR: local
		{Node: 1, Kind: trace.Read, Addr: pageAddr(1)}, // local
		{Node: 2, Kind: trace.Read, Addr: pageAddr(1)}, // remote
		{Node: 3, Kind: trace.Read, Addr: pageAddr(0)}, // remote
	}
	got := LocalFraction(accs, geom, NewRoundRobin(16))
	if got != 0.5 {
		t.Fatalf("LocalFraction = %v", got)
	}
	if LocalFraction(nil, geom, NewRoundRobin(16)) != 0 {
		t.Fatal("empty trace should give 0")
	}
}

func TestUsageBasedBeatsRoundRobin(t *testing.T) {
	// A trace where each node works mostly on its own pages: usage-based
	// placement should make far more accesses local than round robin.
	var accs []trace.Access
	for n := memory.NodeID(0); n < 16; n++ {
		// Node n hammers page 100+n (which round robin homes elsewhere
		// for most n).
		for i := 0; i < 50; i++ {
			accs = append(accs, trace.Access{Node: n, Kind: trace.Read, Addr: pageAddr(100 + int(n))})
		}
		// And occasionally touches a shared page 0.
		accs = append(accs, trace.Access{Node: n, Kind: trace.Read, Addr: pageAddr(0)})
	}
	ub := UsageBased(accs, geom, 16)
	rr := NewRoundRobin(16)
	fu := LocalFraction(accs, geom, ub)
	fr := LocalFraction(accs, geom, rr)
	if fu < 0.9 {
		t.Fatalf("usage-based local fraction = %v; want > 0.9", fu)
	}
	if fu <= fr {
		t.Fatalf("usage-based (%v) not better than round robin (%v)", fu, fr)
	}
}
