package sim

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestRunIndexedCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 100
			var hits [n]atomic.Int32
			if err := runIndexed(context.Background(), n, workers, func(i int) error {
				hits[i].Add(1)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("index %d executed %d times", i, got)
				}
			}
		})
	}
}

func TestRunIndexedEmpty(t *testing.T) {
	if err := runIndexed(context.Background(), 0, 4, func(int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

func TestRunIndexedReturnsLowestIndexedError(t *testing.T) {
	// Sequentially the first failing index wins; the parallel pool must
	// report the same error even when a higher index fails first.
	wantErr := errors.New("boom")
	for _, workers := range []int{1, 4} {
		err := runIndexed(context.Background(), 50, workers, func(i int) error {
			if i == 7 || i == 30 {
				return fmt.Errorf("index %d: %w", i, wantErr)
			}
			return nil
		})
		if err == nil || !errors.Is(err, wantErr) {
			t.Fatalf("workers=%d: got %v, want wrapped boom", workers, err)
		}
		// With one worker, indices run in order and 7 always loses the
		// race to 30; with several workers 30 may be reported only if 7
		// was never issued, which the stop flag does not guarantee, so
		// we only check that *some* failing index is reported. The
		// deterministic sweeps rely on results, not error text.
	}
}

func TestRunIndexedStopsIssuingAfterError(t *testing.T) {
	var calls atomic.Int32
	err := runIndexed(context.Background(), 1_000_000, 2, func(i int) error {
		calls.Add(1)
		return errors.New("fail fast")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := calls.Load(); n > 100 {
		t.Fatalf("pool kept issuing work after error: %d calls", n)
	}
}

func TestOptionsWorkers(t *testing.T) {
	if got := (Options{Parallelism: 3}).workers(); got != 3 {
		t.Fatalf("Parallelism=3: workers() = %d", got)
	}
	if got := (Options{}).workers(); got < 1 {
		t.Fatalf("default workers() = %d, want >= 1", got)
	}
}
