package sim

import (
	"reflect"
	"testing"

	"migratory/internal/core"
)

// withParallelism returns o with only the parallelism knob changed, so the
// sequential and parallel runs are otherwise identical configurations.
func withParallelism(o Options, p int) Options {
	o.Parallelism = p
	return o
}

// TestTable2ParallelDeterminism is the core guarantee of the parallel sweep
// engine: a parallel run produces bit-identical results — down to the
// rendered table text — to a fully sequential one.
func TestTable2ParallelDeterminism(t *testing.T) {
	opts := testOpts("Water", "MP3D")
	opts.Length = 30_000

	seq, err := Table2(withParallelism(opts, 1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Table2(withParallelism(opts, 8))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := par.Render().String(), seq.Render().String(); got != want {
		t.Fatalf("parallel Table2 render differs from sequential:\n--- parallel ---\n%s\n--- sequential ---\n%s", got, want)
	}
	if !reflect.DeepEqual(par.Flatten(), seq.Flatten()) {
		t.Fatal("parallel Table2 Flatten() differs from sequential")
	}
}

func TestTable3ParallelDeterminism(t *testing.T) {
	opts := testOpts("Cholesky")
	opts.Length = 30_000

	seq, err := Table3(withParallelism(opts, 1))
	if err != nil {
		t.Fatal(err)
	}
	par, err := Table3(withParallelism(opts, 8))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := par.Render().String(), seq.Render().String(); got != want {
		t.Fatalf("parallel Table3 render differs from sequential:\n--- parallel ---\n%s\n--- sequential ---\n%s", got, want)
	}
	if !reflect.DeepEqual(par.Flatten(), seq.Flatten()) {
		t.Fatal("parallel Table3 Flatten() differs from sequential")
	}
}

func TestRunBusParallelDeterminism(t *testing.T) {
	opts := testOpts("Water", "Pthor")
	opts.Length = 30_000

	seq, err := RunBus(withParallelism(opts, 1), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunBus(withParallelism(opts, 8), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := par.Render().String(), seq.Render().String(); got != want {
		t.Fatalf("parallel RunBus render differs from sequential:\n--- parallel ---\n%s\n--- sequential ---\n%s", got, want)
	}
	if !reflect.DeepEqual(par.Flatten(), seq.Flatten()) {
		t.Fatal("parallel RunBus Flatten() differs from sequential")
	}
}

func TestAuxiliarySweepsParallelDeterminism(t *testing.T) {
	opts := testOpts("MP3D")
	opts.Length = 20_000

	t.Run("NodeCountSweep", func(t *testing.T) {
		seq, err := NodeCountSweep("MP3D", []int{4, 8}, withParallelism(opts, 1))
		if err != nil {
			t.Fatal(err)
		}
		par, err := NodeCountSweep("MP3D", []int{4, 8}, withParallelism(opts, 8))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par, seq) {
			t.Fatalf("parallel = %+v\nsequential = %+v", par, seq)
		}
	})
	t.Run("ClassifierAccuracy", func(t *testing.T) {
		seq, err := ClassifierAccuracy("MP3D", withParallelism(opts, 1), 0)
		if err != nil {
			t.Fatal(err)
		}
		par, err := ClassifierAccuracy("MP3D", withParallelism(opts, 8), 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par, seq) {
			t.Fatalf("parallel = %+v\nsequential = %+v", par, seq)
		}
	})
	t.Run("ExecutionTime", func(t *testing.T) {
		seq, err := ExecutionTime(withParallelism(opts, 1), core.Basic, 0)
		if err != nil {
			t.Fatal(err)
		}
		par, err := ExecutionTime(withParallelism(opts, 8), core.Basic, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(par, seq) {
			t.Fatalf("parallel = %+v\nsequential = %+v", par, seq)
		}
	})
}

// TestParallelSweepRaceSmoke drives the worker pool across every sweep with
// more workers than cells are wide, purely so `go test -race` can observe
// the concurrent access patterns. Results are checked for shape only — the
// determinism tests above cover values.
func TestParallelSweepRaceSmoke(t *testing.T) {
	opts := Options{Nodes: 8, Seed: 7, Length: 5_000, Parallelism: 8}

	sw, err := Table2(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Flatten()) == 0 {
		t.Fatal("empty Table2 sweep")
	}
	bus, err := RunBus(opts, []int{16 << 10, 32 << 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bus.Flatten()) == 0 {
		t.Fatal("empty bus sweep")
	}
}
