package sim

import (
	"strings"
	"testing"

	"migratory/internal/core"
	"migratory/internal/snoop"
	"migratory/internal/trace"
)

// testOpts keeps sweep tests fast: shorter traces, a subset of parameters.
func testOpts(apps ...string) Options {
	return Options{Nodes: 16, Seed: 1993, Length: 60_000, Apps: apps}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Nodes != 16 || o.Seed != 1993 {
		t.Fatalf("defaults: %+v", o)
	}
	if len(o.Apps) != 5 {
		t.Fatalf("apps: %v", o.Apps)
	}
	if len(o.Policies) != 4 || o.Policies[0].Name != "conventional" {
		t.Fatalf("policies: %v", o.Policies)
	}
}

func TestPrepareApp(t *testing.T) {
	app, err := PrepareApp("Water", testOpts("Water"))
	if err != nil {
		t.Fatal(err)
	}
	src, err := app.Open()
	if err != nil {
		t.Fatal(err)
	}
	accs, err := trace.ReadAll(src)
	src.Close()
	if err != nil {
		t.Fatal(err)
	}
	if app.Name != "Water" || len(accs) < 60_000 {
		t.Fatalf("app = %s, %d accesses", app.Name, len(accs))
	}
	if app.Placement == nil || app.Placement.Name() != "usage-based" {
		t.Fatal("placement not usage-based")
	}
	if _, err := PrepareApp("nope", testOpts()); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRunDirectoryCellErrors(t *testing.T) {
	app, err := PrepareApp("Water", testOpts("Water"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDirectoryCell(app, testOpts("Water"), core.Basic, 4096, 24); err == nil {
		t.Fatal("bad block size accepted")
	}
	if _, err := RunDirectoryCell(app, testOpts("Water"), core.Basic, 100, 16); err == nil {
		t.Fatal("bad cache size accepted")
	}
}

// TestTable2Shape asserts the qualitative findings of the paper's Table 2
// on a reduced sweep: every adaptive protocol beats conventional, more
// aggressive beats less aggressive, and the benefit grows with cache size.
func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive")
	}
	opts := testOpts("MP3D", "Water")
	sw, err := Table2(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.GroupValues) != 5 || !sw.GroupIsCache {
		t.Fatalf("groups = %v", sw.GroupValues)
	}
	for _, gv := range sw.GroupValues {
		for _, row := range sw.Rows[gv] {
			base := row.Cells[0]
			prev := 0.0
			for i, c := range row.Cells[1:] {
				red := c.Reduction(base)
				if red <= 0 {
					t.Errorf("%s @%d: %s reduction %.1f <= 0", row.App, gv, c.Policy.Name, red)
				}
				if red+2 < prev { // allow small non-monotonic noise
					t.Errorf("%s @%d: %s (%.1f) worse than less aggressive (%.1f)",
						row.App, gv, c.Policy.Name, red, prev)
				}
				prev = red
				_ = i
			}
		}
	}
	// Cache-size trend: the aggressive reduction at 1M exceeds 4K.
	for appIdx, app := range opts.Apps {
		small := sw.Rows[4<<10][appIdx]
		large := sw.Rows[1<<20][appIdx]
		if small.App != app || large.App != app {
			t.Fatalf("row ordering broken")
		}
		rs := small.Cells[3].Reduction(small.Cells[0])
		rl := large.Cells[3].Reduction(large.Cells[0])
		if rl <= rs {
			t.Errorf("%s: aggressive reduction at 1M (%.1f) not above 4K (%.1f)", app, rl, rs)
		}
	}
}

// TestTable3Shape asserts the block-size findings: MP3D's benefit collapses
// at 256-byte blocks (false sharing) while Cholesky's stays high.
func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is expensive")
	}
	opts := testOpts("Cholesky", "MP3D")
	// Cholesky's panel reuse needs a longer trace to stabilize.
	opts.Length = 150_000
	sw, err := Table3(opts)
	if err != nil {
		t.Fatal(err)
	}
	if sw.GroupIsCache {
		t.Fatal("Table3 grouped by cache")
	}
	red := func(bs int, appIdx int) float64 {
		row := sw.Rows[bs][appIdx]
		return row.Cells[3].Reduction(row.Cells[0])
	}
	// MP3D at 16B is near the theoretical maximum; at 256B it collapses.
	if r := red(16, 1); r < 35 {
		t.Errorf("MP3D @16B aggressive = %.1f; want >= 35", r)
	}
	if r16, r256 := red(16, 1), red(256, 1); r256 > r16-10 {
		t.Errorf("MP3D false-sharing collapse missing: 16B %.1f vs 256B %.1f", r16, r256)
	}
	// Cholesky degrades much less than MP3D (the paper shows it flat).
	cholDrop := red(16, 0) - red(256, 0)
	mp3dDrop := red(16, 1) - red(256, 1)
	if cholDrop+5 > mp3dDrop {
		t.Errorf("Cholesky drop %.1f not clearly below MP3D drop %.1f", cholDrop, mp3dDrop)
	}
	if r := red(256, 0); r < 15 {
		t.Errorf("Cholesky @256B aggressive = %.1f; want >= 15", r)
	}
}

func TestSweepRender(t *testing.T) {
	opts := testOpts("Water")
	opts.Length = 20_000
	sw, err := directorySweep(opts, nil, []int{4 << 10}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	out := sw.Render().String()
	for _, want := range []string{"4K", "Water", "conventional w/o", "aggressive w/o"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	ratios := sw.CostRatioTable().String()
	for _, want := range []string{"per-16B", "2:1", "aggressive"} {
		if !strings.Contains(ratios, want) {
			t.Errorf("ratio table missing %q:\n%s", want, ratios)
		}
	}
}

func TestRunBusShape(t *testing.T) {
	opts := testOpts("MP3D")
	sw, err := RunBus(opts, []int{64 << 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rows := sw.Rows[64<<10]
	if len(rows) != 1 || len(rows[0].Cells) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	mesi := rows[0].Cells[0].Counts
	adp := rows[0].Cells[1].Counts
	if adp.Total() >= mesi.Total() {
		t.Fatalf("adaptive bus total %d not below MESI %d", adp.Total(), mesi.Total())
	}
	// Model-1 savings for MP3D should be large (paper: over 40%).
	save := 100 * (1 - float64(adp.Total())/float64(mesi.Total()))
	if save < 30 {
		t.Fatalf("MP3D bus savings = %.1f; want >= 30", save)
	}
	out := sw.Render().String()
	for _, want := range []string{"mesi", "adaptive", "save%(model1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("bus render missing %q:\n%s", want, out)
		}
	}
}

func TestRunBusErrors(t *testing.T) {
	if _, err := RunBus(testOpts("nope"), nil, nil); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := RunBus(testOpts("Water"), []int{100}, []snoop.Protocol{snoop.MESI}); err == nil {
		t.Fatal("bad cache size accepted")
	}
}

func TestExecutionTime(t *testing.T) {
	opts := testOpts("MP3D")
	opts.Length = 50_000
	rows, err := ExecutionTime(opts, core.Basic, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.ReductionPct <= 0 {
		t.Fatalf("MP3D execution-time reduction = %.2f; want > 0", r.ReductionPct)
	}
	if r.Adaptive.Cycles >= r.Base.Cycles {
		t.Fatal("adaptive not faster")
	}
	if r.Base.StallFraction() <= r.Adaptive.StallFraction() {
		t.Fatal("stall fraction did not improve")
	}
	out := RenderExec(rows, core.Basic).String()
	for _, want := range []string{"MP3D", "basic cycles", "time reduction"} {
		if !strings.Contains(out, want) {
			t.Errorf("exec render missing %q:\n%s", want, out)
		}
	}
}

func TestExecutionTimeErrors(t *testing.T) {
	if _, err := ExecutionTime(testOpts("nope"), core.Basic, 0); err == nil {
		t.Fatal("unknown app accepted")
	}
}
