package sim

import (
	"strings"
	"testing"
)

func TestAccuracyArithmetic(t *testing.T) {
	a := Accuracy{TruePositive: 8, FalsePositive: 2, FalseNegative: 2}
	if got := a.Precision(); got != 0.8 {
		t.Fatalf("Precision = %v", got)
	}
	if got := a.Recall(); got != 0.8 {
		t.Fatalf("Recall = %v", got)
	}
	var empty Accuracy
	if empty.Precision() != 0 || empty.Recall() != 0 {
		t.Fatal("empty accuracy not zero")
	}
}

func TestClassifierAccuracyOnMigratoryWorkload(t *testing.T) {
	opts := testOpts("MP3D")
	rows, err := ClassifierAccuracy("MP3D", opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // conservative, basic, aggressive
		t.Fatalf("rows = %d", len(rows))
	}
	for _, a := range rows {
		if a.TotalBlocks == 0 || a.MigratoryBlocks == 0 {
			t.Fatalf("%s: empty scoring: %+v", a.Policy.Name, a)
		}
		// MP3D is overwhelmingly migratory and the rules are designed for
		// exactly this pattern: recall should be high for every variant.
		if r := a.Recall(); r < 0.7 {
			t.Errorf("%s recall = %.2f; want >= 0.7", a.Policy.Name, r)
		}
		if p := a.Precision(); p < 0.7 {
			t.Errorf("%s precision = %.2f; want >= 0.7", a.Policy.Name, p)
		}
		if a.TruePositive+a.FalsePositive+a.FalseNegative+a.TrueNegative != a.TotalBlocks {
			t.Errorf("%s: confusion matrix does not sum: %+v", a.Policy.Name, a)
		}
	}
	// More aggressive variants detect at least as much (recall ordering).
	if rows[0].Recall() > rows[1].Recall()+0.02 {
		t.Errorf("conservative recall %.2f above basic %.2f", rows[0].Recall(), rows[1].Recall())
	}
	out := RenderAccuracy(rows).String()
	for _, want := range []string{"precision", "recall", "basic", "aggressive"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestClassifierAccuracyUnknownApp(t *testing.T) {
	if _, err := ClassifierAccuracy("nope", testOpts(), 0); err == nil {
		t.Fatal("unknown app accepted")
	}
}
