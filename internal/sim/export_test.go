package sim

import (
	"encoding/json"
	"strings"
	"testing"

	"migratory/internal/snoop"
)

func smallSweep(t *testing.T) *Sweep {
	t.Helper()
	opts := testOpts("Water")
	opts.Length = 20_000
	sw, err := directorySweep(opts, nil, []int{4 << 10, 0}, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	return sw
}

func TestSweepFlatten(t *testing.T) {
	sw := smallSweep(t)
	cells := sw.Flatten()
	// 2 groups x 1 app x 4 policies.
	if len(cells) != 8 {
		t.Fatalf("flattened %d cells", len(cells))
	}
	if cells[0].Policy != "conventional" || cells[0].ReductionPct != 0 {
		t.Fatalf("first cell = %+v", cells[0])
	}
	for _, c := range cells {
		if c.App != "Water" || c.BlockSize != 16 {
			t.Fatalf("cell = %+v", c)
		}
		if c.TotalMsgs != c.ShortMsgs+c.DataMsgs {
			t.Fatalf("totals wrong: %+v", c)
		}
	}
	if cells[3].Policy != "aggressive" || cells[3].ReductionPct <= 0 {
		t.Fatalf("aggressive cell = %+v", cells[3])
	}
}

func TestSweepCSV(t *testing.T) {
	sw := smallSweep(t)
	out := sw.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 9 {
		t.Fatalf("%d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "app,policy,cache_bytes") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "Water,conventional,4096,16,") {
		t.Fatalf("row = %q", lines[1])
	}
	for _, l := range lines[1:] {
		if got := strings.Count(l, ","); got != 7 {
			t.Fatalf("row %q has %d commas", l, got)
		}
	}
}

func TestSweepJSONRoundTrip(t *testing.T) {
	sw := smallSweep(t)
	out, err := sw.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var cells []FlatCell
	if err := json.Unmarshal([]byte(out), &cells); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(cells) != 8 || cells[0].App != "Water" {
		t.Fatalf("decoded %d cells", len(cells))
	}
}

func TestCSVEscape(t *testing.T) {
	cases := map[string]string{
		"Water":       "Water",
		"Locus Route": "Locus Route",
		"a,b":         `"a,b"`,
		`say "hi"`:    `"say ""hi"""`,
		"line\nbreak": "\"line\nbreak\"",
	}
	for in, want := range cases {
		if got := csvEscape(in); got != want {
			t.Errorf("csvEscape(%q) = %q; want %q", in, got, want)
		}
	}
}

func TestBusSweepExports(t *testing.T) {
	opts := testOpts("Water")
	opts.Length = 20_000
	sw, err := RunBus(opts, []int{64 << 10}, []snoop.Protocol{snoop.MESI, snoop.Adaptive})
	if err != nil {
		t.Fatal(err)
	}
	cells := sw.Flatten()
	if len(cells) != 2 {
		t.Fatalf("flattened %d cells", len(cells))
	}
	if cells[0].Protocol != "mesi" || cells[0].Model1SavePct != 0 {
		t.Fatalf("base cell = %+v", cells[0])
	}
	if cells[1].Model1SavePct <= 0 {
		t.Fatalf("adaptive cell = %+v", cells[1])
	}
	if cells[1].Total != cells[1].ReadMiss+cells[1].WriteMiss+cells[1].Invalidation+cells[1].WriteBack {
		t.Fatalf("total mismatch: %+v", cells[1])
	}

	csv := sw.CSV()
	if !strings.Contains(csv, "mesi") || !strings.Contains(csv, "adaptive") {
		t.Fatalf("csv:\n%s", csv)
	}
	jsonOut, err := sw.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded []FlatBusCell
	if err := json.Unmarshal([]byte(jsonOut), &decoded); err != nil || len(decoded) != 2 {
		t.Fatalf("json decode: %v (%d cells)", err, len(decoded))
	}
}
