package sim

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"migratory/internal/core"
	"migratory/internal/snoop"
	"migratory/internal/trace"
	"migratory/internal/workload"
)

// sameSweep asserts two directory sweeps produced bit-identical counters
// cell by cell.
func sameSweep(t *testing.T, a, b *Sweep) {
	t.Helper()
	if len(a.GroupValues) != len(b.GroupValues) {
		t.Fatalf("group counts differ: %v vs %v", a.GroupValues, b.GroupValues)
	}
	for _, gv := range a.GroupValues {
		ra, rb := a.Rows[gv], b.Rows[gv]
		if len(ra) != len(rb) {
			t.Fatalf("group %d: %d vs %d rows", gv, len(ra), len(rb))
		}
		for i := range ra {
			for j := range ra[i].Cells {
				ca, cb := ra[i].Cells[j], rb[i].Cells[j]
				if ca.Msgs != cb.Msgs || ca.Counters != cb.Counters {
					t.Fatalf("group %d row %s cell %s: %+v vs %+v",
						gv, ra[i].App, ca.Policy.Name, ca.Msgs, cb.Msgs)
				}
			}
		}
	}
}

// TestStreamedTable2Equivalence: Options.Stream regenerates the trace
// lazily per cell and must land on exactly the counters of the
// materialized path.
func TestStreamedTable2Equivalence(t *testing.T) {
	opts := testOpts("MP3D")
	opts.Length = 20_000
	materialized, err := Table2(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Stream = true
	streamed, err := Table2(opts)
	if err != nil {
		t.Fatal(err)
	}
	sameSweep(t, materialized, streamed)
}

func TestStreamedTable3Equivalence(t *testing.T) {
	opts := testOpts("Water")
	opts.Length = 20_000
	materialized, err := Table3(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Stream = true
	streamed, err := Table3(opts)
	if err != nil {
		t.Fatal(err)
	}
	sameSweep(t, materialized, streamed)
}

func TestStreamedBusEquivalence(t *testing.T) {
	opts := testOpts("MP3D")
	opts.Length = 20_000
	caches := []int{64 << 10}
	prots := []snoop.Protocol{snoop.MESI, snoop.Adaptive}
	materialized, err := RunBus(opts, caches, prots)
	if err != nil {
		t.Fatal(err)
	}
	opts.Stream = true
	streamed, err := RunBus(opts, caches, prots)
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := materialized.Rows[64<<10], streamed.Rows[64<<10]
	for i := range ra {
		for j := range ra[i].Cells {
			if ra[i].Cells[j].Counts != rb[i].Cells[j].Counts {
				t.Fatalf("cell %d/%d: %+v vs %+v", i, j, ra[i].Cells[j].Counts, rb[i].Cells[j].Counts)
			}
		}
	}
}

// TestFileSourceSweepEquivalence drives Table2 from an .mtr file on disk
// and from the same trace in memory: identical counters, so the recorded
// format is a faithful transport.
func TestFileSourceSweepEquivalence(t *testing.T) {
	opts := testOpts("Water")
	opts.Length = 20_000
	prof, err := workload.ProfileByName("Water")
	if err != nil {
		t.Fatal(err)
	}
	accs, err := workload.Generate(prof, opts.Nodes, opts.Seed, opts.Length)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "water.mtr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriter(f, trace.Header{BlockSize: 16, PageSize: PageSize, Nodes: opts.Nodes})
	if _, err := trace.Copy(w, trace.NewSliceSource(accs)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	fileApp, err := NewSourceApp("Water", func() (trace.Source, error) {
		return trace.OpenFile(path)
	}, opts.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	sliceApp := NewApp("Water", accs, opts.Nodes)

	fromFile, err := Table2Apps([]*App{fileApp}, opts)
	if err != nil {
		t.Fatal(err)
	}
	fromSlice, err := Table2Apps([]*App{sliceApp}, opts)
	if err != nil {
		t.Fatal(err)
	}
	sameSweep(t, fromSlice, fromFile)
}

// TestSweepCancellation: a cancelled context aborts every sweep driver
// with the context's own error.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := testOpts("MP3D", "Water")
	opts.Context = ctx

	if _, err := Table2(opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("Table2 under cancelled ctx = %v", err)
	}
	if _, err := RunBus(opts, nil, nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunBus under cancelled ctx = %v", err)
	}
	if _, err := ExecutionTime(opts, core.Basic, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("ExecutionTime under cancelled ctx = %v", err)
	}
	if _, err := ClassifierAccuracy("MP3D", opts, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("ClassifierAccuracy under cancelled ctx = %v", err)
	}
	if _, err := NodeCountSweep("MP3D", []int{4, 8}, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("NodeCountSweep under cancelled ctx = %v", err)
	}
}

// TestMidRunCancellation cancels while cells are in flight; the sweep must
// stop promptly and return ctx.Err() itself, not a wrapped cell error.
func TestMidRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	opts := testOpts("MP3D")
	opts.Length = 200_000
	opts.Context = ctx
	opts.Parallelism = 2

	done := make(chan error, 1)
	go func() {
		_, err := Table2(opts)
		done <- err
	}()
	cancel()
	err := <-done
	if err == nil {
		// The sweep may legitimately have finished before cancel landed on
		// a fast machine; only a wrong error kind is a failure.
		return
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel = %v, want context.Canceled", err)
	}
	if err.Error() != context.Canceled.Error() {
		t.Fatalf("cancellation wrapped: %q", err)
	}
}
