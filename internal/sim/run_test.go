package sim

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"migratory/internal/core"
	"migratory/internal/memory"
	"migratory/internal/snoop"
	"migratory/internal/workload"
)

// TestRunConfigValidateSentinels checks that Validate surfaces each
// package's typed sentinel through errors.Is, so the CLI and the cohd HTTP
// layer can classify bad configs identically.
func TestRunConfigValidateSentinels(t *testing.T) {
	base := RunConfig{Engine: EngineDirectory, Workload: "MP3D", Policy: "basic"}
	cases := []struct {
		name string
		mut  func(*RunConfig)
		want error
	}{
		{"unknown engine", func(c *RunConfig) { c.Engine = "quantum" }, ErrUnknownEngine},
		{"unknown workload", func(c *RunConfig) { c.Workload = "Doom" }, workload.ErrUnknownProfile},
		{"unknown policy", func(c *RunConfig) { c.Policy = "psychic" }, core.ErrUnknownPolicy},
		{"unknown protocol", func(c *RunConfig) {
			c.Engine = EngineBus
			c.Policy = ""
			c.Protocol = "token-ring"
		}, snoop.ErrUnknownProtocol},
		{"unknown placement", func(c *RunConfig) { c.Placement = "numa" }, ErrUnknownPlacement},
		{"bad geometry", func(c *RunConfig) { c.BlockSize = 24 }, memory.ErrBadGeometry},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mut(&cfg)
			err := cfg.Validate()
			if !errors.Is(err, tc.want) {
				t.Fatalf("Validate() = %v, want errors.Is(err, %v)", err, tc.want)
			}
		})
	}
}

// TestRunConfigValidateFieldDiscipline checks that settings the selected
// engine would silently ignore are rejected rather than dropped (silent
// drift would poison the content-hash result cache).
func TestRunConfigValidateFieldDiscipline(t *testing.T) {
	cases := []struct {
		name string
		cfg  RunConfig
	}{
		{"no source", RunConfig{Engine: EngineDirectory, Policy: "basic"}},
		{"two sources", RunConfig{Engine: EngineDirectory, Policy: "basic", Workload: "MP3D", TraceFile: "x.mtr"}},
		{"protocol on directory", RunConfig{Engine: EngineDirectory, Workload: "MP3D", Policy: "basic", Protocol: "mesi"}},
		{"policy on bus", RunConfig{Engine: EngineBus, Workload: "MP3D", Protocol: "mesi", Policy: "basic"}},
		{"hysteresis on directory", RunConfig{Engine: EngineDirectory, Workload: "MP3D", Policy: "basic", Hysteresis: 2}},
		{"dir pointers on bus", RunConfig{Engine: EngineBus, Workload: "MP3D", Protocol: "mesi", DirPointers: 4}},
		{"placement on bus", RunConfig{Engine: EngineBus, Workload: "MP3D", Protocol: "mesi", Placement: PlacementUsage}},
		{"sharded timing", RunConfig{Engine: EngineTiming, Workload: "MP3D", Policy: "basic", Shards: 2}},
		{"negative shards", RunConfig{Engine: EngineDirectory, Workload: "MP3D", Policy: "basic", Shards: -3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); err == nil {
				t.Fatalf("Validate() accepted %+v", tc.cfg)
			}
		})
	}
}

// TestRunDeterministic runs the same config twice per engine and expects
// bit-identical JSON results — the property the cohd result cache relies
// on.
func TestRunDeterministic(t *testing.T) {
	configs := []RunConfig{
		{Engine: EngineDirectory, Workload: "MP3D", Policy: "aggressive", Length: 20_000},
		{Engine: EngineBus, Workload: "Water", Protocol: "adaptive", Length: 20_000},
		{Engine: EngineTiming, Workload: "MP3D", Policy: "basic", Length: 10_000, CacheBytes: 1 << 14},
	}
	for _, cfg := range configs {
		t.Run(cfg.Engine, func(t *testing.T) {
			a, err := Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(nil, cfg) // nil ctx must behave like Background
			if err != nil {
				t.Fatal(err)
			}
			aj, _ := json.Marshal(a)
			bj, _ := json.Marshal(b)
			if string(aj) != string(bj) {
				t.Fatalf("results differ:\n%s\n%s", aj, bj)
			}
			if a.Accesses == 0 {
				t.Fatal("no accesses simulated")
			}
		})
	}
}

// TestRunShardEquivalence checks that sharding is invisible in the results,
// as the sharded-engine contract promises.
func TestRunShardEquivalence(t *testing.T) {
	cfg := RunConfig{
		Engine: EngineDirectory, Workload: "Water", Policy: "basic",
		Length: 20_000, CacheBytes: 1 << 15,
	}
	seq, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Shards = -1
	par, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	sj, _ := json.Marshal(seq)
	pj, _ := json.Marshal(par)
	if string(sj) != string(pj) {
		t.Fatalf("sharded result drifted:\n%s\n%s", sj, pj)
	}
}

// TestRunCancellation checks that a pre-cancelled context aborts the run
// with ctx.Err.
func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, RunConfig{Engine: EngineDirectory, Workload: "MP3D", Policy: "basic", Length: 50_000})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run under cancelled ctx = %v, want context.Canceled", err)
	}
}

// TestDigestStability checks the cache-key contract: sparse configs and
// their spelled-out equivalents hash identically, any semantic change
// rehashes, and in-process overrides refuse to hash at all.
func TestDigestStability(t *testing.T) {
	sparse := RunConfig{Engine: EngineDirectory, Workload: "MP3D", Policy: "basic"}
	full := RunConfig{
		Engine: EngineDirectory, Workload: "MP3D", Policy: "basic",
		Nodes: 16, Seed: 1993, BlockSize: 16, Assoc: 4, Shards: 1,
		Placement: PlacementUsage,
	}
	ds, err := sparse.Digest()
	if err != nil {
		t.Fatal(err)
	}
	df, err := full.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if ds != df {
		t.Fatalf("sparse and spelled-out configs hash differently: %s vs %s", ds, df)
	}

	other := sparse
	other.Seed = 7
	do, err := other.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if do == ds {
		t.Fatal("different seeds hashed identically")
	}

	overridden := sparse
	overridden.PlacementPolicy = placementStub{}
	if _, err := overridden.Digest(); err == nil {
		t.Fatal("config with in-process override produced a digest")
	}
}

type placementStub struct{}

func (placementStub) Home(memory.PageID) memory.NodeID { return 0 }
func (placementStub) Name() string                     { return "stub" }
