package sim

import (
	"fmt"

	"migratory/internal/core"
	"migratory/internal/memory"
	"migratory/internal/stats"
	"migratory/internal/trace"
)

// Accuracy reports how well a protocol's on-line migratory detection
// matches the off-line ground truth of trace.ClassifyBlocks. "Positive"
// means the block behaves migratory over the whole trace.
type Accuracy struct {
	App    string
	Policy core.Policy

	TruePositive  int // detected, and truly migratory
	FalsePositive int // detected, but not migratory over the whole trace
	FalseNegative int // truly migratory, never detected
	TrueNegative  int // correctly left alone

	MigratoryBlocks int // ground-truth positives
	TotalBlocks     int
}

// Precision is TP / (TP + FP); 0 when nothing was detected.
func (a Accuracy) Precision() float64 {
	d := a.TruePositive + a.FalsePositive
	if d == 0 {
		return 0
	}
	return float64(a.TruePositive) / float64(d)
}

// Recall is TP / (TP + FN); 0 when there were no positives.
func (a Accuracy) Recall() float64 {
	d := a.TruePositive + a.FalseNegative
	if d == 0 {
		return 0
	}
	return float64(a.TruePositive) / float64(d)
}

// ClassifierAccuracy runs one application under each policy and scores the
// detection against the off-line ground truth. Only blocks that are shared
// at all (touched by more than one node) enter the scoring: the detection
// rules never see single-node blocks do anything detectable, and the paper
// excludes private data from its traces anyway. cacheBytes 0 = infinite
// (the cleanest setting for judging the rules themselves).
func ClassifierAccuracy(app string, opts Options, cacheBytes int) ([]Accuracy, error) {
	opts = opts.withDefaults()
	prepared, err := PrepareApp(app, opts)
	if err != nil {
		return nil, err
	}
	return ClassifierAccuracyApp(prepared, opts, cacheBytes)
}

// ClassifierAccuracyApp is ClassifierAccuracy over a caller-prepared app
// (an external trace wrapped with NewApp or NewSourceApp). The off-line
// ground truth comes from one streaming pass; each policy's run opens its
// own source.
func ClassifierAccuracyApp(prepared *App, opts Options, cacheBytes int) ([]Accuracy, error) {
	opts = opts.withDefaults()
	app := prepared.Name
	geom := memory.MustGeometry(16, PageSize)
	open := opts.cachedOpen(prepared.Open)
	src, err := open()
	if err != nil {
		return nil, err
	}
	truth, err := trace.ClassifyBlocksSource(src, geom)
	cerr := src.Close()
	if err != nil {
		return nil, err
	}
	if cerr != nil {
		return nil, cerr
	}
	pl := prepared.Placement

	var adaptive []core.Policy
	for _, pol := range opts.Policies {
		if pol.Adaptive {
			adaptive = append(adaptive, pol)
		}
	}
	out := make([]Accuracy, len(adaptive))
	err = runIndexed(opts.ctx(), len(adaptive), opts.workers(), func(i int) error {
		pol := adaptive[i]
		res, err := Run(opts.ctx(), RunConfig{
			Engine:          EngineDirectory,
			Nodes:           opts.Nodes,
			CacheBytes:      cacheBytes,
			Shards:          opts.Shards,
			Cache:           opts.Cache,
			OpenSource:      open,
			PlacementPolicy: pl,
			policy:          &pol,
		})
		if err != nil {
			return err
		}
		detected := res.EverMigratory()
		acc := Accuracy{App: app, Policy: pol}
		for b, pattern := range truth {
			if pattern == trace.PatternPrivate {
				continue
			}
			acc.TotalBlocks++
			positive := pattern == trace.PatternMigratory
			if positive {
				acc.MigratoryBlocks++
			}
			switch {
			case positive && detected[b]:
				acc.TruePositive++
			case positive && !detected[b]:
				acc.FalseNegative++
			case !positive && detected[b]:
				acc.FalsePositive++
			default:
				acc.TrueNegative++
			}
		}
		out[i] = acc
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// RenderAccuracy formats the scores.
func RenderAccuracy(rows []Accuracy) *stats.Table {
	tab := &stats.Table{
		Header: []string{"app", "policy", "truth-migratory", "detected TP", "FP", "FN", "precision", "recall"},
	}
	for _, a := range rows {
		tab.Add(a.App, a.Policy.Name,
			fmt.Sprintf("%d/%d", a.MigratoryBlocks, a.TotalBlocks),
			fmt.Sprintf("%d", a.TruePositive),
			fmt.Sprintf("%d", a.FalsePositive),
			fmt.Sprintf("%d", a.FalseNegative),
			stats.Percent(100*a.Precision())+"%",
			stats.Percent(100*a.Recall())+"%")
	}
	return tab
}
