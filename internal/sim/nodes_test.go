package sim

import (
	"strings"
	"testing"
)

func TestNodeCountSweep(t *testing.T) {
	opts := testOpts("Water")
	opts.Length = 60_000
	rows, err := NodeCountSweep("Water", []int{4, 16, 32}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Reductions) != 3 {
			t.Fatalf("%d nodes: %d reductions", r.Nodes, len(r.Reductions))
		}
		// The migratory benefit is machine-size independent: every point
		// keeps a substantial aggressive reduction.
		if r.Reductions[2] < 25 {
			t.Errorf("%d nodes: aggressive reduction %.1f < 25", r.Nodes, r.Reductions[2])
		}
		if r.BaseMsgs.Total() == 0 {
			t.Errorf("%d nodes: empty baseline", r.Nodes)
		}
	}
	out := RenderNodeCount(rows).String()
	for _, want := range []string{"Water", "nodes", "aggressive", "32"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestNodeCountSweepErrors(t *testing.T) {
	if _, err := NodeCountSweep("nope", nil, testOpts()); err == nil {
		t.Fatal("unknown app accepted")
	}
	if _, err := NodeCountSweep("Water", []int{1}, testOpts("Water")); err == nil {
		t.Fatal("node count 1 accepted")
	}
	if _, err := NodeCountSweep("Water", []int{100}, testOpts("Water")); err == nil {
		t.Fatal("node count 100 accepted")
	}
}

func TestNodeCountSweepDefaultCounts(t *testing.T) {
	opts := testOpts("MP3D")
	opts.Length = 30_000
	rows, err := NodeCountSweep("MP3D", nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || rows[0].Nodes != 4 || rows[4].Nodes != 64 {
		t.Fatalf("default counts: %+v", rows)
	}
}
