package sim

import (
	"fmt"

	"migratory/internal/core"
	"migratory/internal/cost"
	"migratory/internal/directory"
	"migratory/internal/memory"
	"migratory/internal/stats"
	"migratory/internal/workload"
)

// NodeCountRow is one machine-size point of the scalability sweep.
type NodeCountRow struct {
	App   string
	Nodes int
	// Reductions per adaptive policy, ordered like core.Policies()[1:].
	Reductions []float64
	BaseMsgs   cost.Msgs
}

// NodeCountSweep measures how the adaptive protocols' message reduction
// scales with machine size. The paper simulates sixteen processors
// throughout; this sweep is the natural sensitivity study (the migratory
// pattern itself is machine-size independent — one processor at a time —
// so the benefit should hold from small to large machines). Infinite
// caches, 16-byte blocks.
func NodeCountSweep(app string, nodeCounts []int, opts Options) ([]NodeCountRow, error) {
	opts = opts.withDefaults()
	if len(nodeCounts) == 0 {
		nodeCounts = []int{4, 8, 16, 32, 64}
	}
	prof, err := workload.ProfileByName(app)
	if err != nil {
		return nil, err
	}
	for _, n := range nodeCounts {
		if n < 2 || n > memory.MaxNodes {
			return nil, fmt.Errorf("sim: node count %d out of range", n)
		}
	}
	geom := memory.MustGeometry(16, PageSize)

	// Each machine size has its own trace and placement; prepare them in
	// parallel (as apps, so streaming mode holds no trace in memory), then
	// fan the (node count, policy) simulations out.
	preps := make([]*App, len(nodeCounts))
	workers := opts.workers()
	err = runIndexed(opts.ctx(), len(nodeCounts), workers, func(i int) error {
		perNode := opts
		perNode.Nodes = nodeCounts[i]
		a, err := PrepareApp(prof.Name, perNode)
		if err != nil {
			return err
		}
		preps[i] = a
		return nil
	})
	if err != nil {
		return nil, err
	}

	pols := core.Policies()
	msgs := make([]cost.Msgs, len(nodeCounts)*len(pols))
	err = runIndexed(opts.ctx(), len(msgs), workers, func(i int) error {
		ni, pi := i/len(pols), i%len(pols)
		n := nodeCounts[ni]
		sys, err := newDirectoryRunner(directory.Config{
			Nodes: n, Geometry: geom, Policy: pols[pi], Placement: preps[ni].Placement,
		}, effectiveShards(opts, 0, 16), nil)
		if err != nil {
			return err
		}
		src, err := preps[ni].Open()
		if err != nil {
			return err
		}
		defer src.Close()
		if err := sys.RunSource(opts.ctx(), src); err != nil {
			return err
		}
		msgs[i] = sys.Messages()
		return nil
	})
	if err != nil {
		return nil, err
	}

	rows := make([]NodeCountRow, 0, len(nodeCounts))
	for ni, n := range nodeCounts {
		row := NodeCountRow{App: app, Nodes: n}
		base := msgs[ni*len(pols)]
		row.BaseMsgs = base
		for pi := 1; pi < len(pols); pi++ {
			row.Reductions = append(row.Reductions, cost.Reduction(base, msgs[ni*len(pols)+pi]))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderNodeCount formats the scalability sweep.
func RenderNodeCount(rows []NodeCountRow) *stats.Table {
	tab := &stats.Table{
		Header: []string{"app", "nodes", "conv msgs", "conservative", "basic", "aggressive"},
	}
	for _, r := range rows {
		cells := []string{r.App, fmt.Sprintf("%d", r.Nodes), fmt.Sprintf("%d", r.BaseMsgs.Total())}
		for _, red := range r.Reductions {
			cells = append(cells, stats.Percent(red)+"%")
		}
		tab.Add(cells...)
	}
	return tab
}
