package sim

import (
	"fmt"

	"migratory/internal/core"
	"migratory/internal/cost"
	"migratory/internal/directory"
	"migratory/internal/memory"
	"migratory/internal/placement"
	"migratory/internal/stats"
	"migratory/internal/workload"
)

// NodeCountRow is one machine-size point of the scalability sweep.
type NodeCountRow struct {
	App   string
	Nodes int
	// Reductions per adaptive policy, ordered like core.Policies()[1:].
	Reductions []float64
	BaseMsgs   cost.Msgs
}

// NodeCountSweep measures how the adaptive protocols' message reduction
// scales with machine size. The paper simulates sixteen processors
// throughout; this sweep is the natural sensitivity study (the migratory
// pattern itself is machine-size independent — one processor at a time —
// so the benefit should hold from small to large machines). Infinite
// caches, 16-byte blocks.
func NodeCountSweep(app string, nodeCounts []int, opts Options) ([]NodeCountRow, error) {
	opts = opts.withDefaults()
	if len(nodeCounts) == 0 {
		nodeCounts = []int{4, 8, 16, 32, 64}
	}
	prof, err := workload.ProfileByName(app)
	if err != nil {
		return nil, err
	}
	geom := memory.MustGeometry(16, PageSize)
	var rows []NodeCountRow
	for _, n := range nodeCounts {
		if n < 2 || n > memory.MaxNodes {
			return nil, fmt.Errorf("sim: node count %d out of range", n)
		}
		accs, err := workload.Generate(prof, n, opts.Seed, opts.Length)
		if err != nil {
			return nil, err
		}
		pl := placement.UsageBased(accs, geom, n)
		row := NodeCountRow{App: app, Nodes: n}
		var base cost.Msgs
		for i, pol := range core.Policies() {
			sys, err := directory.New(directory.Config{
				Nodes: n, Geometry: geom, Policy: pol, Placement: pl,
			})
			if err != nil {
				return nil, err
			}
			if err := sys.Run(accs); err != nil {
				return nil, err
			}
			if i == 0 {
				base = sys.Messages()
				row.BaseMsgs = base
				continue
			}
			row.Reductions = append(row.Reductions, cost.Reduction(base, sys.Messages()))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderNodeCount formats the scalability sweep.
func RenderNodeCount(rows []NodeCountRow) *stats.Table {
	tab := &stats.Table{
		Header: []string{"app", "nodes", "conv msgs", "conservative", "basic", "aggressive"},
	}
	for _, r := range rows {
		cells := []string{r.App, fmt.Sprintf("%d", r.Nodes), fmt.Sprintf("%d", r.BaseMsgs.Total())}
		for _, red := range r.Reductions {
			cells = append(cells, stats.Percent(red)+"%")
		}
		tab.Add(cells...)
	}
	return tab
}
