package sim

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"migratory/internal/trace"
	"migratory/internal/workload"
)

// writeV3Trace materializes a workload into an indexed (v3) .mtr file with
// deliberately small segments, so parallel decode has real structure to
// chew on even at test-sized trace lengths.
func writeV3Trace(t *testing.T, app string, nodes, length int) string {
	t.Helper()
	prof, err := workload.ProfileByName(app)
	if err != nil {
		t.Fatal(err)
	}
	accs, err := workload.Generate(prof, nodes, 1993, length)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), app+".mtr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := trace.NewWriterOptions(f, trace.Header{
		BlockSize: 16, PageSize: PageSize, Nodes: nodes,
	}, trace.WriterOptions{SegmentBytes: 4 << 10})
	if _, err := trace.Copy(w, trace.NewSliceSource(accs)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunDecodersEquivalence is the acceptance matrix for parallel segment
// decode: replaying an indexed trace with concurrent decoders must be
// bit-identical to the sequential decode, across policies and protocols,
// both engines, and every sharding width — decode parallelism is a
// throughput knob, never a semantics knob.
func TestRunDecodersEquivalence(t *testing.T) {
	path := writeV3Trace(t, "MP3D", 16, 24_000)

	bases := []RunConfig{
		{Engine: EngineDirectory, Policy: "conventional"},
		{Engine: EngineDirectory, Policy: "basic"},
		{Engine: EngineDirectory, Policy: "aggressive"},
		{Engine: EngineBus, Protocol: "mesi"},
		{Engine: EngineBus, Protocol: "adaptive"},
		{Engine: EngineBus, Protocol: "adaptive-migrate-first"},
	}
	for _, base := range bases {
		base.TraceFile = path
		name := base.Policy
		if name == "" {
			name = base.Protocol
		}
		t.Run(base.Engine+"/"+name, func(t *testing.T) {
			for _, shards := range []int{1, 2, 8} {
				cfg := base
				cfg.Shards = shards

				cfg.Decoders = 1 // sequential reference
				seq, err := Run(context.Background(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				sj, _ := json.Marshal(seq)
				if seq.Accesses == 0 {
					t.Fatal("reference run saw no accesses")
				}

				for _, dec := range []int{4, 0} { // explicit width and auto
					cfg.Decoders = dec
					par, err := Run(context.Background(), cfg)
					if err != nil {
						t.Fatalf("shards=%d decoders=%d: %v", shards, dec, err)
					}
					pj, _ := json.Marshal(par)
					if string(pj) != string(sj) {
						t.Fatalf("shards=%d decoders=%d drifted:\n%s\n%s", shards, dec, pj, sj)
					}
				}
			}
		})
	}
}

// TestDigestDecodersInvariant pins the cache-key contract for the new
// knob: decode parallelism cannot affect results, so it must not affect
// the digest either — cohd serves cache hits to clients that only differ
// in -decoders, and digests minted before the field existed stay valid.
func TestDigestDecodersInvariant(t *testing.T) {
	base := RunConfig{Engine: EngineDirectory, Workload: "MP3D", Policy: "basic"}
	want, err := base.Digest()
	if err != nil {
		t.Fatal(err)
	}
	for _, dec := range []int{0, 1, 8} {
		cfg := base
		cfg.Decoders = dec
		got, err := cfg.Digest()
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Decoders=%d changed the digest: %s vs %s", dec, got, want)
		}
	}

	if err := (RunConfig{Engine: EngineDirectory, Workload: "MP3D", Policy: "basic", Decoders: -1}).Validate(); err == nil {
		t.Fatal("Validate accepted negative Decoders")
	}
}
