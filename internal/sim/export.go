package sim

import (
	"encoding/json"
	"fmt"
	"strings"

	"migratory/internal/cost"
)

// FlatCell is the export-friendly form of one protocol run, used by the
// CSV and JSON encoders so downstream tooling (plotting scripts,
// spreadsheets) can regenerate the paper's figures from raw rows.
type FlatCell struct {
	App          string  `json:"app"`
	Policy       string  `json:"policy"`
	CacheBytes   int     `json:"cache_bytes"` // 0 = infinite
	BlockSize    int     `json:"block_size"`
	ShortMsgs    int     `json:"short_msgs"`
	DataMsgs     int     `json:"data_msgs"`
	TotalMsgs    int     `json:"total_msgs"`
	ReductionPct float64 `json:"reduction_pct"` // vs the row's conventional cell
}

// Flatten converts the sweep into one FlatCell per (group, app, policy).
func (sw *Sweep) Flatten() []FlatCell {
	var out []FlatCell
	for _, gv := range sw.GroupValues {
		for _, row := range sw.Rows[gv] {
			base := row.Cells[0]
			for _, c := range row.Cells {
				out = append(out, FlatCell{
					App:          c.App,
					Policy:       c.Policy.Name,
					CacheBytes:   c.CacheBytes,
					BlockSize:    c.BlockSize,
					ShortMsgs:    c.Msgs.Short,
					DataMsgs:     c.Msgs.Data,
					TotalMsgs:    c.Msgs.Total(),
					ReductionPct: cost.Reduction(base.Msgs, c.Msgs),
				})
			}
		}
	}
	return out
}

// CSV renders the sweep as comma-separated rows with a header line.
func (sw *Sweep) CSV() string {
	var b strings.Builder
	b.WriteString("app,policy,cache_bytes,block_size,short_msgs,data_msgs,total_msgs,reduction_pct\n")
	for _, c := range sw.Flatten() {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%d,%d,%.3f\n",
			csvEscape(c.App), c.Policy, c.CacheBytes, c.BlockSize,
			c.ShortMsgs, c.DataMsgs, c.TotalMsgs, c.ReductionPct)
	}
	return b.String()
}

// JSON renders the sweep as an indented JSON array of FlatCells.
func (sw *Sweep) JSON() (string, error) {
	raw, err := json.MarshalIndent(sw.Flatten(), "", "  ")
	if err != nil {
		return "", err
	}
	return string(raw) + "\n", nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// FlatBusCell is the export form of one bus run.
type FlatBusCell struct {
	App           string  `json:"app"`
	Protocol      string  `json:"protocol"`
	CacheBytes    int     `json:"cache_bytes"`
	ReadMiss      uint64  `json:"read_miss"`
	WriteMiss     uint64  `json:"write_miss"`
	Invalidation  uint64  `json:"invalidation"`
	WriteBack     uint64  `json:"write_back"`
	Total         uint64  `json:"total"`
	Model1SavePct float64 `json:"model1_save_pct"`
	Model2SavePct float64 `json:"model2_save_pct"`
}

// Flatten converts the bus sweep into one FlatBusCell per run.
func (sw *BusSweep) Flatten() []FlatBusCell {
	var out []FlatBusCell
	for _, cb := range sw.CacheSizes {
		for _, row := range sw.Rows[cb] {
			base := row.Cells[0].Counts
			for i, c := range row.Cells {
				fc := FlatBusCell{
					App:          c.App,
					Protocol:     c.Protocol.String(),
					CacheBytes:   cb,
					ReadMiss:     c.Counts.ReadMiss,
					WriteMiss:    c.Counts.WriteMiss,
					Invalidation: c.Counts.Invalidation,
					WriteBack:    c.Counts.WriteBack,
					Total:        c.Counts.Total(),
				}
				if i > 0 {
					fc.Model1SavePct = 100 * (1 - float64(c.Counts.Total())/float64(base.Total()))
					fc.Model2SavePct = 100 * (1 - float64(c.Counts.Model2(c.Protocol.Adaptive()))/float64(base.Model2(false)))
				}
				out = append(out, fc)
			}
		}
	}
	return out
}

// CSV renders the bus sweep as comma-separated rows.
func (sw *BusSweep) CSV() string {
	var b strings.Builder
	b.WriteString("app,protocol,cache_bytes,read_miss,write_miss,invalidation,write_back,total,model1_save_pct,model2_save_pct\n")
	for _, c := range sw.Flatten() {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%d,%d,%d,%.3f,%.3f\n",
			csvEscape(c.App), c.Protocol, c.CacheBytes,
			c.ReadMiss, c.WriteMiss, c.Invalidation, c.WriteBack, c.Total,
			c.Model1SavePct, c.Model2SavePct)
	}
	return b.String()
}

// JSON renders the bus sweep as an indented JSON array.
func (sw *BusSweep) JSON() (string, error) {
	raw, err := json.MarshalIndent(sw.Flatten(), "", "  ")
	if err != nil {
		return "", err
	}
	return string(raw) + "\n", nil
}
