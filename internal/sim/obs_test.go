package sim

import (
	"reflect"
	"sync"
	"testing"

	"migratory/internal/memory"
	"migratory/internal/obs"
	"migratory/internal/snoop"
)

// metricsFactory returns an Options.Probes factory that hands every cell a
// fresh MetricsProbe and (under lock) records it, so the test can inspect
// the probes afterwards. The factory itself must be concurrency-safe.
func metricsFactory() (func(app, variant string, cacheBytes, blockSize int) obs.Probe, func() []*obs.MetricsProbe) {
	var mu sync.Mutex
	var made []*obs.MetricsProbe
	factory := func(app, variant string, cacheBytes, blockSize int) obs.Probe {
		mp := &obs.MetricsProbe{}
		mu.Lock()
		made = append(made, mp)
		mu.Unlock()
		return mp
	}
	return factory, func() []*obs.MetricsProbe {
		mu.Lock()
		defer mu.Unlock()
		return made
	}
}

// TestTable2MetricsReconcile is the ISSUE's acceptance criterion: on a
// Table 2 run, every cell's MetricsProbe message totals must exactly equal
// that cell's cost.Msgs aggregate, and the classifier event counts must
// equal the engine's own counters.
func TestTable2MetricsReconcile(t *testing.T) {
	opts := testOpts("MP3D", "Water")
	opts.Length = 30_000
	factory, _ := metricsFactory()
	opts.Probes = factory

	sw, err := Table2(opts)
	if err != nil {
		t.Fatal(err)
	}
	cells := 0
	for _, gv := range sw.GroupValues {
		for _, row := range sw.Rows[gv] {
			for _, c := range row.Cells {
				mp, ok := c.Probe.(*obs.MetricsProbe)
				if !ok {
					t.Fatalf("%s/%s: cell probe is %T, want *obs.MetricsProbe", c.App, c.Policy.Name, c.Probe)
				}
				mp.Finish()
				cells++
				if got := mp.Msgs(); got != c.Msgs {
					t.Errorf("%s/%s cache=%d: probe msgs %+v != cell msgs %+v",
						c.App, c.Policy.Name, c.CacheBytes, got, c.Msgs)
				}
				if mp.Total.Hits != c.Counters.ReadHits+c.Counters.WriteHits {
					t.Errorf("%s/%s: probe hits %d != counters %d",
						c.App, c.Policy.Name, mp.Total.Hits, c.Counters.ReadHits+c.Counters.WriteHits)
				}
				if mp.Total.Migrations != c.Counters.Migrations ||
					mp.Total.Invalidations != c.Counters.Invalidations ||
					mp.Total.WriteBacks != c.Counters.WriteBacks ||
					mp.ByKind[obs.KindClassify] != c.Counters.Classifications ||
					mp.ByKind[obs.KindDeclassify] != c.Counters.Declassified {
					t.Errorf("%s/%s: probe %+v does not reconcile with counters %+v",
						c.App, c.Policy.Name, mp.Total, c.Counters)
				}
			}
		}
	}
	if want := 2 * len(Table2CacheSizes) * 4; cells != want {
		t.Fatalf("visited %d cells, want %d", cells, want)
	}
}

// TestBusMetricsReconcile checks the same invariant on the snoop engine:
// each bus transaction emits one short message event, so a cell probe's
// Msgs().Short equals Counts.Total().
func TestBusMetricsReconcile(t *testing.T) {
	opts := testOpts("MP3D")
	opts.Length = 30_000
	factory, _ := metricsFactory()
	opts.Probes = factory

	sw, err := RunBus(opts, []int{64 << 10}, []snoop.Protocol{snoop.MESI, snoop.Adaptive})
	if err != nil {
		t.Fatal(err)
	}
	for _, cb := range sw.CacheSizes {
		for _, row := range sw.Rows[cb] {
			for _, c := range row.Cells {
				mp, ok := c.Probe.(*obs.MetricsProbe)
				if !ok {
					t.Fatalf("%s/%s: cell probe is %T", c.App, c.Protocol, c.Probe)
				}
				mp.Finish()
				if got, want := uint64(mp.Msgs().Short), uint64(c.Counts.Total()); got != want {
					t.Errorf("%s/%s: probe short msgs %d != bus txns %d", c.App, c.Protocol, got, want)
				}
				if mp.Msgs().Data != 0 {
					t.Errorf("%s/%s: bus probe counted %d data msgs, want 0", c.App, c.Protocol, mp.Msgs().Data)
				}
			}
		}
	}
}

// TestProbeParallelMergeDeterminism runs the same probed sweep sequentially
// and with a worker pool, merges each run's per-cell probes in paper order,
// and requires identical aggregates: probes never make a parallel sweep
// diverge from a sequential one.
func TestProbeParallelMergeDeterminism(t *testing.T) {
	run := func(parallelism int) *obs.MetricsProbe {
		opts := testOpts("MP3D", "Cholesky")
		opts.Length = 20_000
		opts.Parallelism = parallelism
		factory, _ := metricsFactory()
		opts.Probes = factory
		sw, err := Table2(opts)
		if err != nil {
			t.Fatal(err)
		}
		// Assemble in paper order from the sweep itself (not factory call
		// order, which is scheduling-dependent under parallelism).
		var probes []*obs.MetricsProbe
		for _, gv := range sw.GroupValues {
			for _, row := range sw.Rows[gv] {
				for _, c := range row.Cells {
					probes = append(probes, c.Probe.(*obs.MetricsProbe))
				}
			}
		}
		return obs.MergeMetrics(probes...)
	}

	seq := run(1)
	par := run(8)
	if par.Total != seq.Total {
		t.Fatalf("parallel totals %+v != sequential %+v", par.Total, seq.Total)
	}
	if par.ByKind != seq.ByKind {
		t.Fatalf("parallel byKind %v != sequential %v", par.ByKind, seq.ByKind)
	}
	if par.NodeCount() != seq.NodeCount() || par.BlockCount() != seq.BlockCount() {
		t.Fatalf("parallel shape %d/%d != sequential %d/%d",
			par.NodeCount(), par.BlockCount(), seq.NodeCount(), seq.BlockCount())
	}
	for n := 0; n < seq.NodeCount(); n++ {
		if par.Node(memory.NodeID(n)) != seq.Node(memory.NodeID(n)) {
			t.Fatalf("node %d counters diverge", n)
		}
	}
	if !reflect.DeepEqual(par.MigrationRuns, seq.MigrationRuns) {
		t.Fatalf("parallel runs %+v != sequential %+v", par.MigrationRuns, seq.MigrationRuns)
	}
	if !reflect.DeepEqual(par.ClassifyLatency, seq.ClassifyLatency) {
		t.Fatalf("parallel latency %+v != sequential %+v", par.ClassifyLatency, seq.ClassifyLatency)
	}
}
