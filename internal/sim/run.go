package sim

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"

	"migratory/internal/core"
	"migratory/internal/cost"
	"migratory/internal/directory"
	"migratory/internal/memory"
	"migratory/internal/obs"
	"migratory/internal/placement"
	"migratory/internal/snoop"
	"migratory/internal/telemetry"
	"migratory/internal/timing"
	"migratory/internal/trace"
	"migratory/internal/workload"
)

// Engine names for RunConfig.Engine.
const (
	// EngineDirectory is the DASH-like directory protocol simulator (§3).
	EngineDirectory = "directory"
	// EngineBus is the snooping bus protocol simulator (§4.3).
	EngineBus = "bus"
	// EngineTiming is the execution-driven timing model (§4.2).
	EngineTiming = "timing"
)

// Placement policy names for RunConfig.Placement (directory engine only).
const (
	// PlacementUsage is the paper's "good static placement" (§3.3): a
	// profiling pass assigns each page to the node that uses it most.
	PlacementUsage = "usage"
	// PlacementFirstTouch homes each page at the first node to touch it.
	PlacementFirstTouch = "firsttouch"
	// PlacementRoundRobin stripes pages across nodes.
	PlacementRoundRobin = "roundrobin"
)

var (
	// ErrUnknownEngine is wrapped by RunConfig.Validate when Engine names
	// none of the three simulators.
	ErrUnknownEngine = errors.New("sim: unknown engine")
	// ErrUnknownPlacement is wrapped by RunConfig.Validate when Placement
	// names no placement policy.
	ErrUnknownPlacement = errors.New("sim: unknown placement")
)

// RunConfig is the one declarative description of a single simulation run,
// shared by the CLI tools, the library facade, and the cohd service. The
// JSON-tagged fields form the wire format (and the content-hash cache key);
// the untagged fields are in-process extension points that HTTP requests
// cannot reach.
//
// Zero values mean "the paper's defaults": 16 nodes, seed 1993, 16-byte
// blocks, 4-way caches, usage-based placement for the directory engine.
type RunConfig struct {
	// Engine selects the simulator: EngineDirectory, EngineBus, or
	// EngineTiming.
	Engine string `json:"engine"`

	// Workload names a built-in application profile (workload.Profiles).
	// Exactly one of Workload and TraceFile must be set (unless OpenSource
	// supplies the trace).
	Workload string `json:"workload,omitempty"`
	// TraceFile is a trace to replay (.mtr or legacy format), decoded with
	// prefetch. Mutually exclusive with Workload.
	TraceFile string `json:"trace_file,omitempty"`

	// Nodes is the processor count (0 = the paper's 16).
	Nodes int `json:"nodes,omitempty"`
	// Seed drives the workload generator (0 = 1993). Ignored for traces.
	Seed int64 `json:"seed,omitempty"`
	// Length overrides the profile's default trace length (0 = default).
	// Ignored for traces.
	Length int `json:"length,omitempty"`

	// Policy names the directory/timing coherence policy (core.Policies):
	// "conventional", "basic", …
	Policy string `json:"policy,omitempty"`
	// Protocol names the bus protocol (snoop.Protocols): "mesi",
	// "adaptive", … Bus engine only.
	Protocol string `json:"protocol,omitempty"`

	// CacheBytes is the per-node cache capacity (0 = infinite).
	CacheBytes int `json:"cache_bytes,omitempty"`
	// BlockSize is the coherence block size in bytes (0 = 16).
	BlockSize int `json:"block_size,omitempty"`
	// Assoc is the cache associativity (0 = 4). Directory and bus engines.
	Assoc int `json:"assoc,omitempty"`
	// Hysteresis is the bus adaptive protocols' switch resistance (0 = 1).
	Hysteresis int `json:"hysteresis,omitempty"`
	// DirPointers bounds directory sharer pointers (0 = full map).
	// Directory engine only.
	DirPointers int `json:"dir_pointers,omitempty"`
	// FreeDropNotifications models free clean-replacement hints.
	// Directory engine only.
	FreeDropNotifications bool `json:"free_drop_notifications,omitempty"`

	// Placement selects the page-placement policy for the directory engine
	// ("" = PlacementUsage). The bus is placement-free and the timing model
	// fixes round-robin, so both reject a non-empty value.
	Placement string `json:"placement,omitempty"`
	// Shards set-shards the run (0/1 = sequential, -1 = GOMAXPROCS floored
	// to a power of two). Results stay bit-identical. The timing engine
	// rejects sharding.
	Shards int `json:"shards,omitempty"`
	// Decoders bounds the parallel trace-decode workers used when the run
	// reads an indexed (MTR3) trace file: 0 = one per GOMAXPROCS, >= 1
	// explicit. Results are bit-identical at any setting, so Digest()
	// ignores the field — the same run caches identically regardless of
	// decode parallelism.
	Decoders int `json:"decoders,omitempty"`
	// TimingParams overrides the DASH-like latency parameters (nil =
	// timing.DefaultParams). Timing engine only.
	TimingParams *timing.Params `json:"timing_params,omitempty"`

	// Probes, when non-nil, builds one probe per engine shard to instrument
	// the run with (in-process callers only; not part of the wire format or
	// the cache key). Not supported by the timing engine.
	Probes func(shard int) obs.Probe `json:"-"`
	// Stats, when non-nil, receives live run telemetry at batch
	// granularity. Not part of the cache key.
	Stats *telemetry.RunStats `json:"-"`
	// OpenSource, when non-nil, supplies the trace instead of
	// Workload/TraceFile. The factory must yield a fresh source per call:
	// placement profiling and the simulation each open their own.
	OpenSource func() (trace.Source, error) `json:"-"`
	// Cache, when non-nil, is the shared decoded-segment cache consulted
	// when TraceFile names an indexed (MTR3) trace. Like Decoders it cannot
	// change the result — only how often segments are decoded — so it is
	// not part of the wire format or the cache key (Digest ignores it).
	Cache *trace.SegmentCache `json:"-"`
	// PlacementPolicy, when non-nil, bypasses Placement with a prepared
	// policy (for example an App's profiled placement).
	PlacementPolicy placement.Policy `json:"-"`

	// policy carries a fully-formed core.Policy past the name round-trip,
	// so sweeps over synthesized policy variants (hysteresis studies,
	// anonymous test policies) route through Run unchanged.
	policy *core.Policy
}

// withDefaults resolves the zero values to the paper's defaults. The
// mapping is pure, so Digest hashes the same bytes for a sparse config and
// its fully spelled-out equivalent.
func (c RunConfig) withDefaults() RunConfig {
	if c.Nodes == 0 {
		c.Nodes = 16
	}
	if c.Seed == 0 {
		c.Seed = 1993
	}
	if c.BlockSize == 0 {
		c.BlockSize = 16
	}
	if c.Shards == 0 {
		c.Shards = 1
	}
	switch c.Engine {
	case EngineDirectory:
		if c.Placement == "" && c.PlacementPolicy == nil {
			c.Placement = PlacementUsage
		}
		if c.Assoc == 0 {
			c.Assoc = 4
		}
	case EngineBus:
		if c.Hysteresis == 0 {
			c.Hysteresis = 1
		}
		if c.Assoc == 0 {
			c.Assoc = 4
		}
	}
	return c
}

// Validate checks the whole config the way Run will use it, wrapping the
// packages' typed sentinels (ErrUnknownEngine, core.ErrUnknownPolicy,
// workload.ErrUnknownProfile, snoop.ErrUnknownProtocol,
// ErrUnknownPlacement, memory.ErrBadGeometry, …) so the CLI and the cohd
// HTTP surface reject a bad config with identical messages.
func (c RunConfig) Validate() error {
	c = c.withDefaults()
	switch c.Engine {
	case EngineDirectory, EngineBus, EngineTiming:
	default:
		return fmt.Errorf("%w: %q (want %q, %q, or %q)",
			ErrUnknownEngine, c.Engine, EngineDirectory, EngineBus, EngineTiming)
	}

	sources := 0
	for _, set := range []bool{c.Workload != "", c.TraceFile != "", c.OpenSource != nil} {
		if set {
			sources++
		}
	}
	if sources == 0 {
		return errors.New("sim: run config needs a workload profile or a trace file")
	}
	if sources > 1 {
		return errors.New("sim: workload and trace file are mutually exclusive")
	}
	if c.Workload != "" {
		if _, err := workload.ProfileByName(c.Workload); err != nil {
			return err
		}
	}
	geom, err := memory.NewGeometry(c.BlockSize, PageSize)
	if err != nil {
		return err
	}
	if c.Shards < -1 {
		return fmt.Errorf("sim: bad shard count %d", c.Shards)
	}
	if c.Decoders < 0 {
		return fmt.Errorf("sim: bad decoder count %d (want 0 for auto or >= 1)", c.Decoders)
	}

	// Cross-engine field discipline: a setting the selected engine would
	// silently ignore is a config error, not a no-op — silent drift would
	// poison the result cache.
	if c.Protocol != "" && c.Engine != EngineBus {
		return fmt.Errorf("sim: the %s engine takes a policy, not a bus protocol", c.Engine)
	}
	if c.Policy != "" && c.Engine == EngineBus {
		return errors.New("sim: the bus engine takes a protocol, not a policy")
	}
	if c.Hysteresis != 0 && c.Engine != EngineBus {
		return errors.New("sim: hysteresis is a bus-engine setting (directory policies carry their own)")
	}
	if c.TimingParams != nil && c.Engine != EngineTiming {
		return errors.New("sim: timing_params applies only to the timing engine")
	}
	if c.Engine != EngineDirectory {
		if c.DirPointers != 0 {
			return errors.New("sim: dir_pointers applies only to the directory engine")
		}
		if c.FreeDropNotifications {
			return errors.New("sim: free_drop_notifications applies only to the directory engine")
		}
		if c.Placement != "" {
			return fmt.Errorf("sim: the %s engine does not take a placement policy", c.Engine)
		}
	}

	switch c.Engine {
	case EngineDirectory:
		pol, err := c.resolvePolicy()
		if err != nil {
			return err
		}
		if c.PlacementPolicy == nil {
			switch c.Placement {
			case PlacementUsage, PlacementFirstTouch, PlacementRoundRobin:
			default:
				return fmt.Errorf("%w: %q (want %q, %q, or %q)", ErrUnknownPlacement,
					c.Placement, PlacementUsage, PlacementFirstTouch, PlacementRoundRobin)
			}
		}
		// Placement is resolved at run time (it may need a profiling pass);
		// a round-robin stand-in keeps Config.Validate self-contained.
		return c.directoryConfig(geom, pol, placement.NewRoundRobin(c.Nodes)).Validate()
	case EngineBus:
		prot, err := snoop.ProtocolByName(c.Protocol)
		if err != nil {
			return err
		}
		return c.busConfig(geom, prot).Validate()
	default: // EngineTiming
		if c.Shards != 1 {
			return fmt.Errorf("sim: execution-driven timing cannot shard (Shards=%d): the bus serializes transactions globally", c.Shards)
		}
		if c.Probes != nil {
			return errors.New("sim: probes are not supported by the timing engine")
		}
		if c.Assoc != 0 && c.Assoc != 4 {
			return errors.New("sim: associativity is fixed at 4 in the timing model")
		}
		pol, err := c.resolvePolicy()
		if err != nil {
			return err
		}
		return c.timingConfig(geom, pol).Validate()
	}
}

func (c RunConfig) resolvePolicy() (core.Policy, error) {
	if c.policy != nil {
		return *c.policy, nil
	}
	if c.Policy == "" {
		return core.Policy{}, fmt.Errorf("sim: the %s engine needs a policy", c.Engine)
	}
	return core.PolicyByName(c.Policy)
}

func (c RunConfig) directoryConfig(geom memory.Geometry, pol core.Policy, pl placement.Policy) directory.Config {
	return directory.Config{
		Nodes:                 c.Nodes,
		Geometry:              geom,
		CacheBytes:            c.CacheBytes,
		Assoc:                 c.Assoc,
		Policy:                pol,
		Placement:             pl,
		FreeDropNotifications: c.FreeDropNotifications,
		DirPointers:           c.DirPointers,
		Stats:                 c.Stats,
		Decoders:              c.resolveDecoders(),
	}
}

func (c RunConfig) busConfig(geom memory.Geometry, prot snoop.Protocol) snoop.Config {
	return snoop.Config{
		Nodes:      c.Nodes,
		Geometry:   geom,
		CacheBytes: c.CacheBytes,
		Assoc:      c.Assoc,
		Protocol:   prot,
		Hysteresis: c.Hysteresis,
		Stats:      c.Stats,
		Decoders:   c.resolveDecoders(),
	}
}

func (c RunConfig) timingConfig(geom memory.Geometry, pol core.Policy) timing.Config {
	params := timing.DefaultParams()
	if c.TimingParams != nil {
		params = *c.TimingParams
	}
	return timing.Config{
		Nodes:      c.Nodes,
		Geometry:   geom,
		CacheBytes: c.CacheBytes,
		Policy:     pol,
		Params:     params,
	}
}

// openSource opens the config's trace: the in-process factory, the trace
// file (indexed parallel decode for MTR3, prefetched sequential decode for
// older versions), or the named workload generator.
func (c RunConfig) openSource() (trace.Source, error) {
	switch {
	case c.OpenSource != nil:
		return c.OpenSource()
	case c.TraceFile != "":
		return trace.OpenFileParallelCache(c.TraceFile, c.resolveDecoders(), c.Cache)
	default:
		prof, err := workload.ProfileByName(c.Workload)
		if err != nil {
			return nil, err
		}
		return workload.NewSource(prof, c.Nodes, c.Seed, c.Length)
	}
}

// placementFor resolves the directory engine's page placement, running the
// profiling pass over its own source when the policy calls for one (the
// paper's two-pass methodology). Placement is page-granular, so the pass
// uses the page geometry regardless of the run's block size.
func (c RunConfig) placementFor() (placement.Policy, error) {
	if c.PlacementPolicy != nil {
		return c.PlacementPolicy, nil
	}
	switch c.Placement {
	case PlacementRoundRobin:
		return placement.NewRoundRobin(c.Nodes), nil
	case PlacementUsage, PlacementFirstTouch:
		src, err := c.openSource()
		if err != nil {
			return nil, err
		}
		pgeom := memory.MustGeometry(16, PageSize) // block size irrelevant for pages
		var pl placement.Policy
		var perr error
		if c.Placement == PlacementUsage {
			pl, perr = placement.UsageBasedSource(src, pgeom, c.Nodes)
		} else {
			pl, perr = placement.FirstTouchSource(src, pgeom, c.Nodes)
		}
		cerr := src.Close()
		if perr != nil {
			return nil, fmt.Errorf("sim: placement profiling: %w", perr)
		}
		if cerr != nil {
			return nil, cerr
		}
		return pl, nil
	default:
		return nil, fmt.Errorf("%w: %q", ErrUnknownPlacement, c.Placement)
	}
}

// resolveShards maps the config's Shards to the engine shard count for this
// cell (power of two, capped by the cache's set count). Idempotent, so
// callers may pass either the raw setting or an already-resolved count.
func (c RunConfig) resolveShards() int {
	return effectiveShards(Options{Shards: c.Shards}, c.CacheBytes, c.BlockSize)
}

// resolveDecoders maps the config's Decoders to the decode worker count:
// 0 means one per GOMAXPROCS. Purely a throughput knob — results and
// Digest() are identical at any setting.
func (c RunConfig) resolveDecoders() int {
	if c.Decoders > 0 {
		return c.Decoders
	}
	return runtime.GOMAXPROCS(0)
}

// digestVersion prefixes the digest material; bump it whenever a change
// makes old cached results non-comparable (new semantics for an existing
// field, a changed default, a different result encoding).
const digestVersion = "migratory-runconfig/v1\n"

// Digest returns the content hash that keys the result cache: a SHA-256
// over the versioned canonical JSON of the defaulted config, plus the trace
// file's size and mtime when one is named (so a regenerated trace misses
// rather than serving stale results). Configs carrying in-process overrides
// (OpenSource, PlacementPolicy, a synthesized policy) have no stable
// identity and return an error.
func (c RunConfig) Digest() (string, error) {
	if c.OpenSource != nil || c.PlacementPolicy != nil || c.policy != nil {
		return "", errors.New("sim: config with in-process overrides has no digest")
	}
	// Decode parallelism cannot change the result, so it must not change
	// the cache key: strip it before hashing (omitempty then drops the
	// field, keeping digests comparable with pre-Decoders caches too).
	c.Decoders = 0
	blob, err := json.Marshal(c.withDefaults())
	if err != nil {
		return "", err
	}
	h := sha256.New()
	io.WriteString(h, digestVersion)
	h.Write(blob)
	if c.TraceFile != "" {
		fi, err := os.Stat(c.TraceFile)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(h, "\ntrace %d %d", fi.Size(), fi.ModTime().UnixNano())
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// DirectoryResult is the directory engine's outcome.
type DirectoryResult struct {
	Counters directory.Counters `json:"counters"`
	Msgs     cost.Msgs          `json:"msgs"`
}

// BusResult is the bus engine's outcome.
type BusResult struct {
	Counts     snoop.Counts `json:"counts"`
	Migrations uint64       `json:"migrations"`
	ReadHits   uint64       `json:"read_hits"`
	WriteHits  uint64       `json:"write_hits"`
}

// RunResult is Run's outcome; exactly one of the engine sections is set.
// The JSON encoding is canonical: equal results marshal to equal bytes,
// which is what the cohd result cache and the bit-identical equivalence
// tests compare.
type RunResult struct {
	Engine   string           `json:"engine"`
	Accesses uint64           `json:"accesses"`
	Directory *DirectoryResult `json:"directory,omitempty"`
	Bus       *BusResult       `json:"bus,omitempty"`
	Timing    *timing.Result   `json:"timing,omitempty"`

	// dir retains the live directory engine so in-process callers can pull
	// the classifier verdicts and histograms a serialized result drops.
	dir directoryRunner
}

// EverMigratory returns the directory engine's per-block classifier
// verdicts (nil for other engines or deserialized results).
func (r *RunResult) EverMigratory() map[memory.BlockID]bool {
	if r.dir == nil {
		return nil
	}
	return r.dir.EverMigratory()
}

// InvalidationHistogram returns the directory engine's
// invalidations-per-write histogram (nil for other engines or deserialized
// results).
func (r *RunResult) InvalidationHistogram() map[int]uint64 {
	if r.dir == nil {
		return nil
	}
	return r.dir.InvalidationHistogram()
}

// Run executes one simulation described by cfg and returns its result.
// This is the single entry point behind the facade's Run, every CLI, and
// the cohd service: the engine is selected by cfg.Engine, the trace by
// cfg.Workload/cfg.TraceFile, and all validation goes through
// cfg.Validate, so every surface accepts and rejects configs identically.
// A nil ctx behaves like context.Background(); cancellation aborts the run
// within a few thousand accesses and returns ctx.Err().
func Run(ctx context.Context, cfg RunConfig) (*RunResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	geom := memory.MustGeometry(cfg.BlockSize, PageSize)
	switch cfg.Engine {
	case EngineDirectory:
		return cfg.runDirectory(ctx, geom)
	case EngineBus:
		return cfg.runBus(ctx, geom)
	default:
		return cfg.runTiming(ctx, geom)
	}
}

func (c RunConfig) runDirectory(ctx context.Context, geom memory.Geometry) (*RunResult, error) {
	pol, err := c.resolvePolicy()
	if err != nil {
		return nil, err
	}
	pl, err := c.placementFor()
	if err != nil {
		return nil, err
	}
	sys, err := newDirectoryRunner(c.directoryConfig(geom, pol, pl), c.resolveShards(), c.Probes)
	if err != nil {
		return nil, err
	}
	src, err := c.openSource()
	if err != nil {
		return nil, err
	}
	defer src.Close()
	if err := sys.RunSource(ctx, src); err != nil {
		return nil, err
	}
	counters := sys.Counters()
	return &RunResult{
		Engine:    EngineDirectory,
		Accesses:  counters.Accesses,
		Directory: &DirectoryResult{Counters: counters, Msgs: sys.Messages()},
		dir:       sys,
	}, nil
}

func (c RunConfig) runBus(ctx context.Context, geom memory.Geometry) (*RunResult, error) {
	prot, err := snoop.ProtocolByName(c.Protocol)
	if err != nil {
		return nil, err
	}
	sys, err := snoop.NewSharded(c.busConfig(geom, prot), c.resolveShards(), c.Probes)
	if err != nil {
		return nil, err
	}
	src, err := c.openSource()
	if err != nil {
		return nil, err
	}
	defer src.Close()
	if err := sys.RunSource(ctx, src); err != nil {
		return nil, err
	}
	readHits, writeHits := sys.Hits()
	return &RunResult{
		Engine:   EngineBus,
		Accesses: sys.Accesses(),
		Bus: &BusResult{
			Counts:     sys.Counts(),
			Migrations: sys.Migrations(),
			ReadHits:   readHits,
			WriteHits:  writeHits,
		},
	}, nil
}

func (c RunConfig) runTiming(ctx context.Context, geom memory.Geometry) (*RunResult, error) {
	pol, err := c.resolvePolicy()
	if err != nil {
		return nil, err
	}
	src, err := c.openSource()
	if err != nil {
		return nil, err
	}
	defer src.Close()
	res, err := timing.RunSource(ctx, src, c.timingConfig(geom, pol))
	if err != nil {
		return nil, err
	}
	return &RunResult{Engine: EngineTiming, Accesses: res.Accesses, Timing: &res}, nil
}
