package sim

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The sweeps of §4 are embarrassingly parallel: every (app, policy, cache,
// block) cell is an independent simulation over a shared read-only trace.
// runIndexed is the one concurrency primitive the package uses — a
// stdlib-only worker pool that executes fn(0) … fn(n-1) on up to `workers`
// goroutines, pulling indices from a shared atomic counter.
//
// Determinism: callers write each result into slot i of a preallocated
// slice and assemble the output in index order afterwards, so results are
// identical regardless of how the cells were scheduled.
//
// Errors: the lowest-indexed error is returned and new work stops being
// issued as soon as any error is observed (tasks already running finish).
// With workers <= 1 the loop degenerates to the plain sequential sweep.
func runIndexed(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next atomic.Int64
		stop atomic.Bool

		mu      sync.Mutex
		errIdx  = -1
		firstEr error
	)
	report := func(i int, err error) {
		mu.Lock()
		if errIdx == -1 || i < errIdx {
			errIdx, firstEr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					report(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	return firstEr
}

// workers resolves an Options.Parallelism value (0 = GOMAXPROCS) to a
// positive worker count.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}
