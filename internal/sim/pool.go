package sim

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// The sweeps of §4 are embarrassingly parallel: every (app, policy, cache,
// block) cell is an independent simulation over a shared read-only trace.
// runIndexed is the one concurrency primitive the package uses — a
// stdlib-only worker pool that executes fn(0) … fn(n-1) on up to `workers`
// goroutines, pulling indices from a shared atomic counter.
//
// Determinism: callers write each result into slot i of a preallocated
// slice and assemble the output in index order afterwards, so results are
// identical regardless of how the cells were scheduled.
//
// Cancellation: no new cell starts once ctx is done, and runIndexed
// returns ctx.Err(); cells already running notice the same context through
// the engines' RunSource loops, so a sweep stops mid-cell rather than
// finishing the cells in flight.
//
// Errors: the lowest-indexed error is returned and new work stops being
// issued as soon as any error is observed (tasks already running finish).
// With workers <= 1 the loop degenerates to the plain sequential sweep.
func runIndexed(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next atomic.Int64
		stop atomic.Bool

		mu      sync.Mutex
		errIdx  = -1
		firstEr error
	)
	report := func(i int, err error) {
		mu.Lock()
		if errIdx == -1 || i < errIdx {
			errIdx, firstEr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					report(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if err := ctx.Err(); err != nil {
		// Cancellation wins: in-flight cells abort with the same ctx error,
		// and the caller asked for exactly this outcome.
		return err
	}
	return firstEr
}

// workers resolves an Options.Parallelism value (0 = GOMAXPROCS) to a
// positive worker count.
func (o Options) workers() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}
