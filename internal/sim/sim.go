// Package sim drives the trace-driven experiments of §4: it prepares the
// synthetic application traces, computes page placements, runs the
// directory and bus systems across parameter sweeps, and renders the
// paper's tables.
//
// Trace-driven simulation is two-pass, as in the paper's methodology: a
// first pass over the trace profiles page usage to compute the "good static
// placement" of §3.3, and the second pass simulates the protocol.
package sim

import (
	"context"
	"fmt"

	"migratory/internal/core"
	"migratory/internal/cost"
	"migratory/internal/directory"
	"migratory/internal/memory"
	"migratory/internal/obs"
	"migratory/internal/placement"
	"migratory/internal/snoop"
	"migratory/internal/stats"
	"migratory/internal/telemetry"
	"migratory/internal/trace"
	"migratory/internal/workload"
)

// PageSize is fixed at 4 KB in both of the paper's simulators (§3.3).
const PageSize = 4096

// Options configures an experiment sweep.
type Options struct {
	// Context, when non-nil, cancels a sweep: no new cell starts after the
	// context is done, cells in flight abort within a few thousand
	// accesses, and the sweep returns ctx.Err(). nil behaves like
	// context.Background().
	Context context.Context
	// Nodes is the processor count (paper: 16).
	Nodes int
	// Seed drives the workload generators.
	Seed int64
	// Length overrides each profile's default trace length (0 = default).
	Length int
	// Apps restricts the applications (nil = all five).
	Apps []string
	// Policies restricts the protocols (nil = the paper's four).
	Policies []core.Policy
	// Stream makes PrepareApp build streaming generator-backed apps instead
	// of materialized traces: every simulation cell opens its own lazily
	// generated source, so a sweep's trace memory is O(1) in the trace
	// length (at the cost of regenerating the trace once per cell). Results
	// are bit-identical to the materialized path.
	Stream bool
	// Parallelism bounds the worker goroutines the sweep drivers fan
	// independent cells out on (0 = runtime.GOMAXPROCS(0), 1 = fully
	// sequential). Every cell simulates a private System over a shared
	// read-only trace, so results are deterministic — bit-identical to a
	// sequential run — regardless of the setting or the scheduling.
	Parallelism int
	// Shards splits each *individual* untimed directory/bus run across
	// engine shards by cache-set index (accesses to different sets never
	// interact, so counters, metrics, and classifier verdicts stay
	// bit-identical to a sequential run). 0 and 1 run sequentially; -1
	// resolves to the largest power of two not above runtime.GOMAXPROCS(0);
	// other values round down to a power of two, and finite caches
	// additionally cap the count at the per-cache set count. The timing
	// model rejects Shards > 1: its bus serializes transactions globally,
	// so its runs cannot be partitioned. Parallelism composes with Shards
	// multiplicatively — shards × workers goroutines can be live at once.
	Shards int
	// Decoders bounds the parallel trace-decode workers for sharded runs
	// over indexed (MTR3) trace files (see RunConfig.Decoders): 0 = one per
	// GOMAXPROCS, >= 1 explicit. Purely a throughput knob; results are
	// bit-identical at any setting.
	Decoders int
	// Cache, when non-nil, is the shared decoded-segment cache every cell
	// of the sweep consults before decoding an indexed (MTR3) trace file:
	// the first cell decodes each segment once and the rest replay the
	// shared immutable slabs, so decode CPU scales with the trace, not the
	// cell count. Purely a throughput knob; results are bit-identical with
	// or without it. Sweeps over in-memory or generated traces ignore it.
	Cache *trace.SegmentCache
	// Probes, when non-nil, is called once per simulation cell to build the
	// probe that cell's System is instrumented with (a nil return leaves the
	// cell unprobed). Cells run concurrently on worker goroutines under
	// Parallelism > 1, so the factory must be safe for concurrent calls and
	// must return a distinct probe per cell — probes themselves are invoked
	// only from their own cell's goroutine. Each cell's probe is recorded on
	// the resulting Cell/BusCell, and cells are assembled in paper order, so
	// per-cell MetricsProbes can be merged deterministically afterwards
	// (obs.MergeMetrics), matching a sequential run regardless of
	// scheduling. variant is the policy or bus-protocol name; blockSize is
	// 16 for bus cells.
	Probes func(app, variant string, cacheBytes, blockSize int) obs.Probe
	// Stats, when non-nil, receives live run telemetry
	// (internal/telemetry): every cell's engine pushes access/batch/
	// transition counters at batch granularity, the demux stage accounts
	// shard queue depth and producer stalls, and the sweep drivers track
	// cell progress (CellsDone/CellsTotal) for ETA reporting. One RunStats
	// may be shared across a whole sweep — all fields are atomic sums.
	Stats *telemetry.RunStats
}

// cachedOpen wraps a source factory so every indexed file source it yields
// consults the sweep's shared segment cache. Non-indexed sources (slices,
// generators, v1/v2 files) pass through untouched, and a nil cache returns
// the factory as-is.
func (o Options) cachedOpen(open func() (trace.Source, error)) func() (trace.Source, error) {
	if o.Cache == nil {
		return open
	}
	cache := o.Cache
	return func() (trace.Source, error) {
		src, err := open()
		if err == nil {
			if ifs, ok := src.(*trace.IndexedFileSource); ok {
				ifs.WithCache(cache)
			}
		}
		return src, err
	}
}

// ctx resolves Options.Context (nil = context.Background()).
func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

func (o Options) withDefaults() Options {
	if o.Nodes == 0 {
		o.Nodes = 16
	}
	if o.Seed == 0 {
		o.Seed = 1993
	}
	if len(o.Apps) == 0 {
		for _, p := range workload.Profiles() {
			o.Apps = append(o.Apps, p.Name)
		}
	}
	if len(o.Policies) == 0 {
		o.Policies = core.Policies()
	}
	return o
}

// App is a prepared application: a re-openable trace source and the
// usage-based placement computed from a profiling pass over it. Every
// simulation cell of a sweep opens its own source, so cells can run
// concurrently and a streaming app never materializes its trace.
type App struct {
	Name      string
	Placement placement.Policy
	open      func() (trace.Source, error)
}

// Open returns a fresh source positioned at the first access. The caller
// must Close it. Concurrent opens are safe; each returned source is for a
// single goroutine.
func (a *App) Open() (trace.Source, error) { return a.open() }

// PrepareApp generates the trace for one application and computes the
// usage-based static placement over it. The geometry used for placement is
// page-granular, so one preparation serves every block size. With
// opts.Stream the app is generator-backed: the trace is never materialized,
// each Open replaying the generation lazily.
func PrepareApp(name string, opts Options) (*App, error) {
	opts = opts.withDefaults()
	prof, err := workload.ProfileByName(name)
	if err != nil {
		return nil, err
	}
	if opts.Stream {
		nodes, seed, length := opts.Nodes, opts.Seed, opts.Length
		return NewSourceApp(name, func() (trace.Source, error) {
			return workload.NewSource(prof, nodes, seed, length)
		}, nodes)
	}
	accs, err := workload.Generate(prof, opts.Nodes, opts.Seed, opts.Length)
	if err != nil {
		return nil, err
	}
	return NewApp(name, accs, opts.Nodes), nil
}

// prepareApps prepares every application in opts.Apps, fanning the
// generation and placement work out across opts.Parallelism workers. The
// returned apps are immutable and shared read-only by every simulation
// cell of a sweep.
func prepareApps(opts Options) ([]*App, error) {
	apps := make([]*App, len(opts.Apps))
	err := runIndexed(opts.ctx(), len(apps), opts.workers(), func(i int) error {
		app, err := PrepareApp(opts.Apps[i], opts)
		if err != nil {
			return err
		}
		apps[i] = app
		return nil
	})
	if err != nil {
		return nil, err
	}
	return apps, nil
}

// NewApp wraps an externally supplied trace (for example one read from a
// tracegen file) with a usage-based placement so it can drive the sweeps
// exactly like a built-in application. Opened sources share the slice
// read-only; the caller must not mutate it.
func NewApp(name string, accs []trace.Access, nodes int) *App {
	geom := memory.MustGeometry(16, PageSize) // block size irrelevant for pages
	return &App{
		Name:      name,
		Placement: placement.UsageBased(accs, geom, nodes),
		open: func() (trace.Source, error) {
			return trace.NewSliceSource(accs), nil
		},
	}
}

// NewSourceApp builds an app from an arbitrary re-openable source factory
// (a trace file, a lazy generator). The placement profiling pass opens and
// drains one source; simulation cells open their own.
func NewSourceApp(name string, open func() (trace.Source, error), nodes int) (*App, error) {
	geom := memory.MustGeometry(16, PageSize) // block size irrelevant for pages
	src, err := open()
	if err != nil {
		return nil, err
	}
	pl, err := placement.UsageBasedSource(src, geom, nodes)
	cerr := src.Close()
	if err != nil {
		return nil, fmt.Errorf("sim: profiling %s: %w", name, err)
	}
	if cerr != nil {
		return nil, cerr
	}
	return &App{Name: name, Placement: pl, open: open}, nil
}

// Cell is one protocol run's outcome.
type Cell struct {
	App        string
	Policy     core.Policy
	CacheBytes int
	BlockSize  int
	Msgs       cost.Msgs
	Counters   directory.Counters
	// Probe is the probe Options.Probes built for this cell (nil if none).
	// Under Options.Shards > 1 the factory runs once per shard and Probe is
	// the shard probes merged in shard order when they are all
	// *obs.MetricsProbe (nil when they cannot be merged).
	Probe obs.Probe
}

// Reduction returns the percentage total-message reduction of this cell
// relative to base (normally the conventional cell of the same row).
func (c Cell) Reduction(base Cell) float64 { return cost.Reduction(base.Msgs, c.Msgs) }

// RunDirectoryCell simulates one (app, policy, cache size, block size)
// combination. It is a thin adapter over Run: the app supplies the source
// and prepared placement, the sweep identity builds the per-shard probes.
func RunDirectoryCell(app *App, opts Options, policy core.Policy, cacheBytes, blockSize int) (Cell, error) {
	opts = opts.withDefaults()
	shards := effectiveShards(opts, cacheBytes, blockSize)
	probes, built := shardProbes(opts, app.Name, policy.Name, cacheBytes, blockSize, shards)
	res, err := Run(opts.ctx(), RunConfig{
		Engine:          EngineDirectory,
		Nodes:           opts.Nodes,
		CacheBytes:      cacheBytes,
		BlockSize:       blockSize,
		Shards:          shards,
		Decoders:        opts.Decoders,
		Probes:          probes,
		Stats:           opts.Stats,
		Cache:           opts.Cache,
		OpenSource:      opts.cachedOpen(app.Open),
		PlacementPolicy: app.Placement,
		policy:          &policy,
	})
	if err != nil {
		return Cell{}, err
	}
	return Cell{
		App:        app.Name,
		Policy:     policy,
		CacheBytes: cacheBytes,
		BlockSize:  blockSize,
		Msgs:       res.Directory.Msgs,
		Counters:   res.Directory.Counters,
		Probe:      mergeShardProbes(built),
	}, nil
}

// Row is one application's results across the protocol list, at one cache
// and block size. Cells are ordered like Options.Policies.
type Row struct {
	App        string
	CacheBytes int
	BlockSize  int
	Cells      []Cell
}

// Sweep holds a full table's worth of rows in paper order: the outer
// grouping mirrors the paper (cache sizes for Table 2, block sizes for
// Table 3).
type Sweep struct {
	Options Options
	// Groups maps the outer parameter (cache bytes or block size) to rows.
	GroupValues []int
	Rows        map[int][]Row
	// GroupIsCache is true for Table 2 style sweeps.
	GroupIsCache bool
}

// Table2CacheSizes are the per-node cache capacities of Table 2.
var Table2CacheSizes = []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20}

// Table3BlockSizes are the block sizes of Table 3.
var Table3BlockSizes = []int{16, 32, 64, 128, 256}

// Table2 reproduces the paper's Table 2 sweep: message counts by cache
// size, application, and protocol at 16-byte blocks.
func Table2(opts Options) (*Sweep, error) {
	return directorySweep(opts, nil, Table2CacheSizes, nil, true)
}

// Table3 reproduces Table 3: message counts by block size with infinite
// caches.
func Table3(opts Options) (*Sweep, error) {
	return directorySweep(opts, nil, nil, Table3BlockSizes, false)
}

// Table2Apps and Table3Apps run the same sweeps over caller-prepared apps
// (for example external traces wrapped with NewApp).
func Table2Apps(apps []*App, opts Options) (*Sweep, error) {
	return directorySweep(opts, apps, Table2CacheSizes, nil, true)
}

// Table3Apps is the block-size sweep over caller-prepared apps.
func Table3Apps(apps []*App, opts Options) (*Sweep, error) {
	return directorySweep(opts, apps, nil, Table3BlockSizes, false)
}

func directorySweep(opts Options, apps []*App, cacheSizes, blockSizes []int, groupIsCache bool) (*Sweep, error) {
	opts = opts.withDefaults()
	sw := &Sweep{Options: opts, Rows: make(map[int][]Row), GroupIsCache: groupIsCache}
	if groupIsCache {
		sw.GroupValues = cacheSizes
	} else {
		sw.GroupValues = blockSizes
	}
	if apps == nil {
		var err error
		if apps, err = prepareApps(opts); err != nil {
			return nil, err
		}
	}

	// Fan the (app, group, policy) cells out across the worker pool; each
	// lands in its index slot, so assembly below is in paper order no
	// matter how the cells were scheduled.
	nGroups, nPols := len(sw.GroupValues), len(opts.Policies)
	cells := make([]Cell, len(apps)*nGroups*nPols)
	if opts.Stats != nil {
		opts.Stats.CellsTotal.Add(uint64(len(cells)))
	}
	err := runIndexed(opts.ctx(), len(cells), opts.workers(), func(i int) error {
		app := apps[i/(nGroups*nPols)]
		gv := sw.GroupValues[(i/nPols)%nGroups]
		pol := opts.Policies[i%nPols]
		cacheBytes, blockSize := gv, 16
		if !groupIsCache {
			cacheBytes, blockSize = 0, gv
		}
		cell, err := RunDirectoryCell(app, opts, pol, cacheBytes, blockSize)
		if err != nil {
			if cerr := opts.ctx().Err(); cerr != nil {
				return cerr
			}
			return fmt.Errorf("%s/%s: %w", app.Name, pol.Name, err)
		}
		cells[i] = cell
		if opts.Stats != nil {
			opts.Stats.CellsDone.Add(1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	for ai, app := range apps {
		for gi, gv := range sw.GroupValues {
			cacheBytes, blockSize := gv, 16
			if !groupIsCache {
				cacheBytes, blockSize = 0, gv
			}
			row := Row{App: app.Name, CacheBytes: cacheBytes, BlockSize: blockSize}
			base := (ai*nGroups + gi) * nPols
			row.Cells = append(row.Cells, cells[base:base+nPols]...)
			sw.Rows[gv] = append(sw.Rows[gv], row)
		}
	}
	return sw, nil
}

// Render produces the paper-style table: per group, one row per app with
// w/o-data and w/-data counts (in thousands) per protocol and percentage
// reduction relative to the first (conventional) protocol.
func (sw *Sweep) Render() *stats.Table {
	tab := &stats.Table{}
	header := []string{"", ""}
	for i, p := range sw.Options.Policies {
		header = append(header, p.Name+" w/o", "w/")
		if i > 0 {
			header = append(header, "%")
		}
	}
	tab.Header = header
	for _, gv := range sw.GroupValues {
		label := stats.KB(gv)
		if !sw.GroupIsCache {
			label = fmt.Sprintf("%d-byte", gv)
		}
		tab.Add(label)
		for _, row := range sw.Rows[gv] {
			cells := []string{"", row.App}
			base := row.Cells[0]
			for i, c := range row.Cells {
				cells = append(cells, stats.Thousands(c.Msgs.Short), stats.Thousands(c.Msgs.Data))
				if i > 0 {
					cells = append(cells, stats.Percent(c.Reduction(base)))
				}
			}
			tab.Add(cells...)
		}
	}
	return tab
}

// CostRatioTable renders §4.1's weighted cost analysis for a sweep: the
// percentage reduction of each adaptive protocol under data:short cost
// ratios of 1, 2, and 4, plus the per-16-bytes model.
func (sw *Sweep) CostRatioTable() *stats.Table {
	tab := &stats.Table{
		Header: []string{"", "", "protocol", "1:1", "2:1", "4:1", "per-16B"},
	}
	for _, gv := range sw.GroupValues {
		label := stats.KB(gv)
		if !sw.GroupIsCache {
			label = fmt.Sprintf("%d-byte", gv)
		}
		for _, row := range sw.Rows[gv] {
			base := row.Cells[0]
			for _, c := range row.Cells[1:] {
				tab.Add(label, row.App, c.Policy.Name,
					stats.Percent(cost.Reduction(base.Msgs, c.Msgs)),
					stats.Percent(cost.WeightedReduction(base.Msgs, c.Msgs, 2)),
					stats.Percent(cost.WeightedReduction(base.Msgs, c.Msgs, 4)),
					stats.Percent(cost.PerBytesReduction(base.Msgs, c.Msgs, row.BlockSize)))
			}
		}
	}
	return tab
}

// BusCell is one bus-protocol run.
type BusCell struct {
	App        string
	Protocol   snoop.Protocol
	CacheBytes int
	Counts     snoop.Counts
	// Probe is the probe Options.Probes built for this cell (nil if none).
	Probe obs.Probe
}

// BusRow groups the protocols for one app and cache size.
type BusRow struct {
	App        string
	CacheBytes int
	Cells      []BusCell
}

// BusSweep holds §4.3's experiment.
type BusSweep struct {
	Options    Options
	CacheSizes []int
	Protocols  []snoop.Protocol
	Rows       map[int][]BusRow
}

// BusCacheSizes are the cache sizes §4.3 quotes (64 KB and 1 MB).
var BusCacheSizes = []int{64 << 10, 1 << 20}

// RunBus runs the bus-based comparison of §4.3 over the given cache sizes
// (nil = BusCacheSizes) and protocols (nil = MESI, Adaptive,
// AdaptiveMigrateFirst). It shares the directory sweeps' trace-preparation
// path (PrepareApp) and fans the independent (app, cache, protocol) cells
// out across opts.Parallelism workers.
func RunBus(opts Options, cacheSizes []int, protocols []snoop.Protocol) (*BusSweep, error) {
	opts = opts.withDefaults()
	apps, err := prepareApps(opts)
	if err != nil {
		return nil, err
	}
	return RunBusApps(apps, opts, cacheSizes, protocols)
}

// RunBusApps is RunBus over caller-prepared apps (external traces wrapped
// with NewApp or NewSourceApp).
func RunBusApps(apps []*App, opts Options, cacheSizes []int, protocols []snoop.Protocol) (*BusSweep, error) {
	opts = opts.withDefaults()
	if cacheSizes == nil {
		cacheSizes = BusCacheSizes
	}
	if protocols == nil {
		protocols = []snoop.Protocol{snoop.MESI, snoop.Adaptive, snoop.AdaptiveMigrateFirst}
	}
	sw := &BusSweep{Options: opts, CacheSizes: cacheSizes, Protocols: protocols, Rows: make(map[int][]BusRow)}

	nCaches, nProts := len(cacheSizes), len(protocols)
	cells := make([]BusCell, len(apps)*nCaches*nProts)
	if opts.Stats != nil {
		opts.Stats.CellsTotal.Add(uint64(len(cells)))
	}
	err := runIndexed(opts.ctx(), len(cells), opts.workers(), func(i int) error {
		app := apps[i/(nCaches*nProts)]
		cb := cacheSizes[(i/nProts)%nCaches]
		p := protocols[i%nProts]
		shards := effectiveShards(opts, cb, 16)
		probes, built := shardProbes(opts, app.Name, p.String(), cb, 16, shards)
		res, err := Run(opts.ctx(), RunConfig{
			Engine:     EngineBus,
			Nodes:      opts.Nodes,
			Protocol:   p.String(),
			CacheBytes: cb,
			Shards:     shards,
			Decoders:   opts.Decoders,
			Probes:     probes,
			Stats:      opts.Stats,
			Cache:      opts.Cache,
			OpenSource: opts.cachedOpen(app.Open),
		})
		if err != nil {
			if cerr := opts.ctx().Err(); cerr != nil {
				return cerr
			}
			return fmt.Errorf("%s/%s: %w", app.Name, p, err)
		}
		cells[i] = BusCell{App: app.Name, Protocol: p, CacheBytes: cb, Counts: res.Bus.Counts, Probe: mergeShardProbes(built)}
		if opts.Stats != nil {
			opts.Stats.CellsDone.Add(1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	for ai, app := range apps {
		for ci, cb := range cacheSizes {
			row := BusRow{App: app.Name, CacheBytes: cb}
			base := (ai*nCaches + ci) * nProts
			row.Cells = append(row.Cells, cells[base:base+nProts]...)
			sw.Rows[cb] = append(sw.Rows[cb], row)
		}
	}
	return sw, nil
}

// Render produces the §4.3 summary: savings relative to the first
// (conventional) protocol under both bus cost models.
func (sw *BusSweep) Render() *stats.Table {
	tab := &stats.Table{
		Header: []string{"cache", "app", "protocol", "txns", "save%(model1)", "save%(model2)"},
	}
	for _, cb := range sw.CacheSizes {
		for _, row := range sw.Rows[cb] {
			base := row.Cells[0]
			b1 := float64(base.Counts.Total())
			b2 := float64(base.Counts.Model2(false))
			for i, c := range row.Cells {
				if i == 0 {
					tab.Add(stats.KB(cb), row.App, c.Protocol.String(),
						fmt.Sprintf("%d", c.Counts.Total()), "", "")
					continue
				}
				m1 := 100 * (1 - float64(c.Counts.Total())/b1)
				m2 := 100 * (1 - float64(c.Counts.Model2(true))/b2)
				tab.Add(stats.KB(cb), row.App, c.Protocol.String(),
					fmt.Sprintf("%d", c.Counts.Total()),
					stats.Percent(m1), stats.Percent(m2))
			}
		}
	}
	return tab
}
