package sim

import (
	"fmt"

	"migratory/internal/core"
	"migratory/internal/stats"
	"migratory/internal/timing"
)

// ExecApps are the three applications §4.2 simulates execution-driven: the
// ones with the largest trace-driven message reductions.
var ExecApps = []string{"Cholesky", "MP3D", "Water"}

// execThink models each application's computation intensity between shared
// accesses (instructions and private data are absent from the access
// streams). MP3D touches shared particle state almost continuously, so its
// execution time is dominated by the memory system; Water performs long
// force computations per molecule pair.
var execThink = map[string]uint64{
	"Cholesky":    40,
	"Locus Route": 20,
	"MP3D":        30,
	"Pthor":       16,
	"Water":       210,
}

// ExecRow is one application's execution-driven comparison.
type ExecRow struct {
	App      string
	Base     timing.Result // conventional protocol
	Adaptive timing.Result // comparison protocol (paper: basic)
	// ReductionPct is the parallel execution-time reduction.
	ReductionPct float64
}

// ExecutionTime reproduces §4.2: execution-driven simulation of the
// conventional protocol versus the given adaptive policy (the paper uses
// basic) on the ExecApps, with round-robin placement and DASH-like
// latencies. cacheBytes of 0 uses 64 KB per node.
func ExecutionTime(opts Options, policy core.Policy, cacheBytes int) ([]ExecRow, error) {
	if err := rejectShards(opts); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	apps, err := prepareApps(opts)
	if err != nil {
		return nil, err
	}
	return ExecutionTimeApps(apps, opts, policy, cacheBytes)
}

// rejectShards refuses set sharding for the timing model: the simulated
// bus serializes every transaction globally, so a timed run cannot be
// partitioned by set index. The check looks at the raw option — even
// -shards -1 (auto) is rejected rather than resolved, so the error does
// not depend on the machine's core count.
func rejectShards(opts Options) error {
	if opts.Shards != 0 && opts.Shards != 1 {
		return fmt.Errorf("sim: execution-driven timing cannot shard (Shards=%d): the bus serializes transactions globally", opts.Shards)
	}
	return nil
}

// ExecutionTimeApps is ExecutionTime over caller-prepared apps (external
// traces wrapped with NewApp or NewSourceApp).
func ExecutionTimeApps(apps []*App, opts Options, policy core.Policy, cacheBytes int) ([]ExecRow, error) {
	if err := rejectShards(opts); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if cacheBytes == 0 {
		cacheBytes = 64 << 10
	}

	// Two independent timing simulations per application (conventional and
	// adaptive), fanned out together.
	results := make([]timing.Result, 2*len(apps))
	err := runIndexed(opts.ctx(), len(results), opts.workers(), func(i int) error {
		app := apps[i/2]
		params := timing.DefaultParams()
		if t, ok := execThink[app.Name]; ok {
			params.ThinkCycles = t
		}
		pol := core.Conventional
		if i%2 == 1 {
			pol = policy
		}
		res, err := Run(opts.ctx(), RunConfig{
			Engine:       EngineTiming,
			Nodes:        opts.Nodes,
			CacheBytes:   cacheBytes,
			TimingParams: &params,
			Cache:        opts.Cache,
			OpenSource:   opts.cachedOpen(app.Open),
			policy:       &pol,
		})
		if err != nil {
			if cerr := opts.ctx().Err(); cerr != nil {
				return cerr
			}
			return fmt.Errorf("%s/%s: %w", app.Name, pol.Name, err)
		}
		results[i] = *res.Timing
		return nil
	})
	if err != nil {
		return nil, err
	}

	rows := make([]ExecRow, 0, len(apps))
	for ai, app := range apps {
		base, adp := results[2*ai], results[2*ai+1]
		rows = append(rows, ExecRow{
			App:          app.Name,
			Base:         base,
			Adaptive:     adp,
			ReductionPct: timing.Reduction(base, adp),
		})
	}
	return rows, nil
}

// RenderExec formats the §4.2 comparison.
func RenderExec(rows []ExecRow, policy core.Policy) *stats.Table {
	tab := &stats.Table{
		Header: []string{"app", "conventional cycles", policy.Name + " cycles", "time reduction", "stall(conv)", "stall(" + policy.Name + ")"},
	}
	for _, r := range rows {
		tab.Add(r.App,
			fmt.Sprintf("%d", r.Base.Cycles),
			fmt.Sprintf("%d", r.Adaptive.Cycles),
			stats.Percent(r.ReductionPct)+"%",
			stats.Percent(100*r.Base.StallFraction())+"%",
			stats.Percent(100*r.Adaptive.StallFraction())+"%")
	}
	return tab
}
