package sim

import (
	"context"
	"math/bits"
	"runtime"

	"migratory/internal/cost"
	"migratory/internal/directory"
	"migratory/internal/memory"
	"migratory/internal/obs"
	"migratory/internal/trace"
)

// floorPow2 rounds n down to a power of two (n must be >= 1).
func floorPow2(n int) int { return 1 << (bits.Len(uint(n)) - 1) }

// effectiveShards resolves Options.Shards for one simulation cell: -1
// becomes the largest power of two not above GOMAXPROCS, explicit counts
// round down to a power of two (the shard router masks low block bits), and
// finite caches cap the count at the per-cache set count so every shard
// owns at least one set. The result is always >= 1.
func effectiveShards(opts Options, cacheBytes, blockSize int) int {
	n := opts.Shards
	if n < 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n <= 1 {
		return 1
	}
	n = floorPow2(n)
	if max := directory.MaxShards(cacheBytes, blockSize, 0); max > 0 && n > max {
		n = max
	}
	return n
}

// directoryRunner is the slice of the directory System surface the sweep
// drivers use, implemented by both directory.System and directory.Sharded
// so a cell runs identically whether or not it is sharded.
type directoryRunner interface {
	RunSource(ctx context.Context, src trace.Source) error
	Messages() cost.Msgs
	Counters() directory.Counters
	EverMigratory() map[memory.BlockID]bool
	InvalidationHistogram() map[int]uint64
}

// newDirectoryRunner builds the directory engine for one cell: a plain
// System when shards <= 1, a set-sharded group otherwise. probes (optional)
// supplies the per-shard probes; with shards <= 1 only probes(0) is used.
func newDirectoryRunner(cfg directory.Config, shards int, probes func(int) obs.Probe) (directoryRunner, error) {
	if shards <= 1 {
		if probes != nil {
			cfg.Probe = probes(0)
		}
		return directory.New(cfg)
	}
	return directory.NewSharded(cfg, shards, probes)
}

// shardProbes adapts an Options.Probes factory to the per-shard factory the
// sharded engines take: every shard of a cell gets its own probe built with
// the cell's identity, so probes never see concurrent events. Returns nil
// when the options carry no factory.
func shardProbes(opts Options, app, variant string, cacheBytes, blockSize, shards int) (func(int) obs.Probe, []obs.Probe) {
	if opts.Probes == nil {
		return nil, nil
	}
	built := make([]obs.Probe, shards)
	return func(i int) obs.Probe {
		built[i] = opts.Probes(app, variant, cacheBytes, blockSize)
		return built[i]
	}, built
}

// mergeShardProbes folds a sharded cell's per-shard probes into the single
// probe recorded on the Cell, preserving the sweep contract that per-cell
// MetricsProbes merge deterministically: when every attached probe is an
// *obs.MetricsProbe they merge in shard order (bit-identical to the probe a
// sequential run would have filled); a single attached probe is returned
// as-is; anything heterogeneous cannot be merged and yields nil.
func mergeShardProbes(probes []obs.Probe) obs.Probe {
	var attached []obs.Probe
	for _, p := range probes {
		if p != nil {
			attached = append(attached, p)
		}
	}
	switch len(attached) {
	case 0:
		return nil
	case 1:
		return attached[0]
	}
	mps := make([]*obs.MetricsProbe, 0, len(attached))
	for _, p := range attached {
		mp, ok := p.(*obs.MetricsProbe)
		if !ok {
			return nil
		}
		mps = append(mps, mp)
	}
	return obs.MergeMetrics(mps...)
}
