package cost

import (
	"math"
	"testing"
	"testing/quick"
)

// TestTable1 asserts every row of the paper's Table 1 for DistantCopies of
// 0, 1, and 3.
func TestTable1(t *testing.T) {
	cases := []struct {
		name      string
		op        Op
		homeLocal bool
		dirty     bool
		distant   int
		want      Msgs
	}{
		{"read miss local clean", ReadMiss, true, false, 0, Msgs{0, 0}},
		{"read miss local dirty", ReadMiss, true, true, 0, Msgs{1, 1}},
		{"read miss remote clean", ReadMiss, false, false, 0, Msgs{1, 1}},
		{"read miss remote dirty dc0", ReadMiss, false, true, 0, Msgs{1, 1}},
		{"read miss remote dirty dc1", ReadMiss, false, true, 1, Msgs{2, 2}},

		{"write miss local clean dc0", WriteMiss, true, false, 0, Msgs{0, 0}},
		{"write miss local clean dc1", WriteMiss, true, false, 1, Msgs{2, 0}},
		{"write miss local clean dc3", WriteMiss, true, false, 3, Msgs{6, 0}},
		{"write miss local dirty", WriteMiss, true, true, 0, Msgs{1, 1}},
		{"write miss remote clean dc0", WriteMiss, false, false, 0, Msgs{1, 1}},
		{"write miss remote clean dc1", WriteMiss, false, false, 1, Msgs{3, 1}},
		{"write miss remote clean dc3", WriteMiss, false, false, 3, Msgs{7, 1}},
		{"write miss remote dirty dc0", WriteMiss, false, true, 0, Msgs{1, 1}},
		{"write miss remote dirty dc1", WriteMiss, false, true, 1, Msgs{2, 2}},

		{"write hit local clean dc0", WriteHit, true, false, 0, Msgs{0, 0}},
		{"write hit local clean dc1", WriteHit, true, false, 1, Msgs{2, 0}},
		{"write hit local clean dc3", WriteHit, true, false, 3, Msgs{6, 0}},
		{"write hit remote clean dc0", WriteHit, false, false, 0, Msgs{2, 0}},
		{"write hit remote clean dc1", WriteHit, false, false, 1, Msgs{4, 0}},
		{"write hit remote clean dc3", WriteHit, false, false, 3, Msgs{8, 0}},
		{"write hit dirty is free", WriteHit, false, true, 0, Msgs{0, 0}},

		{"drop clean local", DropClean, true, false, 0, Msgs{0, 0}},
		{"drop clean remote", DropClean, false, false, 0, Msgs{1, 0}},
		{"write back local", WriteBack, true, true, 0, Msgs{0, 0}},
		{"write back remote", WriteBack, false, true, 0, Msgs{0, 1}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := Charge(c.op, c.homeLocal, c.dirty, c.distant)
			if got != c.want {
				t.Fatalf("Charge(%v, local=%v, dirty=%v, dc=%d) = %+v; want %+v",
					c.op, c.homeLocal, c.dirty, c.distant, got, c.want)
			}
		})
	}
}

func TestChargePanicsOnNegativeDistant(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Charge(ReadMiss, false, true, -1)
}

func TestChargePanicsOnUnknownOp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Charge(Op(99), false, false, 0)
}

func TestOpString(t *testing.T) {
	names := map[Op]string{
		ReadMiss:  "read miss",
		WriteMiss: "write miss",
		WriteHit:  "write hit",
		DropClean: "drop clean",
		WriteBack: "write back",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d.String() = %q", uint8(op), op.String())
		}
	}
	if Op(77).String() != "Op(77)" {
		t.Errorf("unknown op: %q", Op(77).String())
	}
}

func TestMsgsArithmetic(t *testing.T) {
	m := Msgs{3, 2}
	if got := m.Add(Msgs{1, 5}); got != (Msgs{4, 7}) {
		t.Fatalf("Add = %+v", got)
	}
	if m.Total() != 5 {
		t.Fatalf("Total = %d", m.Total())
	}
	if got := m.Weighted(2); got != 7 {
		t.Fatalf("Weighted(2) = %v", got)
	}
	if got := m.Weighted(4); got != 11 {
		t.Fatalf("Weighted(4) = %v", got)
	}
	// Per-bytes: data message = 1 + 64/16 = 5 units at 64-byte blocks.
	if got := m.PerBytes(64); got != 3+2*5 {
		t.Fatalf("PerBytes(64) = %v", got)
	}
	if got := m.PerBytes(16); got != 3+2*2 {
		t.Fatalf("PerBytes(16) = %v", got)
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	got := c.Charge(ReadMiss, false, true, 1)
	if got != (Msgs{2, 2}) {
		t.Fatalf("Charge = %+v", got)
	}
	c.Charge(WriteHit, false, false, 0)
	c.Charge(ReadMiss, true, false, 0) // free, but counted as an op
	if c.Total() != (Msgs{4, 2}) {
		t.Fatalf("Total = %+v", c.Total())
	}
	if c.ByOp(ReadMiss) != (Msgs{2, 2}) || c.ByOp(WriteHit) != (Msgs{2, 0}) {
		t.Fatalf("ByOp = %+v / %+v", c.ByOp(ReadMiss), c.ByOp(WriteHit))
	}
	if c.Ops(ReadMiss) != 2 || c.Ops(WriteHit) != 1 || c.Ops(WriteBack) != 0 {
		t.Fatalf("Ops = %d %d %d", c.Ops(ReadMiss), c.Ops(WriteHit), c.Ops(WriteBack))
	}
}

func TestCounterAccumulate(t *testing.T) {
	var c Counter
	c.Accumulate(WriteBack, Msgs{0, 1})
	c.Accumulate(WriteBack, Msgs{0, 1})
	if c.Total() != (Msgs{0, 2}) || c.Ops(WriteBack) != 2 {
		t.Fatalf("accumulate: %+v %d", c.Total(), c.Ops(WriteBack))
	}
}

func TestCounterZeroValue(t *testing.T) {
	var c Counter
	if c.Total() != (Msgs{}) {
		t.Fatalf("zero counter Total = %+v", c.Total())
	}
	for op := ReadMiss; op <= WriteBack; op++ {
		if c.ByOp(op) != (Msgs{}) || c.Ops(op) != 0 {
			t.Fatalf("zero counter ByOp(%v) = %+v, Ops = %d", op, c.ByOp(op), c.Ops(op))
		}
	}
	// A zero-value counter is immediately usable and a zero-value merge is
	// a no-op.
	var o Counter
	c.Merge(&o)
	if c.Total() != (Msgs{}) {
		t.Fatalf("after empty merge: %+v", c.Total())
	}
}

// TestCounterMergeMatchesSequential charges a deterministic pseudo-random
// operation stream into one sequential counter and into per-cell counters
// split round-robin, then merges the cells in every order: per-op totals
// must match the sequential run exactly regardless of merge order (the
// property the parallel sweep drivers rely on when combining per-cell
// metrics).
func TestCounterMergeMatchesSequential(t *testing.T) {
	ops := []struct {
		op        Op
		homeLocal bool
		dirty     bool
		distant   int
	}{
		{ReadMiss, false, true, 3},
		{WriteMiss, true, false, 2},
		{WriteHit, false, false, 1},
		{DropClean, false, false, 0},
		{WriteBack, false, true, 0},
		{ReadMiss, true, false, 0},
		{WriteMiss, false, true, 4},
	}
	var seq Counter
	cells := make([]Counter, 3)
	for i := 0; i < 100; i++ {
		o := ops[i%len(ops)]
		seq.Charge(o.op, o.homeLocal, o.dirty, o.distant)
		cells[i%len(cells)].Charge(o.op, o.homeLocal, o.dirty, o.distant)
	}
	for _, order := range [][]int{{0, 1, 2}, {2, 1, 0}, {1, 0, 2}} {
		var merged Counter
		for _, i := range order {
			merged.Merge(&cells[i])
		}
		if merged.Total() != seq.Total() {
			t.Fatalf("merge order %v: Total %+v != sequential %+v", order, merged.Total(), seq.Total())
		}
		for op := ReadMiss; op <= WriteBack; op++ {
			if merged.ByOp(op) != seq.ByOp(op) || merged.Ops(op) != seq.Ops(op) {
				t.Fatalf("merge order %v: op %v mismatch", order, op)
			}
		}
	}
}

func TestReduction(t *testing.T) {
	base := Msgs{2092, 934} // MP3D 4K conventional, Table 2
	agg := Msgs{784, 936}   // MP3D 4K aggressive
	got := Reduction(base, agg)
	// Paper reports 43.1% (the published table rounds to three digits).
	if math.Abs(got-43.1) > 0.1 {
		t.Fatalf("Reduction = %.2f; want 43.1", got)
	}
	if Reduction(Msgs{}, Msgs{}) != 0 {
		t.Fatal("empty base should give 0")
	}
}

func TestWeightedReductionMatchesPaperExamples(t *testing.T) {
	// §4.1: "for one megabyte caches and the aggressive protocol the cost
	// reductions for MP3D and Locus Route are still 38 and 10 percent,
	// respectively, if the ratio of costs is two to one... With a four to
	// one ratio these figures decrease to 27 and 6.4 percent."
	mp3dConv := Msgs{1769, 596}
	mp3dAgg := Msgs{629, 598}
	locusConv := Msgs{1268, 470}
	locusAgg := Msgs{1018, 483}

	if got := WeightedReduction(mp3dConv, mp3dAgg, 2); math.Abs(got-38) > 1 {
		t.Errorf("MP3D 2:1 = %.1f; want ~38", got)
	}
	if got := WeightedReduction(mp3dConv, mp3dAgg, 4); math.Abs(got-27) > 1 {
		t.Errorf("MP3D 4:1 = %.1f; want ~27", got)
	}
	if got := WeightedReduction(locusConv, locusAgg, 2); math.Abs(got-10) > 1 {
		t.Errorf("Locus 2:1 = %.1f; want ~10", got)
	}
	if got := WeightedReduction(locusConv, locusAgg, 4); math.Abs(got-6.4) > 1 {
		t.Errorf("Locus 4:1 = %.1f; want ~6.4", got)
	}
	if WeightedReduction(Msgs{}, Msgs{}, 2) != 0 {
		t.Error("empty base should give 0")
	}
}

func TestPerBytesReductionNearZeroAt256ByteBlocks(t *testing.T) {
	// §4.1: under the per-16-bytes model "any advantages of the adaptive
	// protocol are close to zero for 256-byte blocks", with Locus Route
	// showing a small penalty for the aggressive protocol.
	locusConv := Msgs{451, 171} // Table 3, 256-byte row
	locusAgg := Msgs{352, 177}
	got := PerBytesReduction(locusConv, locusAgg, 256)
	if got > 2 || got < -2 {
		t.Fatalf("Locus per-bytes reduction at 256B = %.2f; want near zero", got)
	}
	cholConv := Msgs{373, 130}
	cholAgg := Msgs{142, 132}
	if got := PerBytesReduction(cholConv, cholAgg, 256); math.Abs(got-8) > 2 {
		t.Fatalf("Cholesky per-bytes reduction at 256B = %.2f; want ~8", got)
	}
	if PerBytesReduction(Msgs{}, Msgs{}, 16) != 0 {
		t.Error("empty base should give 0")
	}
}

// Property: message counts are monotone in DistantCopies and never negative.
func TestChargeMonotoneProperty(t *testing.T) {
	f := func(opRaw uint8, homeLocal, dirty bool, dcRaw uint8) bool {
		op := Op(opRaw % 5)
		dc := int(dcRaw % 14)
		m := Charge(op, homeLocal, dirty, dc)
		if m.Short < 0 || m.Data < 0 {
			return false
		}
		m2 := Charge(op, homeLocal, dirty, dc+1)
		return m2.Short >= m.Short && m2.Data >= m.Data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: remote operations never cost less than the same local
// operation.
func TestRemoteAtLeastLocalProperty(t *testing.T) {
	f := func(opRaw uint8, dirty bool, dcRaw uint8) bool {
		op := Op(opRaw % 5)
		dc := int(dcRaw % 14)
		local := Charge(op, true, dirty, dc)
		remote := Charge(op, false, dirty, dc)
		return remote.Total() >= local.Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
