// Package cost implements the paper's inter-node message accounting.
//
// Table 1 charges each cache operation that requires communication between
// cache and memory controllers a number of short messages (requests and
// acknowledgements without data) and a number of data-carrying messages,
// as a function of whether the home node is local to the initiator, whether
// the block is clean or dirty, and the cardinality of DistantCopies (the
// cached copies located at neither the initiator nor the home node).
//
// The package also provides the weighted cost models of §4.1: totals where
// data-carrying messages are charged a multiple of short messages, and the
// per-16-bytes model used for the large-block analysis.
package cost

import "fmt"

// Op is a cache operation class from Table 1.
type Op uint8

const (
	// ReadMiss covers read misses, including adaptive migratory read misses
	// (which follow the dirty rows: the owner must be consulted).
	ReadMiss Op = iota
	// WriteMiss covers write misses.
	WriteMiss
	// WriteHit covers write hits to clean blocks (invalidation/upgrade
	// requests). Table 1 has no dirty write-hit rows: a write hit on a
	// dirty block completes locally with no communication.
	WriteHit
	// DropClean is the notification sent to the home node when a cache
	// silently replaces a clean entry (§3.3: the model charges these like
	// any other message).
	DropClean
	// WriteBack is the replacement write-back of a dirty block to its home
	// node.
	WriteBack
)

// String names the operation.
func (o Op) String() string {
	switch o {
	case ReadMiss:
		return "read miss"
	case WriteMiss:
		return "write miss"
	case WriteHit:
		return "write hit"
	case DropClean:
		return "drop clean"
	case WriteBack:
		return "write back"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Msgs is a message count: short (no data) and data-carrying.
type Msgs struct {
	Short int
	Data  int
}

// Add accumulates m2 into m.
func (m Msgs) Add(m2 Msgs) Msgs { return Msgs{m.Short + m2.Short, m.Data + m2.Data} }

// Total returns Short + Data (the paper's primary 1:1 metric).
func (m Msgs) Total() int { return m.Short + m.Data }

// Weighted returns Short + ratio*Data, the §4.1 cost model in which
// data-carrying messages cost ratio times as much as short messages.
func (m Msgs) Weighted(ratio float64) float64 {
	return float64(m.Short) + ratio*float64(m.Data)
}

// PerBytes returns Short + Data*(1 + blockSize/16): one unit per message
// plus one unit per sixteen bytes of data transmitted (§4.1's large-block
// cost model).
func (m Msgs) PerBytes(blockSize int) float64 {
	perData := 1.0 + float64(blockSize)/16.0
	return float64(m.Short) + perData*float64(m.Data)
}

// Charge returns the Table 1 message counts for one operation.
//
//	op           the operation class
//	homeLocal    whether the initiating node is the block's home node
//	dirty        whether the block is dirty (equivalently: some cache holds
//	             it with write permission, so the owner must be consulted)
//	distant      ||DistantCopies||: cached copies at neither the initiator
//	             nor the home node
//
// Charge panics on a negative distant count; protocol engines derive it
// from a NodeSet and can never produce one.
func Charge(op Op, homeLocal, dirty bool, distant int) Msgs {
	if distant < 0 {
		panic(fmt.Sprintf("cost: negative DistantCopies %d", distant))
	}
	switch op {
	case ReadMiss:
		switch {
		case homeLocal && !dirty:
			return Msgs{0, 0}
		case homeLocal && dirty:
			return Msgs{1, 1}
		case !homeLocal && !dirty:
			return Msgs{1, 1}
		default: // remote, dirty
			return Msgs{1 + distant, 1 + distant}
		}
	case WriteMiss:
		switch {
		case homeLocal && !dirty:
			return Msgs{2 * distant, 0}
		case homeLocal && dirty:
			return Msgs{1, 1}
		case !homeLocal && !dirty:
			return Msgs{1 + 2*distant, 1}
		default: // remote, dirty
			return Msgs{1 + distant, 1 + distant}
		}
	case WriteHit:
		// Write hits only require communication for clean blocks.
		if dirty {
			return Msgs{0, 0}
		}
		if homeLocal {
			return Msgs{2 * distant, 0}
		}
		return Msgs{2 + 2*distant, 0}
	case DropClean:
		if homeLocal {
			return Msgs{0, 0}
		}
		return Msgs{1, 0}
	case WriteBack:
		if homeLocal {
			return Msgs{0, 0}
		}
		return Msgs{0, 1}
	default:
		panic(fmt.Sprintf("cost: unknown op %d", op))
	}
}

// Counter accumulates message counts, broken down by operation class.
type Counter struct {
	total Msgs
	byOp  [5]Msgs
	ops   [5]uint64
}

// Charge applies Charge and accumulates the result; it returns the counts
// charged for this operation.
func (c *Counter) Charge(op Op, homeLocal, dirty bool, distant int) Msgs {
	m := Charge(op, homeLocal, dirty, distant)
	c.Accumulate(op, m)
	return m
}

// Accumulate adds a pre-computed message count under the given operation
// class.
func (c *Counter) Accumulate(op Op, m Msgs) {
	c.total = c.total.Add(m)
	c.byOp[op] = c.byOp[op].Add(m)
	c.ops[op]++
}

// Merge accumulates another counter into c across every operation class.
// Merge is associative and commutative, so per-cell counters merged in any
// fixed order equal one sequentially charged counter.
func (c *Counter) Merge(o *Counter) {
	c.total = c.total.Add(o.total)
	for i := range c.byOp {
		c.byOp[i] = c.byOp[i].Add(o.byOp[i])
		c.ops[i] += o.ops[i]
	}
}

// Total returns the accumulated counts.
func (c *Counter) Total() Msgs { return c.total }

// ByOp returns the accumulated counts for one operation class.
func (c *Counter) ByOp(op Op) Msgs { return c.byOp[op] }

// Ops returns how many operations of the class were charged (including
// zero-message ones).
func (c *Counter) Ops(op Op) uint64 { return c.ops[op] }

// Reduction returns the percentage reduction of with relative to base under
// the 1:1 cost model: 100 * (1 - with/base). It returns 0 when base is
// empty.
func Reduction(base, with Msgs) float64 {
	b := base.Total()
	if b == 0 {
		return 0
	}
	return 100 * (1 - float64(with.Total())/float64(b))
}

// WeightedReduction is Reduction under the ratio-weighted cost model.
func WeightedReduction(base, with Msgs, ratio float64) float64 {
	b := base.Weighted(ratio)
	if b == 0 {
		return 0
	}
	return 100 * (1 - with.Weighted(ratio)/b)
}

// PerBytesReduction is Reduction under the per-16-bytes cost model.
func PerBytesReduction(base, with Msgs, blockSize int) float64 {
	b := base.PerBytes(blockSize)
	if b == 0 {
		return 0
	}
	return 100 * (1 - with.PerBytes(blockSize)/b)
}
