package timing

import (
	"testing"

	"migratory/internal/core"
	"migratory/internal/cost"
	"migratory/internal/directory"
	"migratory/internal/memory"
	"migratory/internal/trace"
)

var geom = memory.MustGeometry(16, 4096)

func TestLatencyClasses(t *testing.T) {
	p := DefaultParams()
	cases := []struct {
		name string
		op   directory.OpInfo
		want uint64
	}{
		{"hit", directory.OpInfo{Hit: true}, 1},
		{"local clean read miss", directory.OpInfo{Op: cost.ReadMiss, HomeLocal: true}, p.MemCycles},
		{"remote clean read miss", directory.OpInfo{Op: cost.ReadMiss}, p.MemCycles + 2*p.HopCycles},
		{"remote dirty read miss", directory.OpInfo{Op: cost.ReadMiss, OwnerConsult: true},
			p.MemCycles + 4*p.HopCycles + p.CacheCycles},
		{"local upgrade no sharers", directory.OpInfo{Op: cost.WriteHit, HomeLocal: true}, p.MemCycles / 2},
		{"remote upgrade with sharers", directory.OpInfo{Op: cost.WriteHit, Distant: 2},
			p.MemCycles/2 + 4*p.HopCycles},
		{"write miss with invalidations", directory.OpInfo{Op: cost.WriteMiss, Distant: 1},
			p.MemCycles + 2*p.HopCycles + 2*p.HopCycles},
	}
	for _, c := range cases {
		if got := p.Latency(c.op); got != c.want {
			t.Errorf("%s: Latency = %d; want %d", c.name, got, c.want)
		}
	}
}

func TestLatencyMonotoneInSeverity(t *testing.T) {
	p := DefaultParams()
	hit := p.Latency(directory.OpInfo{Hit: true})
	local := p.Latency(directory.OpInfo{Op: cost.ReadMiss, HomeLocal: true})
	remote := p.Latency(directory.OpInfo{Op: cost.ReadMiss})
	dirty := p.Latency(directory.OpInfo{Op: cost.ReadMiss, OwnerConsult: true})
	if !(hit < local && local < remote && remote < dirty) {
		t.Fatalf("latency ordering broken: %d %d %d %d", hit, local, remote, dirty)
	}
}

func mkMigratoryTrace(turns int) []trace.Access {
	var accs []trace.Access
	for i := 0; i < turns; i++ {
		n := memory.NodeID(1 + i%4)
		accs = append(accs,
			trace.Access{Node: n, Kind: trace.Read, Addr: 0},
			trace.Access{Node: n, Kind: trace.Write, Addr: 0},
		)
	}
	return accs
}

func TestRunBasicsAndDeterminism(t *testing.T) {
	cfg := Config{Nodes: 16, Geometry: geom, Policy: core.Conventional}
	r1, err := Run(mkMigratoryTrace(100), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Accesses != 200 {
		t.Fatalf("accesses = %d", r1.Accesses)
	}
	if r1.Cycles == 0 || r1.StallCycles == 0 {
		t.Fatalf("result = %+v", r1)
	}
	r2, err := Run(mkMigratoryTrace(100), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles || r1.Msgs != r2.Msgs {
		t.Fatal("execution-driven run not deterministic")
	}
}

func TestAdaptiveFasterOnMigratoryData(t *testing.T) {
	accs := mkMigratoryTrace(500)
	conv, err := Run(accs, Config{Nodes: 16, Geometry: geom, Policy: core.Conventional})
	if err != nil {
		t.Fatal(err)
	}
	adp, err := Run(accs, Config{Nodes: 16, Geometry: geom, Policy: core.Basic})
	if err != nil {
		t.Fatal(err)
	}
	if adp.Cycles >= conv.Cycles {
		t.Fatalf("adaptive %d cycles not below conventional %d", adp.Cycles, conv.Cycles)
	}
	red := Reduction(conv, adp)
	if red < 10 {
		t.Fatalf("reduction = %.1f; want >= 10 (write-hit upgrades eliminated)", red)
	}
	if adp.Msgs.Total() >= conv.Msgs.Total() {
		t.Fatal("messages did not drop")
	}
}

func TestPerNodeTimesAndMax(t *testing.T) {
	// Node 3 does twice the work of node 5.
	var accs []trace.Access
	for i := 0; i < 100; i++ {
		accs = append(accs, trace.Access{Node: 3, Kind: trace.Read, Addr: memory.Addr(i * 16)})
		if i%2 == 0 {
			accs = append(accs, trace.Access{Node: 5, Kind: trace.Read, Addr: memory.Addr(4096 + i*16)})
		}
	}
	r, err := Run(accs, Config{Nodes: 16, Geometry: geom, Policy: core.Conventional})
	if err != nil {
		t.Fatal(err)
	}
	if r.PerNode[3] <= r.PerNode[5] {
		t.Fatalf("per-node times: %v", r.PerNode)
	}
	if r.Cycles != r.PerNode[3] {
		t.Fatalf("Cycles %d != max per-node %d", r.Cycles, r.PerNode[3])
	}
	if r.PerNode[0] != 0 {
		t.Fatal("idle node accumulated time")
	}
}

func TestRunRejectsOutOfRangeNode(t *testing.T) {
	_, err := Run([]trace.Access{{Node: 16, Kind: trace.Read, Addr: 0}},
		Config{Nodes: 16, Geometry: geom, Policy: core.Basic})
	if err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	_, err := Run(nil, Config{Nodes: 0, Geometry: geom, Policy: core.Basic})
	if err == nil {
		t.Fatal("bad config accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	valid := Config{Nodes: 16, Geometry: geom, Policy: core.Basic}
	cases := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"valid", func(*Config) {}, true},
		{"valid with cache", func(c *Config) { c.CacheBytes = 64 << 10 }, true},
		{"zero nodes", func(c *Config) { c.Nodes = 0 }, false},
		{"negative nodes", func(c *Config) { c.Nodes = -1 }, false},
		{"too many nodes", func(c *Config) { c.Nodes = memory.MaxNodes + 1 }, false},
		{"invalid policy", func(c *Config) { c.Policy = core.Policy{Name: "x", Adaptive: true} }, false},
		{"negative cache", func(c *Config) { c.CacheBytes = -1 }, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cfg := valid
			c.mutate(&cfg)
			err := cfg.Validate()
			if c.ok && err != nil {
				t.Fatalf("Validate() = %v, want nil", err)
			}
			if !c.ok {
				if err == nil {
					t.Fatal("Validate() accepted invalid config")
				}
				// Run and RunSource enforce the same check.
				if _, runErr := Run(nil, cfg); runErr == nil {
					t.Fatal("Run accepted invalid config")
				}
				if _, runErr := RunSource(nil, trace.NewSliceSource(nil), cfg); runErr == nil {
					t.Fatal("RunSource accepted invalid config")
				}
			}
		})
	}
}

func TestStallFraction(t *testing.T) {
	var r Result
	if r.StallFraction() != 0 {
		t.Fatal("empty result stall fraction")
	}
	r = Result{PerNode: []uint64{100, 100}, StallCycles: 50}
	if got := r.StallFraction(); got != 0.25 {
		t.Fatalf("StallFraction = %v", got)
	}
}

func TestReductionZeroBase(t *testing.T) {
	if Reduction(Result{}, Result{}) != 0 {
		t.Fatal("zero base reduction")
	}
}

// TestContentionModeling: overlapping requests to one hot home queue up;
// requests spread across homes do not.
func TestContentionModeling(t *testing.T) {
	params := Params{HopCycles: 35, MemCycles: 30, CacheCycles: 15, ThinkCycles: 1, OccupancyCycles: 50}
	// All 8 nodes hammer distinct blocks of page 0 (home node 0).
	var hot []trace.Access
	for i := 0; i < 40; i++ {
		for n := memory.NodeID(0); n < 8; n++ {
			hot = append(hot, trace.Access{Node: n, Kind: trace.Read, Addr: memory.Addr(int(n)*512 + i*16)})
		}
	}
	// The same load spread over 8 pages (8 homes).
	var spread []trace.Access
	for _, a := range hot {
		spread = append(spread, trace.Access{Node: a.Node, Kind: a.Kind, Addr: a.Addr + memory.Addr(int(a.Node)*4096)})
	}
	rHot, err := Run(hot, Config{Nodes: 8, Geometry: geom, Policy: core.Conventional, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	rSpread, err := Run(spread, Config{Nodes: 8, Geometry: geom, Policy: core.Conventional, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	if rHot.ContentionCycles == 0 {
		t.Fatal("hot home produced no contention")
	}
	if rSpread.ContentionCycles*4 > rHot.ContentionCycles {
		t.Fatalf("spread contention %d not well below hot %d", rSpread.ContentionCycles, rHot.ContentionCycles)
	}
	if rHot.Cycles <= rSpread.Cycles {
		t.Fatal("contention did not slow execution")
	}
}

// TestContentionDisabledWithZeroOccupancy: OccupancyCycles 0 turns the
// model off.
func TestContentionDisabledWithZeroOccupancy(t *testing.T) {
	params := Params{HopCycles: 35, MemCycles: 30, CacheCycles: 15, ThinkCycles: 1}
	r, err := Run(mkMigratoryTrace(100), Config{Nodes: 8, Geometry: geom, Policy: core.Conventional, Params: params})
	if err != nil {
		t.Fatal(err)
	}
	if r.ContentionCycles != 0 {
		t.Fatalf("contention = %d with occupancy 0", r.ContentionCycles)
	}
}

// TestAdaptiveReducesContention: fewer transactions mean less queueing —
// the §4.2 secondary-cache-contention observation.
func TestAdaptiveReducesContention(t *testing.T) {
	accs := mkMigratoryTrace(400)
	conv, err := Run(accs, Config{Nodes: 16, Geometry: geom, Policy: core.Conventional})
	if err != nil {
		t.Fatal(err)
	}
	adp, err := Run(accs, Config{Nodes: 16, Geometry: geom, Policy: core.Basic})
	if err != nil {
		t.Fatal(err)
	}
	if adp.ContentionCycles > conv.ContentionCycles {
		t.Fatalf("adaptive contention %d above conventional %d",
			adp.ContentionCycles, conv.ContentionCycles)
	}
}

// TestWriteBufferedLatency: with a write buffer, write operations retire in
// one cycle while reads still stall.
func TestWriteBufferedLatency(t *testing.T) {
	p := DefaultParams()
	p.WriteBuffered = true
	if got := p.Latency(directory.OpInfo{Write: true, Op: cost.WriteHit, Distant: 3}); got != 1 {
		t.Fatalf("buffered upgrade latency = %d", got)
	}
	if got := p.Latency(directory.OpInfo{Write: true, Op: cost.WriteMiss}); got != 1 {
		t.Fatalf("buffered write miss latency = %d", got)
	}
	if got := p.Latency(directory.OpInfo{Op: cost.ReadMiss}); got <= 1 {
		t.Fatalf("read miss latency = %d", got)
	}
}

// TestWriteBufferShrinksAdaptiveTimeBenefit: the §4.2 savings come mostly
// from write-hit latency; with writes buffered the adaptive protocol's
// remaining advantage comes only from read-side effects.
func TestWriteBufferShrinksAdaptiveTimeBenefit(t *testing.T) {
	accs := mkMigratoryTrace(400)
	mk := func(pol core.Policy, buffered bool) Result {
		p := DefaultParams()
		p.WriteBuffered = buffered
		r, err := Run(accs, Config{Nodes: 16, Geometry: geom, Policy: pol, Params: p})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	blocking := Reduction(mk(core.Conventional, false), mk(core.Basic, false))
	buffered := Reduction(mk(core.Conventional, true), mk(core.Basic, true))
	if buffered >= blocking {
		t.Fatalf("buffered reduction %.1f not below blocking %.1f", buffered, blocking)
	}
}

func TestThinkTimeScalesExecution(t *testing.T) {
	accs := mkMigratoryTrace(200)
	fast, err := Run(accs, Config{
		Nodes: 16, Geometry: geom, Policy: core.Conventional,
		Params: Params{HopCycles: 35, MemCycles: 30, CacheCycles: 15, ThinkCycles: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Run(accs, Config{
		Nodes: 16, Geometry: geom, Policy: core.Conventional,
		Params: Params{HopCycles: 35, MemCycles: 30, CacheCycles: 15, ThinkCycles: 500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Cycles <= fast.Cycles {
		t.Fatal("think time had no effect")
	}
	if slow.StallFraction() >= fast.StallFraction() {
		t.Fatal("compute-bound run should have lower stall fraction")
	}
}
