// Package timing reproduces the execution-time study of §4.2: a timing
// model of a DASH-like CC-NUMA machine in which sixteen processors execute
// their access streams, blocking on misses and ownership upgrades, with
// latencies assigned per coherence-transaction shape and per-processor
// clocks determining the parallel execution time.
//
// This stands in for the paper's Tango + dixie simulation (DESIGN.md §4).
// Like the paper's §4.2 runs it uses round-robin page placement — the paper
// attributes most of the message-count gap between its trace-driven and
// execution-driven results to exactly that placement difference — and
// reports the reduction in parallel execution time rather than in message
// counts.
package timing

import (
	"context"
	"errors"
	"fmt"
	"io"

	"migratory/internal/core"
	"migratory/internal/cost"
	"migratory/internal/directory"
	"migratory/internal/memory"
	"migratory/internal/placement"
	"migratory/internal/trace"
)

// Params are the latency constants, in processor cycles. The defaults are
// DASH-flavoured: tens of cycles per network hop, a directory/memory access
// at the home, and a cache-to-cache transfer penalty when a remote owner
// must be consulted.
type Params struct {
	// HopCycles is one network traversal (request or reply).
	HopCycles uint64
	// MemCycles is a memory/directory access at the home node.
	MemCycles uint64
	// CacheCycles is a remote cache lookup/forward.
	CacheCycles uint64
	// ThinkCycles is the computation time modeled between shared accesses
	// (the traces exclude private data and instructions, which this
	// summarizes).
	ThinkCycles uint64
	// OccupancyCycles is how long one transaction occupies the home node's
	// memory controller. Overlapping requests to the same home queue
	// behind each other; the waiting time is reported as contention
	// (§4.2 observes it to be almost negligible — and reduced further by
	// the adaptive protocol, which sends fewer requests). 0 disables
	// contention modeling.
	OccupancyCycles uint64
	// WriteBuffered models a write buffer with a weakly ordered memory
	// system: writes (hits, upgrades, and write misses) retire in one
	// cycle from the processor's perspective, though their transactions
	// still occupy the home controller. §4.2's savings come mostly from
	// write-hit latency, so this ablation shows how much of the adaptive
	// protocol's *time* benefit survives when writes never stall.
	WriteBuffered bool
}

// DefaultParams returns the DASH-like constants used by the §4.2
// reproduction.
func DefaultParams() Params {
	return Params{HopCycles: 35, MemCycles: 30, CacheCycles: 15, ThinkCycles: 8, OccupancyCycles: 4}
}

// Latency converts an operation description into processor stall cycles.
func (p Params) Latency(op directory.OpInfo) uint64 {
	if op.Hit {
		return 1
	}
	if p.WriteBuffered && op.Write {
		return 1
	}
	switch op.Op {
	case cost.ReadMiss, cost.WriteMiss:
		l := p.MemCycles
		if !op.HomeLocal {
			l += 2 * p.HopCycles // request to home, reply
		}
		if op.OwnerConsult {
			l += 2*p.HopCycles + p.CacheCycles // forward to owner, reply
		}
		if op.Op == cost.WriteMiss && op.Distant > 0 {
			// Invalidations proceed in parallel with the fetch; the
			// requester waits one extra round trip for the slowest ack.
			l += 2 * p.HopCycles
		}
		return l
	case cost.WriteHit:
		// Ownership upgrade.
		l := p.MemCycles / 2
		if !op.HomeLocal {
			l += 2 * p.HopCycles
		}
		if op.Distant > 0 {
			l += 2 * p.HopCycles // invalidation round trip
		}
		return l
	default:
		return p.MemCycles
	}
}

// Config describes one execution-driven run.
type Config struct {
	// Nodes is the processor count (paper: 16).
	Nodes int
	// Geometry fixes block and page sizes.
	Geometry memory.Geometry
	// CacheBytes per node (0 = infinite).
	CacheBytes int
	// Policy selects the protocol.
	Policy core.Policy
	// Params are the latency constants (zero value = DefaultParams).
	Params Params
}

// Validate checks the configuration. Run and RunSource call it; it is
// exported so configurations can be checked before committing to a long
// simulation.
func (c Config) Validate() error {
	if c.Nodes <= 0 || c.Nodes > memory.MaxNodes {
		return fmt.Errorf("timing: node count %d out of range [1,%d]", c.Nodes, memory.MaxNodes)
	}
	if err := c.Policy.Validate(); err != nil {
		return err
	}
	if c.CacheBytes < 0 {
		return fmt.Errorf("timing: negative cache size %d", c.CacheBytes)
	}
	return nil
}

// Result reports one run.
type Result struct {
	// Cycles is the parallel execution time: the completion time of the
	// slowest processor.
	Cycles uint64
	// PerNode is each processor's completion time.
	PerNode []uint64
	// StallCycles is the total time processors spent blocked on the
	// memory system.
	StallCycles uint64
	// ContentionCycles is the part of StallCycles spent queueing for busy
	// home-node memory controllers.
	ContentionCycles uint64
	// Accesses is the number of shared accesses executed.
	Accesses uint64
	// Msgs are the inter-node messages, for cross-checking against the
	// trace-driven results.
	Msgs cost.Msgs
}

// StallFraction is StallCycles over total busy time.
func (r Result) StallFraction() float64 {
	var total uint64
	for _, c := range r.PerNode {
		total += c
	}
	if total == 0 {
		return 0
	}
	return float64(r.StallCycles) / float64(total)
}

// Run executes the trace under the timing model. Coherence actions are
// applied in trace order — the traces already encode the synchronization
// (lock-serialized critical sections) of the modeled programs, so replaying
// them out of order would fabricate data races. Each access's latency is
// charged to its processor's private clock, plus the think time; the
// parallel execution time is the slowest processor's clock. This is the
// standard trace-driven timing compromise: protocol behaviour is exact,
// while the feedback of latency onto interleaving (which the paper reports
// as negligible — contention added "almost negligible" latency in their
// runs) is not modeled.
func Run(accesses []trace.Access, cfg Config) (Result, error) {
	return RunSource(nil, trace.NewSliceSource(accesses), cfg)
}

// cancelCheckInterval is how many accesses run between context checks in
// RunSource — one check per trace.DefaultBatchSize chunk (see
// directory.RunSource for the tradeoff).
const cancelCheckInterval = trace.DefaultBatchSize

// runState is the mutable state the per-batch loop threads through a run.
type runState struct {
	cfg Config
	sys *directory.System
	res Result
	// ctrlFree is the per-home memory-controller busy horizon, for
	// contention modeling.
	ctrlFree []uint64
}

// runBatch executes one chunk of accesses; the context-cancellation check
// lives with the caller, outside the per-access loop.
func (st *runState) runBatch(batch []trace.Access) error {
	cfg := &st.cfg
	res := &st.res
	for _, a := range batch {
		if int(a.Node) >= cfg.Nodes {
			return fmt.Errorf("timing: node %d out of range", a.Node)
		}
		if err := st.sys.Access(a); err != nil {
			return err
		}
		res.Accesses++
		op := st.sys.LastOp()
		lat := cfg.Params.Latency(op)
		if !op.Hit && cfg.Params.OccupancyCycles > 0 {
			home := int(uint64(cfg.Geometry.Page(a.Addr)) % uint64(cfg.Nodes))
			now := res.PerNode[a.Node]
			if st.ctrlFree[home] > now {
				// Processor clocks are only loosely synchronized (requests
				// are applied in trace order), so a large horizon gap means
				// the requests did not actually overlap; only charge the
				// genuine near-overlap queueing, bounded by a plausible
				// queue depth.
				wait := st.ctrlFree[home] - now
				if cap := 4 * cfg.Params.OccupancyCycles; wait > cap {
					wait = cap
				}
				lat += wait
				res.ContentionCycles += wait
				now += wait
			}
			st.ctrlFree[home] = now + cfg.Params.OccupancyCycles
		}
		if lat > 1 {
			res.StallCycles += lat
		}
		res.PerNode[a.Node] += lat + cfg.Params.ThinkCycles
	}
	return nil
}

// RunSource is Run over a streamed trace, holding O(1) trace memory.
// Accesses are pulled in DefaultBatchSize chunks (through the source's own
// NextBatch when it has one), so the per-access path pays no interface call
// and no cancellation check. A nil ctx is treated as context.Background();
// on cancellation RunSource returns ctx.Err() within cancelCheckInterval
// accesses.
func RunSource(ctx context.Context, src trace.Source, cfg Config) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Params == (Params{}) {
		cfg.Params = DefaultParams()
	}
	sys, err := directory.New(directory.Config{
		Nodes:      cfg.Nodes,
		Geometry:   cfg.Geometry,
		CacheBytes: cfg.CacheBytes,
		Policy:     cfg.Policy,
		// §4.2: execution-driven simulations use the standard round-robin
		// memory allocation.
		Placement: placement.NewRoundRobin(cfg.Nodes),
	})
	if err != nil {
		return Result{}, err
	}

	st := &runState{
		cfg:      cfg,
		sys:      sys,
		res:      Result{PerNode: make([]uint64, cfg.Nodes)},
		ctrlFree: make([]uint64, cfg.Nodes),
	}
	buf := trace.GetBatch()
	defer trace.PutBatch(buf)
	off := 0
	for {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		n, err := trace.FillBatch(src, buf)
		if n > 0 {
			if berr := st.runBatch(buf[:n]); berr != nil {
				return Result{}, berr
			}
			off += n
		}
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return Result{}, fmt.Errorf("timing: trace source at access %d: %w", off, err)
		}
	}
	res := st.res
	for _, c := range res.PerNode {
		if c > res.Cycles {
			res.Cycles = c
		}
	}
	res.Msgs = sys.Messages()
	return res, nil
}

// Reduction returns the percentage execution-time reduction of with
// relative to base.
func Reduction(base, with Result) float64 {
	if base.Cycles == 0 {
		return 0
	}
	return 100 * (1 - float64(with.Cycles)/float64(base.Cycles))
}
