package memory

import (
	"testing"
)

func TestBlockMapBasics(t *testing.T) {
	var m BlockMap[int]
	if m.Len() != 0 || m.Get(0) != nil {
		t.Fatal("zero value not empty")
	}
	v, created := m.GetOrCreate(5)
	if !created || *v != 0 {
		t.Fatalf("create: %v %d", created, *v)
	}
	*v = 42
	if got := m.Get(5); got == nil || *got != 42 {
		t.Fatalf("get: %v", got)
	}
	if _, created := m.GetOrCreate(5); created {
		t.Fatal("re-created existing key")
	}
	if m.Len() != 1 {
		t.Fatalf("len = %d", m.Len())
	}
	if !m.Delete(5) || m.Delete(5) {
		t.Fatal("delete")
	}
	if m.Len() != 0 || m.Get(5) != nil {
		t.Fatal("delete left residue")
	}
	// A re-created slot must come back zeroed.
	if v, _ := m.GetOrCreate(5); *v != 0 {
		t.Fatalf("recreated value = %d, want 0", *v)
	}
}

func TestBlockMapSparseFallback(t *testing.T) {
	var m BlockMap[string]
	big := BlockID(1) << 40 // far past the dense limit
	v, created := m.GetOrCreate(big)
	if !created {
		t.Fatal("sparse create")
	}
	*v = "hi"
	if got := m.Get(big); got == nil || *got != "hi" {
		t.Fatalf("sparse get: %v", got)
	}
	if got := m.Get(big + 1); got != nil {
		t.Fatal("phantom sparse key")
	}
	if !m.Delete(big) || m.Delete(big) || m.Len() != 0 {
		t.Fatal("sparse delete")
	}
	if m.Delete(BlockID(1) << 41) {
		t.Fatal("delete of absent sparse key")
	}
}

func TestBlockMapPointerStability(t *testing.T) {
	var m BlockMap[uint64]
	first, _ := m.GetOrCreate(1)
	*first = 7
	// Force many chunks into existence; the original pointer must survive.
	for b := BlockID(0); b < 1<<16; b += blockChunkSize {
		m.GetOrCreate(b)
	}
	if *first != 7 {
		t.Fatalf("pointer invalidated: %d", *first)
	}
	*first = 8
	if got := m.Get(1); *got != 8 {
		t.Fatalf("write through stale pointer lost: %d", *got)
	}
}

func TestBlockMapForEach(t *testing.T) {
	var m BlockMap[int]
	keys := []BlockID{3, 1, blockChunkSize + 2, BlockID(1) << 30}
	for i, b := range keys {
		v, _ := m.GetOrCreate(b)
		*v = i + 1
	}
	seen := map[BlockID]int{}
	var denseOrder []BlockID
	m.ForEach(func(b BlockID, v *int) {
		seen[b] = *v
		if b < blockDenseLimit {
			denseOrder = append(denseOrder, b)
		}
	})
	if len(seen) != len(keys) {
		t.Fatalf("visited %d keys, want %d", len(seen), len(keys))
	}
	for i, b := range keys {
		if seen[b] != i+1 {
			t.Errorf("key %d: got %d want %d", b, seen[b], i+1)
		}
	}
	for i := 1; i < len(denseOrder); i++ {
		if denseOrder[i-1] >= denseOrder[i] {
			t.Fatalf("dense iteration not ascending: %v", denseOrder)
		}
	}
}

func TestNodeSetForEach(t *testing.T) {
	s := NodeSet(0).Add(0).Add(3).Add(63)
	var got []NodeID
	s.ForEach(func(n NodeID) { got = append(got, n) })
	want := s.Nodes()
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v, Nodes says %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v != Nodes %v", got, want)
		}
	}
	NodeSet(0).ForEach(func(NodeID) { t.Fatal("empty set visited") })
}
