// Package memory provides the elementary address arithmetic shared by every
// simulator in this repository: byte addresses, cache-block and page
// identifiers, node identifiers, and dense node sets.
//
// Block and page sizes are parameters of an experiment (the paper varies the
// block size from 16 to 256 bytes with a fixed 4 KB page), so all address
// arithmetic is funneled through a Geometry value rather than package-level
// constants.
package memory

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrBadGeometry is wrapped by every NewGeometry validation failure, so
// callers can classify configuration errors with errors.Is.
var ErrBadGeometry = errors.New("memory: bad geometry")

// Addr is a byte address in the simulated shared address space.
type Addr uint64

// BlockID identifies a cache block: the address shifted right by the block
// bits of the governing Geometry. BlockIDs from different geometries must
// not be mixed.
type BlockID uint64

// PageID identifies a virtual page (addr >> page bits).
type PageID uint64

// NodeID identifies a processing node (processor + cache + memory module).
// The paper simulates sixteen nodes; we support up to 64 so that copy sets
// fit in a single machine word.
type NodeID uint8

// MaxNodes is the largest node count supported by NodeSet.
const MaxNodes = 64

// NoNode is a sentinel "no such node" value, used for fields like a
// directory entry's owner or last invalidator before any node has touched
// the block.
const NoNode NodeID = 0xFF

// Geometry captures the block and page sizes of a simulated machine and
// pre-computes the shift amounts used for address arithmetic. Both sizes
// must be powers of two, and the page size must be a multiple of the block
// size.
type Geometry struct {
	blockSize int
	pageSize  int
	blockBits uint
	pageBits  uint
}

// NewGeometry returns a Geometry for the given block and page sizes.
func NewGeometry(blockSize, pageSize int) (Geometry, error) {
	if blockSize <= 0 || blockSize&(blockSize-1) != 0 {
		return Geometry{}, fmt.Errorf("%w: block size %d is not a positive power of two", ErrBadGeometry, blockSize)
	}
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		return Geometry{}, fmt.Errorf("%w: page size %d is not a positive power of two", ErrBadGeometry, pageSize)
	}
	if pageSize < blockSize {
		return Geometry{}, fmt.Errorf("%w: page size %d smaller than block size %d", ErrBadGeometry, pageSize, blockSize)
	}
	return Geometry{
		blockSize: blockSize,
		pageSize:  pageSize,
		blockBits: log2(blockSize),
		pageBits:  log2(pageSize),
	}, nil
}

// MustGeometry is like NewGeometry but panics on error. It is intended for
// tests and for literal configurations known to be valid.
func MustGeometry(blockSize, pageSize int) Geometry {
	g, err := NewGeometry(blockSize, pageSize)
	if err != nil {
		panic(err)
	}
	return g
}

func log2(v int) uint {
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

// BlockSize returns the block size in bytes.
func (g Geometry) BlockSize() int { return g.blockSize }

// PageSize returns the page size in bytes.
func (g Geometry) PageSize() int { return g.pageSize }

// Block maps an address to its block identifier.
func (g Geometry) Block(a Addr) BlockID { return BlockID(a >> g.blockBits) }

// Page maps an address to its page identifier.
func (g Geometry) Page(a Addr) PageID { return PageID(a >> g.pageBits) }

// PageOfBlock maps a block identifier to the page containing it.
func (g Geometry) PageOfBlock(b BlockID) PageID {
	return PageID(b >> (g.pageBits - g.blockBits))
}

// BlockAddr returns the first byte address of a block.
func (g Geometry) BlockAddr(b BlockID) Addr { return Addr(b) << g.blockBits }

// PageAddr returns the first byte address of a page.
func (g Geometry) PageAddr(p PageID) Addr { return Addr(p) << g.pageBits }

// BlocksPerPage returns the number of cache blocks in one page.
func (g Geometry) BlocksPerPage() int { return g.pageSize / g.blockSize }

// NodeSet is a dense set of NodeIDs in [0, MaxNodes), represented as a
// bitmask. The zero value is the empty set. NodeSet is a value type; all
// mutating operations return the new set.
type NodeSet uint64

// Add returns s with node n added.
func (s NodeSet) Add(n NodeID) NodeSet { return s | 1<<n }

// Remove returns s with node n removed.
func (s NodeSet) Remove(n NodeID) NodeSet { return s &^ (1 << n) }

// Contains reports whether n is in the set.
func (s NodeSet) Contains(n NodeID) bool { return s&(1<<n) != 0 }

// Len returns the number of nodes in the set.
func (s NodeSet) Len() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether the set has no members.
func (s NodeSet) Empty() bool { return s == 0 }

// Sole returns the single member of a one-element set. It panics if the set
// does not have exactly one member; callers use it only after checking Len.
func (s NodeSet) Sole() NodeID {
	if s.Len() != 1 {
		panic(fmt.Sprintf("memory: Sole called on set of size %d", s.Len()))
	}
	return NodeID(bits.TrailingZeros64(uint64(s)))
}

// ForEach calls fn for each member in ascending order. Unlike Nodes it does
// not allocate, which matters to the protocol engines that walk copy sets
// on every invalidation.
func (s NodeSet) ForEach(fn func(NodeID)) {
	for v := uint64(s); v != 0; v &= v - 1 {
		fn(NodeID(bits.TrailingZeros64(v)))
	}
}

// Nodes returns the members of the set in ascending order.
func (s NodeSet) Nodes() []NodeID {
	if s == 0 {
		return nil
	}
	out := make([]NodeID, 0, s.Len())
	for n := NodeID(0); n < MaxNodes; n++ {
		if s.Contains(n) {
			out = append(out, n)
		}
	}
	return out
}

// Without returns the set with the given nodes removed. It implements the
// paper's DistantCopies construction: the copies cached at neither the
// initiator nor the home node.
func (s NodeSet) Without(nodes ...NodeID) NodeSet {
	for _, n := range nodes {
		if n != NoNode {
			s = s.Remove(n)
		}
	}
	return s
}

// String renders the set as {0,3,7} for diagnostics.
func (s NodeSet) String() string {
	out := "{"
	first := true
	for _, n := range s.Nodes() {
		if !first {
			out += ","
		}
		out += fmt.Sprintf("%d", n)
		first = false
	}
	return out + "}"
}
