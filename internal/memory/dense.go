package memory

// BlockMap is a map from BlockID to V optimized for the dense, low-numbered
// block identifiers the trace generators produce. Values for blocks below
// the dense limit live in fixed-size chunks allocated on demand — one
// pointer dereference and two index operations per access, no hashing, no
// per-value allocation — while arbitrarily large identifiers (external
// traces, adversarial fuzz inputs) fall back to an ordinary Go map.
//
// Pointers returned by Get and GetOrCreate remain valid for the lifetime of
// the map: chunks are never moved or freed, so protocol engines can mutate
// entries in place even while later accesses grow the map.
//
// The zero value is an empty map ready for use.
type BlockMap[V any] struct {
	chunks []*blockChunk[V]
	sparse map[BlockID]*V
	n      int
}

const (
	blockChunkBits = 12
	blockChunkSize = 1 << blockChunkBits
	blockChunkMask = blockChunkSize - 1
	// blockDenseLimit bounds the chunk directory (64M block IDs ≈ a 1 GB
	// address space at 16-byte blocks); IDs at or beyond it use the sparse
	// map so one wild identifier cannot allocate an enormous table.
	blockDenseLimit = BlockID(1) << 26
)

type blockChunk[V any] struct {
	present [blockChunkSize]bool
	vals    [blockChunkSize]V
}

// Len returns the number of stored values.
func (m *BlockMap[V]) Len() int { return m.n }

// Get returns the value stored for b, or nil if absent.
func (m *BlockMap[V]) Get(b BlockID) *V {
	if b < blockDenseLimit {
		ci := int(b >> blockChunkBits)
		if ci >= len(m.chunks) {
			return nil
		}
		ch := m.chunks[ci]
		if ch == nil || !ch.present[b&blockChunkMask] {
			return nil
		}
		return &ch.vals[b&blockChunkMask]
	}
	return m.sparse[b]
}

// GetOrCreate returns the value for b, creating a zero value if absent; the
// second result reports whether the value was created by this call.
func (m *BlockMap[V]) GetOrCreate(b BlockID) (*V, bool) {
	if b < blockDenseLimit {
		ci := int(b >> blockChunkBits)
		for len(m.chunks) <= ci {
			m.chunks = append(m.chunks, nil)
		}
		ch := m.chunks[ci]
		if ch == nil {
			ch = new(blockChunk[V])
			m.chunks[ci] = ch
		}
		i := int(b & blockChunkMask)
		if ch.present[i] {
			return &ch.vals[i], false
		}
		ch.present[i] = true
		m.n++
		return &ch.vals[i], true
	}
	if v, ok := m.sparse[b]; ok {
		return v, false
	}
	if m.sparse == nil {
		m.sparse = make(map[BlockID]*V)
	}
	v := new(V)
	m.sparse[b] = v
	m.n++
	return v, true
}

// Delete removes the value for b, reporting whether it was present.
func (m *BlockMap[V]) Delete(b BlockID) bool {
	if b < blockDenseLimit {
		ci := int(b >> blockChunkBits)
		if ci >= len(m.chunks) || m.chunks[ci] == nil {
			return false
		}
		ch := m.chunks[ci]
		i := int(b & blockChunkMask)
		if !ch.present[i] {
			return false
		}
		ch.present[i] = false
		var zero V
		ch.vals[i] = zero
		m.n--
		return true
	}
	if _, ok := m.sparse[b]; !ok {
		return false
	}
	delete(m.sparse, b)
	m.n--
	return true
}

// ForEach calls fn for every stored (block, value) pair. Dense blocks are
// visited in ascending order; sparse ones in map order after them. fn may
// mutate the value through the pointer but must not Delete or GetOrCreate.
func (m *BlockMap[V]) ForEach(fn func(BlockID, *V)) {
	for ci, ch := range m.chunks {
		if ch == nil {
			continue
		}
		base := BlockID(ci) << blockChunkBits
		for i := range ch.present {
			if ch.present[i] {
				fn(base+BlockID(i), &ch.vals[i])
			}
		}
	}
	for b, v := range m.sparse {
		fn(b, v)
	}
}
