package memory

import (
	"testing"
	"testing/quick"
)

func TestNewGeometryValidation(t *testing.T) {
	cases := []struct {
		name       string
		block, pg  int
		wantErr    bool
		blockBits  uint
		pageBits   uint
		perPage    int
		skipChecks bool
	}{
		{name: "paper default", block: 16, pg: 4096, blockBits: 4, pageBits: 12, perPage: 256},
		{name: "large block", block: 256, pg: 4096, blockBits: 8, pageBits: 12, perPage: 16},
		{name: "block equals page", block: 4096, pg: 4096, blockBits: 12, pageBits: 12, perPage: 1},
		{name: "non power of two block", block: 24, pg: 4096, wantErr: true, skipChecks: true},
		{name: "non power of two page", block: 16, pg: 3000, wantErr: true, skipChecks: true},
		{name: "zero block", block: 0, pg: 4096, wantErr: true, skipChecks: true},
		{name: "negative block", block: -16, pg: 4096, wantErr: true, skipChecks: true},
		{name: "page smaller than block", block: 128, pg: 64, wantErr: true, skipChecks: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, err := NewGeometry(c.block, c.pg)
			if c.wantErr {
				if err == nil {
					t.Fatalf("NewGeometry(%d,%d): want error, got %+v", c.block, c.pg, g)
				}
				return
			}
			if err != nil {
				t.Fatalf("NewGeometry(%d,%d): %v", c.block, c.pg, err)
			}
			if g.BlockSize() != c.block || g.PageSize() != c.pg {
				t.Errorf("sizes = %d,%d; want %d,%d", g.BlockSize(), g.PageSize(), c.block, c.pg)
			}
			if g.blockBits != c.blockBits || g.pageBits != c.pageBits {
				t.Errorf("bits = %d,%d; want %d,%d", g.blockBits, g.pageBits, c.blockBits, c.pageBits)
			}
			if got := g.BlocksPerPage(); got != c.perPage {
				t.Errorf("BlocksPerPage = %d; want %d", got, c.perPage)
			}
		})
	}
}

func TestMustGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGeometry(3, 4096) did not panic")
		}
	}()
	MustGeometry(3, 4096)
}

func TestAddressMapping(t *testing.T) {
	g := MustGeometry(16, 4096)
	cases := []struct {
		addr  Addr
		block BlockID
		page  PageID
	}{
		{0, 0, 0},
		{15, 0, 0},
		{16, 1, 0},
		{4095, 255, 0},
		{4096, 256, 1},
		{0x12345, 0x1234, 0x12},
	}
	for _, c := range cases {
		if got := g.Block(c.addr); got != c.block {
			t.Errorf("Block(%#x) = %d; want %d", c.addr, got, c.block)
		}
		if got := g.Page(c.addr); got != c.page {
			t.Errorf("Page(%#x) = %d; want %d", c.addr, got, c.page)
		}
		if got := g.PageOfBlock(c.block); got != c.page {
			t.Errorf("PageOfBlock(%d) = %d; want %d", c.block, got, c.page)
		}
	}
}

func TestBlockAndPageAddrRoundTrip(t *testing.T) {
	g := MustGeometry(64, 4096)
	for b := BlockID(0); b < 1000; b += 7 {
		if got := g.Block(g.BlockAddr(b)); got != b {
			t.Fatalf("Block(BlockAddr(%d)) = %d", b, got)
		}
	}
	for p := PageID(0); p < 100; p += 3 {
		if got := g.Page(g.PageAddr(p)); got != p {
			t.Fatalf("Page(PageAddr(%d)) = %d", p, got)
		}
	}
}

func TestPageBlockConsistencyProperty(t *testing.T) {
	g := MustGeometry(32, 4096)
	f := func(a uint64) bool {
		addr := Addr(a)
		return g.PageOfBlock(g.Block(addr)) == g.Page(addr)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodeSetBasics(t *testing.T) {
	var s NodeSet
	if !s.Empty() || s.Len() != 0 {
		t.Fatalf("zero NodeSet not empty: %v", s)
	}
	s = s.Add(3).Add(7).Add(3)
	if s.Len() != 2 {
		t.Fatalf("Len = %d; want 2", s.Len())
	}
	if !s.Contains(3) || !s.Contains(7) || s.Contains(4) {
		t.Fatalf("membership wrong: %v", s)
	}
	s = s.Remove(3)
	if s.Len() != 1 || s.Contains(3) {
		t.Fatalf("after Remove(3): %v", s)
	}
	if got := s.Sole(); got != 7 {
		t.Fatalf("Sole = %d; want 7", got)
	}
	s = s.Remove(7)
	if !s.Empty() {
		t.Fatalf("after removing all: %v", s)
	}
	// Removing an absent node is a no-op.
	if got := s.Remove(42); got != s {
		t.Fatalf("Remove on empty changed the set: %v", got)
	}
}

func TestNodeSetSolePanicsOnWrongSize(t *testing.T) {
	for _, s := range []NodeSet{0, NodeSet(0).Add(1).Add(2)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Sole on %v did not panic", s)
				}
			}()
			s.Sole()
		}()
	}
}

func TestNodeSetNodesOrderedAndComplete(t *testing.T) {
	s := NodeSet(0).Add(63).Add(0).Add(17)
	got := s.Nodes()
	want := []NodeID{0, 17, 63}
	if len(got) != len(want) {
		t.Fatalf("Nodes = %v; want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Nodes = %v; want %v", got, want)
		}
	}
	if NodeSet(0).Nodes() != nil {
		t.Fatal("empty set Nodes() should be nil")
	}
}

func TestNodeSetWithout(t *testing.T) {
	s := NodeSet(0).Add(1).Add(2).Add(3)
	got := s.Without(2, NoNode, 9)
	if got.Len() != 2 || got.Contains(2) || !got.Contains(1) || !got.Contains(3) {
		t.Fatalf("Without = %v", got)
	}
	// DistantCopies-style use: remove initiator and home.
	copies := NodeSet(0).Add(4).Add(5).Add(6)
	if dc := copies.Without(4, 6); dc.Len() != 1 || !dc.Contains(5) {
		t.Fatalf("DistantCopies = %v; want {5}", dc)
	}
}

func TestNodeSetString(t *testing.T) {
	s := NodeSet(0).Add(2).Add(5)
	if got := s.String(); got != "{2,5}" {
		t.Fatalf("String = %q", got)
	}
	if got := NodeSet(0).String(); got != "{}" {
		t.Fatalf("empty String = %q", got)
	}
}

func TestNodeSetLenMatchesNodesProperty(t *testing.T) {
	f := func(v uint64) bool {
		s := NodeSet(v)
		return s.Len() == len(s.Nodes())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodeSetAddRemoveProperty(t *testing.T) {
	f := func(v uint64, n uint8) bool {
		node := NodeID(n % MaxNodes)
		s := NodeSet(v)
		added := s.Add(node)
		if !added.Contains(node) {
			return false
		}
		removed := added.Remove(node)
		if removed.Contains(node) {
			return false
		}
		// Adding then removing yields the original set without the node.
		return removed == s.Remove(node)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
