package telemetry

import "sync/atomic"

// CacheStats is one observation of the process-wide decoded-segment cache
// (trace.SegmentCache). The counters are cumulative since process start;
// the byte and entry fields are instantaneous gauges.
//
// The type lives here rather than in internal/trace because telemetry sits
// at the bottom of the dependency graph: trace imports telemetry, so the
// sampler, the /metrics endpoint, and the run manifests can all carry
// cache observations without a cycle. The cache itself registers a
// provider with RegisterCacheStats; everything above reads through it.
type CacheStats struct {
	// CapBytes is the configured capacity (0 = the cache is disabled).
	CapBytes int64 `json:"cap_bytes"`
	// ResidentBytes is the decoded-access bytes currently held (pinned +
	// evictable).
	ResidentBytes int64 `json:"resident_bytes"`
	// PinnedBytes is the subset of ResidentBytes referenced by at least one
	// in-flight consumer right now; PeakPinnedBytes is its high-water mark.
	PinnedBytes     int64 `json:"pinned_bytes"`
	PeakPinnedBytes int64 `json:"peak_pinned_bytes"`
	// Entries is the number of decoded segments resident.
	Entries int `json:"entries"`

	// Hits counts acquisitions served from a resident segment (including
	// single-flight joins onto a decode already in progress); Misses counts
	// acquisitions that had to decode. SingleFlightJoins is the subset of
	// Hits that waited on another goroutine's in-progress decode.
	Hits              uint64 `json:"hits"`
	Misses            uint64 `json:"misses"`
	SingleFlightJoins uint64 `json:"single_flight_joins"`
	// Evictions counts segments dropped under memory pressure;
	// EvictedBytes their cumulative size.
	Evictions    uint64 `json:"evictions"`
	EvictedBytes uint64 `json:"evicted_bytes"`
}

// cacheStatsProvider is the registered observation source (nil until a
// cache exists). Stored behind an atomic pointer so samplers and manifest
// writers on any goroutine race-freely observe registration.
var cacheStatsProvider atomic.Pointer[func() CacheStats]

// RegisterCacheStats installs f as the process's trace-cache observation
// source; subsequent Samples, manifests, and /metrics scrapes include its
// numbers. Passing nil unregisters. The expected registrant is the
// process-wide trace.SegmentCache built from -trace-cache-bytes; a later
// registration replaces an earlier one.
func RegisterCacheStats(f func() CacheStats) {
	if f == nil {
		cacheStatsProvider.Store(nil)
		return
	}
	cacheStatsProvider.Store(&f)
}

// SnapshotCacheStats returns the current trace-cache observation, or nil
// when no cache has registered.
func SnapshotCacheStats() *CacheStats {
	fp := cacheStatsProvider.Load()
	if fp == nil {
		return nil
	}
	cs := (*fp)()
	return &cs
}
