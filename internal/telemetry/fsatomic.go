package telemetry

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that readers (and crashes) never
// observe a torn file: the bytes go to a temporary file in the same
// directory, are flushed, and the temp file is renamed over path. Rename
// within one directory is atomic on POSIX filesystems, so path either holds
// its previous content or the complete new content. The parent directory is
// created if needed.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write(data); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
