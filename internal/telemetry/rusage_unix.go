//go:build unix

package telemetry

import (
	"runtime"
	"syscall"
)

// peakRSSBytes reports the process's maximum resident set size, or 0 when
// the platform cannot say. ru_maxrss is in kilobytes on Linux and bytes on
// Darwin.
func peakRSSBytes() uint64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	rss := uint64(ru.Maxrss)
	if runtime.GOOS != "darwin" {
		rss *= 1024
	}
	return rss
}
