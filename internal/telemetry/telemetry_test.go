package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestSamplerSnapshotAndRates(t *testing.T) {
	var st RunStats
	s := NewSampler(&st, time.Hour) // never ticks; we snapshot by hand

	st.Accesses.Add(4096)
	st.Batches.Add(1)
	first := s.Snapshot()
	if first.Accesses != 4096 || first.Batches != 1 {
		t.Fatalf("counters not observed: %+v", first)
	}
	if first.AvgBatchFill != 4096 {
		t.Fatalf("AvgBatchFill = %v, want 4096", first.AvgBatchFill)
	}
	if first.Goroutines <= 0 || first.HeapAllocBytes == 0 {
		t.Fatalf("runtime stats missing: %+v", first)
	}

	st.Accesses.Add(4096)
	st.Batches.Add(1)
	time.Sleep(5 * time.Millisecond)
	second := s.Snapshot()
	if second.Rate <= 0 {
		t.Fatalf("instantaneous rate = %v, want > 0", second.Rate)
	}
	if second.CumulativeRate <= 0 {
		t.Fatalf("cumulative rate = %v, want > 0", second.CumulativeRate)
	}
	if got := s.Latest(); got.Accesses != second.Accesses {
		t.Fatalf("Latest() = %+v, want the second sample", got)
	}
}

func TestSamplerETA(t *testing.T) {
	var st RunStats
	s := NewSampler(&st, time.Hour)
	st.CellsTotal.Add(10)
	st.CellsDone.Add(5)
	time.Sleep(2 * time.Millisecond)
	sm := s.Snapshot()
	if sm.ETA <= 0 {
		t.Fatalf("ETA = %v, want > 0 at 5/10 cells", sm.ETA)
	}
	st.CellsDone.Add(5)
	if sm = s.Snapshot(); sm.ETA != 0 {
		t.Fatalf("ETA = %v after completion, want 0", sm.ETA)
	}
}

func TestSamplerStartStop(t *testing.T) {
	var st RunStats
	s := NewSampler(&st, time.Millisecond)
	got := make(chan Sample, 1)
	s.OnSample = func(sm Sample) {
		select {
		case got <- sm:
		default:
		}
	}
	s.Start()
	select {
	case <-got:
	case <-time.After(2 * time.Second):
		t.Fatal("no periodic sample within 2s")
	}
	final := s.Stop()
	if final.Time.IsZero() {
		t.Fatal("Stop returned a zero sample")
	}
	s.Stop() // idempotent
}

func TestQueueDepthsTrimmed(t *testing.T) {
	var st RunStats
	if d := st.QueueDepths(); d != nil {
		t.Fatalf("idle QueueDepths = %v, want nil", d)
	}
	st.QueueDepth[0].Add(2)
	st.QueueDepth[3].Add(1)
	d := st.QueueDepths()
	if len(d) != 4 || d[0] != 2 || d[3] != 1 {
		t.Fatalf("QueueDepths = %v, want [2 0 0 1]", d)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "sub", "out.json")
	if err := WriteFileAtomic(path, []byte("first"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "second" {
		t.Fatalf("content = %q, want %q", data, "second")
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestManifestWriteAndParse(t *testing.T) {
	dir := t.TempDir()
	m := NewManifest("unit test/tool")
	m.Nodes = 32
	m.Seed = 7
	m.Extra = map[string]any{"table": 2}

	var st RunStats
	st.Accesses.Add(1000)
	s := NewSampler(&st, time.Hour)
	time.Sleep(time.Millisecond)
	m.Finish(s.Snapshot(), nil)
	if m.Outcome != "ok" {
		t.Fatalf("Outcome = %q, want ok", m.Outcome)
	}
	if m.Accesses != 1000 || m.WallSeconds <= 0 || m.Throughput <= 0 {
		t.Fatalf("outcome fields not sealed: %+v", m)
	}

	path, err := WriteManifest(dir, m)
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.Base(path)
	if !strings.HasPrefix(base, "manifest_unit-test-tool_") || !strings.HasSuffix(base, ".json") {
		t.Fatalf("manifest name %q not sanitized as expected", base)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("manifest is not valid JSON: %v", err)
	}
	if back.Tool != m.Tool || back.Accesses != 1000 || back.Nodes != 32 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestManifestFinishRecordsError(t *testing.T) {
	m := NewManifest("t")
	var st RunStats
	m.Finish(NewSampler(&st, time.Hour).Snapshot(), io.ErrUnexpectedEOF)
	if m.Outcome != io.ErrUnexpectedEOF.Error() {
		t.Fatalf("Outcome = %q, want the error string", m.Outcome)
	}
}

func TestServerEndpoints(t *testing.T) {
	var st RunStats
	st.Accesses.Add(12345)
	st.Batches.Add(3)
	st.QueueDepth[1].Add(2)
	s := NewSampler(&st, time.Hour)
	man := NewManifest("srv-test")
	srv, err := StartServer("127.0.0.1:0", "srv-test", s, &man)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s read: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"migratory_accesses_total 12345",
		"migratory_batches_total 3",
		"migratory_shard_queue_depth{shard=\"1\"} 2",
		"go_goroutines",
		"# TYPE migratory_accesses_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get("/status")
	if code != 200 {
		t.Fatalf("/status status %d", code)
	}
	var status struct {
		Tool     string    `json:"tool"`
		Sample   Sample    `json:"sample"`
		Manifest *Manifest `json:"manifest"`
	}
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("/status is not JSON: %v\n%s", err, body)
	}
	if status.Tool != "srv-test" || status.Sample.Accesses != 12345 || status.Manifest == nil {
		t.Fatalf("/status payload wrong: %s", body)
	}

	if code, body = get("/debug/vars"); code != 200 || !strings.Contains(body, "memstats") {
		t.Fatalf("/debug/vars = %d", code)
	}
	if code, _ = get("/debug/pprof/"); code != 200 {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
}

func TestStartRunLifecycle(t *testing.T) {
	dir := t.TempDir()
	var progress strings.Builder
	run, err := StartRun(RunConfig{
		Tool:        "life",
		Addr:        "127.0.0.1:0",
		Interval:    time.Millisecond,
		ManifestDir: dir,
		Progress:    &progress,
		Manifest:    NewManifest("life"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.ServerAddr() == "" {
		t.Fatal("server did not start")
	}
	run.Stats().Accesses.Add(999)
	time.Sleep(20 * time.Millisecond) // let a few samples fire

	path, err := run.Close(nil)
	if err != nil {
		t.Fatal(err)
	}
	if path == "" {
		t.Fatal("no manifest written")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m.Accesses != 999 || m.Outcome != "ok" {
		t.Fatalf("manifest outcome wrong: %+v", m)
	}
	if progress.Len() == 0 {
		t.Fatal("no progress lines written")
	}
	if p2, _ := run.Close(nil); p2 != "" {
		t.Fatal("second Close should be a no-op")
	}
}

func TestProgressLineFormat(t *testing.T) {
	var b strings.Builder
	writeProgress(&b, "migsim", Sample{
		CellsDone:      12,
		CellsTotal:     32,
		Rate:           1.8e6,
		HeapAllocBytes: 210 << 20,
		ETA:            42 * time.Second,
	})
	line := b.String()
	for _, want := range []string{"migsim:", "12/32 cells", "1.8M acc/s", "210 MB", "eta 42s"} {
		if !strings.Contains(line, want) {
			t.Fatalf("progress line %q missing %q", line, want)
		}
	}
}
