//go:build !unix

package telemetry

// peakRSSBytes is unavailable off unix; manifests record 0.
func peakRSSBytes() uint64 { return 0 }
