package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"
)

// Server is the opt-in telemetry HTTP endpoint of a running tool. It is a
// plain stdlib server on its own mux (nothing leaks onto
// http.DefaultServeMux) serving:
//
//	/metrics     Prometheus text exposition of the live run counters
//	/status      the full latest Sample plus the run manifest, as JSON
//	/healthz     liveness ("ok" once serving)
//	/debug/vars  expvar, including a "migratory" var mirroring /status
//	/debug/pprof the standard pprof handlers (profile, heap, trace, ...)
type Server struct {
	sampler *Sampler
	tool    string

	mu       sync.Mutex
	manifest *Manifest

	// extension points: extra handlers mount on mux, extra metric and
	// status producers append to the built-in payloads (cohd uses these to
	// serve its API and admission metrics from the one telemetry server).
	mux        *http.ServeMux
	extMu      sync.Mutex
	extMetrics []func(io.Writer)
	extStatus  []func() map[string]any

	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// publishOnce guards the process-wide expvar registration (expvar.Publish
// panics on duplicate names; tests may start several servers).
var publishOnce sync.Once

// StartServer listens on addr (host:port; ":0" picks a free port) and
// serves the telemetry endpoints until Close. manifest, when non-nil, is
// included in /status responses and may be updated live via SetManifest.
func StartServer(addr, tool string, sampler *Sampler, manifest *Manifest) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{sampler: sampler, tool: tool, manifest: manifest, ln: ln, done: make(chan struct{})}

	mux := http.NewServeMux()
	s.mux = mux
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/status", s.handleStatus)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	publishOnce.Do(func() {
		expvar.Publish("migratory", expvar.Func(func() any {
			return s.statusPayload()
		}))
	})

	s.srv = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		defer close(s.done)
		// ErrServerClosed is the normal shutdown path; anything else has
		// nowhere to go but the status endpoint's absence.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Handle mounts an extra handler on the server's mux (http.ServeMux
// patterns, including Go 1.22 method patterns). Safe while serving;
// panics like ServeMux.Handle on conflicting patterns.
func (s *Server) Handle(pattern string, h http.Handler) { s.mux.Handle(pattern, h) }

// OnMetrics registers a producer appending extra families to /metrics
// responses (Prometheus text exposition; the producer writes complete
// HELP/TYPE/sample lines). Producers run in registration order on every
// scrape and must be safe for concurrent calls.
func (s *Server) OnMetrics(f func(io.Writer)) {
	s.extMu.Lock()
	s.extMetrics = append(s.extMetrics, f)
	s.extMu.Unlock()
}

// OnStatus registers a producer merging extra top-level keys into /status
// responses (and the expvar mirror). Later producers win key conflicts.
func (s *Server) OnStatus(f func() map[string]any) {
	s.extMu.Lock()
	s.extStatus = append(s.extStatus, f)
	s.extMu.Unlock()
}

// SetManifest swaps the manifest served by /status.
func (s *Server) SetManifest(m *Manifest) {
	s.mu.Lock()
	s.manifest = m
	s.mu.Unlock()
}

// Close stops the server and waits for the serve goroutine to exit.
func (s *Server) Close() error {
	err := s.srv.Close()
	<-s.done
	return err
}

func (s *Server) statusPayload() map[string]any {
	sm := s.sampler.Snapshot()
	s.mu.Lock()
	man := s.manifest
	s.mu.Unlock()
	payload := map[string]any{
		"tool":   s.tool,
		"sample": sm,
	}
	if man != nil {
		payload["manifest"] = man
	}
	s.extMu.Lock()
	ext := s.extStatus
	s.extMu.Unlock()
	for _, f := range ext {
		for k, v := range f() {
			payload[k] = v
		}
	}
	return payload
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(s.statusPayload())
}

// handleMetrics renders the latest sample in the Prometheus text
// exposition format (version 0.0.4): counters as *_total, gauges bare,
// per-shard queue depths as a labeled family.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sm := s.sampler.Snapshot()
	var b strings.Builder

	counter := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %g\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	counter("migratory_accesses_total", "Trace accesses processed by the engines.", float64(sm.Accesses))
	counter("migratory_batches_total", "Access batches delivered to the engines.", float64(sm.Batches))
	counter("migratory_classifier_transitions_total", "Classifier verdict flips (classify + declassify).", float64(sm.Transitions))
	counter("migratory_migrations_total", "Read misses served by migrating the block.", float64(sm.Migrations))
	counter("migratory_probe_events_total", "Typed obs events forwarded by attached StatsProbes.", float64(sm.Events))
	counter("migratory_cells_done_total", "Sweep simulation cells completed.", float64(sm.CellsDone))
	gauge("migratory_cells_total", "Sweep simulation cells scheduled (0 = not a sweep).", float64(sm.CellsTotal))
	counter("migratory_demux_batches_total", "Routed shard batches delivered by the demux stage.", float64(sm.DemuxBatches))
	counter("migratory_demux_stalls_total", "Shard-batch hand-offs that blocked on a full queue.", float64(sm.DemuxStalls))
	counter("migratory_demux_stall_seconds_total", "Producer time spent blocked on full shard queues.", float64(sm.DemuxStallNs)/1e9)
	gauge("migratory_throughput_accesses_per_second", "Instantaneous access throughput.", sm.Rate)
	gauge("migratory_throughput_cumulative_accesses_per_second", "Whole-run average access throughput.", sm.CumulativeRate)
	gauge("migratory_batch_fill_avg", "Average accesses per delivered batch.", sm.AvgBatchFill)
	gauge("migratory_eta_seconds", "Estimated remaining sweep wall time (0 = unknown).", sm.ETA.Seconds())

	if cs := sm.Cache; cs != nil {
		counter("migratory_trace_cache_hits_total", "Segment acquisitions served from the decoded-segment cache.", float64(cs.Hits))
		counter("migratory_trace_cache_misses_total", "Segment acquisitions that had to decode.", float64(cs.Misses))
		counter("migratory_trace_cache_single_flight_joins_total", "Hits that waited on another goroutine's in-progress decode.", float64(cs.SingleFlightJoins))
		counter("migratory_trace_cache_evictions_total", "Decoded segments dropped under memory pressure.", float64(cs.Evictions))
		counter("migratory_trace_cache_evicted_bytes_total", "Cumulative bytes of evicted decoded segments.", float64(cs.EvictedBytes))
		gauge("migratory_trace_cache_capacity_bytes", "Configured decoded-segment cache capacity.", float64(cs.CapBytes))
		gauge("migratory_trace_cache_resident_bytes", "Decoded-access bytes currently resident.", float64(cs.ResidentBytes))
		gauge("migratory_trace_cache_pinned_bytes", "Resident bytes referenced by in-flight consumers.", float64(cs.PinnedBytes))
		gauge("migratory_trace_cache_peak_pinned_bytes", "High-water mark of pinned bytes.", float64(cs.PeakPinnedBytes))
		gauge("migratory_trace_cache_entries", "Decoded segments resident.", float64(cs.Entries))
	}

	if len(sm.QueueDepths) > 0 {
		fmt.Fprintf(&b, "# HELP migratory_shard_queue_depth Routed batches in flight per shard slot.\n# TYPE migratory_shard_queue_depth gauge\n")
		for i, d := range sm.QueueDepths {
			fmt.Fprintf(&b, "migratory_shard_queue_depth{shard=\"%d\"} %d\n", i, d)
		}
	}

	gauge("go_goroutines", "Live goroutines.", float64(sm.Goroutines))
	gauge("go_heap_alloc_bytes", "Bytes of allocated heap objects.", float64(sm.HeapAllocBytes))
	gauge("go_heap_sys_bytes", "Heap memory obtained from the OS.", float64(sm.HeapSysBytes))
	counter("go_alloc_bytes_total", "Cumulative bytes allocated.", float64(sm.TotalAllocBytes))
	counter("go_gc_cycles_total", "Completed GC cycles.", float64(sm.NumGC))
	counter("go_gc_pause_seconds_total", "Cumulative GC stop-the-world pause.", float64(sm.GCPauseTotalNs)/1e9)
	gauge("process_uptime_seconds", "Seconds since the sampler started.", sm.Elapsed.Seconds())

	s.extMu.Lock()
	ext := s.extMetrics
	s.extMu.Unlock()
	for _, f := range ext {
		f(&b)
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
