package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"strings"
	"time"
)

// Manifest records the exact conditions of one tool run, so every row of a
// results artifact (results/bench_sweep.json, a CSV sweep, a report) is
// traceable to the configuration, code version, and machine behavior that
// produced it. Config fields are filled at start; Finish seals the outcome
// fields; WriteManifest persists the whole thing atomically.
type Manifest struct {
	Tool    string   `json:"tool"`
	Args    []string `json:"args"`
	Version string   `json:"version"`

	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Hostname   string `json:"hostname,omitempty"`
	PID        int    `json:"pid"`

	// Resolved run configuration (the sweep options after defaulting).
	Nodes       int      `json:"nodes,omitempty"`
	Seed        int64    `json:"seed,omitempty"`
	Length      int      `json:"length,omitempty"`
	Apps        []string `json:"apps,omitempty"`
	Policies    []string `json:"policies,omitempty"`
	Parallelism int      `json:"parallelism,omitempty"`
	Shards      int      `json:"shards,omitempty"`
	Stream      bool     `json:"stream,omitempty"`
	TraceFile   string   `json:"trace_file,omitempty"`
	BlockSize   int      `json:"block_size,omitempty"`
	PageSize    int      `json:"page_size,omitempty"`
	// Extra carries tool-specific settings (table number, cache list, ...).
	Extra map[string]any `json:"extra,omitempty"`

	// Outcome fields, sealed by Finish.
	Start          time.Time `json:"start"`
	End            time.Time `json:"end"`
	WallSeconds    float64   `json:"wall_seconds"`
	Accesses       uint64    `json:"accesses"`
	Throughput     float64   `json:"accesses_per_sec"`
	CellsDone      uint64    `json:"cells_done,omitempty"`
	Transitions    uint64    `json:"transitions,omitempty"`
	Migrations     uint64    `json:"migrations,omitempty"`
	PeakRSSBytes   uint64    `json:"peak_rss_bytes"`
	HeapAllocBytes uint64    `json:"heap_alloc_bytes"`
	NumGC          uint32    `json:"num_gc"`
	// TraceCache records the decoded-segment cache totals at run end (hit/
	// miss counters, peak pinned bytes) for every tool that opened a trace
	// through a SegmentCache; nil when the process ran without one.
	TraceCache *CacheStats `json:"trace_cache,omitempty"`
	// Outcome is "ok", or the error string of a failed run.
	Outcome string `json:"outcome"`
}

// NewManifest starts a manifest for the named tool: command line, build
// version, and machine facts are captured immediately, Start is now.
func NewManifest(tool string) Manifest {
	m := Manifest{
		Tool:       tool,
		Args:       append([]string(nil), os.Args[1:]...),
		Version:    buildVersion(),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		PID:        os.Getpid(),
		Start:      time.Now(),
		Outcome:    "ok",
	}
	if h, err := os.Hostname(); err == nil {
		m.Hostname = h
	}
	return m
}

// buildVersion renders the module version plus VCS revision when the
// binary carries build info ("(devel) a1b2c3d4-dirty", "v1.2.0").
func buildVersion() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	v := bi.Main.Version
	var rev, dirty string
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev != "" {
		if len(rev) > 12 {
			rev = rev[:12]
		}
		return fmt.Sprintf("%s %s%s", v, rev, dirty)
	}
	return v
}

// Finish seals the outcome fields from the run's final sample. err, when
// non-nil, is recorded as the outcome.
func (m *Manifest) Finish(final Sample, err error) {
	m.End = final.Time
	if m.End.IsZero() {
		m.End = time.Now()
	}
	m.WallSeconds = m.End.Sub(m.Start).Seconds()
	m.Accesses = final.Accesses
	if m.WallSeconds > 0 {
		m.Throughput = float64(final.Accesses) / m.WallSeconds
	}
	m.CellsDone = final.CellsDone
	m.Transitions = final.Transitions
	m.Migrations = final.Migrations
	m.PeakRSSBytes = peakRSSBytes()
	m.HeapAllocBytes = final.HeapAllocBytes
	m.NumGC = final.NumGC
	if m.TraceCache = final.Cache; m.TraceCache == nil {
		// Synthetic final samples (cohd's per-request manifests) carry no
		// cache observation; fall back to the live process-wide provider.
		m.TraceCache = SnapshotCacheStats()
	}
	if err != nil {
		m.Outcome = err.Error()
	}
}

// WriteManifest persists the manifest atomically (temp file + rename, see
// WriteFileAtomic) as dir/manifest_<tool>_<start>_<pid>.json and returns
// the path. The timestamp+pid name keeps concurrent and repeated runs from
// clobbering each other.
func WriteManifest(dir string, m Manifest) (string, error) {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return "", err
	}
	name := fmt.Sprintf("manifest_%s_%s_%d.json",
		sanitize(m.Tool), m.Start.UTC().Format("20060102T150405.000Z"), m.PID)
	path := filepath.Join(dir, name)
	if err := WriteFileAtomic(path, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return path, nil
}

// sanitize keeps manifest filenames shell-friendly.
func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
			return r
		default:
			return '-'
		}
	}, s)
}
