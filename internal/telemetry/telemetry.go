// Package telemetry is the harness's runtime observability plane: a block
// of atomic counters the engines bump at batch boundaries (RunStats), a
// periodic sampler turning those counters into throughput/occupancy
// snapshots (Sampler), an opt-in HTTP server exposing the snapshots as
// Prometheus metrics, JSON status, expvar, and pprof (Server), and an
// atomically written per-run manifest tying every result artifact back to
// its exact run conditions (Manifest).
//
// The package sits at the bottom of the dependency graph — it imports only
// the standard library — so the hot packages (trace, directory, snoop) can
// carry an optional *RunStats without cycles. Everything is nil-tolerant:
// with no RunStats attached the engines pay one pointer test per batch
// (4096 accesses) and nothing else, which BenchmarkTelemetryOverhead in the
// repository root holds within noise of the uninstrumented baseline.
package telemetry

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// MaxQueueShards bounds the per-shard queue-depth gauge array. Shard counts
// are powers of two capped by GOMAXPROCS in practice; counts beyond the
// bound alias onto slots modulo MaxQueueShards, so the gauges stay correct
// in aggregate.
const MaxQueueShards = 64

// RunStats is the shared atomic counter block one run (or one whole sweep)
// publishes while executing. Engines and the demux stage add to it at
// batch granularity — roughly once per trace.DefaultBatchSize accesses —
// so the counters cost nothing measurable on the hot path; the Sampler
// (or any other reader) may read them concurrently at any time.
//
// A single RunStats may be shared by many concurrent simulation cells:
// every field is a pure sum (or an instantaneous gauge), so the aggregate
// view stays meaningful under sweep parallelism and set-sharding alike.
type RunStats struct {
	// Accesses counts trace accesses fully processed by the engines.
	Accesses atomic.Uint64
	// Batches counts engine-delivered access batches; the average batch
	// fill is Accesses/Batches.
	Batches atomic.Uint64
	// Transitions counts classifier verdict flips (classify + declassify)
	// observed by the directory engines.
	Transitions atomic.Uint64
	// Migrations counts read misses served by migrating the block (both
	// engines).
	Migrations atomic.Uint64
	// Events counts typed obs events forwarded by an attached StatsProbe.
	Events atomic.Uint64

	// CellsDone/CellsTotal track sweep progress: independent simulation
	// cells completed versus scheduled. CellsTotal is 0 for runs that are
	// not sweeps, in which case ETA reporting is suppressed.
	CellsDone  atomic.Uint64
	CellsTotal atomic.Uint64

	// DemuxBatches counts routed shard batches handed to consumers;
	// DemuxStalls counts the hand-offs that blocked on a full shard queue
	// and DemuxStallNs the total producer time spent blocked — the
	// back-pressure signal of a set-sharded run.
	DemuxBatches atomic.Uint64
	DemuxStalls  atomic.Uint64
	DemuxStallNs atomic.Uint64
	// QueueDepth is the number of routed batches currently in flight
	// (sent but not yet consumed) per shard slot; shard i uses slot
	// i % MaxQueueShards. With several sharded cells live at once a slot
	// aggregates across them, which is exactly the total back-pressure on
	// that shard index.
	//
	// Producer contract (single OR multiple producers): a batch is counted
	// into the gauge strictly before it becomes visible to any consumer,
	// and decremented exactly once when consumed. Pre-hand-off increments
	// mean the gauge can momentarily overstate depth, but it can never dip
	// negative and never double-counts, no matter how producer goroutines
	// interleave — trace.DemuxStats and trace.DemuxParallel both uphold
	// this, and TestQueueDepthMultiProducer pins it under -race.
	QueueDepth [MaxQueueShards]atomic.Int64

	// BytesRead counts compressed trace bytes decoded from .mtr sources,
	// when the source reports them.
	BytesRead atomic.Uint64
}

// QueueDepths returns the current per-slot queue-depth gauges up to the
// highest active slot (nil when every slot is idle).
func (rs *RunStats) QueueDepths() []int64 {
	hi := -1
	var depths [MaxQueueShards]int64
	for i := range rs.QueueDepth {
		if d := rs.QueueDepth[i].Load(); d != 0 {
			depths[i] = d
			hi = i
		}
	}
	if hi < 0 {
		return nil
	}
	out := make([]int64, hi+1)
	copy(out, depths[:hi+1])
	return out
}

// Sample is one observation of a running simulation: the RunStats counters
// at an instant, the rates derived from the previous observation, and the
// Go runtime's memory and scheduler state.
type Sample struct {
	Time    time.Time     `json:"time"`
	Elapsed time.Duration `json:"elapsed_ns"`

	Accesses    uint64 `json:"accesses"`
	Batches     uint64 `json:"batches"`
	Transitions uint64 `json:"transitions"`
	Migrations  uint64 `json:"migrations"`
	Events      uint64 `json:"events"`
	CellsDone   uint64 `json:"cells_done"`
	CellsTotal  uint64 `json:"cells_total"`

	// Rate is the instantaneous throughput (accesses/second since the
	// previous sample); CumulativeRate averages over the whole run.
	Rate           float64 `json:"accesses_per_sec"`
	CumulativeRate float64 `json:"accesses_per_sec_cumulative"`
	// AvgBatchFill is Accesses/Batches — how full the delivered batches
	// run (a low fill on an .mtr replay means the decode stage, not the
	// engine, is the bottleneck).
	AvgBatchFill float64 `json:"avg_batch_fill"`

	DemuxBatches uint64  `json:"demux_batches"`
	DemuxStalls  uint64  `json:"demux_stalls"`
	DemuxStallNs uint64  `json:"demux_stall_ns"`
	QueueDepths  []int64 `json:"queue_depths,omitempty"`

	// ETA estimates the remaining wall time from sweep-cell progress;
	// zero when CellsTotal is unknown.
	ETA time.Duration `json:"eta_ns"`

	// Cache is the decoded-segment cache observation (nil when the process
	// runs without a trace.SegmentCache; see RegisterCacheStats).
	Cache *CacheStats `json:"trace_cache,omitempty"`

	HeapAllocBytes  uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes    uint64 `json:"heap_sys_bytes"`
	TotalAllocBytes uint64 `json:"total_alloc_bytes"`
	NumGC           uint32 `json:"num_gc"`
	GCPauseTotalNs  uint64 `json:"gc_pause_total_ns"`
	Goroutines      int    `json:"goroutines"`
}

// Sampler periodically snapshots a RunStats into Samples. Readers pull the
// latest observation with Latest or force a fresh one with Snapshot; an
// optional OnSample hook (progress printing, debug logging) runs on the
// sampler goroutine after each tick.
type Sampler struct {
	stats    *RunStats
	interval time.Duration
	start    time.Time

	// OnSample, when non-nil, observes every periodic sample. Set before
	// Start.
	OnSample func(Sample)

	mu   sync.Mutex
	last Sample

	stop chan struct{}
	done chan struct{}
}

// DefaultInterval is the sampling cadence when none is configured.
const DefaultInterval = 2 * time.Second

// NewSampler builds a sampler over stats (which must be non-nil).
// interval <= 0 uses DefaultInterval.
func NewSampler(stats *RunStats, interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = DefaultInterval
	}
	return &Sampler{stats: stats, interval: interval, start: time.Now()}
}

// Stats returns the counter block the sampler observes.
func (s *Sampler) Stats() *RunStats { return s.stats }

// Start launches the sampling goroutine. Call Stop to halt it.
func (s *Sampler) Start() {
	if s.stop != nil {
		return
	}
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go func() {
		defer close(s.done)
		t := time.NewTicker(s.interval)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				sm := s.Snapshot()
				if s.OnSample != nil {
					s.OnSample(sm)
				}
			}
		}
	}()
}

// Stop halts the sampling goroutine (idempotent) and returns a final
// fresh sample covering the whole run.
func (s *Sampler) Stop() Sample {
	if s.stop != nil {
		select {
		case <-s.stop:
		default:
			close(s.stop)
		}
		<-s.done
	}
	return s.Snapshot()
}

// Latest returns the most recent sample without touching the counters
// (zero before the first tick or Snapshot call).
func (s *Sampler) Latest() Sample {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last
}

// Snapshot reads the counters and runtime state now, derives rates against
// the previous observation, stores the result as the latest sample, and
// returns it. Safe for concurrent use.
func (s *Sampler) Snapshot() Sample {
	now := time.Now()
	st := s.stats
	sm := Sample{
		Time:         now,
		Elapsed:      now.Sub(s.start),
		Accesses:     st.Accesses.Load(),
		Batches:      st.Batches.Load(),
		Transitions:  st.Transitions.Load(),
		Migrations:   st.Migrations.Load(),
		Events:       st.Events.Load(),
		CellsDone:    st.CellsDone.Load(),
		CellsTotal:   st.CellsTotal.Load(),
		DemuxBatches: st.DemuxBatches.Load(),
		DemuxStalls:  st.DemuxStalls.Load(),
		DemuxStallNs: st.DemuxStallNs.Load(),
		QueueDepths:  st.QueueDepths(),
		Cache:        SnapshotCacheStats(),
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	sm.HeapAllocBytes = ms.HeapAlloc
	sm.HeapSysBytes = ms.HeapSys
	sm.TotalAllocBytes = ms.TotalAlloc
	sm.NumGC = ms.NumGC
	sm.GCPauseTotalNs = ms.PauseTotalNs
	sm.Goroutines = runtime.NumGoroutine()

	if sm.Batches > 0 {
		sm.AvgBatchFill = float64(sm.Accesses) / float64(sm.Batches)
	}
	if sec := sm.Elapsed.Seconds(); sec > 0 {
		sm.CumulativeRate = float64(sm.Accesses) / sec
	}

	s.mu.Lock()
	prev := s.last
	if dt := sm.Time.Sub(prev.Time).Seconds(); !prev.Time.IsZero() && dt > 0 && sm.Accesses >= prev.Accesses {
		sm.Rate = float64(sm.Accesses-prev.Accesses) / dt
	} else {
		sm.Rate = sm.CumulativeRate
	}
	if sm.CellsTotal > 0 && sm.CellsDone > 0 && sm.CellsDone < sm.CellsTotal {
		perCell := sm.Elapsed / time.Duration(sm.CellsDone)
		sm.ETA = perCell * time.Duration(sm.CellsTotal-sm.CellsDone)
	}
	s.last = sm
	s.mu.Unlock()
	return sm
}
