package telemetry

import (
	"fmt"
	"io"
	"log/slog"
	"strings"
	"time"
)

// RunConfig configures StartRun. The zero value is fully passive: no HTTP
// server, no progress printing, no manifest, default sampling interval.
type RunConfig struct {
	// Tool names the running command ("migsim", "bussim", ...).
	Tool string
	// Addr, when non-empty, starts the telemetry HTTP server there.
	Addr string
	// Interval is the sampling cadence (<= 0 means DefaultInterval).
	Interval time.Duration
	// ManifestDir, when non-empty, receives an atomically written run
	// manifest at Close.
	ManifestDir string
	// Progress, when non-nil, receives one-line progress/ETA updates per
	// sample (intended for a TTY's stderr).
	Progress io.Writer
	// Logger receives lifecycle messages; nil uses slog.Default().
	Logger *slog.Logger
	// Manifest is the pre-filled run manifest (NewManifest plus resolved
	// config); only consulted when ManifestDir is set or Addr serves it.
	Manifest Manifest
}

// Run is one live telemetry session: a counter block the engines feed, a
// sampler over it, and optionally an HTTP server, progress printing, and a
// manifest written at Close.
type Run struct {
	cfg     RunConfig
	stats   RunStats
	sampler *Sampler
	server  *Server
	log     *slog.Logger
	closed  bool
}

// StartRun begins a telemetry session. It always succeeds in degraded form:
// if the HTTP listener fails the error is returned with a still-usable Run
// (sampler running, no server), so callers may choose to continue or abort.
func StartRun(cfg RunConfig) (*Run, error) {
	r := &Run{cfg: cfg, log: cfg.Logger}
	if r.log == nil {
		r.log = slog.Default()
	}
	r.sampler = NewSampler(&r.stats, cfg.Interval)
	if cfg.Progress != nil {
		r.sampler.OnSample = func(sm Sample) { writeProgress(cfg.Progress, cfg.Tool, sm) }
	}
	r.sampler.Start()

	var err error
	if cfg.Addr != "" {
		r.server, err = StartServer(cfg.Addr, cfg.Tool, r.sampler, &r.cfg.Manifest)
		if err != nil {
			r.log.Warn("telemetry server failed to start", "addr", cfg.Addr, "err", err)
		} else {
			r.log.Info("telemetry serving",
				"addr", r.server.Addr(),
				"endpoints", "/metrics /status /healthz /debug/vars /debug/pprof")
		}
	}
	return r, err
}

// Stats returns the counter block to hand to engines (sim.Options.Stats,
// directory/snoop Config.Stats). Never nil.
func (r *Run) Stats() *RunStats { return &r.stats }

// Sampler exposes the run's sampler for ad-hoc snapshots.
func (r *Run) Sampler() *Sampler { return r.sampler }

// Server exposes the run's HTTP server so callers can mount extra handlers
// or metrics producers on it (nil when no server runs).
func (r *Run) Server() *Server { return r.server }

// ServerAddr reports the bound telemetry address ("" when no server runs).
func (r *Run) ServerAddr() string {
	if r.server == nil {
		return ""
	}
	return r.server.Addr()
}

// Close ends the session: stops the sampler, seals the manifest with the
// final sample and runErr, writes it (when configured), shuts the server
// down, and logs a one-line run summary. Idempotent; returns the manifest
// path ("" when not written).
func (r *Run) Close(runErr error) (string, error) {
	if r.closed {
		return "", nil
	}
	r.closed = true

	final := r.sampler.Stop()
	r.cfg.Manifest.Finish(final, runErr)

	var path string
	var err error
	if r.cfg.ManifestDir != "" {
		path, err = WriteManifest(r.cfg.ManifestDir, r.cfg.Manifest)
		if err != nil {
			r.log.Warn("manifest write failed", "dir", r.cfg.ManifestDir, "err", err)
		}
	}
	if r.server != nil {
		_ = r.server.Close()
	}

	attrs := []any{
		"accesses", final.Accesses,
		"wall", final.Elapsed.Round(time.Millisecond),
		"accesses_per_sec", fmt.Sprintf("%.0f", final.CumulativeRate),
	}
	if final.CellsTotal > 0 {
		attrs = append(attrs, "cells", fmt.Sprintf("%d/%d", final.CellsDone, final.CellsTotal))
	}
	if final.DemuxStalls > 0 {
		attrs = append(attrs, "demux_stall", time.Duration(final.DemuxStallNs).Round(time.Millisecond))
	}
	if path != "" {
		attrs = append(attrs, "manifest", path)
	}
	if runErr != nil {
		attrs = append(attrs, "err", runErr)
		r.log.Error("run finished with error", attrs...)
	} else {
		r.log.Info("run finished", attrs...)
	}
	return path, err
}

// writeProgress renders one status line per sample, e.g.
//
//	migsim: 12/32 cells (37%) · 1.8M acc/s · heap 210 MB · eta 42s
//
// Lines are written whole so they interleave cleanly with log output.
func writeProgress(w io.Writer, tool string, sm Sample) {
	var b strings.Builder
	if tool != "" {
		fmt.Fprintf(&b, "%s: ", tool)
	}
	if sm.CellsTotal > 0 {
		fmt.Fprintf(&b, "%d/%d cells (%.0f%%) · ", sm.CellsDone, sm.CellsTotal,
			100*float64(sm.CellsDone)/float64(sm.CellsTotal))
	}
	fmt.Fprintf(&b, "%s acc/s · heap %s", humanCount(sm.Rate), humanBytes(sm.HeapAllocBytes))
	if sm.ETA > 0 {
		fmt.Fprintf(&b, " · eta %s", sm.ETA.Round(time.Second))
	}
	fmt.Fprintln(w, b.String())
}

// humanCount renders a rate compactly ("950", "1.8M", "12.3k").
func humanCount(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

// humanBytes renders a byte count compactly ("210 MB").
func humanBytes(v uint64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.0f MB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.0f kB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%d B", v)
	}
}
