package cliutil

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"migratory/internal/sim"
	"migratory/internal/telemetry"
)

// TelemetryFlags bundles the observability flags every command shares:
// the opt-in metrics/pprof HTTP server, structured-log shaping, manifest
// output, and progress printing. Register them with RegisterTelemetry
// before flag.Parse, call SetupLogging right after it, and Start once the
// run options are resolved.
type TelemetryFlags struct {
	name string

	*LogFlags

	Addr        *string
	Interval    *time.Duration
	ManifestDir *string
	Progress    *string
}

// RegisterTelemetry declares the shared observability flags on the default
// flag set.
func RegisterTelemetry(name string) *TelemetryFlags {
	t := &TelemetryFlags{name: name}
	t.Addr = flag.String("telemetry-addr", "", "serve live metrics on this address (/metrics, /status, /healthz, /debug/vars, /debug/pprof); empty = no server")
	t.Interval = flag.Duration("telemetry-interval", telemetry.DefaultInterval, "telemetry sampling cadence")
	t.LogFlags = RegisterLogging(name)
	t.ManifestDir = flag.String("manifest-dir", "results", "directory for atomically written run manifests; empty = no manifest")
	t.Progress = flag.String("progress", "auto", "periodic progress/ETA lines on stderr: auto (TTY only), on, or off")
	return t
}

// LogFlags is the structured-logging slice of the shared flags, separable
// so always-on servers (cohd) can take -log-level/-log-format without the
// one-shot sweep flags.
type LogFlags struct {
	name string

	LogLevel  *string
	LogFormat *string
}

// RegisterLogging declares -log-level and -log-format on the default flag
// set.
func RegisterLogging(name string) *LogFlags {
	l := &LogFlags{name: name}
	l.LogLevel = flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	l.LogFormat = flag.String("log-format", "text", "log line shape: text or json")
	return l
}

// SetupLogging installs the process-wide slog default described by
// -log-level and -log-format. Call immediately after flag.Parse so every
// later warning and error (including Fatal) is shaped consistently.
func (l *LogFlags) SetupLogging() {
	var level slog.Level
	switch strings.ToLower(*l.LogLevel) {
	case "debug":
		level = slog.LevelDebug
	case "info", "":
		level = slog.LevelInfo
	case "warn", "warning":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		Usagef(l.name, "-log-level: unknown level %q (want debug, info, warn, or error)", *l.LogLevel)
	}
	ho := &slog.HandlerOptions{Level: level}
	var h slog.Handler
	switch strings.ToLower(*l.LogFormat) {
	case "text", "":
		h = slog.NewTextHandler(os.Stderr, ho)
	case "json":
		h = slog.NewJSONHandler(os.Stderr, ho)
	default:
		Usagef(l.name, "-log-format: unknown format %q (want text or json)", *l.LogFormat)
	}
	slog.SetDefault(slog.New(h))
}

// progressWriter resolves -progress: "on" forces stderr, "off" disables,
// and "auto" enables progress lines only when stderr is a terminal.
func (t *TelemetryFlags) progressWriter() *os.File {
	switch strings.ToLower(*t.Progress) {
	case "on":
		return os.Stderr
	case "off":
		return nil
	case "auto", "":
		if st, err := os.Stderr.Stat(); err == nil && st.Mode()&os.ModeCharDevice != 0 {
			return os.Stderr
		}
		return nil
	default:
		Usagef(t.name, "-progress: unknown mode %q (want auto, on, or off)", *t.Progress)
		return nil
	}
}

// Start begins the command's telemetry session: the run manifest is
// pre-filled from the resolved sweep options (plus any tool-specific extra
// settings), the sampler starts, the HTTP server comes up when
// -telemetry-addr was given, and progress printing engages per -progress.
// Wire run.Stats() into sim.Options.Stats (or an engine Config.Stats) and
// arrange for run.Close(err) before exit. A failed listener degrades to a
// serverless session with a logged warning rather than aborting the run.
func (t *TelemetryFlags) Start(opts sim.Options, traceFile string, extra map[string]any) *telemetry.Run {
	man := telemetry.NewManifest(t.name)
	man.Nodes = opts.Nodes
	man.Seed = opts.Seed
	man.Length = opts.Length
	man.Apps = opts.Apps
	for _, p := range opts.Policies {
		man.Policies = append(man.Policies, p.Name)
	}
	man.Parallelism = opts.Parallelism
	man.Shards = opts.Shards
	man.Stream = opts.Stream
	man.TraceFile = traceFile
	man.Extra = extra

	cfg := telemetry.RunConfig{
		Tool:        t.name,
		Addr:        *t.Addr,
		Interval:    *t.Interval,
		ManifestDir: *t.ManifestDir,
		Manifest:    man,
	}
	if w := t.progressWriter(); w != nil {
		cfg.Progress = w
	}
	run, _ := telemetry.StartRun(cfg) // listener failure already logged; run is usable
	return run
}

// FatalRun seals and writes the telemetry run's manifest with the failure
// before exiting through Fatal, so even an aborted run leaves a traceable
// artifact. run may be nil (failure before telemetry started).
func FatalRun(run *telemetry.Run, name, format string, args ...any) {
	if run != nil {
		run.Close(fmt.Errorf(format, args...))
	}
	Fatal(name, format, args...)
}
