// Package cliutil collects the flag parsing, option wiring, and trace
// loading shared by the cmd/ mains, so each command declares only what is
// unique to it: the common sweep flags (-apps, -length, -seed, -nodes,
// -parallelism, -shards, -decoders, -trace, -stream), the parallelism
// guard, signal-cancelled
// contexts, policy and bus-protocol lookup, event-filter parsing, and the
// fatal/usage exit helpers.
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"migratory/internal/core"
	"migratory/internal/directory"
	"migratory/internal/memory"
	"migratory/internal/obs"
	"migratory/internal/sim"
	"migratory/internal/snoop"
	"migratory/internal/telemetry"
	"migratory/internal/trace"
)

// Flags bundles the sweep flags every simulator CLI shares. Register them
// before flag.Parse, then call Validate and Options.
type Flags struct {
	name string

	Apps            *string
	Length          *int
	Seed            *int64
	Nodes           *int
	Parallelism     *int
	Shards          *int
	Decoders        *int
	Trace           *string
	Stream          *bool
	TraceCacheBytes *int64

	cacheOnce sync.Once
	cache     *trace.SegmentCache
}

// Register declares the shared sweep flags on the default flag set and
// returns their holder. name prefixes error messages ("migsim: ...").
func Register(name string) *Flags {
	f := &Flags{name: name}
	f.Apps = flag.String("apps", "", "comma-separated app subset (default: all five)")
	f.Length = flag.Int("length", 0, "trace length override (0 = per-app default)")
	f.Seed = flag.Int64("seed", 1993, "workload generator seed")
	f.Nodes = flag.Int("nodes", 16, "processor count")
	f.Parallelism = flag.Int("parallelism", 0, "sweep worker goroutines (0 = all CPUs, 1 = sequential; results are identical either way)")
	f.Shards = flag.Int("shards", 1, "engine shards per untimed simulation run, split by cache-set index (1 = sequential, -1 = all CPUs; results are identical either way)")
	f.Decoders = flag.Int("decoders", 0, "parallel trace-decode workers for indexed (v3) .mtr files (0 = all CPUs, 1 = sequential decode; results are identical either way)")
	f.Trace = flag.String("trace", "", "run over a binary trace file (from tracegen) instead of the built-in workloads")
	f.Stream = flag.Bool("stream", false, "regenerate traces lazily per simulation cell instead of materializing them (O(1) trace memory; bit-identical results)")
	f.TraceCacheBytes = flag.Int64("trace-cache-bytes", trace.DefaultTraceCacheBytes, "decoded-segment cache capacity shared by every cell replaying an indexed (v3) .mtr trace (0 = decode per cell; results are identical either way)")
	return f
}

// Cache returns the process-wide decoded-segment cache described by
// -trace-cache-bytes, building it on first call and registering it as the
// telemetry plane's cache observation source (so /metrics and run
// manifests carry its hit/miss/pinned counters). Returns nil when the flag
// is 0 — caching off.
func (f *Flags) Cache() *trace.SegmentCache {
	f.cacheOnce.Do(func() {
		f.cache = trace.NewSegmentCache(*f.TraceCacheBytes)
		if f.cache != nil {
			c := f.cache
			telemetry.RegisterCacheStats(func() telemetry.CacheStats { return c.Stats() })
		}
	})
	return f.cache
}

// Validate enforces the shared flag invariants after flag.Parse, exiting
// with usage (status 2) on violation. -shards composes with -parallelism
// multiplicatively; when the two together would oversubscribe GOMAXPROCS,
// the worker pool is capped (with a warning on stderr) rather than refused,
// since results are bit-identical at any setting.
func (f *Flags) Validate() {
	f.validateWorkerFlag("-parallelism", *f.Parallelism, 0)
	f.validateWorkerFlag("-shards", *f.Shards, -1)
	f.validateWorkerFlag("-decoders", *f.Decoders, 0)
	if *f.TraceCacheBytes < 0 {
		Usagef(f.name, "-trace-cache-bytes must be >= 0 (0 disables the cache; got %d)", *f.TraceCacheBytes)
	}

	procs := runtime.GOMAXPROCS(0)
	shards := *f.Shards
	if shards < 0 {
		shards = procs
	}
	workers := *f.Parallelism
	if workers == 0 {
		workers = procs
	}
	if shards > procs {
		slog.Warn("-shards exceeds GOMAXPROCS; shards will contend for CPUs",
			"tool", f.name, "shards", shards, "gomaxprocs", procs)
	}
	if shards > 1 && workers > 1 && shards*workers > procs {
		capped := procs / shards
		if capped < 1 {
			capped = 1
		}
		if capped < workers {
			slog.Warn("-shards x -parallelism oversubscribes GOMAXPROCS; capping parallelism",
				"tool", f.name, "shards", shards, "parallelism", workers, "gomaxprocs", procs, "capped", capped)
			*f.Parallelism = capped
		}
	}
}

// ResolveShards turns a -shards value into a usable engine shard count for
// commands that construct engines directly (sim.Options performs the same
// resolution internally): -1 means all CPUs, counts round down to a power
// of two, and finite caches cap the count at the per-cache set count so no
// shard is left without sets.
func ResolveShards(shards, cacheBytes, blockSize int) int {
	if shards == -1 {
		shards = runtime.GOMAXPROCS(0)
	}
	p := 1
	for p*2 <= shards {
		p *= 2
	}
	if max := directory.MaxShards(cacheBytes, blockSize, 0); max > 0 && p > max {
		p = max
	}
	return p
}

// validateWorkerFlag is the shared range check for the two worker-count
// flags: positive counts are always valid, and auto (the flag's designated
// auto value: 0 for -parallelism, -1 for -shards) means "all CPUs".
// Anything else is a usage error.
func (f *Flags) validateWorkerFlag(flagName string, v, auto int) {
	if v >= 1 || v == auto {
		return
	}
	Usagef(f.name, "%s must be >= 1 or %d for all CPUs (got %d)", flagName, auto, v)
}

// Options assembles the sim.Options the flags describe. ctx, when non-nil,
// cancels the sweeps built from these options (see SignalContext).
func (f *Flags) Options(ctx context.Context) sim.Options {
	opts := sim.Options{
		Context:     ctx,
		Nodes:       *f.Nodes,
		Seed:        *f.Seed,
		Length:      *f.Length,
		Stream:      *f.Stream,
		Parallelism: *f.Parallelism,
		Shards:      *f.Shards,
		Decoders:    *f.Decoders,
		Cache:       f.Cache(),
	}
	if *f.Apps != "" {
		for _, a := range strings.Split(*f.Apps, ",") {
			opts.Apps = append(opts.Apps, strings.TrimSpace(a))
		}
	}
	return opts
}

// TraceApps opens the -trace file, if one was given, as a one-element app
// list for the *Apps sweep variants; it returns nil when -trace is unset.
// Every simulation cell re-opens and re-decodes the file, so the sweep's
// trace memory stays constant no matter how many accesses the file holds.
func (f *Flags) TraceApps() ([]*sim.App, error) {
	if *f.Trace == "" {
		return nil, nil
	}
	app, err := TraceApp(*f.Trace, *f.Nodes, *f.Decoders, f.Cache())
	if err != nil {
		return nil, err
	}
	return []*sim.App{app}, nil
}

// TraceApp wraps one binary trace file (any .mtr version or the legacy
// fixed-record format) as a sim.App: the usage-based placement comes from
// one streaming profiling pass, and each Open re-reads the file from the
// start. Indexed (v3) files open as an IndexedFileSource with decoders
// decode workers — in sharded runs the segments feed the shards directly
// (trace.DemuxParallel); older versions fall back to sequential decode
// ahead of the simulation on a prefetch goroutine. Either way decode
// overlaps the engine's work, and the composition is explicit in
// trace.OpenFileParallelCache rather than depending on the shard count.
// cache, when non-nil, lets every opened source (the profiling pass
// included) share decoded segments instead of re-decoding per cell.
func TraceApp(path string, nodes, decoders int, cache *trace.SegmentCache) (*sim.App, error) {
	return sim.NewSourceApp(path, func() (trace.Source, error) {
		return trace.OpenFileParallelCache(path, decoders, cache)
	}, nodes)
}

// ProfileFlags holds the pprof flags every command shares (-cpuprofile,
// -memprofile). Register them with RegisterProfile before flag.Parse, then
// arrange for the Start result to run before exit:
//
//	prof := cliutil.RegisterProfile("migsim")
//	flag.Parse()
//	defer prof.Start()()
//
// The profiles feed `go tool pprof` (see `make profile`).
type ProfileFlags struct {
	name string
	cpu  *string
	mem  *string
}

// RegisterProfile declares the shared profiling flags on the default flag
// set.
func RegisterProfile(name string) *ProfileFlags {
	p := &ProfileFlags{name: name}
	p.cpu = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	p.mem = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	return p
}

// profileStop flushes any in-flight profiles; Fatal runs it so a failed run
// still writes whatever the CPU profiler collected.
var profileStop func()

// Start begins CPU profiling when -cpuprofile was given and returns the
// stop function, which also writes the heap profile when -memprofile was
// given. The stop function is idempotent; flush failures are reported to
// stderr rather than exiting (the run's real output already happened).
func (p *ProfileFlags) Start() func() {
	var cpuFile *os.File
	if *p.cpu != "" {
		f, err := os.Create(*p.cpu)
		if err != nil {
			Fatal(p.name, "-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			Fatal(p.name, "-cpuprofile: %v", err)
		}
		cpuFile = f
	}
	var once sync.Once
	stop := func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "%s: -cpuprofile: %v\n", p.name, err)
				}
			}
			if *p.mem == "" {
				return
			}
			f, err := os.Create(*p.mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: -memprofile: %v\n", p.name, err)
				return
			}
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "%s: -memprofile: %v\n", p.name, err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: -memprofile: %v\n", p.name, err)
			}
		})
	}
	profileStop = stop
	return stop
}

// SignalContext returns a context cancelled on SIGINT or SIGTERM, so ^C
// aborts an in-flight sweep promptly and cleanly (the sweep returns
// ctx.Err()). A second signal kills the process as usual.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// Fatal is the single funnel every command's runtime failure exits
// through: it emits one structured slog error line (honouring -log-level
// and -log-format when RegisterTelemetry set them up), flushes any
// in-flight profiles, and exits with status 1. Mid-stream trace decode
// errors, sweep failures, and IO errors all land here, so scripted callers
// get a machine-parseable last line and a non-zero status instead of a
// panic or a bare print.
func Fatal(name, format string, args ...any) {
	slog.Error(fmt.Sprintf(format, args...), "tool", name)
	if profileStop != nil {
		profileStop()
	}
	os.Exit(1)
}

// Usagef prints "name: message" and the flag usage, then exits with
// status 2 (a command-line error rather than a runtime failure).
func Usagef(name, format string, args ...any) {
	fmt.Fprintf(os.Stderr, name+": "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// PolicyArg resolves a -policy flag value, exiting with usage on an
// unknown name.
func PolicyArg(name, policy string) core.Policy {
	pol, err := core.PolicyByName(policy)
	if err != nil {
		Usagef(name, "%v", err)
	}
	return pol
}

// BusProtocolByName resolves a snooping protocol variant by its name. The
// error wraps snoop.ErrUnknownProtocol, exactly like the unified Run API.
func BusProtocolByName(name string) (snoop.Protocol, error) {
	return snoop.ProtocolByName(name)
}

// ParseCaches parses a comma-separated list of per-node cache sizes in
// bytes ("65536,1048576").
func ParseCaches(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var sizes []int
	for _, c := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(c))
		if err != nil {
			return nil, fmt.Errorf("bad cache size %q", c)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// ParseFilter builds an event filter from the comma-separated -kinds,
// -blocks, and -filter-nodes flag values (empty = no restriction).
func ParseFilter(kinds, blocks, nodes string) (obs.Filter, error) {
	var f obs.Filter
	if kinds != "" {
		for _, name := range strings.Split(kinds, ",") {
			k, err := obs.ParseKind(strings.TrimSpace(name))
			if err != nil {
				return f, err
			}
			f.Kinds = f.Kinds.Add(k)
		}
	}
	if blocks != "" {
		f.Blocks = make(map[memory.BlockID]bool)
		for _, s := range strings.Split(blocks, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
			if err != nil {
				return f, fmt.Errorf("bad block ID %q", s)
			}
			f.Blocks[memory.BlockID(v)] = true
		}
	}
	if nodes != "" {
		f.Nodes = make(map[memory.NodeID]bool)
		for _, s := range strings.Split(nodes, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 32)
			if err != nil {
				return f, fmt.Errorf("bad node ID %q", s)
			}
			f.Nodes[memory.NodeID(v)] = true
		}
	}
	return f, nil
}
