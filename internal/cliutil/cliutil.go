// Package cliutil collects the flag parsing, option wiring, and trace
// loading shared by the cmd/ mains, so each command declares only what is
// unique to it: the common sweep flags (-apps, -length, -seed, -nodes,
// -parallelism, -trace, -stream), the parallelism guard, signal-cancelled
// contexts, policy and bus-protocol lookup, event-filter parsing, and the
// fatal/usage exit helpers.
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"migratory/internal/core"
	"migratory/internal/memory"
	"migratory/internal/obs"
	"migratory/internal/sim"
	"migratory/internal/snoop"
	"migratory/internal/trace"
)

// Flags bundles the sweep flags every simulator CLI shares. Register them
// before flag.Parse, then call Validate and Options.
type Flags struct {
	name string

	Apps        *string
	Length      *int
	Seed        *int64
	Nodes       *int
	Parallelism *int
	Trace       *string
	Stream      *bool
}

// Register declares the shared sweep flags on the default flag set and
// returns their holder. name prefixes error messages ("migsim: ...").
func Register(name string) *Flags {
	f := &Flags{name: name}
	f.Apps = flag.String("apps", "", "comma-separated app subset (default: all five)")
	f.Length = flag.Int("length", 0, "trace length override (0 = per-app default)")
	f.Seed = flag.Int64("seed", 1993, "workload generator seed")
	f.Nodes = flag.Int("nodes", 16, "processor count")
	f.Parallelism = flag.Int("parallelism", 0, "sweep worker goroutines (0 = all CPUs, 1 = sequential; results are identical either way)")
	f.Trace = flag.String("trace", "", "run over a binary trace file (from tracegen) instead of the built-in workloads")
	f.Stream = flag.Bool("stream", false, "regenerate traces lazily per simulation cell instead of materializing them (O(1) trace memory; bit-identical results)")
	return f
}

// Validate enforces the shared flag invariants after flag.Parse, exiting
// with usage (status 2) on violation.
func (f *Flags) Validate() {
	if *f.Parallelism < 0 {
		Usagef(f.name, "-parallelism must be >= 0 (got %d)", *f.Parallelism)
	}
}

// Options assembles the sim.Options the flags describe. ctx, when non-nil,
// cancels the sweeps built from these options (see SignalContext).
func (f *Flags) Options(ctx context.Context) sim.Options {
	opts := sim.Options{
		Context:     ctx,
		Nodes:       *f.Nodes,
		Seed:        *f.Seed,
		Length:      *f.Length,
		Stream:      *f.Stream,
		Parallelism: *f.Parallelism,
	}
	if *f.Apps != "" {
		for _, a := range strings.Split(*f.Apps, ",") {
			opts.Apps = append(opts.Apps, strings.TrimSpace(a))
		}
	}
	return opts
}

// TraceApps opens the -trace file, if one was given, as a one-element app
// list for the *Apps sweep variants; it returns nil when -trace is unset.
// Every simulation cell re-opens and re-decodes the file, so the sweep's
// trace memory stays constant no matter how many accesses the file holds.
func (f *Flags) TraceApps() ([]*sim.App, error) {
	if *f.Trace == "" {
		return nil, nil
	}
	app, err := TraceApp(*f.Trace, *f.Nodes)
	if err != nil {
		return nil, err
	}
	return []*sim.App{app}, nil
}

// TraceApp wraps one binary trace file (legacy fixed-record or streaming
// .mtr format) as a sim.App: the usage-based placement comes from one
// streaming profiling pass, and each Open re-reads the file from the start.
func TraceApp(path string, nodes int) (*sim.App, error) {
	return sim.NewSourceApp(path, func() (trace.Source, error) {
		return trace.OpenFile(path)
	}, nodes)
}

// ProfileFlags holds the pprof flags every command shares (-cpuprofile,
// -memprofile). Register them with RegisterProfile before flag.Parse, then
// arrange for the Start result to run before exit:
//
//	prof := cliutil.RegisterProfile("migsim")
//	flag.Parse()
//	defer prof.Start()()
//
// The profiles feed `go tool pprof` (see `make profile`).
type ProfileFlags struct {
	name string
	cpu  *string
	mem  *string
}

// RegisterProfile declares the shared profiling flags on the default flag
// set.
func RegisterProfile(name string) *ProfileFlags {
	p := &ProfileFlags{name: name}
	p.cpu = flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	p.mem = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	return p
}

// profileStop flushes any in-flight profiles; Fatal runs it so a failed run
// still writes whatever the CPU profiler collected.
var profileStop func()

// Start begins CPU profiling when -cpuprofile was given and returns the
// stop function, which also writes the heap profile when -memprofile was
// given. The stop function is idempotent; flush failures are reported to
// stderr rather than exiting (the run's real output already happened).
func (p *ProfileFlags) Start() func() {
	var cpuFile *os.File
	if *p.cpu != "" {
		f, err := os.Create(*p.cpu)
		if err != nil {
			Fatal(p.name, "-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			Fatal(p.name, "-cpuprofile: %v", err)
		}
		cpuFile = f
	}
	var once sync.Once
	stop := func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				if err := cpuFile.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "%s: -cpuprofile: %v\n", p.name, err)
				}
			}
			if *p.mem == "" {
				return
			}
			f, err := os.Create(*p.mem)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: -memprofile: %v\n", p.name, err)
				return
			}
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "%s: -memprofile: %v\n", p.name, err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "%s: -memprofile: %v\n", p.name, err)
			}
		})
	}
	profileStop = stop
	return stop
}

// SignalContext returns a context cancelled on SIGINT or SIGTERM, so ^C
// aborts an in-flight sweep promptly and cleanly (the sweep returns
// ctx.Err()). A second signal kills the process as usual.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// Fatal prints "name: message" to stderr and exits with status 1, flushing
// any in-flight profiles first.
func Fatal(name, format string, args ...any) {
	fmt.Fprintf(os.Stderr, name+": "+format+"\n", args...)
	if profileStop != nil {
		profileStop()
	}
	os.Exit(1)
}

// Usagef prints "name: message" and the flag usage, then exits with
// status 2 (a command-line error rather than a runtime failure).
func Usagef(name, format string, args ...any) {
	fmt.Fprintf(os.Stderr, name+": "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

// PolicyArg resolves a -policy flag value, exiting with usage on an
// unknown name.
func PolicyArg(name, policy string) core.Policy {
	pol, err := core.PolicyByName(policy)
	if err != nil {
		Usagef(name, "%v", err)
	}
	return pol
}

// BusProtocolByName resolves a snooping protocol variant by its name.
func BusProtocolByName(name string) (snoop.Protocol, error) {
	all := []snoop.Protocol{snoop.MESI, snoop.Adaptive, snoop.AdaptiveMigrateFirst,
		snoop.Symmetry, snoop.Berkeley, snoop.UpdateOnce}
	for _, p := range all {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown bus protocol %q", name)
}

// ParseCaches parses a comma-separated list of per-node cache sizes in
// bytes ("65536,1048576").
func ParseCaches(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var sizes []int
	for _, c := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(c))
		if err != nil {
			return nil, fmt.Errorf("bad cache size %q", c)
		}
		sizes = append(sizes, n)
	}
	return sizes, nil
}

// ParseFilter builds an event filter from the comma-separated -kinds,
// -blocks, and -filter-nodes flag values (empty = no restriction).
func ParseFilter(kinds, blocks, nodes string) (obs.Filter, error) {
	var f obs.Filter
	if kinds != "" {
		for _, name := range strings.Split(kinds, ",") {
			k, err := obs.ParseKind(strings.TrimSpace(name))
			if err != nil {
				return f, err
			}
			f.Kinds = f.Kinds.Add(k)
		}
	}
	if blocks != "" {
		f.Blocks = make(map[memory.BlockID]bool)
		for _, s := range strings.Split(blocks, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
			if err != nil {
				return f, fmt.Errorf("bad block ID %q", s)
			}
			f.Blocks[memory.BlockID(v)] = true
		}
	}
	if nodes != "" {
		f.Nodes = make(map[memory.NodeID]bool)
		for _, s := range strings.Split(nodes, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 32)
			if err != nil {
				return f, fmt.Errorf("bad node ID %q", s)
			}
			f.Nodes[memory.NodeID(v)] = true
		}
	}
	return f, nil
}
