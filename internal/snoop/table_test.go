package snoop

import (
	"testing"

	"migratory/internal/cache"
)

// TestSnoopTablesMatchFigure2 pins every entry of the precomputed snoop
// response tables to a hand-written transcription of the Figure 2 state
// machine (plus the §5 related-protocol variants), independent of the
// builder's control flow. The exhaustive protocol tests exercise the same
// transitions dynamically; this test catches a table that is wrong in a
// state the generated workloads never reach.
func TestSnoopTablesMatchFigure2(t *testing.T) {
	protocols := []Protocol{MESI, Adaptive, AdaptiveMigrateFirst, Symmetry, Berkeley, UpdateOnce}
	for _, p := range protocols {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			tbl := buildSnoopTables(p)

			// A read-miss downgrade lands in Shared-2 only when the protocol
			// tracks the two-copy distinction.
			down := StateS
			if p.Adaptive() {
				down = StateS2
			}
			rm := map[cache.State]snoopEntry{
				StateE:  {next: down, flags: actShared},
				StateS2: {next: StateS, flags: actShared},
				StateS:  {next: StateS, flags: actShared},
				StateO:  {next: StateO, flags: actShared},
				StateMC: {next: StateS2, flags: actShared | actTakeEvidence | actDeclassify},
				StateMD: {flags: actInvalidate | actMig | actTakeEvidence},
			}
			switch p {
			case Symmetry:
				rm[StateD] = snoopEntry{flags: actInvalidate | actMig}
			case Berkeley:
				rm[StateD] = snoopEntry{next: StateO, flags: actShared}
			default:
				rm[StateD] = snoopEntry{next: down, flags: actShared | actCleanLine}
			}

			wmSingle := map[cache.State]snoopEntry{
				StateE:  {flags: actInvalidate},
				StateS2: {flags: actInvalidate},
				StateS:  {flags: actInvalidate},
				StateD:  {flags: actInvalidate},
				StateO:  {flags: actInvalidate},
				StateMC: {flags: actInvalidate | actDeclassify},
				StateMD: {flags: actInvalidate | actMig | actTakeEvidence},
			}
			if p.Adaptive() {
				// §2.1: a write miss invalidating the single cached copy of a
				// block is migratory evidence.
				wmSingle[StateE] = snoopEntry{flags: actInvalidate | actBumpEvidence}
				wmSingle[StateD] = snoopEntry{flags: actInvalidate | actBumpEvidence}
			}
			wmMulti := map[cache.State]snoopEntry{
				StateE:  {flags: actInvalidate},
				StateS2: {flags: actInvalidate},
				StateS:  {flags: actInvalidate},
				StateD:  {flags: actInvalidate},
				StateO:  {flags: actInvalidate},
				StateMC: {flags: actInvalidate | actDeclassify},
				StateMD: {flags: actInvalidate | actMig | actTakeEvidence},
			}

			inv := map[cache.State]snoopEntry{
				StateE:  {flags: actInvalidate},
				StateS2: {flags: actInvalidate},
				StateS:  {flags: actInvalidate},
				StateD:  {flags: actInvalidate},
				StateO:  {flags: actInvalidate},
				StateMC: {flags: actInvalidate},
				StateMD: {flags: actInvalidate},
			}
			if p.Adaptive() {
				// An invalidation reaching the older (S2) copy of a two-copy
				// block is the defining migratory detection event.
				inv[StateS2] = snoopEntry{flags: actInvalidate | actBumpEvidence}
			}

			check := func(name string, got *[StateO + 1]snoopEntry, want map[cache.State]snoopEntry) {
				t.Helper()
				for st := StateE; st <= StateO; st++ {
					if got[st] != want[st] {
						t.Errorf("%s[%s] = %+v, want %+v", name, StateName(st), got[st], want[st])
					}
				}
			}
			check("rm", &tbl.rm, rm)
			check("wmSingle", &tbl.wmSingle, wmSingle)
			check("wmMulti", &tbl.wmMulti, wmMulti)
			check("inv", &tbl.inv, inv)
		})
	}
}
