package snoop

import (
	"testing"

	"migratory/internal/memory"
	"migratory/internal/trace"
)

// TestUpdateOnceMigrationTakesThreeOps reproduces §5's criticism of the
// Alpha-style hybrid protocol: "it can take as many as three inter-cache
// operations to migrate a block": the read miss, a first write that
// updates the old copy, and a second write that finally invalidates it.
func TestUpdateOnceMigrationTakesThreeOps(t *testing.T) {
	s := newSys(t, UpdateOnce)
	run(t, s, []trace.Access{
		acc(1, trace.Write, 0), // miss -> D at 1
		acc(1, trace.Write, 0), // silent
	})
	base := s.Counts()
	// P2 migrates the block with a read followed by two word writes.
	run(t, s, []trace.Access{
		acc(2, trace.Read, 0),  // replicate: 1:S, 2:S       (op 1)
		acc(2, trace.Write, 0), // update, P1's copy survives (op 2)
		acc(2, trace.Write, 4), // update, P1 self-invalidates, P2 -> E (op 3)
	})
	d := s.Counts()
	if d.ReadMiss-base.ReadMiss != 1 || d.Update-base.Update != 2 {
		t.Fatalf("counts delta: %+v -> %+v", base, d)
	}
	if state(s, 1) != -1 {
		t.Fatalf("old copy survived: %v", s.States(0))
	}
	if state(s, 2) != int(StateE) {
		t.Fatalf("writer state = %v; want E", s.States(0))
	}
	// Further writes are silent (E -> D).
	before := s.Counts()
	run(t, s, []trace.Access{acc(2, trace.Write, 8)})
	if s.Counts() != before {
		t.Fatal("post-promotion write used the bus")
	}
	if state(s, 2) != int(StateD) {
		t.Fatalf("state = %v", s.States(0))
	}
}

// TestUpdateOnceLocalAccessRenewsInterest: a copy that keeps being read
// locally is never self-invalidated — the update stream keeps it fresh.
func TestUpdateOnceLocalAccessRenewsInterest(t *testing.T) {
	s := newSys(t, UpdateOnce)
	run(t, s, []trace.Access{
		acc(1, trace.Write, 0),
		acc(2, trace.Read, 0), // 1:S 2:S
	})
	// Producer/consumer: node 1 writes, node 2 reads, repeatedly. Node 2's
	// copy must survive the whole run (this is where update protocols
	// shine), and every read must see the latest value.
	for i := 0; i < 10; i++ {
		run(t, s, []trace.Access{
			acc(1, trace.Write, 0),
			acc(2, trace.Read, 0),
		})
	}
	if state(s, 2) != int(StateS) {
		t.Fatalf("consumer copy lost: %v", s.States(0))
	}
	// And the consumer never took another read miss.
	if got := s.Counts().ReadMiss; got != 1 {
		t.Fatalf("read misses = %d; want 1", got)
	}
}

// TestUpdateOncePenalizesMigratoryVersusAdaptive: the §5 quantitative
// point — on migratory data the hybrid needs ~3 bus operations per
// migration where the adaptive protocol needs 1.
func TestUpdateOncePenalizesMigratoryVersusAdaptive(t *testing.T) {
	mk := func() []trace.Access {
		var accs []trace.Access
		for round := 0; round < 50; round++ {
			for n := memory.NodeID(0); n < 4; n++ {
				accs = append(accs,
					acc(n, trace.Read, 0),
					acc(n, trace.Write, 0),
					acc(n, trace.Write, 4),
				)
			}
		}
		return accs
	}
	uo := newSys(t, UpdateOnce)
	adp := newSys(t, Adaptive)
	run(t, uo, mk())
	run(t, adp, mk())
	u, a := uo.Counts().Total(), adp.Counts().Total()
	if u < 2*a {
		t.Fatalf("update-once %d vs adaptive %d: expected ~3x penalty", u, a)
	}
	if float64(u) > 3.5*float64(a) {
		t.Fatalf("update-once %d vs adaptive %d: penalty implausibly large", u, a)
	}
}

// TestUpdateOnceValidatesAndNames: plumbing.
func TestUpdateOnceValidatesAndNames(t *testing.T) {
	if UpdateOnce.String() != "update-once" {
		t.Fatalf("name = %q", UpdateOnce)
	}
	if UpdateOnce.Adaptive() {
		t.Fatal("update-once is not adaptive")
	}
	cfg := Config{Nodes: 4, Geometry: geom, Protocol: UpdateOnce}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if (Config{Nodes: 4, Geometry: geom, Protocol: Protocol(10)}).Validate() == nil {
		t.Fatal("out-of-range protocol accepted")
	}
}

// TestUpdateCountsInCostModels: updates appear in both cost models as
// single-unit operations.
func TestUpdateCountsInCostModels(t *testing.T) {
	c := Counts{ReadMiss: 2, Update: 5}
	if c.Total() != 7 {
		t.Fatalf("Total = %d", c.Total())
	}
	if c.Model2(false) != 2*2+5 {
		t.Fatalf("Model2 = %d", c.Model2(false))
	}
}

// TestUpdateOnceThreeSharers: one update reaches every copy; stragglers
// that keep reading stay, idle ones fall away independently.
func TestUpdateOnceThreeSharers(t *testing.T) {
	s := newSys(t, UpdateOnce)
	run(t, s, []trace.Access{
		acc(1, trace.Write, 0),
		acc(2, trace.Read, 0),
		acc(3, trace.Read, 0), // 1:S 2:S 3:S
	})
	// Node 1 writes twice; node 2 reads between them, node 3 does not.
	run(t, s, []trace.Access{
		acc(1, trace.Write, 0),
		acc(2, trace.Read, 0),
		acc(1, trace.Write, 4),
	})
	if state(s, 2) != int(StateS) {
		t.Fatalf("active reader lost its copy: %v", s.States(0))
	}
	if state(s, 3) != -1 {
		t.Fatalf("idle copy survived two updates: %v", s.States(0))
	}
	if got := s.Counts().Update; got != 2 {
		t.Fatalf("updates = %d", got)
	}
}

// --- Berkeley Ownership protocol (paper reference [12]) ---

// TestBerkeleyOwnershipBasics: reads of a dirty block are served
// cache-to-cache; the supplier keeps the dirty master copy (state O) and
// memory stays stale until the owner is replaced.
func TestBerkeleyOwnershipBasics(t *testing.T) {
	s := newSys(t, Berkeley)
	run(t, s, []trace.Access{
		acc(1, trace.Read, 0), // no E state: plain S
	})
	if state(s, 1) != int(StateS) {
		t.Fatalf("states = %v", s.States(0))
	}
	run(t, s, []trace.Access{
		acc(1, trace.Write, 0), // Bir even though alone -> D
	})
	if state(s, 1) != int(StateD) || s.Counts().Invalidation != 1 {
		t.Fatalf("states = %v counts = %+v", s.States(0), s.Counts())
	}
	run(t, s, []trace.Access{acc(2, trace.Read, 0)})
	if state(s, 1) != int(StateO) || state(s, 2) != int(StateS) {
		t.Fatalf("states = %v", s.States(0))
	}
	// More readers: the owner keeps supplying.
	run(t, s, []trace.Access{acc(3, trace.Read, 0)})
	if state(s, 1) != int(StateO) || state(s, 3) != int(StateS) {
		t.Fatalf("states = %v", s.States(0))
	}
	// Every reader sees the owner's value (coherence check is on).
}

// TestBerkeleyOwnerEvictionWritesBack: replacing an O line flushes the
// only up-to-date copy.
func TestBerkeleyOwnerEvictionWritesBack(t *testing.T) {
	s, err := New(Config{
		Nodes: 4, Geometry: geom, CacheBytes: 32, Assoc: 2,
		Protocol: Berkeley, CheckCoherence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	run(t, s, []trace.Access{
		acc(1, trace.Read, 0),
		acc(1, trace.Write, 0), // D at 1
		acc(2, trace.Read, 0),  // 1:O 2:S
		acc(1, trace.Read, 16),
		acc(1, trace.Read, 32), // evicts the O line
	})
	if s.Counts().WriteBack != 1 {
		t.Fatalf("counts = %+v", s.Counts())
	}
	// Node 2's clean copy remains readable with the latest value.
	run(t, s, []trace.Access{acc(2, trace.Read, 0)})
}

// TestBerkeleyWriteToOwnedLine: the owner upgrading invalidates the
// readers and returns to D.
func TestBerkeleyWriteToOwnedLine(t *testing.T) {
	s := newSys(t, Berkeley)
	run(t, s, []trace.Access{
		acc(1, trace.Read, 0),
		acc(1, trace.Write, 0),
		acc(2, trace.Read, 0),  // 1:O 2:S
		acc(1, trace.Write, 0), // owner writes again
	})
	if state(s, 1) != int(StateD) || state(s, 2) != -1 {
		t.Fatalf("states = %v", s.States(0))
	}
}

// TestBerkeleySavesWriteBacksButNotMigrations: versus MESI, Berkeley saves
// the memory-update traffic of read-after-write sharing, but a migratory
// pattern still costs two transactions per migration — only the adaptive
// protocol halves it.
func TestBerkeleySavesWriteBacksButNotMigrations(t *testing.T) {
	mkTrace := func() []trace.Access {
		var accs []trace.Access
		for round := 0; round < 50; round++ {
			for n := memory.NodeID(0); n < 4; n++ {
				accs = append(accs, acc(n, trace.Read, 0), acc(n, trace.Write, 0))
			}
		}
		return accs
	}
	mesi := newSys(t, MESI)
	brk := newSys(t, Berkeley)
	adp := newSys(t, Adaptive)
	run(t, mesi, mkTrace())
	run(t, brk, mkTrace())
	run(t, adp, mkTrace())
	m, bk, a := mesi.Counts(), brk.Counts(), adp.Counts()
	// Berkeley ~= MESI on migratory data (replicate + invalidate per turn).
	diff := int64(bk.Total()) - int64(m.Total())
	if diff > 8 || diff < -8 {
		t.Fatalf("berkeley %d vs mesi %d on migratory data", bk.Total(), m.Total())
	}
	// The adaptive protocol halves both.
	if a.Total()*2 > bk.Total()+16 {
		t.Fatalf("adaptive %d not ~half of berkeley %d", a.Total(), bk.Total())
	}
}

// TestBerkeleyProtocolPlumbing: naming and validation.
func TestBerkeleyProtocolPlumbing(t *testing.T) {
	if Berkeley.String() != "berkeley" || Berkeley.Adaptive() {
		t.Fatalf("berkeley plumbing: %q %v", Berkeley, Berkeley.Adaptive())
	}
	if StateName(StateO) != "O" {
		t.Fatalf("StateName(O) = %q", StateName(StateO))
	}
	cfg := Config{Nodes: 4, Geometry: geom, Protocol: Berkeley}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}
