package snoop

import (
	"fmt"
	"strings"
	"testing"

	"migratory/internal/memory"
	"migratory/internal/trace"
)

// TestExhaustiveStateSpace explores every reachable protocol state for one
// block shared by three processors, breadth-first with deduplication: from
// each reachable state it applies all six possible processor events and
// verifies the invariants. It also demands that the state space *closes*
// (no new states appear before the depth bound) — an unbounded counter or
// a state leak would fail here.
func TestExhaustiveStateSpace(t *testing.T) {
	type variant struct {
		p Protocol
		h int
	}
	variants := []variant{
		{MESI, 1}, {Adaptive, 1}, {Adaptive, 2}, {Adaptive, 3},
		{AdaptiveMigrateFirst, 1}, {Symmetry, 1}, {Berkeley, 1}, {UpdateOnce, 1},
	}
	for _, v := range variants {
		v := v
		t.Run(fmt.Sprintf("%s-h%d", v.p, v.h), func(t *testing.T) {
			explored := exploreSnoop(t, v.p, v.h)
			if explored < 4 {
				t.Fatalf("only %d states explored", explored)
			}
			t.Logf("%s h%d: %d reachable states", v.p, v.h, explored)
		})
	}
}

// snoopSignature captures everything transition-relevant about one block's
// global state: per-node (state, dirty, aux). Write-version counters are
// excluded — they grow without bound and do not influence transitions.
func snoopSignature(s *System, nodes int) string {
	var b strings.Builder
	for i := 0; i < nodes; i++ {
		line := s.caches[i].Peek(0)
		if line == nil {
			b.WriteString("- ")
			continue
		}
		fmt.Fprintf(&b, "%s/%v/%d ", StateName(line.State), line.Dirty, line.Aux)
	}
	return b.String()
}

func exploreSnoop(t *testing.T, p Protocol, h int) int {
	t.Helper()
	const nodes = 3
	var events []trace.Access
	for n := memory.NodeID(0); n < nodes; n++ {
		events = append(events,
			trace.Access{Node: n, Kind: trace.Read, Addr: 0},
			trace.Access{Node: n, Kind: trace.Write, Addr: 0},
		)
	}
	replay := func(path []trace.Access) *System {
		s, err := New(Config{
			Nodes: nodes, Geometry: geom, Protocol: p, Hysteresis: h,
			CheckCoherence: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, a := range path {
			if err := s.Access(a); err != nil {
				t.Fatalf("replaying %v at %d: %v", path, i, err)
			}
		}
		return s
	}

	seen := map[string][]trace.Access{}
	start := replay(nil)
	frontier := []string{snoopSignature(start, nodes)}
	seen[frontier[0]] = nil

	const depthBound = 40
	for depth := 0; depth < depthBound && len(frontier) > 0; depth++ {
		var next []string
		for _, sig := range frontier {
			path := seen[sig]
			for _, ev := range events {
				s := replay(append(append([]trace.Access{}, path...), ev))
				if err := s.CheckInvariants(); err != nil {
					t.Fatalf("state %q + %v: %v", sig, ev, err)
				}
				ns := snoopSignature(s, nodes)
				if _, ok := seen[ns]; ok {
					continue
				}
				seen[ns] = append(append([]trace.Access{}, path...), ev)
				next = append(next, ns)
			}
		}
		frontier = next
	}
	if len(frontier) != 0 {
		t.Fatalf("state space did not close within %d steps: %d states and growing", depthBound, len(seen))
	}
	return len(seen)
}
