// Package snoop implements the paper's bus-based protocols (§2.1, Figures 1
// and 2): the conventional MESI baseline, the adaptive extension with the
// Shared-2, Migratory-Clean, and Migratory-Dirty states, the
// migrate-on-read-miss initial-policy variant, and — from the related-work
// discussion (§5) — a Sequent Symmetry (model B) style protocol that
// non-adaptively migrates every modified block on a read miss.
//
// All caches snoop a single logically atomic bus. The simulator counts bus
// transactions; §4.3's two cost models are provided on the resulting
// Counts.
package snoop

import (
	"context"
	"errors"
	"fmt"
	"io"

	"migratory/internal/cache"
	"migratory/internal/memory"
	"migratory/internal/obs"
	"migratory/internal/telemetry"
	"migratory/internal/trace"
)

// Line states. Invalid is represented by absence from the cache.
const (
	// StateE: Exclusive — the only cached copy; memory is up to date.
	StateE cache.State = iota
	// StateS2: Shared-2 — one of at most two cached copies, and the older
	// one; memory is up to date.
	StateS2
	// StateS: Shared — one of possibly many cached copies.
	StateS
	// StateD: Dirty — the only cached copy; memory is stale. (The paper
	// renames MESI's "Modified" to free up M for "Migratory".)
	StateD
	// StateMC: Migratory-Clean — the only cached copy of a block classified
	// migratory, not yet modified at this node.
	StateMC
	// StateMD: Migratory-Dirty — the only cached copy of a migratory
	// block, modified at this node.
	StateMD
	// StateO: Owned non-exclusively (Berkeley protocol only) — this cache
	// holds the dirty master copy while other caches hold clean Shared
	// copies; memory is stale.
	StateO
)

// StateName renders a line state.
func StateName(s cache.State) string {
	switch s {
	case StateE:
		return "E"
	case StateS2:
		return "S2"
	case StateS:
		return "S"
	case StateD:
		return "D"
	case StateMC:
		return "MC"
	case StateMD:
		return "MD"
	case StateO:
		return "O"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Protocol selects the bus protocol variant.
type Protocol uint8

const (
	// MESI is the conventional write-invalidate baseline (Papamarcos &
	// Patel), with replicate-on-read-miss for every block.
	MESI Protocol = iota
	// Adaptive is the paper's protocol exactly as Figure 2 describes it:
	// replicate-on-read-miss initially, reclassification with no
	// hysteresis (Hysteresis 1; larger values add the counter field the
	// paper sketches).
	Adaptive
	// AdaptiveMigrateFirst is the §2.1 variation that uses
	// migrate-on-read-miss as the initial policy, making the Exclusive
	// state dead.
	AdaptiveMigrateFirst
	// Symmetry is the Sequent Symmetry model B policy (§5): every modified
	// block migrates on a read miss, unconditionally and forever.
	Symmetry
	// Berkeley is the Berkeley Ownership protocol (the paper's reference
	// [12]): a read miss to a dirty block is served cache-to-cache and the
	// supplier retains ownership (state O) without updating memory, saving
	// write-backs for read-after-write sharing — but a migration still
	// takes the same two transactions as MESI, which is why the paper's
	// sophisticated variant adds an explicit Read-With-Ownership
	// instruction (modeled here by the directory engine's MigratoryOracle).
	Berkeley
	// UpdateOnce is a competitive hybrid write-update/write-invalidate
	// protocol in the style the paper attributes to the DEC Alpha systems
	// (§5): a write hit to a shared block broadcasts an update; a copy that
	// receives two updates without an intervening local access invalidates
	// itself; a writer whose update finds no remaining sharers promotes to
	// Dirty. Migrating a block therefore takes the three inter-cache
	// operations §5 describes (read miss, first update, second update),
	// versus one for the adaptive protocol.
	UpdateOnce
)

// String names the protocol.
func (p Protocol) String() string {
	switch p {
	case MESI:
		return "mesi"
	case Adaptive:
		return "adaptive"
	case AdaptiveMigrateFirst:
		return "adaptive-migrate-first"
	case Symmetry:
		return "symmetry"
	case Berkeley:
		return "berkeley"
	case UpdateOnce:
		return "update-once"
	default:
		return fmt.Sprintf("Protocol(%d)", uint8(p))
	}
}

// Adaptive reports whether p uses the migratory states.
func (p Protocol) Adaptive() bool { return p == Adaptive || p == AdaptiveMigrateFirst }

// Counts tallies bus transactions by type.
type Counts struct {
	ReadMiss     uint64 // Brmr transactions
	WriteMiss    uint64 // Bwmr transactions
	Invalidation uint64 // Bir transactions
	WriteBack    uint64 // replacement write-backs of dirty lines
	Update       uint64 // update broadcasts (UpdateOnce protocol only)
}

// Total returns the §4.3 first cost model: every transaction costs one
// unit.
func (c Counts) Total() uint64 {
	return c.ReadMiss + c.WriteMiss + c.Invalidation + c.WriteBack + c.Update
}

// Model2 returns the §4.3 second cost model: operations that require
// replies (misses, and invalidations under the adaptive protocols, which
// must wait for the Migratory response) cost two units; write-backs,
// updates, and conventional invalidations cost one.
func (c Counts) Model2(adaptive bool) uint64 {
	cost := 2*(c.ReadMiss+c.WriteMiss) + c.WriteBack + c.Update
	if adaptive {
		cost += 2 * c.Invalidation
	} else {
		cost += c.Invalidation
	}
	return cost
}

// Config describes a bus-based machine.
type Config struct {
	// Nodes is the processor count.
	Nodes int
	// Geometry fixes the block size (pages are irrelevant on a bus but the
	// geometry type carries both).
	Geometry memory.Geometry
	// CacheBytes per node; 0 = infinite.
	CacheBytes int
	// Assoc defaults to 4.
	Assoc int
	// Protocol selects the variant.
	Protocol Protocol
	// Hysteresis is the number of successive migratory events needed to
	// classify a block, for the adaptive protocols; 0 defaults to 1 (the
	// published no-hysteresis protocol).
	Hysteresis int
	// CheckCoherence verifies reads observe the latest write.
	CheckCoherence bool
	// Probe, when non-nil, receives a typed event for every coherence
	// action (internal/obs). Bus transactions are reported as KindMessage
	// events with Short=1. nil (the default) costs nothing beyond a branch
	// at each emission site.
	Probe obs.Probe
	// Stats, when non-nil, receives batch-granularity run telemetry
	// (internal/telemetry): accesses processed, batches delivered, and
	// migrations. Pushed once per DefaultBatchSize chunk, never per access,
	// so nil costs a single pointer test per batch.
	Stats *telemetry.RunStats
	// Decoders is the trace-decode worker count for sharded runs fed by an
	// indexed (MTR3) source: segments are decoded and routed concurrently
	// by this many goroutines instead of one producer (trace.DemuxParallel).
	// 0 means the source's configured width; 1 forces the single-producer
	// path. Results are bit-identical either way.
	Decoders int

	// shards/shardIndex mark this System as one slice of a set-sharded
	// run (see NewSharded); zero for a whole-machine System.
	shards     int
	shardIndex int
}

func (c Config) withDefaults() Config {
	if c.Assoc == 0 {
		c.Assoc = 4
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 1
	}
	return c
}

// Validate checks the configuration.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Nodes <= 0 || c.Nodes > memory.MaxNodes {
		return fmt.Errorf("snoop: node count %d out of range [1,%d]", c.Nodes, memory.MaxNodes)
	}
	if c.Protocol > UpdateOnce {
		return fmt.Errorf("snoop: unknown protocol %d", c.Protocol)
	}
	if c.Hysteresis < 1 || c.Hysteresis > 250 {
		return fmt.Errorf("snoop: hysteresis %d out of range", c.Hysteresis)
	}
	if !c.Protocol.Adaptive() && c.Hysteresis != 1 {
		return fmt.Errorf("snoop: hysteresis only applies to adaptive protocols")
	}
	cc := cache.Config{
		SizeBytes: c.CacheBytes, BlockSize: c.Geometry.BlockSize(), Assoc: c.Assoc,
		Shards: c.shards, ShardIndex: c.shardIndex,
	}
	return cc.Validate()
}

// System simulates one bus-based machine.
type System struct {
	cfg    Config
	caches []*cache.Cache
	counts Counts
	// holders tracks which caches hold each block, mirroring the caches
	// exactly. A real bus broadcasts and every cache snoops; the simulator
	// used to model that with an O(nodes) Peek scan per transaction, which
	// dominated the per-access cost. The holder set restricts each scan to
	// the caches that can actually respond, with identical outcomes (a
	// non-holder's snoop is a no-op).
	holders  memory.BlockMap[memory.NodeSet]
	versions *memory.BlockMap[uint64]
	// tbl holds the protocol's precomputed snoop-response tables (table.go).
	tbl *snoopTables

	// Extra visibility counters.
	readHits, writeHits uint64
	migrations          uint64 // read misses served by an MD migration

	// probe mirrors cfg.Probe; cur is the access being serviced and step
	// its index in the global trace interleaving (both maintained only when
	// probe is non-nil). Sequentially step is just accesses-1; in a
	// set-sharded run it comes from the demux stage, so events carry the
	// same step a sequential run would stamp.
	probe    obs.Probe
	accesses uint64
	cur      trace.Access
	step     uint64

	// stats mirrors cfg.Stats; statMig remembers the migration count
	// already pushed to it, so noteBatch adds a delta without the hot path
	// ever touching an atomic.
	stats   *telemetry.RunStats
	statMig uint64
}

// emit stamps and delivers one event; callers guard with s.probe != nil.
func (s *System) emit(e obs.Event) {
	e.Step = s.step
	e.Variant = s.cfg.Protocol.String()
	e.Access = s.cur
	s.probe.OnEvent(e)
}

// emitBus reports one bus transaction as a message event (Short=1: the bus
// has no short/data distinction; §4.3's cost models weight Counts instead).
func (s *System) emitBus(n memory.NodeID, b memory.BlockID, op string) {
	s.emit(obs.Event{Kind: obs.KindMessage, Node: n, Block: b, Op: op, Short: 1})
}

// emitEvidence reports a hysteresis-counter bump, as a classification flip
// when it crossed the threshold.
func (s *System) emitEvidence(n memory.NodeID, b memory.BlockID, evidence uint8, classified bool) {
	k := obs.KindEvidence
	if classified {
		k = obs.KindClassify
	}
	s.emit(obs.Event{Kind: k, Node: n, Block: b, Evidence: int(evidence), Migratory: classified})
}

// New builds a System.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	s := &System{cfg: cfg, caches: make([]*cache.Cache, cfg.Nodes), probe: cfg.Probe, stats: cfg.Stats, tbl: buildSnoopTables(cfg.Protocol)}
	for i := range s.caches {
		s.caches[i] = cache.New(cache.Config{
			SizeBytes:  cfg.CacheBytes,
			BlockSize:  cfg.Geometry.BlockSize(),
			Assoc:      cfg.Assoc,
			Shards:     cfg.shards,
			ShardIndex: cfg.shardIndex,
		})
	}
	if cfg.CheckCoherence {
		s.versions = new(memory.BlockMap[uint64])
	}
	return s, nil
}

// holderSet returns the set of caches currently holding block b.
func (s *System) holderSet(b memory.BlockID) memory.NodeSet {
	if p := s.holders.Get(b); p != nil {
		return *p
	}
	return 0
}

func (s *System) addHolder(b memory.BlockID, n memory.NodeID) {
	p, _ := s.holders.GetOrCreate(b)
	*p = p.Add(n)
}

func (s *System) dropHolder(b memory.BlockID, n memory.NodeID) {
	if p := s.holders.Get(b); p != nil {
		*p = p.Remove(n)
	}
}

// invalidate removes block b from node n's cache, keeping holder tracking
// in sync.
func (s *System) invalidate(n memory.NodeID, b memory.BlockID) {
	s.caches[n].Invalidate(b)
	s.dropHolder(b, n)
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Counts returns the accumulated bus transaction counts.
func (s *System) Counts() Counts { return s.counts }

// Accesses returns how many trace accesses the system has simulated.
func (s *System) Accesses() uint64 { return s.accesses }

// Migrations returns how many read misses were served by migrating an MD
// block.
func (s *System) Migrations() uint64 { return s.migrations }

// Hits returns read-hit and write-hit counts that needed no bus traffic.
func (s *System) Hits() (read, write uint64) { return s.readHits, s.writeHits }

// cancelCheckInterval is how many accesses run between context checks in
// RunSource — one check per trace.DefaultBatchSize chunk (see
// directory.RunSource for the tradeoff).
const cancelCheckInterval = trace.DefaultBatchSize

// Run feeds a whole trace through the system.
func (s *System) Run(accesses []trace.Access) error {
	return s.RunSource(nil, trace.NewSliceSource(accesses))
}

// RunSource feeds a streamed trace through the system, holding O(1) trace
// memory. Accesses are pulled in DefaultBatchSize chunks (through the
// source's own NextBatch when it has one), so the per-access path pays no
// interface call and no cancellation check. A nil ctx is treated as
// context.Background(); on cancellation RunSource returns ctx.Err() within
// cancelCheckInterval accesses.
func (s *System) RunSource(ctx context.Context, src trace.Source) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// Fast path: slice-backed sources chunk the underlying slice directly
	// instead of copying through a batch buffer.
	if ss, ok := src.(*trace.SliceSource); ok {
		rest := ss.Rest()
		for off := 0; ; off += cancelCheckInterval {
			if err := ctx.Err(); err != nil {
				return err
			}
			if off >= len(rest) {
				return nil
			}
			end := off + cancelCheckInterval
			if end > len(rest) {
				end = len(rest)
			}
			if err := s.runBatch(rest[off:end], off); err != nil {
				return err
			}
		}
	}
	buf := trace.GetBatch()
	defer trace.PutBatch(buf)
	off := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		n, err := trace.FillBatch(src, buf)
		if n > 0 {
			if berr := s.runBatch(buf[:n], off); berr != nil {
				return berr
			}
			off += n
		}
		if errors.Is(err, io.EOF) {
			return nil
		}
		if err != nil {
			return fmt.Errorf("snoop: trace source at access %d: %w", off, err)
		}
	}
}

// runBatch feeds one chunk of accesses through the system; the context
// check lives with the caller, outside the per-access loop.
func (s *System) runBatch(batch []trace.Access, base int) error {
	for i := range batch {
		if err := s.Access(batch[i]); err != nil {
			return fmt.Errorf("access %d (%v): %w", base+i, batch[i], err)
		}
	}
	s.noteBatch(len(batch))
	return nil
}

// noteBatch pushes one processed batch into the attached telemetry
// counters; migrations go in as a delta against what was last pushed.
func (s *System) noteBatch(n int) {
	st := s.stats
	if st == nil {
		return
	}
	st.Accesses.Add(uint64(n))
	st.Batches.Add(1)
	if m := s.migrations; m != s.statMig {
		st.Migrations.Add(m - s.statMig)
		s.statMig = m
	}
}

// Access applies one processor reference.
func (s *System) Access(a trace.Access) error {
	return s.accessAt(a, s.accesses)
}

// accessAt applies one processor reference, stamping any emitted events
// with the given global step index. Access passes the local access count;
// the sharded driver passes the demuxed global trace index.
func (s *System) accessAt(a trace.Access, step uint64) error {
	if int(a.Node) >= s.cfg.Nodes {
		return fmt.Errorf("snoop: node %d out of range (%d nodes)", a.Node, s.cfg.Nodes)
	}
	s.accesses++
	if s.probe != nil {
		s.cur = a
		s.step = step
	}
	b := s.cfg.Geometry.Block(a.Addr)
	line := s.caches[a.Node].Lookup(b)

	if a.Kind == trace.Read {
		if line != nil {
			s.readHits++
			if s.cfg.Protocol == UpdateOnce {
				// A local access renews this copy's interest: the
				// update-once self-invalidation counter resets.
				line.Aux = 0
			}
			if s.probe != nil {
				s.emit(obs.Event{Kind: obs.KindHit, Node: a.Node, Block: b})
			}
			return s.checkRead(b, line)
		}
		s.readMiss(a.Node, b)
		return nil
	}

	if line != nil {
		switch line.State {
		case StateD, StateMD:
			s.writeHits++
			if s.probe != nil {
				s.emit(obs.Event{Kind: obs.KindHit, Node: a.Node, Block: b})
			}
			s.write(b, line)
			return nil
		case StateE:
			// E -> D with no bus transaction (Figure 2).
			s.writeHits++
			line.State = StateD
			if s.probe != nil {
				s.emit(obs.Event{Kind: obs.KindHit, Node: a.Node, Block: b})
				s.emit(obs.Event{Kind: obs.KindState, Node: a.Node, Block: b, Old: "E", New: "D"})
			}
			s.write(b, line)
			return nil
		case StateMC:
			// MC -> MD with no bus transaction.
			s.writeHits++
			line.State = StateMD
			if s.probe != nil {
				s.emit(obs.Event{Kind: obs.KindHit, Node: a.Node, Block: b})
				s.emit(obs.Event{Kind: obs.KindState, Node: a.Node, Block: b, Old: "MC", New: "MD", Migratory: true})
			}
			s.write(b, line)
			return nil
		case StateS, StateS2, StateO:
			if s.cfg.Protocol == UpdateOnce {
				s.writeUpdate(a.Node, b, line)
				return nil
			}
			s.writeHitShared(a.Node, b, line)
			return nil
		default:
			return fmt.Errorf("snoop: impossible state %d", line.State)
		}
	}
	s.writeMiss(a.Node, b)
	return nil
}

// response is what the requester observes on the bus at the end of a
// transaction.
type response struct {
	shared   bool
	mig      bool
	evidence uint8 // propagated hysteresis counter (adaptive only)
}

// bumpEvidence advances the hysteresis counter, saturating at the
// classification threshold: the counter is a one-or-two-bit hardware field
// (§2.1), and values beyond the threshold carry no information.
func (s *System) bumpEvidence(e uint8) uint8 {
	if int(e) >= s.cfg.Hysteresis {
		return uint8(s.cfg.Hysteresis)
	}
	return e + 1
}

// readMiss runs a Brmr transaction.
func (s *System) readMiss(n memory.NodeID, b memory.BlockID) {
	s.counts.ReadMiss++
	if s.probe != nil {
		s.emitBus(n, b, "read miss")
	}
	var r response
	rm := &s.tbl.rm
	s.holderSet(b).Remove(n).ForEach(func(i memory.NodeID) {
		line := s.caches[i].Peek(b)
		old := line.State
		e := rm[line.State]
		if e.flags&actTakeEvidence != 0 {
			r.evidence = line.Aux
		}
		if e.flags&actInvalidate != 0 {
			// Migrate (MD, or D under Symmetry): invalidate here, hand the
			// block to the requester with Migratory asserted.
			if s.probe != nil {
				s.emit(obs.Event{Kind: obs.KindInvalidation, Node: i, Block: b, Old: StateName(old), New: "I"})
			}
			s.invalidate(i, b)
			r.mig = true
			return
		}
		if e.flags&actDeclassify != 0 && s.probe != nil {
			s.emit(obs.Event{Kind: obs.KindDeclassify, Node: n, Block: b, Evidence: int(line.Aux)})
		}
		r.shared = true
		if e.flags&actCleanLine != 0 {
			line.Dirty = false
		}
		line.State = e.next
		if s.probe != nil && line.State != old {
			s.emit(obs.Event{Kind: obs.KindState, Node: i, Block: b, Old: StateName(old), New: StateName(line.State)})
		}
	})

	var st cache.State
	var aux uint8
	switch {
	case r.mig && s.cfg.Protocol == Symmetry:
		// The requester inherits the dirty block.
		st = StateD
		s.migrations++
	case r.mig:
		st = StateMC
		aux = r.evidence
		s.migrations++
	case r.shared:
		st = StateS
	case s.cfg.Protocol == Berkeley:
		// Berkeley has no Exclusive state: unshared fills are UnOwned
		// (plain Shared), so the first write always costs an invalidation
		// transaction.
		st = StateS
	case s.cfg.Protocol == AdaptiveMigrateFirst:
		// Initial policy is migrate-on-read-miss: the Exclusive state is
		// dead and first fetches install Migratory-Clean.
		st = StateMC
		aux = uint8(s.cfg.Hysteresis) // born classified
	default:
		st = StateE
	}
	if s.probe != nil {
		if r.mig {
			s.emit(obs.Event{Kind: obs.KindMigration, Node: n, Block: b, Migratory: true})
		} else {
			s.emit(obs.Event{Kind: obs.KindReplication, Node: n, Block: b})
		}
		s.emit(obs.Event{Kind: obs.KindState, Node: n, Block: b, Old: "I", New: StateName(st),
			Migratory: st == StateMC || st == StateMD})
	}
	line := s.insert(n, b, st)
	line.Aux = aux
	if st == StateD {
		line.Dirty = true // Symmetry ownership transfer keeps memory stale
	}
	line.Version = s.version(b)
}

// writeMiss runs a Bwmr transaction.
func (s *System) writeMiss(n memory.NodeID, b memory.BlockID) {
	s.counts.WriteMiss++
	if s.probe != nil {
		s.emitBus(n, b, "write miss")
	}
	var r response
	others := s.holderSet(b).Remove(n)
	single := others.Len()
	wm := &s.tbl.wmMulti
	if single == 1 {
		wm = &s.tbl.wmSingle
	}
	others.ForEach(func(i memory.NodeID) {
		line := s.caches[i].Peek(b)
		old := StateName(line.State)
		e := wm[line.State]
		if e.flags&actBumpEvidence != 0 {
			// A write miss to a block with a single cached copy in E or D
			// is migratory evidence (the aggressive switch of §2.1).
			r.evidence = s.bumpEvidence(line.Aux)
			if int(r.evidence) >= s.cfg.Hysteresis {
				r.mig = true
			}
			if s.probe != nil {
				s.emitEvidence(n, b, r.evidence, r.mig)
			}
		}
		if e.flags&actMig != 0 {
			// The previous holder modified an MD copy: still migratory.
			r.mig = true
			r.evidence = line.Aux
		}
		if e.flags&actDeclassify != 0 && s.probe != nil {
			// Not modified before leaving: declassify (no Migratory
			// assertion); the requester installs a plain Dirty copy.
			s.emit(obs.Event{Kind: obs.KindDeclassify, Node: n, Block: b})
		}
		s.invalidate(i, b)
		if s.probe != nil {
			s.emit(obs.Event{Kind: obs.KindInvalidation, Node: i, Block: b, Old: old, New: "I"})
		}
	})
	st := StateD
	// The hysteresis evidence rides along with the dirty line even when it
	// is still below the classification threshold.
	aux := r.evidence
	switch {
	case r.mig:
		st = StateMD
	case single == 0 && s.cfg.Protocol == AdaptiveMigrateFirst:
		st = StateMD
		aux = uint8(s.cfg.Hysteresis)
	}
	if s.probe != nil {
		s.emit(obs.Event{Kind: obs.KindState, Node: n, Block: b, Old: "I", New: StateName(st), Migratory: st == StateMD})
	}
	line := s.insert(n, b, st)
	line.Aux = aux
	s.write(b, line)
}

// writeHitShared runs a Bir transaction for a write hit on an S or S2 line.
func (s *System) writeHitShared(n memory.NodeID, b memory.BlockID, line *cache.Line) {
	s.counts.Invalidation++
	if s.probe != nil {
		s.emitBus(n, b, "invalidation")
	}
	var r response
	inv := &s.tbl.inv
	s.holderSet(b).Remove(n).ForEach(func(i memory.NodeID) {
		other := s.caches[i].Peek(b)
		old := StateName(other.State)
		if inv[other.State].flags&actBumpEvidence != 0 {
			// The invalidator holds the newer copy of a two-copy block:
			// the defining migratory detection event.
			r.evidence = s.bumpEvidence(other.Aux)
			if int(r.evidence) >= s.cfg.Hysteresis {
				r.mig = true
			}
			if s.probe != nil {
				s.emitEvidence(n, b, r.evidence, r.mig)
			}
		}
		s.invalidate(i, b)
		if s.probe != nil {
			s.emit(obs.Event{Kind: obs.KindInvalidation, Node: i, Block: b, Old: old, New: "I"})
		}
	})
	oldSelf := StateName(line.State)
	if line.State == StateS2 || line.State == StateO {
		// The older copy writing is not the migratory pattern (S2+Cwh -> D
		// regardless of responses, Figure 2); a Berkeley owner likewise
		// just invalidates the other copies and continues as Dirty.
		line.State = StateD
		line.Aux = 0
	} else if r.mig {
		line.State = StateMD
		line.Aux = r.evidence
	} else {
		line.State = StateD
		line.Aux = r.evidence
	}
	if s.probe != nil {
		s.emit(obs.Event{Kind: obs.KindState, Node: n, Block: b, Old: oldSelf, New: StateName(line.State),
			Migratory: line.State == StateMD})
	}
	s.write(b, line)
}

// writeUpdate runs an update broadcast for the UpdateOnce protocol: every
// other copy applies the new value (memory snoops it too); a copy hit by a
// second consecutive update without an intervening local access invalidates
// itself; and a writer that finds no surviving sharers keeps the block
// exclusively (clean — memory is current).
func (s *System) writeUpdate(n memory.NodeID, b memory.BlockID, line *cache.Line) {
	s.counts.Update++
	if s.probe != nil {
		s.emitBus(n, b, "update")
	}
	s.write(b, line)
	line.Dirty = false // the broadcast updated memory
	line.Aux = 0
	sharers := false
	s.holderSet(b).Remove(n).ForEach(func(i memory.NodeID) {
		other := s.caches[i].Peek(b)
		other.Aux++
		if other.Aux >= 2 {
			if s.probe != nil {
				s.emit(obs.Event{Kind: obs.KindInvalidation, Node: i, Block: b, Old: StateName(other.State), New: "I"})
			}
			s.invalidate(i, b)
			return
		}
		other.Version = line.Version
		sharers = true
	})
	old := line.State
	if sharers {
		line.State = StateS
	} else {
		line.State = StateE
	}
	if s.probe != nil && line.State != old {
		s.emit(obs.Event{Kind: obs.KindState, Node: n, Block: b, Old: StateName(old), New: StateName(line.State)})
	}
}

// insert places the block, writing back a dirty victim.
func (s *System) insert(n memory.NodeID, b memory.BlockID, st cache.State) *cache.Line {
	line, victim := s.caches[n].Insert(b, st)
	s.addHolder(b, n)
	if victim != nil {
		s.dropHolder(victim.Block, n)
		if victim.Dirty {
			s.counts.WriteBack++
			if s.probe != nil {
				s.emit(obs.Event{Kind: obs.KindWriteBack, Node: n, Block: victim.Block, Old: StateName(victim.State), New: "I"})
				s.emitBus(n, victim.Block, "write back")
			}
		} else if s.probe != nil {
			// Clean drops are silent on a bus (no directory to notify), but
			// still observable.
			s.emit(obs.Event{Kind: obs.KindCleanDrop, Node: n, Block: victim.Block, Old: StateName(victim.State), New: "I"})
		}
	}
	return line
}

func (s *System) write(b memory.BlockID, line *cache.Line) {
	line.Dirty = true
	if s.versions != nil {
		v, _ := s.versions.GetOrCreate(b)
		*v++
		line.Version = *v
	}
}

func (s *System) version(b memory.BlockID) uint64 {
	if s.versions == nil {
		return 0
	}
	if v := s.versions.Get(b); v != nil {
		return *v
	}
	return 0
}

func (s *System) checkRead(b memory.BlockID, line *cache.Line) error {
	if s.versions == nil {
		return nil
	}
	if want := s.version(b); line.Version != want {
		return fmt.Errorf("snoop: stale read of block %d: version %d, latest %d", b, line.Version, want)
	}
	return nil
}

// States returns the per-node line state for a block, with -1 for invalid;
// tests use it to assert Figure 2 transitions.
func (s *System) States(b memory.BlockID) []int {
	out := make([]int, s.cfg.Nodes)
	for i := range s.caches {
		if line := s.caches[i].Peek(b); line != nil {
			out[i] = int(line.State)
		} else {
			out[i] = -1
		}
	}
	return out
}

// CheckInvariants verifies the structural invariants of §2.1: at most one
// cache in an exclusive state (E, D, MC, MD), never alongside shared
// copies; at most one S2 copy, and only with at most one other copy.
func (s *System) CheckInvariants() error {
	type info struct {
		copies    int
		holders   memory.NodeSet
		exclusive int
		s2        int
		dirty     int
	}
	blocks := make(map[memory.BlockID]*info)
	for i := range s.caches {
		for _, b := range s.caches[i].Blocks() {
			line := s.caches[i].Peek(b)
			in, ok := blocks[b]
			if !ok {
				in = &info{}
				blocks[b] = in
			}
			in.copies++
			in.holders = in.holders.Add(memory.NodeID(i))
			switch line.State {
			case StateE, StateD, StateMC, StateMD:
				in.exclusive++
			case StateS2:
				in.s2++
			}
			if line.Dirty {
				in.dirty++
				if line.State != StateD && line.State != StateMD && line.State != StateO {
					return fmt.Errorf("block %d: dirty line in state %s at node %d", b, StateName(line.State), i)
				}
			}
		}
	}
	for b, in := range blocks {
		if got := s.holderSet(b); got != in.holders {
			return fmt.Errorf("block %d: holder set %v != cached copies %v", b, got, in.holders)
		}
		if in.exclusive > 1 {
			return fmt.Errorf("block %d: %d exclusive copies", b, in.exclusive)
		}
		if in.exclusive == 1 && in.copies > 1 {
			return fmt.Errorf("block %d: exclusive copy coexists with %d copies", b, in.copies)
		}
		if in.s2 > 1 {
			return fmt.Errorf("block %d: %d S2 copies", b, in.s2)
		}
		if in.s2 == 1 && in.copies > 2 {
			return fmt.Errorf("block %d: S2 with %d total copies", b, in.copies)
		}
		if in.dirty > 1 {
			return fmt.Errorf("block %d: %d dirty copies", b, in.dirty)
		}
	}
	// No stale holder bits for uncached blocks.
	var holderErr error
	s.holders.ForEach(func(b memory.BlockID, hs *memory.NodeSet) {
		if holderErr != nil || hs.Empty() {
			return
		}
		if _, ok := blocks[b]; !ok {
			holderErr = fmt.Errorf("block %d: uncached but holder set says %v", b, *hs)
		}
	})
	return holderErr
}
