package snoop

import (
	"testing"

	"migratory/internal/cache"
	"migratory/internal/memory"
	"migratory/internal/trace"
)

var geom = memory.MustGeometry(16, 4096)

func newSys(t *testing.T, p Protocol) *System {
	t.Helper()
	s, err := New(Config{
		Nodes:          16,
		Geometry:       geom,
		Protocol:       p,
		CheckCoherence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func run(t *testing.T, s *System, accs []trace.Access) {
	t.Helper()
	for i, a := range accs {
		if err := s.Access(a); err != nil {
			t.Fatalf("access %d (%v): %v", i, a, err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("after access %d (%v): %v", i, a, err)
		}
	}
}

func acc(n memory.NodeID, k trace.Kind, addr memory.Addr) trace.Access {
	return trace.Access{Node: n, Kind: k, Addr: addr}
}

// state fetches node n's state for block 0, or -1.
func state(s *System, n int) int { return s.States(0)[n] }

func TestConfigValidate(t *testing.T) {
	ok := Config{Nodes: 16, Geometry: geom, Protocol: Adaptive}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []Config{
		{Nodes: 0, Geometry: geom},
		{Nodes: 65, Geometry: geom},
		{Nodes: 4, Geometry: geom, Protocol: Protocol(9)},
		{Nodes: 4, Geometry: geom, Protocol: Adaptive, Hysteresis: -1},
		{Nodes: 4, Geometry: geom, Protocol: MESI, Hysteresis: 2},
		{Nodes: 4, Geometry: geom, CacheBytes: 100},
	}
	for i, c := range cases {
		if c.Validate() == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
		if _, err := New(c); err == nil {
			t.Errorf("New accepted case %d", i)
		}
	}
}

func TestProtocolString(t *testing.T) {
	names := map[Protocol]string{
		MESI: "mesi", Adaptive: "adaptive",
		AdaptiveMigrateFirst: "adaptive-migrate-first", Symmetry: "symmetry",
	}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q", uint8(p), p.String())
		}
	}
	if Protocol(9).String() != "Protocol(9)" {
		t.Error("unknown protocol string")
	}
}

func TestStateName(t *testing.T) {
	for st, want := range map[cache.State]string{
		StateE: "E", StateS2: "S2", StateS: "S", StateD: "D", StateMC: "MC", StateMD: "MD",
	} {
		if got := StateName(st); got != want {
			t.Errorf("StateName(%d) = %q; want %q", uint8(st), got, want)
		}
	}
	if StateName(cache.State(9)) != "State(9)" {
		t.Error("unknown state name")
	}
}

func TestAccessRejectsOutOfRangeNode(t *testing.T) {
	s := newSys(t, Adaptive)
	if err := s.Access(acc(16, trace.Read, 0)); err == nil {
		t.Fatal("out-of-range node accepted")
	}
}

// TestFigure2LocalTransitions walks every row of Figure 2's local-event
// table on the adaptive protocol.
func TestFigure2LocalTransitions(t *testing.T) {
	t.Run("I+Crm no response -> E", func(t *testing.T) {
		s := newSys(t, Adaptive)
		run(t, s, []trace.Access{acc(1, trace.Read, 0)})
		if state(s, 1) != int(StateE) {
			t.Fatalf("state = %v", s.States(0))
		}
	})
	t.Run("I+Crm with S -> S", func(t *testing.T) {
		s := newSys(t, Adaptive)
		run(t, s, []trace.Access{acc(1, trace.Read, 0), acc(2, trace.Read, 0)})
		if state(s, 1) != int(StateS2) || state(s, 2) != int(StateS) {
			t.Fatalf("states = %v", s.States(0))
		}
	})
	t.Run("I+Crm with M -> MC", func(t *testing.T) {
		s := newSys(t, Adaptive)
		// Build an MD line at node 1, then read from node 2.
		run(t, s, []trace.Access{
			acc(1, trace.Read, 0), acc(1, trace.Write, 0), // E -> D
			acc(2, trace.Read, 0),  // D -> S2, node 2 gets S
			acc(2, trace.Write, 0), // Bir: S2 asserts M; node 2 -> MD
			acc(3, trace.Read, 0),  // MD migrates: node 3 -> MC
		})
		if state(s, 3) != int(StateMC) {
			t.Fatalf("states = %v", s.States(0))
		}
		if state(s, 2) != -1 {
			t.Fatalf("old MD copy not invalidated: %v", s.States(0))
		}
		if s.Migrations() != 1 {
			t.Fatalf("Migrations = %d", s.Migrations())
		}
	})
	t.Run("I+Cwm no M -> D", func(t *testing.T) {
		s := newSys(t, Adaptive)
		run(t, s, []trace.Access{acc(1, trace.Write, 0)})
		if state(s, 1) != int(StateD) {
			t.Fatalf("states = %v", s.States(0))
		}
	})
	t.Run("I+Cwm with M -> MD", func(t *testing.T) {
		s := newSys(t, Adaptive)
		run(t, s, []trace.Access{
			acc(1, trace.Write, 0), // D at 1 (single copy)
			acc(2, trace.Write, 0), // Bwmr to single D copy: M asserted
		})
		if state(s, 2) != int(StateMD) {
			t.Fatalf("states = %v", s.States(0))
		}
	})
	t.Run("E+Cwh -> D silently", func(t *testing.T) {
		s := newSys(t, Adaptive)
		run(t, s, []trace.Access{acc(1, trace.Read, 0)})
		before := s.Counts()
		run(t, s, []trace.Access{acc(1, trace.Write, 0)})
		if state(s, 1) != int(StateD) {
			t.Fatalf("states = %v", s.States(0))
		}
		if s.Counts() != before {
			t.Fatal("E->D used the bus")
		}
	})
	t.Run("S2+Cwh -> D via Bir", func(t *testing.T) {
		s := newSys(t, Adaptive)
		run(t, s, []trace.Access{
			acc(1, trace.Read, 0), // E at 1
			acc(2, trace.Read, 0), // 1: S2, 2: S
		})
		run(t, s, []trace.Access{acc(1, trace.Write, 0)})
		// The older copy writing is not migratory: plain D.
		if state(s, 1) != int(StateD) || state(s, 2) != -1 {
			t.Fatalf("states = %v", s.States(0))
		}
		if s.Counts().Invalidation != 1 {
			t.Fatalf("counts = %+v", s.Counts())
		}
	})
	t.Run("S+Cwh with M -> MD", func(t *testing.T) {
		s := newSys(t, Adaptive)
		run(t, s, []trace.Access{
			acc(1, trace.Write, 0), // D at 1
			acc(2, trace.Read, 0),  // 1: S2, 2: S
			acc(2, trace.Write, 0), // Bir: S2 asserts M
		})
		if state(s, 2) != int(StateMD) || state(s, 1) != -1 {
			t.Fatalf("states = %v", s.States(0))
		}
	})
	t.Run("S+Cwh without M -> D", func(t *testing.T) {
		s := newSys(t, Adaptive)
		run(t, s, []trace.Access{
			acc(1, trace.Write, 0),
			acc(2, trace.Read, 0),
			acc(3, trace.Read, 0), // three copies: 1:S, 2:S, 3:S
			acc(3, trace.Write, 0),
		})
		if state(s, 3) != int(StateD) {
			t.Fatalf("states = %v", s.States(0))
		}
	})
	t.Run("MC+Cwh -> MD silently", func(t *testing.T) {
		s := newSys(t, Adaptive)
		run(t, s, []trace.Access{
			acc(1, trace.Write, 0),
			acc(2, trace.Read, 0),
			acc(2, trace.Write, 0), // MD at 2
			acc(3, trace.Read, 0),  // MC at 3
		})
		before := s.Counts()
		run(t, s, []trace.Access{acc(3, trace.Write, 0)})
		if state(s, 3) != int(StateMD) {
			t.Fatalf("states = %v", s.States(0))
		}
		if s.Counts() != before {
			t.Fatal("MC->MD used the bus")
		}
	})
}

// TestFigure2BusTransitions walks the bus-request table.
func TestFigure2BusTransitions(t *testing.T) {
	t.Run("E+Bwmr asserts M", func(t *testing.T) {
		s := newSys(t, Adaptive)
		run(t, s, []trace.Access{
			acc(1, trace.Read, 0),  // E at 1
			acc(2, trace.Write, 0), // Bwmr: single E copy -> M
		})
		if state(s, 2) != int(StateMD) || state(s, 1) != -1 {
			t.Fatalf("states = %v", s.States(0))
		}
	})
	t.Run("S2+Bwmr does not assert M", func(t *testing.T) {
		s := newSys(t, Adaptive)
		run(t, s, []trace.Access{
			acc(1, trace.Read, 0),
			acc(2, trace.Read, 0),  // 1:S2, 2:S — two copies
			acc(3, trace.Write, 0), // Bwmr with two copies: no M
		})
		if state(s, 3) != int(StateD) {
			t.Fatalf("states = %v", s.States(0))
		}
	})
	t.Run("MC+Brmr replicates back to S2/S", func(t *testing.T) {
		s := newSys(t, Adaptive)
		run(t, s, []trace.Access{
			acc(1, trace.Write, 0),
			acc(2, trace.Read, 0),
			acc(2, trace.Write, 0), // MD at 2
			acc(3, trace.Read, 0),  // MC at 3 (migrated)
			acc(4, trace.Read, 0),  // MC+Brmr: back to replicate
		})
		if state(s, 3) != int(StateS2) || state(s, 4) != int(StateS) {
			t.Fatalf("states = %v", s.States(0))
		}
	})
	t.Run("MC+Bwmr declassifies", func(t *testing.T) {
		s := newSys(t, Adaptive)
		run(t, s, []trace.Access{
			acc(1, trace.Write, 0),
			acc(2, trace.Read, 0),
			acc(2, trace.Write, 0), // MD at 2
			acc(3, trace.Read, 0),  // MC at 3
			acc(4, trace.Write, 0), // Bwmr to MC: no M
		})
		if state(s, 4) != int(StateD) || state(s, 3) != -1 {
			t.Fatalf("states = %v", s.States(0))
		}
	})
	t.Run("MD+Bwmr stays migratory", func(t *testing.T) {
		s := newSys(t, Adaptive)
		run(t, s, []trace.Access{
			acc(1, trace.Write, 0),
			acc(2, trace.Read, 0),
			acc(2, trace.Write, 0), // MD at 2
			acc(3, trace.Write, 0), // Bwmr to MD: M
		})
		if state(s, 3) != int(StateMD) || state(s, 2) != -1 {
			t.Fatalf("states = %v", s.States(0))
		}
	})
	t.Run("S2 downgraded by third reader", func(t *testing.T) {
		s := newSys(t, Adaptive)
		run(t, s, []trace.Access{
			acc(1, trace.Read, 0),
			acc(2, trace.Read, 0),
			acc(3, trace.Read, 0),
		})
		if state(s, 1) != int(StateS) || state(s, 2) != int(StateS) || state(s, 3) != int(StateS) {
			t.Fatalf("states = %v", s.States(0))
		}
	})
}

// TestAdaptiveHalvesBusTransactionsForMigratoryData is the bus-based analog
// of the directory halving claim.
func TestAdaptiveHalvesBusTransactionsForMigratoryData(t *testing.T) {
	mkTrace := func() []trace.Access {
		var accs []trace.Access
		for round := 0; round < 50; round++ {
			for n := memory.NodeID(1); n <= 4; n++ {
				accs = append(accs, acc(n, trace.Read, 0), acc(n, trace.Write, 0))
			}
		}
		return accs
	}
	mesi := newSys(t, MESI)
	adp := newSys(t, Adaptive)
	run(t, mesi, mkTrace())
	run(t, adp, mkTrace())
	m, a := mesi.Counts(), adp.Counts()
	// Conventional: each turn is a read miss plus an invalidation (2
	// transactions); adaptive steady state: one migratory read miss.
	if m.Total() < 2*a.Total()-8 {
		t.Fatalf("unexpectedly large adaptive cost: mesi %d vs adaptive %d", m.Total(), a.Total())
	}
	if a.Total() > m.Total()/2+8 {
		t.Fatalf("adaptive did not halve transactions: mesi %d vs adaptive %d", m.Total(), a.Total())
	}
	if a.Invalidation > 2 {
		t.Fatalf("adaptive still sends invalidations: %+v", a)
	}
}

// TestModel2CostModel checks the §4.3 second cost model arithmetic.
func TestModel2CostModel(t *testing.T) {
	c := Counts{ReadMiss: 10, WriteMiss: 5, Invalidation: 4, WriteBack: 3}
	if got := c.Total(); got != 22 {
		t.Fatalf("Total = %d", got)
	}
	if got := c.Model2(false); got != 2*15+4+3 {
		t.Fatalf("Model2(conv) = %d", got)
	}
	if got := c.Model2(true); got != 2*15+2*4+3 {
		t.Fatalf("Model2(adaptive) = %d", got)
	}
}

// TestSymmetryPenalizesReadShared reproduces the §5 observation: the
// Symmetry policy causes extra read misses for write-then-read-shared data.
func TestSymmetryPenalizesReadShared(t *testing.T) {
	mkTrace := func() []trace.Access {
		var accs []trace.Access
		for round := 0; round < 20; round++ {
			accs = append(accs, acc(0, trace.Write, 0))
			// Two read sweeps. Under MESI the second sweep hits in every
			// cache; under Symmetry the block keeps migrating away (it
			// stays dirty), so every second-sweep read misses too.
			for sweep := 0; sweep < 2; sweep++ {
				for n := memory.NodeID(1); n < 8; n++ {
					accs = append(accs, acc(n, trace.Read, 0))
				}
			}
		}
		return accs
	}
	mesi := newSys(t, MESI)
	sym := newSys(t, Symmetry)
	adp := newSys(t, Adaptive)
	run(t, mesi, mkTrace())
	run(t, sym, mkTrace())
	run(t, adp, mkTrace())
	if sym.Counts().ReadMiss <= mesi.Counts().ReadMiss {
		t.Fatalf("Symmetry read misses %d not worse than MESI %d",
			sym.Counts().ReadMiss, mesi.Counts().ReadMiss)
	}
	// The adaptive protocol must not inherit the Symmetry penalty.
	if adp.Counts().ReadMiss > mesi.Counts().ReadMiss+2 {
		t.Fatalf("adaptive read misses %d vs MESI %d", adp.Counts().ReadMiss, mesi.Counts().ReadMiss)
	}
}

// TestSymmetryOptimalForMigratory: for purely migratory data the Symmetry
// policy equals the adaptive protocol's steady state.
func TestSymmetryOptimalForMigratory(t *testing.T) {
	mkTrace := func() []trace.Access {
		var accs []trace.Access
		for round := 0; round < 30; round++ {
			for n := memory.NodeID(0); n < 4; n++ {
				accs = append(accs, acc(n, trace.Read, 0), acc(n, trace.Write, 0))
			}
		}
		return accs
	}
	sym := newSys(t, Symmetry)
	adp := newSys(t, Adaptive)
	run(t, sym, mkTrace())
	run(t, adp, mkTrace())
	diff := int64(sym.Counts().Total()) - int64(adp.Counts().Total())
	if diff > 4 || diff < -4 {
		t.Fatalf("Symmetry %d vs adaptive %d on migratory data", sym.Counts().Total(), adp.Counts().Total())
	}
}

// TestMigrateFirstInitialPolicy: under AdaptiveMigrateFirst the Exclusive
// state is dead and first touches go to MC/MD.
func TestMigrateFirstInitialPolicy(t *testing.T) {
	s := newSys(t, AdaptiveMigrateFirst)
	run(t, s, []trace.Access{acc(1, trace.Read, 0)})
	if state(s, 1) != int(StateMC) {
		t.Fatalf("states = %v", s.States(0))
	}
	run(t, s, []trace.Access{acc(1, trace.Write, 0)})
	if state(s, 1) != int(StateMD) {
		t.Fatalf("states = %v", s.States(0))
	}
	// Second block: first access a write.
	run(t, s, []trace.Access{acc(2, trace.Write, 16)})
	if s.States(1)[2] != int(StateMD) {
		t.Fatalf("write-first states = %v", s.States(1))
	}
	// Migratory behaviour needs no warm-up turn at all.
	before := s.Counts()
	run(t, s, []trace.Access{
		acc(2, trace.Read, 0), acc(2, trace.Write, 0),
		acc(3, trace.Read, 0), acc(3, trace.Write, 0),
	})
	d := s.Counts()
	if d.ReadMiss-before.ReadMiss != 2 || d.Invalidation != before.Invalidation {
		t.Fatalf("migrate-first turns: %+v -> %+v", before, d)
	}
}

// TestHysteresisDelaysClassification: with Hysteresis 2, one migration
// event is not enough.
func TestHysteresisDelaysClassification(t *testing.T) {
	mk := func(h int) *System {
		s, err := New(Config{
			Nodes: 16, Geometry: geom, Protocol: Adaptive,
			Hysteresis: h, CheckCoherence: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	script := []trace.Access{
		acc(1, trace.Write, 0), // D at 1
		acc(2, trace.Read, 0),  // S2/S
		acc(2, trace.Write, 0), // first event
	}
	s1, s2 := mk(1), mk(2)
	run(t, s1, script)
	run(t, s2, script)
	if state(s1, 2) != int(StateMD) {
		t.Fatalf("h=1 states = %v", s1.States(0))
	}
	if state(s2, 2) != int(StateD) {
		t.Fatalf("h=2 states = %v", s2.States(0))
	}
	// Second event classifies under h=2.
	more := []trace.Access{
		acc(3, trace.Read, 0),  // S2 at 2, S at 3
		acc(3, trace.Write, 0), // second event
	}
	run(t, s2, more)
	if state(s2, 3) != int(StateMD) {
		t.Fatalf("h=2 after second event: %v", s2.States(0))
	}
}

// TestWriteBackOnEviction: dirty victims produce write-back transactions;
// clean drops are silent.
func TestWriteBackOnEviction(t *testing.T) {
	s, err := New(Config{
		Nodes: 2, Geometry: geom, CacheBytes: 32, Assoc: 2,
		Protocol: Adaptive, CheckCoherence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	run(t, s, []trace.Access{
		acc(0, trace.Write, 0), // D
		acc(0, trace.Read, 16), // E
		acc(0, trace.Read, 32), // evicts dirty block 0
		acc(0, trace.Read, 48), // evicts clean block 1
	})
	c := s.Counts()
	if c.WriteBack != 1 {
		t.Fatalf("counts = %+v", c)
	}
}

// TestMESIBasics: the baseline behaves like textbook MESI.
func TestMESIBasics(t *testing.T) {
	s := newSys(t, MESI)
	run(t, s, []trace.Access{acc(1, trace.Read, 0)})
	if state(s, 1) != int(StateE) {
		t.Fatalf("states = %v", s.States(0))
	}
	run(t, s, []trace.Access{acc(2, trace.Read, 0)})
	if state(s, 1) != int(StateS) || state(s, 2) != int(StateS) {
		t.Fatalf("states = %v", s.States(0))
	}
	run(t, s, []trace.Access{acc(2, trace.Write, 0)})
	if state(s, 2) != int(StateD) || state(s, 1) != -1 {
		t.Fatalf("states = %v", s.States(0))
	}
	run(t, s, []trace.Access{acc(1, trace.Read, 0)})
	if state(s, 2) != int(StateS) || state(s, 1) != int(StateS) {
		t.Fatalf("states = %v", s.States(0))
	}
	if s.Migrations() != 0 {
		t.Fatal("MESI migrated")
	}
	read, write := s.Hits()
	if read != 0 || write != 0 {
		t.Fatalf("hits = %d %d", read, write)
	}
}
