package snoop

// Precomputed snoop-response tables for the Figure 2 state machine. The
// per-access hot path of the bus engine is the per-holder response switch
// inside each transaction (what does a cache in state X do when it snoops a
// read miss / write miss / invalidation?). Those switches branch on both
// the line state and the protocol; since the protocol is fixed for the
// lifetime of a System, New() flattens them into dense per-transaction
// tables
//
//	[line state] -> {next state, action bitmask}
//
// and the transaction handlers reduce to a table index plus flag tests.
// TestSnoopTablesMatchFigure2 (and the pre-existing exhaustive protocol
// tests, which cover every transition) pin the tables to the reference
// semantics.

import "migratory/internal/cache"

// Snoop response action flags.
const (
	// actInvalidate drops the remote copy (and suppresses the state-change
	// event: the invalidation event covers it).
	actInvalidate uint8 = 1 << iota
	// actShared asserts the shared bus line.
	actShared
	// actMig asserts the Migratory response.
	actMig
	// actTakeEvidence propagates the remote line's hysteresis counter to
	// the requester.
	actTakeEvidence
	// actBumpEvidence advances the remote line's hysteresis counter and
	// asserts Migratory at the threshold (the §2.1 detection events).
	actBumpEvidence
	// actDeclassify reports a migratory block reverting to the replicate
	// policy.
	actDeclassify
	// actCleanLine clears the remote line's dirty bit (memory snooped the
	// data transfer).
	actCleanLine
)

// snoopEntry is one response: the successor state (meaningful only when
// actInvalidate is clear) and the actions.
type snoopEntry struct {
	next  cache.State
	flags uint8
}

// snoopTables holds one System's response tables, indexed by line state.
type snoopTables struct {
	// rm answers a read miss (Brmr).
	rm [StateO + 1]snoopEntry
	// wmSingle answers a write miss when the responder holds the only
	// cached copy; wmMulti when other copies exist too. The split hoists
	// the single-copy migratory-evidence test out of the snoop loop.
	wmSingle [StateO + 1]snoopEntry
	wmMulti  [StateO + 1]snoopEntry
	// inv answers an invalidation (Bir, a write hit on a shared line).
	inv [StateO + 1]snoopEntry
}

// buildSnoopTables flattens the protocol's response rules.
func buildSnoopTables(p Protocol) *snoopTables {
	t := &snoopTables{}

	// Read miss. The conventional protocols have no Shared-2 state; their
	// downgrades go straight to Shared.
	down := StateS2
	if !p.Adaptive() {
		down = StateS
	}
	t.rm[StateE] = snoopEntry{next: down, flags: actShared}
	switch p {
	case Symmetry:
		// Symmetry model B: modified blocks always migrate; ownership
		// (still dirty) transfers to the requester.
		t.rm[StateD] = snoopEntry{flags: actInvalidate | actMig}
	case Berkeley:
		// Berkeley: the owner supplies the data and keeps the dirty master
		// copy; memory is not updated.
		t.rm[StateD] = snoopEntry{next: StateO, flags: actShared}
	default:
		// Provide data; memory snoops and is updated.
		t.rm[StateD] = snoopEntry{next: down, flags: actShared | actCleanLine}
	}
	t.rm[StateS2] = snoopEntry{next: StateS, flags: actShared}
	t.rm[StateS] = snoopEntry{next: StateS, flags: actShared}
	t.rm[StateO] = snoopEntry{next: StateO, flags: actShared}
	// Any miss request to MC switches the block back to the replicate
	// policy: the pair continues as S2/S, keeping the accumulated evidence.
	t.rm[StateMC] = snoopEntry{next: StateS2, flags: actShared | actTakeEvidence | actDeclassify}
	// MD migrates: invalidate here, hand the (now clean, memory updated)
	// block over with Migratory asserted.
	t.rm[StateMD] = snoopEntry{flags: actInvalidate | actMig | actTakeEvidence}

	// Write miss: every copy invalidates; the interesting part is what the
	// response lines say. A write miss to a block with a single cached copy
	// in E or D is migratory evidence (the aggressive switch of §2.1).
	for st := StateE; st <= StateO; st++ {
		t.wmSingle[st] = snoopEntry{flags: actInvalidate}
		t.wmMulti[st] = snoopEntry{flags: actInvalidate}
	}
	if p.Adaptive() {
		t.wmSingle[StateE] = snoopEntry{flags: actInvalidate | actBumpEvidence}
		t.wmSingle[StateD] = snoopEntry{flags: actInvalidate | actBumpEvidence}
	}
	// The previous holder modified an MD block: still migratory. An MC
	// holder did not: declassify.
	t.wmSingle[StateMD] = snoopEntry{flags: actInvalidate | actMig | actTakeEvidence}
	t.wmMulti[StateMD] = t.wmSingle[StateMD]
	t.wmSingle[StateMC] = snoopEntry{flags: actInvalidate | actDeclassify}
	t.wmMulti[StateMC] = t.wmSingle[StateMC]

	// Invalidation: every copy invalidates. The invalidator hitting an S2
	// copy holds the newer copy of a two-copy block — the defining
	// migratory detection event.
	for st := StateE; st <= StateO; st++ {
		t.inv[st] = snoopEntry{flags: actInvalidate}
	}
	if p.Adaptive() {
		t.inv[StateS2] = snoopEntry{flags: actInvalidate | actBumpEvidence}
	}
	return t
}
