package snoop

import (
	"strings"
	"testing"

	"migratory/internal/cache"
	"migratory/internal/trace"
)

// TestClassificationLostOnEviction: unlike the directory protocols, the
// snooping protocol keeps no state for uncached blocks (§4.3: "the snooping
// protocol can not retain the classification of a block across time
// intervals in which the block is not cached").
func TestClassificationLostOnEviction(t *testing.T) {
	s, err := New(Config{
		Nodes: 4, Geometry: geom, CacheBytes: 32, Assoc: 2,
		Protocol: Adaptive, CheckCoherence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Classify block 0 as migratory at node 2.
	run(t, s, []trace.Access{
		acc(1, trace.Write, 0),
		acc(2, trace.Read, 0),
		acc(2, trace.Write, 0), // MD at node 2
	})
	if state(s, 2) != int(StateMD) {
		t.Fatalf("setup: states = %v", s.States(0))
	}
	// Evict it from node 2 (write-back), then have node 3 reload it.
	run(t, s, []trace.Access{
		acc(2, trace.Read, 16),
		acc(2, trace.Read, 32), // evicts block 0 (dirty)
		acc(3, trace.Read, 0),
	})
	if s.Counts().WriteBack != 1 {
		t.Fatalf("counts = %+v", s.Counts())
	}
	// The reload finds no migratory evidence: plain Exclusive.
	if got := s.States(0)[3]; got != int(StateE) {
		t.Fatalf("reloaded state = %s; want E (classification lost)", StateName(cache.State(got)))
	}
}

// TestHitCounters: reads and writes that stay local are counted.
func TestHitCounters(t *testing.T) {
	s := newSys(t, Adaptive)
	run(t, s, []trace.Access{
		acc(1, trace.Read, 0),  // miss
		acc(1, trace.Read, 0),  // hit
		acc(1, trace.Write, 0), // E->D silent (write hit)
		acc(1, trace.Write, 0), // D silent
		acc(1, trace.Read, 0),  // hit
	})
	r, w := s.Hits()
	if r != 2 || w != 2 {
		t.Fatalf("hits = %d %d", r, w)
	}
}

// TestSymmetryEvictionWritesBack: a migrated-dirty Symmetry block that gets
// evicted must write back (memory was stale the whole time).
func TestSymmetryEvictionWritesBack(t *testing.T) {
	s, err := New(Config{
		Nodes: 4, Geometry: geom, CacheBytes: 32, Assoc: 2,
		Protocol: Symmetry, CheckCoherence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	run(t, s, []trace.Access{
		acc(1, trace.Write, 0), // D at 1
		acc(2, trace.Read, 0),  // migrates, still dirty, at 2
		acc(2, trace.Read, 16),
		acc(2, trace.Read, 32), // evicts block 0
	})
	if s.Counts().WriteBack != 1 {
		t.Fatalf("counts = %+v", s.Counts())
	}
	// The data must not be lost: node 3 reads the latest version.
	run(t, s, []trace.Access{acc(3, trace.Read, 0)})
}

// TestWriteMissWithTwoSharedCopies: both copies invalidate, no Migratory.
func TestWriteMissWithSharedPair(t *testing.T) {
	s := newSys(t, Adaptive)
	run(t, s, []trace.Access{
		acc(1, trace.Write, 0),
		acc(2, trace.Read, 0), // 1:S2 2:S
		acc(3, trace.Write, 0),
	})
	if state(s, 1) != -1 || state(s, 2) != -1 {
		t.Fatalf("states = %v", s.States(0))
	}
	if state(s, 3) != int(StateD) {
		t.Fatalf("states = %v", s.States(0))
	}
}

// TestBirWithNoOtherCopies: a lone S copy writing still issues a Bir (the
// cache cannot know it is alone) and lands in D.
func TestBirWithNoOtherCopies(t *testing.T) {
	s, err := New(Config{
		Nodes: 4, Geometry: geom, CacheBytes: 32, Assoc: 2,
		Protocol: Adaptive, CheckCoherence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	run(t, s, []trace.Access{
		acc(1, trace.Write, 0),
		acc(2, trace.Read, 0), // 1:S2 2:S
		// Node 1's S2 copy is evicted by conflicting fills.
		acc(1, trace.Read, 16),
		acc(1, trace.Read, 32),
		// Node 2 writes its now-lone S copy.
		acc(2, trace.Write, 0),
	})
	if got := s.States(0)[2]; got != int(StateD) {
		t.Fatalf("state = %v", s.States(0))
	}
	if s.Counts().Invalidation != 1 {
		t.Fatalf("counts = %+v", s.Counts())
	}
}

// TestRunErrorIncludesIndex mirrors the directory behaviour.
func TestRunErrorIncludesIndex(t *testing.T) {
	s := newSys(t, MESI)
	err := s.Run([]trace.Access{
		acc(0, trace.Read, 0),
		acc(42, trace.Read, 0),
	})
	if err == nil || !strings.Contains(err.Error(), "access 1") {
		t.Fatalf("err = %v", err)
	}
}

// TestConfigAccessorSnoop returns the configuration with defaults applied.
func TestConfigAccessorSnoop(t *testing.T) {
	s := newSys(t, Adaptive)
	cfg := s.Config()
	if cfg.Protocol != Adaptive || cfg.Assoc != 4 || cfg.Hysteresis != 1 {
		t.Fatalf("config = %+v", cfg)
	}
}

// TestEvidencePropagationThroughStates: with Hysteresis 3 the evidence
// counter must survive the D -> S2 -> (Bir) -> D chain until the third
// event classifies.
func TestEvidencePropagationThroughStates(t *testing.T) {
	s, err := New(Config{
		Nodes: 16, Geometry: geom, Protocol: Adaptive,
		Hysteresis: 3, CheckCoherence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Event 1: write miss to single D copy.
	run(t, s, []trace.Access{
		acc(1, trace.Write, 0),
		acc(2, trace.Write, 0), // evidence 1, still D
	})
	if got := state(s, 2); got != int(StateD) {
		t.Fatalf("after event 1: %v", s.States(0))
	}
	// Event 2: S2 detection via Bir.
	run(t, s, []trace.Access{
		acc(3, trace.Read, 0),  // 2:S2(ev1) 3:S
		acc(3, trace.Write, 0), // evidence 2, still D
	})
	if got := state(s, 3); got != int(StateD) {
		t.Fatalf("after event 2: %v", s.States(0))
	}
	// Event 3 classifies.
	run(t, s, []trace.Access{
		acc(4, trace.Read, 0),
		acc(4, trace.Write, 0),
	})
	if got := state(s, 4); got != int(StateMD) {
		t.Fatalf("after event 3: %v", s.States(0))
	}
}

// TestMigrateFirstOnSharedDataStillReplicates: even with the migratory
// initial policy, read-shared data settles into replication.
func TestMigrateFirstOnSharedDataStillReplicates(t *testing.T) {
	s := newSys(t, AdaptiveMigrateFirst)
	run(t, s, []trace.Access{
		acc(1, trace.Read, 0), // MC
		acc(2, trace.Read, 0), // clean handoff: declassify to S2/S
	})
	if state(s, 1) != int(StateS2) || state(s, 2) != int(StateS) {
		t.Fatalf("states = %v", s.States(0))
	}
	// Subsequent readers replicate freely.
	run(t, s, []trace.Access{acc(3, trace.Read, 0), acc(4, trace.Read, 0)})
	for _, n := range []int{1, 2, 3, 4} {
		if st := s.States(0)[n]; st != int(StateS) && st != int(StateS2) {
			t.Fatalf("node %d state %d; want shared", n, st)
		}
	}
}

// TestMemoryUpdateOnMigration: after an MD migration the block is clean at
// the new holder (memory snooped the transfer), so its eviction is silent.
func TestMemoryUpdateOnMigration(t *testing.T) {
	s, err := New(Config{
		Nodes: 4, Geometry: geom, CacheBytes: 32, Assoc: 2,
		Protocol: Adaptive, CheckCoherence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	run(t, s, []trace.Access{
		acc(1, trace.Write, 0),
		acc(2, trace.Read, 0),
		acc(2, trace.Write, 0), // MD at 2
		acc(3, trace.Read, 0),  // MC at 3 (clean: memory updated)
		acc(3, trace.Read, 16),
		acc(3, trace.Read, 32), // evicts block 0 at node 3
	})
	if s.Counts().WriteBack != 0 {
		t.Fatalf("MC eviction wrote back: %+v", s.Counts())
	}
	// And the value is intact.
	run(t, s, []trace.Access{acc(0, trace.Read, 0)})
}

// TestStatesSnapshotLength: States sizes to the node count.
func TestStatesSnapshotLength(t *testing.T) {
	s, err := New(Config{Nodes: 5, Geometry: geom, Protocol: MESI})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(s.States(0)); got != 5 {
		t.Fatalf("len = %d", got)
	}
	for _, st := range s.States(0) {
		if st != -1 {
			t.Fatal("empty system has states")
		}
	}
}
