package snoop

import (
	"errors"
	"fmt"
)

// ErrUnknownProtocol is wrapped by ProtocolByName when no bus protocol
// variant matches, so callers can classify the failure with errors.Is.
var ErrUnknownProtocol = errors.New("snoop: unknown protocol")

// Protocols returns every bus protocol variant in presentation order.
func Protocols() []Protocol {
	return []Protocol{MESI, Adaptive, AdaptiveMigrateFirst, Symmetry, Berkeley, UpdateOnce}
}

// ProtocolByName resolves a protocol variant by its String name ("mesi",
// "adaptive", "adaptive-migrate-first", "symmetry", "berkeley",
// "update-once").
func ProtocolByName(name string) (Protocol, error) {
	for _, p := range Protocols() {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownProtocol, name)
}
