// Set-sharded execution for the bus engine. The untimed snoop simulator
// counts transactions per block with per-set cache state and per-block
// holder/classifier tracking, so — exactly as in the directory engine —
// accesses to different cache-set indices never interact and a run can be
// partitioned by set index with bit-identical counts. (The *timed* bus is
// different: there the bus serializes every transaction globally, which is
// why the timing model rejects sharding.)
package snoop

import (
	"context"
	"fmt"

	"migratory/internal/obs"
	"migratory/internal/trace"
)

// Sharded runs one snooping protocol over one trace on several engine
// shards in parallel; shard i owns the blocks whose low log2(shards) bits
// equal i. Accessors merge the shards deterministically in shard order.
type Sharded struct {
	cfg    Config
	shards []*System
	probed bool
}

// NewSharded builds a set-sharded bus system: shards engine instances,
// each configured like cfg but owning only its slice of the sets.
// cfg.Probe must be nil; per-shard probes come from the probes factory
// (which may be nil, or return nil for any shard). The shard count must be
// a positive power of two and, for finite caches, no larger than the
// per-cache set count.
func NewSharded(cfg Config, shards int, probes func(int) obs.Probe) (*Sharded, error) {
	if cfg.Probe != nil {
		return nil, fmt.Errorf("snoop: sharded run: set per-shard probes via the factory, not Config.Probe")
	}
	if shards < 1 || shards&(shards-1) != 0 {
		return nil, fmt.Errorf("snoop: shard count %d is not a positive power of two", shards)
	}
	sh := &Sharded{cfg: cfg, shards: make([]*System, shards)}
	for i := range sh.shards {
		c := cfg
		c.shards = shards
		c.shardIndex = i
		if probes != nil {
			c.Probe = probes(i)
		}
		if c.Probe != nil {
			sh.probed = true
		}
		sys, err := New(c)
		if err != nil {
			return nil, err
		}
		sh.shards[i] = sys
	}
	return sh, nil
}

// Config returns the configuration the shards were built from.
func (sh *Sharded) Config() Config { return sh.cfg }

// Shards returns the per-shard engine instances, in shard order.
func (sh *Sharded) Shards() []*System { return sh.shards }

// Run feeds a whole trace through the sharded system.
func (sh *Sharded) Run(accesses []trace.Access) error {
	return sh.RunSource(nil, trace.NewSliceSource(accesses))
}

// RunSource demuxes the trace by set index across the shards and runs
// them concurrently, with counts bit-identical to a sequential run. When
// src is an indexed (MTR3) source and cfg.Decoders allows it, the decode
// runs in parallel as well (trace.DemuxParallel).
func (sh *Sharded) RunSource(ctx context.Context, src trace.Source) error {
	if len(sh.shards) == 1 {
		return sh.shards[0].RunSource(ctx, src)
	}
	geom := sh.cfg.Geometry
	mask := uint64(len(sh.shards) - 1)
	return trace.DemuxParallel(ctx, src, sh.cfg.Decoders, len(sh.shards), sh.probed, sh.cfg.Stats,
		func(a trace.Access) int { return int(uint64(geom.Block(a.Addr)) & mask) },
		func(i int, b trace.ShardBatch) error { return sh.shards[i].runShardBatch(b) })
}

// runShardBatch runs one routed batch on this shard.
func (s *System) runShardBatch(b trace.ShardBatch) error {
	if b.Steps == nil {
		return s.runBatch(b.Accs, int(s.accesses))
	}
	for i := range b.Accs {
		if err := s.accessAt(b.Accs[i], b.Steps[i]); err != nil {
			return fmt.Errorf("access %d (%v): %w", b.Steps[i], b.Accs[i], err)
		}
	}
	s.noteBatch(len(b.Accs))
	return nil
}

// Counts returns the bus transaction counts summed over all shards.
func (sh *Sharded) Counts() Counts {
	var total Counts
	for _, s := range sh.shards {
		c := s.Counts()
		total.ReadMiss += c.ReadMiss
		total.WriteMiss += c.WriteMiss
		total.Invalidation += c.Invalidation
		total.WriteBack += c.WriteBack
		total.Update += c.Update
	}
	return total
}

// Accesses sums how many trace accesses the shards have simulated.
func (sh *Sharded) Accesses() uint64 {
	var n uint64
	for _, s := range sh.shards {
		n += s.Accesses()
	}
	return n
}

// Migrations sums the shards' MD-migration counts.
func (sh *Sharded) Migrations() uint64 {
	var n uint64
	for _, s := range sh.shards {
		n += s.Migrations()
	}
	return n
}

// Hits sums the shards' read-hit and write-hit counts.
func (sh *Sharded) Hits() (read, write uint64) {
	for _, s := range sh.shards {
		r, w := s.Hits()
		read += r
		write += w
	}
	return
}

// CheckInvariants verifies every shard's structural invariants.
func (sh *Sharded) CheckInvariants() error {
	for i, s := range sh.shards {
		if err := s.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return nil
}
