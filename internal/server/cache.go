package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"migratory/internal/telemetry"
)

// cacheEntry is the on-disk form of one memoized result: the digest and
// submitted config ride along for debuggability, result carries the exact
// bytes a fresh run marshaled (so hits are bit-identical to misses).
type cacheEntry struct {
	Digest string          `json:"digest"`
	Config json.RawMessage `json:"config,omitempty"`
	Result json.RawMessage `json:"result"`
}

// cache is the content-hash result store: one <digest>.json per successful
// run under dir. The filesystem is the index — entries survive restarts
// and are shared by any process pointed at the same directory. Writes are
// atomic (temp file + rename), so concurrent writers of the same digest
// land one complete entry.
type cache struct {
	dir string
}

func newCache(dir string) (*cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: result cache: %w", err)
	}
	return &cache{dir: dir}, nil
}

func (c *cache) path(digest string) string {
	return filepath.Join(c.dir, digest+".json")
}

// get loads a memoized result; ok is false on miss or an unreadable entry
// (a corrupt file degrades to a miss, never an error).
func (c *cache) get(digest string) (json.RawMessage, bool) {
	data, err := os.ReadFile(c.path(digest))
	if err != nil {
		return nil, false
	}
	var e cacheEntry
	if err := json.Unmarshal(data, &e); err != nil || len(e.Result) == 0 {
		return nil, false
	}
	// The entry file is indented for debuggability; recompact so a hit
	// serves the exact bytes a fresh run would marshal.
	var buf bytes.Buffer
	if err := json.Compact(&buf, e.Result); err != nil {
		return nil, false
	}
	return buf.Bytes(), true
}

func (c *cache) put(digest string, cfg, result json.RawMessage) error {
	data, err := json.MarshalIndent(cacheEntry{Digest: digest, Config: cfg, Result: result}, "", "  ")
	if err != nil {
		return err
	}
	return telemetry.WriteFileAtomic(c.path(digest), append(data, '\n'), 0o644)
}
