package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// latWindow is the per-request wall-time window the latency quantiles are
// computed over (the most recent completions).
const latWindow = 512

// latRing is a fixed-size ring of recent request wall times plus lifetime
// sum/count, feeding the p50/p99 gauges and the Prometheus summary.
type latRing struct {
	mu    sync.Mutex
	buf   [latWindow]float64
	n     int // filled entries (<= latWindow)
	next  int
	sum   float64
	count uint64
}

func (r *latRing) observe(seconds float64) {
	r.mu.Lock()
	r.buf[r.next] = seconds
	r.next = (r.next + 1) % latWindow
	if r.n < latWindow {
		r.n++
	}
	r.sum += seconds
	r.count++
	r.mu.Unlock()
}

// quantiles returns the windowed p50/p99 and the lifetime sum/count.
func (r *latRing) quantiles() (p50, p99 float64, sum float64, count uint64) {
	r.mu.Lock()
	vals := append([]float64(nil), r.buf[:r.n]...)
	sum, count = r.sum, r.count
	r.mu.Unlock()
	if len(vals) == 0 {
		return 0, 0, sum, count
	}
	sort.Float64s(vals)
	at := func(q float64) float64 { return vals[int(q*float64(len(vals)-1)+0.5)] }
	return at(0.50), at(0.99), sum, count
}

// metrics is the admission-control counter block.
type metrics struct {
	accepted    atomic.Uint64
	rejected    atomic.Uint64
	coalesced   atomic.Uint64
	completed   atomic.Uint64
	failed      atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	inFlight    atomic.Uint64

	lat latRing
}

func (m *metrics) observe(seconds float64) { m.lat.observe(seconds) }

// WriteMetrics appends the service's Prometheus families to a /metrics
// response (telemetry.Server.OnMetrics-compatible).
func (s *Server) WriteMetrics(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	counter("cohd_requests_accepted_total", "Run requests admitted to the queue.", s.m.accepted.Load())
	counter("cohd_requests_rejected_total", "Run requests rejected with 429 (queue full).", s.m.rejected.Load())
	counter("cohd_requests_coalesced_total", "Run requests attached to an identical in-flight run.", s.m.coalesced.Load())
	counter("cohd_runs_completed_total", "Runs that finished successfully.", s.m.completed.Load())
	counter("cohd_runs_failed_total", "Runs that finished with an error (including deadline aborts).", s.m.failed.Load())
	counter("cohd_cache_hits_total", "Run requests served from the result cache.", s.m.cacheHits.Load())
	counter("cohd_cache_misses_total", "Cacheable run requests that had to simulate.", s.m.cacheMisses.Load())

	s.mu.Lock()
	depth := len(s.queue)
	capacity := cap(s.queue)
	jobs := len(s.jobs)
	draining := 0.0
	if s.draining {
		draining = 1
	}
	s.mu.Unlock()
	gauge("cohd_queue_depth", "Admitted runs waiting for a worker.", float64(depth))
	gauge("cohd_queue_capacity", "Admission queue capacity.", float64(capacity))
	gauge("cohd_inflight_runs", "Runs executing right now.", float64(s.m.inFlight.Load()))
	gauge("cohd_jobs_retained", "Jobs retained for listing (bounded history).", float64(jobs))
	gauge("cohd_draining", "1 once SIGTERM drain has begun.", draining)

	p50, p99, sum, count := s.m.lat.quantiles()
	fmt.Fprintf(w, "# HELP cohd_request_wall_seconds Per-request simulation wall time (windowed quantiles over the last %d runs).\n# TYPE cohd_request_wall_seconds summary\n", latWindow)
	fmt.Fprintf(w, "cohd_request_wall_seconds{quantile=\"0.5\"} %g\n", p50)
	fmt.Fprintf(w, "cohd_request_wall_seconds{quantile=\"0.99\"} %g\n", p99)
	fmt.Fprintf(w, "cohd_request_wall_seconds_sum %g\n", sum)
	fmt.Fprintf(w, "cohd_request_wall_seconds_count %d\n", count)
}

// StatusExtra merges the service's state into /status responses
// (telemetry.Server.OnStatus-compatible).
func (s *Server) StatusExtra() map[string]any {
	s.mu.Lock()
	depth := len(s.queue)
	capacity := cap(s.queue)
	jobs := len(s.jobs)
	draining := s.draining
	s.mu.Unlock()
	p50, p99, _, count := s.m.lat.quantiles()
	hits, misses := s.m.cacheHits.Load(), s.m.cacheMisses.Load()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	return map[string]any{
		"cohd": map[string]any{
			"queue_depth":    depth,
			"queue_capacity": capacity,
			"in_flight":      s.m.inFlight.Load(),
			"jobs_retained":  jobs,
			"draining":       draining,
			"accepted":       s.m.accepted.Load(),
			"rejected":       s.m.rejected.Load(),
			"coalesced":      s.m.coalesced.Load(),
			"completed":      s.m.completed.Load(),
			"failed":         s.m.failed.Load(),
			"cache_hits":     hits,
			"cache_misses":   misses,
			"cache_hit_rate": hitRate,
			"wall_p50_ms":    1000 * p50,
			"wall_p99_ms":    1000 * p99,
			"requests_timed": count,
		},
	}
}
