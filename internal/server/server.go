// Package server is the coherence-as-a-service core behind cmd/cohd: a
// bounded worker pool executing sim.Run requests with admission control
// (fixed-capacity queue, per-request deadlines), a content-hash result
// cache, per-request run manifests, and graceful drain. The HTTP surface
// lives in http.go; everything here is also usable in-process.
//
// Admission is strict: a request is either accepted (queued, coalesced
// onto an identical in-flight run, or served from the cache) or rejected
// immediately with ErrQueueFull/ErrDraining — nothing blocks the caller.
// Results are bit-identical to a direct sim.Run call with the same config:
// workers marshal the RunResult once and both the cache and the HTTP
// responses carry those exact bytes.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"migratory/internal/sim"
	"migratory/internal/telemetry"
	"migratory/internal/trace"
)

var (
	// ErrQueueFull is returned by Submit when the admission queue is at
	// capacity; HTTP maps it to 429 with Retry-After.
	ErrQueueFull = errors.New("server: run queue full")
	// ErrDraining is returned by Submit once Shutdown has begun; HTTP maps
	// it to 503.
	ErrDraining = errors.New("server: draining, not accepting new runs")
)

// Config configures New. The zero value is a usable in-memory service:
// default queue and worker counts, no result cache, no manifests, no
// deadlines.
type Config struct {
	// Queue is the admission queue capacity (0 = 64). Submissions beyond
	// queued+running capacity fail fast with ErrQueueFull.
	Queue int
	// Workers bounds concurrently executing runs (0 = GOMAXPROCS).
	Workers int
	// CacheDir, when non-empty, persists successful results as
	// <digest>.json files and serves repeats without re-simulation.
	CacheDir string
	// ManifestDir, when non-empty, receives one run manifest per executed
	// request (manifest_cohd_<pid>_<id>.json).
	ManifestDir string
	// DefaultTimeout bounds requests that name no deadline (0 = none).
	DefaultTimeout time.Duration
	// MaxTimeout caps requested deadlines (0 = uncapped).
	MaxTimeout time.Duration
	// Stats, when non-nil, is threaded into every run so the engines feed
	// the process's live telemetry counters.
	Stats *telemetry.RunStats
	// Cache, when non-nil, is the shared decoded-segment cache threaded
	// into every run: requests replaying the same indexed (MTR3) trace —
	// even with cold digests — share decoded segments instead of
	// re-decoding the file per request. Like Stats it cannot change a
	// result, so it plays no part in digests or result caching.
	Cache *trace.SegmentCache
	// Logger receives lifecycle messages; nil uses slog.Default().
	Logger *slog.Logger
	// RunFunc replaces sim.Run (tests only; nil = sim.Run).
	RunFunc func(context.Context, sim.RunConfig) (*sim.RunResult, error)
}

// Status is a job's lifecycle state.
type Status string

const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Job is one admitted run request. Fields are guarded by the server's
// mutex; read them through Snapshot. Done is closed when the job reaches
// a terminal status.
type Job struct {
	id      string
	digest  string
	cfg     sim.RunConfig
	cfgJSON json.RawMessage
	timeout time.Duration

	status    Status
	err       error
	result    json.RawMessage
	cacheHit  bool
	submitted time.Time
	started   time.Time
	finished  time.Time

	done chan struct{}
}

// ID returns the job's server-unique identifier.
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal status.
func (j *Job) Done() <-chan struct{} { return j.done }

// Snapshot is a consistent copy of a job's externally visible state.
type Snapshot struct {
	ID        string          `json:"id"`
	Status    Status          `json:"status"`
	Digest    string          `json:"digest,omitempty"`
	CacheHit  bool            `json:"cache_hit,omitempty"`
	Error     string          `json:"error,omitempty"`
	Submitted time.Time       `json:"submitted"`
	Started   *time.Time      `json:"started,omitempty"`
	Finished  *time.Time      `json:"finished,omitempty"`
	WallMS    float64         `json:"wall_ms,omitempty"`
	Config    json.RawMessage `json:"config,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`

	err error
}

// Err returns the job's failure (nil unless Status is StatusFailed). The
// error survives errors.Is against the sim/trace/… sentinels and
// context.DeadlineExceeded.
func (s Snapshot) Err() error { return s.err }

// maxFinishedJobs bounds the finished-job history kept for listing; older
// finished jobs are evicted in submission order.
const maxFinishedJobs = 1024

// Server executes admitted run requests on its worker pool.
type Server struct {
	cfg   Config
	log   *slog.Logger
	cache *cache

	baseCtx    context.Context
	baseCancel context.CancelFunc

	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job
	order    []string
	byDigest map[string]*Job
	seq      int

	m metrics
}

// New starts a server: the cache directory is created (when configured)
// and the worker pool begins draining the queue immediately.
func New(cfg Config) (*Server, error) {
	if cfg.Queue <= 0 {
		cfg.Queue = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if cfg.RunFunc == nil {
		cfg.RunFunc = sim.Run
	}
	s := &Server{
		cfg:      cfg,
		log:      cfg.Logger,
		queue:    make(chan *Job, cfg.Queue),
		jobs:     make(map[string]*Job),
		byDigest: make(map[string]*Job),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if cfg.CacheDir != "" {
		c, err := newCache(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
		s.cache = c
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Submit admits one run request. The config is validated first (the error
// wraps the same typed sentinels a direct sim.Run returns); then, in
// order: an identical queued/running request coalesces (the same *Job is
// returned), a cached digest is served as an already-done job, and
// otherwise the job is enqueued — or rejected with ErrQueueFull when the
// queue is at capacity, ErrDraining after Shutdown began. timeout <= 0
// uses Config.DefaultTimeout; Config.MaxTimeout caps either.
func (s *Server) Submit(cfg sim.RunConfig, timeout time.Duration, noCache bool) (*Job, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// In-process configs with runtime overrides have no digest; they skip
	// coalescing and caching rather than failing.
	digest, _ := cfg.Digest()
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	cfg.Stats = s.cfg.Stats
	cfg.Cache = s.cfg.Cache

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if digest != "" && !noCache {
		if prior := s.byDigest[digest]; prior != nil {
			s.m.coalesced.Add(1)
			return prior, nil
		}
		if s.cache != nil {
			if raw, ok := s.cache.get(digest); ok {
				s.m.cacheHits.Add(1)
				j := s.addJobLocked(cfg, digest, timeout)
				j.status = StatusDone
				j.cacheHit = true
				j.result = raw
				j.finished = j.submitted
				close(j.done)
				return j, nil
			}
			s.m.cacheMisses.Add(1)
		}
	}
	j := s.addJobLocked(cfg, digest, timeout)
	select {
	case s.queue <- j:
		if digest != "" {
			s.byDigest[digest] = j
		}
		s.m.accepted.Add(1)
		return j, nil
	default:
		s.removeJobLocked(j.id)
		s.m.rejected.Add(1)
		return nil, ErrQueueFull
	}
}

func (s *Server) addJobLocked(cfg sim.RunConfig, digest string, timeout time.Duration) *Job {
	s.seq++
	short := "local"
	if len(digest) >= 8 {
		short = digest[:8]
	}
	j := &Job{
		id:        fmt.Sprintf("r%06d-%s", s.seq, short),
		digest:    digest,
		cfg:       cfg,
		timeout:   timeout,
		status:    StatusQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	if blob, err := json.Marshal(cfg); err == nil {
		j.cfgJSON = blob
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	return j
}

func (s *Server) removeJobLocked(id string) {
	delete(s.jobs, id)
	if n := len(s.order); n > 0 && s.order[n-1] == id {
		s.order = s.order[:n-1]
	}
}

// evictLocked trims the finished-job history: while over budget and the
// oldest job is terminal, drop it. Queued/running jobs are never evicted.
func (s *Server) evictLocked() {
	for len(s.order) > maxFinishedJobs {
		j := s.jobs[s.order[0]]
		if j != nil && j.status != StatusDone && j.status != StatusFailed {
			return
		}
		delete(s.jobs, s.order[0])
		s.order = s.order[1:]
	}
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs snapshots the retained jobs in submission order.
func (s *Server) Jobs() []Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Snapshot, 0, len(s.order))
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil {
			out = append(out, s.snapshotLocked(j))
		}
	}
	return out
}

// Snapshot returns a consistent copy of one job's state.
func (s *Server) Snapshot(j *Job) Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked(j)
}

func (s *Server) snapshotLocked(j *Job) Snapshot {
	v := Snapshot{
		ID:        j.id,
		Status:    j.status,
		Digest:    j.digest,
		CacheHit:  j.cacheHit,
		Submitted: j.submitted,
		Config:    j.cfgJSON,
		Result:    j.result,
		err:       j.err,
	}
	if j.err != nil {
		v.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
		start := j.started
		if start.IsZero() {
			start = j.submitted
		}
		v.WallMS = float64(j.finished.Sub(start)) / float64(time.Millisecond)
	}
	return v
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *Job) {
	ctx := s.baseCtx
	cancel := context.CancelFunc(func() {})
	if j.timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, j.timeout)
	}
	defer cancel()

	s.mu.Lock()
	j.status = StatusRunning
	j.started = time.Now()
	s.mu.Unlock()
	s.m.inFlight.Add(1)

	res, err := s.cfg.RunFunc(ctx, j.cfg)
	var raw json.RawMessage
	if err == nil {
		raw, err = json.Marshal(res)
	}
	finished := time.Now()

	if err == nil && s.cache != nil && j.digest != "" {
		if cerr := s.cache.put(j.digest, j.cfgJSON, raw); cerr != nil {
			s.log.Warn("result cache write failed", "digest", j.digest, "err", cerr)
		}
	}
	s.writeManifest(j, res, err, finished)

	s.m.inFlight.Add(^uint64(0))
	s.m.observe(finished.Sub(j.started).Seconds())
	s.mu.Lock()
	if s.byDigest[j.digest] == j {
		delete(s.byDigest, j.digest)
	}
	j.finished = finished
	if err != nil {
		j.status = StatusFailed
		j.err = err
		s.m.failed.Add(1)
	} else {
		j.status = StatusDone
		j.result = raw
		s.m.completed.Add(1)
	}
	close(j.done)
	s.mu.Unlock()

	if err != nil {
		s.log.Warn("run failed", "id", j.id, "err", err)
	} else {
		s.log.Info("run finished", "id", j.id,
			"wall", finished.Sub(j.started).Round(time.Millisecond))
	}
}

// writeManifest seals one per-request manifest (when configured), named by
// pid+job id so concurrent and successive requests never clobber.
func (s *Server) writeManifest(j *Job, res *sim.RunResult, runErr error, finished time.Time) {
	if s.cfg.ManifestDir == "" {
		return
	}
	man := telemetry.NewManifest("cohd")
	man.Start = j.started
	man.Nodes = j.cfg.Nodes
	man.Seed = j.cfg.Seed
	man.Length = j.cfg.Length
	if j.cfg.Workload != "" {
		man.Apps = []string{j.cfg.Workload}
	}
	switch {
	case j.cfg.Policy != "":
		man.Policies = []string{j.cfg.Policy}
	case j.cfg.Protocol != "":
		man.Policies = []string{j.cfg.Protocol}
	}
	man.Shards = j.cfg.Shards
	man.TraceFile = j.cfg.TraceFile
	man.BlockSize = j.cfg.BlockSize
	man.Extra = map[string]any{
		"run_id":      j.id,
		"digest":      j.digest,
		"engine":      j.cfg.Engine,
		"cache_bytes": j.cfg.CacheBytes,
	}
	final := telemetry.Sample{Time: finished}
	if res != nil {
		final.Accesses = res.Accesses
	}
	man.Finish(final, runErr)
	data, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return
	}
	path := filepath.Join(s.cfg.ManifestDir, fmt.Sprintf("manifest_cohd_%d_%s.json", man.PID, j.id))
	if err := telemetry.WriteFileAtomic(path, append(data, '\n'), 0o644); err != nil {
		s.log.Warn("request manifest write failed", "id", j.id, "err", err)
	}
}

// Shutdown drains gracefully: admission stops (new Submits return
// ErrDraining), queued and in-flight jobs run to completion (sealing their
// manifests), and the call returns once the pool is idle. If ctx expires
// first the base context is cancelled — in-flight runs abort within a few
// thousand accesses and finish as failed — and ctx.Err() is returned.
// Idempotent; concurrent calls all wait.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-idle
		return ctx.Err()
	}
}

// Close aborts: cancels every in-flight run and waits for the pool.
func (s *Server) Close() error {
	s.baseCancel()
	return s.Shutdown(context.Background())
}
