package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"migratory/internal/sim"
)

// smallCfg is a run small enough to execute for real in tests.
func smallCfg(seed int64) sim.RunConfig {
	return sim.RunConfig{
		Engine:   sim.EngineDirectory,
		Workload: "MP3D",
		Policy:   "basic",
		Length:   5_000,
		Seed:     seed,
	}
}

// newTestServer builds a server whose lifecycle the test owns.
func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// blockingRun returns a RunFunc stub that parks until release is closed
// (or the run's context ends), counting nothing and returning an empty
// result.
func blockingRun(release <-chan struct{}) func(context.Context, sim.RunConfig) (*sim.RunResult, error) {
	return func(ctx context.Context, _ sim.RunConfig) (*sim.RunResult, error) {
		select {
		case <-release:
			return &sim.RunResult{Engine: sim.EngineDirectory, Accesses: 1}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func compactJSON(t *testing.T, raw []byte) string {
	t.Helper()
	var buf bytes.Buffer
	if err := json.Compact(&buf, raw); err != nil {
		t.Fatalf("compacting %q: %v", raw, err)
	}
	return buf.String()
}

// TestSubmitPollResult drives the golden HTTP path — submit, poll, fetch
// the result — and checks the served bytes match a direct sim.Run of the
// same config.
func TestSubmitPollResult(t *testing.T) {
	s := newTestServer(t, Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cfg := smallCfg(1)
	body, _ := json.Marshal(submitRequest{Config: cfg})
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.ID == "" || snap.Status != StatusQueued && snap.Status != StatusRunning && snap.Status != StatusDone {
		t.Fatalf("bad submit snapshot: %+v", snap)
	}

	resp, err = http.Get(ts.URL + "/v1/runs/" + snap.ID + "?wait=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("wait status = %d: %s", resp.StatusCode, b)
	}
	var done Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&done); err != nil {
		t.Fatal(err)
	}
	if done.Status != StatusDone {
		t.Fatalf("final status = %s (%s)", done.Status, done.Error)
	}

	direct, err := sim.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	dj, _ := json.Marshal(direct)
	if got, want := compactJSON(t, done.Result), string(dj); got != want {
		t.Fatalf("daemon result diverges from direct run:\n%s\n%s", got, want)
	}

	// The list endpoint knows the job too.
	resp, err = http.Get(ts.URL + "/v1/runs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Runs          []Snapshot `json:"runs"`
		QueueCapacity int        `json:"queue_capacity"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Runs) != 1 || list.Runs[0].ID != snap.ID || list.QueueCapacity != 64 {
		t.Fatalf("bad list: %+v", list)
	}
}

// TestQueueFull429 saturates a deterministic single-worker server: one run
// occupies the worker, Queue more fill the queue, and the next submission
// must be rejected with 429 and a Retry-After header.
func TestQueueFull429(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, Config{Workers: 1, Queue: 2, RunFunc: blockingRun(release)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	submit := func(seed int64) *http.Response {
		body, _ := json.Marshal(submitRequest{Config: smallCfg(seed), NoCache: true})
		resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Occupy the worker, then wait until it has dequeued (leaving the
	// queue empty) before filling the queue deterministically.
	first := submit(1)
	first.Body.Close()
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", first.StatusCode)
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) != 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never dequeued the first job")
		}
		time.Sleep(time.Millisecond)
	}
	for seed := int64(2); seed <= 3; seed++ {
		resp := submit(seed)
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("queued submit seed=%d = %d", seed, resp.StatusCode)
		}
	}

	over := submit(4)
	defer over.Body.Close()
	if over.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", over.StatusCode)
	}
	if over.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var e errorResponse
	if err := json.NewDecoder(over.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "queue full") {
		t.Fatalf("429 body: %+v, %v", e, err)
	}

	close(release) // let the admitted runs finish; Cleanup drains
}

// TestDeadline504 checks a run that outlives its requested deadline is
// reported as failed with context.DeadlineExceeded, surfaced over HTTP as
// 504.
func TestDeadline504(t *testing.T) {
	never := make(chan struct{})
	defer close(never)
	s := newTestServer(t, Config{Workers: 1, RunFunc: blockingRun(never)})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body, _ := json.Marshal(submitRequest{Config: smallCfg(1), Timeout: "30ms", Wait: true})
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("status = %d, want 504: %s", resp.StatusCode, b)
	}
	var snap Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Status != StatusFailed || !strings.Contains(snap.Error, "deadline") {
		t.Fatalf("snapshot: %+v", snap)
	}

	// In-process, the sentinel itself survives.
	j, ok := s.Job(snap.ID)
	if !ok {
		t.Fatal("job vanished")
	}
	if err := s.Snapshot(j).Err(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("job error = %v, want DeadlineExceeded", err)
	}
}

// TestDrain checks the SIGTERM path: after Shutdown begins, new
// submissions are refused (ErrDraining / HTTP 503) while queued and
// in-flight jobs run to completion before Shutdown returns.
func TestDrain(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, Config{Workers: 1, Queue: 4, RunFunc: blockingRun(release)})

	var jobs []*Job
	for seed := int64(1); seed <= 3; seed++ {
		j, err := s.Submit(smallCfg(seed), 0, true)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(context.Background()) }()

	// Draining must refuse new work (poll: the flag flips inside Shutdown).
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := s.Submit(smallCfg(99), 0, true)
		if errors.Is(err, ErrDraining) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("Submit after Shutdown = %v, want ErrDraining", err)
		}
		time.Sleep(time.Millisecond)
	}

	// The HTTP layer maps it to 503 + Retry-After.
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(submitRequest{Config: smallCfg(98)})
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining submit = %d (Retry-After %q), want 503", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown = %v", err)
	}
	for i, j := range jobs {
		if snap := s.Snapshot(j); snap.Status != StatusDone {
			t.Fatalf("job %d finished drain as %s (%s)", i, snap.Status, snap.Error)
		}
	}
}

// TestShutdownDeadlineAborts checks the drain timeout: when the drain
// context expires, in-flight runs are cancelled and Shutdown reports the
// context error.
func TestShutdownDeadlineAborts(t *testing.T) {
	never := make(chan struct{})
	defer close(never)
	s := newTestServer(t, Config{Workers: 1, RunFunc: blockingRun(never)})
	j, err := s.Submit(smallCfg(1), 0, true)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	if snap := s.Snapshot(j); snap.Status != StatusFailed || !errors.Is(snap.Err(), context.Canceled) {
		t.Fatalf("aborted job: %+v (err %v)", snap, snap.Err())
	}
}

// TestCacheHitAndMetrics runs the same config twice against a real cache
// directory: the repeat must be served as an already-done cache hit with
// byte-identical results, and the hit must show in /metrics.
func TestCacheHitAndMetrics(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{Workers: 1, CacheDir: dir})

	cfg := smallCfg(1)
	j1, err := s.Submit(cfg, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	<-j1.Done()
	first := s.Snapshot(j1)
	if first.Status != StatusDone || first.CacheHit {
		t.Fatalf("first run: %+v", first)
	}

	j2, err := s.Submit(cfg, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j2.Done():
	case <-time.After(time.Second):
		t.Fatal("cache hit was not immediate")
	}
	second := s.Snapshot(j2)
	if second.Status != StatusDone || !second.CacheHit {
		t.Fatalf("second run not a cache hit: %+v", second)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatal("cached result bytes diverge from the original")
	}

	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache dir entries: %v, %v", entries, err)
	}

	var buf bytes.Buffer
	s.WriteMetrics(&buf)
	m := buf.String()
	for _, want := range []string{
		"cohd_cache_hits_total 1",
		"cohd_cache_misses_total 1",
		"cohd_runs_completed_total 1",
		"cohd_request_wall_seconds_count 1",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q:\n%s", want, m)
		}
	}
}

// TestCacheHitAcrossDecoders checks that configs differing only in decode
// parallelism share one cache entry: Decoders is a throughput knob with no
// effect on results, so the digest strips it and a client that replays a
// trace with -decoders 8 is served the run another client computed with
// -decoders 1.
func TestCacheHitAcrossDecoders(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1, CacheDir: t.TempDir()})

	cfg := smallCfg(1)
	cfg.Decoders = 1
	j1, err := s.Submit(cfg, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	<-j1.Done()
	first := s.Snapshot(j1)
	if first.Status != StatusDone || first.CacheHit {
		t.Fatalf("first run: %+v", first)
	}

	cfg.Decoders = 8
	j2, err := s.Submit(cfg, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-j2.Done():
	case <-time.After(time.Second):
		t.Fatal("cross-decoders cache hit was not immediate")
	}
	second := s.Snapshot(j2)
	if second.Status != StatusDone || !second.CacheHit {
		t.Fatalf("run with different Decoders missed the cache: %+v", second)
	}
	if !bytes.Equal(first.Result, second.Result) {
		t.Fatal("cached result bytes diverge from the original")
	}
}

// TestCoalescing checks that an identical in-flight submission returns the
// same job instead of queueing a duplicate run.
func TestCoalescing(t *testing.T) {
	release := make(chan struct{})
	s := newTestServer(t, Config{Workers: 1, Queue: 4, RunFunc: blockingRun(release)})
	cfg := smallCfg(1)
	j1, err := s.Submit(cfg, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(cfg, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Fatal("identical in-flight submissions were not coalesced")
	}
	close(release)
	<-j1.Done()
}

// TestSubmitValidation checks that a bad config is rejected before
// admission with the same typed error (and message) a direct sim.Run
// produces.
func TestSubmitValidation(t *testing.T) {
	s := newTestServer(t, Config{Workers: 1})
	bad := sim.RunConfig{Engine: "quantum", Workload: "MP3D"}
	_, err := s.Submit(bad, 0, false)
	if !errors.Is(err, sim.ErrUnknownEngine) {
		t.Fatalf("Submit = %v, want ErrUnknownEngine", err)
	}
	if want := bad.Validate().Error(); err.Error() != want {
		t.Fatalf("message drift: %q vs %q", err, want)
	}
}

// TestManifestPerRequest checks one sealed manifest lands per executed
// request, named by pid and job id.
func TestManifestPerRequest(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{Workers: 2, ManifestDir: dir})
	var ids []string
	for seed := int64(1); seed <= 2; seed++ {
		j, err := s.Submit(smallCfg(seed), 0, true)
		if err != nil {
			t.Fatal(err)
		}
		<-j.Done()
		ids = append(ids, j.ID())
	}
	for _, id := range ids {
		pat := filepath.Join(dir, fmt.Sprintf("manifest_cohd_*_%s.json", id))
		m, err := filepath.Glob(pat)
		if err != nil || len(m) != 1 {
			t.Fatalf("manifest for %s: %v, %v", id, m, err)
		}
		blob, err := os.ReadFile(m[0])
		if err != nil {
			t.Fatal(err)
		}
		var man struct {
			Outcome  string         `json:"outcome"`
			Extra    map[string]any `json:"extra"`
			Accesses uint64         `json:"accesses"`
		}
		if err := json.Unmarshal(blob, &man); err != nil {
			t.Fatal(err)
		}
		if man.Outcome != "ok" || man.Extra["run_id"] != id || man.Accesses == 0 {
			t.Fatalf("manifest %s: %+v", m[0], man)
		}
	}
}
