package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"time"

	"migratory/internal/sim"
)

// maxRequestBody bounds run-request bodies; configs are small JSON objects.
const maxRequestBody = 1 << 20

// submitRequest is the POST /v1/runs envelope.
type submitRequest struct {
	// Config is the run description (sim.RunConfig wire fields).
	Config sim.RunConfig `json:"config"`
	// Timeout is the per-request deadline as a Go duration string
	// ("30s", "2m"); empty uses the server default.
	Timeout string `json:"timeout,omitempty"`
	// Wait blocks the request until the run finishes and returns the
	// result inline (poll GET /v1/runs/{id} otherwise).
	Wait bool `json:"wait,omitempty"`
	// NoCache bypasses the result cache and in-flight coalescing.
	NoCache bool `json:"no_cache,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the service's HTTP API:
//
//	POST /v1/runs      submit a run (429 when the queue is full, 503 while
//	                   draining, 400 on a config the CLI would reject too)
//	GET  /v1/runs      list retained jobs plus queue state
//	GET  /v1/runs/{id} one job; ?wait=1 blocks until it is terminal
//
// Patterns carry the /v1 prefix, so the handler mounts directly on a mux
// routing "/v1/" (no StripPrefix), e.g. the telemetry server's.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs", s.handleList)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	var req submitRequest
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	var timeout time.Duration
	if req.Timeout != "" {
		var err error
		if timeout, err = time.ParseDuration(req.Timeout); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad timeout: " + err.Error()})
			return
		}
	}
	j, err := s.Submit(req.Config, timeout, req.NoCache)
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: err.Error()})
		return
	case err != nil:
		// Validation errors carry the exact message a CLI run would print.
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	if req.Wait {
		s.waitAndWrite(w, r, j)
		return
	}
	snap := s.Snapshot(j)
	code := http.StatusAccepted
	if snap.Status == StatusDone {
		code = http.StatusOK // cache hit or coalesced onto a finished run
	}
	writeJSON(w, code, snap)
}

// waitAndWrite blocks until the job is terminal (or the client goes away)
// and writes it with the status code its outcome maps to: 200 done, 504
// deadline exceeded, 500 other failures.
func (s *Server) waitAndWrite(w http.ResponseWriter, r *http.Request, j *Job) {
	select {
	case <-j.Done():
	case <-r.Context().Done():
		return
	}
	snap := s.Snapshot(j)
	code := http.StatusOK
	if snap.Status == StatusFailed {
		if errors.Is(snap.Err(), context.DeadlineExceeded) {
			code = http.StatusGatewayTimeout
		} else {
			code = http.StatusInternalServerError
		}
	}
	writeJSON(w, code, snap)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	depth, capacity, draining := len(s.queue), cap(s.queue), s.draining
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"runs":           s.Jobs(),
		"queue_depth":    depth,
		"queue_capacity": capacity,
		"draining":       draining,
	})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "unknown run id"})
		return
	}
	q := r.URL.Query().Get("wait")
	if q == "1" || q == "true" {
		s.waitAndWrite(w, r, j)
		return
	}
	writeJSON(w, http.StatusOK, s.Snapshot(j))
}
