package migratory_test

import (
	"strings"
	"testing"

	"migratory"
)

// TestQuickstartFlow exercises the documented public API path end to end:
// generate a workload, build a directory system, run it, read the results.
func TestQuickstartFlow(t *testing.T) {
	accs, err := migratory.GenerateWorkload("MP3D", 16, 1, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(accs) < 30_000 {
		t.Fatalf("trace too short: %d", len(accs))
	}
	geom := migratory.MustGeometry(16, 4096)
	var msgs []migratory.Msgs
	for _, pol := range migratory.Policies() {
		sys, err := migratory.NewDirectorySystem(migratory.DirectoryConfig{
			Nodes:          16,
			Geometry:       geom,
			Policy:         pol,
			Placement:      migratory.UsageBasedPlacement(accs, geom, 16),
			CheckCoherence: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Run(accs); err != nil {
			t.Fatal(err)
		}
		msgs = append(msgs, sys.Messages())
	}
	if len(msgs) != 4 {
		t.Fatalf("got %d results", len(msgs))
	}
	for i := 1; i < 4; i++ {
		if migratory.Reduction(msgs[0], msgs[i]) <= 0 {
			t.Errorf("policy %d did not reduce messages: %v vs %v", i, msgs[i], msgs[0])
		}
	}
}

func TestFacadePolicies(t *testing.T) {
	if migratory.Conventional.Adaptive || !migratory.Aggressive.InitialMigratory {
		t.Fatal("policy aliases wrong")
	}
	p, err := migratory.PolicyByName("conservative")
	if err != nil || p.Hysteresis != 2 {
		t.Fatalf("PolicyByName: %+v, %v", p, err)
	}
}

func TestFacadeGeometryAndCost(t *testing.T) {
	if _, err := migratory.NewGeometry(24, 4096); err == nil {
		t.Fatal("bad geometry accepted")
	}
	g := migratory.MustGeometry(64, 4096)
	if g.BlockSize() != 64 {
		t.Fatal("geometry block size")
	}
	m := migratory.MessageCost(migratory.CostOp(0), false, true, 1) // remote dirty read miss
	if m.Short != 2 || m.Data != 2 {
		t.Fatalf("MessageCost = %+v", m)
	}
}

func TestFacadeWorkloads(t *testing.T) {
	profs := migratory.WorkloadProfiles()
	if len(profs) != 5 {
		t.Fatalf("profiles = %d", len(profs))
	}
	if _, err := migratory.WorkloadByName("Water"); err != nil {
		t.Fatal(err)
	}
	custom := migratory.WorkloadProfile{
		Name: "custom",
		Segments: []migratory.WorkloadSegment{
			{Name: "m", Kind: migratory.Migratory, Objects: 32, ObjWords: 4, Weight: 1},
		},
	}
	accs, err := migratory.GenerateFromProfile(custom, 4, 2, 2_000)
	if err != nil || len(accs) < 2_000 {
		t.Fatalf("custom generate: %d, %v", len(accs), err)
	}
	st := migratory.AnalyzeTrace(accs, migratory.MustGeometry(16, 4096))
	if st.MigratoryBlocks == 0 {
		t.Fatal("custom migratory profile produced no migratory blocks")
	}
}

func TestFacadeBus(t *testing.T) {
	sys, err := migratory.NewBusSystem(migratory.BusConfig{
		Nodes:          4,
		Geometry:       migratory.MustGeometry(16, 4096),
		Protocol:       migratory.BusAdaptive,
		CheckCoherence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	accs := []migratory.Access{
		{Node: 0, Kind: migratory.Write, Addr: 0},
		{Node: 1, Kind: migratory.Read, Addr: 0},
		{Node: 1, Kind: migratory.Write, Addr: 0},
		{Node: 2, Kind: migratory.Read, Addr: 0},
	}
	if err := sys.Run(accs); err != nil {
		t.Fatal(err)
	}
	c := sys.Counts()
	if c.Total() == 0 || sys.Migrations() != 1 {
		t.Fatalf("counts = %+v migrations = %d", c, sys.Migrations())
	}
	if migratory.BusMESI.Adaptive() || !migratory.BusAdaptiveMigrateFirst.Adaptive() {
		t.Fatal("protocol predicates wrong")
	}
	if migratory.BusSymmetry.String() != "symmetry" {
		t.Fatal("protocol name")
	}
}

func TestFacadePlacement(t *testing.T) {
	geom := migratory.MustGeometry(16, 4096)
	accs := []migratory.Access{{Node: 3, Kind: migratory.Read, Addr: 0}}
	if migratory.RoundRobinPlacement(16).Home(0) != 0 {
		t.Fatal("round robin")
	}
	if migratory.FirstTouchPlacement(accs, geom, 16).Home(0) != 3 {
		t.Fatal("first touch")
	}
	if migratory.UsageBasedPlacement(accs, geom, 16).Home(0) != 3 {
		t.Fatal("usage based")
	}
}

func TestFacadeExperiments(t *testing.T) {
	opts := migratory.ExperimentOptions{Nodes: 16, Seed: 3, Length: 20_000, Apps: []string{"Water"}}
	sw, err := migratory.Table3(opts)
	if err != nil {
		t.Fatal(err)
	}
	out := sw.Render().String()
	if !strings.Contains(out, "Water") {
		t.Fatalf("render:\n%s", out)
	}
	bus, err := migratory.BusComparison(opts, []int{64 << 10}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bus.Rows[64<<10]) != 1 {
		t.Fatal("bus rows")
	}
	rows, err := migratory.ExecutionTime(opts, migratory.Basic, 0)
	if err != nil || len(rows) != 1 {
		t.Fatalf("exec: %v, %d rows", err, len(rows))
	}
}

func TestFacadeTiming(t *testing.T) {
	p := migratory.DefaultTimingParams()
	if p.HopCycles == 0 {
		t.Fatal("default params empty")
	}
	accs := []migratory.Access{
		{Node: 0, Kind: migratory.Read, Addr: 0},
		{Node: 0, Kind: migratory.Write, Addr: 0},
	}
	r, err := migratory.RunTimed(accs, migratory.TimingConfig{
		Nodes:    4,
		Geometry: migratory.MustGeometry(16, 4096),
		Policy:   migratory.Basic,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Cycles == 0 || r.Accesses != 2 {
		t.Fatalf("result = %+v", r)
	}
}

func TestFacadeExtensions(t *testing.T) {
	geom := migratory.MustGeometry(16, 4096)

	// Stenström policy via the facade.
	if !migratory.Stenstrom.DeclassifyOnWriteMiss {
		t.Fatal("Stenstrom alias wrong")
	}

	// Workload scaling.
	base, err := migratory.WorkloadByName("Water")
	if err != nil {
		t.Fatal(err)
	}
	big, err := migratory.ScaleWorkload(base, 2)
	if err != nil || big.FootprintKB() <= base.FootprintKB() {
		t.Fatalf("ScaleWorkload: %v (%d vs %d KB)", err, big.FootprintKB(), base.FootprintKB())
	}

	// Off-line oracle construction and use.
	accs, err := migratory.GenerateWorkload("MP3D", 16, 5, 20_000)
	if err != nil {
		t.Fatal(err)
	}
	oracle := migratory.MigratoryOracle(accs, geom)
	sys, err := migratory.NewDirectorySystem(migratory.DirectoryConfig{
		Nodes:           16,
		Geometry:        geom,
		Policy:          migratory.Conventional,
		Placement:       migratory.UsageBasedPlacement(accs, geom, 16),
		MigratoryOracle: oracle,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(accs); err != nil {
		t.Fatal(err)
	}
	if sys.Counters().Migrations == 0 {
		t.Fatal("oracle never migrated on an MP3D trace")
	}

	// Detection accuracy via the facade.
	opts := migratory.ExperimentOptions{Nodes: 16, Seed: 5, Length: 20_000, Apps: []string{"MP3D"}}
	acc, err := migratory.ClassifierAccuracy("MP3D", opts, 0)
	if err != nil || len(acc) != 3 {
		t.Fatalf("ClassifierAccuracy: %v (%d rows)", err, len(acc))
	}
	if acc[1].Recall() < 0.5 {
		t.Fatalf("basic recall = %.2f", acc[1].Recall())
	}

	// Node-count sweep via the facade.
	rows, err := migratory.NodeCountSweep("MP3D", []int{8}, opts)
	if err != nil || len(rows) != 1 || rows[0].Reductions[2] <= 0 {
		t.Fatalf("NodeCountSweep: %v %+v", err, rows)
	}

	// Limited directory + drop-notification flags through the facade type.
	lim, err := migratory.NewDirectorySystem(migratory.DirectoryConfig{
		Nodes:                 16,
		Geometry:              geom,
		Policy:                migratory.Basic,
		Placement:             migratory.RoundRobinPlacement(16),
		DirPointers:           1,
		FreeDropNotifications: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := lim.Run(accs[:5_000]); err != nil {
		t.Fatal(err)
	}

	// Berkeley bus protocol via the facade.
	bus, err := migratory.NewBusSystem(migratory.BusConfig{
		Nodes: 4, Geometry: geom, Protocol: migratory.BusBerkeley, CheckCoherence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.Run([]migratory.Access{
		{Node: 0, Kind: migratory.Write, Addr: 0},
		{Node: 1, Kind: migratory.Read, Addr: 0},
	}); err != nil {
		t.Fatal(err)
	}
}
