module migratory

go 1.22
