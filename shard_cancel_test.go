package migratory

// Cancellation tests for set-sharded execution: cancelling the context
// mid-batch must surface ctx.Err() promptly from the sharded run loops and
// must not leak demux producer/consumer goroutines — the demux stage owns
// one goroutine per shard plus pooled batch buffers, all of which have to
// be torn down on the abort path, not just on clean EOF.

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// cancelAfterSource cancels a context after limit accesses have been
// pulled, then keeps delivering, so cancellation deterministically lands
// mid-stream no matter how fast the machine is. It deliberately implements
// only per-access Next (no NextBatch), which FillBatch handles.
type cancelAfterSource struct {
	inner  TraceSource
	n      int
	limit  int
	cancel context.CancelFunc
}

func (c *cancelAfterSource) Next() (Access, error) {
	if c.n == c.limit {
		c.cancel()
	}
	c.n++
	return c.inner.Next()
}

func (c *cancelAfterSource) Reset() error { c.n = 0; return c.inner.Reset() }
func (c *cancelAfterSource) Close() error { return c.inner.Close() }

// cancelTrace is a workload long enough that the run is still in flight
// when the cancel lands a few batches in.
func cancelTrace(t *testing.T) []Access {
	t.Helper()
	accs, err := GenerateWorkload("MP3D", 16, 1993, 200_000)
	if err != nil {
		t.Fatal(err)
	}
	return accs
}

// demuxGoroutines counts live goroutines currently inside the trace
// package's demux machinery.
func demuxGoroutines() int {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return strings.Count(string(buf[:n]), "internal/trace.DemuxStats")
}

// waitNoDemuxGoroutines polls until every demux goroutine has exited; a
// leak fails the test with the count still live.
func waitNoDemuxGoroutines(t *testing.T) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := demuxGoroutines(); n == 0 {
			return
		} else if time.Now().After(deadline) {
			t.Fatalf("%d demux goroutine(s) still live 5s after the run returned", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// runCancelled drives run with a context that cancels mid-stream and
// checks the three properties: the error is ctx.Err(), it surfaces
// promptly (not after draining the whole trace), and no demux goroutine
// outlives the call.
func runCancelled(t *testing.T, accs []Access, run func(ctx context.Context, src TraceSource) error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := &cancelAfterSource{
		inner:  NewSliceTraceSource(accs),
		limit:  3 * DefaultTraceBatchSize, // a few batches in: mid-run, deterministic
		cancel: cancel,
	}
	done := make(chan error, 1)
	go func() { done <- run(ctx, src) }()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled run returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled run did not return within 10s")
	}
	if src.n >= len(accs) {
		t.Fatalf("source fully drained (%d accesses) despite mid-stream cancellation", src.n)
	}
	waitNoDemuxGoroutines(t)
}

func TestShardedDirectoryCancellation(t *testing.T) {
	accs := cancelTrace(t)
	for _, shards := range []int{2, 4} {
		sys, err := NewShardedDirectorySystem(DirectoryConfig{
			Nodes:     16,
			Geometry:  MustGeometry(16, 4096),
			Policy:    Basic,
			Placement: RoundRobinPlacement(16),
		}, shards, nil)
		if err != nil {
			t.Fatalf("x%d: %v", shards, err)
		}
		runCancelled(t, accs, sys.RunSource)
	}
}

func TestShardedBusCancellation(t *testing.T) {
	accs := cancelTrace(t)
	sys, err := NewShardedBusSystem(BusConfig{
		Nodes:    16,
		Geometry: MustGeometry(16, 4096),
		Protocol: BusAdaptive,
	}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	runCancelled(t, accs, sys.RunSource)
}

func TestShardedSweepCancellation(t *testing.T) {
	// A whole sweep with Shards >= 2: cancel while cells are in flight and
	// require the driver to return ctx.Err() without leaking the cells'
	// demux pipelines.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts := ExperimentOptions{
		Context: ctx,
		Apps:    []string{"MP3D"},
		Length:  200_000,
		Shards:  2,
	}
	time.AfterFunc(10*time.Millisecond, cancel)
	_, err := Table2(opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
	waitNoDemuxGoroutines(t)
}
