package migratory

import (
	"math/rand"
	"testing"
	"testing/quick"

	"migratory/internal/core"
	"migratory/internal/directory"
	"migratory/internal/memory"
	"migratory/internal/placement"
	"migratory/internal/snoop"
	"migratory/internal/trace"
	"migratory/internal/workload"
)

// randomTrace builds an arbitrary access sequence over a small, highly
// contended address space: the harshest conditions for protocol state
// machines.
func randomTrace(seed int64, n int, nodes, blocks int) []trace.Access {
	rng := rand.New(rand.NewSource(seed))
	accs := make([]trace.Access, n)
	for i := range accs {
		accs[i] = trace.Access{
			Node: memory.NodeID(rng.Intn(nodes)),
			Kind: trace.Kind(rng.Intn(2)),
			Addr: memory.Addr(rng.Intn(blocks) * 16),
		}
	}
	return accs
}

// TestDirectoryCoherenceUnderRandomTraces: every policy preserves the
// structural invariants and never lets a processor read a stale version,
// under arbitrary interleavings, with both finite and infinite caches.
func TestDirectoryCoherenceUnderRandomTraces(t *testing.T) {
	geom := memory.MustGeometry(16, 4096)
	f := func(seed int64) bool {
		accs := randomTrace(seed, 600, 6, 24)
		for _, pol := range core.Policies() {
			for _, cacheBytes := range []int{0, 128} {
				sys, err := directory.New(directory.Config{
					Nodes: 6, Geometry: geom, CacheBytes: cacheBytes, Assoc: 2,
					Policy: pol, Placement: placement.NewRoundRobin(6),
					CheckCoherence: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				for i, a := range accs {
					if err := sys.Access(a); err != nil {
						t.Logf("seed %d policy %s cache %d access %d (%v): %v",
							seed, pol.Name, cacheBytes, i, a, err)
						return false
					}
					if i%16 == 0 {
						if err := sys.CheckInvariants(); err != nil {
							t.Logf("seed %d policy %s cache %d after access %d: %v",
								seed, pol.Name, cacheBytes, i, err)
							return false
						}
					}
				}
				if err := sys.CheckInvariants(); err != nil {
					t.Logf("seed %d policy %s cache %d final: %v", seed, pol.Name, cacheBytes, err)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestSnoopCoherenceUnderRandomTraces is the bus-side twin.
func TestSnoopCoherenceUnderRandomTraces(t *testing.T) {
	geom := memory.MustGeometry(16, 4096)
	protos := []snoop.Protocol{snoop.MESI, snoop.Adaptive, snoop.AdaptiveMigrateFirst, snoop.Symmetry, snoop.Berkeley, snoop.UpdateOnce}
	f := func(seed int64) bool {
		accs := randomTrace(seed, 600, 6, 24)
		for _, p := range protos {
			for _, h := range []int{1, 2} {
				if !p.Adaptive() && h != 1 {
					continue
				}
				sys, err := snoop.New(snoop.Config{
					Nodes: 6, Geometry: geom, CacheBytes: 128, Assoc: 2,
					Protocol: p, Hysteresis: h, CheckCoherence: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				for i, a := range accs {
					if err := sys.Access(a); err != nil {
						t.Logf("seed %d proto %s h%d access %d (%v): %v", seed, p, h, i, a, err)
						return false
					}
					if i%16 == 0 {
						if err := sys.CheckInvariants(); err != nil {
							t.Logf("seed %d proto %s h%d after access %d: %v", seed, p, h, i, err)
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestAdaptiveNeverWorseOnPaperWorkloads asserts the §6 claim for the
// directory protocols: "In our trace-driven simulations, it never sent more
// messages than a standard replicate-on-read-miss protocol" — checked per
// application across all three adaptive variants.
func TestAdaptiveNeverWorseOnPaperWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("full-app sweep")
	}
	geom := memory.MustGeometry(16, 4096)
	for _, prof := range workload.Profiles() {
		accs, err := workload.Generate(prof, 16, 7, 80_000)
		if err != nil {
			t.Fatal(err)
		}
		pl := placement.UsageBased(accs, geom, 16)
		var base int
		for i, pol := range core.Policies() {
			sys, err := directory.New(directory.Config{
				Nodes: 16, Geometry: geom, CacheBytes: 64 << 10,
				Policy: pol, Placement: pl,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := sys.Run(accs); err != nil {
				t.Fatal(err)
			}
			total := sys.Messages().Total()
			if i == 0 {
				base = total
				continue
			}
			if total > base {
				t.Errorf("%s: %s sent %d messages, conventional %d", prof.Name, pol.Name, total, base)
			}
		}
	}
}

// TestDirectoryAndBusAgreeOnDirection: on the five applications, the
// directory-based and bus-based adaptive protocols must agree about who
// wins and roughly how strongly (the paper: "the two classes of protocol
// behave similarly").
func TestDirectoryAndBusAgreeOnDirection(t *testing.T) {
	if testing.Short() {
		t.Skip("full-app sweep")
	}
	geom := memory.MustGeometry(16, 4096)
	for _, prof := range workload.Profiles() {
		accs, err := workload.Generate(prof, 16, 7, 80_000)
		if err != nil {
			t.Fatal(err)
		}
		pl := placement.UsageBased(accs, geom, 16)

		var dirRed float64
		{
			var base int
			for i, pol := range []core.Policy{core.Conventional, core.Basic} {
				sys, err := directory.New(directory.Config{
					Nodes: 16, Geometry: geom, CacheBytes: 64 << 10, Policy: pol, Placement: pl,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := sys.Run(accs); err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					base = sys.Messages().Total()
				} else {
					dirRed = 100 * (1 - float64(sys.Messages().Total())/float64(base))
				}
			}
		}
		var busRed float64
		{
			var base uint64
			for i, p := range []snoop.Protocol{snoop.MESI, snoop.Adaptive} {
				sys, err := snoop.New(snoop.Config{
					Nodes: 16, Geometry: geom, CacheBytes: 64 << 10, Protocol: p,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := sys.Run(accs); err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					base = sys.Counts().Total()
				} else {
					busRed = 100 * (1 - float64(sys.Counts().Total())/float64(base))
				}
			}
		}
		if dirRed > 0 != (busRed > -1) {
			t.Errorf("%s: directory %.1f%% and bus %.1f%% disagree on direction", prof.Name, dirRed, busRed)
		}
		if dirRed > 25 && busRed < 10 {
			t.Errorf("%s: directory strong (%.1f%%) but bus weak (%.1f%%)", prof.Name, dirRed, busRed)
		}
	}
}
