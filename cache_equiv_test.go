package migratory

// Equivalence tests for the shared decoded-segment cache (TraceSegmentCache):
// a cached replay must be bit-identical to an uncached one across both
// untimed engines, several policies and protocols, sequential and sharded
// execution, and any decoder count — the cache is a throughput knob, never
// a semantics knob. Run under -race (make race / make ci) these double as
// the concurrency tests for the pin/eviction machinery.

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"migratory/internal/trace"
)

// writeEquivTraceFile materializes the shared equivalence workload as an
// MTR3 file with small segments, so even this modest trace spans dozens of
// cacheable units.
func writeEquivTraceFile(t testing.TB, segBytes int) (string, []Access) {
	t.Helper()
	accs, err := GenerateWorkload("MP3D", 16, 1993, 25_000)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	w := trace.NewWriterOptions(&buf, TraceHeader{BlockSize: 16, PageSize: 4096, Nodes: 16},
		trace.WriterOptions{SegmentBytes: segBytes})
	for _, a := range accs {
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "equiv.mtr")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path, accs
}

// resultJSON runs cfg and returns the canonical JSON encoding of its
// result — the same bytes the cohd result cache stores, so equality here is
// the service's notion of bit-identity.
func resultJSON(t *testing.T, cfg RunConfig) string {
	t.Helper()
	res, err := Run(nil, cfg)
	if err != nil {
		t.Fatalf("%s/%s%s shards=%d decoders=%d: %v",
			cfg.Engine, cfg.Policy, cfg.Protocol, cfg.Shards, cfg.Decoders, err)
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestSegmentCacheRunEquivalence sweeps {directory, bus} engines, three
// variants each, shards {1, 8}, and decoders {1, 4}, comparing every cached
// cell against its uncached twin. One cache is shared across the whole
// matrix — exactly how a sweep or a cohd process uses it — and must see
// both traffic and reuse by the end.
func TestSegmentCacheRunEquivalence(t *testing.T) {
	path, _ := writeEquivTraceFile(t, 4<<10)
	cache := NewTraceSegmentCache(256 << 20)

	cells := []struct {
		engine, policy, protocol string
	}{
		{EngineDirectory, "conventional", ""},
		{EngineDirectory, "basic", ""},
		{EngineDirectory, "aggressive", ""},
		{EngineBus, "", "mesi"},
		{EngineBus, "", "adaptive"},
		{EngineBus, "", "berkeley"},
	}
	for _, cell := range cells {
		for _, shards := range []int{1, 8} {
			for _, decoders := range []int{1, 4} {
				cfg := RunConfig{
					Engine:     cell.engine,
					TraceFile:  path,
					Nodes:      16,
					CacheBytes: 16 << 10, // finite per-node caches: eviction paths run too
					Policy:     cell.policy,
					Protocol:   cell.protocol,
					Shards:     shards,
					Decoders:   decoders,
				}
				want := resultJSON(t, cfg)
				cfg.Cache = cache
				if got := resultJSON(t, cfg); got != want {
					t.Errorf("%s/%s%s shards=%d decoders=%d: cached result diverged\n got %s\nwant %s",
						cell.engine, cell.policy, cell.protocol, shards, decoders, got, want)
				}
			}
		}
	}
	st := cache.Stats()
	if st.Misses == 0 {
		t.Fatal("the cached matrix never decoded through the cache")
	}
	if st.Hits == 0 {
		t.Fatal("the cached matrix never reused a decoded segment")
	}
	if st.PinnedBytes != 0 {
		t.Fatalf("%d bytes still pinned after every run closed its source", st.PinnedBytes)
	}
}

// TestSegmentCacheLegacyBypass pins the v1/v2 fallback: unindexed traces
// replay identically with a cache configured, and the cache itself sees
// zero traffic — no keys, no misses, no residency.
func TestSegmentCacheLegacyBypass(t *testing.T) {
	accs, err := GenerateWorkload("MP3D", 16, 1993, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	v1 := filepath.Join(dir, "legacy.mtr")
	f, err := os.Create(v1)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteTo(f, accs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	w := trace.NewWriterOptions(&buf, TraceHeader{BlockSize: 16, PageSize: 4096, Nodes: 16},
		trace.WriterOptions{Version: 2})
	for _, a := range accs {
		if err := w.Write(a); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	v2 := filepath.Join(dir, "v2.mtr")
	if err := os.WriteFile(v2, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	for name, path := range map[string]string{"v1": v1, "v2": v2} {
		cache := NewTraceSegmentCache(256 << 20)
		cfg := RunConfig{
			Engine:    EngineDirectory,
			TraceFile: path,
			Nodes:     16,
			Policy:    "basic",
			Shards:    2,
			Decoders:  4,
		}
		want := resultJSON(t, cfg)
		cfg.Cache = cache
		if got := resultJSON(t, cfg); got != want {
			t.Errorf("%s: result with cache configured diverged", name)
		}
		if st := cache.Stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 ||
			st.ResidentBytes != 0 || st.SingleFlightJoins != 0 || st.Evictions != 0 {
			t.Errorf("%s: unindexed trace touched the segment cache: %+v", name, st)
		}
	}
}

// TestSegmentCacheEvictionUnderLoad replays MP3D through a cache sized for
// only ~2 of its segments while 8 engine shards pull from 4 parallel
// decoders — constant eviction and re-decode under concurrency. Results
// must stay bit-identical; under -race this is the eviction-path
// concurrency test.
func TestSegmentCacheEvictionUnderLoad(t *testing.T) {
	path, _ := writeEquivTraceFile(t, 2<<10)
	src, err := OpenIndexedTraceFile(path, 1)
	if err != nil {
		t.Fatal(err)
	}
	idx := src.(*IndexedTraceSource).Index()
	maxCount := int64(0)
	for _, seg := range idx.Segments {
		if int64(seg.Count) > maxCount {
			maxCount = int64(seg.Count)
		}
	}
	nsegs := len(idx.Segments)
	src.Close()
	if nsegs < 8 {
		t.Fatalf("trace spans only %d segments; the eviction test needs churn", nsegs)
	}

	cache := NewTraceSegmentCache(2 * maxCount * 16) // room for ~2 decoded segments
	cfg := RunConfig{
		Engine:    EngineDirectory,
		TraceFile: path,
		Nodes:     16,
		Policy:    "aggressive",
		Shards:    8,
		Decoders:  4,
	}
	want := resultJSON(t, cfg)
	cfg.Cache = cache
	for i := 0; i < 3; i++ {
		if got := resultJSON(t, cfg); got != want {
			t.Fatalf("replay %d under eviction pressure diverged", i)
		}
	}
	st := cache.Stats()
	if st.Evictions == 0 {
		t.Fatalf("cache sized for 2 of %d segments never evicted: %+v", nsegs, st)
	}
	if st.ResidentBytes > st.CapBytes {
		t.Fatalf("resident %d exceeds capacity %d with no pins outstanding", st.ResidentBytes, st.CapBytes)
	}
	if st.PinnedBytes != 0 {
		t.Fatalf("%d bytes still pinned", st.PinnedBytes)
	}
}
