package migratory

// Benchmarks for the shared decoded-segment cache: the decode-once,
// run-many story. BenchmarkSegmentCacheSweep replays a multi-cell
// parameter sweep over one MTR3 trace with and without a warm cache (plus
// a decode-only pair that isolates the varint-decode CPU the cache
// removes), and BenchmarkCohdHotTrace drives an in-process cohd server
// with cold-digest requests over one hot trace. Both assert bit-identical
// results across modes and persist their rows to results/bench_sweep.json
// for `make bench-check`.

import (
	"encoding/json"
	"io"
	"log/slog"
	"runtime"
	"testing"
	"time"

	"migratory/internal/server"
	"migratory/internal/stats"
	"migratory/internal/trace"
)

// segcacheBenchCells is the sweep grid: three directory policies across
// seven per-node cache sizes, every cell replaying the same trace file —
// the Table 2 / cache-sweep shape where decode work repeats per cell.
func segcacheBenchCells(path string) []RunConfig {
	policies := []string{"conventional", "basic", "aggressive"}
	sizes := []int{4 << 10, 8 << 10, 16 << 10, 32 << 10, 64 << 10, 128 << 10, 256 << 10}
	cells := make([]RunConfig, 0, len(policies)*len(sizes))
	for _, p := range policies {
		for _, cb := range sizes {
			cells = append(cells, RunConfig{
				Engine:     EngineDirectory,
				TraceFile:  path,
				Nodes:      16,
				CacheBytes: cb,
				Policy:     p,
				Decoders:   2,
			})
		}
	}
	return cells
}

// drainCached opens path through the given cache (nil = uncached) and
// drains it, returning a count and order-sensitive checksum so modes can
// be asserted identical.
func drainCached(b *testing.B, path string, cache *TraceSegmentCache) (int, uint64) {
	b.Helper()
	src, err := OpenIndexedTraceFileCache(path, 2, cache)
	if err != nil {
		b.Fatal(err)
	}
	defer src.Close()
	total := 0
	var sum uint64
	buf := make([]Access, 4096)
	for {
		n, err := trace.FillBatch(src, buf)
		for _, a := range buf[:n] {
			total++
			sum = sum*1099511628211 + uint64(a.Addr)<<9 + uint64(a.Node)<<1 + uint64(a.Kind)
		}
		if err == io.EOF {
			return total, sum
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSegmentCacheSweep prices the segment cache on its home turf: a
// 21-cell directory-policy × cache-size sweep over one small-segment MTR3
// trace, uncached versus warm (cache pre-populated, as every cell after
// the first sees it). Per-cell results are asserted bit-identical, and the
// warm pass must take zero misses — the structural guarantee bench-check
// pins. A decode-only drain pair isolates the varint-decode CPU the cache
// actually removes, which on a single-core runner is the honest speedup
// figure (simulation time dominates the end-to-end cells).
func BenchmarkSegmentCacheSweep(b *testing.B) {
	path, _ := writeEquivTraceFile(b, 2<<10)
	cells := segcacheBenchCells(path)

	sweep := func(b *testing.B, cache *TraceSegmentCache) []string {
		b.Helper()
		out := make([]string, len(cells))
		for i, cfg := range cells {
			cfg.Cache = cache
			res, err := Run(nil, cfg)
			if err != nil {
				b.Fatalf("%s/%d: %v", cfg.Policy, cfg.CacheBytes, err)
			}
			blob, err := json.Marshal(res)
			if err != nil {
				b.Fatal(err)
			}
			out[i] = string(blob)
		}
		return out
	}

	cache := NewTraceSegmentCache(256 << 20)
	if n, _ := drainCached(b, path, cache); n == 0 {
		b.Fatal("empty benchmark trace")
	}
	warmStart := cache.Stats()
	if warmStart.Misses == 0 {
		b.Fatal("pre-warm drain never populated the cache")
	}

	b.Run("paired", func(b *testing.B) {
		elapsed := make([]time.Duration, 2)       // 0 = uncached, 1 = warm
		decodeElapsed := make([]time.Duration, 2) // decode-only drain pair
		var uncachedRes, warmRes []string
		var counts [2]int
		var sums [2]uint64
		for i := 0; i < b.N; i++ {
			start := time.Now()
			uncachedRes = sweep(b, nil)
			elapsed[0] += time.Since(start)

			start = time.Now()
			warmRes = sweep(b, cache)
			elapsed[1] += time.Since(start)

			for rep := 0; rep < 3; rep++ {
				start = time.Now()
				counts[0], sums[0] = drainCached(b, path, nil)
				decodeElapsed[0] += time.Since(start)

				start = time.Now()
				counts[1], sums[1] = drainCached(b, path, cache)
				decodeElapsed[1] += time.Since(start)
			}
		}
		for i := range cells {
			if warmRes[i] != uncachedRes[i] {
				b.Fatalf("cell %d (%s/%d): warm result diverged\n got %s\nwant %s",
					i, cells[i].Policy, cells[i].CacheBytes, warmRes[i], uncachedRes[i])
			}
		}
		if counts[1] != counts[0] || sums[1] != sums[0] {
			b.Fatalf("cached drain diverged: %d/%x vs %d/%x", counts[1], sums[1], counts[0], sums[0])
		}
		warmEnd := cache.Stats()
		extraMisses := warmEnd.Misses - warmStart.Misses
		if extraMisses != 0 {
			b.Fatalf("warm passes took %d misses (evicted? cap %d, resident %d)",
				extraMisses, warmEnd.CapBytes, warmEnd.ResidentBytes)
		}

		measured := map[string]float64{
			"gomaxprocs":         float64(runtime.GOMAXPROCS(0)),
			"cells":              float64(len(cells)),
			"warm_misses_per_op": float64(extraMisses) / float64(b.N),
		}
		names := []string{"uncached", "warm"}
		for mi, name := range names {
			measured[name+"_ns_per_op"] = float64(elapsed[mi].Nanoseconds()) / float64(b.N)
			measured["decode_"+name+"_ns_per_op"] = float64(decodeElapsed[mi].Nanoseconds()) / float64(b.N)
		}
		speedup := measured["uncached_ns_per_op"] / measured["warm_ns_per_op"]
		decodeSpeedup := measured["decode_uncached_ns_per_op"] / measured["decode_warm_ns_per_op"]
		measured["speedup"] = speedup
		measured["decode_speedup"] = decodeSpeedup
		b.ReportMetric(speedup, "speedup-warm")
		b.ReportMetric(decodeSpeedup, "speedup-decode")
		if err := stats.UpdateBenchJSON("results/bench_sweep.json", "BenchmarkSegmentCacheSweep", measured); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkCohdHotTrace prices the cache as cohd sees it: six requests
// with distinct configs (cold digests, so the result cache can never
// answer) replaying one trace file through an in-process server, without
// a segment cache versus with a pre-warmed one. Every request re-simulates
// either way; only the per-request decode is shared. Result bytes are
// asserted identical and the hot server must take zero segment misses.
func BenchmarkCohdHotTrace(b *testing.B) {
	path, _ := writeEquivTraceFile(b, 2<<10)
	reqs := []RunConfig{
		{Engine: EngineDirectory, TraceFile: path, Nodes: 16, Policy: "conventional", Decoders: 2},
		{Engine: EngineDirectory, TraceFile: path, Nodes: 16, Policy: "basic", Decoders: 2},
		{Engine: EngineDirectory, TraceFile: path, Nodes: 16, Policy: "aggressive", Decoders: 2},
		{Engine: EngineBus, TraceFile: path, Nodes: 16, Protocol: "mesi", Decoders: 2},
		{Engine: EngineBus, TraceFile: path, Nodes: 16, Protocol: "adaptive", Decoders: 2},
		{Engine: EngineBus, TraceFile: path, Nodes: 16, Protocol: "berkeley", Decoders: 2},
	}

	submitAll := func(b *testing.B, srv *server.Server) []string {
		b.Helper()
		out := make([]string, len(reqs))
		for i, cfg := range reqs {
			// noCache forces execution: the point is repeated simulation
			// over a hot trace, not result memoization.
			job, err := srv.Submit(cfg, 0, true)
			if err != nil {
				b.Fatal(err)
			}
			<-job.Done()
			snap := srv.Snapshot(job)
			if snap.Status != server.StatusDone {
				b.Fatalf("request %d: status %s: %s", i, snap.Status, snap.Error)
			}
			out[i] = string(snap.Result)
		}
		return out
	}

	cache := NewTraceSegmentCache(256 << 20)
	if n, _ := drainCached(b, path, cache); n == 0 {
		b.Fatal("empty benchmark trace")
	}
	warmStart := cache.Stats()

	quiet := slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.LevelError}))
	cold, err := server.New(server.Config{Workers: 1, Logger: quiet})
	if err != nil {
		b.Fatal(err)
	}
	defer cold.Close()
	hot, err := server.New(server.Config{Workers: 1, Cache: cache, Logger: quiet})
	if err != nil {
		b.Fatal(err)
	}
	defer hot.Close()

	b.Run("paired", func(b *testing.B) {
		elapsed := make([]time.Duration, 2) // 0 = nocache, 1 = hot
		var coldRes, hotRes []string
		for i := 0; i < b.N; i++ {
			start := time.Now()
			coldRes = submitAll(b, cold)
			elapsed[0] += time.Since(start)

			start = time.Now()
			hotRes = submitAll(b, hot)
			elapsed[1] += time.Since(start)
		}
		for i := range reqs {
			if hotRes[i] != coldRes[i] {
				b.Fatalf("request %d: hot-cache result diverged\n got %s\nwant %s", i, hotRes[i], coldRes[i])
			}
		}
		extraMisses := cache.Stats().Misses - warmStart.Misses
		if extraMisses != 0 {
			b.Fatalf("hot server took %d segment misses", extraMisses)
		}

		measured := map[string]float64{
			"gomaxprocs":        float64(runtime.GOMAXPROCS(0)),
			"requests":          float64(len(reqs)),
			"hot_misses_per_op": float64(extraMisses) / float64(b.N),
		}
		measured["nocache_ns_per_op"] = float64(elapsed[0].Nanoseconds()) / float64(b.N)
		measured["hot_ns_per_op"] = float64(elapsed[1].Nanoseconds()) / float64(b.N)
		speedup := measured["nocache_ns_per_op"] / measured["hot_ns_per_op"]
		measured["speedup"] = speedup
		b.ReportMetric(speedup, "speedup-hot")
		if err := stats.UpdateBenchJSON("results/bench_sweep.json", "BenchmarkCohdHotTrace", measured); err != nil {
			b.Fatal(err)
		}
	})
}
