// Command benchcheck guards the hot-loop performance work: it compares the
// machine-readable benchmark rows that `make bench` writes to
// results/bench_sweep.json against the committed baseline in
// results/bench_baseline.json and exits non-zero when a key metric
// regresses beyond its tolerance.
//
// Each check is "benchmark:metric" or "benchmark:metric:tolerance" (a
// fraction; 0.2 = 20%). The comparison direction is inferred from the
// metric name: speedup-style metrics must not drop below baseline by more
// than the tolerance, everything else (ns, bytes, allocs) must not grow
// beyond it. Wall-clock metrics are noisy across machines, so the default
// checks lean on the self-normalizing speedup ratios and the deterministic
// allocation counts, with a wide tolerance on the raw ns rows.
//
// Usage:
//
//	benchcheck                          # default checks, default files
//	benchcheck -tolerance 0.1           # tighten the default tolerance
//	benchcheck -checks 'BenchmarkBatchedBus:speedup:0.25'
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"migratory/internal/cliutil"
	"migratory/internal/stats"
)

// defaultChecks are the key rows of results/bench_sweep.json: the batched
// hot-loop speedups and allocation footprints, the probe-overhead
// allocation guard, and the telemetry-disabled overhead guard (the
// off-mode hot path must stay within noise of the uninstrumented
// baseline, and the on/off ratio must stay near 1).
const defaultChecks = "BenchmarkBatchedTable2:speedup," +
	"BenchmarkBatchedTable2:batched_ns_per_op:0.60," +
	"BenchmarkBatchedTable2:batched_allocs_per_op," +
	"BenchmarkBatchedBus:speedup," +
	"BenchmarkBatchedBus:batched_ns_per_op:0.60," +
	"BenchmarkBatchedBus:batched_allocs_per_op," +
	"BenchmarkProbeOverhead/nil-probe:allocs_per_op," +
	"BenchmarkShardedTable2:speedup:0.60," +
	"BenchmarkShardedTable2:sequential_ns_per_op:0.60," +
	"BenchmarkShardedTable2:sharded8_ns_per_op:0.60," +
	"BenchmarkPrefetchMTR:prefetch_ns_per_op:0.60," +
	"BenchmarkParallelDecodeMTR:speedup:0.60," +
	"BenchmarkParallelDecodeMTR:indexed2_ns_per_op:0.60," +
	"BenchmarkShardedTable2NoProducer:speedup:0.60," +
	"BenchmarkShardedTable2NoProducer:noproducer_ns_per_op:0.60," +
	// Structural guard, not a tolerance check: the no-producer path never
	// charges producer stall (baseline 0, and zero baselines must stay 0),
	// so any stall reappearing means the segment demux regressed to a
	// serial producer.
	"BenchmarkShardedTable2NoProducer:noproducer_stall_ns_per_op," +
	"BenchmarkTelemetryOverhead:off_ns_per_op:0.60," +
	"BenchmarkTelemetryOverhead:off_allocs_per_op," +
	"BenchmarkTelemetryOverhead:overhead_ratio:0.35," +
	// The segment cache's self-normalizing ratios: a warm cache must keep
	// beating re-decode by roughly its baseline margin, end-to-end and on
	// the decode-only drain.
	"BenchmarkSegmentCacheSweep:decode_speedup:0.35," +
	"BenchmarkSegmentCacheSweep:warm_ns_per_op:0.60," +
	// Structural guard (zero baseline): a warm sweep over a cache large
	// enough for the whole trace must never re-decode a segment; any miss
	// means keys, eviction, or pinning regressed.
	"BenchmarkSegmentCacheSweep:warm_misses_per_op," +
	"BenchmarkCohdHotTrace:speedup:0.35," +
	"BenchmarkCohdHotTrace:hot_ns_per_op:0.60," +
	"BenchmarkCohdHotTrace:hot_misses_per_op"

func fatal(format string, args ...any) {
	cliutil.Fatal("benchcheck", format, args...)
}

func load(path string) map[string]map[string]float64 {
	records, err := stats.ReadBenchJSON(path)
	if err != nil {
		fatal("%v", err)
	}
	out := make(map[string]map[string]float64, len(records))
	for _, r := range records {
		out[r.Name] = r.Metrics
	}
	return out
}

func main() {
	var (
		baselinePath = flag.String("baseline", "results/bench_baseline.json", "committed baseline rows")
		currentPath  = flag.String("current", "results/bench_sweep.json", "freshly measured rows (from `make bench`)")
		tolerance    = flag.Float64("tolerance", 0.20, "default allowed fractional drift per metric")
		checks       = flag.String("checks", defaultChecks, "comma-separated benchmark:metric[:tolerance] checks")
		tele         = cliutil.RegisterTelemetry("benchcheck")
	)
	flag.Parse()
	tele.SetupLogging()

	baseline := load(*baselinePath)
	current := load(*currentPath)

	failed := 0
	for _, spec := range strings.Split(*checks, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		parts := strings.Split(spec, ":")
		if len(parts) < 2 || len(parts) > 3 {
			fatal("bad check %q (want benchmark:metric[:tolerance])", spec)
		}
		name, metric := parts[0], parts[1]
		tol := *tolerance
		if len(parts) == 3 {
			v, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || v < 0 {
				fatal("bad tolerance in %q", spec)
			}
			tol = v
		}
		base, ok := baseline[name][metric]
		if !ok {
			// A check ahead of its baseline row is not a regression: it
			// starts guarding once the baseline is (re)recorded.
			fmt.Printf("SKIP %s:%s (no baseline row)\n", name, metric)
			continue
		}
		cur, ok := current[name][metric]
		if !ok {
			fmt.Printf("FAIL %s:%s missing from %s (baseline %.4g)\n", name, metric, *currentPath, base)
			failed++
			continue
		}
		higherBetter := strings.Contains(metric, "speedup")
		bad := false
		if base != 0 {
			if higherBetter {
				bad = cur < base*(1-tol)
			} else {
				bad = cur > base*(1+tol)
			}
		} else {
			bad = cur != 0 && !higherBetter
		}
		verdict := "ok  "
		if bad {
			verdict = "FAIL"
			failed++
		}
		// The relative delta (current as a ratio of baseline) is the number
		// to read when a row fails: it is machine-independent where the raw
		// ns values are not.
		detail := fmt.Sprintf("baseline %.4g, current %.4g", base, cur)
		if base != 0 {
			detail += fmt.Sprintf(" (%.3fx of baseline, %+.1f%%)", cur/base, 100*(cur-base)/base)
		}
		fmt.Printf("%s %s:%s %s, tolerance %.0f%%\n", verdict, name, metric, detail, 100*tol)
	}
	if failed > 0 {
		fatal("%d metric(s) regressed beyond tolerance", failed)
	}
	fmt.Println("benchcheck: all metrics within tolerance")
}
