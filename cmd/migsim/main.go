// Command migsim regenerates the paper's trace-driven directory-protocol
// experiments: Table 2 (message counts by cache size), Table 3 (message
// counts by block size with infinite caches), and the §4.1 weighted
// cost-ratio analysis.
//
// Usage:
//
//	migsim -table 2                 # Table 2 (all five apps, four protocols)
//	migsim -table 3 -apps MP3D      # Table 3, one app
//	migsim -table 2 -ratios         # add the 2:1 / 4:1 cost-ratio analysis
//	migsim -length 100000 -seed 7   # shorter traces, different seed
//	migsim -trace mp3d.mtr          # sweep over a recorded trace file
//	migsim -stream -length 5000000  # constant-memory streamed sweep
//	migsim -parallelism 8           # cap the sweep worker pool (0 = all CPUs)
package main

import (
	"flag"
	"fmt"
	"os"

	"migratory/internal/cliutil"
	"migratory/internal/sim"
)

func main() {
	var (
		common = cliutil.Register("migsim")
		prof   = cliutil.RegisterProfile("migsim")
		tele   = cliutil.RegisterTelemetry("migsim")
		table  = flag.Int("table", 2, "paper table to regenerate: 2 (cache sizes) or 3 (block sizes)")
		ratios = flag.Bool("ratios", false, "also print the cost-ratio analysis (§4.1)")
		format = flag.String("format", "table", "output format: table, csv, or json")
	)
	flag.Parse()
	tele.SetupLogging()
	common.Validate()
	defer prof.Start()()

	ctx, stop := cliutil.SignalContext()
	defer stop()
	opts := common.Options(ctx)

	prepared, err := common.TraceApps()
	if err != nil {
		cliutil.Fatal("migsim", "%v", err)
	}

	run := tele.Start(opts, *common.Trace, map[string]any{"table": *table})
	defer run.Close(nil)
	opts.Stats = run.Stats()

	var sw *sim.Sweep
	switch {
	case *table == 2 && prepared != nil:
		sw, err = sim.Table2Apps(prepared, opts)
	case *table == 3 && prepared != nil:
		sw, err = sim.Table3Apps(prepared, opts)
	case *table == 2:
		sw, err = sim.Table2(opts)
	case *table == 3:
		sw, err = sim.Table3(opts)
	default:
		cliutil.Usagef("migsim", "unknown table %d (want 2 or 3)", *table)
	}
	if err != nil {
		cliutil.FatalRun(run, "migsim", "%v", err)
	}
	run.Close(nil)

	switch *format {
	case "csv":
		fmt.Print(sw.CSV())
		return
	case "json":
		out, err := sw.JSON()
		if err != nil {
			cliutil.Fatal("migsim", "%v", err)
		}
		fmt.Print(out)
		return
	case "table":
		// fall through
	default:
		cliutil.Usagef("migsim", "unknown format %q", *format)
	}

	title := "Table 2: message counts (thousands) by cache size, application, and protocol (16-byte blocks)"
	if *table == 3 {
		title = "Table 3: message counts (thousands) by block size, application, and protocol (infinite caches)"
	}
	fmt.Println(title)
	fmt.Println()
	if err := sw.Render().Render(os.Stdout); err != nil {
		cliutil.Fatal("migsim", "%v", err)
	}
	if *ratios {
		fmt.Println()
		fmt.Println("Cost-ratio analysis (§4.1): % reduction under data:short message cost ratios")
		fmt.Println()
		if err := sw.CostRatioTable().Render(os.Stdout); err != nil {
			cliutil.Fatal("migsim", "%v", err)
		}
	}
}
