// Command migsim regenerates the paper's trace-driven directory-protocol
// experiments: Table 2 (message counts by cache size), Table 3 (message
// counts by block size with infinite caches), and the §4.1 weighted
// cost-ratio analysis.
//
// Usage:
//
//	migsim -table 2                 # Table 2 (all five apps, four protocols)
//	migsim -table 3 -apps MP3D      # Table 3, one app
//	migsim -table 2 -ratios         # add the 2:1 / 4:1 cost-ratio analysis
//	migsim -length 100000 -seed 7   # shorter traces, different seed
//	migsim -parallelism 8           # cap the sweep worker pool (0 = all CPUs)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"migratory/internal/sim"
	"migratory/internal/trace"
)

func main() {
	var (
		table    = flag.Int("table", 2, "paper table to regenerate: 2 (cache sizes) or 3 (block sizes)")
		apps     = flag.String("apps", "", "comma-separated app subset (default: all five)")
		length   = flag.Int("length", 0, "trace length override (0 = per-app default)")
		seed     = flag.Int64("seed", 1993, "workload generator seed")
		nodes    = flag.Int("nodes", 16, "processor count")
		ratios   = flag.Bool("ratios", false, "also print the cost-ratio analysis (§4.1)")
		format   = flag.String("format", "table", "output format: table, csv, or json")
		traceIn  = flag.String("trace", "", "run the sweep over a binary trace file (from tracegen) instead of the built-in workloads")
		parallel = flag.Int("parallelism", 0, "sweep worker goroutines (0 = all CPUs, 1 = sequential; results are identical either way)")
	)
	flag.Parse()

	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "migsim: -parallelism must be >= 0 (got %d)\n", *parallel)
		flag.Usage()
		os.Exit(2)
	}

	opts := sim.Options{Nodes: *nodes, Seed: *seed, Length: *length, Parallelism: *parallel}
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	}

	var prepared []*sim.App
	if *traceIn != "" {
		f, err := os.Open(*traceIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "migsim: %v\n", err)
			os.Exit(1)
		}
		accs, err := trace.ReadFrom(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "migsim: %v\n", err)
			os.Exit(1)
		}
		prepared = []*sim.App{sim.NewApp(*traceIn, accs, *nodes)}
	}

	var (
		sw  *sim.Sweep
		err error
	)
	switch {
	case *table == 2 && prepared != nil:
		sw, err = sim.Table2Apps(prepared, opts)
	case *table == 3 && prepared != nil:
		sw, err = sim.Table3Apps(prepared, opts)
	case *table == 2:
		sw, err = sim.Table2(opts)
	case *table == 3:
		sw, err = sim.Table3(opts)
	default:
		fmt.Fprintf(os.Stderr, "migsim: unknown table %d (want 2 or 3)\n", *table)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "migsim: %v\n", err)
		os.Exit(1)
	}

	switch *format {
	case "csv":
		fmt.Print(sw.CSV())
		return
	case "json":
		out, err := sw.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "migsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	case "table":
		// fall through
	default:
		fmt.Fprintf(os.Stderr, "migsim: unknown format %q\n", *format)
		os.Exit(2)
	}

	title := "Table 2: message counts (thousands) by cache size, application, and protocol (16-byte blocks)"
	if *table == 3 {
		title = "Table 3: message counts (thousands) by block size, application, and protocol (infinite caches)"
	}
	fmt.Println(title)
	fmt.Println()
	if err := sw.Render().Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "migsim: %v\n", err)
		os.Exit(1)
	}
	if *ratios {
		fmt.Println()
		fmt.Println("Cost-ratio analysis (§4.1): % reduction under data:short message cost ratios")
		fmt.Println()
		if err := sw.CostRatioTable().Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "migsim: %v\n", err)
			os.Exit(1)
		}
	}
}
