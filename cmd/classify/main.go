// Command classify evaluates the on-line migratory detection itself: it
// scores each adaptive protocol's classifications against the off-line
// ground truth (precision/recall over shared blocks), and prints the
// Weber–Gupta style invalidation-pattern histogram (the paper's reference
// [23]) that motivates the whole idea — under migratory sharing, most
// ownership acquisitions invalidate exactly one remote copy.
//
// Usage:
//
//	classify                 # all five applications
//	classify -apps MP3D      # one application
//	classify -cache 16384    # score under replacement pressure
//	classify -trace mp3d.mtr # score a recorded trace file
//	classify -parallelism 8  # cap the sweep worker pool (0 = all CPUs)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"migratory/internal/cliutil"
	"migratory/internal/core"
	"migratory/internal/sim"
	"migratory/internal/workload"
)

func main() {
	var (
		common = cliutil.Register("classify")
		prof   = cliutil.RegisterProfile("classify")
		tele   = cliutil.RegisterTelemetry("classify")
		cache  = flag.Int("cache", 0, "per-node cache bytes (0 = infinite)")
	)
	flag.Parse()
	tele.SetupLogging()
	common.Validate()
	defer prof.Start()()

	ctx, stop := cliutil.SignalContext()
	defer stop()
	opts := common.Options(ctx)
	if len(opts.Apps) == 0 {
		for _, p := range workload.Profiles() {
			opts.Apps = append(opts.Apps, p.Name)
		}
	}

	run := tele.Start(opts, *common.Trace, map[string]any{"cache": *cache})
	defer run.Close(nil)
	opts.Stats = run.Stats()

	// One prepared app per input: the -trace file, or each built-in profile.
	// The same apps drive both the accuracy scoring and the histogram, so a
	// trace is generated (or a file profiled) once per app.
	var apps []*sim.App
	if traced, err := common.TraceApps(); err != nil {
		cliutil.FatalRun(run, "classify", "%v", err)
	} else if traced != nil {
		apps = traced
	} else {
		for _, name := range opts.Apps {
			app, err := sim.PrepareApp(name, opts)
			if err != nil {
				cliutil.FatalRun(run, "classify", "%v", err)
			}
			apps = append(apps, app)
		}
	}

	fmt.Println("On-line detection vs off-line ground truth (shared blocks only):")
	fmt.Println()
	var all []sim.Accuracy
	for _, app := range apps {
		rows, err := sim.ClassifierAccuracyApp(app, opts, *cache)
		if err != nil {
			cliutil.FatalRun(run, "classify", "%v", err)
		}
		all = append(all, rows...)
	}
	if err := sim.RenderAccuracy(all).Render(os.Stdout); err != nil {
		cliutil.Fatal("classify", "%v", err)
	}

	fmt.Println()
	fmt.Println("Invalidation-pattern histogram (conventional protocol): remote copies")
	fmt.Println("invalidated per ownership acquisition — the Weber–Gupta motivation for")
	fmt.Println("migratory detection.")
	fmt.Println()
	shards := cliutil.ResolveShards(opts.Shards, *cache, 16)
	for _, app := range apps {
		res, err := sim.Run(ctx, sim.RunConfig{
			Engine:          sim.EngineDirectory,
			Nodes:           opts.Nodes,
			Policy:          core.Conventional.Name,
			CacheBytes:      *cache,
			Shards:          shards,
			Stats:           run.Stats(),
			OpenSource:      app.Open,
			PlacementPolicy: app.Placement,
		})
		if err != nil {
			cliutil.FatalRun(run, "classify", "%v", err)
		}
		hist := res.InvalidationHistogram()
		sizes := make([]int, 0, len(hist))
		var total uint64
		for sz, c := range hist {
			sizes = append(sizes, sz)
			total += c
		}
		sort.Ints(sizes)
		fmt.Printf("%-12s", app.Name)
		for _, sz := range sizes {
			fmt.Printf("  %d:%5.1f%%", sz, 100*float64(hist[sz])/float64(total))
		}
		fmt.Println()
	}
}
