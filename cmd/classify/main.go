// Command classify evaluates the on-line migratory detection itself: it
// scores each adaptive protocol's classifications against the off-line
// ground truth (precision/recall over shared blocks), and prints the
// Weber–Gupta style invalidation-pattern histogram (the paper's reference
// [23]) that motivates the whole idea — under migratory sharing, most
// ownership acquisitions invalidate exactly one remote copy.
//
// Usage:
//
//	classify                 # all five applications
//	classify -apps MP3D      # one application
//	classify -cache 16384    # score under replacement pressure
//	classify -parallelism 8  # cap the sweep worker pool (0 = all CPUs)
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"migratory/internal/core"
	"migratory/internal/directory"
	"migratory/internal/memory"
	"migratory/internal/placement"
	"migratory/internal/sim"
	"migratory/internal/workload"
)

func main() {
	var (
		apps     = flag.String("apps", "", "comma-separated app subset (default: all five)")
		length   = flag.Int("length", 0, "trace length override (0 = per-app default)")
		seed     = flag.Int64("seed", 1993, "workload generator seed")
		nodes    = flag.Int("nodes", 16, "processor count")
		cache    = flag.Int("cache", 0, "per-node cache bytes (0 = infinite)")
		parallel = flag.Int("parallelism", 0, "sweep worker goroutines (0 = all CPUs, 1 = sequential; results are identical either way)")
	)
	flag.Parse()

	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "classify: -parallelism must be >= 0 (got %d)\n", *parallel)
		flag.Usage()
		os.Exit(2)
	}

	opts := sim.Options{Nodes: *nodes, Seed: *seed, Length: *length, Parallelism: *parallel}
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	} else {
		for _, p := range workload.Profiles() {
			opts.Apps = append(opts.Apps, p.Name)
		}
	}

	fmt.Println("On-line detection vs off-line ground truth (shared blocks only):")
	fmt.Println()
	var all []sim.Accuracy
	for _, app := range opts.Apps {
		rows, err := sim.ClassifierAccuracy(app, opts, *cache)
		if err != nil {
			fmt.Fprintf(os.Stderr, "classify: %v\n", err)
			os.Exit(1)
		}
		all = append(all, rows...)
	}
	if err := sim.RenderAccuracy(all).Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "classify: %v\n", err)
		os.Exit(1)
	}

	fmt.Println()
	fmt.Println("Invalidation-pattern histogram (conventional protocol): remote copies")
	fmt.Println("invalidated per ownership acquisition — the Weber–Gupta motivation for")
	fmt.Println("migratory detection.")
	fmt.Println()
	geom := memory.MustGeometry(16, 4096)
	for _, app := range opts.Apps {
		prof, err := workload.ProfileByName(app)
		if err != nil {
			fmt.Fprintf(os.Stderr, "classify: %v\n", err)
			os.Exit(1)
		}
		accs, err := workload.Generate(prof, *nodes, *seed, *length)
		if err != nil {
			fmt.Fprintf(os.Stderr, "classify: %v\n", err)
			os.Exit(1)
		}
		sys, err := directory.New(directory.Config{
			Nodes: *nodes, Geometry: geom, CacheBytes: *cache,
			Policy:    core.Conventional,
			Placement: placement.UsageBased(accs, geom, *nodes),
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "classify: %v\n", err)
			os.Exit(1)
		}
		if err := sys.Run(accs); err != nil {
			fmt.Fprintf(os.Stderr, "classify: %v\n", err)
			os.Exit(1)
		}
		hist := sys.InvalidationHistogram()
		sizes := make([]int, 0, len(hist))
		var total uint64
		for sz, c := range hist {
			sizes = append(sizes, sz)
			total += c
		}
		sort.Ints(sizes)
		fmt.Printf("%-12s", app)
		for _, sz := range sizes {
			fmt.Printf("  %d:%5.1f%%", sz, 100*float64(hist[sz])/float64(total))
		}
		fmt.Println()
	}
}
