// Command bussim regenerates the paper's §4.3 bus-based results: snooping
// protocol transaction counts and the savings of the adaptive protocols
// over conventional MESI under the two bus cost models (model 1: every
// transaction costs one unit; model 2: operations requiring replies cost
// two).
//
// Usage:
//
//	bussim                       # all five apps at 64 KB and 1 MB caches
//	bussim -apps Water,MP3D -caches 65536
//	bussim -symmetry             # include the Sequent Symmetry baseline (§5)
//	bussim -trace mp3d.mtr       # replay a recorded trace file
//	bussim -parallelism 8        # cap the sweep worker pool (0 = all CPUs)
package main

import (
	"flag"
	"fmt"
	"os"

	"migratory/internal/cliutil"
	"migratory/internal/sim"
	"migratory/internal/snoop"
)

func main() {
	var (
		common   = cliutil.Register("bussim")
		prof     = cliutil.RegisterProfile("bussim")
		tele     = cliutil.RegisterTelemetry("bussim")
		caches   = flag.String("caches", "", "comma-separated per-node cache bytes (default: 65536,1048576)")
		symmetry = flag.Bool("symmetry", false, "include the non-adaptive Symmetry migrate-on-read baseline")
		format   = flag.String("format", "table", "output format: table, csv, or json")
	)
	flag.Parse()
	tele.SetupLogging()
	common.Validate()
	defer prof.Start()()

	ctx, stop := cliutil.SignalContext()
	defer stop()
	opts := common.Options(ctx)

	cacheSizes, err := cliutil.ParseCaches(*caches)
	if err != nil {
		cliutil.Usagef("bussim", "%v", err)
	}
	protocols := []snoop.Protocol{snoop.MESI, snoop.Adaptive, snoop.AdaptiveMigrateFirst}
	if *symmetry {
		protocols = append(protocols, snoop.Symmetry)
	}

	run := tele.Start(opts, *common.Trace, map[string]any{"caches": *caches, "symmetry": *symmetry})
	defer run.Close(nil)
	opts.Stats = run.Stats()

	var sw *sim.BusSweep
	if prepared, err := common.TraceApps(); err != nil {
		cliutil.FatalRun(run, "bussim", "%v", err)
	} else if prepared != nil {
		sw, err = sim.RunBusApps(prepared, opts, cacheSizes, protocols)
		if err != nil {
			cliutil.FatalRun(run, "bussim", "%v", err)
		}
	} else {
		sw, err = sim.RunBus(opts, cacheSizes, protocols)
		if err != nil {
			cliutil.FatalRun(run, "bussim", "%v", err)
		}
	}
	run.Close(nil)

	switch *format {
	case "csv":
		fmt.Print(sw.CSV())
		return
	case "json":
		out, err := sw.JSON()
		if err != nil {
			cliutil.Fatal("bussim", "%v", err)
		}
		fmt.Print(out)
		return
	case "table":
		// fall through
	default:
		cliutil.Usagef("bussim", "unknown format %q", *format)
	}

	fmt.Println("Bus-based snooping protocols (§4.3): savings vs conventional MESI")
	fmt.Println()
	if err := sw.Render().Render(os.Stdout); err != nil {
		cliutil.Fatal("bussim", "%v", err)
	}
}
