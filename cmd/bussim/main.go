// Command bussim regenerates the paper's §4.3 bus-based results: snooping
// protocol transaction counts and the savings of the adaptive protocols
// over conventional MESI under the two bus cost models (model 1: every
// transaction costs one unit; model 2: operations requiring replies cost
// two).
//
// Usage:
//
//	bussim                       # all five apps at 64 KB and 1 MB caches
//	bussim -apps Water,MP3D -caches 65536
//	bussim -symmetry             # include the Sequent Symmetry baseline (§5)
//	bussim -parallelism 8        # cap the sweep worker pool (0 = all CPUs)
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"migratory/internal/sim"
	"migratory/internal/snoop"
)

func main() {
	var (
		apps     = flag.String("apps", "", "comma-separated app subset (default: all five)")
		caches   = flag.String("caches", "", "comma-separated per-node cache bytes (default: 65536,1048576)")
		length   = flag.Int("length", 0, "trace length override (0 = per-app default)")
		seed     = flag.Int64("seed", 1993, "workload generator seed")
		nodes    = flag.Int("nodes", 16, "processor count")
		symmetry = flag.Bool("symmetry", false, "include the non-adaptive Symmetry migrate-on-read baseline")
		format   = flag.String("format", "table", "output format: table, csv, or json")
		parallel = flag.Int("parallelism", 0, "sweep worker goroutines (0 = all CPUs, 1 = sequential; results are identical either way)")
	)
	flag.Parse()

	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "bussim: -parallelism must be >= 0 (got %d)\n", *parallel)
		flag.Usage()
		os.Exit(2)
	}

	opts := sim.Options{Nodes: *nodes, Seed: *seed, Length: *length, Parallelism: *parallel}
	if *apps != "" {
		opts.Apps = strings.Split(*apps, ",")
	}
	var cacheSizes []int
	if *caches != "" {
		for _, c := range strings.Split(*caches, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(c))
			if err != nil {
				fmt.Fprintf(os.Stderr, "bussim: bad cache size %q\n", c)
				os.Exit(2)
			}
			cacheSizes = append(cacheSizes, n)
		}
	}
	protocols := []snoop.Protocol{snoop.MESI, snoop.Adaptive, snoop.AdaptiveMigrateFirst}
	if *symmetry {
		protocols = append(protocols, snoop.Symmetry)
	}

	sw, err := sim.RunBus(opts, cacheSizes, protocols)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bussim: %v\n", err)
		os.Exit(1)
	}
	switch *format {
	case "csv":
		fmt.Print(sw.CSV())
		return
	case "json":
		out, err := sw.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "bussim: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(out)
		return
	case "table":
		// fall through
	default:
		fmt.Fprintf(os.Stderr, "bussim: unknown format %q\n", *format)
		os.Exit(2)
	}

	fmt.Println("Bus-based snooping protocols (§4.3): savings vs conventional MESI")
	fmt.Println()
	if err := sw.Render().Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "bussim: %v\n", err)
		os.Exit(1)
	}
}
