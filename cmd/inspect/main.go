// Command inspect replays a trace under any protocol variant with the
// observability layer attached: it prints and filters the typed coherence
// event stream, reports per-node metrics, histograms, and the hottest
// blocks by coherence messages, and can export the stream as JSONL or as a
// Chrome trace_event file that opens in Perfetto (ui.perfetto.dev).
//
// Usage:
//
//	inspect -app MP3D -variant basic -max 50          # first 50 events
//	inspect -app MP3D -variant aggressive -kinds classify,declassify
//	inspect -trace t.mtr -engine bus -variant adaptive -blocks 3,17
//	inspect -app Water -variant basic -perfetto run.json -events=false
//	inspect -app MP3D -variant conservative -top 20 -jsonl events.jsonl
//
// Filters (-kinds, -blocks, -filter-nodes) restrict the printed stream and
// the JSONL/Perfetto exports; the metrics report always aggregates the full
// stream, so its message totals reconcile with the engine's cost counters.
// The trace is streamed — generated lazily or decoded straight off the
// file — so arbitrarily long replays hold O(1) trace state.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"migratory/internal/cliutil"
	"migratory/internal/core"
	"migratory/internal/directory"
	"migratory/internal/memory"
	"migratory/internal/obs"
	"migratory/internal/placement"
	"migratory/internal/sim"
	"migratory/internal/snoop"
	"migratory/internal/telemetry"
	"migratory/internal/trace"
	"migratory/internal/workload"
)

// teleRun is the command's telemetry session; fatal funnels failures
// through it so even a failed replay leaves a manifest.
var teleRun *telemetry.Run

func fatal(format string, args ...any) {
	cliutil.FatalRun(teleRun, "inspect", format, args...)
}

func main() {
	var (
		app       = flag.String("app", "", "application profile to generate (see tracegen -list)")
		traceIn   = flag.String("trace", "", "replay a binary trace file (from tracegen) instead of generating")
		length    = flag.Int("length", 0, "generated trace length (0 = profile default)")
		seed      = flag.Int64("seed", 1993, "workload generator seed")
		nodes     = flag.Int("nodes", 16, "processor count")
		engine    = flag.String("engine", "directory", "protocol engine: directory or bus")
		variant   = flag.String("variant", "basic", "protocol variant (directory: conventional, conservative, basic, aggressive, stenstrom; bus: mesi, adaptive, adaptive-migrate-first, symmetry, berkeley, update-once)")
		cacheKB   = flag.Int("cache", 0, "per-node cache size in KB (0 = infinite)")
		blockSize = flag.Int("block", 16, "block size in bytes")
		shards    = flag.Int("shards", 1, "engine shards, split by cache-set index (1 = sequential, -1 = all CPUs; metrics are identical either way, but per-event output needs -shards 1)")

		kinds     = flag.String("kinds", "", "comma-separated event kinds to show (default: all; e.g. classify,migration)")
		blocks    = flag.String("blocks", "", "comma-separated block IDs to show (default: all)")
		nodesFlt  = flag.String("filter-nodes", "", "comma-separated node IDs to show (default: all)")
		events    = flag.Bool("events", true, "print the (filtered) event stream")
		max       = flag.Int("max", 100, "print at most this many events (0 = unlimited)")
		top       = flag.Int("top", 10, "report the N hottest blocks by coherence messages (0 = skip)")
		metrics   = flag.Bool("metrics", true, "print the per-node metrics and histogram report")
		jsonlOut  = flag.String("jsonl", "", "write the (filtered) event stream as JSON lines to this file")
		perfetto  = flag.String("perfetto", "", "write a Chrome trace_event file (opens in Perfetto) to this file")
		listKinds = flag.Bool("list-kinds", false, "list the event kinds and exit")

		prof = cliutil.RegisterProfile("inspect")
		tele = cliutil.RegisterTelemetry("inspect")
	)
	flag.Parse()
	tele.SetupLogging()
	defer prof.Start()()

	if *listKinds {
		for _, k := range obs.Kinds() {
			fmt.Println(k)
		}
		return
	}

	filter, err := cliutil.ParseFilter(*kinds, *blocks, *nodesFlt)
	if err != nil {
		cliutil.Usagef("inspect", "%v", err)
	}

	if *shards < 1 && *shards != -1 {
		cliutil.Usagef("inspect", "-shards must be >= 1 or -1 for all CPUs (got %d)", *shards)
	}
	nshards := cliutil.ResolveShards(*shards, *cacheKB<<10, *blockSize)
	if nshards > 1 {
		if *jsonlOut != "" || *perfetto != "" {
			cliutil.Usagef("inspect", "-jsonl/-perfetto need the single globally ordered event stream of -shards 1")
		}
		if *events {
			fmt.Fprintln(os.Stderr, "inspect: note: per-event printing is off under -shards > 1 (shards interleave events); metrics stay exact")
			*events = false
		}
	}

	ctx, stop := cliutil.SignalContext()
	defer stop()

	teleRun = tele.Start(sim.Options{Nodes: *nodes, Seed: *seed, Length: *length, Shards: *shards},
		*traceIn, map[string]any{"app": *app, "engine": *engine, "variant": *variant, "cache_kb": *cacheKB, "block": *blockSize})
	defer teleRun.Close(nil)

	src := openSource(*app, *traceIn, *nodes, *seed, *length)
	defer src.Close()

	// Assemble the per-event probe chain (printer and exporters behind the
	// filter); the full-stream metrics probes are built per shard inside run
	// and merged afterwards.
	var filtered obs.MultiProbe

	printed, truncated := 0, false
	if *events {
		filtered = append(filtered, obs.FuncProbe(func(e obs.Event) {
			if *max > 0 && printed >= *max {
				truncated = true
				return
			}
			printed++
			fmt.Println(e)
		}))
	}
	var jp *obs.JSONLProbe
	if *jsonlOut != "" {
		f, err := os.Create(*jsonlOut)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		jp = obs.NewJSONLProbe(f)
		filtered = append(filtered, jp)
	}
	var tp *obs.TraceEventProbe
	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		tp = obs.NewTraceEventProbe(f)
		filtered = append(filtered, tp)
	}
	var extra obs.Probe
	if len(filtered) > 0 {
		extra = obs.FilterProbe{Filter: filter, Next: filtered}
	}

	mp := run(ctx, *engine, *variant, src, *nodes, *cacheKB<<10, *blockSize, nshards, extra)

	if truncated {
		fmt.Printf("... (stream truncated at %d events; raise -max)\n", *max)
	}
	if jp != nil {
		if err := jp.Flush(); err != nil {
			fatal("writing %s: %v", *jsonlOut, err)
		}
		fmt.Printf("wrote JSONL event stream to %s\n", *jsonlOut)
	}
	if tp != nil {
		if err := tp.Close(); err != nil {
			fatal("writing %s: %v", *perfetto, err)
		}
		fmt.Printf("wrote Perfetto trace to %s (open at ui.perfetto.dev)\n", *perfetto)
	}

	mp.Finish()
	if *metrics {
		fmt.Printf("\nPer-node metrics (%s, %d events, %d blocks):\n\n", mp.Variant, mp.Total.Events, mp.BlockCount())
		if err := mp.RenderNodes().Render(os.Stdout); err != nil {
			fatal("%v", err)
		}
		fmt.Println()
		if err := mp.RenderHistograms().Render(os.Stdout); err != nil {
			fatal("%v", err)
		}
	}
	if *top > 0 {
		fmt.Printf("\nTop %d hottest blocks by coherence messages:\n\n", *top)
		if err := mp.RenderTopBlocks(*top).Render(os.Stdout); err != nil {
			fatal("%v", err)
		}
	}
	teleRun.Close(nil)
}

// openSource builds the access stream from -trace or -app without
// materializing it.
func openSource(app, traceIn string, nodes int, seed int64, length int) trace.Source {
	switch {
	case traceIn != "":
		src, err := trace.OpenFile(traceIn)
		if err != nil {
			fatal("%v", err)
		}
		return src
	case app != "":
		prof, err := workload.ProfileByName(app)
		if err != nil {
			fatal("%v", err)
		}
		src, err := workload.NewSource(prof, nodes, seed, length)
		if err != nil {
			fatal("%v", err)
		}
		return src
	default:
		cliutil.Usagef("inspect", "need -app or -trace")
		return nil
	}
}

// countingSource counts the accesses delivered through it.
type countingSource struct {
	trace.Source
	n int
}

func (c *countingSource) Next() (trace.Access, error) {
	a, err := c.Source.Next()
	if err == nil {
		c.n++
	}
	return a, err
}

// run replays the source under the selected engine and variant across
// shards engine instances (1 = sequential) and returns the merged
// full-stream metrics probe. extra, when non-nil, is the filtered per-event
// chain (printer/exporters); it attaches to shard 0, which under -shards 1
// is the whole stream. The directory engine takes a profiling pass first
// (for the usage-based placement), then the source is rewound for
// simulation.
func run(ctx context.Context, engine, variant string, src trace.Source, nodes, cacheBytes, blockSize, shards int, extra obs.Probe) *obs.MetricsProbe {
	geom, err := memory.NewGeometry(blockSize, sim.PageSize)
	if err != nil {
		fatal("%v", err)
	}
	per := make([]*obs.MetricsProbe, shards)
	probeAt := func(i int) obs.Probe {
		per[i] = &obs.MetricsProbe{}
		var inner obs.Probe = per[i]
		if i == 0 && extra != nil {
			inner = obs.MultiProbe{per[i], extra}
		}
		// Forward event volume to the live telemetry counters, so the
		// /metrics endpoint shows the replay's event rate.
		return &obs.StatsProbe{Stats: teleRun.Stats(), Inner: inner}
	}
	switch engine {
	case "directory":
		pol, err := core.PolicyByName(variant)
		if err != nil {
			cliutil.Usagef("inspect", "%v", err)
		}
		pl, err := placement.UsageBasedSource(src, geom, nodes)
		if err != nil {
			fatal("%v", err)
		}
		if err := src.Reset(); err != nil {
			fatal("%v", err)
		}
		sys, err := directory.NewSharded(directory.Config{
			Nodes:      nodes,
			Geometry:   geom,
			CacheBytes: cacheBytes,
			Policy:     pol,
			Placement:  pl,
			Stats:      teleRun.Stats(),
		}, shards, probeAt)
		if err != nil {
			fatal("%v", err)
		}
		if err := sys.RunSource(ctx, src); err != nil {
			fatal("%v", err)
		}
		m := sys.Messages()
		fmt.Printf("\n%s/%s: %d accesses, %d short + %d data messages\n",
			engine, variant, sys.Counters().Accesses, m.Short, m.Data)
	case "bus":
		prot, err := cliutil.BusProtocolByName(variant)
		if err != nil {
			cliutil.Usagef("inspect", "%v", err)
		}
		sys, err := snoop.NewSharded(snoop.Config{
			Nodes:      nodes,
			Geometry:   geom,
			CacheBytes: cacheBytes,
			Protocol:   prot,
			Stats:      teleRun.Stats(),
		}, shards, probeAt)
		if err != nil {
			fatal("%v", err)
		}
		counted := &countingSource{Source: src}
		if err := sys.RunSource(ctx, counted); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("\n%s/%s: %d accesses, %d bus transactions\n",
			engine, variant, counted.n, sys.Counts().Total())
	default:
		cliutil.Usagef("inspect", "unknown engine %q (want directory or bus)", engine)
	}
	return obs.MergeMetrics(per...)
}
