// Command inspect replays a trace under any protocol variant with the
// observability layer attached: it prints and filters the typed coherence
// event stream, reports per-node metrics, histograms, and the hottest
// blocks by coherence messages, and can export the stream as JSONL or as a
// Chrome trace_event file that opens in Perfetto (ui.perfetto.dev).
//
// Usage:
//
//	inspect -app MP3D -variant basic -max 50          # first 50 events
//	inspect -app MP3D -variant aggressive -kinds classify,declassify
//	inspect -trace t.bin -engine bus -variant adaptive -blocks 3,17
//	inspect -app Water -variant basic -perfetto run.json -events=false
//	inspect -app MP3D -variant conservative -top 20 -jsonl events.jsonl
//
// Filters (-kinds, -blocks, -filter-nodes) restrict the printed stream and
// the JSONL/Perfetto exports; the metrics report always aggregates the full
// stream, so its message totals reconcile with the engine's cost counters.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"migratory/internal/core"
	"migratory/internal/directory"
	"migratory/internal/memory"
	"migratory/internal/obs"
	"migratory/internal/placement"
	"migratory/internal/sim"
	"migratory/internal/snoop"
	"migratory/internal/trace"
	"migratory/internal/workload"
)

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "inspect: "+format+"\n", args...)
	os.Exit(1)
}

func usage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "inspect: "+format+"\n", args...)
	flag.Usage()
	os.Exit(2)
}

func main() {
	var (
		app       = flag.String("app", "", "application profile to generate (see tracegen -list)")
		traceIn   = flag.String("trace", "", "replay a binary trace file (from tracegen) instead of generating")
		length    = flag.Int("length", 0, "generated trace length (0 = profile default)")
		seed      = flag.Int64("seed", 1993, "workload generator seed")
		nodes     = flag.Int("nodes", 16, "processor count")
		engine    = flag.String("engine", "directory", "protocol engine: directory or bus")
		variant   = flag.String("variant", "basic", "protocol variant (directory: conventional, conservative, basic, aggressive, stenstrom; bus: mesi, adaptive, adaptive-migrate-first, symmetry, berkeley, update-once)")
		cacheKB   = flag.Int("cache", 0, "per-node cache size in KB (0 = infinite)")
		blockSize = flag.Int("block", 16, "block size in bytes")

		kinds     = flag.String("kinds", "", "comma-separated event kinds to show (default: all; e.g. classify,migration)")
		blocks    = flag.String("blocks", "", "comma-separated block IDs to show (default: all)")
		nodesFlt  = flag.String("filter-nodes", "", "comma-separated node IDs to show (default: all)")
		events    = flag.Bool("events", true, "print the (filtered) event stream")
		max       = flag.Int("max", 100, "print at most this many events (0 = unlimited)")
		top       = flag.Int("top", 10, "report the N hottest blocks by coherence messages (0 = skip)")
		metrics   = flag.Bool("metrics", true, "print the per-node metrics and histogram report")
		jsonlOut  = flag.String("jsonl", "", "write the (filtered) event stream as JSON lines to this file")
		perfetto  = flag.String("perfetto", "", "write a Chrome trace_event file (opens in Perfetto) to this file")
		listKinds = flag.Bool("list-kinds", false, "list the event kinds and exit")
	)
	flag.Parse()

	if *listKinds {
		for _, k := range obs.Kinds() {
			fmt.Println(k)
		}
		return
	}

	filter, err := buildFilter(*kinds, *blocks, *nodesFlt)
	if err != nil {
		usage("%v", err)
	}

	accs := loadTrace(*app, *traceIn, *nodes, *seed, *length)

	// Assemble the probe chain: the metrics probe sees the full stream;
	// printer and exporters sit behind the filter.
	mp := &obs.MetricsProbe{}
	probes := obs.MultiProbe{mp}
	var filtered obs.MultiProbe

	printed, truncated := 0, false
	if *events {
		filtered = append(filtered, obs.FuncProbe(func(e obs.Event) {
			if *max > 0 && printed >= *max {
				truncated = true
				return
			}
			printed++
			fmt.Println(e)
		}))
	}
	var jp *obs.JSONLProbe
	if *jsonlOut != "" {
		f, err := os.Create(*jsonlOut)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		jp = obs.NewJSONLProbe(f)
		filtered = append(filtered, jp)
	}
	var tp *obs.TraceEventProbe
	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		tp = obs.NewTraceEventProbe(f)
		filtered = append(filtered, tp)
	}
	if len(filtered) > 0 {
		probes = append(probes, obs.FilterProbe{Filter: filter, Next: filtered})
	}

	run(*engine, *variant, accs, *nodes, *cacheKB<<10, *blockSize, probes)

	if truncated {
		fmt.Printf("... (stream truncated at %d events; raise -max)\n", *max)
	}
	if jp != nil {
		if err := jp.Flush(); err != nil {
			fatal("writing %s: %v", *jsonlOut, err)
		}
		fmt.Printf("wrote JSONL event stream to %s\n", *jsonlOut)
	}
	if tp != nil {
		if err := tp.Close(); err != nil {
			fatal("writing %s: %v", *perfetto, err)
		}
		fmt.Printf("wrote Perfetto trace to %s (open at ui.perfetto.dev)\n", *perfetto)
	}

	mp.Finish()
	if *metrics {
		fmt.Printf("\nPer-node metrics (%s, %d events, %d blocks):\n\n", mp.Variant, mp.Total.Events, mp.BlockCount())
		if err := mp.RenderNodes().Render(os.Stdout); err != nil {
			fatal("%v", err)
		}
		fmt.Println()
		if err := mp.RenderHistograms().Render(os.Stdout); err != nil {
			fatal("%v", err)
		}
	}
	if *top > 0 {
		fmt.Printf("\nTop %d hottest blocks by coherence messages:\n\n", *top)
		if err := mp.RenderTopBlocks(*top).Render(os.Stdout); err != nil {
			fatal("%v", err)
		}
	}
}

// loadTrace produces the access stream from -trace or -app.
func loadTrace(app, traceIn string, nodes int, seed int64, length int) []trace.Access {
	switch {
	case traceIn != "":
		f, err := os.Open(traceIn)
		if err != nil {
			fatal("%v", err)
		}
		accs, err := trace.ReadFrom(f)
		f.Close()
		if err != nil {
			fatal("%v", err)
		}
		return accs
	case app != "":
		prof, err := workload.ProfileByName(app)
		if err != nil {
			fatal("%v", err)
		}
		accs, err := workload.Generate(prof, nodes, seed, length)
		if err != nil {
			fatal("%v", err)
		}
		return accs
	default:
		usage("need -app or -trace")
		return nil
	}
}

// run replays the trace under the selected engine and variant with the
// probe attached.
func run(engine, variant string, accs []trace.Access, nodes, cacheBytes, blockSize int, probe obs.Probe) {
	geom, err := memory.NewGeometry(blockSize, sim.PageSize)
	if err != nil {
		fatal("%v", err)
	}
	switch engine {
	case "directory":
		pol, err := core.PolicyByName(variant)
		if err != nil {
			usage("%v", err)
		}
		sys, err := directory.New(directory.Config{
			Nodes:      nodes,
			Geometry:   geom,
			CacheBytes: cacheBytes,
			Policy:     pol,
			Placement:  placement.UsageBased(accs, geom, nodes),
			Probe:      probe,
		})
		if err != nil {
			fatal("%v", err)
		}
		if err := sys.Run(accs); err != nil {
			fatal("%v", err)
		}
		m := sys.Messages()
		fmt.Printf("\n%s/%s: %d accesses, %d short + %d data messages\n",
			engine, variant, sys.Counters().Accesses, m.Short, m.Data)
	case "bus":
		prot, err := busProtocolByName(variant)
		if err != nil {
			usage("%v", err)
		}
		sys, err := snoop.New(snoop.Config{
			Nodes:      nodes,
			Geometry:   geom,
			CacheBytes: cacheBytes,
			Protocol:   prot,
			Probe:      probe,
		})
		if err != nil {
			fatal("%v", err)
		}
		if err := sys.Run(accs); err != nil {
			fatal("%v", err)
		}
		fmt.Printf("\n%s/%s: %d accesses, %d bus transactions\n",
			engine, variant, len(accs), sys.Counts().Total())
	default:
		usage("unknown engine %q (want directory or bus)", engine)
	}
}

func busProtocolByName(name string) (snoop.Protocol, error) {
	all := []snoop.Protocol{snoop.MESI, snoop.Adaptive, snoop.AdaptiveMigrateFirst,
		snoop.Symmetry, snoop.Berkeley, snoop.UpdateOnce}
	for _, p := range all {
		if p.String() == name {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown bus protocol %q", name)
}

// buildFilter parses the -kinds, -blocks, and -filter-nodes flags.
func buildFilter(kinds, blocks, nodes string) (obs.Filter, error) {
	var f obs.Filter
	if kinds != "" {
		for _, name := range strings.Split(kinds, ",") {
			k, err := obs.ParseKind(strings.TrimSpace(name))
			if err != nil {
				return f, err
			}
			f.Kinds = f.Kinds.Add(k)
		}
	}
	if blocks != "" {
		f.Blocks = make(map[memory.BlockID]bool)
		for _, s := range strings.Split(blocks, ",") {
			v, err := strconv.ParseUint(strings.TrimSpace(s), 10, 64)
			if err != nil {
				return f, fmt.Errorf("bad block ID %q", s)
			}
			f.Blocks[memory.BlockID(v)] = true
		}
	}
	if nodes != "" {
		f.Nodes = make(map[memory.NodeID]bool)
		for _, s := range strings.Split(nodes, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 32)
			if err != nil {
				return f, fmt.Errorf("bad node ID %q", s)
			}
			f.Nodes[memory.NodeID(v)] = true
		}
	}
	return f, nil
}
