// Command inspect replays a trace under any protocol variant with the
// observability layer attached: it prints and filters the typed coherence
// event stream, reports per-node metrics, histograms, and the hottest
// blocks by coherence messages, and can export the stream as JSONL or as a
// Chrome trace_event file that opens in Perfetto (ui.perfetto.dev).
//
// Usage:
//
//	inspect -app MP3D -variant basic -max 50          # first 50 events
//	inspect -app MP3D -variant aggressive -kinds classify,declassify
//	inspect -trace t.mtr -engine bus -variant adaptive -blocks 3,17
//	inspect -app Water -variant basic -perfetto run.json -events=false
//	inspect -app MP3D -variant conservative -top 20 -jsonl events.jsonl
//
// Filters (-kinds, -blocks, -filter-nodes) restrict the printed stream and
// the JSONL/Perfetto exports; the metrics report always aggregates the full
// stream, so its message totals reconcile with the engine's cost counters.
// The trace is streamed — generated lazily or decoded straight off the
// file — so arbitrarily long replays hold O(1) trace state.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"migratory/internal/cliutil"
	"migratory/internal/core"
	"migratory/internal/memory"
	"migratory/internal/obs"
	"migratory/internal/sim"
	"migratory/internal/snoop"
	"migratory/internal/telemetry"
	"migratory/internal/trace"
)

// teleRun is the command's telemetry session; fatal funnels failures
// through it so even a failed replay leaves a manifest.
var teleRun *telemetry.Run

func fatal(format string, args ...any) {
	cliutil.FatalRun(teleRun, "inspect", format, args...)
}

func main() {
	var (
		app        = flag.String("app", "", "application profile to generate (see tracegen -list)")
		traceIn    = flag.String("trace", "", "replay a binary trace file (from tracegen) instead of generating")
		length     = flag.Int("length", 0, "generated trace length (0 = profile default)")
		seed       = flag.Int64("seed", 1993, "workload generator seed")
		nodes      = flag.Int("nodes", 16, "processor count")
		engine     = flag.String("engine", "directory", "protocol engine: directory or bus")
		variant    = flag.String("variant", "basic", "protocol variant (directory: conventional, conservative, basic, aggressive, stenstrom; bus: mesi, adaptive, adaptive-migrate-first, symmetry, berkeley, update-once)")
		cacheKB    = flag.Int("cache", 0, "per-node cache size in KB (0 = infinite)")
		blockSize  = flag.Int("block", 16, "block size in bytes")
		traceCache = flag.Int64("trace-cache-bytes", trace.DefaultTraceCacheBytes, "decoded-segment cache for indexed (v3) .mtr replays: the placement profiling pass and the simulation pass share decoded segments (0 = decode twice)")
		shards     = flag.Int("shards", 1, "engine shards, split by cache-set index (1 = sequential, -1 = all CPUs; metrics are identical either way, but per-event output needs -shards 1)")

		kinds     = flag.String("kinds", "", "comma-separated event kinds to show (default: all; e.g. classify,migration)")
		blocks    = flag.String("blocks", "", "comma-separated block IDs to show (default: all)")
		nodesFlt  = flag.String("filter-nodes", "", "comma-separated node IDs to show (default: all)")
		events    = flag.Bool("events", true, "print the (filtered) event stream")
		max       = flag.Int("max", 100, "print at most this many events (0 = unlimited)")
		top       = flag.Int("top", 10, "report the N hottest blocks by coherence messages (0 = skip)")
		metrics   = flag.Bool("metrics", true, "print the per-node metrics and histogram report")
		jsonlOut  = flag.String("jsonl", "", "write the (filtered) event stream as JSON lines to this file")
		perfetto  = flag.String("perfetto", "", "write a Chrome trace_event file (opens in Perfetto) to this file")
		listKinds = flag.Bool("list-kinds", false, "list the event kinds and exit")

		prof = cliutil.RegisterProfile("inspect")
		tele = cliutil.RegisterTelemetry("inspect")
	)
	flag.Parse()
	tele.SetupLogging()
	defer prof.Start()()

	if *listKinds {
		for _, k := range obs.Kinds() {
			fmt.Println(k)
		}
		return
	}

	filter, err := cliutil.ParseFilter(*kinds, *blocks, *nodesFlt)
	if err != nil {
		cliutil.Usagef("inspect", "%v", err)
	}

	if *shards < 1 && *shards != -1 {
		cliutil.Usagef("inspect", "-shards must be >= 1 or -1 for all CPUs (got %d)", *shards)
	}
	nshards := cliutil.ResolveShards(*shards, *cacheKB<<10, *blockSize)
	if nshards > 1 {
		if *jsonlOut != "" || *perfetto != "" {
			cliutil.Usagef("inspect", "-jsonl/-perfetto need the single globally ordered event stream of -shards 1")
		}
		if *events {
			fmt.Fprintln(os.Stderr, "inspect: note: per-event printing is off under -shards > 1 (shards interleave events); metrics stay exact")
			*events = false
		}
	}

	switch {
	case *app == "" && *traceIn == "":
		cliutil.Usagef("inspect", "need -app or -trace")
	case *app != "" && *traceIn != "":
		cliutil.Usagef("inspect", "use -app or -trace, not both")
	}
	if *engine != sim.EngineDirectory && *engine != sim.EngineBus {
		cliutil.Usagef("inspect", "unknown engine %q (want directory or bus)", *engine)
	}
	if *traceCache < 0 {
		cliutil.Usagef("inspect", "-trace-cache-bytes must be >= 0 (0 disables the cache; got %d)", *traceCache)
	}
	segCache := trace.NewSegmentCache(*traceCache)
	if segCache != nil {
		telemetry.RegisterCacheStats(func() telemetry.CacheStats { return segCache.Stats() })
	}

	ctx, stop := cliutil.SignalContext()
	defer stop()

	teleRun = tele.Start(sim.Options{Nodes: *nodes, Seed: *seed, Length: *length, Shards: *shards},
		*traceIn, map[string]any{"app": *app, "engine": *engine, "variant": *variant, "cache_kb": *cacheKB, "block": *blockSize})
	defer teleRun.Close(nil)

	// Assemble the per-event probe chain (printer and exporters behind the
	// filter); the full-stream metrics probes are built per shard inside run
	// and merged afterwards.
	var filtered obs.MultiProbe

	printed, truncated := 0, false
	if *events {
		filtered = append(filtered, obs.FuncProbe(func(e obs.Event) {
			if *max > 0 && printed >= *max {
				truncated = true
				return
			}
			printed++
			fmt.Println(e)
		}))
	}
	var jp *obs.JSONLProbe
	if *jsonlOut != "" {
		f, err := os.Create(*jsonlOut)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		jp = obs.NewJSONLProbe(f)
		filtered = append(filtered, jp)
	}
	var tp *obs.TraceEventProbe
	if *perfetto != "" {
		f, err := os.Create(*perfetto)
		if err != nil {
			fatal("%v", err)
		}
		defer f.Close()
		tp = obs.NewTraceEventProbe(f)
		filtered = append(filtered, tp)
	}
	var extra obs.Probe
	if len(filtered) > 0 {
		extra = obs.FilterProbe{Filter: filter, Next: filtered}
	}

	cfg := sim.RunConfig{
		Engine:     *engine,
		Workload:   *app,
		TraceFile:  *traceIn,
		Nodes:      *nodes,
		Seed:       *seed,
		Length:     *length,
		CacheBytes: *cacheKB << 10,
		BlockSize:  *blockSize,
		Shards:     nshards,
		Cache:      segCache,
	}
	mp := run(ctx, cfg, *variant, extra)

	if truncated {
		fmt.Printf("... (stream truncated at %d events; raise -max)\n", *max)
	}
	if jp != nil {
		if err := jp.Flush(); err != nil {
			fatal("writing %s: %v", *jsonlOut, err)
		}
		fmt.Printf("wrote JSONL event stream to %s\n", *jsonlOut)
	}
	if tp != nil {
		if err := tp.Close(); err != nil {
			fatal("writing %s: %v", *perfetto, err)
		}
		fmt.Printf("wrote Perfetto trace to %s (open at ui.perfetto.dev)\n", *perfetto)
	}

	mp.Finish()
	if *metrics {
		fmt.Printf("\nPer-node metrics (%s, %d events, %d blocks):\n\n", mp.Variant, mp.Total.Events, mp.BlockCount())
		if err := mp.RenderNodes().Render(os.Stdout); err != nil {
			fatal("%v", err)
		}
		fmt.Println()
		if err := mp.RenderHistograms().Render(os.Stdout); err != nil {
			fatal("%v", err)
		}
	}
	if *top > 0 {
		fmt.Printf("\nTop %d hottest blocks by coherence messages:\n\n", *top)
		if err := mp.RenderTopBlocks(*top).Render(os.Stdout); err != nil {
			fatal("%v", err)
		}
	}
	teleRun.Close(nil)
}

// run replays the configured trace under the selected engine and variant
// through the unified sim.Run entry point and returns the merged
// full-stream metrics probe. extra, when non-nil, is the filtered
// per-event chain (printer/exporters); it attaches to shard 0, which under
// -shards 1 is the whole stream. The directory engine's usage-based
// placement profiling pass happens inside sim.Run.
func run(ctx context.Context, cfg sim.RunConfig, variant string, extra obs.Probe) *obs.MetricsProbe {
	switch cfg.Engine {
	case sim.EngineDirectory:
		cfg.Policy = variant
	case sim.EngineBus:
		cfg.Protocol = variant
	}
	per := make([]*obs.MetricsProbe, cfg.Shards)
	cfg.Probes = func(i int) obs.Probe {
		per[i] = &obs.MetricsProbe{}
		var inner obs.Probe = per[i]
		if i == 0 && extra != nil {
			inner = obs.MultiProbe{per[i], extra}
		}
		// Forward event volume to the live telemetry counters, so the
		// /metrics endpoint shows the replay's event rate.
		return &obs.StatsProbe{Stats: teleRun.Stats(), Inner: inner}
	}
	cfg.Stats = teleRun.Stats()
	res, err := sim.Run(ctx, cfg)
	if err != nil {
		// Bad names and geometry are usage errors, like a bad flag; real
		// failures funnel through the manifest-sealing fatal.
		if errors.Is(err, core.ErrUnknownPolicy) || errors.Is(err, snoop.ErrUnknownProtocol) ||
			errors.Is(err, memory.ErrBadGeometry) {
			cliutil.Usagef("inspect", "%v", err)
		}
		fatal("%v", err)
	}
	switch cfg.Engine {
	case sim.EngineDirectory:
		m := res.Directory.Msgs
		fmt.Printf("\n%s/%s: %d accesses, %d short + %d data messages\n",
			cfg.Engine, variant, res.Accesses, m.Short, m.Data)
	default:
		fmt.Printf("\n%s/%s: %d accesses, %d bus transactions\n",
			cfg.Engine, variant, res.Accesses, res.Bus.Counts.Total())
	}
	return obs.MergeMetrics(per...)
}
