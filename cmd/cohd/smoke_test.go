package main

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"migratory/internal/sim"
)

// TestServeSmoke boots the real cohd binary and drives the acceptance
// scenario end to end: 50 concurrent submissions against a 4-deep queue
// must yield 429 overflow, every admitted run must complete with results
// bit-identical to an in-process sim.Run, a repeat submission must be
// served from the cache, goroutines must settle back after the storm, and
// SIGTERM must drain to a zero exit.
func TestServeSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and boots the cohd binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "cohd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building cohd: %v\n%s", err, out)
	}

	addrFile := filepath.Join(dir, "addr")
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-queue", "4",
		"-workers", "2",
		"-cache-dir", filepath.Join(dir, "cache"),
		"-manifest-dir", filepath.Join(dir, "results"),
		"-drain-timeout", "30s",
	)
	var logs bytes.Buffer
	cmd.Stderr = &logs
	cmd.Stdout = &logs
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	base := waitForAddr(t, addrFile)
	client := &http.Client{Timeout: 30 * time.Second}

	cfg := func(seed int64) sim.RunConfig {
		return sim.RunConfig{
			Engine:   sim.EngineDirectory,
			Workload: "MP3D",
			Policy:   "aggressive",
			Length:   100_000,
			Seed:     seed,
		}
	}
	submit := func(c sim.RunConfig, wait bool) (*http.Response, error) {
		body, _ := json.Marshal(map[string]any{"config": c, "wait": wait})
		return client.Post(base+"/v1/runs", "application/json", bytes.NewReader(body))
	}

	// A known run first: the daemon's result bytes must match an
	// in-process Run of the same config exactly.
	resp, err := submit(cfg(1000), true)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("warm-up run status = %d: %s", resp.StatusCode, b)
	}
	var warm struct {
		Status   string          `json:"status"`
		CacheHit bool            `json:"cache_hit"`
		Result   json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&warm); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	direct, err := sim.Run(context.Background(), cfg(1000))
	if err != nil {
		t.Fatal(err)
	}
	dj, _ := json.Marshal(direct)
	var got bytes.Buffer
	if err := json.Compact(&got, warm.Result); err != nil {
		t.Fatal(err)
	}
	if got.String() != string(dj) {
		t.Fatalf("daemon result diverges from direct run:\n%s\n%s", got.String(), dj)
	}

	baseline := readGauge(t, client, base, "go_goroutines")

	// The storm: 50 concurrent distinct submissions against 2 workers + a
	// 4-deep queue. Admission must overflow (429) without failing any
	// admitted run.
	const storm = 50
	var (
		mu       sync.Mutex
		accepted []string
		rejected int
	)
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			resp, err := submit(cfg(seed), false)
			if err != nil {
				t.Errorf("submit seed=%d: %v", seed, err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted, http.StatusOK:
				var snap struct {
					ID string `json:"id"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
					t.Errorf("decoding accept: %v", err)
					return
				}
				mu.Lock()
				accepted = append(accepted, snap.ID)
				mu.Unlock()
			case http.StatusTooManyRequests:
				if resp.Header.Get("Retry-After") == "" {
					t.Error("429 without Retry-After")
				}
				mu.Lock()
				rejected++
				mu.Unlock()
			default:
				b, _ := io.ReadAll(resp.Body)
				t.Errorf("submit seed=%d status = %d: %s", seed, resp.StatusCode, b)
			}
		}(int64(i + 1))
	}
	wg.Wait()
	if rejected == 0 {
		t.Error("storm produced no 429s: admission control never engaged")
	}
	if len(accepted) == 0 {
		t.Fatal("storm produced no admitted runs")
	}
	t.Logf("storm: %d accepted, %d rejected", len(accepted), rejected)

	// Every admitted run completes.
	for _, id := range accepted {
		resp, err := client.Get(base + "/v1/runs/" + id + "?wait=1")
		if err != nil {
			t.Fatal(err)
		}
		var snap struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || snap.Status != "done" {
			t.Fatalf("admitted run %s ended %d/%s (%s)", id, resp.StatusCode, snap.Status, snap.Error)
		}
	}

	// The warm-up config again: a cache hit, immediate and counted.
	resp, err = submit(cfg(1000), false)
	if err != nil {
		t.Fatal(err)
	}
	var hit struct {
		Status   string `json:"status"`
		CacheHit bool   `json:"cache_hit"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hit); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hit.Status != "done" || !hit.CacheHit {
		t.Fatalf("repeat submission was not a cache hit: %d %+v", resp.StatusCode, hit)
	}
	if hits := readGauge(t, client, base, "cohd_cache_hits_total"); hits < 1 {
		t.Fatalf("cohd_cache_hits_total = %v after a cache hit", hits)
	}

	// Goroutines settle back to the pre-storm level: no per-request leaks.
	settled := false
	deadline := time.Now().Add(10 * time.Second)
	var now float64
	for time.Now().Before(deadline) {
		now = readGauge(t, client, base, "go_goroutines")
		if now <= baseline+8 {
			settled = true
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	if !settled {
		t.Errorf("goroutines did not settle: baseline %v, now %v", baseline, now)
	}

	// Graceful drain: SIGTERM exits 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exit := make(chan error, 1)
	go func() { exit <- cmd.Wait() }()
	select {
	case err := <-exit:
		if err != nil {
			t.Fatalf("cohd exit after SIGTERM: %v\n%s", err, logs.String())
		}
	case <-time.After(40 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("cohd did not drain after SIGTERM\n%s", logs.String())
	}
}

// waitForAddr polls for the daemon's -addr-file and returns the base URL.
func waitForAddr(t *testing.T, path string) string {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		data, err := os.ReadFile(path)
		if err == nil && len(bytes.TrimSpace(data)) > 0 {
			return "http://" + strings.TrimSpace(string(data))
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("cohd never wrote its address file")
	return ""
}

// readGauge scrapes one numeric metric from /metrics.
func readGauge(t *testing.T, client *http.Client, base, name string) float64 {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("parsing %s %q: %v", name, rest, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}
