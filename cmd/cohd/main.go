// Command cohd is the coherence-as-a-service daemon: a long-running,
// stdlib-only HTTP server executing simulation runs (the same unified Run
// API the CLIs use) on a bounded worker pool with admission control, a
// content-hash result cache, and graceful drain on SIGTERM.
//
//	cohd -addr :8099 -queue 64 -cache-dir results/cache
//
// The run API mounts on the telemetry server, so one listener serves
// everything: POST/GET /v1/runs plus /metrics, /status, /healthz, and
// /debug/pprof.
package main

import (
	"context"
	"flag"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"migratory/internal/cliutil"
	"migratory/internal/server"
	"migratory/internal/telemetry"
	"migratory/internal/trace"
)

func main() {
	name := "cohd"
	addr := flag.String("addr", ":8099", "listen address for the API and telemetry endpoints (\":0\" picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound listen address to this file once serving (for scripts)")
	queueCap := flag.Int("queue", 64, "admission queue capacity; beyond it submissions get 429")
	workers := flag.Int("workers", 0, "concurrent run executors (0 = GOMAXPROCS)")
	cacheDir := flag.String("cache-dir", "results/cache", "content-hash result cache directory; empty disables memoization")
	manifestDir := flag.String("manifest-dir", "results", "directory for per-request run manifests; empty disables them")
	defaultTimeout := flag.Duration("default-timeout", 0, "deadline for requests that name none (0 = unbounded)")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on requested deadlines (0 = uncapped)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain may wait for in-flight runs before aborting them")
	traceCacheBytes := flag.Int64("trace-cache-bytes", trace.DefaultTraceCacheBytes, "decoded-segment cache capacity shared across requests replaying indexed (v3) .mtr traces (0 = decode per request)")
	interval := flag.Duration("telemetry-interval", telemetry.DefaultInterval, "telemetry sampling cadence")
	logFlags := cliutil.RegisterLogging(name)
	flag.Parse()
	if flag.NArg() > 0 {
		cliutil.Usagef(name, "unexpected arguments: %v", flag.Args())
	}
	logFlags.SetupLogging()

	if *traceCacheBytes < 0 {
		cliutil.Usagef(name, "-trace-cache-bytes must be >= 0 (0 disables the cache; got %d)", *traceCacheBytes)
	}
	segCache := trace.NewSegmentCache(*traceCacheBytes)
	if segCache != nil {
		telemetry.RegisterCacheStats(func() telemetry.CacheStats { return segCache.Stats() })
	}

	man := telemetry.NewManifest(name)
	man.Extra = map[string]any{
		"queue":             *queueCap,
		"workers":           *workers,
		"trace_cache_bytes": *traceCacheBytes,
	}
	run, err := telemetry.StartRun(telemetry.RunConfig{
		Tool:        name,
		Addr:        *addr,
		Interval:    *interval,
		ManifestDir: *manifestDir,
		Manifest:    man,
	})
	if run.Server() == nil {
		// A daemon without its listener is useless — unlike the sweep
		// tools, which degrade to serverless telemetry.
		run.Close(err)
		cliutil.Fatal(name, "listen %s: %v", *addr, err)
	}

	srv, err := server.New(server.Config{
		Queue:          *queueCap,
		Workers:        *workers,
		CacheDir:       *cacheDir,
		ManifestDir:    *manifestDir,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		Stats:          run.Stats(),
		Cache:          segCache,
	})
	if err != nil {
		cliutil.FatalRun(run, name, "%v", err)
	}
	ts := run.Server()
	ts.Handle("/v1/", srv.Handler())
	ts.OnMetrics(srv.WriteMetrics)
	ts.OnStatus(srv.StatusExtra)

	if *addrFile != "" {
		if werr := telemetry.WriteFileAtomic(*addrFile, []byte(ts.Addr()+"\n"), 0o644); werr != nil {
			cliutil.FatalRun(run, name, "write -addr-file: %v", werr)
		}
	}
	slog.Info("cohd serving", "addr", ts.Addr(),
		"queue", *queueCap, "cache_dir", *cacheDir,
		"endpoints", "/v1/runs /metrics /status /healthz /debug/pprof")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	got := <-sig
	slog.Info("draining", "signal", got.String(), "timeout", *drainTimeout)

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := srv.Shutdown(ctx)
	if drainErr != nil {
		slog.Error("drain aborted in-flight runs", "err", drainErr)
	}
	if _, cerr := run.Close(drainErr); drainErr == nil && cerr != nil {
		slog.Warn("manifest write failed", "err", cerr)
	}
	if drainErr != nil {
		os.Exit(1)
	}
}
