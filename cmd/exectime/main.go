// Command exectime regenerates the paper's §4.2 execution-driven results:
// the parallel execution-time reduction of the basic adaptive protocol over
// the conventional protocol on a DASH-like CC-NUMA machine with round-robin
// page placement.
//
// Usage:
//
//	exectime                      # Cholesky, MP3D, Water with basic
//	exectime -policy aggressive   # a different adaptive variant
//	exectime -apps MP3D -cache 262144
//	exectime -parallelism 8       # cap the sweep worker pool (0 = all CPUs)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"migratory/internal/core"
	"migratory/internal/sim"
)

func main() {
	var (
		apps     = flag.String("apps", strings.Join(sim.ExecApps, ","), "comma-separated apps")
		policy   = flag.String("policy", "basic", "adaptive policy to compare against conventional")
		length   = flag.Int("length", 0, "trace length override (0 = per-app default)")
		seed     = flag.Int64("seed", 1993, "workload generator seed")
		nodes    = flag.Int("nodes", 16, "processor count")
		cache    = flag.Int("cache", 0, "per-node cache bytes (0 = 64 KB)")
		parallel = flag.Int("parallelism", 0, "sweep worker goroutines (0 = all CPUs, 1 = sequential; results are identical either way)")
	)
	flag.Parse()

	if *parallel < 0 {
		fmt.Fprintf(os.Stderr, "exectime: -parallelism must be >= 0 (got %d)\n", *parallel)
		flag.Usage()
		os.Exit(2)
	}

	pol, err := core.PolicyByName(*policy)
	if err != nil {
		fmt.Fprintf(os.Stderr, "exectime: %v\n", err)
		os.Exit(2)
	}
	opts := sim.Options{Nodes: *nodes, Seed: *seed, Length: *length, Apps: strings.Split(*apps, ","), Parallelism: *parallel}
	rows, err := sim.ExecutionTime(opts, pol, *cache)
	if err != nil {
		fmt.Fprintf(os.Stderr, "exectime: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("Execution-driven simulation (§4.2): DASH-like latencies, round-robin placement")
	fmt.Println()
	if err := sim.RenderExec(rows, pol).Render(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "exectime: %v\n", err)
		os.Exit(1)
	}
}
