// Command exectime regenerates the paper's §4.2 execution-driven results:
// the parallel execution-time reduction of the basic adaptive protocol over
// the conventional protocol on a DASH-like CC-NUMA machine with round-robin
// page placement.
//
// Usage:
//
//	exectime                      # Cholesky, MP3D, Water with basic
//	exectime -policy aggressive   # a different adaptive variant
//	exectime -apps MP3D -cache 262144
//	exectime -trace mp3d.mtr      # time a recorded trace file
//	exectime -parallelism 8       # cap the sweep worker pool (0 = all CPUs)
package main

import (
	"flag"
	"fmt"
	"os"

	"migratory/internal/cliutil"
	"migratory/internal/sim"
)

func main() {
	var (
		common = cliutil.Register("exectime")
		prof   = cliutil.RegisterProfile("exectime")
		tele   = cliutil.RegisterTelemetry("exectime")
		policy = flag.String("policy", "basic", "adaptive policy to compare against conventional")
		cache  = flag.Int("cache", 0, "per-node cache bytes (0 = 64 KB)")
	)
	flag.Parse()
	tele.SetupLogging()
	common.Validate()
	defer prof.Start()()

	ctx, stop := cliutil.SignalContext()
	defer stop()
	pol := cliutil.PolicyArg("exectime", *policy)
	opts := common.Options(ctx)
	if len(opts.Apps) == 0 {
		opts.Apps = sim.ExecApps
	}

	run := tele.Start(opts, *common.Trace, map[string]any{"policy": *policy, "cache": *cache})
	defer run.Close(nil)
	opts.Stats = run.Stats()

	var rows []sim.ExecRow
	if prepared, err := common.TraceApps(); err != nil {
		cliutil.FatalRun(run, "exectime", "%v", err)
	} else if prepared != nil {
		rows, err = sim.ExecutionTimeApps(prepared, opts, pol, *cache)
		if err != nil {
			cliutil.FatalRun(run, "exectime", "%v", err)
		}
	} else {
		rows, err = sim.ExecutionTime(opts, pol, *cache)
		if err != nil {
			cliutil.FatalRun(run, "exectime", "%v", err)
		}
	}
	run.Close(nil)
	fmt.Println("Execution-driven simulation (§4.2): DASH-like latencies, round-robin placement")
	fmt.Println()
	if err := sim.RenderExec(rows, pol).Render(os.Stdout); err != nil {
		cliutil.Fatal("exectime", "%v", err)
	}
}
