// Command tracegen generates, inspects, and converts the synthetic
// SPLASH-like shared-memory traces used by the simulators.
//
// Usage:
//
//	tracegen -app MP3D -o mp3d.trc            # generate a binary trace
//	tracegen -app Water -stats                # print trace statistics
//	tracegen -in mp3d.trc -stats              # analyze an existing trace
//	tracegen -list                            # list available profiles
package main

import (
	"flag"
	"fmt"
	"os"

	"migratory/internal/memory"
	"migratory/internal/placement"
	"migratory/internal/trace"
	"migratory/internal/workload"
)

func main() {
	var (
		app       = flag.String("app", "", "application profile to generate")
		in        = flag.String("in", "", "read an existing binary trace instead of generating")
		out       = flag.String("o", "", "write the trace to this file (binary format)")
		length    = flag.Int("length", 0, "trace length (0 = profile default)")
		seed      = flag.Int64("seed", 1993, "generator seed")
		nodes     = flag.Int("nodes", 16, "processor count")
		blockSize = flag.Int("block", 16, "block size for the statistics")
		stats     = flag.Bool("stats", false, "print trace statistics")
		list      = flag.Bool("list", false, "list available application profiles")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-12s %-12s %s\n", "profile", "footprint", "segments")
		for _, p := range workload.Profiles() {
			segs := ""
			for i, s := range p.Segments {
				if i > 0 {
					segs += ", "
				}
				segs += fmt.Sprintf("%s (%s, %d x %dB)", s.Name, s.Kind, s.Objects, s.ObjWords*4)
			}
			fmt.Printf("%-12s %6d KB    %s\n", p.Name, p.FootprintKB(), segs)
		}
		return
	}

	var accs []trace.Access
	switch {
	case *in != "":
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		accs, err = trace.ReadFrom(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
	case *app != "":
		prof, err := workload.ProfileByName(*app)
		if err != nil {
			fatal(err)
		}
		accs, err = workload.Generate(prof, *nodes, *seed, *length)
		if err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "tracegen: need -app, -in, or -list")
		os.Exit(2)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteTo(f, accs); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d accesses to %s\n", len(accs), *out)
	}

	if *stats || *out == "" {
		geom, err := memory.NewGeometry(*blockSize, 4096)
		if err != nil {
			fatal(err)
		}
		st := trace.Analyze(accs, geom)
		fmt.Print(st)
		for _, pl := range []placement.Policy{
			placement.NewRoundRobin(*nodes),
			placement.FirstTouch(accs, geom, *nodes),
			placement.UsageBased(accs, geom, *nodes),
		} {
			fmt.Printf("local access fraction under %-11s placement: %.1f%%\n",
				pl.Name(), 100*placement.LocalFraction(accs, geom, pl))
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
	os.Exit(1)
}
