// Command tracegen generates, inspects, and converts the synthetic
// SPLASH-like shared-memory traces used by the simulators. Generation
// streams straight from the workload generator into the compact .mtr
// format, so arbitrarily long traces are written in constant memory, and
// statistics are computed in streaming passes over the source.
//
// Usage:
//
//	tracegen -app MP3D -o mp3d.mtr            # generate a binary trace
//	tracegen -app Water -stats                # print trace statistics
//	tracegen -in mp3d.mtr -stats              # analyze an existing trace
//	tracegen -list                            # list available profiles
package main

import (
	"flag"
	"fmt"
	"os"

	"migratory/internal/cliutil"
	"migratory/internal/memory"
	"migratory/internal/placement"
	"migratory/internal/sim"
	"migratory/internal/telemetry"
	"migratory/internal/trace"
	"migratory/internal/workload"
)

// run is the command's telemetry session; fatal funnels failures through
// it so even a failed generation leaves a manifest.
var run *telemetry.Run

func main() {
	var (
		app       = flag.String("app", "", "application profile to generate")
		in        = flag.String("in", "", "read an existing binary trace instead of generating")
		out       = flag.String("o", "", "write the trace to this file (.mtr binary format)")
		length    = flag.Int("length", 0, "trace length (0 = profile default)")
		seed      = flag.Int64("seed", 1993, "generator seed")
		nodes     = flag.Int("nodes", 16, "processor count")
		blockSize = flag.Int("block", 16, "block size for the statistics")
		stats     = flag.Bool("stats", false, "print trace statistics")
		list      = flag.Bool("list", false, "list available application profiles")
		mtrVer    = flag.Int("mtr-version", 3, "output .mtr format version: 3 (indexed, parallel-decodable) or 2 (plain stream)")
		segBytes  = flag.Int("segment-bytes", 0, "target encoded segment size for v3 output (0 = default)")

		prof = cliutil.RegisterProfile("tracegen")
		tele = cliutil.RegisterTelemetry("tracegen")
	)
	flag.Parse()
	tele.SetupLogging()
	defer prof.Start()()

	if *list {
		fmt.Printf("%-12s %-12s %s\n", "profile", "footprint", "segments")
		for _, p := range workload.Profiles() {
			segs := ""
			for i, s := range p.Segments {
				if i > 0 {
					segs += ", "
				}
				segs += fmt.Sprintf("%s (%s, %d x %dB)", s.Name, s.Kind, s.Objects, s.ObjWords*4)
			}
			fmt.Printf("%-12s %6d KB    %s\n", p.Name, p.FootprintKB(), segs)
		}
		return
	}

	run = tele.Start(sim.Options{Nodes: *nodes, Seed: *seed, Length: *length}, *in,
		map[string]any{"app": *app, "out": *out, "block": *blockSize})
	defer run.Close(nil)

	geom, err := memory.NewGeometry(*blockSize, 4096)
	if err != nil {
		fatal(err)
	}

	if *mtrVer != 2 && *mtrVer != 3 {
		cliutil.Usagef("tracegen", "-mtr-version must be 2 or 3 (got %d)", *mtrVer)
	}

	var src trace.Source
	switch {
	case *in != "":
		// Decode ahead of the consumer so file IO and varint decode overlap
		// the streaming statistics passes: indexed (v3) input decodes
		// segments on parallel workers, older versions on a prefetch
		// goroutine.
		fs, err := trace.OpenFileParallel(*in, 0)
		if err != nil {
			fatal(err)
		}
		src = fs
	case *app != "":
		prof, err := workload.ProfileByName(*app)
		if err != nil {
			fatal(err)
		}
		src, err = workload.NewSource(prof, *nodes, *seed, *length)
		if err != nil {
			fatal(err)
		}
	default:
		cliutil.Usagef("tracegen", "need -app, -in, or -list")
	}
	defer src.Close()

	if *out != "" {
		n, err := export(src, *out, geom, *nodes, trace.WriterOptions{Version: *mtrVer, SegmentBytes: *segBytes})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d accesses to %s\n", n, *out)
		if err := src.Reset(); err != nil {
			fatal(err)
		}
	}

	if *stats || *out == "" {
		if err := report(src, geom, *nodes); err != nil {
			fatal(err)
		}
	}
	run.Close(nil)
}

// export streams the source into an .mtr file and returns the access count.
func export(src trace.Source, path string, geom memory.Geometry, nodes int, opts trace.WriterOptions) (int, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	w := trace.NewWriterOptions(f, trace.Header{
		BlockSize: geom.BlockSize(),
		PageSize:  geom.PageSize(),
		Nodes:     nodes,
	}, opts)
	n, err := trace.Copy(w, src)
	if err != nil {
		f.Close()
		return 0, err
	}
	if err := w.Close(); err != nil {
		f.Close()
		return 0, err
	}
	return n, f.Close()
}

// report prints the trace census and the local-access fraction under each
// placement policy, each computed in its own streaming pass.
func report(src trace.Source, geom memory.Geometry, nodes int) error {
	st, err := trace.AnalyzeSource(src, geom)
	if err != nil {
		return err
	}
	fmt.Print(st)

	rewind := func() error { return src.Reset() }
	if err := rewind(); err != nil {
		return err
	}
	ft, err := placement.FirstTouchSource(src, geom, nodes)
	if err != nil {
		return err
	}
	if err := rewind(); err != nil {
		return err
	}
	ub, err := placement.UsageBasedSource(src, geom, nodes)
	if err != nil {
		return err
	}
	for _, pl := range []placement.Policy{placement.NewRoundRobin(nodes), ft, ub} {
		if err := rewind(); err != nil {
			return err
		}
		frac, err := placement.LocalFractionSource(src, geom, pl)
		if err != nil {
			return err
		}
		fmt.Printf("local access fraction under %-11s placement: %.1f%%\n",
			pl.Name(), 100*frac)
	}
	return nil
}

// fatal exits through the shared cliutil funnel: one structured error
// line, a sealed manifest, status 1.
func fatal(err error) {
	cliutil.FatalRun(run, "tracegen", "%v", err)
}
