// Package migratory is a library reproduction of "Adaptive Cache Coherency
// for Detecting Migratory Shared Data" (Cox & Fowler, ISCA 1993).
//
// The paper observes that a large share of shared data in parallel programs
// is migratory — read and written by one processor at a time, moving from
// processor to processor — and that a write-invalidate protocol can halve
// the coherence traffic for such data by detecting the pattern on line and
// switching the affected blocks from replicate-on-read-miss to
// migrate-on-read-miss. This module implements:
//
//   - the migratory classification engine of the paper's Figure 3, with the
//     conservative, basic, and aggressive policy variants of §4.1 plus the
//     conventional baseline;
//   - a directory-based CC-NUMA protocol simulator with the Table 1
//     inter-node message cost model, set-associative caches, and page
//     placement policies;
//   - the adaptive snooping bus protocol of Figures 1 and 2 (an extended
//     MESI with Shared-2, Migratory-Clean, and Migratory-Dirty states),
//     alongside conventional MESI and a Sequent-Symmetry-style baseline;
//   - synthetic SPLASH-like workload generators standing in for the paper's
//     Tango traces of Cholesky, LocusRoute, MP3D, Pthor, and Water;
//   - a DASH-like timing model reproducing the §4.2 execution-time study;
//   - sweep drivers that regenerate the paper's Table 2, Table 3, cost-ratio
//     analysis, and bus results, fanning independent simulation cells out
//     across a worker pool (ExperimentOptions.Parallelism; 0 = all CPUs).
//     Parallel runs are bit-identical to sequential ones: every cell
//     simulates a private system over a shared read-only trace and results
//     are assembled in paper order.
//
// The quickest way in is the unified Run entry point — one declarative
// config selects the engine, the trace, and the variant, with zero values
// meaning the paper's defaults:
//
//	res, _ := migratory.Run(ctx, migratory.RunConfig{
//	    Engine:   migratory.EngineDirectory,
//	    Workload: "MP3D",
//	    Policy:   "aggressive",
//	})
//	fmt.Println(res.Directory.Msgs)
//
// RunConfig.Validate rejects a bad config with the same typed sentinels
// every surface shares (ErrUnknownEngine, ErrUnknownPolicy,
// ErrUnknownProtocol, ErrUnknownProfile, ErrUnknownPlacement, …), and
// equal results marshal to equal JSON bytes, which is what makes them
// cacheable by content hash (RunConfig.Digest — the basis of cmd/cohd,
// the coherence-as-a-service daemon serving this same API over HTTP with
// admission control and a result cache). The engines stay directly
// constructible for finer control:
//
//	accs, _ := migratory.GenerateWorkload("MP3D", 16, 1, 100000)
//	sys, _ := migratory.NewDirectorySystem(migratory.DirectoryConfig{
//	    Nodes:     16,
//	    Geometry:  migratory.MustGeometry(16, 4096),
//	    Policy:    migratory.Aggressive,
//	    Placement: migratory.RoundRobinPlacement(16),
//	})
//	_ = sys.Run(accs)
//	fmt.Println(sys.Messages())
//
// # Observability
//
// Both protocol engines can emit a typed stream of coherence events —
// state transitions, classification flips with the access that triggered
// them, migrations, invalidations, write-backs, message charges — through
// a Probe attached to the system config. A nil probe costs one pointer
// test per emission site. MetricsProbe aggregates the stream into
// per-node and per-block counters plus histograms of migration run length
// and classification latency, and its message totals exactly reconcile
// with the engines' cost accounting; NewJSONLProbe streams events as JSON
// lines and NewTraceEventProbe writes a Chrome trace_event file that
// opens in Perfetto. Probes compose with MultiProbe, filter with
// FilterProbe, and instrument whole sweeps via ExperimentOptions.Probes
// (one probe per cell, merged deterministically with MergeMetrics). To
// watch a protocol work:
//
//	mp := &migratory.MetricsProbe{}
//	sys, _ := migratory.NewDirectorySystem(migratory.DirectoryConfig{
//	    Nodes: 16, Geometry: geom, Policy: migratory.Basic,
//	    Placement: pl, Probe: mp,
//	})
//	_ = sys.Run(accs)
//	mp.Finish()
//	mp.RenderNodes().Render(os.Stdout)
//
// The cmd/inspect CLI wraps all of this: it replays a trace under any
// variant, prints and filters the event stream, reports the hottest
// blocks, and exports JSONL or Perfetto traces.
//
// # Runtime telemetry
//
// Orthogonal to the per-event probes, a RunStats counter block gives live,
// near-zero-cost visibility into a running simulation: engines push
// accesses, batches, classifier transitions, and migrations at batch
// granularity (one update per 4096 accesses), the set-sharded demux stage
// accounts per-shard queue depth and producer stall time, and the sweep
// drivers track cell progress for ETA estimation. Attach one through
// ExperimentOptions.Stats, DirectoryConfig.Stats, or BusConfig.Stats —
// when left nil the hot path pays a single pointer test per batch. A
// TelemetrySampler turns the counters into periodic TelemetrySample
// snapshots (instantaneous and cumulative throughput, batch fill, heap and
// GC state), StartTelemetryServer exposes them over HTTP as Prometheus
// text (/metrics), JSON (/status), expvar, and pprof, and RunManifest
// records each run's exact configuration and outcome as an atomically
// written JSON artifact (WriteRunManifest, WriteFileAtomic). Every CLI in
// cmd/ wires these behind the shared -telemetry-addr, -log-level,
// -log-format, -manifest-dir, and -progress flags.
//
// # Streaming traces
//
// Every consumer of a trace also accepts a TraceSource — a pull-based,
// re-openable stream (Next until io.EOF, Reset to rewind, Close when
// done) — so traces never have to be materialized. Sources come from
// NewSliceTraceSource (in-memory), NewGeneratorSource (lazy synthetic
// workload, bit-identical to GenerateWorkload), or OpenTraceFile (the
// compact varint-delta ".mtr" binary format written by NewTraceWriter and
// cmd/tracegen; the legacy fixed-record format is still readable).
// NewTraceWriter now emits an indexed v3 by default: the stream is cut
// into independently decodable segments and a footer index lets
// OpenIndexedTraceFile / NewIndexedTraceSource decode segments on several
// workers (RunConfig.Decoders, the shared -decoders flag) while
// reassembling the exact sequential stream — and sharded runs route
// segments straight into per-shard queues with no serial producer at all.
// Opening a v1/v2 trace through the indexed path reports ErrTraceNoIndex.
// A process-wide decoded-segment cache (NewTraceSegmentCache, threaded via
// RunConfig.Cache or OpenIndexedTraceFileCache, sized by the shared
// -trace-cache-bytes flag) lets sweeps and cohd decode each indexed trace
// once and replay it many times from immutable ref-counted slabs — keyed
// by file identity so rewritten files never serve stale data, bounded by
// LRU eviction, and observable through TraceCacheStats (Stats, /metrics,
// run manifests). Like Decoders it cannot change a result: cached replay
// is bit-identical and plays no part in RunConfig.Digest.
// Run streams whichever source the config names and honors cancellation; the
// deprecated per-engine wrappers RunDirectory, RunBus, and RunTimedSource
// remain for callers managing their own sources, and AnalyzeTraceSource
// and ClassifyBlocksSource are the analysis twins.
// ExperimentOptions.Context threads a context through every sweep driver
// and ExperimentOptions.Stream makes the sweeps regenerate workloads
// lazily per cell, keeping sweep memory constant in the trace length.
// Failures are matchable with errors.Is against the exported sentinels
// (ErrUnknownPolicy, ErrUnknownProfile, ErrUnknownEventKind,
// ErrBadGeometry, ErrTraceTruncated, ErrTraceCorrupt, ErrTraceBadMagic,
// ErrTraceNoIndex).
//
// The cmd/ directory holds CLIs that regenerate each of the paper's tables
// and figures; see DESIGN.md for the experiment index and EXPERIMENTS.md
// for measured-versus-published results.
package migratory
