package migratory

import (
	"bytes"
	"testing"

	"migratory/internal/core"
	"migratory/internal/directory"
	"migratory/internal/memory"
	"migratory/internal/placement"
	"migratory/internal/snoop"
	"migratory/internal/trace"
)

// decodeAccesses turns fuzzer bytes into a trace over a small contended
// address space: 2 bytes per access (node+kind, block).
func decodeAccesses(data []byte, nodes, blocks int) []trace.Access {
	var accs []trace.Access
	for i := 0; i+1 < len(data); i += 2 {
		accs = append(accs, trace.Access{
			Node: memory.NodeID(int(data[i]>>1) % nodes),
			Kind: trace.Kind(data[i] & 1),
			Addr: memory.Addr(int(data[i+1]) % blocks * 16),
		})
	}
	return accs
}

func fuzzSeeds(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x02, 0x00, 0x03, 0x00, 0x04, 0x00}) // migratory-ish
	f.Add([]byte{0x01, 0x00, 0x02, 0x00, 0x04, 0x00, 0x06, 0x00})
	seed := make([]byte, 128)
	for i := range seed {
		seed[i] = byte(i*7 + 3)
	}
	f.Add(seed)
}

// FuzzDirectoryProtocols hammers every directory policy with arbitrary
// traces, checking the structural invariants and that no processor ever
// observes a stale value.
func FuzzDirectoryProtocols(f *testing.F) {
	fuzzSeeds(f)
	geom := memory.MustGeometry(16, 4096)
	policies := append(core.Policies(), core.Stenstrom)
	f.Fuzz(func(t *testing.T, data []byte) {
		accs := decodeAccesses(data, 5, 12)
		for _, pol := range policies {
			sys, err := directory.New(directory.Config{
				Nodes: 5, Geometry: geom, CacheBytes: 128, Assoc: 2,
				Policy: pol, Placement: placement.NewRoundRobin(5),
				CheckCoherence: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, a := range accs {
				if err := sys.Access(a); err != nil {
					t.Fatalf("%s: access %d (%v): %v", pol.Name, i, a, err)
				}
			}
			if err := sys.CheckInvariants(); err != nil {
				t.Fatalf("%s: %v", pol.Name, err)
			}
		}
	})
}

// FuzzSnoopProtocols is the bus-side twin, covering all five protocols and
// a hysteresis variant.
func FuzzSnoopProtocols(f *testing.F) {
	fuzzSeeds(f)
	geom := memory.MustGeometry(16, 4096)
	type variant struct {
		p snoop.Protocol
		h int
	}
	variants := []variant{
		{snoop.MESI, 1}, {snoop.Adaptive, 1}, {snoop.Adaptive, 2},
		{snoop.AdaptiveMigrateFirst, 1}, {snoop.Symmetry, 1}, {snoop.UpdateOnce, 1}, {snoop.Berkeley, 1},
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		accs := decodeAccesses(data, 5, 12)
		for _, v := range variants {
			sys, err := snoop.New(snoop.Config{
				Nodes: 5, Geometry: geom, CacheBytes: 128, Assoc: 2,
				Protocol: v.p, Hysteresis: v.h, CheckCoherence: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			for i, a := range accs {
				if err := sys.Access(a); err != nil {
					t.Fatalf("%s/h%d: access %d (%v): %v", v.p, v.h, i, a, err)
				}
			}
			if err := sys.CheckInvariants(); err != nil {
				t.Fatalf("%s/h%d: %v", v.p, v.h, err)
			}
		}
	})
}

// FuzzTraceCodec round-trips arbitrary traces through the binary format.
func FuzzTraceCodec(f *testing.F) {
	fuzzSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		accs := decodeAccesses(data, 64, 250)
		var buf bytes.Buffer
		if err := trace.WriteTo(&buf, accs); err != nil {
			t.Fatal(err)
		}
		got, err := trace.ReadFrom(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(accs) {
			t.Fatalf("round trip: %d != %d", len(got), len(accs))
		}
		for i := range accs {
			if got[i] != accs[i] {
				t.Fatalf("record %d: %v != %v", i, got[i], accs[i])
			}
		}
	})
}
